#include "src/util/numeric.h"

#include <cmath>

#include <gtest/gtest.h>

namespace selest {
namespace {

TEST(SimpsonTest, ExactForCubics) {
  const auto cubic = [](double x) { return 2.0 * x * x * x - x + 1.0; };
  // ∫_0^2 (2x³ − x + 1) dx = 8 − 2 + 2 = 8.
  EXPECT_NEAR(SimpsonIntegrate(cubic, 0.0, 2.0, 2), 8.0, 1e-12);
}

TEST(SimpsonTest, EmptyIntervalIsZero) {
  EXPECT_DOUBLE_EQ(SimpsonIntegrate([](double) { return 5.0; }, 1.0, 1.0), 0.0);
}

TEST(SimpsonTest, RoundsOddIntervalCountUp) {
  const auto f = [](double x) { return x * x; };
  EXPECT_NEAR(SimpsonIntegrate(f, 0.0, 1.0, 3), 1.0 / 3.0, 1e-12);
}

TEST(SimpsonTest, ConvergesOnSmoothFunction) {
  const auto f = [](double x) { return std::exp(x); };
  const double exact = std::exp(1.0) - 1.0;
  EXPECT_NEAR(SimpsonIntegrate(f, 0.0, 1.0, 128), exact, 1e-10);
}

TEST(SimpsonTest, NegativeOrientation) {
  const auto f = [](double x) { return x; };
  EXPECT_NEAR(SimpsonIntegrate(f, 1.0, 0.0, 16), -0.5, 1e-12);
}

TEST(AdaptiveSimpsonTest, MatchesAnalyticIntegral) {
  const auto f = [](double x) { return std::sin(x); };
  EXPECT_NEAR(AdaptiveSimpson(f, 0.0, M_PI), 2.0, 1e-9);
}

TEST(AdaptiveSimpsonTest, HandlesSharpPeak) {
  // Narrow Gaussian bump: total mass 1.
  const auto f = [](double x) {
    const double s = 0.01;
    return std::exp(-0.5 * x * x / (s * s)) / (s * std::sqrt(2.0 * M_PI));
  };
  EXPECT_NEAR(AdaptiveSimpson(f, -1.0, 1.0, 1e-10), 1.0, 1e-6);
}

TEST(AdaptiveSimpsonTest, EmptyInterval) {
  EXPECT_DOUBLE_EQ(AdaptiveSimpson([](double) { return 1.0; }, 2.0, 2.0), 0.0);
}

TEST(GoldenSectionTest, FindsParabolaMinimum) {
  const auto f = [](double x) { return (x - 2.0) * (x - 2.0); };
  EXPECT_NEAR(GoldenSectionMinimize(f, 0.0, 5.0, 1e-9), 2.0, 1e-6);
}

TEST(GoldenSectionTest, FindsEdgeMinimum) {
  const auto f = [](double x) { return x; };
  EXPECT_NEAR(GoldenSectionMinimize(f, 1.0, 3.0, 1e-9), 1.0, 1e-5);
}

TEST(GridMinimizeTest, FindsRoughMinimumOfMultimodal) {
  // Two dips; the deeper one is near x = 8.
  const auto f = [](double x) {
    return std::min((x - 1.0) * (x - 1.0) + 1.0, (x - 8.0) * (x - 8.0));
  };
  const double best = GridMinimize(f, 0.1, 20.0, 200);
  EXPECT_NEAR(best, 8.0, 0.5);
}

TEST(GridMinimizeTest, IncludesEndpoints) {
  const auto f = [](double x) { return -x; };  // minimum at hi
  EXPECT_DOUBLE_EQ(GridMinimize(f, 1.0, 16.0, 5), 16.0);
}

}  // namespace
}  // namespace selest
