#include "src/eval/metrics.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/data/domain.h"

namespace selest {
namespace {

// A stub estimator returning a fixed selectivity.
class ConstantEstimator : public SelectivityEstimator {
 public:
  explicit ConstantEstimator(double value) : value_(value) {}
  double EstimateSelectivity(double, double) const override { return value_; }
  size_t StorageBytes() const override { return 0; }
  std::string name() const override { return "constant"; }

 private:
  double value_;
};

// An estimator that answers exactly from the full dataset.
class ExactEstimator : public SelectivityEstimator {
 public:
  explicit ExactEstimator(const Dataset& data) : data_(data) {}
  double EstimateSelectivity(double a, double b) const override {
    return static_cast<double>(data_.CountInRange(a, b)) /
           static_cast<double>(data_.size());
  }
  size_t StorageBytes() const override { return 0; }
  std::string name() const override { return "exact"; }

 private:
  const Dataset& data_;
};

Dataset MakeData() {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(i);
  return Dataset("d", ContinuousDomain(0.0, 99.0), values);
}

TEST(MetricsTest, ExactEstimatorHasZeroError) {
  const Dataset data = MakeData();
  const GroundTruth truth(data);
  const ExactEstimator est(data);
  const std::vector<RangeQuery> queries{{0.0, 9.0}, {10.0, 39.0}, {50.0, 99.0}};
  const ErrorReport report = Evaluate(est, queries, truth);
  EXPECT_EQ(report.evaluated, 3u);
  EXPECT_DOUBLE_EQ(report.mean_relative_error, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_absolute_error, 0.0);
  EXPECT_DOUBLE_EQ(report.max_relative_error, 0.0);
}

TEST(MetricsTest, KnownConstantError) {
  const Dataset data = MakeData();
  const GroundTruth truth(data);
  // Query [0, 9] has 10 records of 100 → truth 10. Estimator says 0.2 → 20.
  const ConstantEstimator est(0.2);
  const std::vector<RangeQuery> queries{{0.0, 9.0}};
  const ErrorReport report = Evaluate(est, queries, truth);
  EXPECT_DOUBLE_EQ(report.mean_absolute_error, 10.0);
  EXPECT_DOUBLE_EQ(report.mean_relative_error, 1.0);
  EXPECT_DOUBLE_EQ(report.max_relative_error, 1.0);
}

TEST(MetricsTest, MeanOverMultipleQueries) {
  const Dataset data = MakeData();
  const GroundTruth truth(data);
  const ConstantEstimator est(0.2);  // always predicts 20 records
  // Truths: 10 and 40 → relative errors 1.0 and 0.5.
  const std::vector<RangeQuery> queries{{0.0, 9.0}, {0.0, 39.0}};
  const ErrorReport report = Evaluate(est, queries, truth);
  EXPECT_DOUBLE_EQ(report.mean_relative_error, 0.75);
  EXPECT_DOUBLE_EQ(report.max_relative_error, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_absolute_error, 15.0);
}

TEST(MetricsTest, PercentilesOfKnownErrorDistribution) {
  const Dataset data = MakeData();
  const GroundTruth truth(data);
  const ConstantEstimator est(0.2);  // always predicts 20 records
  // Truths 10, 20, 40, 80 → relative errors 1.0, 0.0, 0.5, 0.75.
  const std::vector<RangeQuery> queries{
      {0.0, 9.0}, {0.0, 19.0}, {0.0, 39.0}, {0.0, 79.0}};
  const ErrorReport report = Evaluate(est, queries, truth);
  // Sorted errors: 0.0, 0.5, 0.75, 1.0 (type-7 quantiles, interpolated).
  EXPECT_DOUBLE_EQ(report.p50_relative_error, 0.625);
  EXPECT_NEAR(report.p90_relative_error, 0.925, 1e-12);
  EXPECT_NEAR(report.p99_relative_error, 0.9925, 1e-12);
  EXPECT_DOUBLE_EQ(report.max_relative_error, 1.0);
}

TEST(MetricsTest, PercentilesZeroForExactEstimator) {
  const Dataset data = MakeData();
  const GroundTruth truth(data);
  const ExactEstimator est(data);
  const std::vector<RangeQuery> queries{{0.0, 9.0}, {10.0, 39.0}};
  const ErrorReport report = Evaluate(est, queries, truth);
  EXPECT_DOUBLE_EQ(report.p50_relative_error, 0.0);
  EXPECT_DOUBLE_EQ(report.p99_relative_error, 0.0);
}

TEST(MetricsTest, SkipsEmptyQueries) {
  const Dataset data = MakeData();
  const GroundTruth truth(data);
  const ConstantEstimator est(0.0);
  const std::vector<RangeQuery> queries{{0.25, 0.75},  // no integer inside
                                        {0.0, 9.0}};
  const ErrorReport report = Evaluate(est, queries, truth);
  EXPECT_EQ(report.skipped_empty, 1u);
  EXPECT_EQ(report.evaluated, 1u);
}

TEST(MetricsTest, EmptyWorkloadYieldsZeroedReport) {
  const Dataset data = MakeData();
  const GroundTruth truth(data);
  const ConstantEstimator est(0.5);
  const ErrorReport report = Evaluate(est, {}, truth);
  EXPECT_EQ(report.evaluated, 0u);
  EXPECT_DOUBLE_EQ(report.mean_relative_error, 0.0);
}

TEST(MetricsTest, PositionalErrorsSignedCorrectly) {
  const Dataset data = MakeData();
  const GroundTruth truth(data);
  const ConstantEstimator over(1.0);   // always overestimates
  const ConstantEstimator under(0.0);  // always underestimates
  const std::vector<RangeQuery> queries{{10.0, 19.0}};
  const auto over_errors = EvaluateByPosition(over, queries, truth);
  const auto under_errors = EvaluateByPosition(under, queries, truth);
  ASSERT_EQ(over_errors.size(), 1u);
  EXPECT_DOUBLE_EQ(over_errors[0].position, 14.5);
  EXPECT_DOUBLE_EQ(over_errors[0].signed_error, 100.0 - 10.0);
  EXPECT_EQ(over_errors[0].exact_count, 10u);
  EXPECT_DOUBLE_EQ(under_errors[0].signed_error, -10.0);
  EXPECT_DOUBLE_EQ(under_errors[0].relative_error, 1.0);
}

TEST(MetricsTest, PositionalErrorsKeepEmptyQueries) {
  const Dataset data = MakeData();
  const GroundTruth truth(data);
  const ConstantEstimator est(0.1);
  const std::vector<RangeQuery> queries{{0.25, 0.75}};
  const auto errors = EvaluateByPosition(est, queries, truth);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].exact_count, 0u);
  EXPECT_DOUBLE_EQ(errors[0].relative_error, 0.0);
  EXPECT_DOUBLE_EQ(errors[0].signed_error, 10.0);
}

}  // namespace
}  // namespace selest
