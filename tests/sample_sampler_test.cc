#include "src/sample/sampler.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

std::vector<double> Iota(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return v;
}

// True when `sample` is a sub-multiset of `population`.
bool IsSubMultiset(std::vector<double> sample, std::vector<double> population) {
  std::sort(sample.begin(), sample.end());
  std::sort(population.begin(), population.end());
  return std::includes(population.begin(), population.end(), sample.begin(),
                       sample.end());
}

TEST(SampleWithoutReplacementTest, ExactSize) {
  Rng rng(1);
  const auto population = Iota(1000);
  EXPECT_EQ(SampleWithoutReplacement(population, 100, rng).size(), 100u);
  EXPECT_EQ(SampleWithoutReplacement(population, 0, rng).size(), 0u);
  EXPECT_EQ(SampleWithoutReplacement(population, 1000, rng).size(), 1000u);
}

TEST(SampleWithoutReplacementTest, NoDuplicateIndices) {
  Rng rng(2);
  const auto population = Iota(500);  // distinct values ⇒ distinct picks
  auto sample = SampleWithoutReplacement(population, 250, rng);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::adjacent_find(sample.begin(), sample.end()), sample.end());
}

TEST(SampleWithoutReplacementTest, SampleIsSubsetOfPopulation) {
  Rng rng(3);
  std::vector<double> population{1.5, 1.5, 2.0, 7.0, 9.0, 9.0, 9.0};
  const auto sample = SampleWithoutReplacement(population, 4, rng);
  EXPECT_TRUE(IsSubMultiset(sample, population));
}

TEST(SampleWithoutReplacementTest, FullSampleIsPermutation) {
  Rng rng(4);
  const auto population = Iota(64);
  auto sample = SampleWithoutReplacement(population, 64, rng);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, population);
}

TEST(SampleWithoutReplacementTest, RoughlyUniformInclusion) {
  // Each of 20 elements should appear in a 10-of-20 sample about half of
  // the trials.
  const auto population = Iota(20);
  std::map<double, int> inclusion;
  Rng rng(5);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (double v : SampleWithoutReplacement(population, 10, rng)) {
      ++inclusion[v];
    }
  }
  for (const auto& [value, count] : inclusion) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.5, 0.03)
        << "element " << value;
  }
}

TEST(ReservoirSampleTest, ExactSizeAndSubset) {
  Rng rng(6);
  const auto population = Iota(300);
  const auto sample = ReservoirSample(population, 50, rng);
  EXPECT_EQ(sample.size(), 50u);
  EXPECT_TRUE(IsSubMultiset(sample, population));
}

TEST(ReservoirSampleTest, RoughlyUniformInclusion) {
  const auto population = Iota(20);
  std::map<double, int> inclusion;
  Rng rng(7);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (double v : ReservoirSample(population, 10, rng)) ++inclusion[v];
  }
  for (const auto& [value, count] : inclusion) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.5, 0.03)
        << "element " << value;
  }
}

TEST(BernoulliSampleTest, RateZeroAndOne) {
  Rng rng(8);
  const auto population = Iota(100);
  EXPECT_TRUE(BernoulliSample(population, 0.0, rng).empty());
  EXPECT_EQ(BernoulliSample(population, 1.0, rng).size(), 100u);
}

TEST(BernoulliSampleTest, ExpectedSize) {
  Rng rng(9);
  const auto population = Iota(100000);
  const auto sample = BernoulliSample(population, 0.1, rng);
  EXPECT_NEAR(static_cast<double>(sample.size()), 10000.0, 500.0);
}

TEST(SamplerDeathTest, OversizedSampleAborts) {
  Rng rng(10);
  const auto population = Iota(10);
  EXPECT_DEATH(SampleWithoutReplacement(population, 11, rng), "SELEST_CHECK");
  EXPECT_DEATH(ReservoirSample(population, 11, rng), "SELEST_CHECK");
}

// --- DecayingReservoir (the live server's per-column ingest sample) -------

TEST(DecayingReservoirTest, UnderfullHoldsTheStreamVerbatim) {
  DecayingReservoir reservoir(10);
  const auto stream = Iota(6);
  reservoir.AddBatch(stream);
  EXPECT_EQ(reservoir.size(), 6u);
  EXPECT_EQ(reservoir.items_seen(), 6u);
  const auto values = reservoir.values();
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(values[i], stream[i]);
  }
}

TEST(DecayingReservoirTest, FullReservoirStaysAtCapacity) {
  DecayingReservoir reservoir(16, 0.0, 3);
  reservoir.AddBatch(Iota(1000));
  EXPECT_EQ(reservoir.size(), 16u);
  EXPECT_EQ(reservoir.items_seen(), 1000u);
  EXPECT_TRUE(IsSubMultiset(
      {reservoir.values().begin(), reservoir.values().end()}, Iota(1000)));
}

TEST(DecayingReservoirTest, SameSeedSameStreamIsDeterministic) {
  DecayingReservoir a(8, 0.0, 5);
  DecayingReservoir b(8, 0.0, 5);
  a.AddBatch(Iota(500));
  b.AddBatch(Iota(500));
  const auto va = a.values();
  const auto vb = b.values();
  ASSERT_EQ(va.size(), vb.size());
  for (size_t i = 0; i < va.size(); ++i) EXPECT_EQ(va[i], vb[i]);
}

TEST(DecayingReservoirTest, AlgorithmRIsRoughlyUniform) {
  // Every element of a 20-item stream should land in a 10-slot reservoir
  // with probability 1/2 (the classic Algorithm R guarantee).
  const auto population = Iota(20);
  std::map<double, int> inclusion;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    DecayingReservoir reservoir(10, 0.0, static_cast<uint64_t>(t + 1));
    reservoir.AddBatch(population);
    for (double v : reservoir.values()) ++inclusion[v];
  }
  for (const auto& [value, count] : inclusion) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.5, 0.03)
        << "element " << value;
  }
}

TEST(DecayingReservoirTest, DecayBiasesTowardRecentItems) {
  // With decay on, late items displace early ones at a fixed rate, so the
  // tail of the stream is over-represented relative to Algorithm R. The
  // extreme makes it deterministic: decay 1.0 and capacity 1 always holds
  // the newest item.
  DecayingReservoir newest_only(1, 1.0, 7);
  newest_only.AddBatch(Iota(100));
  ASSERT_EQ(newest_only.size(), 1u);
  EXPECT_EQ(newest_only.values()[0], 99.0);

  // Statistically: the mean of a decaying reservoir over an increasing
  // stream exceeds the uniform-sample mean.
  double decayed_sum = 0.0;
  double uniform_sum = 0.0;
  const auto stream = Iota(2000);
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    DecayingReservoir decayed(50, 0.2, static_cast<uint64_t>(t + 1));
    DecayingReservoir uniform(50, 0.0, static_cast<uint64_t>(t + 1));
    decayed.AddBatch(stream);
    uniform.AddBatch(stream);
    for (double v : decayed.values()) decayed_sum += v;
    for (double v : uniform.values()) uniform_sum += v;
  }
  EXPECT_GT(decayed_sum, uniform_sum);
}

TEST(DecayingReservoirTest, MergeOfUnderfullReservoirsIsExactUnion) {
  DecayingReservoir a(64, 0.0, 1);
  DecayingReservoir b(64, 0.0, 2);
  a.AddBatch(Iota(20));
  b.AddBatch(Iota(10));
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.size(), 30u);
  EXPECT_EQ(a.items_seen(), 30u);
  std::vector<double> merged(a.values().begin(), a.values().end());
  std::vector<double> expected = Iota(20);
  const auto tail = Iota(10);
  expected.insert(expected.end(), tail.begin(), tail.end());
  std::sort(merged.begin(), merged.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(merged, expected);
}

TEST(DecayingReservoirTest, MergeIdentitiesAndErrors) {
  DecayingReservoir a(8, 0.0, 1);
  a.AddBatch(Iota(5));
  DecayingReservoir empty(8, 0.0, 2);
  // Merging an empty peer changes nothing.
  ASSERT_TRUE(a.MergeFrom(empty).ok());
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a.items_seen(), 5u);
  // Merging into an empty reservoir copies the peer.
  DecayingReservoir into_empty(8, 0.0, 3);
  ASSERT_TRUE(into_empty.MergeFrom(a).ok());
  EXPECT_EQ(into_empty.size(), 5u);
  EXPECT_EQ(into_empty.items_seen(), 5u);
  // Capacities must match.
  DecayingReservoir wrong_capacity(4, 0.0, 4);
  EXPECT_EQ(a.MergeFrom(wrong_capacity).code(),
            StatusCode::kInvalidArgument);
}

TEST(DecayingReservoirTest, MergeOfFullReservoirsTracksStreamWeights) {
  // Both reservoirs full: items_seen adds up, the result stays at
  // capacity, and each slot comes from one of the two inputs.
  DecayingReservoir a(32, 0.0, 1);
  DecayingReservoir b(32, 0.0, 2);
  a.AddBatch(Iota(500));
  std::vector<double> high(500);
  for (size_t i = 0; i < high.size(); ++i) {
    high[i] = 1000.0 + static_cast<double>(i);
  }
  b.AddBatch(high);
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(a.items_seen(), 1000u);
  std::vector<double> population = Iota(500);
  population.insert(population.end(), high.begin(), high.end());
  EXPECT_TRUE(IsSubMultiset({a.values().begin(), a.values().end()},
                            population));
}

}  // namespace
}  // namespace selest
