#include "src/sample/sampler.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

std::vector<double> Iota(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return v;
}

// True when `sample` is a sub-multiset of `population`.
bool IsSubMultiset(std::vector<double> sample, std::vector<double> population) {
  std::sort(sample.begin(), sample.end());
  std::sort(population.begin(), population.end());
  return std::includes(population.begin(), population.end(), sample.begin(),
                       sample.end());
}

TEST(SampleWithoutReplacementTest, ExactSize) {
  Rng rng(1);
  const auto population = Iota(1000);
  EXPECT_EQ(SampleWithoutReplacement(population, 100, rng).size(), 100u);
  EXPECT_EQ(SampleWithoutReplacement(population, 0, rng).size(), 0u);
  EXPECT_EQ(SampleWithoutReplacement(population, 1000, rng).size(), 1000u);
}

TEST(SampleWithoutReplacementTest, NoDuplicateIndices) {
  Rng rng(2);
  const auto population = Iota(500);  // distinct values ⇒ distinct picks
  auto sample = SampleWithoutReplacement(population, 250, rng);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::adjacent_find(sample.begin(), sample.end()), sample.end());
}

TEST(SampleWithoutReplacementTest, SampleIsSubsetOfPopulation) {
  Rng rng(3);
  std::vector<double> population{1.5, 1.5, 2.0, 7.0, 9.0, 9.0, 9.0};
  const auto sample = SampleWithoutReplacement(population, 4, rng);
  EXPECT_TRUE(IsSubMultiset(sample, population));
}

TEST(SampleWithoutReplacementTest, FullSampleIsPermutation) {
  Rng rng(4);
  const auto population = Iota(64);
  auto sample = SampleWithoutReplacement(population, 64, rng);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, population);
}

TEST(SampleWithoutReplacementTest, RoughlyUniformInclusion) {
  // Each of 20 elements should appear in a 10-of-20 sample about half of
  // the trials.
  const auto population = Iota(20);
  std::map<double, int> inclusion;
  Rng rng(5);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (double v : SampleWithoutReplacement(population, 10, rng)) {
      ++inclusion[v];
    }
  }
  for (const auto& [value, count] : inclusion) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.5, 0.03)
        << "element " << value;
  }
}

TEST(ReservoirSampleTest, ExactSizeAndSubset) {
  Rng rng(6);
  const auto population = Iota(300);
  const auto sample = ReservoirSample(population, 50, rng);
  EXPECT_EQ(sample.size(), 50u);
  EXPECT_TRUE(IsSubMultiset(sample, population));
}

TEST(ReservoirSampleTest, RoughlyUniformInclusion) {
  const auto population = Iota(20);
  std::map<double, int> inclusion;
  Rng rng(7);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (double v : ReservoirSample(population, 10, rng)) ++inclusion[v];
  }
  for (const auto& [value, count] : inclusion) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.5, 0.03)
        << "element " << value;
  }
}

TEST(BernoulliSampleTest, RateZeroAndOne) {
  Rng rng(8);
  const auto population = Iota(100);
  EXPECT_TRUE(BernoulliSample(population, 0.0, rng).empty());
  EXPECT_EQ(BernoulliSample(population, 1.0, rng).size(), 100u);
}

TEST(BernoulliSampleTest, ExpectedSize) {
  Rng rng(9);
  const auto population = Iota(100000);
  const auto sample = BernoulliSample(population, 0.1, rng);
  EXPECT_NEAR(static_cast<double>(sample.size()), 10000.0, 500.0);
}

TEST(SamplerDeathTest, OversizedSampleAborts) {
  Rng rng(10);
  const auto population = Iota(10);
  EXPECT_DEATH(SampleWithoutReplacement(population, 11, rng), "SELEST_CHECK");
  EXPECT_DEATH(ReservoirSample(population, 11, rng), "SELEST_CHECK");
}

}  // namespace
}  // namespace selest
