#include "src/data/relation.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/data/domain.h"

namespace selest {
namespace {

std::shared_ptr<Dataset> MakeColumn(const std::string& name,
                                    std::vector<double> values) {
  return std::make_shared<Dataset>(name, ContinuousDomain(0.0, 100.0),
                                   std::move(values));
}

TEST(RelationTest, CreateSucceedsForMatchingColumns) {
  auto relation = Relation::Create(
      "r", {MakeColumn("a", {1, 2, 3}), MakeColumn("b", {4, 5, 6})});
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->name(), "r");
  EXPECT_EQ(relation->num_records(), 3u);
  EXPECT_EQ(relation->num_columns(), 2u);
}

TEST(RelationTest, CreateFailsOnSizeMismatch) {
  auto relation = Relation::Create(
      "r", {MakeColumn("a", {1, 2, 3}), MakeColumn("b", {4, 5})});
  EXPECT_FALSE(relation.ok());
  EXPECT_EQ(relation.status().code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, CreateFailsOnDuplicateName) {
  auto relation = Relation::Create(
      "r", {MakeColumn("a", {1}), MakeColumn("a", {2})});
  EXPECT_FALSE(relation.ok());
}

TEST(RelationTest, CreateFailsOnEmptyColumnList) {
  auto relation = Relation::Create("r", {});
  EXPECT_FALSE(relation.ok());
}

TEST(RelationTest, CreateFailsOnNullColumn) {
  auto relation = Relation::Create("r", {nullptr});
  EXPECT_FALSE(relation.ok());
}

TEST(RelationTest, ColumnLookup) {
  auto relation = Relation::Create("r", {MakeColumn("x", {1, 2, 3})});
  ASSERT_TRUE(relation.ok());
  auto column = relation->Column("x");
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(column.value()->name(), "x");
  EXPECT_FALSE(relation->Column("missing").ok());
  EXPECT_EQ(relation->Column("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(RelationTest, CountRange) {
  auto relation =
      Relation::Create("r", {MakeColumn("x", {10, 20, 30, 40, 50})});
  ASSERT_TRUE(relation.ok());
  auto count = relation->CountRange("x", 15.0, 45.0);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 3u);
}

TEST(RelationTest, CountRangeUnknownColumnFails) {
  auto relation = Relation::Create("r", {MakeColumn("x", {1})});
  ASSERT_TRUE(relation.ok());
  EXPECT_FALSE(relation->CountRange("y", 0.0, 1.0).ok());
}

}  // namespace
}  // namespace selest
