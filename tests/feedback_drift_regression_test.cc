// Golden drift regression suite (ROADMAP item 2): under pinned seeds, the
// query-driven estimators must converge below the best static estimator on
// every drift scenario, and the replay must be bitwise deterministic.
//
// The config is the bench default (seed 17, 20000 rows, 600 queries over 12
// drift steps, window 60) — the exact setup BENCH_feedback.json is generated
// from. Smaller replays are NOT equivalent golden targets: with few rows the
// surviving (non-empty) queries carry truths of a handful of rows, and on
// those the ratio error of any learner that carries residual mass explodes
// while a stranded static estimator saturates at MRE ~1 by predicting zero.
//
// Tolerances: the windowed MRE is a ratio metric over a seeded workload, so
// the golden pins use EXPECT_NEAR with a tolerance of ~50% of the pinned
// value — generous on purpose; they catch collapses and blow-ups, not ulps.
// The determinism test freezes the exact values within a build, and the
// convergence assertions are the hard contract: strictly below best-static
// at the end of the replay, converged within it.
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/eval/drift.h"

namespace selest {
namespace {

DriftConfig GoldenConfig(DriftScenario scenario) {
  DriftConfig config;  // bench defaults; see the header comment
  config.scenario = scenario;
  return config;
}

// Curve names carry their configuration ("feedback(64)",
// "reconstructed(64,max-entropy)", ...), so look up by prefix.
const DriftCurve* FindCurve(const DriftResult& result,
                            const std::string& prefix) {
  for (const DriftCurve& curve : result.curves) {
    if (curve.estimator.rfind(prefix, 0) == 0) return &curve;
  }
  return nullptr;
}

void ExpectQueryDrivenBeatsStatic(const DriftResult& result) {
  SCOPED_TRACE(DriftScenarioName(result.scenario));
  size_t query_driven = 0;
  for (const DriftCurve& curve : result.curves) {
    if (!curve.query_driven) continue;
    ++query_driven;
    SCOPED_TRACE(curve.estimator);
    // The acceptance criterion: feedback ends below the best static curve
    // and stays there from some query inside the replay onwards.
    EXPECT_LT(curve.final_mre, result.best_static_final_mre);
    EXPECT_LE(curve.convergence_query, result.num_queries);
    EXPECT_EQ(curve.windowed_mre.size(), result.num_queries);
  }
  EXPECT_EQ(query_driven, 3u);  // feedback, reconstructed, online-learning
}

TEST(DriftRegressionTest, AbruptSwapFeedbackConvergesBelowStatic) {
  auto result = RunDriftReplay(GoldenConfig(DriftScenario::kAbruptSwap));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectQueryDrivenBeatsStatic(*result);
  // Golden pins (seed 17): the static roster is stranded on the old
  // normal(30, 8) mode after the swap; the feedback histogram tracks it
  // down to ~0.30 windowed MRE within ~10 post-swap queries.
  const DriftCurve* feedback = FindCurve(*result, "feedback(");
  ASSERT_NE(feedback, nullptr);
  EXPECT_NEAR(feedback->final_mre, 0.30, 0.15);
  EXPECT_GT(result->best_static_final_mre, 3.0);
}

TEST(DriftRegressionTest, LinearShiftFeedbackConvergesBelowStatic) {
  auto result = RunDriftReplay(GoldenConfig(DriftScenario::kLinearShift));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectQueryDrivenBeatsStatic(*result);
  // Under a continuous shift the learners chase a moving target, so the
  // pinned errors sit higher than the abrupt-swap endgame but still a
  // multiple below the stranded static curves (pin: ~0.94 vs ~6.7).
  const DriftCurve* online = FindCurve(*result, "online-learning(");
  ASSERT_NE(online, nullptr);
  EXPECT_NEAR(online->final_mre, 0.94, 0.5);
  EXPECT_LT(online->final_mre, result->best_static_final_mre / 2.0);
}

TEST(DriftRegressionTest, ZipfSweepFeedbackConvergesBelowStatic) {
  auto result = RunDriftReplay(GoldenConfig(DriftScenario::kZipfSweep));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectQueryDrivenBeatsStatic(*result);
  // The skew sweep concentrates mass into the head; ratio errors on the
  // deserted tail blow the static MRE past 30 while the reconstruction
  // tracks the sweep down to ~0.49.
  const DriftCurve* reconstructed = FindCurve(*result, "reconstructed(");
  ASSERT_NE(reconstructed, nullptr);
  EXPECT_NEAR(reconstructed->final_mre, 0.49, 0.25);
  EXPECT_GT(result->best_static_final_mre, 10.0);
}

TEST(DriftRegressionTest, ReplayIsDeterministicForAFixedConfig) {
  const DriftConfig config = GoldenConfig(DriftScenario::kAbruptSwap);
  auto first = RunDriftReplay(config);
  auto second = RunDriftReplay(config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->curves.size(), second->curves.size());
  for (size_t c = 0; c < first->curves.size(); ++c) {
    const DriftCurve& a = first->curves[c];
    const DriftCurve& b = second->curves[c];
    EXPECT_EQ(a.estimator, b.estimator);
    EXPECT_EQ(a.convergence_query, b.convergence_query);
    EXPECT_EQ(a.final_mre, b.final_mre);      // bitwise: same seed, same sums
    EXPECT_EQ(a.overall_mre, b.overall_mre);  // (timing fields excluded)
    ASSERT_EQ(a.windowed_mre.size(), b.windowed_mre.size());
    for (size_t i = 0; i < a.windowed_mre.size(); ++i) {
      ASSERT_EQ(a.windowed_mre[i], b.windowed_mre[i])
          << a.estimator << " point " << i;
    }
  }
  EXPECT_EQ(first->best_static, second->best_static);
  EXPECT_EQ(first->best_static_final_mre, second->best_static_final_mre);
}

TEST(DriftRegressionTest, InvalidConfigsAreRejected) {
  DriftConfig config = GoldenConfig(DriftScenario::kAbruptSwap);
  config.rows = 10;  // below the documented minimum
  EXPECT_FALSE(RunDriftReplay(config).ok());
  config = GoldenConfig(DriftScenario::kAbruptSwap);
  config.num_steps = 0;
  EXPECT_FALSE(RunDriftReplay(config).ok());
  config = GoldenConfig(DriftScenario::kAbruptSwap);
  config.window = 0;
  EXPECT_FALSE(RunDriftReplay(config).ok());
}

}  // namespace
}  // namespace selest
