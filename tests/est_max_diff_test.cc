#include "src/est/max_diff_histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

TEST(MaxDiffTest, RejectsBadInput) {
  EXPECT_FALSE(MaxDiffHistogram::Create({}, kDomain, 4).ok());
  const std::vector<double> sample{1.0};
  EXPECT_FALSE(MaxDiffHistogram::Create(sample, kDomain, 0).ok());
}

TEST(MaxDiffTest, BoundaryLandsInLargestGap) {
  // Two clusters separated by a huge gap: with 2 bins the single boundary
  // must fall inside the gap.
  const std::vector<double> sample{1.0, 2.0, 3.0, 80.0, 81.0, 82.0};
  auto est = MaxDiffHistogram::Create(sample, kDomain, 2);
  ASSERT_TRUE(est.ok());
  ASSERT_EQ(est->bins().edges().size(), 3u);
  const double boundary = est->bins().edges()[1];
  EXPECT_GT(boundary, 3.0);
  EXPECT_LT(boundary, 80.0);
  // Each cluster then fills its own bin.
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(0.0, boundary), 0.5);
}

TEST(MaxDiffTest, SeparatesClustersIntoBins) {
  // Three clusters, three bins: each bin holds exactly one cluster's mass
  // (spread uniformly within the bin, per formula (4)).
  std::vector<double> sample;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) sample.push_back(5.0 + rng.NextDouble());
  for (int i = 0; i < 200; ++i) sample.push_back(50.0 + rng.NextDouble());
  for (int i = 0; i < 100; ++i) sample.push_back(95.0 + rng.NextDouble());
  auto est = MaxDiffHistogram::Create(sample, kDomain, 3);
  ASSERT_TRUE(est.ok());
  const auto& edges = est->bins().edges();
  ASSERT_EQ(edges.size(), 4u);
  // Boundaries fall inside the two inter-cluster gaps.
  EXPECT_GT(edges[1], 6.0);
  EXPECT_LT(edges[1], 50.0);
  EXPECT_GT(edges[2], 51.0);
  EXPECT_LT(edges[2], 95.0);
  // Whole-bin queries return the cluster masses exactly.
  EXPECT_NEAR(est->EstimateSelectivity(0.0, edges[1]), 0.25, 1e-12);
  EXPECT_NEAR(est->EstimateSelectivity(edges[1], edges[2]), 0.5, 1e-12);
  EXPECT_NEAR(est->EstimateSelectivity(edges[2], 100.0), 0.25, 1e-12);
}

TEST(MaxDiffTest, FewerGapsThanRequestedBins) {
  // All samples identical: no positive gaps, so only one bin results.
  const std::vector<double> sample(10, 42.0);
  auto est = MaxDiffHistogram::Create(sample, kDomain, 5);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->num_bins(), 1);
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 100.0), 1.0, 1e-12);
}

TEST(MaxDiffTest, FullDomainSelectivityIsOne) {
  Rng rng(2);
  std::vector<double> sample(300);
  for (double& x : sample) x = 100.0 * rng.NextDouble();
  auto est = MaxDiffHistogram::Create(sample, kDomain, 12);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 100.0), 1.0, 1e-12);
}

TEST(MaxDiffTest, NameContainsBinCount) {
  const std::vector<double> sample{1.0, 50.0};
  auto est = MaxDiffHistogram::Create(sample, kDomain, 2);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->name(), "max-diff(2)");
}

}  // namespace
}  // namespace selest
