// Binary column-file tests: write/mmap round trip, the damage taxonomy
// (DESIGN.md §8), and the unfinished-writer detection that makes crashed
// writers visible.
#include "src/data/column_file.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/data/column_source.h"
#include "src/data/domain.h"
#include "src/util/random.h"

namespace selest {
namespace {

class ColumnFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("column_file_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& file) const { return dir_ / file; }

  std::filesystem::path dir_;
};

std::vector<double> TestRows(size_t n) {
  Rng rng(5);
  std::vector<double> rows(n);
  for (double& v : rows) v = std::floor(1024.0 * rng.NextDouble());
  return rows;
}

TEST_F(ColumnFileTest, RoundTripsThroughMmap) {
  const Domain domain = BitDomain(10);
  const std::vector<double> rows = TestRows(1000);
  ASSERT_TRUE(WriteColumnFile(Path("col.bin"), "weights", domain, rows).ok());

  auto header = ReadColumnFileHeader(Path("col.bin"));
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->name, "weights");
  EXPECT_EQ(header->row_count, rows.size());
  EXPECT_EQ(header->domain.lo, domain.lo);
  EXPECT_EQ(header->domain.hi, domain.hi);
  EXPECT_EQ(header->domain.discrete, domain.discrete);
  EXPECT_EQ(header->domain.bits, domain.bits);

  for (const size_t chunk_rows : {1ul, 64ul, 4096ul}) {
    auto source = MmapColumnSource::Open(Path("col.bin"), chunk_rows);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    EXPECT_EQ((*source)->rows(), rows.size());
    EXPECT_EQ((*source)->name(), "weights");
    EXPECT_EQ(MaterializeSource(**source), rows);
    // Reset replays.
    EXPECT_EQ(MaterializeSource(**source), rows);
  }
}

TEST_F(ColumnFileTest, AppendsAccumulateAcrossBatches) {
  const std::vector<double> rows = TestRows(300);
  auto writer = ColumnFileWriter::Open(Path("col.bin"), "w", BitDomain(10));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(std::span<const double>(rows).subspan(0, 100)).ok());
  ASSERT_TRUE(writer->Append(std::span<const double>(rows).subspan(100)).ok());
  ASSERT_TRUE(writer->Finish().ok());
  auto source = MmapColumnSource::Open(Path("col.bin"));
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(MaterializeSource(**source), rows);
}

TEST_F(ColumnFileTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadColumnFileHeader(Path("absent.bin")).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(MmapColumnSource::Open(Path("absent.bin")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ColumnFileTest, TruncatedHeaderIsOutOfRange) {
  std::ofstream out(Path("short.bin"), std::ios::binary);
  out << "SELESTcf";  // magic only
  out.close();
  EXPECT_EQ(MmapColumnSource::Open(Path("short.bin")).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(ColumnFileTest, WrongMagicIsDataLoss) {
  std::ofstream out(Path("bad.bin"), std::ios::binary);
  std::vector<char> junk(kColumnFileHeaderBytes, 'x');
  out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  out.close();
  EXPECT_EQ(MmapColumnSource::Open(Path("bad.bin")).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(ColumnFileTest, FutureVersionIsFailedPrecondition) {
  const std::vector<double> rows = TestRows(10);
  ASSERT_TRUE(WriteColumnFile(Path("v.bin"), "w", BitDomain(10), rows).ok());
  // Patch the version field (offset 8) far beyond the current one.
  std::fstream file(Path("v.bin"),
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(8);
  const uint32_t future = 999;
  file.write(reinterpret_cast<const char*>(&future), sizeof(future));
  file.close();
  EXPECT_EQ(MmapColumnSource::Open(Path("v.bin")).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ColumnFileTest, UnfinishedWriterIsDataLoss) {
  // A writer that crashed before Finish leaves row_count = 0 with a
  // non-empty payload; the reader must refuse rather than serve half a
  // column as a whole one.
  const std::vector<double> rows = TestRows(50);
  {
    auto writer = ColumnFileWriter::Open(Path("crash.bin"), "w", BitDomain(10));
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(rows).ok());
    // Destructor closes without Finish — the simulated crash.
  }
  EXPECT_EQ(MmapColumnSource::Open(Path("crash.bin")).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(ColumnFileTest, TruncatedPayloadIsDataLoss) {
  const std::vector<double> rows = TestRows(100);
  ASSERT_TRUE(WriteColumnFile(Path("t.bin"), "w", BitDomain(10), rows).ok());
  std::filesystem::resize_file(
      Path("t.bin"), kColumnFileHeaderBytes + 50 * sizeof(double));
  EXPECT_EQ(MmapColumnSource::Open(Path("t.bin")).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(ColumnFileTest, WriterRejectsNonFiniteValues) {
  auto writer = ColumnFileWriter::Open(Path("nan.bin"), "w", BitDomain(10));
  ASSERT_TRUE(writer.ok());
  const double bad[] = {1.0, std::nan(""), 2.0};
  EXPECT_EQ(writer->Append(bad).code(), StatusCode::kInvalidArgument);
}

TEST_F(ColumnFileTest, OverlongNameIsRejected) {
  const std::string name(300, 'n');
  EXPECT_EQ(
      ColumnFileWriter::Open(Path("n.bin"), name, BitDomain(10)).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace selest
