#include "src/smoothing/normal_scale.h"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"
#include "src/util/stats.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

std::vector<double> GaussianSample(size_t n, double mean, double sigma,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample(n);
  for (double& x : sample) x = mean + sigma * rng.NextGaussian();
  return sample;
}

TEST(NormalScaleBinWidthTest, MatchesPaperFormula) {
  const auto sample = GaussianSample(2000, 50.0, 5.0, 1);
  const double s = NormalScaleSigma(sample);
  const double expected = std::cbrt(24.0 * std::sqrt(std::numbers::pi)) * s *
                          std::pow(2000.0, -1.0 / 3.0);
  EXPECT_NEAR(NormalScaleBinWidth(sample, kDomain), expected, 1e-12);
}

TEST(NormalScaleBinWidthTest, ShrinksWithSampleSize) {
  const auto small = GaussianSample(200, 50.0, 5.0, 2);
  const auto large = GaussianSample(20000, 50.0, 5.0, 2);
  EXPECT_GT(NormalScaleBinWidth(small, kDomain),
            NormalScaleBinWidth(large, kDomain));
}

TEST(NormalScaleBinWidthTest, N13ScalingRate) {
  // h(8n) / h(n) should be 1/2 up to sampling noise in s.
  const auto base = GaussianSample(1000, 50.0, 5.0, 3);
  const auto big = GaussianSample(8000, 50.0, 5.0, 3);
  const double ratio = NormalScaleBinWidth(big, kDomain) /
                       NormalScaleBinWidth(base, kDomain);
  EXPECT_NEAR(ratio, 0.5, 0.05);
}

TEST(NormalScaleBinWidthTest, FallsBackOnConstantData) {
  const std::vector<double> sample(100, 42.0);
  EXPECT_DOUBLE_EQ(NormalScaleBinWidth(sample, kDomain),
                   kDomain.width() / 10.0);
}

TEST(NormalScaleNumBinsTest, RoundsDomainOverWidth) {
  const auto sample = GaussianSample(2000, 50.0, 5.0, 4);
  const double width = NormalScaleBinWidth(sample, kDomain);
  const int expected =
      std::max(1, static_cast<int>(std::lround(kDomain.width() / width)));
  EXPECT_EQ(NormalScaleNumBins(sample, kDomain), expected);
}

TEST(NormalScaleNumBinsTest, PaperExampleSameOrderAsObservedOptimum) {
  // §4 / Fig. 4: Normal data, 2,000 samples → the optimal number of bins
  // observed in the paper was 20. With sigma = width/8 the rule gives
  // h = 3.49·(width/8)·2000^(−1/3) ≈ width/28.9 → ≈ 29 bins: same order of
  // magnitude, slightly finer than the observed optimum.
  const auto sample = GaussianSample(2000, 50.0, 100.0 / 8.0, 5);
  const int bins = NormalScaleNumBins(sample, kDomain);
  EXPECT_GE(bins, 24);
  EXPECT_LE(bins, 35);
}

TEST(NormalScaleBandwidthTest, MatchesPaperConstant) {
  const auto sample = GaussianSample(2000, 50.0, 5.0, 6);
  const double s = NormalScaleSigma(sample);
  // §4.2: h_K ≈ 2.345 · s · n^(−1/5) for the Epanechnikov kernel.
  EXPECT_NEAR(NormalScaleBandwidth(sample, kDomain),
              2.345 * s * std::pow(2000.0, -0.2), 0.001 * s);
}

TEST(NormalScaleBandwidthTest, N15ScalingRate) {
  const auto base = GaussianSample(1000, 50.0, 5.0, 7);
  const auto big = GaussianSample(32000, 50.0, 5.0, 7);
  const double ratio = NormalScaleBandwidth(big, kDomain) /
                       NormalScaleBandwidth(base, kDomain);
  EXPECT_NEAR(ratio, 0.5, 0.05);  // 32^(−1/5) = 1/2
}

TEST(NormalScaleBandwidthTest, GaussianKernelNeedsWiderBandwidth) {
  // C(K) is kernel-specific; the Gaussian kernel constant (≈1.06·(...)) is
  // smaller than Epanechnikov's because its support is unbounded.
  const auto sample = GaussianSample(500, 50.0, 5.0, 8);
  const double epan = NormalScaleBandwidth(sample, kDomain, Kernel());
  const double gauss =
      NormalScaleBandwidth(sample, kDomain, Kernel(KernelType::kGaussian));
  EXPECT_LT(gauss, epan);
  EXPECT_GT(gauss, 0.0);
}

TEST(NormalScaleBandwidthTest, FallsBackOnConstantData) {
  const std::vector<double> sample(100, 42.0);
  EXPECT_DOUBLE_EQ(NormalScaleBandwidth(sample, kDomain),
                   kDomain.width() / 100.0);
}

TEST(NormalScaleBandwidthTest, ScaleEquivariance) {
  // Scaling the data by c scales the bandwidth by c.
  auto sample = GaussianSample(1000, 10.0, 2.0, 9);
  const double h1 = NormalScaleBandwidth(sample, kDomain);
  for (double& x : sample) x *= 3.0;
  const Domain wide = ContinuousDomain(0.0, 300.0);
  const double h3 = NormalScaleBandwidth(sample, wide);
  EXPECT_NEAR(h3, 3.0 * h1, 1e-9);
}

TEST(TryNormalScaleTest, MatchesAbortingFormsOnValidInput) {
  const auto sample = GaussianSample(500, 50.0, 5.0, 13);
  EXPECT_EQ(TryNormalScaleBinWidth(sample, kDomain).value(),
            NormalScaleBinWidth(sample, kDomain));
  EXPECT_EQ(TryNormalScaleNumBins(sample, kDomain).value(),
            NormalScaleNumBins(sample, kDomain));
  EXPECT_EQ(TryNormalScaleBandwidth(sample, kDomain).value(),
            NormalScaleBandwidth(sample, kDomain));
}

TEST(TryNormalScaleTest, EmptySampleIsInvalidArgumentNotAbort) {
  const std::vector<double> empty;
  EXPECT_EQ(TryNormalScaleBinWidth(empty, kDomain).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TryNormalScaleNumBins(empty, kDomain).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TryNormalScaleBandwidth(empty, kDomain).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TryNormalScaleTest, ConstantDataKeepsFallbacks) {
  const std::vector<double> sample(100, 42.0);
  EXPECT_DOUBLE_EQ(TryNormalScaleBandwidth(sample, kDomain).value(),
                   kDomain.width() / 100.0);
  EXPECT_DOUBLE_EQ(TryNormalScaleBinWidth(sample, kDomain).value(),
                   kDomain.width() / 10.0);
}

}  // namespace
}  // namespace selest
