#include <cmath>
#include "src/est/change_point.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

// Step density: dense on [0, 40], sparse on [40, 100].
std::vector<double> StepSample(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample;
  sample.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.8) {
      sample.push_back(40.0 * rng.NextDouble());
    } else {
      sample.push_back(40.0 + 60.0 * rng.NextDouble());
    }
  }
  return sample;
}

Kde MakePilot(const std::vector<double>& sample, double bandwidth) {
  auto kde = Kde::Create(sample, bandwidth, kDomain, Kernel(),
                         BoundaryPolicy::kReflection);
  EXPECT_TRUE(kde.ok());
  return std::move(kde).value();
}

TEST(ChangePointTest, DetectsDensityStep) {
  const auto sample = StepSample(5000, 1);
  const Kde pilot = MakePilot(sample, 3.0);
  ChangePointConfig config;
  config.max_change_points = 3;
  const auto points = DetectChangePoints(pilot, kDomain, config);
  ASSERT_FALSE(points.empty());
  // At least one detected point near the true step at 40.
  bool near_step = false;
  for (double p : points) {
    if (std::fabs(p - 40.0) < 6.0) near_step = true;
  }
  EXPECT_TRUE(near_step);
}

TEST(ChangePointTest, RespectsMaxCount) {
  const auto sample = StepSample(3000, 2);
  const Kde pilot = MakePilot(sample, 2.0);
  ChangePointConfig config;
  config.max_change_points = 2;
  EXPECT_LE(DetectChangePoints(pilot, kDomain, config).size(), 2u);
  config.max_change_points = 0;
  EXPECT_TRUE(DetectChangePoints(pilot, kDomain, config).empty());
}

TEST(ChangePointTest, PointsAreSortedAndSeparated) {
  const auto sample = StepSample(5000, 3);
  const Kde pilot = MakePilot(sample, 2.0);
  ChangePointConfig config;
  config.max_change_points = 8;
  config.min_separation_fraction = 0.05;
  const auto points = DetectChangePoints(pilot, kDomain, config);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i], points[i - 1]);
    EXPECT_GE(points[i] - points[i - 1], 0.05 * kDomain.width());
  }
  for (double p : points) {
    EXPECT_GE(p - kDomain.lo, 0.05 * kDomain.width());
    EXPECT_GE(kDomain.hi - p, 0.05 * kDomain.width());
  }
}

TEST(ChangePointTest, SmoothDensityYieldsFewOrNoPoints) {
  // A flat uniform density (with reflection removing boundary curvature)
  // should trigger at most noise-level detections with a strict
  // significance threshold.
  Rng rng(4);
  std::vector<double> sample(20000);
  for (double& x : sample) x = 100.0 * rng.NextDouble();
  const Kde pilot = MakePilot(sample, 8.0);
  ChangePointConfig config;
  config.significance = 5.0;
  config.max_change_points = 8;
  EXPECT_LE(DetectChangePoints(pilot, kDomain, config).size(), 1u);
}

TEST(ChangePointTest, TwoStepsDetected) {
  // Dense block in the middle: change points near both edges of the block.
  Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 8000; ++i) {
    sample.push_back(40.0 + 20.0 * rng.NextDouble());
  }
  for (int i = 0; i < 2000; ++i) {
    sample.push_back(100.0 * rng.NextDouble());
  }
  const Kde pilot = MakePilot(sample, 2.0);
  ChangePointConfig config;
  config.max_change_points = 4;
  const auto points = DetectChangePoints(pilot, kDomain, config);
  bool near_left_edge = false;
  bool near_right_edge = false;
  for (double p : points) {
    if (std::fabs(p - 40.0) < 6.0) near_left_edge = true;
    if (std::fabs(p - 60.0) < 6.0) near_right_edge = true;
  }
  EXPECT_TRUE(near_left_edge);
  EXPECT_TRUE(near_right_edge);
}

}  // namespace
}  // namespace selest
