// GuardedEstimator: transparent over a healthy chain head, repairs
// malformed queries, falls back past poisoned links, and always returns a
// finite selectivity in [0, 1].
#include "src/est/guarded_estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/data/dataset.h"
#include "src/data/distribution.h"
#include "src/est/estimator_factory.h"
#include "src/exec/fault_injection.h"
#include "src/util/random.h"

namespace selest {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// A chain link that returns a constant — including NaN/Inf or values
// outside [0, 1] — to exercise each guard path.
class ConstEstimator : public SelectivityEstimator {
 public:
  explicit ConstEstimator(double value, std::string name = "const")
      : value_(value), name_(std::move(name)) {}
  double EstimateSelectivity(double, double) const override { return value_; }
  size_t StorageBytes() const override { return sizeof(double); }
  std::string name() const override { return name_; }

 private:
  double value_;
  std::string name_;
};

std::unique_ptr<GuardedEstimator> MakeGuarded(std::vector<double> link_values,
                                              const Domain& domain) {
  std::vector<std::unique_ptr<SelectivityEstimator>> chain;
  for (double value : link_values) {
    chain.push_back(std::make_unique<ConstEstimator>(value));
  }
  return std::make_unique<GuardedEstimator>(std::move(chain), domain);
}

std::vector<double> MakeSample(size_t n) {
  Rng rng(3);
  const Domain domain = ContinuousDomain(0.0, 100.0);
  const NormalDistribution dist(50.0, 12.0);
  const Dataset data = GenerateDataset("s", dist, n, domain, rng);
  return data.values();
}

TEST(GuardedEstimatorTest, TransparentForHealthyPrimary) {
  const Domain domain = ContinuousDomain(0.0, 100.0);
  const std::vector<double> sample = MakeSample(500);
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  auto raw = BuildEstimator(sample, domain, config);
  ASSERT_TRUE(raw.ok());
  auto guarded = BuildGuardedEstimator(sample, domain, config);
  ASSERT_TRUE(guarded.ok());
  EXPECT_TRUE(guarded->primary_status.ok());
  const GuardedEstimator& chain = *guarded->estimator;
  for (double a = 0.0; a < 100.0; a += 7.3) {
    const double b = std::min(100.0, a + 13.7);
    // Bit-identical, not just close: the guard must not rewrite healthy
    // answers.
    EXPECT_EQ(chain.EstimateSelectivity(a, b),
              raw.value()->EstimateSelectivity(a, b));
  }
  const GuardedStats stats = chain.stats();
  EXPECT_GT(stats.queries, 0u);
  EXPECT_FALSE(stats.degraded());
}

TEST(GuardedEstimatorTest, RepairsNanAndInvertedQueries) {
  const Domain domain = ContinuousDomain(0.0, 10.0);
  auto guarded = MakeGuarded({0.25}, domain);
  EXPECT_EQ(guarded->EstimateSelectivity(kNan, 5.0), 0.25);
  EXPECT_EQ(guarded->EstimateSelectivity(2.0, kNan), 0.25);
  EXPECT_EQ(guarded->EstimateSelectivity(kNan, kNan), 0.25);
  EXPECT_EQ(guarded->EstimateSelectivity(8.0, 2.0), 0.25);  // inverted
  EXPECT_EQ(guarded->EstimateSelectivity(-kInf, kInf), 0.25);
  EXPECT_EQ(guarded->stats().repaired_queries, 4u);  // ±inf clamp is not a repair
  EXPECT_EQ(guarded->stats().queries, 5u);
}

TEST(GuardedEstimatorTest, ClampsOutOfRangeEstimates) {
  const Domain domain = ContinuousDomain(0.0, 10.0);
  EXPECT_EQ(MakeGuarded({1.75}, domain)->EstimateSelectivity(1.0, 2.0), 1.0);
  EXPECT_EQ(MakeGuarded({-0.5}, domain)->EstimateSelectivity(1.0, 2.0), 0.0);
  auto guarded = MakeGuarded({2.5}, domain);
  guarded->EstimateSelectivity(0.0, 1.0);
  EXPECT_EQ(guarded->stats().clamped_estimates, 1u);
}

TEST(GuardedEstimatorTest, FallsBackPastPoisonedLinks) {
  const Domain domain = ContinuousDomain(0.0, 10.0);
  auto guarded = MakeGuarded({kNan, kInf, 0.5}, domain);
  EXPECT_EQ(guarded->EstimateSelectivity(1.0, 2.0), 0.5);
  const GuardedStats stats = guarded->stats();
  EXPECT_EQ(stats.fallback_estimates, 1u);
  EXPECT_EQ(stats.uniform_rescues, 0u);
  EXPECT_TRUE(stats.degraded());
}

TEST(GuardedEstimatorTest, UniformRescueWhenWholeChainIsPoisoned) {
  const Domain domain = ContinuousDomain(0.0, 10.0);
  auto guarded = MakeGuarded({kNan, -kInf}, domain);
  EXPECT_DOUBLE_EQ(guarded->EstimateSelectivity(2.0, 7.0), 0.5);
  EXPECT_EQ(guarded->stats().uniform_rescues, 1u);
}

TEST(GuardedEstimatorTest, EmptyChainAnswersUniformly) {
  const Domain domain = ContinuousDomain(0.0, 10.0);
  auto guarded = MakeGuarded({}, domain);
  EXPECT_DOUBLE_EQ(guarded->EstimateSelectivity(0.0, 5.0), 0.5);
  EXPECT_EQ(guarded->name(), "guarded(uniform)");
}

TEST(GuardedEstimatorTest, BatchMatchesScalarIncludingMalformedQueries) {
  const Domain domain = ContinuousDomain(0.0, 10.0);
  auto guarded = MakeGuarded({kNan, 0.5}, domain);
  const std::vector<RangeQuery> queries = {
      {1.0, 2.0}, {kNan, 3.0}, {9.0, 1.0}, {-kInf, kInf}};
  std::vector<double> batch(queries.size());
  guarded->EstimateSelectivityBatch(queries, batch);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch[i], guarded->EstimateSelectivity(queries[i]));
  }
}

TEST(GuardedEstimatorTest, BuildDegradesWhenPrimaryCannotBuild) {
  const Domain domain = ContinuousDomain(0.0, 100.0);
  EstimatorConfig config;
  config.kind = EstimatorKind::kKernel;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = kNan;  // a bandwidth no kernel can use
  const std::vector<double> sample = MakeSample(200);
  auto guarded = BuildGuardedEstimator(sample, domain, config);
  ASSERT_TRUE(guarded.ok());
  EXPECT_FALSE(guarded->primary_status.ok());
  EXPECT_TRUE(guarded->degraded());
  // The fallback ladder (equi-width, then uniform) still answers.
  const double estimate = guarded->estimator->EstimateSelectivity(10.0, 30.0);
  EXPECT_TRUE(std::isfinite(estimate));
  EXPECT_GE(estimate, 0.0);
  EXPECT_LE(estimate, 1.0);
  EXPECT_NE(guarded->estimator->name().find("guarded("), std::string::npos);
  EXPECT_NE(guarded->estimator->name().find("equi-width"), std::string::npos);
}

TEST(GuardedEstimatorTest, BuildSurvivesEmptySampleViaUniform) {
  const Domain domain = ContinuousDomain(0.0, 100.0);
  EstimatorConfig config;
  config.kind = EstimatorKind::kKernel;
  auto guarded = BuildGuardedEstimator({}, domain, config);
  ASSERT_TRUE(guarded.ok());
  EXPECT_FALSE(guarded->primary_status.ok());
  // Every fallback needing a sample fails too; the uniform rung answers.
  EXPECT_DOUBLE_EQ(guarded->estimator->EstimateSelectivity(0.0, 50.0), 0.5);
}

TEST(GuardedEstimatorTest, BuildSurvivesInjectedBuildFaults) {
  const Domain domain = ContinuousDomain(0.0, 100.0);
  const std::vector<double> sample = MakeSample(200);
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  {
    ScopedFault fault(kFaultPointEstimatorBuild);
    auto guarded = BuildGuardedEstimator(sample, domain, config);
    ASSERT_TRUE(guarded.ok());
    EXPECT_EQ(guarded->primary_status.code(), StatusCode::kInternal);
    // Fallback builds hit the same fault point, so only uniform remains —
    // and it must, because it is built outside BuildEstimator.
    EXPECT_EQ(guarded->estimator->chain_length(), 1u);
    EXPECT_DOUBLE_EQ(guarded->estimator->EstimateSelectivity(0.0, 25.0), 0.25);
  }
  FaultInjector::DisarmAll();
}

TEST(GuardedEstimatorTest, BuildRejectsUnusableDomain) {
  EstimatorConfig config;
  Domain inverted;
  inverted.lo = 10.0;
  inverted.hi = 0.0;
  EXPECT_FALSE(BuildGuardedEstimator(MakeSample(50), inverted, config).ok());
  Domain nan_domain;
  nan_domain.lo = kNan;
  nan_domain.hi = 1.0;
  EXPECT_FALSE(BuildGuardedEstimator(MakeSample(50), nan_domain, config).ok());
}

// --- Factory hardening: malformed external input is a Status, not an
// abort, for every estimator kind. ---

TEST(EstimatorFactoryRobustnessTest, RejectsNonFiniteSampleValues) {
  const Domain domain = ContinuousDomain(0.0, 100.0);
  std::vector<double> sample = MakeSample(100);
  sample[50] = kNan;
  for (const EstimatorKind kind :
       {EstimatorKind::kEquiWidth, EstimatorKind::kEquiDepth,
        EstimatorKind::kKernel, EstimatorKind::kSampling,
        EstimatorKind::kWavelet}) {
    EstimatorConfig config;
    config.kind = kind;
    const auto estimator = BuildEstimator(sample, domain, config);
    ASSERT_FALSE(estimator.ok()) << EstimatorKindName(kind);
    EXPECT_EQ(estimator.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(EstimatorFactoryRobustnessTest, RejectsAbsurdFixedSmoothing) {
  const Domain domain = ContinuousDomain(0.0, 100.0);
  const std::vector<double> sample = MakeSample(100);
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  config.smoothing = SmoothingRule::kFixed;
  for (const double bad : {kNan, kInf, 1e30}) {
    config.fixed_smoothing = bad;
    const auto estimator = BuildEstimator(sample, domain, config);
    ASSERT_FALSE(estimator.ok()) << bad;
    EXPECT_EQ(estimator.status().code(), StatusCode::kInvalidArgument);
  }
  config.kind = EstimatorKind::kKernel;
  for (const double bad : {kNan, 0.0, -1.0}) {
    config.fixed_smoothing = bad;
    EXPECT_FALSE(BuildEstimator(sample, domain, config).ok()) << bad;
  }
}

TEST(EstimatorFactoryRobustnessTest, ClampsBinCountToDiscreteCardinality) {
  // A 3-bit domain has 8 representable values; asking for 1000 bins must
  // build an 8-bin histogram, not 992 empty bins.
  const Domain domain = BitDomain(3);
  const std::vector<double> sample = {0, 1, 2, 3, 4, 5, 6, 7};
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = 1000.0;
  const auto estimator = BuildEstimator(sample, domain, config);
  ASSERT_TRUE(estimator.ok()) << estimator.status().ToString();
  EXPECT_EQ(estimator.value()->name(), "equi-width(8)");
}

TEST(EstimatorFactoryRobustnessTest, SingleValueSampleIsStatusNotAbort) {
  // Zero spread defeats the data-driven smoothing rules; whatever each
  // kind does, it must answer with ok() or a Status — never abort.
  const Domain domain = ContinuousDomain(0.0, 100.0);
  const std::vector<double> sample(50, 42.0);
  for (const EstimatorKind kind :
       {EstimatorKind::kEquiWidth, EstimatorKind::kEquiDepth,
        EstimatorKind::kMaxDiff, EstimatorKind::kKernel,
        EstimatorKind::kHybrid, EstimatorKind::kAverageShifted}) {
    EstimatorConfig config;
    config.kind = kind;
    const auto estimator = BuildEstimator(sample, domain, config);
    if (estimator.ok()) {
      const double value = estimator.value()->EstimateSelectivity(40.0, 45.0);
      EXPECT_TRUE(std::isfinite(value)) << EstimatorKindName(kind);
    }
  }
}

}  // namespace
}  // namespace selest
