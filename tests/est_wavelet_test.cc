#include <cmath>

#include "src/est/wavelet_histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

TEST(HaarTransformTest, RoundTripsExactly) {
  Rng rng(1);
  std::vector<double> values(64);
  for (double& v : values) v = rng.NextDouble() * 10.0 - 5.0;
  std::vector<double> original = values;
  HaarTransform(values);
  InverseHaarTransform(values);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(values[i], original[i], 1e-12);
  }
}

TEST(HaarTransformTest, PreservesEnergy) {
  // Orthonormal transform: ‖x‖² is invariant (Parseval).
  Rng rng(2);
  std::vector<double> values(128);
  double energy = 0.0;
  for (double& v : values) {
    v = rng.NextGaussian();
    energy += v * v;
  }
  HaarTransform(values);
  double transformed_energy = 0.0;
  for (double v : values) transformed_energy += v * v;
  EXPECT_NEAR(transformed_energy, energy, 1e-9);
}

TEST(HaarTransformTest, ConstantVectorIsSingleCoefficient) {
  std::vector<double> values(16, 3.0);
  HaarTransform(values);
  // c0 = sum / sqrt(N); all detail coefficients vanish.
  EXPECT_NEAR(values[0], 3.0 * 16.0 / 4.0, 1e-12);
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_NEAR(values[i], 0.0, 1e-12);
  }
}

TEST(WaveletHistogramTest, RejectsBadInput) {
  const std::vector<double> sample{1.0};
  EXPECT_FALSE(WaveletHistogram::Create({}, kDomain, 8).ok());
  EXPECT_FALSE(WaveletHistogram::Create(sample, kDomain, 0).ok());
  EXPECT_FALSE(WaveletHistogram::Create(sample, kDomain, 8, 100).ok());
  EXPECT_FALSE(WaveletHistogram::Create(sample, kDomain, 600, 512).ok());
}

TEST(WaveletHistogramTest, AllCoefficientsReproduceBaseHistogram) {
  // Keeping every coefficient makes the reconstruction lossless, so a
  // cell-aligned query returns the exact sample fraction.
  Rng rng(3);
  std::vector<double> sample(256);
  for (double& v : sample) v = 100.0 * rng.NextDouble();
  auto est = WaveletHistogram::Create(sample, kDomain, 64, 64);
  ASSERT_TRUE(est.ok());
  size_t exact = 0;
  for (double v : sample) {
    if (v < 50.0) ++exact;  // cells are [i·100/64, (i+1)·100/64)
  }
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 50.0 - 1e-9),
              static_cast<double>(exact) / sample.size(), 0.02);
}

TEST(WaveletHistogramTest, SingleCoefficientActsUniform) {
  Rng rng(4);
  std::vector<double> sample(500);
  for (double& v : sample) v = 100.0 * rng.NextDouble();
  auto est = WaveletHistogram::Create(sample, kDomain, 1);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 25.0), 0.25, 1e-9);
}

TEST(WaveletHistogramTest, FullDomainSelectivityIsOne) {
  Rng rng(5);
  std::vector<double> sample(400);
  for (double& v : sample) v = 100.0 * rng.NextDouble() * rng.NextDouble();
  auto est = WaveletHistogram::Create(sample, kDomain, 32);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 100.0), 1.0, 1e-9);
}

TEST(WaveletHistogramTest, CapturesStepWithFewCoefficients) {
  // A half-domain step is one Haar coefficient: 2 coefficients suffice.
  Rng rng(6);
  std::vector<double> sample;
  for (int i = 0; i < 900; ++i) sample.push_back(50.0 * rng.NextDouble());
  for (int i = 0; i < 100; ++i) {
    sample.push_back(50.0 + 50.0 * rng.NextDouble());
  }
  auto est = WaveletHistogram::Create(sample, kDomain, 2);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 50.0), 0.9, 0.01);
  EXPECT_NEAR(est->EstimateSelectivity(50.0, 100.0), 0.1, 0.01);
}

TEST(WaveletHistogramTest, MoreCoefficientsImproveSkewedEstimates) {
  Rng rng(7);
  std::vector<double> sample(2000);
  for (double& v : sample) {
    v = kDomain.Clamp(rng.NextExponential(1.0 / 12.0));
  }
  std::sort(sample.begin(), sample.end());
  const auto truth = [&sample](double a, double b) {
    const auto lo = std::lower_bound(sample.begin(), sample.end(), a);
    const auto hi = std::upper_bound(sample.begin(), sample.end(), b);
    return static_cast<double>(hi - lo) / static_cast<double>(sample.size());
  };
  const auto total_error = [&](int coefficients) {
    auto est = WaveletHistogram::Create(sample, kDomain, coefficients);
    EXPECT_TRUE(est.ok());
    double error = 0.0;
    for (double a = 0.0; a < 95.0; a += 5.0) {
      error += std::fabs(est->EstimateSelectivity(a, a + 5.0) -
                         truth(a, a + 5.0));
    }
    return error;
  };
  EXPECT_LT(total_error(64), total_error(4));
}

TEST(WaveletHistogramTest, EstimatesWithinUnitInterval) {
  Rng rng(8);
  std::vector<double> sample(300);
  for (double& v : sample) v = 100.0 * rng.NextDouble();
  auto est = WaveletHistogram::Create(sample, kDomain, 16);
  ASSERT_TRUE(est.ok());
  for (double a = -20.0; a < 120.0; a += 3.0) {
    const double s = est->EstimateSelectivity(a, a + 10.0);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(WaveletHistogramTest, StorageTracksCoefficientBudget) {
  const std::vector<double> sample{1.0, 2.0};
  auto est = WaveletHistogram::Create(sample, kDomain, 24);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->StorageBytes(), 24 * (sizeof(uint32_t) + sizeof(double)));
  EXPECT_EQ(est->name(), "wavelet(24)");
}

}  // namespace
}  // namespace selest
