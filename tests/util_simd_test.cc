// The SIMD shim's scalar building blocks and dispatch machinery:
//
//   * BranchFreeLowerBound/BranchFreeUpperBound return exactly the
//     std::lower_bound/std::upper_bound index for every total-ordered
//     input (duplicates, all-equal runs, ±inf keys, out-of-range keys);
//   * AlignedVector storage really is kSimdAlign-aligned;
//   * tier detection, the SELEST_SIMD-independent tier tables, and the
//     ScopedSimdTier override stack behave as documented;
//   * the exactness policy constant is pinned at 0 ULP.
#include "src/util/simd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void ExpectMatchesStd(const std::vector<double>& data, double key) {
  const size_t lb = BranchFreeLowerBound(data.data(), data.size(), key);
  const size_t ub = BranchFreeUpperBound(data.data(), data.size(), key);
  const size_t std_lb = static_cast<size_t>(
      std::lower_bound(data.begin(), data.end(), key) - data.begin());
  const size_t std_ub = static_cast<size_t>(
      std::upper_bound(data.begin(), data.end(), key) - data.begin());
  EXPECT_EQ(lb, std_lb) << "lower bound, n=" << data.size() << " key=" << key;
  EXPECT_EQ(ub, std_ub) << "upper bound, n=" << data.size() << " key=" << key;
}

TEST(BranchFreeSearchTest, MatchesStdOnRandomArrays) {
  Rng rng(7);
  for (size_t n = 0; n <= 70; ++n) {
    std::vector<double> data(n);
    for (double& v : data) {
      // Coarse grid so duplicate runs are common.
      v = std::floor(rng.NextDouble() * 16.0);
    }
    std::sort(data.begin(), data.end());
    for (int trial = 0; trial < 40; ++trial) {
      ExpectMatchesStd(data, std::floor(rng.NextDouble() * 20.0) - 2.0);
      ExpectMatchesStd(data, rng.NextDouble() * 20.0 - 2.0);
    }
    ExpectMatchesStd(data, -kInf);
    ExpectMatchesStd(data, kInf);
  }
}

TEST(BranchFreeSearchTest, MatchesStdOnLargeArrayAroundEveryValue) {
  Rng rng(11);
  std::vector<double> data(10000);
  for (double& v : data) v = std::floor(rng.NextDouble() * 300.0);
  std::sort(data.begin(), data.end());
  for (double key = -1.0; key <= 301.0; key += 1.0) {
    ExpectMatchesStd(data, key);
    ExpectMatchesStd(data, key + 0.5);
  }
}

TEST(BranchFreeSearchTest, AllEqualAndSingleton) {
  ExpectMatchesStd({}, 1.0);
  ExpectMatchesStd({5.0}, 4.0);
  ExpectMatchesStd({5.0}, 5.0);
  ExpectMatchesStd({5.0}, 6.0);
  std::vector<double> equal(37, 2.5);
  ExpectMatchesStd(equal, 2.0);
  ExpectMatchesStd(equal, 2.5);
  ExpectMatchesStd(equal, 3.0);
}

TEST(BranchFreeSearchTest, InfiniteEntries) {
  const std::vector<double> data = {-kInf, -kInf, 0.0, 1.0, kInf};
  for (double key : {-kInf, -1.0, 0.0, 0.5, 1.0, 2.0, kInf}) {
    ExpectMatchesStd(data, key);
  }
}

TEST(BranchFreeSearchTest, NanKeysMatchStd) {
  // A NaN key makes every `x < key` comparison false, so both std searches
  // stay well-defined: lower_bound returns 0 and upper_bound returns n.
  // The kernel estimator's fringe loops rely on the branch-free searches
  // reproducing exactly that (a lower index can never exceed an upper one).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Rng rng(13);
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 7u, 37u, 1000u}) {
    std::vector<double> data(n);
    for (double& v : data) v = rng.NextDouble() * 100.0;
    std::sort(data.begin(), data.end());
    ExpectMatchesStd(data, nan);
    EXPECT_EQ(BranchFreeLowerBound(data.data(), n, nan), 0u);
    EXPECT_EQ(BranchFreeUpperBound(data.data(), n, nan), n);
  }
}

TEST(AlignedVectorTest, DataIsCacheLineAligned) {
  for (size_t n : {1u, 3u, 7u, 64u, 1000u}) {
    AlignedDoubles v(n, 0.0);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kSimdAlign, 0u)
        << "n=" << n;
  }
}

TEST(SimdDispatchTest, ExactnessPolicyIsBitIdentity) {
  // The identity suite (est_simd_identity_test) compares with EXPECT_EQ;
  // this constant documents — and pins — that the bound is 0 ULP.
  EXPECT_EQ(kSimdUlpTolerance, 0);
}

TEST(SimdDispatchTest, ScalarTierAlwaysSupportedAndTableLess) {
  EXPECT_TRUE(SimdTierSupported(SimdTier::kScalar));
  EXPECT_EQ(SimdOpsForTier(SimdTier::kScalar), nullptr);
}

TEST(SimdDispatchTest, ActiveTierIsSupportedAndConsistent) {
  const SimdTier tier = ActiveSimdTier();
  EXPECT_TRUE(SimdTierSupported(tier));
  const SimdOps* ops = ActiveSimdOps();
  if (tier == SimdTier::kScalar) {
    EXPECT_EQ(ops, nullptr);
  } else {
    ASSERT_NE(ops, nullptr);
    EXPECT_EQ(ops, SimdOpsForTier(tier));
  }
}

TEST(SimdDispatchTest, VectorTiersHaveDocumentedWidths) {
  if (const SimdOps* avx2 = SimdOpsForTier(SimdTier::kAvx2)) {
    EXPECT_EQ(avx2->width, 4);
    EXPECT_NE(avx2->histogram_block, nullptr);
    EXPECT_NE(avx2->sorted_count_block, nullptr);
    EXPECT_NE(avx2->kernel_block, nullptr);
  }
  if (const SimdOps* avx512 = SimdOpsForTier(SimdTier::kAvx512)) {
    EXPECT_EQ(avx512->width, 8);
    EXPECT_LE(avx512->width, kMaxSimdWidth);
  }
}

TEST(SimdDispatchTest, ScopedOverrideNestsAndRestores) {
  const SimdTier base = ActiveSimdTier();
  {
    ScopedSimdTier scalar(SimdTier::kScalar);
    EXPECT_EQ(ActiveSimdTier(), SimdTier::kScalar);
    EXPECT_EQ(ActiveSimdOps(), nullptr);
    if (SimdTierSupported(SimdTier::kAvx2)) {
      ScopedSimdTier avx2(SimdTier::kAvx2);
      EXPECT_EQ(ActiveSimdTier(), SimdTier::kAvx2);
    }
    EXPECT_EQ(ActiveSimdTier(), SimdTier::kScalar);
  }
  EXPECT_EQ(ActiveSimdTier(), base);
}

TEST(SimdDispatchTest, TierNamesAreStable) {
  EXPECT_STREQ(SimdTierName(SimdTier::kScalar), "scalar");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx2), "avx2");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx512), "avx512");
}

}  // namespace
}  // namespace selest
