// Property tests for the incremental-maintenance (merge/fold) contract on
// SelectivityEstimator: the union law Build(A ∪ B) ≈ Merge(Build(A),
// Build(B)) — exact for count-based sketches (equi-width bins, sorted
// samples), bounded for the equi-depth quantile re-interpolation — plus
// the identities (fold-empty, self-merge) and the type-mismatch errors.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/est/selectivity_estimator.h"
#include "src/query/range_query.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1000.0);

std::vector<double> MakeRows(size_t n, uint64_t seed, double center,
                             double spread) {
  Rng rng(seed);
  std::vector<double> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(kDomain.Clamp(center + spread * rng.NextGaussian()));
  }
  return rows;
}

std::vector<double> Union(const std::vector<double>& a,
                          const std::vector<double>& b) {
  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  return all;
}

std::vector<RangeQuery> ProbeQueries() {
  std::vector<RangeQuery> queries;
  // A sweep of widths and positions, including degenerate and full-range.
  for (int i = 0; i < 20; ++i) {
    const double a = kDomain.lo + 47.0 * static_cast<double>(i);
    queries.push_back({a, a + 30.0 + 11.0 * static_cast<double>(i)});
  }
  queries.push_back({kDomain.lo, kDomain.hi});
  queries.push_back({500.0, 500.0});
  return queries;
}

EstimatorConfig FixedBinsConfig(EstimatorKind kind, int bins) {
  EstimatorConfig config;
  config.kind = kind;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = bins;
  return config;
}

std::unique_ptr<SelectivityEstimator> MustBuild(
    std::span<const double> rows, const EstimatorConfig& config) {
  auto built = BuildEstimator(rows, kDomain, config);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

// --- Exact union law: equi-width (bin counts add) -------------------------

TEST(MergePropertyTest, EquiWidthMergeIsExact) {
  const EstimatorConfig config =
      FixedBinsConfig(EstimatorKind::kEquiWidth, 32);
  const std::vector<double> a = MakeRows(1500, 1, 300.0, 90.0);
  const std::vector<double> b = MakeRows(900, 2, 700.0, 50.0);
  auto merged = MustBuild(a, config);
  auto part_b = MustBuild(b, config);
  ASSERT_TRUE(merged->SupportsMerge());
  ASSERT_TRUE(merged->MergeFrom(*part_b).ok());
  auto whole = MustBuild(Union(a, b), config);
  for (const RangeQuery& query : ProbeQueries()) {
    EXPECT_EQ(merged->EstimateSelectivity(query),
              whole->EstimateSelectivity(query))
        << "query [" << query.a << ", " << query.b << "]";
  }
}

TEST(MergePropertyTest, EquiWidthFoldRowsIsExact) {
  const EstimatorConfig config =
      FixedBinsConfig(EstimatorKind::kEquiWidth, 24);
  const std::vector<double> a = MakeRows(1000, 3, 450.0, 120.0);
  const std::vector<double> b = MakeRows(700, 4, 200.0, 60.0);
  auto folded = MustBuild(a, config);
  ASSERT_TRUE(folded->FoldRows(b).ok());
  auto whole = MustBuild(Union(a, b), config);
  for (const RangeQuery& query : ProbeQueries()) {
    EXPECT_EQ(folded->EstimateSelectivity(query),
              whole->EstimateSelectivity(query));
  }
}

// --- Exact union law: sampling (sorted multisets concatenate) -------------

TEST(MergePropertyTest, SamplingMergeAndFoldAreExact) {
  EstimatorConfig config;
  config.kind = EstimatorKind::kSampling;
  const std::vector<double> a = MakeRows(800, 5, 350.0, 100.0);
  const std::vector<double> b = MakeRows(600, 6, 650.0, 80.0);
  auto whole = MustBuild(Union(a, b), config);

  auto merged = MustBuild(a, config);
  auto part_b = MustBuild(b, config);
  ASSERT_TRUE(merged->SupportsMerge());
  ASSERT_TRUE(merged->MergeFrom(*part_b).ok());

  auto folded = MustBuild(a, config);
  ASSERT_TRUE(folded->FoldRows(b).ok());

  for (const RangeQuery& query : ProbeQueries()) {
    EXPECT_EQ(merged->EstimateSelectivity(query),
              whole->EstimateSelectivity(query));
    EXPECT_EQ(folded->EstimateSelectivity(query),
              whole->EstimateSelectivity(query));
  }
}

// --- Bounded drift: equi-depth quantile re-interpolation ------------------

TEST(MergePropertyTest, EquiDepthMergeHasBoundedDrift) {
  const EstimatorConfig config =
      FixedBinsConfig(EstimatorKind::kEquiDepth, 16);
  const std::vector<double> a = MakeRows(2000, 7, 400.0, 130.0);
  const std::vector<double> b = MakeRows(2000, 8, 600.0, 110.0);
  auto merged = MustBuild(a, config);
  auto part_b = MustBuild(b, config);
  ASSERT_TRUE(merged->SupportsMerge());
  ASSERT_TRUE(merged->MergeFrom(*part_b).ok());
  auto whole = MustBuild(Union(a, b), config);
  for (const RangeQuery& query : ProbeQueries()) {
    const double m = merged->EstimateSelectivity(query);
    const double w = whole->EstimateSelectivity(query);
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
    // The merged CDF is exact at union edges and linear between them; one
    // bin of drift is the contract (est_merge docs, DESIGN.md §10).
    EXPECT_NEAR(m, w, 1.0 / 16.0)
        << "query [" << query.a << ", " << query.b << "]";
  }
}

TEST(MergePropertyTest, EquiDepthFoldRowsHasBoundedDrift) {
  const EstimatorConfig config =
      FixedBinsConfig(EstimatorKind::kEquiDepth, 16);
  const std::vector<double> a = MakeRows(2000, 9, 500.0, 150.0);
  const std::vector<double> b = MakeRows(500, 10, 250.0, 70.0);
  auto folded = MustBuild(a, config);
  ASSERT_TRUE(folded->FoldRows(b).ok());
  auto whole = MustBuild(Union(a, b), config);
  for (const RangeQuery& query : ProbeQueries()) {
    EXPECT_NEAR(folded->EstimateSelectivity(query),
                whole->EstimateSelectivity(query), 1.0 / 16.0);
  }
}

// --- Identities -----------------------------------------------------------

TEST(MergePropertyTest, FoldOfEmptySpanIsIdentity) {
  for (const EstimatorKind kind :
       {EstimatorKind::kEquiWidth, EstimatorKind::kEquiDepth,
        EstimatorKind::kSampling}) {
    const EstimatorConfig config = FixedBinsConfig(kind, 16);
    const std::vector<double> a = MakeRows(600, 11, 480.0, 100.0);
    auto folded = MustBuild(a, config);
    auto reference = MustBuild(a, config);
    ASSERT_TRUE(folded->FoldRows(std::span<const double>()).ok());
    for (const RangeQuery& query : ProbeQueries()) {
      EXPECT_EQ(folded->EstimateSelectivity(query),
                reference->EstimateSelectivity(query));
    }
  }
}

TEST(MergePropertyTest, SelfMergePreservesSelectivities) {
  // Doubling every count scales mass and total alike: σ is unchanged
  // exactly for the count-based sketches.
  for (const EstimatorKind kind :
       {EstimatorKind::kEquiWidth, EstimatorKind::kSampling}) {
    const EstimatorConfig config = FixedBinsConfig(kind, 20);
    const std::vector<double> a = MakeRows(700, 12, 520.0, 140.0);
    auto doubled = MustBuild(a, config);
    auto clone = MustBuild(a, config);
    auto reference = MustBuild(a, config);
    ASSERT_TRUE(doubled->MergeFrom(*clone).ok());
    for (const RangeQuery& query : ProbeQueries()) {
      EXPECT_EQ(doubled->EstimateSelectivity(query),
                reference->EstimateSelectivity(query));
    }
  }
}

// --- Error paths ----------------------------------------------------------

TEST(MergePropertyTest, MergeAcrossTypesIsFailedPrecondition) {
  const std::vector<double> a = MakeRows(300, 13, 500.0, 100.0);
  auto width = MustBuild(a, FixedBinsConfig(EstimatorKind::kEquiWidth, 8));
  auto depth = MustBuild(a, FixedBinsConfig(EstimatorKind::kEquiDepth, 8));
  const Status status = width->MergeFrom(*depth);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(MergePropertyTest, EquiWidthMergeNeedsIdenticalEdges) {
  const std::vector<double> a = MakeRows(300, 14, 500.0, 100.0);
  auto coarse = MustBuild(a, FixedBinsConfig(EstimatorKind::kEquiWidth, 8));
  auto fine = MustBuild(a, FixedBinsConfig(EstimatorKind::kEquiWidth, 16));
  EXPECT_EQ(coarse->MergeFrom(*fine).code(),
            StatusCode::kFailedPrecondition);
}

TEST(MergePropertyTest, NonMergeableEstimatorRejectsMutators) {
  const std::vector<double> a = MakeRows(300, 15, 500.0, 100.0);
  EstimatorConfig config;
  config.kind = EstimatorKind::kKernel;
  auto kernel = MustBuild(a, config);
  EXPECT_FALSE(kernel->SupportsMerge());
  auto other = MustBuild(a, config);
  EXPECT_EQ(kernel->MergeFrom(*other).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(kernel->FoldRows(a).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace selest
