// Fault injection against the live server's refresh and ingest paths: an
// injected failure mid-refresh must leave the old generation serving
// (bit-identically), increment the error counters, and never crash, hang,
// or publish a half-built generation.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/catalog/live_server.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/exec/fault_injection.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1000.0);

std::vector<double> MakeRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(kDomain.lo + rng.NextDouble() * kDomain.width());
  }
  return rows;
}

EstimatorConfig ConfigWithBins(EstimatorKind kind, int bins) {
  EstimatorConfig config;
  config.kind = kind;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = bins;
  return config;
}

class ServerFaultTest : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::DisarmAll(); }
};

TEST_F(ServerFaultTest, RefreshFaultKeepsOldGenerationServing) {
  LiveServerOptions options;
  options.background_refresh = false;
  LiveStatisticsServer server(std::move(options));
  const EstimatorConfig config =
      ConfigWithBins(EstimatorKind::kEquiWidth, 16);
  ASSERT_TRUE(
      server.RegisterColumn("t", "x", kDomain, config, MakeRows(400, 1))
          .ok());
  const RangeQuery query{200.0, 700.0};
  auto before = server.Estimate("t", "x", query);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(server.Ingest("t", "x", MakeRows(100, 2)).ok());
  {
    ScopedFault fault(kFaultPointServerRefresh);
    const Status failed = server.Refresh("t", "x");
    EXPECT_EQ(failed.code(), StatusCode::kInternal);
    // Transient-looking failures retry with backoff before giving up, so
    // a persistently armed fault fires once per attempt.
    EXPECT_EQ(FaultInjector::FiredCount(kFaultPointServerRefresh),
              RetryOptions{}.max_attempts);
  }
  // Old generation serves on, answering exactly as before the attempt.
  auto after = server.Estimate("t", "x", query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), before.value());
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().generation, 1u);
  EXPECT_EQ(stats.value().refreshes, 0u);
  EXPECT_EQ(stats.value().refresh_errors, 1u);

  // Disarmed, the very next refresh succeeds with the folded rows intact.
  ASSERT_TRUE(server.Refresh("t", "x").ok());
  stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().generation, 2u);
  EXPECT_EQ(stats.value().refresh_errors, 1u);
  auto generation = server.CurrentGeneration("t", "x");
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(generation.value()->rows_at_build, 500u);
}

TEST_F(ServerFaultTest, BuildFaultFailsRebuildPathOnly) {
  // est/build fires inside BuildEstimator: the rebuild path (kMaxDiff)
  // hits it, the merge path (kEquiWidth, serialize-clone) does not.
  LiveServerOptions options;
  options.background_refresh = false;
  LiveStatisticsServer server(std::move(options));
  ASSERT_TRUE(server
                  .RegisterColumn("r", "a", kDomain,
                                  ConfigWithBins(EstimatorKind::kMaxDiff, 16),
                                  MakeRows(300, 3))
                  .ok());
  ASSERT_TRUE(server
                  .RegisterColumn("r", "b", kDomain,
                                  ConfigWithBins(EstimatorKind::kEquiWidth, 16),
                                  MakeRows(300, 4))
                  .ok());
  ASSERT_TRUE(server.Ingest("r", "a", MakeRows(50, 5)).ok());
  ASSERT_TRUE(server.Ingest("r", "b", MakeRows(50, 6)).ok());

  ScopedFault fault(kFaultPointEstimatorBuild);
  EXPECT_EQ(server.Refresh("r", "a").code(), StatusCode::kInternal);
  EXPECT_TRUE(server.Refresh("r", "b").ok());

  auto rebuild_stats = server.ColumnStats("r", "a");
  ASSERT_TRUE(rebuild_stats.ok());
  EXPECT_EQ(rebuild_stats.value().generation, 1u);
  EXPECT_EQ(rebuild_stats.value().refresh_errors, 1u);
  auto merge_stats = server.ColumnStats("r", "b");
  ASSERT_TRUE(merge_stats.ok());
  EXPECT_EQ(merge_stats.value().generation, 2u);
  EXPECT_EQ(merge_stats.value().refresh_errors, 0u);
  EXPECT_EQ(merge_stats.value().merge_refreshes, 1u);
}

TEST_F(ServerFaultTest, FileIngestFaultLeavesColumnUntouched) {
  LiveServerOptions options;
  options.background_refresh = false;
  LiveStatisticsServer server(std::move(options));
  ASSERT_TRUE(server
                  .RegisterColumn("t", "x", kDomain,
                                  ConfigWithBins(EstimatorKind::kEquiWidth, 8),
                                  MakeRows(200, 7))
                  .ok());
  const RangeQuery query{100.0, 500.0};
  auto before = server.Estimate("t", "x", query);
  ASSERT_TRUE(before.ok());

  // The fault fires before any parsing, so the path does not even need to
  // exist on disk for the deterministic failure.
  {
    ScopedFault fault(kFaultPointDatasetReadText);
    auto count = server.IngestFromFile("t", "x", "/nonexistent/rows.txt");
    EXPECT_FALSE(count.ok());
  }
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().ingested_rows, 0u);
  EXPECT_EQ(stats.value().generation, 1u);
  auto after = server.Estimate("t", "x", query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), before.value());
}

TEST_F(ServerFaultTest, BackgroundRefreshFaultDegradesGracefully) {
  LiveServerOptions options;
  options.background_refresh = true;
  options.refresh_ingest_rows = 50;
  LiveStatisticsServer server(std::move(options));
  ASSERT_TRUE(server
                  .RegisterColumn("t", "x", kDomain,
                                  ConfigWithBins(EstimatorKind::kEquiWidth, 16),
                                  MakeRows(300, 8))
                  .ok());
  const RangeQuery query{150.0, 650.0};
  auto before = server.Estimate("t", "x", query);
  ASSERT_TRUE(before.ok());

  {
    ScopedFault fault(kFaultPointServerRefresh);
    // Crossing the threshold schedules a background refresh that fails on
    // the pool worker; the ingest itself must still succeed.
    ASSERT_TRUE(server.Ingest("t", "x", MakeRows(80, 9)).ok());
    server.WaitForRefreshes();
  }
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().generation, 1u);
  EXPECT_EQ(stats.value().refresh_errors, 1u);
  EXPECT_EQ(stats.value().threshold_refreshes, 1u);
  EXPECT_EQ(stats.value().ingested_rows, 80u);
  auto after = server.Estimate("t", "x", query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), before.value());

  // Healed: the next threshold crossing publishes generation 2 carrying
  // all 160 ingested rows.
  ASSERT_TRUE(server.Ingest("t", "x", MakeRows(80, 10)).ok());
  server.WaitForRefreshes();
  stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().generation, 2u);
  auto generation = server.CurrentGeneration("t", "x");
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(generation.value()->rows_at_build, 460u);
}

TEST_F(ServerFaultTest, ProbabilisticRefreshFaultsNeverWedgeTheColumn) {
  // A seeded coin per refresh: whatever subset fails, the column keeps
  // serving, failures are counted, and a final clean refresh recovers.
  LiveServerOptions options;
  options.background_refresh = false;
  LiveStatisticsServer server(std::move(options));
  ASSERT_TRUE(server
                  .RegisterColumn("t", "x", kDomain,
                                  ConfigWithBins(EstimatorKind::kEquiWidth, 16),
                                  MakeRows(300, 11))
                  .ok());
  size_t failures = 0;
  {
    FaultPlan plan;
    plan.probability = 0.5;
    plan.seed = 42;
    ScopedFault fault(kFaultPointServerRefresh, plan);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(server.Ingest("t", "x", MakeRows(10, 100 + i)).ok());
      if (!server.Refresh("t", "x").ok()) ++failures;
      ASSERT_TRUE(server.Estimate("t", "x", {100.0, 400.0}).ok());
    }
  }
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().refresh_errors, failures);
  EXPECT_EQ(stats.value().refreshes + failures, 20u);
  ASSERT_TRUE(server.Refresh("t", "x").ok());
  auto generation = server.CurrentGeneration("t", "x");
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(generation.value()->rows_at_build, 500u);
}

}  // namespace
}  // namespace selest
