// The write-ahead log: append/sync/replay round-trips, segment rotation,
// torn-tail truncation, quarantine of unreadable segments, and the
// injected wal/append and wal/fsync faults.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/durability/wal.h"
#include "src/exec/fault_injection.h"
#include "src/util/status.h"

namespace selest {
namespace {

std::string FreshDir(const std::string& name) {
  // Suffixed with the pid: each gtest case runs as its own ctest process,
  // and concurrent cases of the same binary must not share a directory.
  const std::string dir =
      testing::TempDir() + name + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

size_t CountFiles(const std::string& dir, const std::string& needle) {
  size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().find(needle) != std::string::npos) {
      ++count;
    }
  }
  return count;
}

class WalTest : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::DisarmAll(); }
};

TEST_F(WalTest, AppendSyncReplayRoundTrip) {
  const std::string dir = FreshDir("wal_roundtrip");
  auto wal = WriteAheadLog::Open(dir);
  ASSERT_TRUE(wal.ok());
  uint64_t seq = 0;
  ASSERT_TRUE(wal.value()
                  ->Append(WalRecordType::kRegister, Payload({1, 2, 3}), &seq)
                  .ok());
  EXPECT_EQ(seq, 1u);
  ASSERT_TRUE(
      wal.value()->Append(WalRecordType::kIngest, Payload({4, 5}), &seq).ok());
  EXPECT_EQ(seq, 2u);
  EXPECT_EQ(wal.value()->last_sequence(), 2u);
  EXPECT_EQ(wal.value()->durable_sequence(), 2u);  // sync_every_append

  std::vector<WalRecord> seen;
  ASSERT_TRUE(wal.value()
                  ->Replay([&](const WalRecord& record) {
                    seen.push_back(record);
                    return Status::Ok();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].sequence, 1u);
  EXPECT_EQ(seen[0].type, WalRecordType::kRegister);
  EXPECT_EQ(seen[0].payload, Payload({1, 2, 3}));
  EXPECT_EQ(seen[1].sequence, 2u);
  EXPECT_EQ(seen[1].payload, Payload({4, 5}));
}

TEST_F(WalTest, ReopenRecoversEverythingSynced) {
  const std::string dir = FreshDir("wal_reopen");
  {
    auto wal = WriteAheadLog::Open(dir);
    ASSERT_TRUE(wal.ok());
    for (uint8_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          wal.value()->Append(WalRecordType::kIngest, Payload({i})).ok());
    }
  }
  auto reopened = WriteAheadLog::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->last_sequence(), 10u);
  EXPECT_EQ(reopened.value()->open_stats().records_recovered, 10u);
  EXPECT_EQ(reopened.value()->open_stats().segments_quarantined, 0u);
  size_t replayed = 0;
  ASSERT_TRUE(reopened.value()
                  ->Replay([&](const WalRecord& record) {
                    EXPECT_EQ(record.sequence, replayed + 1);
                    ++replayed;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(replayed, 10u);
}

TEST_F(WalTest, BufferedModeIsDurableOnlyAfterSync) {
  const std::string dir = FreshDir("wal_buffered");
  WalOptions options;
  options.sync_every_append = false;
  {
    auto wal = WriteAheadLog::Open(dir, options);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(
        wal.value()->Append(WalRecordType::kIngest, Payload({1})).ok());
    ASSERT_TRUE(
        wal.value()->Append(WalRecordType::kIngest, Payload({2})).ok());
    EXPECT_EQ(wal.value()->last_sequence(), 2u);
    EXPECT_EQ(wal.value()->durable_sequence(), 0u);
    EXPECT_GT(wal.value()->pending_bytes(), 0u);
    ASSERT_TRUE(wal.value()->Sync().ok());
    EXPECT_EQ(wal.value()->durable_sequence(), 2u);
    EXPECT_EQ(wal.value()->pending_bytes(), 0u);
    // The third record stays pending; simulate a crash by releasing the
    // log without a successful sync (the destructor's best-effort sync
    // keeps tests honest, so drop the record via an injected sync fault).
    ASSERT_TRUE(
        wal.value()->Append(WalRecordType::kIngest, Payload({3})).ok());
    FaultInjector::Arm(kFaultPointWalSync);
  }
  FaultInjector::DisarmAll();
  auto reopened = WriteAheadLog::Open(dir, options);
  ASSERT_TRUE(reopened.ok());
  // Only the synced prefix survived; the torn half-write of record 3 was
  // truncated away.
  EXPECT_EQ(reopened.value()->last_sequence(), 2u);
}

TEST_F(WalTest, SegmentRotationKeepsAllRecords) {
  const std::string dir = FreshDir("wal_rotation");
  WalOptions options;
  options.segment_bytes = 64;  // tiny: every couple of records rotates
  {
    auto wal = WriteAheadLog::Open(dir, options);
    ASSERT_TRUE(wal.ok());
    for (uint8_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(wal.value()
                      ->Append(WalRecordType::kIngest,
                               Payload({i, i, i, i, i, i, i, i}))
                      .ok());
    }
  }
  EXPECT_GT(CountFiles(dir, ".seg"), 1u);
  auto reopened = WriteAheadLog::Open(dir, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->last_sequence(), 20u);
  EXPECT_GT(reopened.value()->open_stats().segments_scanned, 1u);
}

TEST_F(WalTest, TornTailIsTruncatedOnOpen) {
  const std::string dir = FreshDir("wal_torn");
  std::string segment;
  {
    auto wal = WriteAheadLog::Open(dir);
    ASSERT_TRUE(wal.ok());
    for (uint8_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          wal.value()->Append(WalRecordType::kIngest, Payload({i})).ok());
    }
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    segment = entry.path().string();
  }
  ASSERT_FALSE(segment.empty());
  // Chop the last 3 bytes: record 5's CRC is torn.
  const uintmax_t size = std::filesystem::file_size(segment);
  std::filesystem::resize_file(segment, size - 3);

  auto reopened = WriteAheadLog::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->last_sequence(), 4u);
  EXPECT_GT(reopened.value()->open_stats().truncated_bytes, 0u);
  EXPECT_EQ(reopened.value()->open_stats().segments_quarantined, 0u);
  // The log stays appendable after the repair.
  ASSERT_TRUE(
      reopened.value()->Append(WalRecordType::kIngest, Payload({9})).ok());
  EXPECT_EQ(reopened.value()->last_sequence(), 5u);
}

TEST_F(WalTest, CorruptEarlySegmentQuarantinesItAndAllLaterOnes) {
  const std::string dir = FreshDir("wal_quarantine");
  WalOptions options;
  options.segment_bytes = 64;
  {
    auto wal = WriteAheadLog::Open(dir, options);
    ASSERT_TRUE(wal.ok());
    for (uint8_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(wal.value()
                      ->Append(WalRecordType::kIngest,
                               Payload({i, i, i, i, i, i, i, i}))
                      .ok());
    }
  }
  // Flip a byte in the middle of the FIRST segment: records past the hole
  // cannot be replayed consistently, so that segment and every later one
  // are quarantined (renamed, never deleted).
  std::vector<std::string> segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    segments.push_back(entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  ASSERT_GT(segments.size(), 2u);
  {
    std::FILE* file = std::fopen(segments[0].c_str(), "r+b");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fseek(file, 20, SEEK_SET), 0);
    const uint8_t garbage = 0xFF;
    ASSERT_EQ(std::fwrite(&garbage, 1, 1, file), 1u);
    std::fclose(file);
  }

  auto reopened = WriteAheadLog::Open(dir, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->open_stats().segments_quarantined,
            segments.size());
  EXPECT_EQ(CountFiles(dir, ".quarantine"), segments.size());
  // Nothing replayable, but the log accepts new history from sequence 1.
  EXPECT_EQ(reopened.value()->last_sequence(), 0u);
  ASSERT_TRUE(
      reopened.value()->Append(WalRecordType::kRegister, Payload({1})).ok());
  EXPECT_EQ(reopened.value()->last_sequence(), 1u);
}

TEST_F(WalTest, AppendFaultLosesTheRecordWholly) {
  const std::string dir = FreshDir("wal_append_fault");
  auto wal = WriteAheadLog::Open(dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(WalRecordType::kIngest, Payload({1})).ok());
  {
    ScopedFault fault(kFaultPointWalAppend);
    const Status failed =
        wal.value()->Append(WalRecordType::kIngest, Payload({2}));
    EXPECT_EQ(failed.code(), StatusCode::kInternal);
  }
  // The sequence was not consumed and the log keeps working.
  uint64_t seq = 0;
  ASSERT_TRUE(
      wal.value()->Append(WalRecordType::kIngest, Payload({3}), &seq).ok());
  EXPECT_EQ(seq, 2u);
  EXPECT_EQ(wal.value()->durable_sequence(), 2u);
}

TEST_F(WalTest, SyncFaultDropsPendingAndReopenSeesDurablePrefixOnly) {
  const std::string dir = FreshDir("wal_sync_fault");
  WalOptions options;
  options.sync_every_append = false;
  auto wal = WriteAheadLog::Open(dir, options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(WalRecordType::kIngest, Payload({1})).ok());
  ASSERT_TRUE(wal.value()->Sync().ok());
  ASSERT_TRUE(wal.value()->Append(WalRecordType::kIngest, Payload({2})).ok());
  {
    ScopedFault fault(kFaultPointWalSync);
    const Status failed = wal.value()->Sync();
    EXPECT_EQ(failed.code(), StatusCode::kInternal);
  }
  // The pending record was dropped and its sequence rolled back: the next
  // append reuses sequence 2, keeping the log contiguous.
  EXPECT_EQ(wal.value()->durable_sequence(), 1u);
  EXPECT_EQ(wal.value()->last_sequence(), 1u);
  uint64_t seq = 0;
  ASSERT_TRUE(
      wal.value()->Append(WalRecordType::kIngest, Payload({7}), &seq).ok());
  EXPECT_EQ(seq, 2u);
  ASSERT_TRUE(wal.value()->Sync().ok());
  wal.value().reset();  // close cleanly

  // On disk: sequence 1 then the retried sequence 2 (payload 7). The torn
  // half-write the fault left behind was repaired before the retry.
  auto reopened = WriteAheadLog::Open(dir, options);
  ASSERT_TRUE(reopened.ok());
  std::vector<WalRecord> seen;
  ASSERT_TRUE(reopened.value()
                  ->Replay([&](const WalRecord& record) {
                    seen.push_back(record);
                    return Status::Ok();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].sequence, 2u);
  EXPECT_EQ(seen[1].payload, Payload({7}));
}

TEST_F(WalTest, ResetDiscardsExistingHistory) {
  const std::string dir = FreshDir("wal_reset");
  {
    auto wal = WriteAheadLog::Open(dir);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(
        wal.value()->Append(WalRecordType::kIngest, Payload({1})).ok());
  }
  auto reset = WriteAheadLog::Open(dir, WalOptions{}, /*reset=*/true);
  ASSERT_TRUE(reset.ok());
  EXPECT_EQ(reset.value()->last_sequence(), 0u);
  size_t replayed = 0;
  ASSERT_TRUE(reset.value()
                  ->Replay([&](const WalRecord&) {
                    ++replayed;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(replayed, 0u);
}

TEST_F(WalTest, ReplayStopsAtFirstCallbackError) {
  const std::string dir = FreshDir("wal_replay_stop");
  auto wal = WriteAheadLog::Open(dir);
  ASSERT_TRUE(wal.ok());
  for (uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        wal.value()->Append(WalRecordType::kIngest, Payload({i})).ok());
  }
  size_t seen = 0;
  const Status stopped = wal.value()->Replay([&](const WalRecord&) -> Status {
    if (++seen == 3) return InvalidArgumentError("stop here");
    return Status::Ok();
  });
  EXPECT_EQ(stopped.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(seen, 3u);
}

}  // namespace
}  // namespace selest
