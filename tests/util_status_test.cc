#include "src/util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace selest {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgumentError("bad bins");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad bins");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad bins");
}

TEST(StatusTest, FactoryFunctionsSetCodes) {
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("hello");
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

TEST(StatusOrTest, OkStatusForValue) {
  StatusOr<double> result = 1.5;
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrDeathTest, AccessingErrorValueAborts) {
  StatusOr<int> result = InternalError("boom");
  EXPECT_DEATH(result.value(), "SELEST_CHECK");
}

TEST(StatusTest, ResourceExhaustedCodeAndName) {
  const Status s = ResourceExhaustedError("out of retries");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.ToString(), "RESOURCE_EXHAUSTED: out of retries");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
}

Status ReturnIfErrorHelper(const Status& status, bool* reached_end) {
  SELEST_RETURN_IF_ERROR(status);
  *reached_end = true;
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagatesAndPassesThrough) {
  bool reached_end = false;
  EXPECT_TRUE(ReturnIfErrorHelper(Status::Ok(), &reached_end).ok());
  EXPECT_TRUE(reached_end);

  reached_end = false;
  const Status error = ReturnIfErrorHelper(NotFoundError("x"), &reached_end);
  EXPECT_EQ(error.code(), StatusCode::kNotFound);
  EXPECT_FALSE(reached_end);
}

StatusOr<int> AssignOrReturnHelper(StatusOr<int> input) {
  SELEST_ASSIGN_OR_RETURN(const int value, std::move(input));
  // Two expansions in one function must not collide (the macro mints a
  // unique temporary per line).
  SELEST_ASSIGN_OR_RETURN(const int scaled, StatusOr<int>(3 * value));
  return scaled;
}

TEST(StatusMacroTest, AssignOrReturnUnwrapsAndPropagates) {
  const StatusOr<int> ok = AssignOrReturnHelper(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 12);

  const StatusOr<int> error = AssignOrReturnHelper(InternalError("bad"));
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace selest
