// The recovery manager: WAL replay → pre-crash column state. Covers the
// full-replay path, the snapshot fast path proven by the mark's CRC, the
// unproven-mark degradation (crash between snapshot Put and mark append),
// the non-mergeable contract, and the record codecs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/catalog/snapshot_store.h"
#include "src/data/domain.h"
#include "src/durability/recovery_manager.h"
#include "src/durability/wal.h"
#include "src/est/estimator_factory.h"
#include "src/est/estimator_snapshot.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1000.0);

std::string FreshDir(const std::string& name) {
  // Suffixed with the pid: each gtest case runs as its own ctest process,
  // and concurrent cases of the same binary must not share a directory.
  const std::string dir =
      testing::TempDir() + name + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<double> MakeRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(kDomain.lo + rng.NextDouble() * kDomain.width());
  }
  return rows;
}

EstimatorConfig ConfigFor(EstimatorKind kind, int bins) {
  EstimatorConfig config;
  config.kind = kind;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = bins;
  return config;
}

std::vector<uint8_t> SnapshotBytes(const SelectivityEstimator& estimator) {
  auto bytes = SnapshotEstimator(estimator);
  EXPECT_TRUE(bytes.ok());
  return bytes.ok() ? bytes.value() : std::vector<uint8_t>{};
}

TEST(RecoveryCodecTest, SnapshotMarkRoundTrips) {
  const std::vector<uint8_t> bytes = EncodeSnapshotMark(42, 7, 0xDEADBEEF);
  auto mark = DecodeSnapshotMark(bytes);
  ASSERT_TRUE(mark.ok());
  EXPECT_EQ(mark.value().covered_sequence, 42u);
  EXPECT_EQ(mark.value().generation, 7u);
  EXPECT_EQ(mark.value().snapshot_crc, 0xDEADBEEFu);

  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_EQ(DecodeSnapshotMark(trailing).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(
      DecodeSnapshotMark(std::vector<uint8_t>(bytes.begin(), bytes.end() - 1))
          .ok());
}

TEST(RecoveryCodecTest, RowBatchRoundTrips) {
  const std::vector<double> rows = {1.5, -3.25, 999.0};
  auto decoded = DecodeRowBatch(EncodeRowBatch(rows));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), rows);

  auto empty = DecodeRowBatch(EncodeRowBatch(std::vector<double>{}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());

  std::vector<uint8_t> trailing = EncodeRowBatch(rows);
  trailing.push_back(0);
  EXPECT_EQ(DecodeRowBatch(trailing).status().code(),
            StatusCode::kInvalidArgument);
}

class RecoveryTest : public testing::Test {
 protected:
  // A WAL holding a registration and two ingest batches (sequences 1-3).
  std::unique_ptr<WriteAheadLog> MakeLog(const std::string& dir) {
    auto wal = WriteAheadLog::Open(dir);
    EXPECT_TRUE(wal.ok());
    EXPECT_TRUE(wal.value()
                    ->Append(WalRecordType::kRegister, EncodeRowBatch(reg_))
                    .ok());
    EXPECT_TRUE(wal.value()
                    ->Append(WalRecordType::kIngest, EncodeRowBatch(batch1_))
                    .ok());
    EXPECT_TRUE(wal.value()
                    ->Append(WalRecordType::kIngest, EncodeRowBatch(batch2_))
                    .ok());
    return std::move(wal).value();
  }

  // The pre-crash accumulator: build from the registration rows, fold both
  // batches in order.
  std::unique_ptr<SelectivityEstimator> Reference(
      const EstimatorConfig& config) {
    auto built = BuildEstimator(reg_, kDomain, config);
    EXPECT_TRUE(built.ok());
    EXPECT_TRUE(built.value()->FoldRows(batch1_).ok());
    EXPECT_TRUE(built.value()->FoldRows(batch2_).ok());
    return std::move(built).value();
  }

  const std::vector<double> reg_ = MakeRows(300, 1);
  const std::vector<double> batch1_ = MakeRows(50, 2);
  const std::vector<double> batch2_ = MakeRows(70, 3);
};

TEST_F(RecoveryTest, FullReplayIsBitIdenticalToPreCrashState) {
  const EstimatorConfig config = ConfigFor(EstimatorKind::kEquiWidth, 16);
  const auto wal = MakeLog(FreshDir("recovery_full_replay"));
  const RecoveryManager manager(nullptr);
  const CatalogKey key{"t", "x", FingerprintConfig(config)};
  auto recovered = manager.Recover(key, *wal, kDomain, config);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered.value().used_snapshot);
  EXPECT_EQ(recovered.value().total_rows, 420u);
  EXPECT_EQ(recovered.value().last_sequence, 3u);
  EXPECT_EQ(recovered.value().registration_rows, reg_);
  ASSERT_EQ(recovered.value().ingest_batches.size(), 2u);
  ASSERT_NE(recovered.value().accumulator, nullptr);
  EXPECT_EQ(SnapshotBytes(*recovered.value().accumulator),
            SnapshotBytes(*Reference(config)));
}

TEST_F(RecoveryTest, ProvenSnapshotMarkEnablesTailReplay) {
  const EstimatorConfig config = ConfigFor(EstimatorKind::kEquiWidth, 16);
  const CatalogKey key{"t", "x", FingerprintConfig(config)};
  SnapshotStore store(FreshDir("recovery_fastpath_store"));
  auto wal = MakeLog(FreshDir("recovery_fastpath_wal"));

  // Snapshot the state as of sequence 2 (registration + batch 1), then
  // mark it with the file's CRC — the Put-then-mark publish order.
  auto covered = BuildEstimator(reg_, kDomain, config);
  ASSERT_TRUE(covered.ok());
  ASSERT_TRUE(covered.value()->FoldRows(batch1_).ok());
  uint32_t crc = 0;
  ASSERT_TRUE(store.Put(key, *covered.value(), &crc).ok());
  ASSERT_TRUE(
      wal->Append(WalRecordType::kSnapshotMark, EncodeSnapshotMark(2, 2, crc))
          .ok());

  const RecoveryManager manager(&store);
  auto recovered = manager.Recover(key, *wal, kDomain, config);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().used_snapshot);
  EXPECT_EQ(recovered.value().snapshot_sequence, 2u);
  EXPECT_EQ(recovered.value().last_generation, 2u);
  // Snapshot + tail fold lands on the same bits as the full replay.
  ASSERT_NE(recovered.value().accumulator, nullptr);
  EXPECT_EQ(SnapshotBytes(*recovered.value().accumulator),
            SnapshotBytes(*Reference(config)));
}

TEST_F(RecoveryTest, UnprovenMarkDegradesToFullReplay) {
  const EstimatorConfig config = ConfigFor(EstimatorKind::kEquiWidth, 16);
  const CatalogKey key{"t", "x", FingerprintConfig(config)};
  SnapshotStore store(FreshDir("recovery_unproven_store"));
  auto wal = MakeLog(FreshDir("recovery_unproven_wal"));

  auto covered = BuildEstimator(reg_, kDomain, config);
  ASSERT_TRUE(covered.ok());
  ASSERT_TRUE(covered.value()->FoldRows(batch1_).ok());
  uint32_t crc = 0;
  ASSERT_TRUE(store.Put(key, *covered.value(), &crc).ok());
  ASSERT_TRUE(
      wal->Append(WalRecordType::kSnapshotMark, EncodeSnapshotMark(2, 2, crc))
          .ok());
  // Crash between the NEXT Put and its mark: a newer snapshot file exists
  // that no mark describes. Folding past the old mark's sequence against
  // the new file would double-count batch 2 — the CRC check must reject
  // every mark and degrade to full replay.
  ASSERT_TRUE(covered.value()->FoldRows(batch2_).ok());
  ASSERT_TRUE(store.Put(key, *covered.value()).ok());

  const RecoveryManager manager(&store);
  auto recovered = manager.Recover(key, *wal, kDomain, config);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered.value().used_snapshot);
  ASSERT_NE(recovered.value().accumulator, nullptr);
  EXPECT_EQ(SnapshotBytes(*recovered.value().accumulator),
            SnapshotBytes(*Reference(config)));
}

TEST_F(RecoveryTest, NonMergeableRecoversBatchesForReservoirReplay) {
  const EstimatorConfig config = ConfigFor(EstimatorKind::kMaxDiff, 16);
  const auto wal = MakeLog(FreshDir("recovery_nonmergeable"));
  const RecoveryManager manager(nullptr);
  const CatalogKey key{"t", "x", FingerprintConfig(config)};
  auto recovered = manager.Recover(key, *wal, kDomain, config);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().accumulator, nullptr);
  EXPECT_EQ(recovered.value().registration_rows, reg_);
  ASSERT_EQ(recovered.value().ingest_batches.size(), 2u);
  EXPECT_EQ(recovered.value().ingest_batches[0], batch1_);
  EXPECT_EQ(recovered.value().ingest_batches[1], batch2_);
}

TEST_F(RecoveryTest, EmptyLogIsNotFound) {
  const std::string dir = FreshDir("recovery_empty");
  auto wal = WriteAheadLog::Open(dir);
  ASSERT_TRUE(wal.ok());
  const EstimatorConfig config = ConfigFor(EstimatorKind::kEquiWidth, 16);
  const RecoveryManager manager(nullptr);
  const CatalogKey key{"t", "x", FingerprintConfig(config)};
  EXPECT_EQ(manager.Recover(key, *wal.value(), kDomain, config)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(RecoveryTest, QuarantineProvenanceSurfaces) {
  // A log whose earlier segment is corrupted mid-file recovers as empty
  // (everything quarantined) but reports how much history went missing.
  const std::string dir = FreshDir("recovery_quarantine");
  WalOptions options;
  options.segment_bytes = 64;
  {
    auto wal = WriteAheadLog::Open(dir, options);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()
                    ->Append(WalRecordType::kRegister, EncodeRowBatch(reg_))
                    .ok());
    ASSERT_TRUE(wal.value()
                    ->Append(WalRecordType::kIngest, EncodeRowBatch(batch1_))
                    .ok());
  }
  std::vector<std::string> segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    segments.push_back(entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  {
    std::FILE* file = std::fopen(segments[0].c_str(), "r+b");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fseek(file, 30, SEEK_SET), 0);
    uint8_t byte = 0;
    ASSERT_EQ(std::fread(&byte, 1, 1, file), 1u);
    byte ^= 0xFF;  // guaranteed different, whatever was there
    ASSERT_EQ(std::fseek(file, 30, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&byte, 1, 1, file), 1u);
    std::fclose(file);
  }
  auto wal = WriteAheadLog::Open(dir, options);
  ASSERT_TRUE(wal.ok());
  EXPECT_GT(wal.value()->open_stats().segments_quarantined, 0u);
  const EstimatorConfig config = ConfigFor(EstimatorKind::kEquiWidth, 16);
  const RecoveryManager manager(nullptr);
  const CatalogKey key{"t", "x", FingerprintConfig(config)};
  auto recovered = manager.Recover(key, *wal.value(), kDomain, config);
  // The registration record was in the quarantined history: nothing to
  // recover, but the caller can see why.
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace selest
