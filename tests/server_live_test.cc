// The live statistics server, deterministic paths: registration serving
// bit-identical to the passive catalog, ingest + refresh semantics for the
// merge and rebuild paths, the ingest-volume and TTL staleness policies,
// snapshot write-back, file ingest, the online serve path, and the
// RunConfigsLive sweep equivalences.
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/catalog/live_server.h"
#include "src/catalog/statistics_catalog.h"
#include "src/data/dataset.h"
#include "src/data/io.h"
#include "src/eval/parallel_experiment.h"
#include "src/query/workload.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1000.0);

std::string FreshDir(const std::string& name) {
  // Suffixed with the pid: each gtest case runs as its own ctest process,
  // and concurrent cases of the same binary must not share a directory.
  const std::string dir =
      testing::TempDir() + name + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<double> MakeRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(kDomain.lo + rng.NextDouble() * kDomain.width());
  }
  return rows;
}

EstimatorConfig ConfigWithBins(EstimatorKind kind, int bins) {
  EstimatorConfig config;
  config.kind = kind;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = bins;
  return config;
}

// Inline refreshes: every policy trigger completes before the call that
// caused it returns, which is what these deterministic tests rely on.
LiveServerOptions InlineOptions() {
  LiveServerOptions options;
  options.background_refresh = false;
  return options;
}

TEST(LiveServerTest, RegistrationServesBitIdenticalToDirectBuild) {
  LiveStatisticsServer server(InlineOptions());
  const std::vector<double> rows = MakeRows(500, 1);
  const EstimatorConfig config =
      ConfigWithBins(EstimatorKind::kEquiWidth, 32);
  ASSERT_TRUE(server.RegisterColumn("t", "x", kDomain, config, rows).ok());
  EXPECT_TRUE(server.HasColumn("t", "x"));
  EXPECT_EQ(server.num_columns(), 1u);

  auto direct = BuildEstimator(rows, kDomain, config);
  ASSERT_TRUE(direct.ok());
  for (double a = 0.0; a < 900.0; a += 97.0) {
    const RangeQuery query{a, a + 120.0};
    auto served = server.Estimate("t", "x", query);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(served.value(), direct.value()->EstimateSelectivity(query));
  }
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().generation, 1u);
  EXPECT_GT(stats.value().serves, 0u);
  EXPECT_EQ(stats.value().refreshes, 0u);
}

TEST(LiveServerTest, UnknownColumnAndBadRegistrationAreErrors) {
  LiveStatisticsServer server(InlineOptions());
  EXPECT_EQ(server.Estimate("t", "x", {0.0, 1.0}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.Ingest("t", "x", MakeRows(4, 2)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.Refresh("t", "x").code(), StatusCode::kNotFound);
  EXPECT_EQ(server
                .RegisterColumn("", "x", kDomain,
                                ConfigWithBins(EstimatorKind::kEquiWidth, 8),
                                MakeRows(16, 3))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(server.HasColumn("t", "x"));
}

TEST(LiveServerTest, MergePathRefreshMatchesFullRebuild) {
  LiveStatisticsServer server(InlineOptions());
  const std::vector<double> initial = MakeRows(600, 4);
  const std::vector<double> extra = MakeRows(400, 5);
  const EstimatorConfig config =
      ConfigWithBins(EstimatorKind::kEquiWidth, 24);
  ASSERT_TRUE(
      server.RegisterColumn("t", "x", kDomain, config, initial).ok());
  ASSERT_TRUE(server.Ingest("t", "x", extra).ok());
  ASSERT_TRUE(server.Refresh("t", "x").ok());

  // Equi-width folds are exact: the refreshed generation answers like a
  // from-scratch build over initial ∪ extra.
  std::vector<double> all = initial;
  all.insert(all.end(), extra.begin(), extra.end());
  auto whole = BuildEstimator(all, kDomain, config);
  ASSERT_TRUE(whole.ok());
  for (double a = 0.0; a < 900.0; a += 83.0) {
    const RangeQuery query{a, a + 140.0};
    auto served = server.Estimate("t", "x", query);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(served.value(), whole.value()->EstimateSelectivity(query));
  }

  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().generation, 2u);
  EXPECT_EQ(stats.value().ingested_rows, extra.size());
  EXPECT_EQ(stats.value().refreshes, 1u);
  EXPECT_EQ(stats.value().merge_refreshes, 1u);
  EXPECT_EQ(stats.value().rebuild_refreshes, 0u);
  auto generation = server.CurrentGeneration("t", "x");
  ASSERT_TRUE(generation.ok());
  EXPECT_TRUE(generation.value()->merged);
  EXPECT_EQ(generation.value()->rows_at_build, initial.size() + extra.size());
}

TEST(LiveServerTest, RebuildPathServesReservoirContents) {
  // kMaxDiff does not merge; refreshes rebuild from the reservoir. With a
  // reservoir large enough to hold every row, the rebuild sees exactly
  // initial ∪ extra and answers like a from-scratch build over them.
  LiveServerOptions options = InlineOptions();
  options.reservoir_capacity = 4096;
  LiveStatisticsServer server(std::move(options));
  const std::vector<double> initial = MakeRows(500, 6);
  const std::vector<double> extra = MakeRows(300, 7);
  const EstimatorConfig config = ConfigWithBins(EstimatorKind::kMaxDiff, 16);
  ASSERT_TRUE(
      server.RegisterColumn("t", "x", kDomain, config, initial).ok());
  ASSERT_TRUE(server.Ingest("t", "x", extra).ok());
  ASSERT_TRUE(server.Refresh("t", "x").ok());

  std::vector<double> all = initial;
  all.insert(all.end(), extra.begin(), extra.end());
  auto whole = BuildEstimator(all, kDomain, config);
  ASSERT_TRUE(whole.ok());
  for (double a = 0.0; a < 900.0; a += 111.0) {
    const RangeQuery query{a, a + 90.0};
    auto served = server.Estimate("t", "x", query);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(served.value(), whole.value()->EstimateSelectivity(query));
  }
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().rebuild_refreshes, 1u);
  EXPECT_EQ(stats.value().merge_refreshes, 0u);
  auto generation = server.CurrentGeneration("t", "x");
  ASSERT_TRUE(generation.ok());
  EXPECT_FALSE(generation.value()->merged);
}

TEST(LiveServerTest, IngestVolumePolicyTriggersInlineRefresh) {
  LiveServerOptions options = InlineOptions();
  options.refresh_ingest_rows = 100;
  options.keep_generation_history = true;
  LiveStatisticsServer server(std::move(options));
  const EstimatorConfig config =
      ConfigWithBins(EstimatorKind::kEquiWidth, 16);
  ASSERT_TRUE(
      server.RegisterColumn("t", "x", kDomain, config, MakeRows(200, 8))
          .ok());

  // 60 rows: below the threshold, no flip.
  ASSERT_TRUE(server.Ingest("t", "x", MakeRows(60, 9)).ok());
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().generation, 1u);
  EXPECT_EQ(stats.value().rows_since_refresh, 60u);

  // 60 more crosses 100: inline refresh, counter reset by the folded rows.
  ASSERT_TRUE(server.Ingest("t", "x", MakeRows(60, 10)).ok());
  stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().generation, 2u);
  EXPECT_EQ(stats.value().threshold_refreshes, 1u);
  EXPECT_EQ(stats.value().rows_since_refresh, 0u);

  auto history = server.GenerationHistory("t", "x");
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history.value().size(), 2u);
  EXPECT_EQ(history.value()[0]->number, 1u);
  EXPECT_EQ(history.value()[1]->number, 2u);
}

TEST(LiveServerTest, TtlPolicyRefreshesOnServe) {
  uint64_t fake_now = 0;
  LiveServerOptions options = InlineOptions();
  options.ttl_ticks = 10;
  options.clock = [&fake_now]() { return fake_now; };
  LiveStatisticsServer server(std::move(options));
  ASSERT_TRUE(server
                  .RegisterColumn("t", "x", kDomain,
                                  ConfigWithBins(EstimatorKind::kEquiWidth, 8),
                                  MakeRows(150, 11))
                  .ok());
  const RangeQuery query{100.0, 400.0};

  fake_now = 9;  // within TTL: serve does not refresh
  ASSERT_TRUE(server.Estimate("t", "x", query).ok());
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().generation, 1u);
  EXPECT_EQ(stats.value().ttl_refreshes, 0u);

  fake_now = 10;  // expired: the serve triggers an inline refresh
  ASSERT_TRUE(server.Estimate("t", "x", query).ok());
  stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().generation, 2u);
  EXPECT_EQ(stats.value().ttl_refreshes, 1u);
  auto generation = server.CurrentGeneration("t", "x");
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(generation.value()->built_at_ticks, 10u);
}

TEST(LiveServerTest, PublishedGenerationsAreWrittenBack) {
  LiveServerOptions options = InlineOptions();
  options.snapshot_directory = FreshDir("live_server_writeback");
  LiveStatisticsServer server(std::move(options));
  const EstimatorConfig config =
      ConfigWithBins(EstimatorKind::kEquiWidth, 16);
  ASSERT_TRUE(
      server.RegisterColumn("t", "x", kDomain, config, MakeRows(300, 12))
          .ok());
  ASSERT_NE(server.store(), nullptr);
  const CatalogKey key{"t", "x", FingerprintConfig(config)};
  EXPECT_TRUE(server.store()->Contains(key));

  ASSERT_TRUE(server.Ingest("t", "x", MakeRows(100, 13)).ok());
  ASSERT_TRUE(server.Refresh("t", "x").ok());
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().writebacks, 2u);  // registration + refresh
  EXPECT_EQ(stats.value().writeback_errors, 0u);

  // The persisted snapshot answers like the served generation.
  auto loaded = server.store()->Get(key);
  ASSERT_TRUE(loaded.ok());
  auto current = server.CurrentEstimator("t", "x");
  ASSERT_TRUE(current.ok());
  const RangeQuery query{200.0, 700.0};
  EXPECT_EQ(loaded.value()->EstimateSelectivity(query),
            current.value()->EstimateSelectivity(query));
}

TEST(LiveServerTest, IngestFromFileFoldsTheDataset) {
  LiveStatisticsServer server(InlineOptions());
  ASSERT_TRUE(server
                  .RegisterColumn("t", "x", kDomain,
                                  ConfigWithBins(EstimatorKind::kEquiWidth, 8),
                                  MakeRows(100, 14))
                  .ok());
  const std::string path = testing::TempDir() + "live_ingest.txt";
  const std::vector<double> rows = MakeRows(64, 15);
  ASSERT_TRUE(SaveDatasetText(Dataset("ingest", kDomain, rows), path).ok());
  auto count = server.IngestFromFile("t", "x", path);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), rows.size());
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().ingested_rows, rows.size());
}

TEST(LiveServerTest, OnlineEstimateCoversIngestedRows) {
  LiveStatisticsServer server(InlineOptions());
  ASSERT_TRUE(server
                  .RegisterColumn("t", "x", kDomain,
                                  ConfigWithBins(EstimatorKind::kEquiWidth, 8),
                                  MakeRows(200, 16))
                  .ok());
  ASSERT_TRUE(server.Ingest("t", "x", MakeRows(300, 17)).ok());
  auto interval = server.OnlineEstimate("t", "x", {100.0, 900.0});
  ASSERT_TRUE(interval.ok());
  EXPECT_EQ(interval.value().samples, 500u);  // registration + ingested
  EXPECT_LE(interval.value().lo, interval.value().estimate);
  EXPECT_GE(interval.value().hi, interval.value().estimate);
}

TEST(LiveServerTest, GenerationHistoryRequiresOptIn) {
  LiveStatisticsServer server(InlineOptions());
  ASSERT_TRUE(server
                  .RegisterColumn("t", "x", kDomain,
                                  ConfigWithBins(EstimatorKind::kEquiWidth, 8),
                                  MakeRows(100, 18))
                  .ok());
  EXPECT_EQ(server.GenerationHistory("t", "x").status().code(),
            StatusCode::kFailedPrecondition);
}

// --- RunConfigsLive -------------------------------------------------------

ExperimentSetup MakeSetup(const Dataset& data) {
  ExperimentSetup setup;
  setup.data = &data;
  setup.sample = data.values();
  Rng rng(99);
  WorkloadConfig workload;
  workload.query_fraction = 0.05;
  workload.num_queries = 64;
  setup.queries = GenerateWorkload(data, workload, rng);
  return setup;
}

TEST(RunConfigsLiveTest, PureReadSweepMatchesServedSweep) {
  const Dataset data("d", kDomain, MakeRows(1200, 19));
  const ExperimentSetup setup = MakeSetup(data);
  const std::vector<EstimatorConfig> configs = {
      ConfigWithBins(EstimatorKind::kEquiWidth, 20),
      ConfigWithBins(EstimatorKind::kEquiDepth, 20),
      ConfigWithBins(EstimatorKind::kMaxDiff, 20),
  };
  Catalog catalog;
  const auto served =
      RunConfigsServed(catalog, "d", "x", setup, configs, {});
  LiveStatisticsServer server(InlineOptions());
  const auto live = RunConfigsLive(server, "d", "x", setup, configs, {});
  ASSERT_EQ(served.size(), live.size());
  for (size_t i = 0; i < served.size(); ++i) {
    ASSERT_TRUE(served[i].ok());
    ASSERT_TRUE(live[i].ok());
    EXPECT_EQ(live[i].value().mean_relative_error,
              served[i].value().mean_relative_error);
    EXPECT_EQ(live[i].value().mean_absolute_error,
              served[i].value().mean_absolute_error);
    EXPECT_EQ(live[i].value().max_relative_error,
              served[i].value().max_relative_error);
    EXPECT_EQ(live[i].value().evaluated, served[i].value().evaluated);
  }
}

TEST(RunConfigsLiveTest, IngestSweepReflectsFoldedRows) {
  const Dataset data("d", kDomain, MakeRows(1000, 20));
  const ExperimentSetup setup = MakeSetup(data);
  const std::vector<EstimatorConfig> configs = {
      ConfigWithBins(EstimatorKind::kEquiWidth, 16)};

  LiveSweepOptions options;
  options.ingest_rows = MakeRows(400, 21);
  LiveStatisticsServer server(InlineOptions());
  const auto live = RunConfigsLive(server, "d", "x", setup, configs, options);
  ASSERT_EQ(live.size(), 1u);
  ASSERT_TRUE(live[0].ok());

  // The scored generation is the refreshed one: equi-width folds being
  // exact, its report equals evaluating a build over sample ∪ ingest.
  std::vector<double> all(setup.sample.begin(), setup.sample.end());
  all.insert(all.end(), options.ingest_rows.begin(),
             options.ingest_rows.end());
  auto whole = BuildEstimator(all, kDomain, configs[0]);
  ASSERT_TRUE(whole.ok());
  const GroundTruth truth(data);
  const ErrorReport expected =
      Evaluate(*whole.value(), setup.queries, truth);
  EXPECT_EQ(live[0].value().mean_relative_error,
            expected.mean_relative_error);
  auto stats = server.ColumnStats("d", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().generation, 2u);
}

TEST(RunConfigsLiveTest, BadConfigYieldsErrorCellInOrder) {
  const Dataset data("d", kDomain, MakeRows(400, 22));
  const ExperimentSetup setup = MakeSetup(data);
  EstimatorConfig bad = ConfigWithBins(EstimatorKind::kEquiWidth, 16);
  bad.fixed_smoothing = 1.0e9;  // beyond kMaxNumBins: the build fails
  const std::vector<EstimatorConfig> configs = {
      ConfigWithBins(EstimatorKind::kEquiWidth, 16), bad,
      ConfigWithBins(EstimatorKind::kEquiDepth, 16)};
  LiveStatisticsServer server(InlineOptions());
  const auto live = RunConfigsLive(server, "d", "x", setup, configs, {});
  ASSERT_EQ(live.size(), 3u);
  EXPECT_TRUE(live[0].ok());
  EXPECT_FALSE(live[1].ok());
  EXPECT_TRUE(live[2].ok());
}

}  // namespace
}  // namespace selest
