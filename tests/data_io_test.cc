#include "src/data/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "src/data/distribution.h"
#include "src/util/random.h"

namespace selest {
namespace {

class DataIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& suffix) {
    return ::testing::TempDir() + "selest_io_" + suffix;
  }

  Dataset MakeData() {
    Rng rng(9);
    const Domain domain = BitDomain(12);
    const UniformDistribution dist(domain.lo, domain.hi);
    return GenerateDataset("roundtrip", dist, 500, domain, rng);
  }
};

TEST_F(DataIoTest, TextRoundTrip) {
  const Dataset original = MakeData();
  const std::string path = TempPath("text.txt");
  ASSERT_TRUE(SaveDatasetText(original, path).ok());
  auto loaded = LoadDatasetText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), original.name());
  EXPECT_EQ(loaded->values(), original.values());
  EXPECT_EQ(loaded->domain().bits, original.domain().bits);
  EXPECT_EQ(loaded->domain().discrete, original.domain().discrete);
  std::remove(path.c_str());
}

TEST_F(DataIoTest, BinaryRoundTrip) {
  const Dataset original = MakeData();
  const std::string path = TempPath("bin.dat");
  ASSERT_TRUE(SaveDatasetBinary(original, path).ok());
  auto loaded = LoadDatasetBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), original.name());
  EXPECT_EQ(loaded->values(), original.values());
  EXPECT_DOUBLE_EQ(loaded->domain().hi, original.domain().hi);
  std::remove(path.c_str());
}

TEST_F(DataIoTest, BinaryPreservesExactDoubles) {
  const Domain domain = ContinuousDomain(0.0, 1.0);
  const Dataset original("precise", domain,
                         {0.1, 1.0 / 3.0, 0.7071067811865476});
  const std::string path = TempPath("precise.dat");
  ASSERT_TRUE(SaveDatasetBinary(original, path).ok());
  auto loaded = LoadDatasetBinary(path);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->values()[i], original.values()[i]);  // bit-exact
  }
  std::remove(path.c_str());
}

TEST_F(DataIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadDatasetText("/nonexistent/x.txt").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(LoadDatasetBinary("/nonexistent/x.dat").status().code(),
            StatusCode::kNotFound);
}

TEST_F(DataIoTest, RejectsForeignTextFile) {
  const std::string path = TempPath("foreign.txt");
  std::ofstream(path) << "not a dataset\n1\n2\n";
  EXPECT_FALSE(LoadDatasetText(path).ok());
  std::remove(path.c_str());
}

TEST_F(DataIoTest, RejectsTruncatedBinary) {
  const Dataset original = MakeData();
  const std::string path = TempPath("trunc.dat");
  ASSERT_TRUE(SaveDatasetBinary(original, path).ok());
  // Truncate the file.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() / 2);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_FALSE(LoadDatasetBinary(path).ok());
  std::remove(path.c_str());
}

TEST_F(DataIoTest, RejectsOutOfDomainValues) {
  const std::string path = TempPath("ood.txt");
  std::ofstream(path) << "selest-dataset bad 0 10 0 0\n5\n25\n";
  EXPECT_FALSE(LoadDatasetText(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace selest
