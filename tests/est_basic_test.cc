// Tests for the sampling and uniform estimators plus interface-level
// behaviour shared by all estimators.
#include <vector>

#include <gtest/gtest.h>

#include "src/data/domain.h"
#include "src/est/sampling_estimator.h"
#include "src/est/uniform_estimator.h"
#include "src/util/random.h"

namespace selest {
namespace {

TEST(SamplingEstimatorTest, RejectsEmptySample) {
  EXPECT_FALSE(SamplingEstimator::Create({}).ok());
}

TEST(SamplingEstimatorTest, ExactFractions) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  auto est = SamplingEstimator::Create(sample);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(1.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(2.0, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(3.5, 3.9), 0.0);
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(4.0, 9.0), 0.25);
}

TEST(SamplingEstimatorTest, RangeEndpointsAreInclusive) {
  const std::vector<double> sample{5.0};
  auto est = SamplingEstimator::Create(sample);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(5.0, 5.0), 1.0);
}

TEST(SamplingEstimatorTest, InvertedRangeIsZero) {
  const std::vector<double> sample{1.0, 2.0};
  auto est = SamplingEstimator::Create(sample);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(3.0, 1.0), 0.0);
}

TEST(SamplingEstimatorTest, DuplicatesCountMultiply) {
  const std::vector<double> sample{2.0, 2.0, 2.0, 7.0};
  auto est = SamplingEstimator::Create(sample);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(2.0, 2.0), 0.75);
}

TEST(SamplingEstimatorTest, EstimateResultSizeScalesByN) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  auto est = SamplingEstimator::Create(sample);
  ASSERT_TRUE(est.ok());
  const RangeQuery q{2.0, 3.0};
  EXPECT_DOUBLE_EQ(est->EstimateResultSize(q, 1000), 500.0);
}

TEST(SamplingEstimatorTest, StorageIsSampleSize) {
  const std::vector<double> sample(100, 1.0);
  auto est = SamplingEstimator::Create(sample);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->StorageBytes(), 100 * sizeof(double));
  EXPECT_EQ(est->sample_size(), 100u);
}

TEST(UniformEstimatorTest, ProportionalToQueryWidth) {
  const UniformEstimator est(ContinuousDomain(0.0, 100.0));
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity(0.0, 25.0), 0.25);
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity(40.0, 60.0), 0.2);
}

TEST(UniformEstimatorTest, ClampsToDomain) {
  const UniformEstimator est(ContinuousDomain(0.0, 100.0));
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity(-50.0, 50.0), 0.5);
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity(-10.0, 110.0), 1.0);
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity(200.0, 300.0), 0.0);
}

TEST(UniformEstimatorTest, PointQueryIsZero) {
  const UniformEstimator est(ContinuousDomain(0.0, 100.0));
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity(50.0, 50.0), 0.0);
}

TEST(UniformEstimatorTest, Name) {
  const UniformEstimator est(ContinuousDomain(0.0, 1.0));
  EXPECT_EQ(est.name(), "uniform");
}

TEST(SamplingEstimatorTest, ConvergesToTrueSelectivity) {
  // Sampling is consistent: with a large sample of uniform data the
  // estimate approaches the true fraction.
  Rng rng(42);
  std::vector<double> sample(50000);
  for (double& x : sample) x = rng.NextDouble() * 100.0;
  auto est = SamplingEstimator::Create(sample);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->EstimateSelectivity(10.0, 30.0), 0.2, 0.01);
}

}  // namespace
}  // namespace selest
