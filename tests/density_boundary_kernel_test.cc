#include "src/density/boundary_kernel.h"

#include <gtest/gtest.h>

#include "src/density/kernel.h"
#include "src/util/numeric.h"

namespace selest {
namespace {

const double kQValues[] = {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0};

TEST(BoundaryKernelTest, IntegratesToOneForAllQ) {
  for (double q : kQValues) {
    const double mass = AdaptiveSimpson(
        [q](double u) { return LeftBoundaryKernel(u, q); }, -1.0, q, 1e-12);
    EXPECT_NEAR(mass, 1.0, 1e-8) << "q=" << q;
    EXPECT_NEAR(LeftBoundaryKernelMoment0(q), 1.0, 1e-12) << "q=" << q;
  }
}

TEST(BoundaryKernelTest, FirstMomentVanishesForAllQ) {
  for (double q : kQValues) {
    const double moment = AdaptiveSimpson(
        [q](double u) { return u * LeftBoundaryKernel(u, q); }, -1.0, q,
        1e-12);
    EXPECT_NEAR(moment, 0.0, 1e-8) << "q=" << q;
    EXPECT_NEAR(LeftBoundaryKernelMoment1(q), 0.0, 1e-12) << "q=" << q;
  }
}

TEST(BoundaryKernelTest, ReducesToEpanechnikovAtQOne) {
  const Kernel epanechnikov(KernelType::kEpanechnikov);
  for (double u = -1.0; u <= 1.0; u += 0.05) {
    EXPECT_NEAR(LeftBoundaryKernel(u, 1.0), epanechnikov.Value(u), 1e-12);
  }
}

TEST(BoundaryKernelTest, SupportIsClipped) {
  EXPECT_DOUBLE_EQ(LeftBoundaryKernel(-1.01, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(LeftBoundaryKernel(0.51, 0.5), 0.0);
  EXPECT_GT(LeftBoundaryKernel(0.49, 0.5), 0.0);
  EXPECT_NE(LeftBoundaryKernel(-0.99, 0.5), 0.0);
}

TEST(BoundaryKernelTest, HasNegativeLobeForSmallQ) {
  // Boundary kernels are second-order correction kernels, not densities:
  // to keep the first moment at zero on the truncated support they dip
  // below zero near u = −1 when q < 1. (The selectivity estimator truncates
  // the resulting density at zero.)
  EXPECT_LT(LeftBoundaryKernel(-0.99, 0.5), 0.0);
  EXPECT_LT(LeftBoundaryKernel(-0.9, 0.0), 0.0);
  // At q = 1 (pure Epanechnikov) the kernel is non-negative everywhere.
  for (double u = -1.0; u <= 1.0; u += 0.01) {
    EXPECT_GE(LeftBoundaryKernel(u, 1.0), 0.0);
  }
}

TEST(BoundaryKernelTest, RightKernelMirrorsLeft) {
  for (double q : kQValues) {
    for (double u = -1.0; u <= 1.0; u += 0.1) {
      EXPECT_DOUBLE_EQ(RightBoundaryKernel(u, q), LeftBoundaryKernel(-u, q));
    }
  }
}

TEST(BoundaryKernelTest, RightKernelIntegratesToOne) {
  for (double q : kQValues) {
    const double mass = AdaptiveSimpson(
        [q](double u) { return RightBoundaryKernel(u, q); }, -q, 1.0, 1e-12);
    EXPECT_NEAR(mass, 1.0, 1e-8) << "q=" << q;
  }
}

TEST(BoundaryKernelTest, ValueAtQZeroMatchesFormula) {
  // At q = 0 the kernel is (3 − 6u²) on [−1, 0].
  EXPECT_NEAR(LeftBoundaryKernel(0.0, 0.0), 3.0, 1e-12);
  EXPECT_NEAR(LeftBoundaryKernel(-0.5, 0.0), 3.0 - 6.0 * 0.25, 1e-12);
}

TEST(BoundaryKernelDeathTest, RejectsQOutOfRange) {
  EXPECT_DEATH(LeftBoundaryKernel(0.0, -0.1), "SELEST_CHECK");
  EXPECT_DEATH(LeftBoundaryKernel(0.0, 1.1), "SELEST_CHECK");
}

}  // namespace
}  // namespace selest
