// ReconstructedDistributionEstimator: solving a piecewise-constant density
// from accumulated (range, selectivity) constraints — solver behavior,
// constraint-ring bookkeeping, and the residual diagnostic.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/domain.h"
#include "src/feedback/reconstructed_distribution.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

ReconstructedDistributionEstimator Make(
    const ReconstructedDistributionOptions& options = {}) {
  auto created = ReconstructedDistributionEstimator::Create(kDomain, options);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return std::move(created).value();
}

TEST(ReconstructedTest, StartsUniform) {
  ReconstructedDistributionEstimator estimator = Make();
  EXPECT_DOUBLE_EQ(estimator.EstimateSelectivity(0.0, 50.0), 0.5);
  EXPECT_DOUBLE_EQ(estimator.EstimateSelectivity(25.0, 75.0), 0.5);
  EXPECT_EQ(estimator.constraints().size(), 0u);
  EXPECT_EQ(estimator.max_residual(), 0.0);
}

TEST(ReconstructedTest, SingleConstraintIsSolvedToTheObservedValue) {
  for (ReconstructionSolver solver : {ReconstructionSolver::kMaxEntropy,
                                      ReconstructionSolver::kLeastSquares}) {
    ReconstructedDistributionOptions options;
    options.solver = solver;
    // Per-sweep renormalization makes a lone constraint converge only
    // geometrically — the contraction factor per sweep is the constrained
    // mass itself (0.8 here), so the default 24-sweep budget leaves a
    // ~0.8^24 ≈ 5e-3 residual. 96 sweeps drive it below the 1e-6 check.
    options.solve_sweeps = 96;
    ReconstructedDistributionEstimator estimator = Make(options);
    // Uniform says 0.25 for [0, 25]; the observation says 0.8.
    ASSERT_TRUE(
        estimator.ObserveTrueSelectivity({0.0, 25.0}, 0.8).ok());
    EXPECT_NEAR(estimator.EstimateSelectivity(0.0, 25.0), 0.8, 1e-6)
        << ReconstructionSolverName(solver);
    // Mass is conserved: the remainder of the domain holds what is left.
    EXPECT_NEAR(estimator.EstimateSelectivity(25.0, 100.0), 0.2, 1e-6)
        << ReconstructionSolverName(solver);
    EXPECT_LE(estimator.max_residual(), 1e-6);
  }
}

TEST(ReconstructedTest, ConsistentConstraintSetIsReconstructed) {
  // Feed exact prefix selectivities of a two-plateau density (80% of the
  // mass in [0, 50]); both solvers must reconstruct every plateau query.
  for (ReconstructionSolver solver : {ReconstructionSolver::kMaxEntropy,
                                      ReconstructionSolver::kLeastSquares}) {
    ReconstructedDistributionOptions options;
    options.solver = solver;
    options.num_bins = 16;
    ReconstructedDistributionEstimator estimator = Make(options);
    const auto truth = [](double a, double b) {
      const auto cdf = [](double x) {
        return x <= 50.0 ? 0.8 * (x / 50.0) : 0.8 + 0.2 * ((x - 50.0) / 50.0);
      };
      return cdf(b) - cdf(a);
    };
    // Several passes over bin-aligned ranges; the constraint set is exactly
    // representable on the grid, so residuals vanish.
    for (int pass = 0; pass < 4; ++pass) {
      for (double a = 0.0; a < 100.0; a += 12.5) {
        ASSERT_TRUE(estimator
                        .ObserveTrueSelectivity({a, a + 12.5},
                                                truth(a, a + 12.5))
                        .ok());
      }
      ASSERT_TRUE(
          estimator.ObserveTrueSelectivity({0.0, 50.0}, 0.8).ok());
    }
    EXPECT_NEAR(estimator.EstimateSelectivity(0.0, 50.0), 0.8, 0.01)
        << ReconstructionSolverName(solver);
    EXPECT_NEAR(estimator.EstimateSelectivity(50.0, 100.0), 0.2, 0.01)
        << ReconstructionSolverName(solver);
    EXPECT_NEAR(estimator.EstimateSelectivity(0.0, 25.0), 0.4, 0.02)
        << ReconstructionSolverName(solver);
    EXPECT_LT(estimator.max_residual(), 0.01)
        << ReconstructionSolverName(solver);
  }
}

TEST(ReconstructedTest, RepeatedRangeReplacesTheStaleConstraint) {
  ReconstructedDistributionEstimator estimator = Make();
  ASSERT_TRUE(estimator.ObserveTrueSelectivity({10.0, 30.0}, 0.5).ok());
  ASSERT_TRUE(estimator.ObserveTrueSelectivity({40.0, 60.0}, 0.3).ok());
  ASSERT_TRUE(estimator.ObserveTrueSelectivity({10.0, 30.0}, 0.1).ok());
  ASSERT_EQ(estimator.constraints().size(), 2u);
  // The replacement moved to the back of the ring with the newer value.
  EXPECT_EQ(estimator.constraints().back().a, 10.0);
  EXPECT_EQ(estimator.constraints().back().selectivity, 0.1);
  EXPECT_NEAR(estimator.EstimateSelectivity(10.0, 30.0), 0.1, 0.01);
  EXPECT_EQ(estimator.feedback_observations(), 3u);
}

TEST(ReconstructedTest, ConstraintRingEvictsTheOldest) {
  ReconstructedDistributionOptions options;
  options.max_constraints = 4;
  ReconstructedDistributionEstimator estimator = Make(options);
  for (int i = 0; i < 6; ++i) {
    const double a = 10.0 * i;
    ASSERT_TRUE(
        estimator.ObserveTrueSelectivity({a, a + 5.0}, 0.05).ok());
  }
  ASSERT_EQ(estimator.constraints().size(), 4u);
  // Constraints 0 and 1 were evicted; the survivors are 2..5 in order.
  EXPECT_EQ(estimator.constraints().front().a, 20.0);
  EXPECT_EQ(estimator.constraints().back().a, 50.0);
  EXPECT_EQ(estimator.feedback_observations(), 6u);
}

TEST(ReconstructedTest, ZeroMassRegionCanBeRelearned) {
  // Drive a region to zero mass, then observe mass there again: the
  // max-entropy seeding path must be able to lift it (a purely
  // multiplicative rule could not).
  ReconstructedDistributionEstimator estimator = Make();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(estimator.ObserveTrueSelectivity({0.0, 50.0}, 0.0).ok());
    ASSERT_TRUE(estimator.ObserveTrueSelectivity({50.0, 100.0}, 1.0).ok());
  }
  EXPECT_NEAR(estimator.EstimateSelectivity(0.0, 50.0), 0.0, 1e-6);
  ASSERT_TRUE(estimator.ObserveTrueSelectivity({0.0, 50.0}, 0.6).ok());
  ASSERT_TRUE(estimator.ObserveTrueSelectivity({50.0, 100.0}, 0.4).ok());
  EXPECT_NEAR(estimator.EstimateSelectivity(0.0, 50.0), 0.6, 0.05);
}

TEST(ReconstructedTest, SolveIsDeterministic) {
  const auto run = [] {
    ReconstructedDistributionEstimator estimator = Make();
    Rng rng(23);
    for (int i = 0; i < 64; ++i) {
      double a = 100.0 * rng.NextDouble();
      double b = 100.0 * rng.NextDouble();
      if (b < a) std::swap(a, b);
      if (a == b) continue;
      EXPECT_TRUE(
          estimator.ObserveTrueSelectivity({a, b}, rng.NextDouble()).ok());
    }
    return estimator;
  };
  const ReconstructedDistributionEstimator first = run();
  const ReconstructedDistributionEstimator second = run();
  ASSERT_EQ(first.masses().size(), second.masses().size());
  for (size_t i = 0; i < first.masses().size(); ++i) {
    EXPECT_EQ(first.masses()[i], second.masses()[i]) << "bin " << i;
  }
  EXPECT_EQ(first.max_residual(), second.max_residual());
}

TEST(ReconstructedTest, InvalidOptionsAndFeedbackAreRejected) {
  ReconstructedDistributionOptions bad;
  bad.num_bins = 0;
  EXPECT_FALSE(ReconstructedDistributionEstimator::Create(kDomain, bad).ok());
  bad = {};
  bad.damping = 0.0;
  EXPECT_FALSE(ReconstructedDistributionEstimator::Create(kDomain, bad).ok());
  bad = {};
  bad.solve_sweeps = 0;
  EXPECT_FALSE(ReconstructedDistributionEstimator::Create(kDomain, bad).ok());

  ReconstructedDistributionEstimator estimator = Make();
  EXPECT_FALSE(estimator.ObserveTrueSelectivity({30.0, 10.0}, 0.5).ok());
  EXPECT_FALSE(estimator.ObserveTrueSelectivity({10.0, 10.0}, 0.5).ok());
  EXPECT_EQ(estimator.feedback_observations(), 0u);
}

TEST(ReconstructedTest, SampleBuiltPriorIsUsedBeforeAnyFeedback) {
  Rng rng(3);
  std::vector<double> sample(1000);
  for (double& v : sample) v = 25.0 * rng.NextDouble();  // all in [0, 25]
  auto created = ReconstructedDistributionEstimator::CreateFromSample(
      sample, kDomain, {});
  ASSERT_TRUE(created.ok());
  EXPECT_NEAR(created->EstimateSelectivity(0.0, 25.0), 1.0, 0.01);
  EXPECT_NEAR(created->EstimateSelectivity(50.0, 100.0), 0.0, 0.01);
}

}  // namespace
}  // namespace selest
