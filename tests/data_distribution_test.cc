#include "src/data/distribution.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/numeric.h"
#include "src/util/random.h"

namespace selest {
namespace {

double SampleMean(const Distribution& dist, int n, uint64_t seed) {
  Rng rng(seed);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += dist.Sample(rng);
  return sum / n;
}

TEST(UniformDistributionTest, PdfAndCdf) {
  const UniformDistribution d(2.0, 6.0);
  EXPECT_DOUBLE_EQ(d.Pdf(4.0), 0.25);
  EXPECT_DOUBLE_EQ(d.Pdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(d.Cdf(7.0), 1.0);
}

TEST(UniformDistributionTest, SampleStaysInRange) {
  const UniformDistribution d(-1.0, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = d.Sample(rng);
    EXPECT_GE(x, -1.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(UniformDistributionTest, DerivativesAreZero) {
  const UniformDistribution d(0.0, 1.0);
  EXPECT_DOUBLE_EQ(d.PdfDerivative(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.PdfSecondDerivative(0.5), 0.0);
}

TEST(NormalDistributionTest, PdfPeakValue) {
  const NormalDistribution d(0.0, 1.0);
  EXPECT_NEAR(d.Pdf(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-12);
}

TEST(NormalDistributionTest, CdfKnownValues) {
  const NormalDistribution d(0.0, 1.0);
  EXPECT_NEAR(d.Cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(d.Cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(d.Cdf(-1.96), 0.025, 1e-3);
}

TEST(NormalDistributionTest, PdfIntegratesToOne) {
  const NormalDistribution d(5.0, 2.0);
  const double mass = AdaptiveSimpson([&d](double x) { return d.Pdf(x); },
                                      5.0 - 16.0, 5.0 + 16.0);
  EXPECT_NEAR(mass, 1.0, 1e-8);
}

TEST(NormalDistributionTest, AnalyticDerivativesMatchFiniteDifferences) {
  const NormalDistribution d(1.0, 0.5);
  for (double x : {0.2, 0.9, 1.0, 1.7}) {
    const double h = 1e-5;
    const double fd1 = (d.Pdf(x + h) - d.Pdf(x - h)) / (2.0 * h);
    const double fd2 = (d.Pdf(x + h) - 2.0 * d.Pdf(x) + d.Pdf(x - h)) / (h * h);
    EXPECT_NEAR(d.PdfDerivative(x), fd1, 1e-5);
    EXPECT_NEAR(d.PdfSecondDerivative(x), fd2, 1e-3);
  }
}

TEST(NormalDistributionTest, SampleMeanConverges) {
  const NormalDistribution d(-3.0, 2.0);
  EXPECT_NEAR(SampleMean(d, 100000, 7), -3.0, 0.05);
}

TEST(ExponentialDistributionTest, PdfAndCdf) {
  const ExponentialDistribution d(2.0);
  EXPECT_DOUBLE_EQ(d.Pdf(-0.1), 0.0);
  EXPECT_NEAR(d.Pdf(0.0), 2.0, 1e-12);
  EXPECT_NEAR(d.Cdf(std::log(2.0) / 2.0), 0.5, 1e-12);
}

TEST(ExponentialDistributionTest, OriginShifts) {
  const ExponentialDistribution d(1.0, 10.0);
  EXPECT_DOUBLE_EQ(d.Pdf(9.9), 0.0);
  EXPECT_NEAR(d.Pdf(10.0), 1.0, 1e-12);
  EXPECT_NEAR(SampleMean(d, 100000, 3), 11.0, 0.05);
}

TEST(ExponentialDistributionTest, AnalyticDerivatives) {
  const ExponentialDistribution d(3.0);
  const double x = 0.4;
  EXPECT_NEAR(d.PdfDerivative(x), -3.0 * d.Pdf(x), 1e-12);
  EXPECT_NEAR(d.PdfSecondDerivative(x), 9.0 * d.Pdf(x), 1e-12);
}

TEST(ZipfDistributionTest, MassesAreZipfian) {
  const ZipfDistribution d(3, 1.0);
  // Unnormalized masses 1, 1/2, 1/3 → total 11/6.
  EXPECT_NEAR(d.Pdf(0.0), (1.0) / (11.0 / 6.0), 1e-12);
  EXPECT_NEAR(d.Pdf(1.0), (0.5) / (11.0 / 6.0), 1e-12);
  EXPECT_NEAR(d.Pdf(2.0), (1.0 / 3.0) / (11.0 / 6.0), 1e-12);
  EXPECT_DOUBLE_EQ(d.Pdf(3.0), 0.0);
}

TEST(ZipfDistributionTest, CdfReachesOne) {
  const ZipfDistribution d(10, 1.5);
  EXPECT_DOUBLE_EQ(d.Cdf(-1.0), 0.0);
  EXPECT_NEAR(d.Cdf(9.0), 1.0, 1e-12);
}

TEST(ZipfDistributionTest, SamplesAreIntegersInRange) {
  const ZipfDistribution d(5, 1.0);
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) {
    const double x = d.Sample(rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 5.0);
    ++counts[static_cast<int>(x)];
  }
  // Frequencies must decrease for a Zipf law.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
}

TEST(MixtureDistributionTest, PdfIsWeightedSum) {
  std::vector<std::unique_ptr<Distribution>> parts;
  parts.push_back(std::make_unique<UniformDistribution>(0.0, 1.0));
  parts.push_back(std::make_unique<UniformDistribution>(1.0, 3.0));
  const MixtureDistribution mix(std::move(parts), {1.0, 1.0});
  EXPECT_NEAR(mix.Pdf(0.5), 0.5 * 1.0, 1e-12);
  EXPECT_NEAR(mix.Pdf(2.0), 0.5 * 0.5, 1e-12);
}

TEST(MixtureDistributionTest, WeightsAreNormalized) {
  std::vector<std::unique_ptr<Distribution>> parts;
  parts.push_back(std::make_unique<UniformDistribution>(0.0, 1.0));
  parts.push_back(std::make_unique<UniformDistribution>(2.0, 3.0));
  const MixtureDistribution mix(std::move(parts), {3.0, 1.0});
  Rng rng(13);
  int low = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (mix.Sample(rng) < 1.5) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.75, 0.02);
}

TEST(MixtureDistributionTest, CdfMonotoneAndBounded) {
  std::vector<std::unique_ptr<Distribution>> parts;
  parts.push_back(std::make_unique<NormalDistribution>(0.0, 1.0));
  parts.push_back(std::make_unique<ExponentialDistribution>(1.0, 2.0));
  const MixtureDistribution mix(std::move(parts), {1.0, 2.0});
  double prev = 0.0;
  for (double x = -5.0; x <= 10.0; x += 0.25) {
    const double c = mix.Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
}

}  // namespace
}  // namespace selest
