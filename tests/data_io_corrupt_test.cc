// Corrupt-input regression tests for the dataset loaders: every malformed
// file — truncated, garbage header, out-of-domain or non-finite values,
// zero-length — must come back as an error Status, never an abort or a
// leak (the robustness label runs this suite under asan-ubsan).
#include "src/data/io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "src/util/serialize.h"

namespace selest {
namespace {

class DataIoCorruptTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& suffix) {
    return ::testing::TempDir() + "selest_corrupt_" + suffix;
  }

  void TearDown() override {
    for (const std::string& path : created_) std::remove(path.c_str());
  }

  std::string WriteFile(const std::string& suffix, const std::string& body) {
    const std::string path = TempPath(suffix);
    std::ofstream out(path, std::ios::binary);
    out << body;
    created_.push_back(path);
    return path;
  }

  Dataset MakeValid() {
    const Domain domain = ContinuousDomain(0.0, 100.0);
    return Dataset("valid", domain, {1.0, 2.0, 50.0, 99.0});
  }

  std::vector<std::string> created_;
};

TEST_F(DataIoCorruptTest, MissingFileIsNotFound) {
  const auto loaded = LoadDatasetText(TempPath("does_not_exist.txt"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(DataIoCorruptTest, ZeroLengthTextFileIsRejected) {
  const auto loaded = LoadDatasetText(WriteFile("empty.txt", ""));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DataIoCorruptTest, GarbageHeaderIsRejected) {
  const auto loaded = LoadDatasetText(
      WriteFile("garbage.txt", "not-a-dataset at all\n1.0\n2.0\n"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DataIoCorruptTest, HeaderWithoutValuesIsRejected) {
  const auto loaded = LoadDatasetText(
      WriteFile("novalues.txt", "selest-dataset d 0 100 0 0\n"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("no values"), std::string::npos);
}

TEST_F(DataIoCorruptTest, InvertedDomainIsRejected) {
  const auto loaded = LoadDatasetText(
      WriteFile("inverted.txt", "selest-dataset d 100 0 0 0\n50\n"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DataIoCorruptTest, OutOfDomainValueIsRejected) {
  const auto loaded = LoadDatasetText(
      WriteFile("oob.txt", "selest-dataset d 0 100 0 0\n50\n500\n"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("outside"), std::string::npos);
}

// Forges a structurally valid binary dataset file the saver could never
// produce (the Dataset constructor CHECKs containment, so poisoned values
// can only arrive from outside).
std::string ForgeBinaryFile(double lo, double hi,
                            const std::vector<double>& values) {
  ByteWriter writer;
  writer.WriteU32(1);  // kBinaryVersion
  writer.WriteString("forged");
  writer.WriteDouble(lo);
  writer.WriteDouble(hi);
  writer.WriteU32(0);  // continuous
  writer.WriteU32(0);  // bits
  writer.WriteDoubleVector(values);
  const auto& bytes = writer.bytes();
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

TEST_F(DataIoCorruptTest, NonFiniteBinaryValueIsRejected) {
  for (const double poison : {std::numeric_limits<double>::quiet_NaN(),
                              std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity()}) {
    const auto loaded = LoadDatasetBinary(
        WriteFile("poison.dat", ForgeBinaryFile(0.0, 100.0, {1.0, poison})));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(DataIoCorruptTest, InvertedBinaryDomainIsRejected) {
  const auto loaded = LoadDatasetBinary(
      WriteFile("inv_domain.dat", ForgeBinaryFile(100.0, 0.0, {50.0})));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DataIoCorruptTest, NanBinaryDomainIsRejected) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto loaded = LoadDatasetBinary(
      WriteFile("nan_domain.dat", ForgeBinaryFile(nan, 100.0, {50.0})));
  // lo = NaN fails the lo < hi check; values cannot be inside either way.
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DataIoCorruptTest, ZeroLengthBinaryFileIsRejected) {
  const auto loaded = LoadDatasetBinary(WriteFile("empty.dat", ""));
  ASSERT_FALSE(loaded.ok());
}

TEST_F(DataIoCorruptTest, TruncatedBinaryFilesAreRejectedAtEveryLength) {
  const Dataset data = MakeValid();
  const std::string path = TempPath("whole.dat");
  created_.push_back(path);
  ASSERT_TRUE(SaveDatasetBinary(data, path).ok());
  std::ifstream in(path, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 16u);
  // Every proper prefix must fail cleanly: truncation can land mid-header,
  // mid-string, or mid-value array.
  for (size_t len = 0; len < bytes.size(); len += 3) {
    const auto loaded = LoadDatasetBinary(
        WriteFile("trunc_" + std::to_string(len) + ".dat",
                  bytes.substr(0, len)));
    EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes";
  }
}

TEST_F(DataIoCorruptTest, TrailingBytesAreRejected) {
  const Dataset data = MakeValid();
  const std::string path = TempPath("tail.dat");
  created_.push_back(path);
  ASSERT_TRUE(SaveDatasetBinary(data, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes += "extra";
  const auto loaded = LoadDatasetBinary(WriteFile("tail2.dat", bytes));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("trailing"), std::string::npos);
}

TEST_F(DataIoCorruptTest, WrongBinaryVersionIsRejected) {
  // Flip the first byte of the little-endian version word.
  const Dataset data = MakeValid();
  const std::string path = TempPath("ver.dat");
  created_.push_back(path);
  ASSERT_TRUE(SaveDatasetBinary(data, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes[0] = static_cast<char>(bytes[0] + 1);
  const auto loaded = LoadDatasetBinary(WriteFile("ver2.dat", bytes));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST_F(DataIoCorruptTest, TextValuesAfterGarbageTokenAreDropped) {
  // A non-numeric token stops extraction; the loader must still validate
  // what it got instead of crashing or accepting a half-read file.
  const auto loaded = LoadDatasetText(WriteFile(
      "midgarbage.txt", "selest-dataset d 0 100 0 0\n1\n2\nnot-a-number\n3\n"));
  if (loaded.ok()) {
    EXPECT_EQ(loaded->values().size(), 2u);
  }
}

}  // namespace
}  // namespace selest
