#include "src/est/kernel_estimator.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

std::vector<double> UniformSample(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample(n);
  for (double& x : sample) x = 100.0 * rng.NextDouble();
  return sample;
}

KernelEstimatorOptions Options(double bandwidth,
                               BoundaryPolicy boundary = BoundaryPolicy::kNone) {
  KernelEstimatorOptions options;
  options.bandwidth = bandwidth;
  options.boundary = boundary;
  return options;
}

// Brute-force reference: direct CDF-difference sum over all samples.
double BruteForce(const std::vector<double>& sample, const Kernel& kernel,
                  double h, double a, double b) {
  double sum = 0.0;
  for (double x : sample) {
    sum += kernel.Cdf((b - x) / h) - kernel.Cdf((a - x) / h);
  }
  return sum / static_cast<double>(sample.size());
}

TEST(KernelEstimatorTest, RejectsBadConfig) {
  const std::vector<double> sample{1.0};
  EXPECT_FALSE(KernelEstimator::Create({}, kDomain, Options(1.0)).ok());
  EXPECT_FALSE(KernelEstimator::Create(sample, kDomain, Options(0.0)).ok());
  EXPECT_FALSE(KernelEstimator::Create(sample, kDomain, Options(-2.0)).ok());
  KernelEstimatorOptions bad = Options(1.0);
  bad.quadrature_intervals = 1;
  EXPECT_FALSE(KernelEstimator::Create(sample, kDomain, bad).ok());
  KernelEstimatorOptions gaussian_boundary = Options(1.0);
  gaussian_boundary.kernel = Kernel(KernelType::kGaussian);
  gaussian_boundary.boundary = BoundaryPolicy::kBoundaryKernel;
  EXPECT_FALSE(
      KernelEstimator::Create(sample, kDomain, gaussian_boundary).ok());
}

TEST(KernelEstimatorTest, SingleSampleFullyCovered) {
  const std::vector<double> sample{50.0};
  auto est = KernelEstimator::Create(sample, kDomain, Options(2.0));
  ASSERT_TRUE(est.ok());
  // The whole bump lies inside [40, 60].
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(40.0, 60.0), 1.0);
  // Half the bump lies right of the sample.
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(50.0, 60.0), 0.5);
  // Nothing beyond one bandwidth.
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(60.0, 70.0), 0.0);
}

TEST(KernelEstimatorTest, SingleSamplePartialOverlap) {
  const std::vector<double> sample{50.0};
  auto est = KernelEstimator::Create(sample, kDomain, Options(2.0));
  ASSERT_TRUE(est.ok());
  // Query [51, 60]: overlap from t = 0.5 to 1 of the kernel.
  const Kernel k;
  EXPECT_NEAR(est->EstimateSelectivity(51.0, 60.0), 1.0 - k.Cdf(0.5), 1e-12);
}

TEST(KernelEstimatorTest, MatchesBruteForceOnRandomQueries) {
  const auto sample = UniformSample(500, 1);
  const double h = 3.0;
  auto est = KernelEstimator::Create(sample, kDomain, Options(h));
  ASSERT_TRUE(est.ok());
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double a = 100.0 * rng.NextDouble();
    const double b = a + (100.0 - a) * rng.NextDouble();
    const double expected = BruteForce(sample, Kernel(), h, a, b);
    EXPECT_NEAR(est->EstimateSelectivity(a, b), expected, 1e-10);
  }
}

TEST(KernelEstimatorTest, MatchesBruteForceForNarrowQueries) {
  // Queries narrower than 2h exercise the overlapping-fringe path.
  const auto sample = UniformSample(300, 3);
  const double h = 10.0;
  auto est = KernelEstimator::Create(sample, kDomain, Options(h));
  ASSERT_TRUE(est.ok());
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const double a = 90.0 * rng.NextDouble();
    const double b = a + 5.0 * rng.NextDouble();
    EXPECT_NEAR(est->EstimateSelectivity(a, b),
                BruteForce(sample, Kernel(), h, a, b), 1e-10);
  }
}

TEST(KernelEstimatorTest, Algorithm1MatchesCdfFormulation) {
  const auto sample = UniformSample(400, 5);
  const double h = 2.0;
  auto est = KernelEstimator::Create(sample, kDomain, Options(h));
  ASSERT_TRUE(est.ok());
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const double a = 80.0 * rng.NextDouble();
    const double b = a + 2.0 * h + 15.0 * rng.NextDouble();  // b − a >= 2h
    EXPECT_NEAR(est->EstimateSelectivityAlgorithm1(a, b),
                BruteForce(sample, Kernel(), h, a, b), 1e-10);
  }
}

TEST(KernelEstimatorTest, EveryKernelTypeMatchesBruteForce) {
  const auto sample = UniformSample(200, 7);
  for (KernelType type :
       {KernelType::kEpanechnikov, KernelType::kBiweight,
        KernelType::kTriangular, KernelType::kUniform, KernelType::kGaussian}) {
    KernelEstimatorOptions options = Options(4.0);
    options.kernel = Kernel(type);
    auto est = KernelEstimator::Create(sample, kDomain, options);
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(est->EstimateSelectivity(20.0, 45.0),
                BruteForce(sample, Kernel(type), 4.0, 20.0, 45.0), 1e-9)
        << Kernel(type).name();
  }
}

TEST(KernelEstimatorTest, FullDomainNearOneForInteriorData) {
  // Samples away from boundaries: no mass leaks, full-domain estimate = 1.
  Rng rng(8);
  std::vector<double> sample(300);
  for (double& x : sample) x = 20.0 + 60.0 * rng.NextDouble();
  auto est = KernelEstimator::Create(sample, kDomain, Options(2.0));
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 100.0), 1.0, 1e-12);
}

TEST(KernelEstimatorTest, QueriesClampedToDomain) {
  const std::vector<double> sample{50.0};
  auto est = KernelEstimator::Create(sample, kDomain, Options(2.0));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(-100.0, 200.0),
                   est->EstimateSelectivity(0.0, 100.0));
}

TEST(KernelEstimatorTest, MonotoneInUpperBound) {
  const auto sample = UniformSample(200, 9);
  auto est = KernelEstimator::Create(sample, kDomain, Options(5.0));
  ASSERT_TRUE(est.ok());
  double prev = 0.0;
  for (double b = 0.0; b <= 100.0; b += 1.0) {
    const double s = est->EstimateSelectivity(0.0, b);
    EXPECT_GE(s, prev - 1e-12);
    prev = s;
  }
}

TEST(KernelEstimatorTest, AdditiveOverAdjacentRanges) {
  const auto sample = UniformSample(200, 10);
  auto est = KernelEstimator::Create(sample, kDomain, Options(5.0));
  ASSERT_TRUE(est.ok());
  const double whole = est->EstimateSelectivity(10.0, 90.0);
  const double split = est->EstimateSelectivity(10.0, 47.0) +
                       est->EstimateSelectivity(47.0, 90.0);
  EXPECT_NEAR(whole, split, 1e-10);
}

TEST(KernelEstimatorTest, ReflectionMatchesManualMirroring) {
  const std::vector<double> sample{1.0, 50.0};
  const double h = 3.0;
  auto est = KernelEstimator::Create(sample, kDomain,
                                     Options(h, BoundaryPolicy::kReflection));
  ASSERT_TRUE(est.ok());
  // Manual: the sample at 1.0 gains a mirror at −1.0; queries are clamped
  // to the domain, so integrate the mirrored mass over [0, 4].
  const Kernel k;
  const auto mass = [&](double x, double a, double b) {
    return k.Cdf((b - x) / h) - k.Cdf((a - x) / h);
  };
  const double expected =
      (mass(1.0, 0.0, 4.0) + mass(-1.0, 0.0, 4.0) + mass(50.0, 0.0, 4.0)) /
      2.0;
  EXPECT_NEAR(est->EstimateSelectivity(-2.0, 4.0), expected, 1e-12);
}

TEST(KernelEstimatorTest, ReflectionReducesBoundaryError) {
  // Uniform data: true selectivity of [0, 5] is 0.05. The untreated
  // estimator loses boundary mass; reflection recovers it.
  const auto sample = UniformSample(5000, 11);
  const double h = 5.0;
  auto plain = KernelEstimator::Create(sample, kDomain, Options(h));
  auto reflected = KernelEstimator::Create(
      sample, kDomain, Options(h, BoundaryPolicy::kReflection));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(reflected.ok());
  const double truth = 0.05;
  const double plain_error =
      std::fabs(plain->EstimateSelectivity(0.0, 5.0) - truth);
  const double reflected_error =
      std::fabs(reflected->EstimateSelectivity(0.0, 5.0) - truth);
  EXPECT_LT(reflected_error, 0.5 * plain_error);
}

TEST(KernelEstimatorTest, BoundaryKernelReducesBoundaryError) {
  const auto sample = UniformSample(5000, 12);
  const double h = 5.0;
  auto plain = KernelEstimator::Create(sample, kDomain, Options(h));
  auto corrected = KernelEstimator::Create(
      sample, kDomain, Options(h, BoundaryPolicy::kBoundaryKernel));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(corrected.ok());
  const double truth = 0.05;
  const double plain_error =
      std::fabs(plain->EstimateSelectivity(0.0, 5.0) - truth);
  const double corrected_error =
      std::fabs(corrected->EstimateSelectivity(0.0, 5.0) - truth);
  EXPECT_LT(corrected_error, 0.5 * plain_error);
}

TEST(KernelEstimatorTest, BoundaryKernelMatchesPlainInInterior) {
  const auto sample = UniformSample(500, 13);
  const double h = 4.0;
  auto plain = KernelEstimator::Create(sample, kDomain, Options(h));
  auto corrected = KernelEstimator::Create(
      sample, kDomain, Options(h, BoundaryPolicy::kBoundaryKernel));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(corrected.ok());
  // Queries at least one bandwidth away from both boundaries are untouched
  // by the correction.
  EXPECT_NEAR(corrected->EstimateSelectivity(20.0, 70.0),
              plain->EstimateSelectivity(20.0, 70.0), 1e-10);
}

TEST(KernelEstimatorTest, EstimatesUniformSelectivities) {
  const auto sample = UniformSample(2000, 14);
  auto est = KernelEstimator::Create(
      sample, kDomain, Options(3.0, BoundaryPolicy::kBoundaryKernel));
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->EstimateSelectivity(10.0, 30.0), 0.2, 0.03);
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 50.0), 0.5, 0.03);
}

TEST(KernelEstimatorTest, InvertedAndPointQueries) {
  const auto sample = UniformSample(100, 15);
  auto est = KernelEstimator::Create(sample, kDomain, Options(2.0));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(60.0, 40.0), 0.0);
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(50.0, 50.0), 0.0);
}

TEST(KernelEstimatorTest, StorageAndName) {
  const auto sample = UniformSample(64, 16);
  auto est = KernelEstimator::Create(sample, kDomain, Options(2.0));
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->StorageBytes(), 65 * sizeof(double));
  EXPECT_EQ(est->name(), "kernel(epanechnikov, none)");
  EXPECT_EQ(est->sample_size(), 64u);
}

}  // namespace
}  // namespace selest
