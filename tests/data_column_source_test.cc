// ColumnSource contract tests: chunk iteration, Reset replay, and
// bit-identity between streamed synthetic columns and the materialized
// generators they replace.
#include "src/data/column_source.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "src/data/census.h"
#include "src/data/dataset.h"
#include "src/data/distribution.h"
#include "src/data/domain.h"
#include "src/util/random.h"

namespace selest {
namespace {

TEST(InMemoryColumnSourceTest, ChunksCoverAllValuesInOrder) {
  std::vector<double> values(1000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  for (const size_t chunk_rows : {1ul, 64ul, 333ul, 1000ul, 4096ul}) {
    InMemoryColumnSource source("col", ContinuousDomain(0.0, 1000.0), values,
                                chunk_rows);
    EXPECT_EQ(source.rows(), values.size());
    EXPECT_EQ(source.chunk_rows(), chunk_rows);
    std::vector<double> streamed;
    size_t chunks = 0;
    for (auto chunk = source.NextChunk(); !chunk.empty();
         chunk = source.NextChunk()) {
      EXPECT_LE(chunk.size(), chunk_rows);
      streamed.insert(streamed.end(), chunk.begin(), chunk.end());
      ++chunks;
    }
    EXPECT_EQ(streamed, values) << "chunk_rows=" << chunk_rows;
    EXPECT_EQ(chunks, (values.size() + chunk_rows - 1) / chunk_rows);
    // A drained source stays drained until Reset.
    EXPECT_TRUE(source.NextChunk().empty());
    source.Reset();
    EXPECT_EQ(MaterializeSource(source), values);
  }
}

TEST(InMemoryColumnSourceTest, MisalignedFinalChunkIsShort) {
  std::vector<double> values(130, 1.0);
  InMemoryColumnSource source("col", ContinuousDomain(0.0, 2.0), values, 64);
  EXPECT_EQ(source.NextChunk().size(), 64u);
  EXPECT_EQ(source.NextChunk().size(), 64u);
  EXPECT_EQ(source.NextChunk().size(), 2u);
  EXPECT_TRUE(source.NextChunk().empty());
}

TEST(InMemoryColumnSourceTest, WrapsDataset) {
  Rng rng(11);
  const Dataset data = GenerateDataset(
      "normal", NormalDistribution(500.0, 80.0), 400, BitDomain(10), rng);
  InMemoryColumnSource source(data, 128);
  EXPECT_EQ(source.name(), data.name());
  EXPECT_EQ(source.rows(), data.size());
  EXPECT_EQ(MaterializeSource(source), data.values());
}

TEST(SyntheticColumnSourceTest, MatchesGenerateDatasetBitForBit) {
  const Domain domain = BitDomain(12);
  auto distribution =
      std::make_shared<const NormalDistribution>(2048.0, 500.0);
  Rng eager_rng(42);
  const Dataset eager = GenerateDataset("normal", *distribution, 2000, domain,
                                        eager_rng);
  for (const size_t chunk_rows : {1ul, 64ul, 4096ul}) {
    auto source = MakeDistributionSource("normal", distribution, 2000, domain,
                                         42, chunk_rows);
    const std::vector<double> streamed = MaterializeSource(*source);
    EXPECT_EQ(streamed, eager.values()) << "chunk_rows=" << chunk_rows;
  }
}

TEST(SyntheticColumnSourceTest, ResetReplaysIdenticalStream) {
  auto source = MakeNamedSource("zipf", 5000, 12, 9, 1.2, 256);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  const std::vector<double> first = MaterializeSource(**source);
  const std::vector<double> second = MaterializeSource(**source);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 5000u);
}

TEST(SyntheticColumnSourceTest, CensusMatchesGenerateInstanceWeights) {
  InstanceWeightConfig config;
  config.bits = 12;
  Rng eager_rng(7);
  const Dataset eager =
      GenerateInstanceWeights("census", config, 1500, eager_rng);
  auto source = MakeInstanceWeightSource("census", config, 1500, 7, 100);
  EXPECT_EQ(MaterializeSource(*source), eager.values());
  EXPECT_EQ(source->domain().lo, eager.domain().lo);
  EXPECT_EQ(source->domain().hi, eager.domain().hi);
}

TEST(SyntheticColumnSourceTest, RowsStayInsideDomain) {
  for (const char* dist :
       {"uniform", "normal", "exponential", "zipf", "census"}) {
    auto source = MakeNamedSource(dist, 2000, 10, 5);
    ASSERT_TRUE(source.ok()) << dist << ": " << source.status().ToString();
    const Domain& domain = (*source)->domain();
    for (double v : MaterializeSource(**source)) {
      ASSERT_TRUE(domain.Contains(v)) << dist << " emitted " << v;
    }
  }
}

TEST(SyntheticColumnSourceTest, NamedSourceRejectsUnknownAndEmpty) {
  EXPECT_EQ(MakeNamedSource("cauchy", 100, 10, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeNamedSource("uniform", 0, 10, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatasetTest, FromSortedValuesSkipsSortedCacheCopy) {
  std::vector<double> values = {1.0, 2.0, 2.0, 5.0, 9.0};
  const Dataset data =
      Dataset::FromSortedValues("sorted", ContinuousDomain(0.0, 10.0), values);
  // The sorted view aliases the value vector itself — no cached copy.
  EXPECT_EQ(&data.sorted_values(), &data.values());
  EXPECT_EQ(data.CountInRange(2.0, 5.0), 3u);
  EXPECT_EQ(data.CountDistinct(), 4u);
}

TEST(DatasetTest, FromSortedValuesMatchesUnsortedConstruction) {
  Rng rng(3);
  std::vector<double> values(500);
  for (double& v : values) v = std::floor(1000.0 * rng.NextDouble());
  const Dataset unsorted("col", ContinuousDomain(0.0, 1000.0), values);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const Dataset presorted = Dataset::FromSortedValues(
      "col", ContinuousDomain(0.0, 1000.0), std::move(sorted));
  EXPECT_EQ(presorted.sorted_values(), unsorted.sorted_values());
  EXPECT_EQ(presorted.CountInRange(100.0, 700.0),
            unsorted.CountInRange(100.0, 700.0));
}

}  // namespace
}  // namespace selest
