// Concurrency tests for the epoch swap: reader threads hammer the serve
// path while refreshes flip generations underneath them, and every served
// answer must be bit-identical to *some* published generation — never a
// torn mix of two. Runs under tsan via the `server` label, which also
// proves the generation flip itself (atomic shared_ptr store vs concurrent
// loads) race-free.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/catalog/live_server.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1000.0);

std::vector<double> MakeRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(kDomain.lo + rng.NextDouble() * kDomain.width());
  }
  return rows;
}

EstimatorConfig ConfigWithBins(EstimatorKind kind, int bins) {
  EstimatorConfig config;
  config.kind = kind;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = bins;
  return config;
}

std::vector<RangeQuery> ProbeQueries() {
  std::vector<RangeQuery> queries;
  for (int i = 0; i < 16; ++i) {
    const double a = 55.0 * static_cast<double>(i);
    queries.push_back({a, a + 80.0});
  }
  return queries;
}

struct Observation {
  size_t query = 0;
  double value = 0.0;
  uint64_t generation = 0;
};

// The tent-pole assertion: readers race a writer that ingests and flips
// generations; afterwards every observation is replayed against the exact
// generation that served it.
TEST(EpochConcurrencyTest, ServedValuesAreBitIdenticalToSomeGeneration) {
  LiveServerOptions options;
  options.background_refresh = false;  // the writer thread flips inline
  options.keep_generation_history = true;
  LiveStatisticsServer server(std::move(options));
  const EstimatorConfig config =
      ConfigWithBins(EstimatorKind::kEquiWidth, 32);
  ASSERT_TRUE(
      server.RegisterColumn("t", "x", kDomain, config, MakeRows(600, 1))
          .ok());

  const std::vector<RangeQuery> queries = ProbeQueries();
  constexpr size_t kReaders = 4;
  constexpr size_t kReadsPerReader = 2000;
  constexpr size_t kFlips = 25;

  std::atomic<bool> start{false};
  std::atomic<bool> writer_done{false};
  std::vector<std::vector<Observation>> observations(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    observations[r].reserve(kReadsPerReader);
    readers.emplace_back([&, r]() {
      while (!start.load()) std::this_thread::yield();
      for (size_t i = 0; i < kReadsPerReader; ++i) {
        const size_t q = (r * 7 + i) % queries.size();
        auto served = server.EstimateDetailed("t", "x", queries[q]);
        ASSERT_TRUE(served.ok());
        observations[r].push_back(
            {q, served.value().value, served.value().generation});
      }
    });
  }

  std::thread writer([&]() {
    start.store(true);
    for (size_t flip = 0; flip < kFlips; ++flip) {
      ASSERT_TRUE(server.Ingest("t", "x", MakeRows(40, 100 + flip)).ok());
      ASSERT_TRUE(server.Refresh("t", "x").ok());
    }
    writer_done.store(true);
  });
  writer.join();
  for (std::thread& reader : readers) reader.join();

  auto history = server.GenerationHistory("t", "x");
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history.value().size(), kFlips + 1);

  // Replay: an observation stamped generation g must equal g's estimator's
  // answer exactly. A torn read (estimator from one epoch, number from
  // another, or a half-published generation) cannot pass for every probe.
  size_t replayed = 0;
  for (const auto& per_reader : observations) {
    uint64_t last_generation = 0;
    for (const Observation& seen : per_reader) {
      ASSERT_GE(seen.generation, 1u);
      ASSERT_LE(seen.generation, kFlips + 1);
      const LiveGeneration& generation =
          *history.value()[seen.generation - 1];
      ASSERT_EQ(generation.number, seen.generation);
      EXPECT_EQ(seen.value,
                generation.estimator->EstimateSelectivity(queries[seen.query]))
          << "reader observed a value not produced by generation "
          << seen.generation;
      // Served generations never move backwards for a single reader.
      EXPECT_GE(seen.generation, last_generation);
      last_generation = seen.generation;
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, kReaders * kReadsPerReader);
}

// Concurrent ingest from several threads, serves racing them, background
// refreshes on the shared pool: exercises the ingest mutex, the refresh
// coalescing flag, and WaitForRefreshes. Correctness here is "tsan-clean
// and the counters add up", not specific values.
TEST(EpochConcurrencyTest, ConcurrentIngestAndServeIsClean) {
  LiveServerOptions options;
  options.background_refresh = true;
  options.refresh_ingest_rows = 200;
  LiveStatisticsServer server(std::move(options));
  ASSERT_TRUE(server
                  .RegisterColumn("t", "x", kDomain,
                                  ConfigWithBins(EstimatorKind::kEquiWidth, 16),
                                  MakeRows(400, 2))
                  .ok());

  constexpr size_t kWriters = 3;
  constexpr size_t kBatches = 20;
  constexpr size_t kBatchRows = 50;
  const std::vector<RangeQuery> queries = ProbeQueries();

  std::vector<std::thread> workers;
  for (size_t w = 0; w < kWriters; ++w) {
    workers.emplace_back([&, w]() {
      for (size_t batch = 0; batch < kBatches; ++batch) {
        ASSERT_TRUE(
            server.Ingest("t", "x", MakeRows(kBatchRows, 10 * w + batch))
                .ok());
      }
    });
  }
  workers.emplace_back([&]() {
    for (size_t i = 0; i < 3000; ++i) {
      ASSERT_TRUE(server.Estimate("t", "x", queries[i % queries.size()]).ok());
    }
  });
  for (std::thread& worker : workers) worker.join();
  server.WaitForRefreshes();

  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().ingested_rows, kWriters * kBatches * kBatchRows);
  EXPECT_GE(stats.value().serves, 3000u);
  EXPECT_GE(stats.value().refreshes, 1u);
  EXPECT_EQ(stats.value().refresh_errors, 0u);
  auto generation = server.CurrentGeneration("t", "x");
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(generation.value()->number, stats.value().generation);
}

// A reader holding the estimator of an old generation keeps a valid object
// across arbitrarily many flips (RCU lifetime: the shared_ptr keeps the
// epoch alive).
TEST(EpochConcurrencyTest, OldGenerationSurvivesWhileHeld) {
  LiveServerOptions options;
  options.background_refresh = false;
  LiveStatisticsServer server(std::move(options));
  ASSERT_TRUE(server
                  .RegisterColumn("t", "x", kDomain,
                                  ConfigWithBins(EstimatorKind::kEquiWidth, 8),
                                  MakeRows(300, 3))
                  .ok());
  auto held = server.CurrentEstimator("t", "x");
  ASSERT_TRUE(held.ok());
  const RangeQuery query{100.0, 600.0};
  const double before = held.value()->EstimateSelectivity(query);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.Ingest("t", "x", MakeRows(50, 200 + i)).ok());
    ASSERT_TRUE(server.Refresh("t", "x").ok());
  }
  // The held epoch still answers, unchanged by the five flips.
  EXPECT_EQ(held.value()->EstimateSelectivity(query), before);
  auto current = server.CurrentGeneration("t", "x");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current.value()->number, 6u);
}

}  // namespace
}  // namespace selest
