// Property/metamorphic suite over every factory-constructible estimator:
//
//   * σ̂(a, b) ∈ [0, 1] for arbitrary queries;
//   * σ̂(a, b) is non-decreasing in b (monotonicity);
//   * σ̂(a, m) + σ̂(m, b) ≈ σ̂(a, b) for histogram estimators (additivity
//     of the bin-mass integral);
//   * EstimateSelectivityBatch ≡ per-query EstimateSelectivity,
//     element-wise and exactly (the batch API's core contract).
#include "src/est/estimator_factory.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

std::vector<double> MixtureSample(size_t n, uint64_t seed) {
  // Two humps plus a uniform floor: enough structure that histograms have
  // uneven bins and kernels have boundary mass, without leaving any region
  // of the domain empty.
  Rng rng(seed);
  std::vector<double> sample;
  sample.reserve(n);
  while (sample.size() < n) {
    const double u = rng.NextDouble();
    double x;
    if (u < 0.4) {
      x = 25.0 + 8.0 * (rng.NextDouble() + rng.NextDouble() - 1.0);
    } else if (u < 0.8) {
      x = 70.0 + 5.0 * (rng.NextDouble() + rng.NextDouble() - 1.0);
    } else {
      x = 100.0 * rng.NextDouble();
    }
    if (x >= kDomain.lo && x <= kDomain.hi) sample.push_back(x);
  }
  return sample;
}

std::vector<RangeQuery> RandomQueries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<RangeQuery> queries(n);
  for (RangeQuery& q : queries) {
    const double x = kDomain.lo + kDomain.width() * rng.NextDouble();
    const double y = kDomain.lo + kDomain.width() * rng.NextDouble();
    q = {std::min(x, y), std::max(x, y)};
  }
  return queries;
}

const EstimatorKind kAllKinds[] = {
    EstimatorKind::kSampling,   EstimatorKind::kUniform,
    EstimatorKind::kEquiWidth,  EstimatorKind::kEquiDepth,
    EstimatorKind::kMaxDiff,    EstimatorKind::kAverageShifted,
    EstimatorKind::kKernel,     EstimatorKind::kHybrid,
    EstimatorKind::kVOptimal,   EstimatorKind::kAdaptiveKernel,
    EstimatorKind::kWavelet,
};

// The estimators whose estimate is the integral of a piecewise density
// over the query range, for which σ̂ is exactly additive over adjacent
// ranges (up to floating-point association).
bool IsHistogramKind(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kUniform:
    case EstimatorKind::kEquiWidth:
    case EstimatorKind::kEquiDepth:
    case EstimatorKind::kMaxDiff:
    case EstimatorKind::kAverageShifted:
    case EstimatorKind::kVOptimal:
    case EstimatorKind::kWavelet:
      return true;
    default:
      return false;
  }
}

std::unique_ptr<SelectivityEstimator> Build(EstimatorKind kind) {
  static const std::vector<double>* sample =
      new std::vector<double>(MixtureSample(1500, 99));
  EstimatorConfig config;
  config.kind = kind;
  auto est = BuildEstimator(*sample, kDomain, config);
  if (!est.ok()) {
    ADD_FAILURE() << EstimatorKindName(kind)
                  << " failed to build: " << est.status().ToString();
    return nullptr;
  }
  return std::move(est).value();
}

class EstimatorPropertyTest : public ::testing::TestWithParam<EstimatorKind> {};

TEST_P(EstimatorPropertyTest, SelectivityStaysInUnitInterval) {
  const auto est = Build(GetParam());
  ASSERT_NE(est, nullptr);
  for (const RangeQuery& q : RandomQueries(300, 1)) {
    const double s = est->EstimateSelectivity(q.a, q.b);
    EXPECT_GE(s, 0.0) << est->name() << " on [" << q.a << ", " << q.b << "]";
    EXPECT_LE(s, 1.0) << est->name() << " on [" << q.a << ", " << q.b << "]";
  }
}

TEST_P(EstimatorPropertyTest, MonotoneInUpperBound) {
  const auto est = Build(GetParam());
  ASSERT_NE(est, nullptr);
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const double a = kDomain.lo + 0.5 * kDomain.width() * rng.NextDouble();
    double b = a;
    double previous = est->EstimateSelectivity(a, b);
    for (int step = 0; step < 12; ++step) {
      b = std::min(kDomain.hi, b + kDomain.width() / 16.0 * rng.NextDouble());
      const double current = est->EstimateSelectivity(a, b);
      // Exactly monotone implementations pass with 0 slack; the tolerance
      // only absorbs last-bit rounding in the kernel quadrature tables.
      EXPECT_GE(current, previous - 1e-12)
          << est->name() << " shrank on [" << a << ", " << b << "]";
      previous = current;
    }
  }
}

TEST_P(EstimatorPropertyTest, HistogramSelectivityIsAdditive) {
  if (!IsHistogramKind(GetParam())) {
    GTEST_SKIP() << "additivity only holds for density-integral estimators";
  }
  const auto est = Build(GetParam());
  ASSERT_NE(est, nullptr);
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const double x = kDomain.lo + kDomain.width() * rng.NextDouble();
    const double y = kDomain.lo + kDomain.width() * rng.NextDouble();
    const double a = std::min(x, y), b = std::max(x, y);
    const double m = a + (b - a) * rng.NextDouble();
    const double whole = est->EstimateSelectivity(a, b);
    const double split =
        est->EstimateSelectivity(a, m) + est->EstimateSelectivity(m, b);
    EXPECT_NEAR(split, whole, 1e-9)
        << est->name() << " at a=" << a << " m=" << m << " b=" << b;
  }
}

TEST_P(EstimatorPropertyTest, BatchMatchesPerQueryExactly) {
  const auto est = Build(GetParam());
  ASSERT_NE(est, nullptr);
  const auto queries = RandomQueries(500, 4);
  std::vector<double> batch(queries.size());
  est->EstimateSelectivityBatch(queries, batch);
  for (size_t i = 0; i < queries.size(); ++i) {
    const double single = est->EstimateSelectivity(queries[i]);
    // Exact equality: batching must never change a value.
    EXPECT_EQ(batch[i], single)
        << est->name() << " query " << i << " [" << queries[i].a << ", "
        << queries[i].b << "]";
  }
}

TEST_P(EstimatorPropertyTest, BatchHandlesEmptySpan) {
  const auto est = Build(GetParam());
  ASSERT_NE(est, nullptr);
  est->EstimateSelectivityBatch({}, {});  // must be a no-op, not a crash
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EstimatorPropertyTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<EstimatorKind>& info) {
      std::string name = EstimatorKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace selest
