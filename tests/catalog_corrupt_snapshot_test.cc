// Corrupt-snapshot robustness: damaged snapshot bytes and files must
// surface as Status (never a crash), with the code the envelope contract
// promises, and the serving catalog must degrade to a rebuild + write-back
// when its durable tier is damaged. Runs under both sanitizer presets via
// the `robustness` and `catalog` labels.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <filesystem>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/catalog/statistics_catalog.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/est/estimator_snapshot.h"
#include "src/util/random.h"
#include "src/util/serialize.h"

namespace selest {
namespace {

// A per-test snapshot directory, cleared up front so state persisted by a
// previous run (snapshots survive on purpose) cannot skew the counters.
std::string FreshDir(const std::string& name) {
  // Suffixed with the pid: each gtest case runs as its own ctest process,
  // and concurrent cases of the same binary must not share a directory.
  const std::string dir =
      testing::TempDir() + name + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<double> MakeSample(size_t n, const Domain& domain,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample;
  sample.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sample.push_back(
        domain.Quantize(domain.lo + rng.NextDouble() * domain.width()));
  }
  return sample;
}

std::vector<uint8_t> MakeSnapshot(EstimatorKind kind = EstimatorKind::kEquiWidth) {
  const Domain domain = BitDomain(12);
  EstimatorConfig config;
  config.kind = kind;
  auto estimator = BuildEstimator(MakeSample(256, domain, 3), domain, config);
  EXPECT_TRUE(estimator.ok());
  auto bytes = SnapshotEstimator(*estimator.value());
  EXPECT_TRUE(bytes.ok());
  return bytes.value();
}

// Envelope layout constants (util/serialize.h): magic u32 | version u32 |
// type tag u32 | payload size u64 | payload | CRC32.
constexpr size_t kVersionOffset = 4;
constexpr size_t kHeaderTagOffset = 8;
constexpr size_t kHeaderBytes = 20;

TEST(CorruptSnapshotTest, TruncationAtEveryPrefixLengthIsStatusNotCrash) {
  const std::vector<uint8_t> bytes = MakeSnapshot();
  // Every truncation point, not just a sample: the reader must never run
  // past the end no matter where the bytes stop.
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    auto result = LoadEstimatorSnapshot(cut);
    ASSERT_FALSE(result.ok()) << "prefix length " << keep;
  }
  // Truncation below the fixed envelope is specifically kOutOfRange.
  std::vector<uint8_t> tiny(bytes.begin(), bytes.begin() + 10);
  EXPECT_EQ(LoadEstimatorSnapshot(tiny).status().code(),
            StatusCode::kOutOfRange);
}

TEST(CorruptSnapshotTest, FlippedPayloadByteIsDataLoss) {
  std::vector<uint8_t> bytes = MakeSnapshot();
  bytes[kHeaderBytes + 3] ^= 0x40;  // inside the payload, behind the CRC
  auto result = LoadEstimatorSnapshot(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(CorruptSnapshotTest, FlippedCrcByteIsDataLoss) {
  std::vector<uint8_t> bytes = MakeSnapshot();
  bytes[bytes.size() - 1] ^= 0x01;  // the stored checksum itself
  auto result = LoadEstimatorSnapshot(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(CorruptSnapshotTest, FutureFormatVersionIsFailedPrecondition) {
  std::vector<uint8_t> bytes = MakeSnapshot();
  bytes[kVersionOffset] = static_cast<uint8_t>(kSnapshotFormatVersion + 9);
  auto result = LoadEstimatorSnapshot(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CorruptSnapshotTest, WrongHeaderTypeTagIsDataLoss) {
  // The payload CRC cannot see the header, so a flipped header tag is only
  // caught by the cross-check against the deserialized estimator's tag.
  std::vector<uint8_t> bytes = MakeSnapshot();
  bytes[kHeaderTagOffset] = static_cast<uint8_t>(EstimatorTag::kSampling);
  auto result = LoadEstimatorSnapshot(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(CorruptSnapshotTest, BadMagicIsDataLoss) {
  std::vector<uint8_t> bytes = MakeSnapshot();
  bytes[0] ^= 0xFF;
  EXPECT_EQ(LoadEstimatorSnapshot(bytes).status().code(),
            StatusCode::kDataLoss);
}

TEST(CorruptSnapshotTest, TrailingBytesAreInvalidArgument) {
  std::vector<uint8_t> bytes = MakeSnapshot();
  bytes.push_back(0x00);
  EXPECT_EQ(LoadEstimatorSnapshot(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CorruptSnapshotTest, EveryEstimatorKindSurvivesPayloadFlips) {
  // Flips that pass the CRC are impossible, but flips the test applies
  // before re-checksumming probe the payload validators: re-wrap a damaged
  // payload with a fresh (valid) CRC and require Status, never a crash or
  // an invalid estimator.
  for (EstimatorKind kind :
       {EstimatorKind::kUniform, EstimatorKind::kSampling,
        EstimatorKind::kEquiWidth, EstimatorKind::kEquiDepth,
        EstimatorKind::kMaxDiff, EstimatorKind::kVOptimal,
        EstimatorKind::kWavelet, EstimatorKind::kAverageShifted,
        EstimatorKind::kKernel, EstimatorKind::kAdaptiveKernel,
        EstimatorKind::kHybrid, EstimatorKind::kFeedback,
        EstimatorKind::kReconstructed, EstimatorKind::kOnlineLearning}) {
    const std::vector<uint8_t> bytes = MakeSnapshot(kind);
    auto view = UnwrapSnapshot(bytes);
    ASSERT_TRUE(view.ok());
    for (size_t i = 0; i < view->payload.size();
         i += std::max<size_t>(1, view->payload.size() / 64)) {
      std::vector<uint8_t> payload = view->payload;
      payload[i] ^= 0x80;
      const std::vector<uint8_t> rewrapped =
          WrapSnapshot(view->type_tag, payload);
      auto result = LoadEstimatorSnapshot(rewrapped);
      // Either the damage was semantically harmless (a sample value
      // changed) or it is rejected — but it never crashes and a returned
      // estimator is always usable.
      if (result.ok()) {
        (void)result.value()->EstimateSelectivity(0.25, 0.75);
      }
    }
  }
}

TEST(CorruptSnapshotTest, CatalogRebuildsThroughCorruptSnapshot) {
  const std::string dir = FreshDir("selest_corrupt_catalog");
  const Domain domain = BitDomain(12);
  const std::vector<double> sample = MakeSample(512, domain, 11);
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiDepth;

  CatalogKey key;
  {
    // First catalog: cold build, write-back.
    Catalog catalog(CatalogOptions{dir});
    auto registered =
        catalog.RegisterColumn("orders", "amount", domain, sample, config);
    ASSERT_TRUE(registered.ok());
    key = registered.value();
    ASSERT_TRUE(catalog.Warm(key).ok());
    EXPECT_EQ(catalog.serve_stats().rebuilds, 1u);
    EXPECT_EQ(catalog.serve_stats().writebacks, 1u);
  }

  // Damage the snapshot file in place: flip a payload byte.
  std::string path;
  {
    Catalog catalog(CatalogOptions{dir});
    auto registered =
        catalog.RegisterColumn("orders", "amount", domain, sample, config);
    ASSERT_TRUE(registered.ok());
    path = catalog.store()->PathFor(key);
  }
  {
    auto bytes = ReadBytesFromFile(path);
    ASSERT_TRUE(bytes.ok());
    bytes.value()[bytes.value().size() / 2] ^= 0x20;
    ASSERT_TRUE(WriteBytesToFile(path, bytes.value()).ok());
  }

  // Second catalog: the corrupt snapshot is counted, the estimate is
  // served from a rebuild, and the repaired snapshot is written back.
  Catalog catalog(CatalogOptions{dir});
  auto registered =
      catalog.RegisterColumn("orders", "amount", domain, sample, config);
  ASSERT_TRUE(registered.ok());
  auto estimate = catalog.Estimate(key, RangeQuery{10.0, 200.0});
  ASSERT_TRUE(estimate.ok());
  const CatalogServeStats stats = catalog.serve_stats();
  EXPECT_EQ(stats.snapshot_errors, 1u);
  EXPECT_EQ(stats.rebuilds, 1u);
  EXPECT_EQ(stats.writebacks, 1u);
  EXPECT_EQ(stats.snapshot_loads, 0u);

  // The write-back repaired the file: a third catalog loads it cleanly.
  Catalog repaired(CatalogOptions{dir});
  auto reregistered =
      repaired.RegisterColumn("orders", "amount", domain, sample, config);
  ASSERT_TRUE(reregistered.ok());
  ASSERT_TRUE(repaired.Estimate(key, RangeQuery{10.0, 200.0}).ok());
  EXPECT_EQ(repaired.serve_stats().snapshot_loads, 1u);
  EXPECT_EQ(repaired.serve_stats().rebuilds, 0u);
}

TEST(CorruptSnapshotTest, CatalogRebuildsThroughTruncatedFile) {
  const std::string dir = FreshDir("selest_truncated_catalog");
  const Domain domain = BitDomain(10);
  const std::vector<double> sample = MakeSample(256, domain, 21);
  EstimatorConfig config;  // default equi-width

  Catalog warm(CatalogOptions{dir});
  auto key = warm.RegisterColumn("t", "x", domain, sample, config);
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(warm.Warm(key.value()).ok());
  const std::string path = warm.store()->PathFor(key.value());

  auto bytes = ReadBytesFromFile(path);
  ASSERT_TRUE(bytes.ok());
  bytes.value().resize(bytes.value().size() / 3);
  ASSERT_TRUE(WriteBytesToFile(path, bytes.value()).ok());

  Catalog catalog(CatalogOptions{dir});
  auto reregistered = catalog.RegisterColumn("t", "x", domain, sample, config);
  ASSERT_TRUE(reregistered.ok());
  ASSERT_TRUE(catalog.Estimate("t", "x", RangeQuery{1.0, 100.0}).ok());
  EXPECT_EQ(catalog.serve_stats().snapshot_errors, 1u);
  EXPECT_EQ(catalog.serve_stats().rebuilds, 1u);
}

TEST(CorruptSnapshotTest, MissingSnapshotIsARebuildNotAnError) {
  const std::string dir = FreshDir("selest_missing_catalog");
  const Domain domain = BitDomain(10);
  const std::vector<double> sample = MakeSample(256, domain, 31);
  Catalog catalog(CatalogOptions{dir});
  auto key =
      catalog.RegisterColumn("t", "x", domain, sample, EstimatorConfig{});
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(catalog.Estimate(key.value(), RangeQuery{1.0, 50.0}).ok());
  const CatalogServeStats stats = catalog.serve_stats();
  EXPECT_EQ(stats.snapshot_errors, 0u);  // absence is not corruption
  EXPECT_EQ(stats.rebuilds, 1u);
  EXPECT_EQ(stats.writebacks, 1u);
}

}  // namespace
}  // namespace selest
