// Deterministic fault injection: every armed point fails exactly the hits
// its plan says, every injected failure surfaces as a Status (never an
// abort or a hang), and the pool stays usable afterwards.
#include "src/exec/fault_injection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/data/distribution.h"
#include "src/data/io.h"
#include "src/est/estimator_factory.h"
#include "src/exec/parallel_for.h"
#include "src/exec/thread_pool.h"
#include "src/util/random.h"

namespace selest {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::DisarmAll(); }
};

TEST_F(FaultInjectionTest, UnarmedPointAlwaysPasses) {
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(FaultInjector::Check("test/unarmed").ok());
  }
  EXPECT_EQ(FaultInjector::HitCount("test/unarmed"), 0u);
  EXPECT_EQ(FaultInjector::FiredCount("test/unarmed"), 0u);
}

TEST_F(FaultInjectionTest, DefaultPlanFailsEveryHit) {
  FaultInjector::Arm("test/point");
  for (int i = 0; i < 5; ++i) {
    const Status status = FaultInjector::Check("test/point");
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.message().find("test/point"), std::string::npos);
  }
  EXPECT_EQ(FaultInjector::HitCount("test/point"), 5u);
  EXPECT_EQ(FaultInjector::FiredCount("test/point"), 5u);
}

TEST_F(FaultInjectionTest, WindowPlanFailsOnlyPlannedHits) {
  FaultPlan plan;
  plan.skip = 2;
  plan.count = 3;
  FaultInjector::Arm("test/window", plan);
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) {
    fired.push_back(!FaultInjector::Check("test/window").ok());
  }
  const std::vector<bool> expected = {false, false, true, true,
                                      true,  false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(FaultInjector::HitCount("test/window"), 8u);
  EXPECT_EQ(FaultInjector::FiredCount("test/window"), 3u);
}

TEST_F(FaultInjectionTest, ProbabilisticPlanIsSeededAndReproducible) {
  FaultPlan plan;
  plan.probability = 0.3;
  plan.seed = 42;
  const auto run = [&plan] {
    FaultInjector::Arm("test/coin", plan);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(!FaultInjector::Check("test/coin").ok());
    }
    return fired;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  const size_t fired =
      static_cast<size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, first.size());

  // A different seed flips a different subset.
  plan.seed = 43;
  FaultInjector::Arm("test/coin", plan);
  std::vector<bool> other;
  for (int i = 0; i < 200; ++i) {
    other.push_back(!FaultInjector::Check("test/coin").ok());
  }
  EXPECT_NE(first, other);
}

TEST_F(FaultInjectionTest, ArmResetsCountersAndScopedFaultDisarms) {
  {
    ScopedFault fault("test/scoped");
    EXPECT_FALSE(FaultInjector::Check("test/scoped").ok());
    EXPECT_EQ(FaultInjector::FiredCount("test/scoped"), 1u);
    FaultInjector::Arm("test/scoped");
    EXPECT_EQ(FaultInjector::HitCount("test/scoped"), 0u);
  }
  EXPECT_TRUE(FaultInjector::Check("test/scoped").ok());
  EXPECT_EQ(FaultInjector::HitCount("test/scoped"), 0u);
}

// --- The registered fault points, each proven to surface as a Status. ---

Dataset MakeData() {
  Rng rng(7);
  const Domain domain = BitDomain(12);
  const UniformDistribution dist(domain.lo, domain.hi);
  return GenerateDataset("fault", dist, 300, domain, rng);
}

TEST_F(FaultInjectionTest, DatasetReadFaultsSurfaceAsStatus) {
  const Dataset data = MakeData();
  const std::string text_path = ::testing::TempDir() + "selest_fault_text.txt";
  const std::string bin_path = ::testing::TempDir() + "selest_fault_bin.dat";
  ASSERT_TRUE(SaveDatasetText(data, text_path).ok());
  ASSERT_TRUE(SaveDatasetBinary(data, bin_path).ok());
  {
    ScopedFault fault(kFaultPointDatasetReadText);
    const auto loaded = LoadDatasetText(text_path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInternal);
  }
  {
    ScopedFault fault(kFaultPointDatasetReadBinary);
    const auto loaded = LoadDatasetBinary(bin_path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInternal);
  }
  // Disarmed again: both loads recover.
  EXPECT_TRUE(LoadDatasetText(text_path).ok());
  EXPECT_TRUE(LoadDatasetBinary(bin_path).ok());
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

TEST_F(FaultInjectionTest, EstimatorBuildFaultSurfacesAsStatus) {
  const Dataset data = MakeData();
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  {
    ScopedFault fault(kFaultPointEstimatorBuild);
    const auto estimator =
        BuildEstimator(data.values(), data.domain(), config);
    ASSERT_FALSE(estimator.ok());
    EXPECT_EQ(estimator.status().code(), StatusCode::kInternal);
  }
  EXPECT_TRUE(BuildEstimator(data.values(), data.domain(), config).ok());
}

TEST_F(FaultInjectionTest, TaskFaultFailsTryParallelForSerially) {
  // Serial path (null pool): chunk hits arrive in chunk order, so skip=1
  // count=1 fails exactly chunk 1; all chunks still run.
  FaultPlan plan;
  plan.skip = 1;
  plan.count = 1;
  ScopedFault fault(kFaultPointExecTask, plan);
  std::vector<int> ran(4, 0);
  const Status status = TryParallelFor(
      nullptr, 4, 4, [&](size_t begin, size_t /*end*/, size_t) -> Status {
        ran[begin] = 1;
        return Status::Ok();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find(kFaultPointExecTask), std::string::npos);
  EXPECT_EQ(FaultInjector::HitCount(kFaultPointExecTask), 4u);
  // The faulted chunk was skipped; every other chunk ran to completion.
  EXPECT_EQ(ran, (std::vector<int>{1, 0, 1, 1}));
}

TEST_F(FaultInjectionTest, TaskFaultFailsTryParallelForOnPoolWithoutHanging) {
  ThreadPool pool(3);
  ScopedFault fault(kFaultPointExecTask);
  std::vector<int> ran(8, 0);
  const Status status = TryParallelFor(
      &pool, 8, 8, [&](size_t begin, size_t, size_t) -> Status {
        ran[begin] = 1;
        return Status::Ok();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(FaultInjector::HitCount(kFaultPointExecTask), 8u);
  EXPECT_EQ(FaultInjector::FiredCount(kFaultPointExecTask), 8u);
  FaultInjector::Disarm(kFaultPointExecTask);
  // The pool survives the injected failures and keeps running work.
  std::vector<int> after(8, 0);
  const Status ok_status = TryParallelFor(
      &pool, 8, 8, [&](size_t begin, size_t, size_t) -> Status {
        after[begin] = 1;
        return Status::Ok();
      });
  EXPECT_TRUE(ok_status.ok());
  EXPECT_EQ(after, std::vector<int>(8, 1));
}

TEST_F(FaultInjectionTest, TryParallelForReportsLowestFailingChunk) {
  // Without faults: chunk bodies returning errors resolve to the
  // lowest-indexed failure, deterministically, on the pool too.
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    const Status status = TryParallelFor(
        &pool, 6, 6, [](size_t, size_t, size_t chunk) -> Status {
          if (chunk >= 2) {
            return InvalidArgumentError("chunk " + std::to_string(chunk));
          }
          return Status::Ok();
        });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "chunk 2");
  }
}

TEST_F(FaultInjectionTest, TryParallelForTurnsExceptionsIntoStatus) {
  ThreadPool pool(2);
  const Status status = TryParallelFor(
      &pool, 4, 4, [](size_t, size_t, size_t chunk) -> Status {
        if (chunk == 1) throw std::runtime_error("boom");
        return Status::Ok();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

}  // namespace
}  // namespace selest
