#include <cmath>
#include "src/data/spatial.h"

#include <gtest/gtest.h>

#include "src/util/random.h"
#include "src/util/stats.h"

namespace selest {
namespace {

TEST(StreetNetworkTest, ProducesAtLeastRequestedPoints) {
  Rng rng(1);
  const auto points = GenerateStreetNetwork(StreetNetworkConfig{}, 1000, rng);
  EXPECT_GE(points.size(), 1000u);
}

TEST(StreetNetworkTest, PointsInUnitSquare) {
  Rng rng(2);
  const auto points = GenerateStreetNetwork(StreetNetworkConfig{}, 5000, rng);
  for (const Point2& p : points) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(StreetNetworkTest, IsClusteredNotUniform) {
  Rng rng(3);
  const auto points = GenerateStreetNetwork(StreetNetworkConfig{}, 20000, rng);
  // Bucket the x coordinates; clustering makes some buckets far denser than
  // the uniform expectation.
  constexpr int kBuckets = 20;
  std::vector<int> counts(kBuckets, 0);
  for (const Point2& p : points) {
    ++counts[std::min(kBuckets - 1, static_cast<int>(p.x * kBuckets))];
  }
  int max_count = 0;
  for (int c : counts) max_count = std::max(max_count, c);
  const double uniform_share = static_cast<double>(points.size()) / kBuckets;
  EXPECT_GT(max_count, 2.0 * uniform_share);
}

TEST(StreetNetworkTest, DeterministicForFixedSeed) {
  Rng rng1(42);
  Rng rng2(42);
  const auto a = GenerateStreetNetwork(StreetNetworkConfig{}, 100, rng1);
  const auto b = GenerateStreetNetwork(StreetNetworkConfig{}, 100, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
}

TEST(PolylineTest, ProducesAtLeastRequestedPoints) {
  Rng rng(4);
  const auto points = GeneratePolylines(PolylineConfig{}, 1000, rng);
  EXPECT_GE(points.size(), 1000u);
}

TEST(PolylineTest, PointsInUnitSquare) {
  Rng rng(5);
  const auto points = GeneratePolylines(PolylineConfig{}, 5000, rng);
  for (const Point2& p : points) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(PolylineTest, ConsecutiveVerticesAreClose) {
  Rng rng(6);
  PolylineConfig config;
  config.num_polylines = 1;
  const auto points = GeneratePolylines(config, 500, rng);
  for (size_t i = 1; i < points.size(); ++i) {
    const double dx = points[i].x - points[i - 1].x;
    const double dy = points[i].y - points[i - 1].y;
    // One step of the walk, up to boundary reflection.
    EXPECT_LE(std::sqrt(dx * dx + dy * dy), 2.5 * config.step_length);
  }
}

TEST(MarginalDatasetTest, ProjectsRequestedAxisAndCount) {
  Rng rng(7);
  const auto points = GenerateStreetNetwork(StreetNetworkConfig{}, 2000, rng);
  const Dataset dx = MarginalDataset("mx", points, Axis::kX, 12, 1500);
  const Dataset dy = MarginalDataset("my", points, Axis::kY, 12, 1500);
  EXPECT_EQ(dx.size(), 1500u);
  EXPECT_EQ(dy.size(), 1500u);
  EXPECT_EQ(dx.domain().bits, 12);
  // Different axes give different marginals.
  EXPECT_NE(dx.values(), dy.values());
}

TEST(MarginalDatasetTest, ValuesAreIntegersInBitDomain) {
  Rng rng(8);
  const auto points = GeneratePolylines(PolylineConfig{}, 1000, rng);
  const Dataset d = MarginalDataset("m", points, Axis::kX, 10, 1000);
  for (double v : d.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1023.0);
    EXPECT_DOUBLE_EQ(v, std::round(v));
  }
}

TEST(MarginalDatasetTest, SmallDomainCreatesDuplicates) {
  Rng rng(9);
  const auto points = GeneratePolylines(PolylineConfig{}, 50000, rng);
  const Dataset small = MarginalDataset("s", points, Axis::kX, 8, 50000);
  const Dataset large = MarginalDataset("l", points, Axis::kX, 22, 50000);
  // p = 8 has only 256 possible values; p = 22 has ~4M.
  EXPECT_LE(small.CountDistinct(), 256u);
  EXPECT_GT(large.CountDistinct(), 10u * small.CountDistinct());
}

}  // namespace
}  // namespace selest
