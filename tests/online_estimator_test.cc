#include "src/online/online_estimator.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

TEST(OnlineEstimatorTest, TrivialIntervalBeforeTwoSamples) {
  OnlineSelectivityEstimator est(kDomain);
  const RangeQuery q{10.0, 20.0};
  const IntervalEstimate empty = est.Estimate(q);
  EXPECT_EQ(empty.samples, 0u);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
  est.AddSample(15.0);
  EXPECT_DOUBLE_EQ(est.Estimate(q).hi, 1.0);
}

TEST(OnlineEstimatorTest, SamplingEstimateMatchesFraction) {
  OnlineSelectivityEstimator est(kDomain);
  for (double v : {5.0, 15.0, 16.0, 80.0}) est.AddSample(v);
  const IntervalEstimate e = est.SamplingEstimate({10.0, 20.0});
  EXPECT_DOUBLE_EQ(e.estimate, 0.5);
  EXPECT_EQ(e.samples, 4u);
  EXPECT_GT(e.lo, 0.0 - 1e-12);
  EXPECT_LT(e.lo, 0.5);
  EXPECT_GT(e.hi, 0.5);
}

TEST(OnlineEstimatorTest, EstimateConvergesToTruth) {
  Rng rng(1);
  OnlineSelectivityEstimator est(kDomain);
  const RangeQuery q{20.0, 40.0};  // truth = 0.2 under uniform data
  for (int i = 0; i < 20000; ++i) est.AddSample(100.0 * rng.NextDouble());
  const IntervalEstimate kernel = est.Estimate(q);
  const IntervalEstimate sampling = est.SamplingEstimate(q);
  EXPECT_NEAR(kernel.estimate, 0.2, 0.02);
  EXPECT_NEAR(sampling.estimate, 0.2, 0.02);
}

TEST(OnlineEstimatorTest, IntervalsShrinkWithMoreSamples) {
  Rng rng(2);
  OnlineSelectivityEstimator est(kDomain);
  const RangeQuery q{30.0, 50.0};
  for (int i = 0; i < 100; ++i) est.AddSample(100.0 * rng.NextDouble());
  const double early_width = est.Estimate(q).hi - est.Estimate(q).lo;
  for (int i = 0; i < 9900; ++i) est.AddSample(100.0 * rng.NextDouble());
  const double late_width = est.Estimate(q).hi - est.Estimate(q).lo;
  EXPECT_LT(late_width, 0.25 * early_width);  // ~1/10 expected
}

TEST(OnlineEstimatorTest, HigherConfidenceWidensInterval) {
  Rng rng(3);
  OnlineSelectivityEstimator est(kDomain);
  for (int i = 0; i < 1000; ++i) est.AddSample(100.0 * rng.NextDouble());
  const RangeQuery q{10.0, 30.0};
  const IntervalEstimate at90 = est.Estimate(q, 0.90);
  const IntervalEstimate at99 = est.Estimate(q, 0.99);
  EXPECT_GT(at99.hi - at99.lo, at90.hi - at90.lo);
}

TEST(OnlineEstimatorTest, ConfidenceIntervalCovers) {
  // Repeated independent runs: the 95% interval should contain the true
  // selectivity in roughly 95% of runs (allow down to 85% — the kernel
  // estimate carries a small smoothing bias).
  const RangeQuery q{25.0, 45.0};  // truth 0.2
  int covered = 0;
  const int runs = 200;
  for (int run = 0; run < runs; ++run) {
    Rng rng(1000 + run);
    OnlineSelectivityEstimator est(kDomain);
    for (int i = 0; i < 500; ++i) est.AddSample(100.0 * rng.NextDouble());
    const IntervalEstimate e = est.Estimate(q, 0.95);
    if (e.lo <= 0.2 && 0.2 <= e.hi) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(0.85 * runs));
}

TEST(OnlineEstimatorTest, KernelIntervalTighterThanSampling) {
  // The kernel contributions have sub-Bernoulli variance when query edges
  // cut populated regions — the convergence advantage cited in §1.
  Rng rng(4);
  OnlineSelectivityEstimator est(kDomain);
  for (int i = 0; i < 5000; ++i) est.AddSample(100.0 * rng.NextDouble());
  const RangeQuery q{20.0, 40.0};
  const IntervalEstimate kernel = est.Estimate(q);
  const IntervalEstimate sampling = est.SamplingEstimate(q);
  EXPECT_LE(kernel.hi - kernel.lo, sampling.hi - sampling.lo);
}

TEST(OnlineEstimatorTest, InterleavedAddAndEstimate) {
  // Lazy sorting must stay correct when queries interleave with inserts.
  Rng rng(5);
  OnlineSelectivityEstimator est(kDomain);
  const RangeQuery q{0.0, 50.0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 100; ++i) est.AddSample(100.0 * rng.NextDouble());
    const IntervalEstimate e = est.SamplingEstimate(q);
    EXPECT_EQ(e.samples, static_cast<size_t>((round + 1) * 100));
    EXPECT_NEAR(e.estimate, 0.5, 0.2);
  }
}

TEST(OnlineEstimatorTest, BandwidthShrinksAsSamplesArrive) {
  Rng rng(6);
  OnlineSelectivityEstimator est(kDomain);
  for (int i = 0; i < 100; ++i) est.AddSample(100.0 * rng.NextDouble());
  const double early = est.CurrentBandwidth();
  for (int i = 0; i < 30000; ++i) est.AddSample(100.0 * rng.NextDouble());
  EXPECT_LT(est.CurrentBandwidth(), early);
}

TEST(OnlineEstimatorTest, EstimateClampedToDomainAndUnit) {
  OnlineSelectivityEstimator est(kDomain);
  est.AddSample(50.0);
  est.AddSample(51.0);
  const IntervalEstimate whole = est.Estimate({-100.0, 300.0});
  EXPECT_GE(whole.estimate, 0.0);
  EXPECT_LE(whole.estimate, 1.0);
  const IntervalEstimate inverted = est.Estimate({60.0, 40.0});
  EXPECT_DOUBLE_EQ(inverted.estimate, 0.0);
}

TEST(OnlineEstimatorTest, AddSamplesMatchesAddSampleLoop) {
  Rng rng(11);
  std::vector<double> stream(500);
  for (double& x : stream) x = 100.0 * rng.NextDouble();
  OnlineSelectivityEstimator batched(kDomain);
  OnlineSelectivityEstimator looped(kDomain);
  batched.AddSamples(stream);
  for (double x : stream) looped.AddSample(x);
  const RangeQuery q{20.0, 70.0};
  EXPECT_EQ(batched.Estimate(q).estimate, looped.Estimate(q).estimate);
  EXPECT_EQ(batched.Estimate(q).lo, looped.Estimate(q).lo);
  EXPECT_EQ(batched.samples_seen(), looped.samples_seen());
}

TEST(OnlineEstimatorTest, FreezeNeedsTwoSamples) {
  OnlineSelectivityEstimator est(kDomain);
  EXPECT_EQ(est.Freeze().status().code(), StatusCode::kFailedPrecondition);
  est.AddSample(10.0);
  EXPECT_EQ(est.Freeze().status().code(), StatusCode::kFailedPrecondition);
  est.AddSample(20.0);
  EXPECT_TRUE(est.Freeze().ok());
}

TEST(OnlineEstimatorTest, FrozenSnapshotMatchesProgressiveEstimate) {
  Rng rng(12);
  OnlineSelectivityEstimator est(kDomain);
  for (int i = 0; i < 400; ++i) est.AddSample(100.0 * rng.NextDouble());
  auto frozen = est.Freeze();
  ASSERT_TRUE(frozen.ok());
  for (double a = 0.0; a < 90.0; a += 7.0) {
    const RangeQuery q{a, a + 12.0};
    // The frozen instance answers through the common interface with
    // exactly the progressive estimate as of the freeze point.
    EXPECT_EQ(frozen.value()->EstimateSelectivity(q.a, q.b),
              est.Estimate(q).estimate);
  }
  EXPECT_EQ(frozen.value()->name(), "online(400)");
  EXPECT_EQ(frozen.value()->StorageBytes(), 400u * sizeof(double));
}

TEST(OnlineEstimatorTest, FrozenSnapshotIsImmutableUnderLaterIngest) {
  Rng rng(13);
  OnlineSelectivityEstimator est(kDomain);
  for (int i = 0; i < 100; ++i) est.AddSample(100.0 * rng.NextDouble());
  auto frozen = est.Freeze();
  ASSERT_TRUE(frozen.ok());
  const RangeQuery q{30.0, 60.0};
  const double before = frozen.value()->EstimateSelectivity(q.a, q.b);
  for (int i = 0; i < 1000; ++i) est.AddSample(100.0 * rng.NextDouble());
  EXPECT_EQ(frozen.value()->EstimateSelectivity(q.a, q.b), before);
  EXPECT_NE(est.samples_seen(), 100u);
}

}  // namespace
}  // namespace selest
