#include "src/smoothing/direct_plug_in.h"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "src/smoothing/normal_scale.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

std::vector<double> GaussianSample(size_t n, double mean, double sigma,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample(n);
  for (double& x : sample) x = mean + sigma * rng.NextGaussian();
  return sample;
}

TEST(NormalScalePsiTest, KnownGaussianFunctionals) {
  // For N(0, σ²): ψ2 = −1/(4√π σ³), ψ4 = 3/(8√π σ⁵),
  // ψ6 = −15/(16√π σ⁷), ψ8 = 105/(32√π σ⁹).
  const double sigma = 2.0;
  const double sqrt_pi = std::sqrt(std::numbers::pi);
  EXPECT_NEAR(NormalScalePsi(2, sigma), -1.0 / (4.0 * sqrt_pi * 8.0), 1e-12);
  EXPECT_NEAR(NormalScalePsi(4, sigma), 3.0 / (8.0 * sqrt_pi * 32.0), 1e-12);
  EXPECT_NEAR(NormalScalePsi(6, sigma), -15.0 / (16.0 * sqrt_pi * 128.0),
              1e-12);
  EXPECT_NEAR(NormalScalePsi(8, sigma), 105.0 / (32.0 * sqrt_pi * 512.0),
              1e-12);
}

TEST(NormalScalePsiTest, SignsAlternate) {
  for (double sigma : {0.5, 1.0, 3.0}) {
    EXPECT_LT(NormalScalePsi(2, sigma), 0.0);
    EXPECT_GT(NormalScalePsi(4, sigma), 0.0);
    EXPECT_LT(NormalScalePsi(6, sigma), 0.0);
    EXPECT_GT(NormalScalePsi(8, sigma), 0.0);
  }
}

TEST(EstimatePsiFunctionalTest, RecoversGaussianPsi4) {
  // On Gaussian data the estimated ψ4 = R(f'') should approach the analytic
  // value 3/(8√π σ⁵).
  const double sigma = 5.0;
  const auto sample = GaussianSample(2000, 50.0, sigma, 1);
  const double truth = NormalScalePsi(4, sigma);
  // Use the AMSE-optimal pilot bandwidth for ψ4 given exact ψ6.
  const double psi6 = NormalScalePsi(6, sigma);
  const double phi4_at_0 = 3.0 / std::sqrt(2.0 * std::numbers::pi);
  const double g =
      std::pow(-2.0 * phi4_at_0 / (psi6 * 2000.0), 1.0 / 7.0);
  const double estimate = EstimatePsiFunctional(sample, 4, g);
  EXPECT_NEAR(estimate, truth, 0.25 * std::fabs(truth));
}

TEST(EstimatePsiFunctionalTest, RecoversGaussianPsi2) {
  const double sigma = 5.0;
  const auto sample = GaussianSample(2000, 50.0, sigma, 2);
  const double truth = NormalScalePsi(2, sigma);
  const double psi4 = NormalScalePsi(4, sigma);
  const double phi2_at_0 = -1.0 / std::sqrt(2.0 * std::numbers::pi);
  const double g = std::pow(-2.0 * phi2_at_0 / (psi4 * 2000.0), 0.2);
  const double estimate = EstimatePsiFunctional(sample, 2, g);
  EXPECT_NEAR(estimate, truth, 0.25 * std::fabs(truth));
}

TEST(DirectPlugInBandwidthTest, CloseToNormalScaleOnGaussianData) {
  // The DPI rule generalizes the normal scale rule; on actually-Gaussian
  // data the two should agree within sampling noise.
  const auto sample = GaussianSample(2000, 50.0, 5.0, 3);
  const double ns = NormalScaleBandwidth(sample, kDomain);
  const double dpi = DirectPlugInBandwidth(sample, kDomain, Kernel(), 2);
  EXPECT_GT(dpi, 0.0);
  EXPECT_NEAR(dpi, ns, 0.35 * ns);
}

TEST(DirectPlugInBandwidthTest, AdaptsToBimodalData) {
  // Two well-separated Gaussian modes: R(f'') is much larger than a single
  // Gaussian with the same overall stddev, so DPI picks a smaller h than NS.
  Rng rng(4);
  std::vector<double> sample(2000);
  for (double& x : sample) {
    const double center = rng.NextDouble() < 0.5 ? 25.0 : 75.0;
    x = center + 3.0 * rng.NextGaussian();
  }
  const double ns = NormalScaleBandwidth(sample, kDomain);
  const double dpi = DirectPlugInBandwidth(sample, kDomain, Kernel(), 2);
  EXPECT_LT(dpi, 0.6 * ns);
}

TEST(DirectPlugInBandwidthTest, StagesOneThroughThreeAllWork) {
  const auto sample = GaussianSample(1000, 50.0, 5.0, 5);
  for (int stages = 1; stages <= 3; ++stages) {
    const double h = DirectPlugInBandwidth(sample, kDomain, Kernel(), stages);
    EXPECT_GT(h, 0.0) << "stages=" << stages;
    EXPECT_LT(h, kDomain.width()) << "stages=" << stages;
  }
}

TEST(DirectPlugInBandwidthTest, FallsBackOnDegenerateData) {
  const std::vector<double> sample(50, 7.0);
  EXPECT_DOUBLE_EQ(DirectPlugInBandwidth(sample, kDomain),
                   NormalScaleBandwidth(sample, kDomain));
}

TEST(DirectPlugInBinWidthTest, CloseToNormalScaleOnGaussianData) {
  const auto sample = GaussianSample(2000, 50.0, 5.0, 6);
  const double ns = NormalScaleBinWidth(sample, kDomain);
  const double dpi = DirectPlugInBinWidth(sample, kDomain, 2);
  EXPECT_GT(dpi, 0.0);
  EXPECT_NEAR(dpi, ns, 0.35 * ns);
}

TEST(DirectPlugInBinWidthTest, AdaptsToBimodalData) {
  Rng rng(7);
  std::vector<double> sample(2000);
  for (double& x : sample) {
    const double center = rng.NextDouble() < 0.5 ? 25.0 : 75.0;
    x = center + 3.0 * rng.NextGaussian();
  }
  // Bimodal: R(f') larger than the NS Gaussian guess → narrower bins.
  EXPECT_LT(DirectPlugInBinWidth(sample, kDomain, 2),
            NormalScaleBinWidth(sample, kDomain));
}

TEST(DirectPlugInNumBinsTest, AtLeastOneBin) {
  const std::vector<double> sample(10, 5.0);
  EXPECT_GE(DirectPlugInNumBins(sample, kDomain), 1);
}

TEST(DirectPlugInNumBinsTest, MoreBinsForMoreSamples) {
  const auto small = GaussianSample(200, 50.0, 10.0, 8);
  const auto large = GaussianSample(5000, 50.0, 10.0, 8);
  EXPECT_GT(DirectPlugInNumBins(large, kDomain),
            DirectPlugInNumBins(small, kDomain));
}

}  // namespace
}  // namespace selest
