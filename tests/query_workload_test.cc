#include "src/query/workload.h"

#include <limits>

#include <gtest/gtest.h>

#include "src/data/distribution.h"
#include "src/query/ground_truth.h"
#include "src/util/random.h"

namespace selest {
namespace {

Dataset MakeUniformData(size_t n, uint64_t seed) {
  Rng rng(seed);
  const Domain domain = BitDomain(16);
  const UniformDistribution dist(domain.lo, domain.hi);
  return GenerateDataset("u", dist, n, domain, rng);
}

TEST(WorkloadTest, ProducesRequestedQueryCount) {
  const Dataset data = MakeUniformData(10000, 1);
  Rng rng(2);
  WorkloadConfig config;
  config.num_queries = 250;
  const auto queries = GenerateWorkload(data, config, rng);
  EXPECT_EQ(queries.size(), 250u);
}

TEST(WorkloadTest, QueriesHaveExactWidth) {
  const Dataset data = MakeUniformData(10000, 3);
  Rng rng(4);
  WorkloadConfig config;
  config.query_fraction = 0.05;
  config.num_queries = 100;
  const double expected = 0.05 * data.domain().width();
  for (const RangeQuery& q : GenerateWorkload(data, config, rng)) {
    EXPECT_NEAR(q.width(), expected, 1e-9);
  }
}

TEST(WorkloadTest, QueriesStayInsideDomain) {
  const Dataset data = MakeUniformData(10000, 5);
  Rng rng(6);
  WorkloadConfig config;
  config.query_fraction = 0.10;
  config.num_queries = 500;
  for (const RangeQuery& q : GenerateWorkload(data, config, rng)) {
    EXPECT_GE(q.a, data.domain().lo);
    EXPECT_LE(q.b, data.domain().hi);
  }
}

TEST(WorkloadTest, RejectsEmptyResultQueries) {
  const Dataset data = MakeUniformData(5000, 7);
  Rng rng(8);
  WorkloadConfig config;
  config.num_queries = 200;
  config.reject_empty = true;
  const GroundTruth truth(data);
  for (const RangeQuery& q : GenerateWorkload(data, config, rng)) {
    EXPECT_GT(truth.Count(q), 0u);
  }
}

TEST(WorkloadTest, PositionsFollowDataDistribution) {
  // Skewed data: most queries should land in the dense region.
  Rng data_rng(9);
  const Domain domain = BitDomain(16);
  const ExponentialDistribution dist(8.0 / domain.width());
  const Dataset data = GenerateDataset("e", dist, 20000, domain, data_rng);
  Rng rng(10);
  WorkloadConfig config;
  config.num_queries = 500;
  size_t in_lower_quarter = 0;
  for (const RangeQuery& q : GenerateWorkload(data, config, rng)) {
    if (q.center() < domain.lo + 0.25 * domain.width()) ++in_lower_quarter;
  }
  // An exponential with mean width/8 puts ~86% of its mass there.
  EXPECT_GT(in_lower_quarter, 350u);
}

TEST(WorkloadTest, DeterministicForFixedSeed) {
  const Dataset data = MakeUniformData(5000, 11);
  WorkloadConfig config;
  config.num_queries = 50;
  Rng rng1(12);
  Rng rng2(12);
  const auto a = GenerateWorkload(data, config, rng1);
  const auto b = GenerateWorkload(data, config, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].a, b[i].a);
    EXPECT_DOUBLE_EQ(a[i].b, b[i].b);
  }
}

TEST(PositionSweepTest, CoversDomainLeftToRight) {
  const Dataset data = MakeUniformData(5000, 13);
  const auto queries = GeneratePositionSweep(data, 0.01, 101);
  ASSERT_EQ(queries.size(), 101u);
  // First query touches the left boundary, last touches the right.
  EXPECT_DOUBLE_EQ(queries.front().a, data.domain().lo);
  EXPECT_DOUBLE_EQ(queries.back().b, data.domain().hi);
  // Centers are non-decreasing.
  for (size_t i = 1; i < queries.size(); ++i) {
    EXPECT_GE(queries[i].center(), queries[i - 1].center());
  }
}

TEST(PositionSweepTest, AllQueriesInsideDomainWithFixedWidth) {
  const Dataset data = MakeUniformData(5000, 14);
  for (const RangeQuery& q : GeneratePositionSweep(data, 0.02, 60)) {
    EXPECT_GE(q.a, data.domain().lo);
    EXPECT_LE(q.b, data.domain().hi);
    EXPECT_NEAR(q.width(), 0.02 * data.domain().width(), 1e-9);
  }
}

TEST(GroundTruthTest, SelectivityMatchesCounts) {
  const Dataset data = MakeUniformData(1000, 15);
  const GroundTruth truth(data);
  const RangeQuery q{data.domain().lo, data.domain().hi};
  EXPECT_EQ(truth.Count(q), 1000u);
  EXPECT_DOUBLE_EQ(truth.Selectivity(q), 1.0);
}

TEST(TryWorkloadTest, RejectsInvalidConfig) {
  const Dataset data = MakeUniformData(1000, 21);
  Rng rng(22);
  WorkloadConfig config;
  config.query_fraction = 0.0;
  EXPECT_EQ(TryGenerateWorkload(data, config, rng).status().code(),
            StatusCode::kInvalidArgument);
  config.query_fraction = 1.5;
  EXPECT_FALSE(TryGenerateWorkload(data, config, rng).ok());
  config.query_fraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(TryGenerateWorkload(data, config, rng).ok());
  config.query_fraction = 0.01;
  config.num_queries = 0;
  EXPECT_FALSE(TryGenerateWorkload(data, config, rng).ok());
}

TEST(TryWorkloadTest, ExhaustionIsResourceExhaustedNotAbort) {
  // Every record sits on the lower domain boundary, so every candidate
  // query of this width overlaps the boundary and is rejected — the
  // rejection-sampling loop can never finish.
  const Domain domain = BitDomain(8);
  const Dataset data("piled", domain, std::vector<double>(10, 0.0));
  Rng rng(23);
  WorkloadConfig config;
  config.query_fraction = 0.5;
  config.num_queries = 2;
  const auto queries = TryGenerateWorkload(data, config, rng);
  ASSERT_FALSE(queries.ok());
  EXPECT_EQ(queries.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace selest
