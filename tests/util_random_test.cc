#include "src/util/random.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace selest {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(RngTest, NextUint64BoundOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextUint64(1), 0u);
  }
}

TEST(RngTest, NextUint64IsRoughlyUniform) {
  Rng rng(17);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextUint64(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 0.05 * kDraws / kBuckets);
  }
}

TEST(RngTest, NextInt64CoversInclusiveRange) {
  Rng rng(23);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt64(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(31);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(37);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ExponentialIsNonNegative) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextExponential(1.0), 0.0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.Fork();
  // The child stream must not just mirror the parent.
  int matches = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent() == child()) ++matches;
  }
  EXPECT_LT(matches, 4);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~uint64_t{0});
  Rng rng(1);
  std::vector<int> values{1, 2, 3, 4, 5};
  // Compiles and runs with std::shuffle.
  std::shuffle(values.begin(), values.end(), rng);
  EXPECT_EQ(values.size(), 5u);
}

}  // namespace
}  // namespace selest
