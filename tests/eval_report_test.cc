#include "src/eval/report.h"

#include <gtest/gtest.h>

namespace selest {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable table({"file", "MRE"});
  table.AddRow({"n(20)", "7.0%"});
  table.AddRow({"u(20)", "3.5%"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("file"), std::string::npos);
  EXPECT_NE(out.find("n(20)"), std::string::npos);
  EXPECT_NE(out.find("3.5%"), std::string::npos);
}

TEST(TextTableTest, ColumnsAreAligned) {
  TextTable table({"a", "b"});
  table.AddRow({"longvalue", "x"});
  table.AddRow({"s", "y"});
  const std::string out = table.Render();
  // Column b starts at the same offset in both data rows.
  size_t line_start = out.find("longvalue");
  ASSERT_NE(line_start, std::string::npos);
  const size_t x_col = out.find('x', line_start) - line_start;
  const size_t s_line = out.find("\ns", line_start) + 1;
  const size_t y_col = out.find('y', s_line) - s_line;
  EXPECT_EQ(x_col, y_col);
}

TEST(TextTableTest, HasRuleUnderHeader) {
  TextTable table({"head"});
  table.AddRow({"v"});
  EXPECT_NE(table.Render().find("----"), std::string::npos);
}

TEST(TextTableDeathTest, RowArityMustMatchHeader) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "SELEST_CHECK");
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.175), "17.5%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
  EXPECT_EQ(FormatPercent(0.07123, 2), "7.12%");
}

}  // namespace
}  // namespace selest
