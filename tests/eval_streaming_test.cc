// Streaming experiment protocol: exact counts from a chunk stream match
// the materialized ground truth for every chunk size, and the streamed
// setup behaves like the in-memory protocol it replaces.
#include "src/eval/streaming_experiment.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/data/column_source.h"
#include "src/data/dataset.h"
#include "src/data/distribution.h"
#include "src/data/domain.h"
#include "src/query/streaming_ground_truth.h"
#include "src/util/random.h"

namespace selest {
namespace {

Dataset TestData(size_t rows) {
  Rng rng(17);
  return GenerateDataset("normal", NormalDistribution(512.0, 150.0), rows,
                         BitDomain(10), rng);
}

TEST(StreamingGroundTruthTest, MatchesDatasetCountsForEveryChunkSize) {
  const Dataset data = TestData(2000);
  std::vector<RangeQuery> queries;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double a = 1024.0 * rng.NextDouble();
    const double b = a + 200.0 * rng.NextDouble();
    queries.push_back({a, b});
  }
  std::vector<size_t> expected;
  expected.reserve(queries.size());
  for (const RangeQuery& query : queries) {
    expected.push_back(data.CountInRange(query.a, query.b));
  }
  for (const size_t chunk_rows : {1ul, 64ul, 333ul, 4096ul}) {
    InMemoryColumnSource source(data, chunk_rows);
    auto counts = StreamingExactCounts(source, queries);
    ASSERT_TRUE(counts.ok()) << counts.status().ToString();
    EXPECT_EQ(*counts, expected) << "chunk_rows=" << chunk_rows;
  }
}

TEST(StreamingGroundTruthTest, NonFiniteRowIsInvalidArgument) {
  const std::vector<double> rows = {1.0, std::nan(""), 3.0};
  InMemoryColumnSource source("nan", ContinuousDomain(0.0, 4.0), rows, 2);
  const std::vector<RangeQuery> queries = {{0.0, 4.0}};
  EXPECT_EQ(StreamingExactCounts(source, queries).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamingSetupTest, HoldsConsistentSampleQueriesAndCounts) {
  const Dataset data = TestData(5000);
  InMemoryColumnSource source(data, 256);
  ProtocolConfig protocol;
  protocol.sample_size = 400;
  protocol.num_queries = 100;
  protocol.query_fraction = 0.05;
  auto setup = TryMakeStreamingSetup(source, protocol);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  EXPECT_EQ(setup->source_name, data.name());
  EXPECT_EQ(setup->num_records, data.size());
  EXPECT_EQ(setup->sample.size(), protocol.sample_size);
  EXPECT_EQ(setup->queries.size() + setup->dropped_empty,
            protocol.num_queries);
  ASSERT_EQ(setup->queries.size(), setup->exact_counts.size());
  for (size_t i = 0; i < setup->queries.size(); ++i) {
    // Counts are exact (checked against the materialized column) and
    // non-zero (zero-count queries were dropped).
    EXPECT_EQ(setup->exact_counts[i],
              data.CountInRange(setup->queries[i].a, setup->queries[i].b));
    EXPECT_GT(setup->exact_counts[i], 0u);
  }
  for (double v : setup->sample) {
    EXPECT_TRUE(data.domain().Contains(v));
  }
}

TEST(StreamingSetupTest, ChunkSizeDoesNotChangeTheSetup) {
  const Dataset data = TestData(3000);
  ProtocolConfig protocol;
  protocol.sample_size = 300;
  protocol.num_queries = 60;
  InMemoryColumnSource reference_source(data, 4096);
  auto reference = TryMakeStreamingSetup(reference_source, protocol);
  ASSERT_TRUE(reference.ok());
  for (const size_t chunk_rows : {1ul, 64ul, 333ul}) {
    InMemoryColumnSource source(data, chunk_rows);
    auto setup = TryMakeStreamingSetup(source, protocol);
    ASSERT_TRUE(setup.ok());
    EXPECT_EQ(setup->sample, reference->sample);
    EXPECT_EQ(setup->exact_counts, reference->exact_counts);
    ASSERT_EQ(setup->queries.size(), reference->queries.size());
    for (size_t i = 0; i < setup->queries.size(); ++i) {
      EXPECT_EQ(setup->queries[i].a, reference->queries[i].a);
      EXPECT_EQ(setup->queries[i].b, reference->queries[i].b);
    }
  }
}

TEST(StreamingSetupTest, RowOutsideDomainIsInvalidArgument) {
  const std::vector<double> rows = {1.0, 2.0, 99.0};
  InMemoryColumnSource source("bad", ContinuousDomain(0.0, 4.0), rows, 2);
  ProtocolConfig protocol;
  protocol.sample_size = 3;
  protocol.num_queries = 10;
  EXPECT_EQ(TryMakeStreamingSetup(source, protocol).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamingSetupTest, RunConfigStreamingScoresEstimators) {
  const Dataset data = TestData(4000);
  InMemoryColumnSource source(data, 512);
  ProtocolConfig protocol;
  protocol.sample_size = 500;
  protocol.num_queries = 80;
  protocol.query_fraction = 0.05;
  auto setup = TryMakeStreamingSetup(source, protocol);
  ASSERT_TRUE(setup.ok());
  StreamingBuildOptions options;
  options.sample_size = protocol.sample_size;
  options.seed = protocol.seed;
  for (const EstimatorKind kind :
       {EstimatorKind::kEquiWidth, EstimatorKind::kSampling,
        EstimatorKind::kUniform}) {
    EstimatorConfig config;
    config.kind = kind;
    auto report = RunConfigStreaming(source, *setup, config, options);
    ASSERT_TRUE(report.ok())
        << EstimatorKindName(kind) << ": " << report.status().ToString();
    EXPECT_EQ(report->evaluated, setup->queries.size());
    EXPECT_TRUE(std::isfinite(report->mean_relative_error));
    EXPECT_GE(report->mean_relative_error, 0.0);
  }
}

TEST(StreamingSetupTest, EvaluationIsDeterministicPerEstimator) {
  const Dataset data = TestData(2000);
  InMemoryColumnSource source(data, 128);
  ProtocolConfig protocol;
  protocol.sample_size = 200;
  protocol.num_queries = 40;
  auto setup = TryMakeStreamingSetup(source, protocol);
  ASSERT_TRUE(setup.ok());
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  auto first = RunConfigStreaming(source, *setup, config, {});
  auto second = RunConfigStreaming(source, *setup, config, {});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->mean_relative_error, second->mean_relative_error);
}

}  // namespace
}  // namespace selest
