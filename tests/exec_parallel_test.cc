// Determinism and robustness of the exec layer and the parallel runner:
// reports must be bit-identical at every thread count, and the pool must
// survive task exceptions and degenerate chunkings.
#include "src/eval/parallel_experiment.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/data/distribution.h"
#include "src/exec/parallel_for.h"
#include "src/exec/thread_pool.h"
#include "src/util/random.h"

namespace selest {
namespace {

Dataset MakeData(uint64_t seed) {
  Rng rng(seed);
  const Domain domain = BitDomain(16);
  const NormalDistribution dist(0.5 * domain.hi, domain.width() / 8.0);
  return GenerateDataset("n", dist, 20000, domain, rng);
}

// Every field, compared exactly: the determinism contract is bit-identity,
// not tolerance-identity.
void ExpectBitIdentical(const ErrorReport& a, const ErrorReport& b) {
  EXPECT_EQ(a.mean_relative_error, b.mean_relative_error);
  EXPECT_EQ(a.mean_absolute_error, b.mean_absolute_error);
  EXPECT_EQ(a.max_relative_error, b.max_relative_error);
  EXPECT_EQ(a.p50_relative_error, b.p50_relative_error);
  EXPECT_EQ(a.p90_relative_error, b.p90_relative_error);
  EXPECT_EQ(a.p99_relative_error, b.p99_relative_error);
  EXPECT_EQ(a.skipped_empty, b.skipped_empty);
  EXPECT_EQ(a.evaluated, b.evaluated);
}

std::vector<EstimatorConfig> SweepConfigs() {
  std::vector<EstimatorConfig> configs;
  EstimatorConfig ewh;
  ewh.kind = EstimatorKind::kEquiWidth;
  configs.push_back(ewh);
  EstimatorConfig kernel;
  kernel.kind = EstimatorKind::kKernel;
  kernel.boundary = BoundaryPolicy::kBoundaryKernel;
  configs.push_back(kernel);
  EstimatorConfig hybrid;
  hybrid.kind = EstimatorKind::kHybrid;
  hybrid.boundary = BoundaryPolicy::kBoundaryKernel;
  configs.push_back(hybrid);
  EstimatorConfig ash;
  ash.kind = EstimatorKind::kAverageShifted;
  configs.push_back(ash);
  return configs;
}

TEST(ExecParallelTest, ReportsBitIdenticalAcrossThreadCounts) {
  const Dataset data = MakeData(11);
  ProtocolConfig protocol;
  protocol.sample_size = 1000;
  protocol.num_queries = 400;
  const ExperimentSetup setup = MakeSetup(data, protocol);
  const auto configs = SweepConfigs();

  ParallelExecOptions serial;
  serial.threads = 1;
  const auto baseline = RunConfigsParallel(setup, configs, serial);
  ASSERT_EQ(baseline.size(), configs.size());

  for (size_t threads : {2u, 8u}) {
    ParallelExecOptions options;
    options.threads = threads;
    const auto reports = RunConfigsParallel(setup, configs, options);
    ASSERT_EQ(reports.size(), configs.size());
    for (size_t c = 0; c < configs.size(); ++c) {
      ASSERT_TRUE(baseline[c].ok());
      ASSERT_TRUE(reports[c].ok()) << "threads=" << threads;
      ExpectBitIdentical(*baseline[c], *reports[c]);
    }
  }
}

TEST(ExecParallelTest, RunConfigMatchesSerialRunConfigParallel) {
  const Dataset data = MakeData(12);
  ProtocolConfig protocol;
  protocol.sample_size = 500;
  protocol.num_queries = 200;
  const ExperimentSetup setup = MakeSetup(data, protocol);
  EstimatorConfig config;
  config.kind = EstimatorKind::kKernel;
  config.boundary = BoundaryPolicy::kBoundaryKernel;

  const auto via_default = RunConfig(setup, config);
  ParallelExecOptions serial;
  serial.threads = 1;
  const auto via_serial = RunConfigParallel(setup, config, serial);
  ASSERT_TRUE(via_default.ok());
  ASSERT_TRUE(via_serial.ok());
  ExpectBitIdentical(*via_default, *via_serial);
}

TEST(ExecParallelTest, SweepPropagatesPerConfigBuildFailures) {
  const Dataset data = MakeData(13);
  ProtocolConfig protocol;
  protocol.sample_size = 200;
  protocol.num_queries = 50;
  const ExperimentSetup setup = MakeSetup(data, protocol);

  std::vector<EstimatorConfig> configs;
  EstimatorConfig good;
  good.kind = EstimatorKind::kEquiWidth;
  configs.push_back(good);
  EstimatorConfig bad;  // negative fixed bandwidth cannot build
  bad.kind = EstimatorKind::kKernel;
  bad.smoothing = SmoothingRule::kFixed;
  bad.fixed_smoothing = -1.0;
  configs.push_back(bad);

  ParallelExecOptions options;
  options.threads = 2;
  const auto reports = RunConfigsParallel(setup, configs, options);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_TRUE(reports[0].ok());
  EXPECT_FALSE(reports[1].ok());
}

TEST(SplitRangeTest, HandlesDegenerateChunkCounts) {
  EXPECT_TRUE(SplitRange(0, 4).empty());
  EXPECT_TRUE(SplitRange(0, 0).empty());

  // A chunk count of zero behaves like one chunk.
  const auto one = SplitRange(10, 0);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].first, 0u);
  EXPECT_EQ(one[0].second, 10u);

  // Oversized chunk counts clamp to one element per chunk.
  const auto clamped = SplitRange(10, 1000);
  ASSERT_EQ(clamped.size(), 10u);

  // Chunks tile [0, n) exactly, in order, with sizes differing by <= 1.
  for (size_t n : {1u, 7u, 64u, 1000u}) {
    for (size_t k : {1u, 3u, 8u, 1001u}) {
      const auto chunks = SplitRange(n, k);
      size_t expected_begin = 0;
      size_t min_size = n, max_size = 0;
      for (const auto& [begin, end] : chunks) {
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LT(begin, end);
        min_size = std::min(min_size, end - begin);
        max_size = std::max(max_size, end - begin);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
      EXPECT_LE(max_size - min_size, 1u);
    }
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  ParallelFor(&pool, touched.size(), 16,
              [&](size_t begin, size_t end, size_t /*chunk*/) {
                for (size_t i = begin; i < end; ++i) touched[i]++;
              });
  for (const auto& count : touched) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, EmptyRangeAndOversizedChunksAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 0, 8,
              [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::vector<std::atomic<int>> touched(3);
  ParallelFor(&pool, touched.size(), 500,
              [&](size_t begin, size_t end, size_t /*chunk*/) {
                for (size_t i = begin; i < end; ++i) touched[i]++;
              });
  for (const auto& count : touched) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, RethrowsLowestChunkExceptionAndPoolSurvives) {
  ThreadPool pool(4);
  // Several chunks throw; the rethrown exception must be chunk 2's (the
  // lowest throwing index), deterministically.
  auto throwing_body = [](size_t /*begin*/, size_t /*end*/, size_t chunk) {
    if (chunk >= 2 && chunk % 2 == 0) {
      throw std::runtime_error("chunk " + std::to_string(chunk));
    }
  };
  try {
    ParallelFor(&pool, 100, 10, throwing_body);
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 2");
  }

  // The pool is still fully usable after the failed fan-out.
  std::atomic<size_t> sum{0};
  ParallelFor(&pool, 100, 10,
              [&](size_t begin, size_t end, size_t /*chunk*/) {
                for (size_t i = begin; i < end; ++i) sum += i;
              });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ParallelForTest, NestedFanOutRunsSeriallyWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> touched(64);
  ParallelFor(&pool, 8, 8, [&](size_t begin, size_t end, size_t /*chunk*/) {
    for (size_t outer = begin; outer < end; ++outer) {
      // A nested fan-out from inside a chunk (worker thread or the caller
      // running chunk 0) must degrade to serial, not deadlock.
      ParallelFor(&pool, 8, 8, [&](size_t b, size_t e, size_t /*c*/) {
        for (size_t inner = b; inner < e; ++inner) {
          touched[outer * 8 + inner]++;
        }
      });
    }
  });
  for (const auto& count : touched) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ScheduleSurvivesThrowingTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.Schedule([&ran] {
      ++ran;
      throw std::runtime_error("dropped by contract");
    });
  }
  // A fan-out after the throwing tasks proves the workers are all alive.
  std::atomic<int> chunks_run{0};
  ParallelFor(&pool, 16, 16,
              [&](size_t, size_t, size_t) { ++chunks_run; });
  EXPECT_EQ(chunks_run.load(), 16);
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  EXPECT_GE(ThreadPool::Default().num_threads(), 1u);
}

}  // namespace
}  // namespace selest
