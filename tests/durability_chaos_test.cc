// The deterministic chaos harness: enumerate every crash instant on the
// durable write path (ingest → WAL → refresh → snapshot write-back), kill
// at each one, recover, and verify the crash-recovery contract:
//
//   * no row acknowledged by a successful (WAL-synced) Ingest is lost;
//   * no unacknowledged row appears;
//   * the recovered column estimates exactly as a never-crashed reference
//     server that ingested the acknowledged batches (mergeable kinds are
//     bit-identical by the fold contract; non-mergeable kinds rebuild
//     from the identically seeded replayed reservoir).
//
// "Crash" is in-process: a scripted workload runs with one crash point
// armed to fire on its k-th hit (ArmNthHit); the injected error is the
// moment of death — whatever the fault left on disk is what a real crash
// at that instant would leave. The workload's hit counts are profiled
// with a never-firing schedule first, so k genuinely enumerates every
// instant. Deterministic end to end: same seeds, same schedule, same
// verdicts on every run.
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/catalog/live_server.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/exec/fault_injection.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1000.0);
constexpr size_t kRegistrationRows = 120;
constexpr size_t kBatchRows = 20;
constexpr size_t kNumBatches = 6;

std::string FreshDir(const std::string& name) {
  // Suffixed with the pid: each gtest case runs as its own ctest process,
  // and concurrent cases of the same binary must not share a directory.
  const std::string dir =
      testing::TempDir() + name + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<double> MakeRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(kDomain.lo + rng.NextDouble() * kDomain.width());
  }
  return rows;
}

EstimatorConfig ConfigFor(EstimatorKind kind) {
  EstimatorConfig config;
  config.kind = kind;
  if (kind != EstimatorKind::kSampling) {
    config.smoothing = SmoothingRule::kFixed;
    config.fixed_smoothing = 16;
  }
  return config;
}

LiveServerOptions ChaosOptions(const std::string& wal_dir,
                               const std::string& store_dir) {
  LiveServerOptions options;
  options.background_refresh = false;
  options.wal_directory = wal_dir;
  options.snapshot_directory = store_dir;
  // A crash is not a transient: retrying inside the dying process would
  // blur which instant the schedule killed, so the harness runs on first
  // failure semantics.
  options.retry.max_attempts = 1;
  options.seed = 11;
  return options;
}

const std::vector<RangeQuery>& ProbeQueries() {
  static const std::vector<RangeQuery> queries = {
      {50.0, 250.0}, {200.0, 700.0}, {0.0, 1000.0}, {900.0, 950.0}};
  return queries;
}

// One scripted pass of the durable write path: register, then alternate
// ingests and refreshes. Any call may fail while a crash point is armed;
// the script records which batches were acknowledged and runs to the end
// (state written after the fault is state a real process could also have
// written after surviving an EIO — the recovery contract is about
// acknowledgment, not death timing).
struct WorkloadResult {
  bool registered = false;
  std::vector<size_t> acked_batches;
};

WorkloadResult RunWorkload(LiveStatisticsServer& server,
                           const EstimatorConfig& config) {
  WorkloadResult result;
  result.registered =
      server
          .RegisterColumn("chaos", "x", kDomain, config,
                          MakeRows(kRegistrationRows, 1))
          .ok();
  if (!result.registered) return result;
  for (size_t i = 0; i < kNumBatches; ++i) {
    if (server.Ingest("chaos", "x", MakeRows(kBatchRows, 100 + i)).ok()) {
      result.acked_batches.push_back(i);
    }
    if (i % 2 == 1) (void)server.Refresh("chaos", "x");
  }
  return result;
}

// Profile the workload's hit count per crash point with a schedule that
// never fires (nth = SIZE_MAX), so the enumeration below covers every
// instant the clean execution actually reaches.
std::vector<std::pair<std::string, size_t>> ProfileHitCounts(
    const EstimatorConfig& config) {
  std::vector<FaultScheduleEntry> never;
  for (const char* point : WritePathCrashPoints()) {
    never.push_back({point, static_cast<size_t>(-1)});
  }
  std::vector<std::pair<std::string, size_t>> hits;
  {
    ScopedFaultSchedule schedule(std::move(never));
    LiveStatisticsServer server(ChaosOptions(FreshDir("chaos_profile_wal"),
                                             FreshDir("chaos_profile_store")));
    const WorkloadResult clean = RunWorkload(server, config);
    EXPECT_TRUE(clean.registered);
    EXPECT_EQ(clean.acked_batches.size(), kNumBatches);
    for (const char* point : WritePathCrashPoints()) {
      hits.emplace_back(point, FaultInjector::HitCount(point));
    }
  }
  return hits;
}

class DurabilityChaosTest : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::DisarmAll(); }

  void EnumerateCrashPoints(EstimatorKind kind) {
    const EstimatorConfig config = ConfigFor(kind);
    const auto hit_counts = ProfileHitCounts(config);
    size_t instants = 0;
    for (const auto& [point, hits] : hit_counts) {
      ASSERT_GT(hits, 0u) << point << " never hit: the workload does not "
                          << "exercise the whole write path";
      for (size_t k = 0; k < hits; ++k, ++instants) {
        VerifyCrashAt(config, point, k);
        if (HasFatalFailure()) {
          FAIL() << "crash point " << point << " hit " << k << " for "
                 << EstimatorKindName(kind);
        }
      }
    }
    // The paths enumerated: every append, every fsync, every write-back
    // rename, every refresh entry.
    EXPECT_GT(instants, 10u);
  }

  void VerifyCrashAt(const EstimatorConfig& config, const std::string& point,
                     size_t k) {
    const std::string wal_dir = FreshDir("chaos_run_wal");
    const std::string store_dir = FreshDir("chaos_run_store");
    WorkloadResult result;
    {
      ScopedFaultSchedule schedule({{point, k}});
      LiveStatisticsServer server(ChaosOptions(wal_dir, store_dir));
      result = RunWorkload(server, config);
      ASSERT_EQ(FaultInjector::FiredCount(point), 1u)
          << point << " hit " << k << " never fired";
      // Process death: the server object is abandoned with whatever the
      // schedule left on disk.
    }

    // Restart: a fresh server over the same directories.
    LiveStatisticsServer restarted(ChaosOptions(wal_dir, store_dir));
    const Status recovered =
        restarted.RecoverColumn("chaos", "x", kDomain, config);
    if (!result.registered) {
      // The registration itself was never acknowledged; recovery must
      // report there is nothing durable rather than fabricate a column.
      EXPECT_EQ(recovered.code(), StatusCode::kNotFound);
      return;
    }
    ASSERT_TRUE(recovered.ok()) << recovered.message();

    // No acknowledged row lost, no unacknowledged row present.
    auto generation = restarted.CurrentGeneration("chaos", "x");
    ASSERT_TRUE(generation.ok());
    EXPECT_EQ(generation.value()->rows_at_build,
              kRegistrationRows + result.acked_batches.size() * kBatchRows);

    // The reference: a never-crashed server that ingested exactly the
    // acknowledged batches, refreshed so its generation covers them all.
    LiveStatisticsServer reference(ChaosOptions(FreshDir("chaos_ref_wal"),
                                                FreshDir("chaos_ref_store")));
    ASSERT_TRUE(reference
                    .RegisterColumn("chaos", "x", kDomain, config,
                                    MakeRows(kRegistrationRows, 1))
                    .ok());
    for (const size_t i : result.acked_batches) {
      ASSERT_TRUE(
          reference.Ingest("chaos", "x", MakeRows(kBatchRows, 100 + i)).ok());
    }
    ASSERT_TRUE(reference.Refresh("chaos", "x").ok());
    for (const RangeQuery& query : ProbeQueries()) {
      auto got = restarted.Estimate("chaos", "x", query);
      auto want = reference.Estimate("chaos", "x", query);
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(want.ok());
      // Mergeable kinds recover bit-identically (fold determinism);
      // non-mergeable kinds rebuild from the identically seeded replayed
      // reservoir — also exact.
      EXPECT_DOUBLE_EQ(got.value(), want.value())
          << point << " hit " << k << " query [" << query.a << ", "
          << query.b << "]";
    }

    // The recovered column is live again: it accepts ingest and refresh.
    ASSERT_TRUE(
        restarted.Ingest("chaos", "x", MakeRows(kBatchRows, 999)).ok());
    ASSERT_TRUE(restarted.Refresh("chaos", "x").ok());
  }
};

TEST_F(DurabilityChaosTest, EquiWidthSurvivesEveryCrashInstant) {
  EnumerateCrashPoints(EstimatorKind::kEquiWidth);
}

TEST_F(DurabilityChaosTest, EquiDepthSurvivesEveryCrashInstant) {
  EnumerateCrashPoints(EstimatorKind::kEquiDepth);
}

TEST_F(DurabilityChaosTest, SamplingSurvivesEveryCrashInstant) {
  EnumerateCrashPoints(EstimatorKind::kSampling);
}

TEST_F(DurabilityChaosTest, MaxDiffRebuildSurvivesEveryCrashInstant) {
  EnumerateCrashPoints(EstimatorKind::kMaxDiff);
}

}  // namespace
}  // namespace selest
