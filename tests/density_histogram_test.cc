#include "src/density/histogram_density.h"

#include <vector>

#include <gtest/gtest.h>

namespace selest {
namespace {

TEST(BinnedDensityTest, CreateValidatesInput) {
  EXPECT_FALSE(BinnedDensity::Create({0.0}, {}, 1.0).ok());
  EXPECT_FALSE(BinnedDensity::Create({0.0, 1.0}, {1.0, 2.0}, 3.0).ok());
  EXPECT_FALSE(BinnedDensity::Create({1.0, 0.0}, {1.0}, 1.0).ok());
  EXPECT_FALSE(BinnedDensity::Create({0.0, 1.0}, {-1.0}, 1.0).ok());
  EXPECT_FALSE(BinnedDensity::Create({0.0, 1.0}, {1.0}, 0.0).ok());
  EXPECT_TRUE(BinnedDensity::Create({0.0, 1.0}, {1.0}, 1.0).ok());
}

TEST(BinnedDensityTest, DensityOfSingleBin) {
  auto bins = BinnedDensity::Create({0.0, 4.0}, {10.0}, 10.0);
  ASSERT_TRUE(bins.ok());
  EXPECT_DOUBLE_EQ(bins->Density(2.0), 0.25);
  EXPECT_DOUBLE_EQ(bins->Density(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(bins->Density(5.0), 0.0);
}

TEST(BinnedDensityTest, SelectivityFullCoverageIsOne) {
  auto bins = BinnedDensity::Create({0.0, 1.0, 2.0}, {3.0, 7.0}, 10.0);
  ASSERT_TRUE(bins.ok());
  EXPECT_DOUBLE_EQ(bins->Selectivity(0.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(bins->Selectivity(-5.0, 5.0), 1.0);
}

TEST(BinnedDensityTest, SelectivityOfExactBin) {
  auto bins = BinnedDensity::Create({0.0, 1.0, 2.0}, {3.0, 7.0}, 10.0);
  ASSERT_TRUE(bins.ok());
  EXPECT_DOUBLE_EQ(bins->Selectivity(0.0, 1.0), 0.3);
  EXPECT_DOUBLE_EQ(bins->Selectivity(1.0, 2.0), 0.7);
}

TEST(BinnedDensityTest, SelectivityOfPartialBinIsProRata) {
  auto bins = BinnedDensity::Create({0.0, 10.0}, {10.0}, 10.0);
  ASSERT_TRUE(bins.ok());
  // Uniform-in-bin assumption: a quarter of the bin holds a quarter of the
  // mass (formula (4)'s ψ).
  EXPECT_DOUBLE_EQ(bins->Selectivity(0.0, 2.5), 0.25);
  EXPECT_DOUBLE_EQ(bins->Selectivity(4.0, 6.0), 0.2);
}

TEST(BinnedDensityTest, SelectivitySpanningBins) {
  auto bins =
      BinnedDensity::Create({0.0, 2.0, 4.0, 6.0}, {2.0, 4.0, 2.0}, 8.0);
  ASSERT_TRUE(bins.ok());
  // Half of bin 0 + all of bin 1 + half of bin 2 = 1 + 4 + 1 = 6 of 8.
  EXPECT_DOUBLE_EQ(bins->Selectivity(1.0, 5.0), 0.75);
}

TEST(BinnedDensityTest, EmptyAndInvertedRanges) {
  auto bins = BinnedDensity::Create({0.0, 1.0}, {5.0}, 5.0);
  ASSERT_TRUE(bins.ok());
  EXPECT_DOUBLE_EQ(bins->Selectivity(2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(bins->Selectivity(0.7, 0.2), 0.0);
}

TEST(BinnedDensityTest, AtomBinContributesFullyWhenCovered) {
  // Middle bin has zero width at position 1.0 with count 4.
  auto bins =
      BinnedDensity::Create({0.0, 1.0, 1.0, 2.0}, {3.0, 4.0, 3.0}, 10.0);
  ASSERT_TRUE(bins.ok());
  EXPECT_NEAR(bins->Selectivity(0.99, 1.01),
              4.0 / 10.0 + 0.01 * 3.0 / 10.0 + 0.01 * 3.0 / 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(bins->Selectivity(1.0, 1.0), 0.4);
  EXPECT_DOUBLE_EQ(bins->Selectivity(1.5, 2.0), 0.15);
}

TEST(BinnedDensityTest, FromSampleCountsCorrectly) {
  const std::vector<double> sample{0.5, 1.5, 1.6, 2.5, 2.6, 2.7};
  auto bins = BinnedDensity::FromSample(sample, {0.0, 1.0, 2.0, 3.0});
  ASSERT_TRUE(bins.ok());
  EXPECT_DOUBLE_EQ(bins->counts()[0], 1.0);
  EXPECT_DOUBLE_EQ(bins->counts()[1], 2.0);
  EXPECT_DOUBLE_EQ(bins->counts()[2], 3.0);
  EXPECT_DOUBLE_EQ(bins->total_count(), 6.0);
}

TEST(BinnedDensityTest, FromSampleEdgeValues) {
  // Left edge goes to the first bin; interior edges go to the bin they
  // close (bins are (c_i, c_{i+1}]).
  const std::vector<double> sample{0.0, 1.0, 2.0};
  auto bins = BinnedDensity::FromSample(sample, {0.0, 1.0, 2.0});
  ASSERT_TRUE(bins.ok());
  EXPECT_DOUBLE_EQ(bins->counts()[0], 2.0);  // 0.0 and 1.0
  EXPECT_DOUBLE_EQ(bins->counts()[1], 1.0);  // 2.0
}

TEST(BinnedDensityTest, FromSampleClampsOutliersIntoEndBins) {
  const std::vector<double> sample{-5.0, 0.5, 99.0};
  auto bins = BinnedDensity::FromSample(sample, {0.0, 1.0, 2.0});
  ASSERT_TRUE(bins.ok());
  EXPECT_DOUBLE_EQ(bins->counts()[0], 2.0);
  EXPECT_DOUBLE_EQ(bins->counts()[1], 1.0);
}

TEST(BinnedDensityTest, FromSampleRejectsEmpty) {
  EXPECT_FALSE(BinnedDensity::FromSample({}, {0.0, 1.0}).ok());
}

TEST(BinnedDensityTest, SelectivityAdditivity) {
  auto bins =
      BinnedDensity::Create({0.0, 2.0, 4.0, 6.0}, {1.0, 2.0, 3.0}, 6.0);
  ASSERT_TRUE(bins.ok());
  const double whole = bins->Selectivity(0.5, 5.5);
  const double split =
      bins->Selectivity(0.5, 3.0) + bins->Selectivity(3.0, 5.5);
  EXPECT_NEAR(whole, split, 1e-12);
}

TEST(BinnedDensityTest, StorageBytes) {
  auto bins = BinnedDensity::Create({0.0, 1.0, 2.0}, {1.0, 1.0}, 2.0);
  ASSERT_TRUE(bins.ok());
  EXPECT_EQ(bins->StorageBytes(), sizeof(double) * 5);
}

}  // namespace
}  // namespace selest
