#include "src/feedback/feedback_histogram.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

TEST(FeedbackHistogramTest, RejectsBadOptions) {
  FeedbackHistogramOptions options;
  options.num_bins = 0;
  EXPECT_FALSE(FeedbackHistogram::Create(kDomain, options).ok());
  options.num_bins = 8;
  options.learning_rate = 0.0;
  EXPECT_FALSE(FeedbackHistogram::Create(kDomain, options).ok());
  options.learning_rate = 1.5;
  EXPECT_FALSE(FeedbackHistogram::Create(kDomain, options).ok());
}

TEST(FeedbackHistogramTest, StartsUniform) {
  auto histogram = FeedbackHistogram::Create(kDomain, {});
  ASSERT_TRUE(histogram.ok());
  EXPECT_DOUBLE_EQ(histogram->EstimateSelectivity(0.0, 50.0), 0.5);
  EXPECT_DOUBLE_EQ(histogram->EstimateSelectivity(20.0, 30.0), 0.1);
  EXPECT_EQ(histogram->observations(), 0u);
}

TEST(FeedbackHistogramTest, CreateFromSampleMatchesData) {
  Rng rng(1);
  std::vector<double> sample(1000);
  for (double& v : sample) v = 25.0 + 10.0 * rng.NextDouble();  // [25, 35]
  auto histogram = FeedbackHistogram::CreateFromSample(sample, kDomain, {});
  ASSERT_TRUE(histogram.ok());
  EXPECT_GT(histogram->EstimateSelectivity(25.0, 35.0), 0.9);
  EXPECT_LT(histogram->EstimateSelectivity(60.0, 90.0), 0.05);
}

TEST(FeedbackHistogramTest, SingleObservationMovesEstimateTowardTruth) {
  FeedbackHistogramOptions options;
  options.learning_rate = 1.0;
  options.renormalize = false;
  auto histogram = FeedbackHistogram::Create(kDomain, options);
  ASSERT_TRUE(histogram.ok());
  const RangeQuery q{0.0, 25.0};
  // Uniform start says 0.25; the truth is 0.75.
  histogram->Observe(q, 0.75);
  EXPECT_NEAR(histogram->EstimateSelectivity(q.a, q.b), 0.75, 1e-9);
  EXPECT_EQ(histogram->observations(), 1u);
}

TEST(FeedbackHistogramTest, PartialLearningRate) {
  FeedbackHistogramOptions options;
  options.learning_rate = 0.5;
  options.renormalize = false;
  auto histogram = FeedbackHistogram::Create(kDomain, options);
  ASSERT_TRUE(histogram.ok());
  const RangeQuery q{0.0, 50.0};
  histogram->Observe(q, 1.0);  // estimate was 0.5, error 0.5, correct half
  EXPECT_NEAR(histogram->EstimateSelectivity(q.a, q.b), 0.75, 1e-9);
}

TEST(FeedbackHistogramTest, RenormalizationConservesMass) {
  auto histogram = FeedbackHistogram::Create(kDomain, {});
  ASSERT_TRUE(histogram.ok());
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const double a = 90.0 * rng.NextDouble();
    const RangeQuery q{a, a + 10.0};
    histogram->Observe(q, rng.NextDouble());
    EXPECT_NEAR(histogram->total_mass(), 1.0, 1e-9);
  }
}

TEST(FeedbackHistogramTest, MassesStayNonNegative) {
  FeedbackHistogramOptions options;
  options.learning_rate = 1.0;
  auto histogram = FeedbackHistogram::Create(kDomain, options);
  ASSERT_TRUE(histogram.ok());
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double a = 80.0 * rng.NextDouble();
    histogram->Observe({a, a + 20.0 * rng.NextDouble()}, rng.NextDouble());
  }
  for (double m : histogram->masses()) EXPECT_GE(m, 0.0);
}

TEST(FeedbackHistogramTest, ZeroEstimateRegionRecovers) {
  // Start from a sample that left a region empty, then learn that the
  // region actually holds mass.
  std::vector<double> sample(100, 10.0);
  FeedbackHistogramOptions options;
  options.learning_rate = 1.0;
  options.renormalize = false;
  auto histogram =
      FeedbackHistogram::CreateFromSample(sample, kDomain, options);
  ASSERT_TRUE(histogram.ok());
  const RangeQuery q{70.0, 90.0};
  EXPECT_DOUBLE_EQ(histogram->EstimateSelectivity(q.a, q.b), 0.0);
  histogram->Observe(q, 0.4);
  EXPECT_NEAR(histogram->EstimateSelectivity(q.a, q.b), 0.4, 1e-9);
}

TEST(FeedbackHistogramTest, RepeatedFeedbackReducesWorkloadError) {
  // Skewed truth, uniform start: cycling through a workload with feedback
  // must cut the workload's mean relative error substantially.
  Rng rng(4);
  std::vector<double> data(20000);
  for (double& v : data) {
    v = kDomain.Clamp(30.0 + 10.0 * rng.NextGaussian());
  }
  std::sort(data.begin(), data.end());
  const auto truth = [&data](const RangeQuery& q) {
    const auto lo = std::lower_bound(data.begin(), data.end(), q.a);
    const auto hi = std::upper_bound(data.begin(), data.end(), q.b);
    return static_cast<double>(hi - lo) / static_cast<double>(data.size());
  };
  std::vector<RangeQuery> workload;
  for (int i = 0; i < 100; ++i) {
    const double center = data[rng.NextUint64(data.size())];
    const double a = std::max(0.0, center - 5.0);
    workload.push_back({a, std::min(100.0, a + 10.0)});
  }
  auto histogram = FeedbackHistogram::Create(kDomain, {});
  ASSERT_TRUE(histogram.ok());
  const auto workload_mre = [&] {
    double total = 0.0;
    int counted = 0;
    for (const RangeQuery& q : workload) {
      const double t = truth(q);
      if (t <= 0.0) continue;
      total += std::fabs(histogram->EstimateSelectivity(q.a, q.b) - t) / t;
      ++counted;
    }
    return total / counted;
  };
  const double before = workload_mre();
  for (int round = 0; round < 5; ++round) {
    for (const RangeQuery& q : workload) histogram->Observe(q, truth(q));
  }
  const double after = workload_mre();
  EXPECT_LT(after, 0.3 * before);
}

TEST(FeedbackHistogramTest, NameAndStorage) {
  auto histogram = FeedbackHistogram::Create(kDomain, {});
  ASSERT_TRUE(histogram.ok());
  EXPECT_EQ(histogram->name(), "feedback(64)");
  EXPECT_EQ(histogram->StorageBytes(), 64 * sizeof(double));
}

}  // namespace
}  // namespace selest
