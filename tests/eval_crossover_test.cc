// The crossover-frontier harness: a small sweep runs out of core, the
// frontier reduction picks winners per (distribution, size, band) group,
// the result is deterministic, and the JSON artifact has the
// google-benchmark shape tools/bench_diff.py reads.
#include "src/eval/crossover.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

namespace selest {
namespace {

CrossoverConfig TinyConfig() {
  CrossoverConfig config;
  config.data = {{"uniform", 0.0, 10}, {"zipf", 1.2, 10}};
  config.data_sizes = {500, 2000};
  config.selectivity_bands = {0.02, 0.10};
  EstimatorConfig equi_width;
  equi_width.kind = EstimatorKind::kEquiWidth;
  EstimatorConfig sampling;
  sampling.kind = EstimatorKind::kSampling;
  config.estimators = {equi_width, sampling};
  config.queries_per_band = 30;
  config.sample_size = 200;
  config.seed = 7;
  config.chunk_rows = 128;
  return config;
}

TEST(CrossoverTest, SweepsEveryCellAndReducesToFrontier) {
  const CrossoverConfig config = TinyConfig();
  auto result = RunCrossover(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 2 dists × 2 sizes × 2 bands × 2 estimators.
  EXPECT_EQ(result->cells.size(), 16u);
  // One frontier point per (dist, size, band) group.
  EXPECT_EQ(result->frontier.size(), 8u);
  std::set<std::string> estimators;
  for (const CrossoverCell& cell : result->cells) {
    EXPECT_TRUE(cell.error.empty()) << cell.estimator << ": " << cell.error;
    EXPECT_GT(cell.evaluated, 0u);
    EXPECT_GE(cell.mean_relative_error, 0.0);
    EXPECT_GT(cell.estimate_ns_per_query, 0.0);
    EXPECT_GT(cell.storage_bytes, 0u);
    estimators.insert(cell.estimator);
  }
  EXPECT_EQ(estimators.size(), 2u);
  for (const CrossoverFrontierPoint& point : result->frontier) {
    EXPECT_TRUE(estimators.count(point.error_winner)) << point.error_winner;
    EXPECT_TRUE(estimators.count(point.latency_winner))
        << point.latency_winner;
    EXPECT_GE(point.error_winner_mre, 0.0);
    EXPECT_GT(point.latency_winner_ns, 0.0);
  }
}

TEST(CrossoverTest, ErrorMetricsAreDeterministicAcrossRuns) {
  const CrossoverConfig config = TinyConfig();
  auto first = RunCrossover(config);
  auto second = RunCrossover(config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->cells.size(), second->cells.size());
  for (size_t i = 0; i < first->cells.size(); ++i) {
    // Error metrics are pure functions of (config, seed); only the wall
    // clock timings differ between runs.
    EXPECT_EQ(first->cells[i].estimator, second->cells[i].estimator);
    EXPECT_EQ(first->cells[i].mean_relative_error,
              second->cells[i].mean_relative_error);
    EXPECT_EQ(first->cells[i].p90_relative_error,
              second->cells[i].p90_relative_error);
    EXPECT_EQ(first->cells[i].evaluated, second->cells[i].evaluated);
  }
  ASSERT_EQ(first->frontier.size(), second->frontier.size());
  for (size_t i = 0; i < first->frontier.size(); ++i) {
    EXPECT_EQ(first->frontier[i].error_winner,
              second->frontier[i].error_winner);
  }
}

TEST(CrossoverTest, EmptyAxesAreInvalidArgument) {
  CrossoverConfig config = TinyConfig();
  config.data_sizes.clear();
  EXPECT_EQ(RunCrossover(config).status().code(),
            StatusCode::kInvalidArgument);
  config = TinyConfig();
  config.estimators.clear();
  EXPECT_EQ(RunCrossover(config).status().code(),
            StatusCode::kInvalidArgument);
  config = TinyConfig();
  config.selectivity_bands = {0.0};
  EXPECT_EQ(RunCrossover(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CrossoverTest, UnknownDistributionFailsTheRun) {
  CrossoverConfig config = TinyConfig();
  config.data = {{"cauchy", 0.0, 10}};
  EXPECT_FALSE(RunCrossover(config).ok());
}

TEST(CrossoverTest, DefaultConfigCoversThePaperAxes) {
  const CrossoverConfig config = DefaultCrossoverConfig();
  EXPECT_GE(config.data.size(), 3u);
  EXPECT_GE(config.data_sizes.size(), 3u);
  EXPECT_EQ(config.selectivity_bands.size(), 4u);
  EXPECT_GE(config.estimators.size(), 6u);
}

TEST(CrossoverTest, JsonArtifactHasBenchmarkShape) {
  CrossoverConfig config = TinyConfig();
  config.data = {{"uniform", 0.0, 10}};
  config.data_sizes = {500};
  auto result = RunCrossover(config);
  ASSERT_TRUE(result.ok());
  const std::string path = std::string(::testing::TempDir()) +
                           "/crossover_" + std::to_string(::getpid()) +
                           ".json";
  ASSERT_TRUE(WriteCrossoverJson(*result, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  // The google-benchmark envelope bench_diff.py expects, plus the
  // frontier block, plus one entry per cell.
  EXPECT_NE(json.find("\"benchmarks\""), std::string::npos);
  EXPECT_NE(json.find("\"frontier\""), std::string::npos);
  EXPECT_NE(json.find("\"real_time\""), std::string::npos);
  EXPECT_NE(json.find("\"time_unit\""), std::string::npos);
  EXPECT_NE(json.find("crossover/uniform/n=500/s=0.02/equi-width"),
            std::string::npos);
  EXPECT_NE(json.find("\"mre\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace selest
