#include <cmath>
#include "src/eval/mise.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/density/kde.h"
#include "src/est/equi_width_histogram.h"
#include "src/smoothing/amise.h"
#include "src/smoothing/normal_scale.h"
#include "src/util/numeric.h"

namespace selest {
namespace {

TEST(IseTest, PerfectEstimateHasZeroIse) {
  const NormalDistribution truth(0.0, 1.0);
  const DensityFn estimate = [&truth](double x) { return truth.Pdf(x); };
  EXPECT_NEAR(IntegratedSquaredError(estimate, truth, -8.0, 8.0), 0.0, 1e-15);
}

TEST(IseTest, KnownOffsetError) {
  // Estimate identically zero: ISE = ∫ f² = R(f) = 1/(2√π σ).
  const NormalDistribution truth(0.0, 2.0);
  const DensityFn zero = [](double) { return 0.0; };
  const double expected = 1.0 / (2.0 * std::sqrt(M_PI) * 2.0);
  EXPECT_NEAR(IntegratedSquaredError(zero, truth, -20.0, 20.0), expected,
              1e-6);
}

TEST(MiseTest, KdeMiseNearAmisePrediction) {
  // Gaussian truth, Epanechnikov KDE at the AMISE-optimal bandwidth: the
  // empirical MISE should be within a factor ~2 of the AMISE value.
  const double sigma = 1.0;
  const NormalDistribution truth(0.0, sigma);
  const Domain domain = ContinuousDomain(-8.0, 8.0);
  const size_t n = 2000;
  const double r2 = DensitySecondDerivativeRoughness(truth, -8.0, 8.0);
  const double h_opt = OptimalBandwidth(n, r2);
  const double amise = KernelAmise(h_opt, n, r2);

  MiseOptions options;
  options.trials = 5;
  options.sample_size = n;
  options.intervals = 1024;
  const double mise = EstimateMise(
      [&](std::span<const double> sample) -> DensityFn {
        auto kde = std::make_shared<Kde>(
            Kde::Create(sample, h_opt, domain).value());
        return [kde](double x) { return kde->Density(x); };
      },
      truth, domain, options);
  EXPECT_GT(mise, 0.3 * amise);
  EXPECT_LT(mise, 3.0 * amise);
}

TEST(MiseTest, KernelConvergenceRateNearMinusFourFifths) {
  // §4.2: AMISE(h_K) = O(n^−4/5). Fit the empirical log-log slope.
  const NormalDistribution truth(0.0, 1.0);
  const Domain domain = ContinuousDomain(-8.0, 8.0);
  const double r2 = DensitySecondDerivativeRoughness(truth, -8.0, 8.0);
  std::vector<double> sizes{250, 1000, 4000, 16000};
  std::vector<double> errors;
  for (double n : sizes) {
    const double h = OptimalBandwidth(static_cast<size_t>(n), r2);
    MiseOptions options;
    options.trials = 6;
    options.sample_size = static_cast<size_t>(n);
    options.intervals = 1024;
    options.seed = 11;
    errors.push_back(EstimateMise(
        [&](std::span<const double> sample) -> DensityFn {
          auto kde = std::make_shared<Kde>(
              Kde::Create(sample, h, domain).value());
          return [kde](double x) { return kde->Density(x); };
        },
        truth, domain, options));
  }
  const double slope = LogLogSlope(sizes, errors);
  EXPECT_NEAR(slope, -0.8, 0.2);
}

TEST(MiseTest, HistogramConvergenceRateNearMinusTwoThirds) {
  // §4.1: AMISE(h_EW) = O(n^−2/3).
  const NormalDistribution truth(0.0, 1.0);
  const Domain domain = ContinuousDomain(-8.0, 8.0);
  const double r1 = DensityDerivativeRoughness(truth, -8.0, 8.0);
  std::vector<double> sizes{250, 1000, 4000, 16000};
  std::vector<double> errors;
  for (double n : sizes) {
    const double h = OptimalBinWidth(static_cast<size_t>(n), r1);
    const int bins =
        std::max(1, static_cast<int>(std::lround(domain.width() / h)));
    MiseOptions options;
    options.trials = 6;
    options.sample_size = static_cast<size_t>(n);
    options.intervals = 1024;
    options.seed = 13;
    errors.push_back(EstimateMise(
        [&](std::span<const double> sample) -> DensityFn {
          auto histogram = std::make_shared<EquiWidthHistogram>(
              EquiWidthHistogram::Create(sample, domain, bins).value());
          return [histogram](double x) { return histogram->bins().Density(x); };
        },
        truth, domain, options));
  }
  const double slope = LogLogSlope(sizes, errors);
  EXPECT_NEAR(slope, -2.0 / 3.0, 0.2);
}

TEST(MiseTest, KernelBeatsHistogramAtEqualSampleSize) {
  const NormalDistribution truth(0.0, 1.0);
  const Domain domain = ContinuousDomain(-8.0, 8.0);
  const double r1 = DensityDerivativeRoughness(truth, -8.0, 8.0);
  const double r2 = DensitySecondDerivativeRoughness(truth, -8.0, 8.0);
  const size_t n = 4000;
  MiseOptions options;
  options.trials = 5;
  options.sample_size = n;
  options.intervals = 1024;
  options.seed = 17;
  const double h_k = OptimalBandwidth(n, r2);
  const double kernel_mise = EstimateMise(
      [&](std::span<const double> sample) -> DensityFn {
        auto kde =
            std::make_shared<Kde>(Kde::Create(sample, h_k, domain).value());
        return [kde](double x) { return kde->Density(x); };
      },
      truth, domain, options);
  const int bins = std::max(
      1, static_cast<int>(std::lround(domain.width() /
                                      OptimalBinWidth(n, r1))));
  const double histogram_mise = EstimateMise(
      [&](std::span<const double> sample) -> DensityFn {
        auto histogram = std::make_shared<EquiWidthHistogram>(
            EquiWidthHistogram::Create(sample, domain, bins).value());
        return [histogram](double x) { return histogram->bins().Density(x); };
      },
      truth, domain, options);
  EXPECT_LT(kernel_mise, histogram_mise);
}

TEST(LogLogSlopeTest, ExactPowerLaw) {
  const std::vector<double> n{10, 100, 1000};
  std::vector<double> errors;
  for (double x : n) errors.push_back(5.0 * std::pow(x, -0.8));
  EXPECT_NEAR(LogLogSlope(n, errors), -0.8, 1e-12);
}

TEST(LogLogSlopeTest, PositiveSlope) {
  const std::vector<double> n{10, 100};
  const std::vector<double> errors{1.0, 10.0};
  EXPECT_NEAR(LogLogSlope(n, errors), 1.0, 1e-12);
}

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.8413447460685429), 1.0, 1e-7);
}

TEST(InverseNormalCdfTest, RoundTripsThroughCdf) {
  for (double p : {0.001, 0.01, 0.2, 0.5, 0.77, 0.99, 0.9999}) {
    const double z = InverseNormalCdf(p);
    const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
    EXPECT_NEAR(cdf, p, 1e-9) << p;
  }
}

}  // namespace
}  // namespace selest
