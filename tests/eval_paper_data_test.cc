#include "src/eval/paper_data.h"

#include <set>

#include <gtest/gtest.h>

namespace selest {
namespace {

TEST(PaperDataTest, SpecTableMatchesTable2) {
  const auto& specs = PaperFileSpecs();
  EXPECT_EQ(specs.size(), 14u);
  // Spot checks against Table 2.
  std::set<std::string> names;
  for (const auto& spec : specs) names.insert(spec.name);
  EXPECT_TRUE(names.count("u(15)"));
  EXPECT_TRUE(names.count("n(10)"));
  EXPECT_TRUE(names.count("arap2"));
  EXPECT_TRUE(names.count("rr1(12)"));
  EXPECT_TRUE(names.count("iw"));
}

TEST(PaperDataTest, UnknownNameIsNotFound) {
  auto result = MakePaperDataset("nope(99)");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(PaperDataTest, CiAliasesInstanceWeight) {
  auto result = MakePaperDataset("ci");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 199523u);
}

// Generating every file is moderately expensive; verify them all in one
// pass against their specs.
TEST(PaperDataTest, EveryFileMatchesItsSpec) {
  for (const PaperFileSpec& spec : PaperFileSpecs()) {
    auto data = MakePaperDataset(spec.name);
    ASSERT_TRUE(data.ok()) << spec.name;
    EXPECT_EQ(data->size(), spec.records) << spec.name;
    EXPECT_EQ(data->domain().bits, spec.bits) << spec.name;
    for (double v : {data->values().front(), data->values().back()}) {
      EXPECT_TRUE(data->domain().Contains(v)) << spec.name;
    }
  }
}

TEST(PaperDataTest, DeterministicAcrossCalls) {
  auto a = MakePaperDataset("n(15)", 5);
  auto b = MakePaperDataset("n(15)", 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->values(), b->values());
}

TEST(PaperDataTest, SeedChangesData) {
  auto a = MakePaperDataset("u(15)", 1);
  auto b = MakePaperDataset("u(15)", 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->values(), b->values());
}

TEST(PaperDataTest, NormalIsCenteredInDomain) {
  auto data = MakePaperDataset("n(15)");
  ASSERT_TRUE(data.ok());
  const double center = 0.5 * (data->domain().lo + data->domain().hi);
  double sum = 0.0;
  for (double v : data->values()) sum += v;
  const double mean = sum / static_cast<double>(data->size());
  EXPECT_NEAR(mean, center, 0.01 * data->domain().width());
}

TEST(PaperDataTest, ExponentialIsLeftSkewed) {
  auto data = MakePaperDataset("e(15)");
  ASSERT_TRUE(data.ok());
  const double quarter = data->domain().lo + 0.25 * data->domain().width();
  // Exponential with mean = width/8 puts ~86% of mass below width/4.
  EXPECT_GT(data->CountInRange(data->domain().lo, quarter),
            data->size() * 4 / 5);
}

TEST(PaperDataTest, SmallDomainsHaveManyDuplicates) {
  auto small = MakePaperDataset("n(10)");
  auto large = MakePaperDataset("n(20)");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  // n(10): 100k records on 1024 values → heavy duplication. n(20): mostly
  // unique.
  EXPECT_LT(small->CountDistinct(), 1100u);
  EXPECT_GT(large->CountDistinct(), 50000u);
}

TEST(PaperDataTest, HeadlineNamesAreRegistered) {
  for (const std::string& name : HeadlineFileNames()) {
    EXPECT_TRUE(MakePaperDataset(name).ok()) << name;
  }
}

TEST(PaperDataTest, PaperFileNamesMatchesSpecs) {
  EXPECT_EQ(PaperFileNames().size(), PaperFileSpecs().size());
}

}  // namespace
}  // namespace selest
