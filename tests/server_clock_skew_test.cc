// TTL staleness under a non-monotonic clock. A backwards time step (NTP
// correction, suspend/resume, a misbehaving injected clock) must neither
// fire a spurious refresh (the unsigned age would wrap to an enormous
// value) nor wedge the TTL until the clock catches back up to the old
// anchor.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/catalog/live_server.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1000.0);

std::vector<double> MakeRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(kDomain.lo + rng.NextDouble() * kDomain.width());
  }
  return rows;
}

EstimatorConfig EquiWidthConfig(int bins) {
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = bins;
  return config;
}

struct Fixture {
  explicit Fixture(uint64_t ttl_ticks) {
    now = std::make_shared<uint64_t>(1000);
    LiveServerOptions options;
    options.background_refresh = false;
    options.ttl_ticks = ttl_ticks;
    options.clock = [clock = now]() { return *clock; };
    server = std::make_unique<LiveStatisticsServer>(std::move(options));
  }

  uint64_t TtlRefreshes() {
    auto stats = server->ColumnStats("t", "x");
    EXPECT_TRUE(stats.ok());
    return stats.ok() ? stats.value().ttl_refreshes : 0;
  }

  std::shared_ptr<uint64_t> now;
  std::unique_ptr<LiveStatisticsServer> server;
};

TEST(ServerClockSkewTest, BackwardsStepDoesNotFireSpuriously) {
  Fixture fx(/*ttl_ticks=*/100);
  ASSERT_TRUE(fx.server
                  ->RegisterColumn("t", "x", kDomain, EquiWidthConfig(16),
                                   MakeRows(300, 1))
                  .ok());
  const RangeQuery query{200.0, 700.0};
  // Fresh: well inside the TTL.
  *fx.now = 1050;
  ASSERT_TRUE(fx.server->Estimate("t", "x", query).ok());
  EXPECT_EQ(fx.TtlRefreshes(), 0u);

  // The clock steps far backwards. Unsigned `now - built_at` would wrap
  // to ~2^64 and fire; the anchor discipline must treat this as "time is
  // suspect, restart the interval" instead.
  *fx.now = 10;
  ASSERT_TRUE(fx.server->Estimate("t", "x", query).ok());
  EXPECT_EQ(fx.TtlRefreshes(), 0u);
  auto stats = fx.server->ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().generation, 1u);
}

TEST(ServerClockSkewTest, TtlStillFiresAfterReanchoring) {
  Fixture fx(/*ttl_ticks=*/100);
  ASSERT_TRUE(fx.server
                  ->RegisterColumn("t", "x", kDomain, EquiWidthConfig(16),
                                   MakeRows(300, 2))
                  .ok());
  const RangeQuery query{200.0, 700.0};
  // Step backwards (re-anchors at 10), then advance along the NEW
  // timeline: the TTL must fire one full interval later — no wedge
  // waiting for the clock to climb back past the original build tick.
  *fx.now = 10;
  ASSERT_TRUE(fx.server->Estimate("t", "x", query).ok());
  EXPECT_EQ(fx.TtlRefreshes(), 0u);
  *fx.now = 109;  // 99 ticks after the re-anchor: still fresh
  ASSERT_TRUE(fx.server->Estimate("t", "x", query).ok());
  EXPECT_EQ(fx.TtlRefreshes(), 0u);
  *fx.now = 111;  // past one full TTL on the new timeline
  ASSERT_TRUE(fx.server->Estimate("t", "x", query).ok());
  EXPECT_EQ(fx.TtlRefreshes(), 1u);
  auto stats = fx.server->ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().generation, 2u);
}

TEST(ServerClockSkewTest, RepeatedOscillationNeverWedgesOrStorms) {
  Fixture fx(/*ttl_ticks=*/100);
  ASSERT_TRUE(fx.server
                  ->RegisterColumn("t", "x", kDomain, EquiWidthConfig(16),
                                   MakeRows(300, 3))
                  .ok());
  const RangeQuery query{100.0, 900.0};
  // A sawtooth clock: each serve steps back a little, never accumulating
  // 100 ticks of forward progress since the last anchor. No refresh may
  // fire — each backwards step restarts the interval.
  uint64_t tick = 1000;
  for (int i = 0; i < 20; ++i) {
    tick = (i % 2 == 0) ? tick + 60 : tick - 80;
    *fx.now = tick;
    ASSERT_TRUE(fx.server->Estimate("t", "x", query).ok());
  }
  EXPECT_EQ(fx.TtlRefreshes(), 0u);

  // Then honest forward time resumes: exactly one refresh per interval,
  // not a storm paying back the oscillation.
  *fx.now = tick + 150;
  ASSERT_TRUE(fx.server->Estimate("t", "x", query).ok());
  EXPECT_EQ(fx.TtlRefreshes(), 1u);
  ASSERT_TRUE(fx.server->Estimate("t", "x", query).ok());
  EXPECT_EQ(fx.TtlRefreshes(), 1u);  // same tick: no double fire
}

TEST(ServerClockSkewTest, IngestPathUsesTheSameAnchorDiscipline) {
  Fixture fx(/*ttl_ticks=*/100);
  ASSERT_TRUE(fx.server
                  ->RegisterColumn("t", "x", kDomain, EquiWidthConfig(16),
                                   MakeRows(300, 4))
                  .ok());
  *fx.now = 10;  // backwards before the first ingest
  ASSERT_TRUE(fx.server->Ingest("t", "x", MakeRows(10, 5)).ok());
  EXPECT_EQ(fx.TtlRefreshes(), 0u);
  *fx.now = 120;  // a full interval after the re-anchor
  ASSERT_TRUE(fx.server->Ingest("t", "x", MakeRows(10, 6)).ok());
  EXPECT_EQ(fx.TtlRefreshes(), 1u);
}

}  // namespace
}  // namespace selest
