#include "src/est/estimator_factory.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

std::vector<double> UniformSample(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample(n);
  for (double& x : sample) x = 100.0 * rng.NextDouble();
  return sample;
}

const EstimatorKind kAllKinds[] = {
    EstimatorKind::kSampling,   EstimatorKind::kUniform,
    EstimatorKind::kEquiWidth,  EstimatorKind::kEquiDepth,
    EstimatorKind::kMaxDiff,    EstimatorKind::kAverageShifted,
    EstimatorKind::kKernel,     EstimatorKind::kHybrid,
    EstimatorKind::kVOptimal,   EstimatorKind::kAdaptiveKernel,
    EstimatorKind::kWavelet,    EstimatorKind::kFeedback,
    EstimatorKind::kReconstructed, EstimatorKind::kOnlineLearning,
};

class FactoryKindTest : public ::testing::TestWithParam<EstimatorKind> {};

TEST_P(FactoryKindTest, BuildsWithNormalScaleRule) {
  const auto sample = UniformSample(500, 1);
  EstimatorConfig config;
  config.kind = GetParam();
  auto est = BuildEstimator(sample, kDomain, config);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  const double s = (*est)->EstimateSelectivity(20.0, 40.0);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
  EXPECT_GT((*est)->StorageBytes(), 0u);
  EXPECT_FALSE((*est)->name().empty());
}

TEST_P(FactoryKindTest, RoughlyCorrectOnUniformData) {
  const auto sample = UniformSample(2000, 2);
  EstimatorConfig config;
  config.kind = GetParam();
  auto est = BuildEstimator(sample, kDomain, config);
  ASSERT_TRUE(est.ok());
  // True selectivity of [20, 40] on uniform data is 0.2; every estimator
  // in the paper gets within a few points on this easy case.
  EXPECT_NEAR((*est)->EstimateSelectivity(20.0, 40.0), 0.2, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, FactoryKindTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<EstimatorKind>& info) {
      std::string name = EstimatorKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(FactoryTest, FixedSmoothingSetsBinCount) {
  const auto sample = UniformSample(200, 3);
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = 25.0;
  auto est = BuildEstimator(sample, kDomain, config);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ((*est)->name(), "equi-width(25)");
}

TEST(FactoryTest, FixedSmoothingSetsBandwidth) {
  const auto sample = UniformSample(200, 4);
  EstimatorConfig config;
  config.kind = EstimatorKind::kKernel;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = 7.5;
  config.boundary = BoundaryPolicy::kNone;
  auto est = BuildEstimator(sample, kDomain, config);
  ASSERT_TRUE(est.ok());
  // Verify through behaviour: a sample at distance < 7.5 from the query
  // edge contributes fractionally.
  EXPECT_EQ((*est)->name(), "kernel(epanechnikov, none)");
}

TEST(FactoryTest, InvalidFixedSmoothingFailsCleanly) {
  const auto sample = UniformSample(50, 5);
  EstimatorConfig config;
  config.kind = EstimatorKind::kKernel;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = 0.0;  // invalid bandwidth
  EXPECT_FALSE(BuildEstimator(sample, kDomain, config).ok());
}

TEST(FactoryTest, DirectPlugInRuleBuilds) {
  const auto sample = UniformSample(500, 6);
  for (EstimatorKind kind :
       {EstimatorKind::kEquiWidth, EstimatorKind::kKernel}) {
    EstimatorConfig config;
    config.kind = kind;
    config.smoothing = SmoothingRule::kDirectPlugIn;
    auto est = BuildEstimator(sample, kDomain, config);
    ASSERT_TRUE(est.ok()) << EstimatorKindName(kind);
    EXPECT_NEAR((*est)->EstimateSelectivity(0.0, 100.0), 1.0, 0.05);
  }
}

TEST(FactoryTest, EmptySampleFailsForSampleBasedKinds) {
  EstimatorConfig config;
  for (EstimatorKind kind : kAllKinds) {
    if (kind == EstimatorKind::kUniform) continue;  // needs no sample
    config.kind = kind;
    EXPECT_FALSE(BuildEstimator({}, kDomain, config).ok())
        << EstimatorKindName(kind);
  }
}

TEST(FactoryTest, KindAndRuleNames) {
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kKernel), "kernel");
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kAverageShifted), "ash");
  EXPECT_STREQ(SmoothingRuleName(SmoothingRule::kNormalScale), "h-NS");
  EXPECT_STREQ(SmoothingRuleName(SmoothingRule::kDirectPlugIn), "h-DPI");
}

TEST(FactoryTest, AlternativeKernelTypes) {
  const auto sample = UniformSample(300, 7);
  EstimatorConfig config;
  config.kind = EstimatorKind::kKernel;
  config.kernel = KernelType::kBiweight;
  config.boundary = BoundaryPolicy::kReflection;
  auto est = BuildEstimator(sample, kDomain, config);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ((*est)->name(), "kernel(biweight, reflection)");
}

}  // namespace
}  // namespace selest
