#include "src/density/kde.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/numeric.h"
#include "src/util/random.h"

namespace selest {
namespace {

std::vector<double> UniformSample(size_t n, const Domain& domain,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample(n);
  for (double& x : sample) {
    x = domain.lo + domain.width() * rng.NextDouble();
  }
  return sample;
}

TEST(KdeTest, RejectsEmptySample) {
  EXPECT_FALSE(Kde::Create({}, 1.0, ContinuousDomain(0.0, 1.0)).ok());
}

TEST(KdeTest, RejectsNonPositiveBandwidth) {
  const std::vector<double> sample{0.5};
  EXPECT_FALSE(Kde::Create(sample, 0.0, ContinuousDomain(0.0, 1.0)).ok());
  EXPECT_FALSE(Kde::Create(sample, -1.0, ContinuousDomain(0.0, 1.0)).ok());
}

TEST(KdeTest, RejectsBoundaryKernelsWithNonEpanechnikov) {
  const std::vector<double> sample{0.5};
  EXPECT_FALSE(Kde::Create(sample, 0.1, ContinuousDomain(0.0, 1.0),
                           Kernel(KernelType::kGaussian),
                           BoundaryPolicy::kBoundaryKernel)
                   .ok());
}

TEST(KdeTest, SingleSampleBumpShape) {
  const Domain domain = ContinuousDomain(0.0, 10.0);
  const std::vector<double> sample{5.0};
  auto kde = Kde::Create(sample, 2.0, domain);
  ASSERT_TRUE(kde.ok());
  // f̂(x) = K((x − 5)/2)/2: peak 0.75/2 at the sample, zero beyond ±2.
  EXPECT_NEAR(kde->Density(5.0), 0.375, 1e-12);
  EXPECT_NEAR(kde->Density(6.0), 0.75 * 0.75 / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(kde->Density(7.5), 0.0);
  EXPECT_DOUBLE_EQ(kde->Density(2.0), 0.0);
}

TEST(KdeTest, SuperpositionOfBumps) {
  // Two far-apart samples: density is the average of two bumps (Fig. 1).
  const Domain domain = ContinuousDomain(0.0, 20.0);
  const std::vector<double> sample{5.0, 15.0};
  auto kde = Kde::Create(sample, 1.0, domain);
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->Density(5.0), 0.75 / 2.0, 1e-12);
  EXPECT_NEAR(kde->Density(15.0), 0.75 / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(kde->Density(10.0), 0.0);
}

TEST(KdeTest, IntegratesToOneAwayFromBoundaries) {
  const Domain domain = ContinuousDomain(0.0, 100.0);
  // Samples clustered mid-domain: no boundary loss.
  Rng rng(3);
  std::vector<double> sample(200);
  for (double& x : sample) x = 50.0 + 5.0 * rng.NextGaussian();
  auto kde = Kde::Create(sample, 2.0, domain);
  ASSERT_TRUE(kde.ok());
  const double mass = SimpsonIntegrate(
      [&kde](double x) { return kde->Density(x); }, 0.0, 100.0, 2000);
  // Quadrature accuracy is limited by the derivative kinks at the edges of
  // each Epanechnikov bump, not by the estimator.
  EXPECT_NEAR(mass, 1.0, 1e-3);
}

TEST(KdeTest, PlainEstimatorLosesMassAtBoundary) {
  const Domain domain = ContinuousDomain(0.0, 1.0);
  const auto sample = UniformSample(500, domain, 4);
  auto kde = Kde::Create(sample, 0.1, domain);
  ASSERT_TRUE(kde.ok());
  const double mass = SimpsonIntegrate(
      [&kde](double x) { return kde->Density(x); }, 0.0, 1.0, 2000);
  // Roughly one bandwidth of mass leaks out at each boundary.
  EXPECT_LT(mass, 0.99);
  EXPECT_GT(mass, 0.90);
}

TEST(KdeTest, ReflectionRestoresMass) {
  const Domain domain = ContinuousDomain(0.0, 1.0);
  const auto sample = UniformSample(500, domain, 5);
  auto kde = Kde::Create(sample, 0.1, domain, Kernel(),
                         BoundaryPolicy::kReflection);
  ASSERT_TRUE(kde.ok());
  const double mass = SimpsonIntegrate(
      [&kde](double x) { return kde->Density(x); }, 0.0, 1.0, 2000);
  EXPECT_NEAR(mass, 1.0, 1e-3);
}

TEST(KdeTest, BoundaryKernelFixesBoundaryBias) {
  const Domain domain = ContinuousDomain(0.0, 1.0);
  const auto sample = UniformSample(4000, domain, 6);
  auto plain = Kde::Create(sample, 0.1, domain);
  auto corrected = Kde::Create(sample, 0.1, domain, Kernel(),
                               BoundaryPolicy::kBoundaryKernel);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(corrected.ok());
  // The true density is 1. At the boundary the plain estimator sees only
  // half the mass (≈ 0.5); the boundary kernel restores ≈ 1.
  EXPECT_NEAR(plain->Density(0.0), 0.5, 0.1);
  EXPECT_NEAR(corrected->Density(0.0), 1.0, 0.15);
  EXPECT_NEAR(corrected->Density(0.05), 1.0, 0.15);
  // Interior agrees between the two.
  EXPECT_NEAR(corrected->Density(0.5), plain->Density(0.5), 1e-12);
}

TEST(KdeTest, ReflectionKeepsInteriorUnchanged) {
  const Domain domain = ContinuousDomain(0.0, 1.0);
  const auto sample = UniformSample(300, domain, 7);
  auto plain = Kde::Create(sample, 0.05, domain);
  auto reflected = Kde::Create(sample, 0.05, domain, Kernel(),
                               BoundaryPolicy::kReflection);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(reflected.ok());
  // Points more than one bandwidth from the boundary see no reflected
  // copies.
  EXPECT_DOUBLE_EQ(reflected->Density(0.5), plain->Density(0.5));
  EXPECT_DOUBLE_EQ(reflected->Density(0.2), plain->Density(0.2));
}

TEST(KdeTest, DensityIsNonNegativeEverywhere) {
  const Domain domain = ContinuousDomain(0.0, 1.0);
  const auto sample = UniformSample(100, domain, 8);
  for (BoundaryPolicy policy :
       {BoundaryPolicy::kNone, BoundaryPolicy::kReflection,
        BoundaryPolicy::kBoundaryKernel}) {
    auto kde = Kde::Create(sample, 0.07, domain, Kernel(), policy);
    ASSERT_TRUE(kde.ok());
    for (double x = 0.0; x <= 1.0; x += 0.01) {
      EXPECT_GE(kde->Density(x), 0.0) << BoundaryPolicyName(policy);
    }
  }
}

TEST(KdeTest, ApproximatesTrueDensity) {
  // Large uniform sample: f̂ ≈ 1 in the interior.
  const Domain domain = ContinuousDomain(0.0, 1.0);
  const auto sample = UniformSample(20000, domain, 9);
  auto kde = Kde::Create(sample, 0.05, domain);
  ASSERT_TRUE(kde.ok());
  for (double x : {0.2, 0.35, 0.5, 0.65, 0.8}) {
    EXPECT_NEAR(kde->Density(x), 1.0, 0.08);
  }
}

TEST(KdeTest, BoundaryPolicyNames) {
  EXPECT_STREQ(BoundaryPolicyName(BoundaryPolicy::kNone), "none");
  EXPECT_STREQ(BoundaryPolicyName(BoundaryPolicy::kReflection), "reflection");
  EXPECT_STREQ(BoundaryPolicyName(BoundaryPolicy::kBoundaryKernel),
               "boundary-kernel");
}

}  // namespace
}  // namespace selest
