#include "src/util/stats.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

TEST(StatsTest, MeanOfKnownValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
}

TEST(StatsTest, MeanOfSingleValue) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(Mean(v), 42.0);
}

TEST(StatsTest, SampleVarianceOfKnownValues) {
  // Var of {2, 4, 4, 4, 5, 5, 7, 9} around mean 5: sum sq = 32, /7.
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(SampleVariance(v), 32.0 / 7.0, 1e-12);
}

TEST(StatsTest, StddevIsSqrtOfVariance) {
  const std::vector<double> v{1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(SampleStddev(v), std::sqrt(SampleVariance(v)));
}

TEST(StatsTest, QuantileEndpoints) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.0);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.75), 7.5);
}

TEST(StatsTest, QuantileSortedMatchesQuantile) {
  const std::vector<double> sorted{1.0, 2.0, 5.0, 9.0};
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(QuantileSorted(sorted, q), Quantile(sorted, q));
  }
}

TEST(StatsTest, InterquartileRangeOfUniformGrid) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(i);
  EXPECT_NEAR(InterquartileRange(v), 50.0, 1e-9);
}

TEST(StatsTest, NormalScaleSigmaOnGaussianDataNearSigma) {
  Rng rng(5);
  std::vector<double> v(20000);
  for (double& x : v) x = 3.0 * rng.NextGaussian();
  // Both the stddev and IQR/1.348 estimate sigma = 3; the min is close too.
  EXPECT_NEAR(NormalScaleSigma(v), 3.0, 0.1);
}

TEST(StatsTest, NormalScaleSigmaZeroForConstantData) {
  const std::vector<double> v{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(NormalScaleSigma(v), 0.0);
}

TEST(StatsTest, NormalScaleSigmaFallsBackToStddevWhenIqrCollapses) {
  // 90% duplicates: IQR = 0 but stddev > 0.
  std::vector<double> v(100, 1.0);
  v[0] = 0.0;
  v[99] = 2.0;
  EXPECT_GT(NormalScaleSigma(v), 0.0);
}

TEST(StatsTest, NormalScaleSigmaTakesMinimum) {
  // Heavy-tailed data: stddev inflated, IQR robust — min should be the IQR
  // estimate.
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 10);
  v.push_back(1e6);  // outlier
  const double iqr_estimate = InterquartileRange(v) / 1.348;
  EXPECT_DOUBLE_EQ(NormalScaleSigma(v), iqr_estimate);
}

TEST(StatsTest, SummarizeMatchesDirectComputation) {
  const std::vector<double> v{4.0, -1.0, 7.5, 2.0};
  const Summary s = Summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, -1.0);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
  EXPECT_DOUBLE_EQ(s.mean, Mean(v));
  EXPECT_NEAR(s.stddev, SampleStddev(v), 1e-12);
}

TEST(StatsTest, SummarizeEmptyIsZeroed) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatsTest, RunningStatMatchesBatch) {
  const std::vector<double> v{1.5, -2.0, 8.0, 3.25, 0.0};
  RunningStat stat;
  for (double x : v) stat.Add(x);
  EXPECT_EQ(stat.count(), v.size());
  EXPECT_NEAR(stat.mean(), Mean(v), 1e-12);
  EXPECT_NEAR(stat.variance(), SampleVariance(v), 1e-12);
}

TEST(StatsTest, RunningStatSingleValue) {
  RunningStat stat;
  stat.Add(3.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(StatsTest, RunningStatEmpty) {
  const RunningStat stat;
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.stddev(), 0.0);
}

TEST(TryStatsTest, MatchesAbortingFormsOnValidInput) {
  const std::vector<double> v{1.5, -2.0, 8.0, 3.25, 0.0};
  EXPECT_EQ(TryMean(v).value(), Mean(v));
  EXPECT_EQ(TrySampleVariance(v).value(), SampleVariance(v));
  EXPECT_EQ(TrySampleStddev(v).value(), SampleStddev(v));
  EXPECT_EQ(TryQuantile(v, 0.5).value(), Quantile(v, 0.5));
  EXPECT_EQ(TryInterquartileRange(v).value(), InterquartileRange(v));
}

TEST(TryStatsTest, EmptyInputIsInvalidArgument) {
  const std::vector<double> empty;
  EXPECT_EQ(TryMean(empty).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(TryQuantile(empty, 0.5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TryQuantileSorted(empty, 0.5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TryInterquartileRange(empty).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TryStatsTest, VarianceNeedsTwoValues) {
  const std::vector<double> one{4.0};
  EXPECT_FALSE(TrySampleVariance(one).ok());
  EXPECT_FALSE(TrySampleStddev(one).ok());
  EXPECT_FALSE(TrySampleVariance({}).ok());
}

TEST(TryStatsTest, QuantileRejectsOutOfRangeAndNanQ) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_FALSE(TryQuantile(v, -0.1).ok());
  EXPECT_FALSE(TryQuantile(v, 1.1).ok());
  EXPECT_FALSE(TryQuantile(v, std::numeric_limits<double>::quiet_NaN()).ok());
  EXPECT_TRUE(TryQuantile(v, 0.0).ok());
  EXPECT_TRUE(TryQuantile(v, 1.0).ok());
}

}  // namespace
}  // namespace selest
