#include "src/est/average_shifted_histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/est/equi_width_histogram.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 10.0);

TEST(AshTest, RejectsBadInput) {
  const std::vector<double> sample{1.0};
  EXPECT_FALSE(AverageShiftedHistogram::Create(sample, kDomain, 0, 10).ok());
  EXPECT_FALSE(AverageShiftedHistogram::Create(sample, kDomain, 5, 0).ok());
  EXPECT_FALSE(AverageShiftedHistogram::Create({}, kDomain, 5, 10).ok());
}

TEST(AshTest, OneShiftEqualsPlainEquiWidth) {
  Rng rng(1);
  std::vector<double> sample(200);
  for (double& x : sample) x = 10.0 * rng.NextDouble();
  auto ash = AverageShiftedHistogram::Create(sample, kDomain, 8, 1);
  auto ewh = EquiWidthHistogram::Create(sample, kDomain, 8);
  ASSERT_TRUE(ash.ok());
  ASSERT_TRUE(ewh.ok());
  for (double a = 0.0; a < 9.0; a += 0.7) {
    EXPECT_DOUBLE_EQ(ash->EstimateSelectivity(a, a + 1.0),
                     ewh->EstimateSelectivity(a, a + 1.0));
  }
}

TEST(AshTest, FullDomainSelectivityIsOne) {
  Rng rng(2);
  std::vector<double> sample(300);
  for (double& x : sample) x = 10.0 * rng.NextDouble();
  auto ash = AverageShiftedHistogram::Create(sample, kDomain, 10, 10);
  ASSERT_TRUE(ash.ok());
  EXPECT_NEAR(ash->EstimateSelectivity(0.0, 10.0), 1.0, 1e-12);
}

TEST(AshTest, SmoothsBinBoundaryJumps) {
  // A point mass near a bin boundary: the plain histogram's estimate for a
  // query ending just past the boundary jumps; ASH transitions gradually.
  std::vector<double> sample(100, 5.05);
  auto ash = AverageShiftedHistogram::Create(sample, kDomain, 10, 10);
  auto ewh = EquiWidthHistogram::Create(sample, kDomain, 10);
  ASSERT_TRUE(ash.ok());
  ASSERT_TRUE(ewh.ok());
  // Plain EWH spreads the mass uniformly over (5, 6]; a query covering
  // [0, 5.5] gets exactly half.
  EXPECT_DOUBLE_EQ(ewh->EstimateSelectivity(0.0, 5.5), 0.5);
  // ASH concentrates the mass nearer its true location (bins containing
  // 5.05 across shifts all start before 5.05), so the same query captures
  // more of it.
  EXPECT_GT(ash->EstimateSelectivity(0.0, 5.5), 0.6);
}

TEST(AshTest, EstimatesUniformDataWell) {
  Rng rng(3);
  std::vector<double> sample(2000);
  for (double& x : sample) x = 10.0 * rng.NextDouble();
  auto ash = AverageShiftedHistogram::Create(sample, kDomain, 20, 10);
  ASSERT_TRUE(ash.ok());
  EXPECT_NEAR(ash->EstimateSelectivity(2.0, 4.0), 0.2, 0.03);
}

TEST(AshTest, AccessorsAndName) {
  const std::vector<double> sample{1.0};
  auto ash = AverageShiftedHistogram::Create(sample, kDomain, 6, 4);
  ASSERT_TRUE(ash.ok());
  EXPECT_EQ(ash->num_bins(), 6);
  EXPECT_EQ(ash->num_shifts(), 4);
  EXPECT_EQ(ash->name(), "ash(6x4)");
}

TEST(AshTest, EstimateWithinUnitInterval) {
  Rng rng(4);
  std::vector<double> sample(100);
  for (double& x : sample) x = 10.0 * rng.NextDouble();
  auto ash = AverageShiftedHistogram::Create(sample, kDomain, 12, 10);
  ASSERT_TRUE(ash.ok());
  for (double a = -2.0; a < 12.0; a += 0.5) {
    const double s = ash->EstimateSelectivity(a, a + 1.5);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

}  // namespace
}  // namespace selest
