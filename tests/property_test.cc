// Property-based sweeps: invariants every selectivity estimator must hold,
// checked for every estimator kind × data shape combination.
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/distribution.h"
#include "src/est/estimator_factory.h"
#include "src/util/random.h"

namespace selest {
namespace {

enum class DataShape { kUniform, kNormal, kExponential, kBimodal, kSpiky };

const char* DataShapeName(DataShape shape) {
  switch (shape) {
    case DataShape::kUniform:
      return "uniform";
    case DataShape::kNormal:
      return "normal";
    case DataShape::kExponential:
      return "exponential";
    case DataShape::kBimodal:
      return "bimodal";
    case DataShape::kSpiky:
      return "spiky";
  }
  return "?";
}

const Domain kDomain = ContinuousDomain(0.0, 1000.0);

std::vector<double> MakeSample(DataShape shape, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample;
  sample.reserve(n);
  while (sample.size() < n) {
    double x = 0.0;
    switch (shape) {
      case DataShape::kUniform:
        x = 1000.0 * rng.NextDouble();
        break;
      case DataShape::kNormal:
        x = 500.0 + 120.0 * rng.NextGaussian();
        break;
      case DataShape::kExponential:
        x = rng.NextExponential(1.0 / 125.0);
        break;
      case DataShape::kBimodal:
        x = (rng.NextDouble() < 0.5 ? 250.0 : 750.0) +
            40.0 * rng.NextGaussian();
        break;
      case DataShape::kSpiky:
        // Ten atoms with geometric masses plus thin background.
        if (rng.NextDouble() < 0.9) {
          x = 100.0 * (1 + static_cast<double>(rng.NextUint64(10)));
        } else {
          x = 1000.0 * rng.NextDouble();
        }
        break;
    }
    if (x >= kDomain.lo && x <= kDomain.hi) sample.push_back(x);
  }
  return sample;
}

using PropertyParam = std::tuple<EstimatorKind, DataShape>;

class EstimatorPropertyTest
    : public ::testing::TestWithParam<PropertyParam> {
 protected:
  std::unique_ptr<SelectivityEstimator> Build(size_t n, uint64_t seed) {
    const auto [kind, shape] = GetParam();
    sample_ = MakeSample(shape, n, seed);
    EstimatorConfig config;
    config.kind = kind;
    auto est = BuildEstimator(sample_, kDomain, config);
    EXPECT_TRUE(est.ok()) << est.status().ToString();
    return est.ok() ? std::move(est).value() : nullptr;
  }

  std::vector<double> sample_;
};

TEST_P(EstimatorPropertyTest, EstimatesAreWithinUnitInterval) {
  auto est = Build(400, 1);
  ASSERT_NE(est, nullptr);
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const double a = kDomain.lo - 100.0 + 1200.0 * rng.NextDouble();
    const double b = a + 600.0 * rng.NextDouble();
    const double s = est->EstimateSelectivity(a, b);
    EXPECT_GE(s, 0.0) << "[" << a << ", " << b << "]";
    EXPECT_LE(s, 1.0) << "[" << a << ", " << b << "]";
  }
}

TEST_P(EstimatorPropertyTest, MonotoneInUpperBound) {
  auto est = Build(400, 3);
  ASSERT_NE(est, nullptr);
  double prev = 0.0;
  for (double b = 0.0; b <= 1000.0; b += 10.0) {
    const double s = est->EstimateSelectivity(0.0, b);
    EXPECT_GE(s, prev - 1e-9) << "b=" << b;
    prev = s;
  }
}

TEST_P(EstimatorPropertyTest, MonotoneUnderRangeInclusion) {
  auto est = Build(400, 4);
  ASSERT_NE(est, nullptr);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double a = 900.0 * rng.NextDouble();
    const double b = a + 100.0 * rng.NextDouble();
    const double widened_a = std::max(kDomain.lo, a - 50.0);
    const double widened_b = std::min(kDomain.hi, b + 50.0);
    EXPECT_LE(est->EstimateSelectivity(a, b),
              est->EstimateSelectivity(widened_a, widened_b) + 1e-9);
  }
}

TEST_P(EstimatorPropertyTest, FullDomainIsNearOne) {
  auto est = Build(800, 6);
  ASSERT_NE(est, nullptr);
  // Sample-based estimators should assign (almost) all mass to the domain;
  // kernel boundary effects can leak a little.
  EXPECT_GT(est->EstimateSelectivity(kDomain.lo, kDomain.hi), 0.9);
}

TEST_P(EstimatorPropertyTest, InvertedRangeIsZero) {
  auto est = Build(100, 7);
  ASSERT_NE(est, nullptr);
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(700.0, 300.0), 0.0);
}

TEST_P(EstimatorPropertyTest, OutsideDomainIsZero) {
  auto est = Build(100, 8);
  ASSERT_NE(est, nullptr);
  EXPECT_NEAR(est->EstimateSelectivity(2000.0, 3000.0), 0.0, 1e-9);
  EXPECT_NEAR(est->EstimateSelectivity(-3000.0, -2000.0), 0.0, 1e-9);
}

TEST_P(EstimatorPropertyTest, NearAdditivityOverSplits) {
  auto est = Build(400, 9);
  ASSERT_NE(est, nullptr);
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const double a = 800.0 * rng.NextDouble();
    const double b = a + 200.0 * rng.NextDouble();
    const double mid = 0.5 * (a + b);
    const double whole = est->EstimateSelectivity(a, b);
    const double split =
        est->EstimateSelectivity(a, mid) + est->EstimateSelectivity(mid, b);
    // Histograms/kernels are exactly additive except for atom double
    // counting exactly at the split point and clamping; allow atoms' mass.
    EXPECT_NEAR(whole, split, 0.15) << "[" << a << ", " << b << "]";
  }
}

TEST_P(EstimatorPropertyTest, DeterministicAcrossRebuilds) {
  auto est1 = Build(300, 11);
  const auto sample_copy = sample_;
  auto est2 = Build(300, 11);
  ASSERT_NE(est1, nullptr);
  ASSERT_NE(est2, nullptr);
  ASSERT_EQ(sample_copy, sample_);
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    const double a = 900.0 * rng.NextDouble();
    const double b = a + 100.0;
    EXPECT_DOUBLE_EQ(est1->EstimateSelectivity(a, b),
                     est2->EstimateSelectivity(a, b));
  }
}

std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string name = EstimatorKindName(std::get<0>(info.param));
  name += "_";
  name += DataShapeName(std::get<1>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllEstimatorsAllShapes, EstimatorPropertyTest,
    ::testing::Combine(
        ::testing::Values(EstimatorKind::kSampling, EstimatorKind::kUniform,
                          EstimatorKind::kEquiWidth, EstimatorKind::kEquiDepth,
                          EstimatorKind::kMaxDiff,
                          EstimatorKind::kAverageShifted,
                          EstimatorKind::kKernel, EstimatorKind::kHybrid,
                          EstimatorKind::kVOptimal,
                          EstimatorKind::kAdaptiveKernel,
                          EstimatorKind::kWavelet),
        ::testing::Values(DataShape::kUniform, DataShape::kNormal,
                          DataShape::kExponential, DataShape::kBimodal,
                          DataShape::kSpiky)),
    ParamName);

// Bandwidth/bin-width sweep: the kernel estimator must stay sane across
// smoothing extremes.
class KernelBandwidthSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(KernelBandwidthSweepTest, EstimatesStayInUnitInterval) {
  const auto sample = MakeSample(DataShape::kNormal, 500, 13);
  EstimatorConfig config;
  config.kind = EstimatorKind::kKernel;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = GetParam();
  auto est = BuildEstimator(sample, kDomain, config);
  ASSERT_TRUE(est.ok());
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    const double a = 1000.0 * rng.NextDouble();
    const double b = a + 500.0 * rng.NextDouble();
    const double s = (*est)->EstimateSelectivity(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, KernelBandwidthSweepTest,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0, 100.0,
                                           1000.0, 5000.0));

// Bin-count sweep for each histogram family.
using BinSweepParam = std::tuple<EstimatorKind, int>;

class HistogramBinSweepTest : public ::testing::TestWithParam<BinSweepParam> {
};

TEST_P(HistogramBinSweepTest, FullDomainMassIsOne) {
  const auto [kind, bins] = GetParam();
  const auto sample = MakeSample(DataShape::kExponential, 600, 15);
  EstimatorConfig config;
  config.kind = kind;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = bins;
  auto est = BuildEstimator(sample, kDomain, config);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR((*est)->EstimateSelectivity(kDomain.lo, kDomain.hi), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    BinCounts, HistogramBinSweepTest,
    ::testing::Combine(::testing::Values(EstimatorKind::kEquiWidth,
                                         EstimatorKind::kEquiDepth,
                                         EstimatorKind::kMaxDiff,
                                         EstimatorKind::kAverageShifted),
                       ::testing::Values(1, 2, 7, 32, 200)),
    [](const ::testing::TestParamInfo<BinSweepParam>& info) {
      std::string name = EstimatorKindName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace selest
