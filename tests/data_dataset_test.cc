#include <cmath>
#include "src/data/dataset.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/data/distribution.h"
#include "src/data/domain.h"
#include "src/util/random.h"

namespace selest {
namespace {

TEST(DatasetTest, StoresValuesAndName) {
  const Dataset d("test", ContinuousDomain(0.0, 10.0), {1.0, 5.0, 3.0});
  EXPECT_EQ(d.name(), "test");
  EXPECT_EQ(d.size(), 3u);
}

TEST(DatasetTest, SortedValuesAreSorted) {
  const Dataset d("t", ContinuousDomain(0.0, 10.0), {5.0, 1.0, 3.0});
  const std::vector<double> expected{1.0, 3.0, 5.0};
  EXPECT_EQ(d.sorted_values(), expected);
}

TEST(DatasetTest, CountDistinct) {
  const Dataset d("t", ContinuousDomain(0.0, 10.0),
                  {1.0, 1.0, 2.0, 2.0, 2.0, 7.0});
  EXPECT_EQ(d.CountDistinct(), 3u);
}

TEST(DatasetTest, CountInRangeInclusive) {
  const Dataset d("t", ContinuousDomain(0.0, 10.0), {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(d.CountInRange(2.0, 3.0), 2u);
  EXPECT_EQ(d.CountInRange(0.0, 10.0), 4u);
  EXPECT_EQ(d.CountInRange(2.5, 2.6), 0u);
  EXPECT_EQ(d.CountInRange(4.0, 4.0), 1u);
}

TEST(DatasetTest, CountInRangeInvertedRangeIsEmpty) {
  const Dataset d("t", ContinuousDomain(0.0, 10.0), {1.0, 2.0});
  EXPECT_EQ(d.CountInRange(3.0, 1.0), 0u);
}

TEST(DatasetTest, CountInRangeMatchesBruteForce) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.NextDouble() * 100.0);
  const Dataset d("t", ContinuousDomain(0.0, 100.0), values);
  for (int trial = 0; trial < 50; ++trial) {
    const double a = rng.NextDouble() * 100.0;
    const double b = a + rng.NextDouble() * (100.0 - a);
    size_t brute = 0;
    for (double v : values) {
      if (v >= a && v <= b) ++brute;
    }
    EXPECT_EQ(d.CountInRange(a, b), brute);
  }
}

TEST(GenerateDatasetTest, ProducesRequestedCount) {
  Rng rng(1);
  const Domain domain = BitDomain(10);
  const UniformDistribution dist(domain.lo, domain.hi);
  const Dataset d = GenerateDataset("u", dist, 5000, domain, rng);
  EXPECT_EQ(d.size(), 5000u);
}

TEST(GenerateDatasetTest, ValuesAreQuantizedAndInDomain) {
  Rng rng(2);
  const Domain domain = BitDomain(8);
  const NormalDistribution dist(128.0, 32.0);
  const Dataset d = GenerateDataset("n", dist, 2000, domain, rng);
  for (double v : d.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 255.0);
    EXPECT_DOUBLE_EQ(v, std::round(v));
  }
}

TEST(GenerateDatasetTest, DiscardsOutOfDomainRecords) {
  Rng rng(3);
  const Domain domain = BitDomain(8);
  // Wide normal: many draws land outside [0, 255] and must be discarded,
  // not clamped — so no pile-up at the boundaries.
  const NormalDistribution dist(128.0, 200.0);
  const Dataset d = GenerateDataset("n", dist, 5000, domain, rng);
  EXPECT_EQ(d.size(), 5000u);
  const size_t at_edges = d.CountInRange(0.0, 0.0) + d.CountInRange(255.0, 255.0);
  // Without discarding, clamping would put ~40% of mass at the two edges.
  EXPECT_LT(at_edges, d.size() / 20);
}

TEST(GenerateDatasetTest, DeterministicForFixedSeed) {
  const Domain domain = BitDomain(10);
  const UniformDistribution dist(domain.lo, domain.hi);
  Rng rng1(77);
  Rng rng2(77);
  const Dataset a = GenerateDataset("a", dist, 100, domain, rng1);
  const Dataset b = GenerateDataset("b", dist, 100, domain, rng2);
  EXPECT_EQ(a.values(), b.values());
}

TEST(DatasetDeathTest, RejectsEmptyValues) {
  EXPECT_DEATH(Dataset("t", ContinuousDomain(0.0, 1.0), {}), "SELEST_CHECK");
}

TEST(DatasetDeathTest, RejectsOutOfDomainValues) {
  EXPECT_DEATH(Dataset("t", ContinuousDomain(0.0, 1.0), {2.0}),
               "SELEST_CHECK");
}

}  // namespace
}  // namespace selest
