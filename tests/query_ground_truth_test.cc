// GroundTruth over normal and empty datasets. The empty case is the
// regression target: Selectivity used to divide by N unguarded, returning
// NaN for an empty dataset (reachable when the referenced Dataset is
// moved from).
#include "src/query/ground_truth.h"

#include <cmath>
#include <utility>

#include <gtest/gtest.h>

namespace selest {
namespace {

TEST(GroundTruthTest, CountsAndSelectivityOnSmallDataset) {
  const Dataset data("t", ContinuousDomain(0.0, 10.0),
                     {1.0, 2.0, 2.0, 5.0, 9.0});
  const GroundTruth truth(data);
  EXPECT_EQ(truth.num_records(), 5u);
  EXPECT_EQ(truth.Count({1.5, 5.0}), 3u);
  EXPECT_DOUBLE_EQ(truth.Selectivity({1.5, 5.0}), 0.6);
  EXPECT_EQ(truth.Count({6.0, 8.0}), 0u);
  EXPECT_DOUBLE_EQ(truth.Selectivity({6.0, 8.0}), 0.0);
  // Inverted ranges are empty by convention.
  EXPECT_EQ(truth.Count({5.0, 1.0}), 0u);
}

TEST(GroundTruthTest, EmptyDatasetSelectivityIsZeroNotNaN) {
  Dataset data("t", ContinuousDomain(0.0, 10.0), {1.0, 2.0, 3.0});
  const GroundTruth truth(data);
  EXPECT_DOUBLE_EQ(truth.Selectivity({0.0, 10.0}), 1.0);

  // Moving the dataset out from under the GroundTruth leaves a valid empty
  // dataset behind (see Dataset's move contract). The regression: the
  // division by N = 0 must not produce NaN.
  const Dataset stolen = std::move(data);
  EXPECT_EQ(truth.num_records(), 0u);
  EXPECT_EQ(truth.Count({0.0, 10.0}), 0u);
  const double selectivity = truth.Selectivity({0.0, 10.0});
  EXPECT_FALSE(std::isnan(selectivity));
  EXPECT_DOUBLE_EQ(selectivity, 0.0);

  // The moved-to dataset carries the records.
  EXPECT_EQ(stolen.size(), 3u);
  EXPECT_EQ(stolen.CountInRange(0.0, 10.0), 3u);
}

}  // namespace
}  // namespace selest
