#include "src/smoothing/oracle.h"

#include <cmath>

#include <gtest/gtest.h>

namespace selest {
namespace {

TEST(OracleTest, FindsConvexMinimum) {
  const auto objective = [](double h) { return (h - 3.0) * (h - 3.0); };
  EXPECT_NEAR(FindOptimalSmoothing(objective, 0.1, 100.0), 3.0, 0.01);
}

TEST(OracleTest, FindsAmiseShapedMinimum) {
  // The typical AMISE shape: c1/h + c2 h⁴, minimized at (c1/(4c2))^(1/5).
  const auto objective = [](double h) {
    return 2.0 / h + 0.5 * h * h * h * h;
  };
  const double expected = std::pow(2.0 / (4.0 * 0.5), 0.2);
  EXPECT_NEAR(FindOptimalSmoothing(objective, 1e-3, 1e3), expected, 0.01);
}

TEST(OracleTest, WithoutRefinementUsesGridWinner) {
  const auto objective = [](double h) { return std::fabs(h - 8.0); };
  OracleSearchOptions options;
  options.refine = false;
  options.grid_steps = 200;
  const double h = FindOptimalSmoothing(objective, 1.0, 64.0, options);
  EXPECT_NEAR(h, 8.0, 0.5);
}

TEST(OracleTest, HandlesPlateaus) {
  // Flat objective: any answer in range is acceptable; must not crash or
  // leave the interval.
  const auto objective = [](double) { return 1.0; };
  const double h = FindOptimalSmoothing(objective, 0.5, 2.0);
  EXPECT_GE(h, 0.5);
  EXPECT_LE(h, 2.0);
}

TEST(OracleBinCountTest, FindsExactInteger) {
  const auto objective = [](int k) {
    return static_cast<double>((k - 17) * (k - 17));
  };
  EXPECT_EQ(FindOptimalBinCount(objective, 1, 200), 17);
}

TEST(OracleBinCountTest, SingleCandidate) {
  const auto objective = [](int) { return 1.0; };
  EXPECT_EQ(FindOptimalBinCount(objective, 5, 5), 5);
}

TEST(OracleBinCountTest, LargeRangeUsesGeometricStride) {
  // Minimum at a large k: the geometric scan must still get close (within
  // ~5% since strides grow by 5%).
  const auto objective = [](int k) {
    return std::fabs(static_cast<double>(k) - 1000.0);
  };
  const int best = FindOptimalBinCount(objective, 1, 4000);
  EXPECT_NEAR(best, 1000, 55);
}

TEST(OracleBinCountTest, DenseScanBelow64) {
  // Every k <= 64 is visited exactly, so small minima are found exactly.
  const auto objective = [](int k) {
    return k == 41 ? 0.0 : 1.0;
  };
  EXPECT_EQ(FindOptimalBinCount(objective, 1, 500), 41);
}

}  // namespace
}  // namespace selest
