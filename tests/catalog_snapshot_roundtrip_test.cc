// Snapshot round-trip bit-identity: every estimator type, serialized and
// reloaded, must answer every query with exactly the bits the original
// instance produces. This is the correctness keystone of the serving
// catalog — it is what lets a snapshot-loaded estimator substitute for a
// cold-built one anywhere, including in the determinism-contract sweeps.
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/est/estimator_snapshot.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

constexpr size_t kSampleSize = 512;
constexpr size_t kNumQueries = 1000;

enum class DataShape { kUniform, kNormal, kExponential };

const char* ShapeName(DataShape shape) {
  switch (shape) {
    case DataShape::kUniform: return "uniform";
    case DataShape::kNormal: return "normal";
    case DataShape::kExponential: return "exponential";
  }
  return "?";
}

std::vector<double> MakeSample(DataShape shape, const Domain& domain,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample;
  sample.reserve(kSampleSize);
  while (sample.size() < kSampleSize) {
    double v = 0.0;
    switch (shape) {
      case DataShape::kUniform:
        v = domain.lo + rng.NextDouble() * domain.width();
        break;
      case DataShape::kNormal:
        v = domain.lo + domain.width() * (0.5 + 0.15 * rng.NextGaussian());
        break;
      case DataShape::kExponential:
        v = domain.lo + domain.width() * 0.2 * rng.NextExponential(1.0);
        break;
    }
    if (!domain.Contains(v)) continue;
    sample.push_back(domain.Quantize(v));
  }
  return sample;
}

std::vector<RangeQuery> MakeQueries(const Domain& domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<RangeQuery> queries;
  queries.reserve(kNumQueries);
  for (size_t i = 0; i < kNumQueries; ++i) {
    double a = domain.lo + rng.NextDouble() * domain.width();
    double b = domain.lo + rng.NextDouble() * domain.width();
    if (b < a) std::swap(a, b);
    queries.push_back(RangeQuery{a, b});
  }
  return queries;
}

// One config per estimator kind, exercising the non-default knobs the
// snapshot must carry (boundary policy, plug-in smoothing, shift counts).
struct NamedConfig {
  std::string label;
  EstimatorConfig config;
};

std::vector<NamedConfig> AllConfigs() {
  std::vector<NamedConfig> configs;
  auto add = [&](std::string label, EstimatorKind kind,
                 auto... tweak) {
    EstimatorConfig config;
    config.kind = kind;
    (tweak(config), ...);
    configs.push_back({std::move(label), config});
  };
  add("uniform", EstimatorKind::kUniform);
  add("sampling", EstimatorKind::kSampling);
  add("equi_width", EstimatorKind::kEquiWidth);
  add("equi_depth", EstimatorKind::kEquiDepth);
  add("max_diff", EstimatorKind::kMaxDiff);
  add("v_optimal", EstimatorKind::kVOptimal,
      [](EstimatorConfig& c) {
        c.smoothing = SmoothingRule::kFixed;
        c.fixed_smoothing = 24;
      });
  add("wavelet", EstimatorKind::kWavelet,
      [](EstimatorConfig& c) {
        c.smoothing = SmoothingRule::kFixed;
        c.fixed_smoothing = 32;
      });
  add("ash", EstimatorKind::kAverageShifted,
      [](EstimatorConfig& c) { c.ash_shifts = 10; });
  add("kernel", EstimatorKind::kKernel,
      [](EstimatorConfig& c) {
        c.smoothing = SmoothingRule::kDirectPlugIn;
        c.boundary = BoundaryPolicy::kBoundaryKernel;
      });
  add("adaptive_kernel", EstimatorKind::kAdaptiveKernel);
  add("hybrid", EstimatorKind::kHybrid,
      [](EstimatorConfig& c) { c.boundary = BoundaryPolicy::kBoundaryKernel; });
  add("feedback", EstimatorKind::kFeedback);
  add("reconstructed", EstimatorKind::kReconstructed);
  add("online_learning", EstimatorKind::kOnlineLearning);
  return configs;
}

void ExpectBitIdentical(const SelectivityEstimator& original,
                        const SelectivityEstimator& reloaded,
                        const Domain& domain, const std::string& context) {
  const std::vector<RangeQuery> queries = MakeQueries(domain, /*seed=*/7);
  for (size_t i = 0; i < queries.size(); ++i) {
    const double expected = original.EstimateSelectivity(queries[i]);
    const double actual = reloaded.EstimateSelectivity(queries[i]);
    // Bit identity, not approximate equality: snapshots restore derived
    // state verbatim, so even the rounding must match.
    ASSERT_EQ(expected, actual)
        << context << " query " << i << " [" << queries[i].a << ", "
        << queries[i].b << "]";
    if (std::signbit(expected) != std::signbit(actual)) {
      FAIL() << context << " sign mismatch at query " << i;
    }
  }
  EXPECT_EQ(original.name(), reloaded.name()) << context;
  EXPECT_EQ(original.StorageBytes(), reloaded.StorageBytes()) << context;
}

std::unique_ptr<SelectivityEstimator> RoundTrip(
    const SelectivityEstimator& estimator, const std::string& context) {
  auto bytes = SnapshotEstimator(estimator);
  EXPECT_TRUE(bytes.ok()) << context << ": " << bytes.status().ToString();
  if (!bytes.ok()) return nullptr;
  auto reloaded = LoadEstimatorSnapshot(bytes.value());
  EXPECT_TRUE(reloaded.ok()) << context << ": "
                             << reloaded.status().ToString();
  if (!reloaded.ok()) return nullptr;
  return std::move(reloaded).value();
}

class SnapshotRoundTripTest : public testing::TestWithParam<DataShape> {};

TEST_P(SnapshotRoundTripTest, EveryFactoryKindIsBitIdentical) {
  const Domain domain = BitDomain(16);
  const std::vector<double> sample = MakeSample(GetParam(), domain, 99);
  for (const NamedConfig& named : AllConfigs()) {
    const std::string context =
        std::string(ShapeName(GetParam())) + "/" + named.label;
    auto built = BuildEstimator(sample, domain, named.config);
    ASSERT_TRUE(built.ok()) << context << ": " << built.status().ToString();
    auto reloaded = RoundTrip(*built.value(), context);
    ASSERT_NE(reloaded, nullptr) << context;
    ExpectBitIdentical(*built.value(), *reloaded, domain, context);
  }
}

TEST_P(SnapshotRoundTripTest, GuardedChainIsBitIdentical) {
  const Domain domain = BitDomain(16);
  const std::vector<double> sample = MakeSample(GetParam(), domain, 99);
  EstimatorConfig primary;
  primary.kind = EstimatorKind::kKernel;
  auto built = BuildGuardedEstimator(sample, domain, primary);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->primary_status.ok());
  const std::string context =
      std::string(ShapeName(GetParam())) + "/guarded";
  auto reloaded = RoundTrip(*built->estimator, context);
  ASSERT_NE(reloaded, nullptr);
  ExpectBitIdentical(*built->estimator, *reloaded, domain, context);
}

INSTANTIATE_TEST_SUITE_P(AllShapes, SnapshotRoundTripTest,
                         testing::Values(DataShape::kUniform,
                                         DataShape::kNormal,
                                         DataShape::kExponential),
                         [](const auto& info) {
                           return ShapeName(info.param);
                         });

// The continuous-domain path (no quantization) must round-trip too — the
// snapshot carries the discrete flag and bit count.
TEST(SnapshotRoundTripTest, ContinuousDomainRoundTrips) {
  const Domain domain = ContinuousDomain(-3.5, 12.25);
  const std::vector<double> sample =
      MakeSample(DataShape::kNormal, domain, 123);
  for (const NamedConfig& named : AllConfigs()) {
    auto built = BuildEstimator(sample, domain, named.config);
    ASSERT_TRUE(built.ok()) << named.label;
    auto reloaded = RoundTrip(*built.value(), named.label);
    ASSERT_NE(reloaded, nullptr) << named.label;
    ExpectBitIdentical(*built.value(), *reloaded, domain, named.label);
  }
}

// Feedback-family estimators must round-trip their *learned* state, not
// just the sample-built prior: observations change the masses/weights and
// the observation counters, and a reload must reproduce both bit-exactly
// (otherwise the catalog write-back path would silently reset learning).
TEST(SnapshotRoundTripTest, TrainedFeedbackStateRoundTrips) {
  const Domain domain = ContinuousDomain(0.0, 100.0);
  const std::vector<double> sample =
      MakeSample(DataShape::kNormal, domain, 77);
  Rng rng(41);
  for (EstimatorKind kind :
       {EstimatorKind::kFeedback, EstimatorKind::kReconstructed,
        EstimatorKind::kOnlineLearning}) {
    EstimatorConfig config;
    config.kind = kind;
    auto built = BuildEstimator(sample, domain, config);
    ASSERT_TRUE(built.ok()) << EstimatorKindName(kind);
    SelectivityEstimator& estimator = *built.value();
    ASSERT_TRUE(estimator.SupportsFeedback()) << EstimatorKindName(kind);
    for (int i = 0; i < 32; ++i) {
      double a = domain.lo + rng.NextDouble() * domain.width();
      double b = domain.lo + rng.NextDouble() * domain.width();
      if (b < a) std::swap(a, b);
      if (a == b) continue;
      ASSERT_TRUE(
          estimator.ObserveTrueSelectivity({a, b}, rng.NextDouble()).ok())
          << EstimatorKindName(kind);
    }
    const std::string context =
        std::string("trained/") + EstimatorKindName(kind);
    auto reloaded = RoundTrip(estimator, context);
    ASSERT_NE(reloaded, nullptr) << context;
    ExpectBitIdentical(estimator, *reloaded, domain, context);
    EXPECT_EQ(estimator.feedback_observations(),
              reloaded->feedback_observations())
        << context;
  }
}

// A guarded chain that degraded at build time (impossible primary) still
// snapshots: the persisted chain reproduces the fallback's answers.
TEST(SnapshotRoundTripTest, DegradedGuardedChainRoundTrips) {
  const Domain domain = BitDomain(12);
  const std::vector<double> sample =
      MakeSample(DataShape::kUniform, domain, 5);
  EstimatorConfig broken;
  broken.kind = EstimatorKind::kEquiWidth;
  broken.smoothing = SmoothingRule::kFixed;
  broken.fixed_smoothing =
      std::numeric_limits<double>::quiet_NaN();  // cannot build
  auto built = BuildGuardedEstimator(sample, domain, broken);
  ASSERT_TRUE(built.ok());
  EXPECT_FALSE(built->primary_status.ok());
  auto reloaded = RoundTrip(*built->estimator, "degraded-guarded");
  ASSERT_NE(reloaded, nullptr);
  ExpectBitIdentical(*built->estimator, *reloaded, domain,
                     "degraded-guarded");
}

}  // namespace
}  // namespace selest
