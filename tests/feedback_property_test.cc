// Property tests for the query-feedback update law (DESIGN.md §14),
// shared across every query-driven estimator:
//
//   - estimates stay in [0, 1] under arbitrary (including adversarial)
//     queries, before and after any feedback history;
//   - feedback at the fixed point (observed == estimated) is idempotent;
//   - the learned state is insensitive to observation order once the
//     stream has been seen a few times (documented tolerance below);
//   - the regret/observation counters are monotone non-decreasing.
#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/feedback/feedback_histogram.h"
#include "src/feedback/reconstructed_distribution.h"
#include "src/online/online_learning.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

const EstimatorKind kFeedbackKinds[] = {
    EstimatorKind::kFeedback,
    EstimatorKind::kReconstructed,
    EstimatorKind::kOnlineLearning,
};

std::unique_ptr<SelectivityEstimator> BuildKind(EstimatorKind kind,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample(400);
  for (double& v : sample) {
    v = std::clamp(50.0 + 12.0 * rng.NextGaussian(), kDomain.lo, kDomain.hi);
  }
  EstimatorConfig config;
  config.kind = kind;
  auto built = BuildEstimator(sample, kDomain, config);
  EXPECT_TRUE(built.ok()) << EstimatorKindName(kind) << ": "
                          << built.status().ToString();
  return built.ok() ? std::move(built).value() : nullptr;
}

// A consistent feedback stream: truths computed from one fixed density, so
// different observation orders describe the same distribution.
struct Observation {
  RangeQuery query;
  double truth = 0.0;
};

std::vector<Observation> ConsistentStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Observation> stream;
  stream.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double center = kDomain.lo + rng.NextDouble() * kDomain.width();
    const double half = (0.02 + 0.08 * rng.NextDouble()) * kDomain.width();
    Observation obs;
    obs.query = RangeQuery{kDomain.Clamp(center - half),
                           kDomain.Clamp(center + half)};
    // Truth of [a, b] under the triangular density 2(100−x)/100² on
    // [0, 100]: mass concentrates at the low end, unlike any start state.
    const double lo = obs.query.a / 100.0;
    const double hi = obs.query.b / 100.0;
    obs.truth = (2.0 * (hi - lo)) - (hi * hi - lo * lo);
    stream.push_back(obs);
  }
  return stream;
}

TEST(FeedbackPropertyTest, EstimatesStayInUnitIntervalUnderAdversarialQueries) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const RangeQuery adversarial[] = {
      {nan, 50.0}, {50.0, nan},  {nan, nan},   {inf, -inf}, {-inf, inf},
      {90.0, 10.0}, {42.0, 42.0}, {-1e308, 1e308}, {0.0, 100.0},
  };
  for (EstimatorKind kind : kFeedbackKinds) {
    auto estimator = BuildKind(kind, 5);
    ASSERT_NE(estimator, nullptr);
    Rng rng(11);
    for (int round = 0; round < 50; ++round) {
      for (const RangeQuery& query : adversarial) {
        const double s = estimator->EstimateSelectivity(query);
        EXPECT_TRUE(s >= 0.0 && s <= 1.0)
            << EstimatorKindName(kind) << " round " << round << " ["
            << query.a << ", " << query.b << "] -> " << s;
      }
      // Feed arbitrary (valid) feedback between probes; the invariant must
      // hold through any history.
      double a = kDomain.lo + rng.NextDouble() * kDomain.width();
      double b = kDomain.lo + rng.NextDouble() * kDomain.width();
      if (b < a) std::swap(a, b);
      if (a < b) {
        ASSERT_TRUE(
            estimator->ObserveTrueSelectivity({a, b}, rng.NextDouble()).ok());
      }
    }
  }
}

TEST(FeedbackPropertyTest, InvalidFeedbackIsRejectedNotAbsorbed) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (EstimatorKind kind : kFeedbackKinds) {
    auto estimator = BuildKind(kind, 6);
    ASSERT_NE(estimator, nullptr);
    EXPECT_FALSE(
        estimator->ObserveTrueSelectivity({10.0, 20.0}, nan).ok())
        << EstimatorKindName(kind);
    EXPECT_FALSE(
        estimator->ObserveTrueSelectivity({10.0, 20.0}, -0.25).ok())
        << EstimatorKindName(kind);
    EXPECT_FALSE(
        estimator->ObserveTrueSelectivity({10.0, 20.0}, 1.5).ok())
        << EstimatorKindName(kind);
    EXPECT_EQ(estimator->feedback_observations(), 0u)
        << EstimatorKindName(kind);
  }
}

TEST(FeedbackPropertyTest, FixedPointFeedbackIsIdempotent) {
  // Observing exactly the current estimate must not move future estimates:
  // the update law corrects *error*, and the error is zero. The estimate
  // is compared exactly — all three update laws are no-ops on their mass
  // vectors at zero error (the feedback histogram's renormalization
  // divides by a total it just left unchanged).
  const RangeQuery probes[] = {{5.0, 25.0}, {30.0, 70.0}, {80.0, 99.0}};
  for (EstimatorKind kind : kFeedbackKinds) {
    auto estimator = BuildKind(kind, 7);
    ASSERT_NE(estimator, nullptr);
    // Arbitrary warm-up history first; the property must hold at any state.
    for (const Observation& obs : ConsistentStream(40, 13)) {
      ASSERT_TRUE(
          estimator->ObserveTrueSelectivity(obs.query, obs.truth).ok());
    }
    for (const RangeQuery& query : probes) {
      const double fixed_point = estimator->EstimateSelectivity(query);
      for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(
            estimator->ObserveTrueSelectivity(query, fixed_point).ok());
      }
      EXPECT_EQ(estimator->EstimateSelectivity(query), fixed_point)
          << EstimatorKindName(kind) << " [" << query.a << ", " << query.b
          << "]";
    }
  }
}

TEST(FeedbackPropertyTest, ObservationOrderIsBoundedlyIrrelevant) {
  // Replaying one consistent stream in three different orders (three full
  // passes each, so every order sees every fact after any transient) must
  // land on nearly the same learned state. Tolerance: mean absolute
  // estimate difference over the probe grid below 0.08 — order can matter
  // transiently for the incremental laws (the feedback histogram's last
  // few corrections echo in bins the stream constrains only loosely, worst
  // observed mean difference ~0.06), but three passes over a consistent
  // stream pin the bulk of the mass placement.
  constexpr double kOrderTolerance = 0.08;
  const std::vector<Observation> stream = ConsistentStream(60, 29);
  for (EstimatorKind kind : kFeedbackKinds) {
    std::vector<std::unique_ptr<SelectivityEstimator>> estimators;
    for (int order = 0; order < 3; ++order) {
      estimators.push_back(BuildKind(kind, 9));
      ASSERT_NE(estimators.back(), nullptr);
    }
    std::vector<Observation> forward = stream;
    std::vector<Observation> reverse(stream.rbegin(), stream.rend());
    std::vector<Observation> interleaved;
    for (size_t i = 0; i < stream.size() / 2; ++i) {
      interleaved.push_back(stream[i]);
      interleaved.push_back(stream[stream.size() - 1 - i]);
    }
    const std::vector<Observation>* orders[] = {&forward, &reverse,
                                                &interleaved};
    for (int pass = 0; pass < 3; ++pass) {
      for (int order = 0; order < 3; ++order) {
        for (const Observation& obs : *orders[order]) {
          ASSERT_TRUE(estimators[order]
                          ->ObserveTrueSelectivity(obs.query, obs.truth)
                          .ok());
        }
      }
    }
    double total_diff = 0.0;
    size_t probes = 0;
    for (double a = 0.0; a < 95.0; a += 7.0) {
      for (double width : {5.0, 15.0, 40.0}) {
        const RangeQuery probe{a, std::min(a + width, 100.0)};
        const double base = estimators[0]->EstimateSelectivity(probe);
        for (int order = 1; order < 3; ++order) {
          total_diff +=
              std::abs(estimators[order]->EstimateSelectivity(probe) - base);
          ++probes;
        }
      }
    }
    EXPECT_LT(total_diff / probes, kOrderTolerance) << EstimatorKindName(kind);
  }
}

TEST(FeedbackPropertyTest, ObservationCountersAreMonotone) {
  for (EstimatorKind kind : kFeedbackKinds) {
    auto estimator = BuildKind(kind, 15);
    ASSERT_NE(estimator, nullptr);
    uint64_t previous = estimator->feedback_observations();
    EXPECT_EQ(previous, 0u);
    for (const Observation& obs : ConsistentStream(30, 31)) {
      ASSERT_TRUE(
          estimator->ObserveTrueSelectivity(obs.query, obs.truth).ok());
      const uint64_t current = estimator->feedback_observations();
      EXPECT_EQ(current, previous + 1) << EstimatorKindName(kind);
      previous = current;
    }
  }
}

TEST(FeedbackPropertyTest, CumulativeRegretLossIsMonotoneNonDecreasing) {
  OnlineLearningOptions options;
  auto created = OnlineLearningEstimator::Create(kDomain, options);
  ASSERT_TRUE(created.ok());
  OnlineLearningEstimator estimator = std::move(created).value();
  double previous = estimator.cumulative_loss();
  EXPECT_EQ(previous, 0.0);
  for (const Observation& obs : ConsistentStream(80, 37)) {
    ASSERT_TRUE(estimator.ObserveTrueSelectivity(obs.query, obs.truth).ok());
    const double current = estimator.cumulative_loss();
    EXPECT_GE(current, previous);
    previous = current;
  }
  // The hindsight comparator can never beat a zero-loss bound from below.
  EXPECT_GE(estimator.BestFixedHindsightLoss(), 0.0);
  EXPECT_GE(estimator.window_loss(), 0.0);
  EXPECT_LE(estimator.window_loss(), estimator.cumulative_loss() + 1e-12);
}

}  // namespace
}  // namespace selest
