// The serving catalog: cache/snapshot/rebuild resolution, counters, LRU
// eviction, the warmed-sweep eval entry point, and thread safety of the
// serve path (run under tsan via the `catalog` label).
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/catalog/serving_cache.h"
#include "src/catalog/statistics_catalog.h"
#include "src/data/dataset.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/eval/parallel_experiment.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

// A per-test snapshot directory, cleared up front so state persisted by a
// previous run (snapshots survive on purpose) cannot skew the counters.
std::string FreshDir(const std::string& name) {
  // Suffixed with the pid: each gtest case runs as its own ctest process,
  // and concurrent cases of the same binary must not share a directory.
  const std::string dir =
      testing::TempDir() + name + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<double> MakeSample(size_t n, const Domain& domain,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample;
  sample.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sample.push_back(
        domain.Quantize(domain.lo + rng.NextDouble() * domain.width()));
  }
  return sample;
}

EstimatorConfig ConfigWithBins(int bins) {
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = bins;
  return config;
}

TEST(CatalogKeyTest, FingerprintSeparatesConfigs) {
  EstimatorConfig a = ConfigWithBins(16);
  EstimatorConfig b = ConfigWithBins(17);
  EXPECT_NE(FingerprintConfig(a), FingerprintConfig(b));
  EXPECT_EQ(FingerprintConfig(a), FingerprintConfig(a));
  EstimatorConfig kernel;
  kernel.kind = EstimatorKind::kKernel;
  EstimatorConfig kernel_boundary = kernel;
  kernel_boundary.boundary = BoundaryPolicy::kNone;
  EXPECT_NE(FingerprintConfig(kernel), FingerprintConfig(kernel_boundary));
}

TEST(CatalogServingTest, MemoryOnlyCatalogServesAndCounts) {
  const Domain domain = BitDomain(12);
  const std::vector<double> sample = MakeSample(512, domain, 1);
  Catalog catalog;  // no snapshot directory: memory-only
  EXPECT_EQ(catalog.store(), nullptr);
  auto key = catalog.RegisterColumn("lineitem", "price", domain, sample,
                                    ConfigWithBins(32));
  ASSERT_TRUE(key.ok());

  const RangeQuery query{100.0, 900.0};
  auto first = catalog.Estimate(key.value(), query);
  ASSERT_TRUE(first.ok());
  auto second = catalog.Estimate(key.value(), query);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());

  const CatalogServeStats stats = catalog.serve_stats();
  EXPECT_EQ(stats.estimates, 2u);
  EXPECT_EQ(stats.rebuilds, 1u);  // built once, served from cache after
  EXPECT_EQ(stats.writebacks, 0u);
  EXPECT_EQ(stats.snapshot_loads, 0u);
  EXPECT_EQ(catalog.cache_stats().hits, 1u);
  EXPECT_EQ(catalog.cache_stats().misses, 1u);
}

TEST(CatalogServingTest, ServesByRelationAttributeDefaultKey) {
  const Domain domain = BitDomain(10);
  const std::vector<double> sample = MakeSample(256, domain, 2);
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterColumn("part", "size", domain, sample,
                                  ConfigWithBins(8))
                  .ok());
  EXPECT_TRUE(catalog.Estimate("part", "size", RangeQuery{0.0, 512.0}).ok());
  auto missing = catalog.Estimate("part", "weight", RangeQuery{0.0, 1.0});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(CatalogServingTest, UnregisteredKeyIsNotFound) {
  Catalog catalog;
  CatalogKey key{"ghost", "column", 42};
  EXPECT_EQ(catalog.GetEstimator(key).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.Estimate(key, RangeQuery{0.0, 1.0}).status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogServingTest, EmptyNamesAreInvalidArgument) {
  const Domain domain = BitDomain(8);
  const std::vector<double> sample = MakeSample(64, domain, 3);
  Catalog catalog;
  EXPECT_EQ(catalog.RegisterColumn("", "x", domain, sample, {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.RegisterColumn("t", "", domain, sample, {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogServingTest, SecondCatalogServesFromSnapshotsNotRebuilds) {
  const std::string dir = FreshDir("selest_warm_catalog");
  const Domain domain = BitDomain(12);
  const std::vector<double> sample = MakeSample(512, domain, 4);
  std::vector<EstimatorConfig> configs{ConfigWithBins(16), ConfigWithBins(64)};
  EstimatorConfig kernel;
  kernel.kind = EstimatorKind::kKernel;
  configs.push_back(kernel);

  std::vector<CatalogKey> keys;
  std::vector<double> cold_estimates;
  {
    Catalog cold(CatalogOptions{dir});
    for (const EstimatorConfig& config : configs) {
      auto key = cold.RegisterColumn("orders", "total", domain, sample, config);
      ASSERT_TRUE(key.ok());
      keys.push_back(key.value());
    }
    ASSERT_TRUE(cold.WarmAll().ok());
    EXPECT_EQ(cold.serve_stats().rebuilds, configs.size());
    EXPECT_EQ(cold.serve_stats().writebacks, configs.size());
    for (const CatalogKey& key : keys) {
      auto estimate = cold.Estimate(key, RangeQuery{50.0, 1000.0});
      ASSERT_TRUE(estimate.ok());
      cold_estimates.push_back(estimate.value());
    }
  }

  Catalog warm(CatalogOptions{dir});
  for (const EstimatorConfig& config : configs) {
    ASSERT_TRUE(
        warm.RegisterColumn("orders", "total", domain, sample, config).ok());
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    auto estimate = warm.Estimate(keys[i], RangeQuery{50.0, 1000.0});
    ASSERT_TRUE(estimate.ok());
    // Snapshot-served estimates are bit-identical to the cold build's.
    EXPECT_EQ(estimate.value(), cold_estimates[i]) << i;
  }
  EXPECT_EQ(warm.serve_stats().snapshot_loads, keys.size());
  EXPECT_EQ(warm.serve_stats().rebuilds, 0u);
}

TEST(CatalogServingTest, LruEvictsBeyondCapacity) {
  const Domain domain = BitDomain(10);
  const std::vector<double> sample = MakeSample(256, domain, 5);
  CatalogOptions options;
  options.cache_capacity = 4;
  options.cache_shards = 8;  // clamped so 4 entries can actually evict
  Catalog catalog(options);
  std::vector<CatalogKey> keys;
  for (int bins = 8; bins < 8 + 12; ++bins) {
    auto key = catalog.RegisterColumn("t", "x", domain, sample,
                                      ConfigWithBins(bins));
    ASSERT_TRUE(key.ok());
    keys.push_back(key.value());
  }
  for (const CatalogKey& key : keys) {
    ASSERT_TRUE(catalog.Estimate(key, RangeQuery{0.0, 100.0}).ok());
  }
  const CacheStats stats = catalog.cache_stats();
  EXPECT_LE(stats.resident_entries, 4u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.resident_entries + stats.evictions, keys.size());
  // Evicted keys are still servable (rebuilt or re-read), just slower.
  ASSERT_TRUE(catalog.Estimate(keys.front(), RangeQuery{0.0, 100.0}).ok());
}

TEST(CatalogServingTest, ServingCacheTracksBytesAndReplacement) {
  const Domain domain = BitDomain(10);
  const std::vector<double> sample = MakeSample(128, domain, 6);
  auto build = [&](int bins) -> std::shared_ptr<const SelectivityEstimator> {
    auto estimator = BuildEstimator(sample, domain, ConfigWithBins(bins));
    EXPECT_TRUE(estimator.ok());
    return std::shared_ptr<const SelectivityEstimator>(
        std::move(estimator).value());
  };
  ServingCache cache(/*capacity=*/2, /*num_shards=*/1);
  const CatalogKey a{"t", "a", 1};
  const CatalogKey b{"t", "b", 2};
  auto ea = build(8);
  cache.Insert(a, ea);
  EXPECT_EQ(cache.stats().resident_bytes, ea->StorageBytes());
  auto replacement = build(16);
  cache.Insert(a, replacement);  // replace in place, not a second entry
  EXPECT_EQ(cache.stats().resident_entries, 1u);
  EXPECT_EQ(cache.stats().resident_bytes, replacement->StorageBytes());
  cache.Insert(b, build(8));
  EXPECT_EQ(cache.stats().resident_entries, 2u);
  cache.Erase(a);
  EXPECT_EQ(cache.stats().resident_entries, 1u);
  EXPECT_EQ(cache.Lookup(a), nullptr);
  EXPECT_NE(cache.Lookup(b), nullptr);
}

TEST(CatalogServingTest, ServedSweepMatchesParallelSweepBitForBit) {
  const Domain domain = BitDomain(12);
  Rng rng(2026);
  std::vector<double> values;
  for (size_t i = 0; i < 20000; ++i) {
    values.push_back(domain.Quantize(rng.NextDouble() * domain.width()));
  }
  const Dataset data("served-sweep", domain, std::move(values));
  ProtocolConfig protocol;
  protocol.sample_size = 500;
  protocol.num_queries = 200;
  const ExperimentSetup setup = MakeSetup(data, protocol);

  EstimatorConfig ewh;
  EstimatorConfig kernel;
  kernel.kind = EstimatorKind::kKernel;
  EstimatorConfig ash;
  ash.kind = EstimatorKind::kAverageShifted;
  const std::vector<EstimatorConfig> configs{ewh, kernel, ash};

  const auto direct = RunConfigsParallel(setup, configs);

  const std::string dir = FreshDir("selest_served_sweep");
  Catalog catalog(CatalogOptions{dir});
  // Twice through the catalog: the first pass serves cold rebuilds, the
  // second serves cache hits (and disk snapshots through a fresh catalog
  // below) — all three paths must agree bit for bit.
  for (int pass = 0; pass < 2; ++pass) {
    const auto served =
        RunConfigsServed(catalog, "sweep", "v", setup, configs);
    ASSERT_EQ(served.size(), direct.size());
    for (size_t i = 0; i < served.size(); ++i) {
      ASSERT_TRUE(served[i].ok());
      ASSERT_TRUE(direct[i].ok());
      EXPECT_EQ(served[i].value().mean_relative_error,
                direct[i].value().mean_relative_error)
          << "pass " << pass << " config " << i;
      EXPECT_EQ(served[i].value().mean_absolute_error,
                direct[i].value().mean_absolute_error);
      EXPECT_EQ(served[i].value().max_relative_error,
                direct[i].value().max_relative_error);
    }
  }
  EXPECT_EQ(catalog.serve_stats().rebuilds, configs.size());

  Catalog snapshot_served(CatalogOptions{dir});
  const auto from_disk =
      RunConfigsServed(snapshot_served, "sweep", "v", setup, configs);
  for (size_t i = 0; i < from_disk.size(); ++i) {
    ASSERT_TRUE(from_disk[i].ok());
    EXPECT_EQ(from_disk[i].value().mean_relative_error,
              direct[i].value().mean_relative_error);
  }
  EXPECT_EQ(snapshot_served.serve_stats().snapshot_loads, configs.size());
  EXPECT_EQ(snapshot_served.serve_stats().rebuilds, 0u);
}

// The ISSUE's concurrency scenario: 8 threads hammer a 4-entry LRU with a
// mix of hits, misses and evictions. Run under tsan via the `catalog`
// label; correctness here is "no data race, coherent counters, every
// estimate answered".
TEST(CatalogServingTest, ConcurrentMixedHitMissEvictIsSafe) {
  const Domain domain = BitDomain(10);
  const std::vector<double> sample = MakeSample(256, domain, 7);
  CatalogOptions options;
  options.cache_capacity = 4;
  Catalog catalog(options);

  constexpr size_t kColumns = 8;
  std::vector<CatalogKey> keys;
  for (size_t c = 0; c < kColumns; ++c) {
    auto key = catalog.RegisterColumn(
        "rel" + std::to_string(c), "x", domain, sample,
        ConfigWithBins(static_cast<int>(8 + c)));
    ASSERT_TRUE(key.ok());
    keys.push_back(key.value());
  }

  constexpr size_t kThreads = 8;
  constexpr size_t kIterations = 200;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = 0; i < kIterations; ++i) {
        // Each thread walks the keys at a different stride, so at any
        // moment the 8 live keys contend for the 4 cache slots.
        const CatalogKey& key = keys[(t * 3 + i) % kColumns];
        auto estimate = catalog.Estimate(key, RangeQuery{0.0, 768.0});
        if (!estimate.ok() || !(estimate.value() >= 0.0)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(failures.load(), 0u);
  const CatalogServeStats serve = catalog.serve_stats();
  EXPECT_EQ(serve.estimates, kThreads * kIterations);
  const CacheStats cache = catalog.cache_stats();
  EXPECT_LE(cache.resident_entries, 4u);
  EXPECT_GT(cache.evictions, 0u);
  // Every lookup either hit or missed; every miss ended in an insertion.
  EXPECT_EQ(cache.hits + cache.misses, kThreads * kIterations);
  EXPECT_EQ(cache.insertions, cache.misses);
  // Concurrent misses on one key may both insert (the second replaces in
  // place), so insertions can exceed entries-plus-evictions — never trail.
  EXPECT_LE(cache.resident_entries + cache.evictions, cache.insertions);
}

TEST(CatalogServingTest, ConcurrentWarmAndServeWithSnapshots) {
  const std::string dir = FreshDir("selest_concurrent_store");
  const Domain domain = BitDomain(10);
  const std::vector<double> sample = MakeSample(256, domain, 8);
  CatalogOptions options;
  options.snapshot_directory = dir;
  options.cache_capacity = 4;
  Catalog catalog(options);

  std::vector<CatalogKey> keys;
  for (size_t c = 0; c < 6; ++c) {
    auto key = catalog.RegisterColumn("r", "c" + std::to_string(c), domain,
                                      sample, ConfigWithBins(10));
    ASSERT_TRUE(key.ok());
    keys.push_back(key.value());
  }

  std::atomic<size_t> failures{0};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = 0; i < 50; ++i) {
        const CatalogKey& key = keys[(t + i) % keys.size()];
        if (t % 4 == 0 && !catalog.Warm(key).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        if (!catalog.Estimate(key, RangeQuery{0.0, 512.0}).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0u);
  // Every registration ended up persisted.
  for (const CatalogKey& key : keys) {
    EXPECT_TRUE(catalog.store()->Contains(key));
  }
}

}  // namespace
}  // namespace selest
