#include "src/est/equi_depth_histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

TEST(EquiDepthTest, RejectsBadInput) {
  EXPECT_FALSE(EquiDepthHistogram::Create({}, kDomain, 4).ok());
  const std::vector<double> sample{1.0};
  EXPECT_FALSE(EquiDepthHistogram::Create(sample, kDomain, 0).ok());
}

TEST(EquiDepthTest, BinsHoldEqualCounts) {
  std::vector<double> sample;
  for (int i = 1; i <= 100; ++i) sample.push_back(i * 0.9);
  auto est = EquiDepthHistogram::Create(sample, kDomain, 4);
  ASSERT_TRUE(est.ok());
  for (double count : est->bins().counts()) {
    EXPECT_NEAR(count, 25.0, 1.0);
  }
}

TEST(EquiDepthTest, AdaptsToSkew) {
  // 90% of samples in [0, 10]: most bin boundaries land there.
  Rng rng(1);
  std::vector<double> sample;
  for (int i = 0; i < 900; ++i) sample.push_back(10.0 * rng.NextDouble());
  for (int i = 0; i < 100; ++i) {
    sample.push_back(10.0 + 90.0 * rng.NextDouble());
  }
  auto est = EquiDepthHistogram::Create(sample, kDomain, 10);
  ASSERT_TRUE(est.ok());
  int edges_in_dense_region = 0;
  for (double e : est->bins().edges()) {
    if (e <= 10.0) ++edges_in_dense_region;
  }
  EXPECT_GE(edges_in_dense_region, 8);
}

TEST(EquiDepthTest, FullDomainSelectivityIsOne) {
  Rng rng(2);
  std::vector<double> sample(500);
  for (double& x : sample) x = 100.0 * rng.NextDouble();
  auto est = EquiDepthHistogram::Create(sample, kDomain, 8);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 100.0), 1.0, 1e-12);
}

TEST(EquiDepthTest, HeavyDuplicatesCollapseToAtoms) {
  // More copies of one value than a bin holds: quantile edges collapse and
  // the value becomes an atom, still counted exactly once per record.
  std::vector<double> sample(80, 50.0);
  for (int i = 0; i < 20; ++i) sample.push_back(i);
  auto est = EquiDepthHistogram::Create(sample, kDomain, 5);
  ASSERT_TRUE(est.ok());
  // A query covering only the duplicated value captures at least its share.
  EXPECT_GT(est->EstimateSelectivity(49.5, 50.5), 0.5);
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 100.0), 1.0, 1e-12);
}

TEST(EquiDepthTest, ApproximatesUniformSelectivities) {
  Rng rng(3);
  std::vector<double> sample(2000);
  for (double& x : sample) x = 100.0 * rng.NextDouble();
  auto est = EquiDepthHistogram::Create(sample, kDomain, 20);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->EstimateSelectivity(20.0, 40.0), 0.2, 0.03);
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 50.0), 0.5, 0.03);
}

TEST(EquiDepthTest, NameContainsBinCount) {
  const std::vector<double> sample{1.0, 2.0};
  auto est = EquiDepthHistogram::Create(sample, kDomain, 2);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->name(), "equi-depth(2)");
}

}  // namespace
}  // namespace selest
