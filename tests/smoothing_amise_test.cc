#include "src/smoothing/amise.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

namespace selest {
namespace {

TEST(RoughnessTest, GaussianDerivativeRoughness) {
  // For N(0, σ²): R(f') = 1/(4√π σ³).
  const double sigma = 2.0;
  const NormalDistribution d(0.0, sigma);
  const double expected =
      1.0 / (4.0 * std::sqrt(std::numbers::pi) * std::pow(sigma, 3.0));
  EXPECT_NEAR(DensityDerivativeRoughness(d, -10.0 * sigma, 10.0 * sigma),
              expected, 1e-4 * expected);
}

TEST(RoughnessTest, GaussianSecondDerivativeRoughness) {
  // For N(0, σ²): R(f'') = 3/(8√π σ⁵).
  const double sigma = 1.5;
  const NormalDistribution d(0.0, sigma);
  const double expected =
      3.0 / (8.0 * std::sqrt(std::numbers::pi) * std::pow(sigma, 5.0));
  EXPECT_NEAR(DensitySecondDerivativeRoughness(d, -10.0 * sigma, 10.0 * sigma),
              expected, 1e-3 * expected);
}

TEST(RoughnessTest, UniformHasZeroRoughnessInInterior) {
  const UniformDistribution d(0.0, 1.0);
  EXPECT_NEAR(DensityDerivativeRoughness(d, 0.1, 0.9), 0.0, 1e-12);
}

TEST(HistogramAmiseTest, Formula) {
  // AMISE(h) = 1/(nh) + h² R(f')/12.
  EXPECT_DOUBLE_EQ(HistogramAmise(0.5, 100, 2.0),
                   1.0 / 50.0 + 0.25 * 2.0 / 12.0);
}

TEST(HistogramAmiseTest, OptimalBinWidthMinimizesAmise) {
  const size_t n = 1000;
  const double r = 0.8;
  const double h_opt = OptimalBinWidth(n, r);
  const double at_opt = HistogramAmise(h_opt, n, r);
  for (double factor : {0.5, 0.8, 1.25, 2.0}) {
    EXPECT_LT(at_opt, HistogramAmise(h_opt * factor, n, r));
  }
}

TEST(HistogramAmiseTest, OptimalBinWidthFormula) {
  // Equation (7): h = (6/(n R(f')))^(1/3).
  EXPECT_NEAR(OptimalBinWidth(500, 3.0), std::cbrt(6.0 / 1500.0), 1e-12);
}

TEST(HistogramAmiseTest, ConvergenceRateIsNToMinusTwoThirds) {
  const double r = 1.0;
  const double a1 = HistogramAmise(OptimalBinWidth(1000, r), 1000, r);
  const double a8 = HistogramAmise(OptimalBinWidth(8000, r), 8000, r);
  // AMISE scales as n^(−2/3): factor 8 in n → factor 4 in error.
  EXPECT_NEAR(a1 / a8, 4.0, 0.01);
}

TEST(KernelAmiseTest, Formula) {
  const Kernel k;
  const double h = 0.3;
  const size_t n = 200;
  const double r = 1.7;
  const double expected = k.squared_l2_norm() / (n * h) +
                          0.25 * std::pow(h, 4.0) * 0.04 * r;
  EXPECT_NEAR(KernelAmise(h, n, r, k), expected, 1e-12);
}

TEST(KernelAmiseTest, OptimalBandwidthMinimizesAmise) {
  const size_t n = 2000;
  const double r = 0.5;
  const double h_opt = OptimalBandwidth(n, r);
  const double at_opt = KernelAmise(h_opt, n, r);
  for (double factor : {0.5, 0.8, 1.25, 2.0}) {
    EXPECT_LT(at_opt, KernelAmise(h_opt * factor, n, r));
  }
}

TEST(KernelAmiseTest, ConvergenceRateIsNToMinusFourFifths) {
  const double r = 1.0;
  const double a1 = KernelAmise(OptimalBandwidth(1000, r), 1000, r);
  const double a32 = KernelAmise(OptimalBandwidth(32000, r), 32000, r);
  // n^(−4/5): factor 32 in n → factor 16 in error.
  EXPECT_NEAR(a1 / a32, 16.0, 0.05);
}

TEST(KernelAmiseTest, KernelBeatsHistogramAsymptotically) {
  // With Gaussian truth, at equal (large) n the optimal kernel AMISE is
  // lower than the optimal histogram AMISE.
  const NormalDistribution d(0.0, 1.0);
  const double r1 = DensityDerivativeRoughness(d, -10.0, 10.0);
  const double r2 = DensitySecondDerivativeRoughness(d, -10.0, 10.0);
  const size_t n = 10000;
  EXPECT_LT(KernelAmise(OptimalBandwidth(n, r2), n, r2),
            HistogramAmise(OptimalBinWidth(n, r1), n, r1));
}

TEST(KernelAmiseTest, OptimalBandwidthMatchesNormalScaleConstant) {
  // Plugging the Gaussian R(f'') into OptimalBandwidth must reproduce the
  // 2.345·σ·n^(−1/5) constant of §4.2.
  const double sigma = 3.0;
  const NormalDistribution d(0.0, sigma);
  const double r2 = DensitySecondDerivativeRoughness(d, -30.0, 30.0);
  const size_t n = 2000;
  EXPECT_NEAR(OptimalBandwidth(n, r2),
              2.345 * sigma * std::pow(static_cast<double>(n), -0.2),
              0.01 * sigma);
}

}  // namespace
}  // namespace selest
