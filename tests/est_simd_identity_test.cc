// SIMD-vs-scalar bit-identity property suite (the exactness policy of
// DESIGN.md §12 and util/simd.h).
//
// For every estimator the factory can build — the 11 EstimatorKind values
// plus the guarded chain — and for every vector tier this host supports,
// EstimateSelectivityBatch must return *bit-identical* values to the
// per-query scalar path: batch sizes {1, 7, 64, 4096}, misaligned query
// subspans, partial tail blocks, and a query mix including inverted,
// degenerate, out-of-domain, boundary-hugging, narrow, and non-finite
// bounds. EXPECT_EQ on doubles throughout — a 0 ULP bound
// (kSimdUlpTolerance), so the golden-figure pins can never drift with the
// host's SIMD tier.
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/est/estimator_factory.h"
#include "src/est/kernel_estimator.h"
#include "src/query/range_query.h"
#include "src/util/random.h"
#include "src/util/simd.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

std::vector<double> MixtureSample(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample;
  sample.reserve(n);
  while (sample.size() < n) {
    const double u = rng.NextDouble();
    double x;
    if (u < 0.35) {
      x = 20.0 + 7.0 * (rng.NextDouble() + rng.NextDouble() - 1.0);
    } else if (u < 0.7) {
      x = 75.0 + 4.0 * (rng.NextDouble() + rng.NextDouble() - 1.0);
    } else if (u < 0.85) {
      x = 42.0;  // heavy duplication: atom bins in the quantile histograms
    } else {
      x = 100.0 * rng.NextDouble();
    }
    if (x >= kDomain.lo && x <= kDomain.hi) sample.push_back(x);
  }
  return sample;
}

// Adversarial query mix: every scalar control-flow case, including the
// before-clamp early returns and non-finite bounds.
std::vector<RangeQuery> MakeQueries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<RangeQuery> queries(n);
  const double lo = kDomain.lo, w = kDomain.width();
  for (size_t i = 0; i < n; ++i) {
    const double x = lo + w * (1.4 * rng.NextDouble() - 0.2);
    const double y = lo + w * (1.4 * rng.NextDouble() - 0.2);
    RangeQuery& q = queries[i];
    switch (i % 8) {
      case 0:  // regular (possibly partially out of domain)
        q = {std::min(x, y), std::max(x, y)};
        break;
      case 1:  // inverted: a > b
        q = {std::max(x, y) + 1.0, std::min(x, y)};
        break;
      case 2:  // degenerate point query
        q = {x, x};
        break;
      case 3:  // narrow: forces the kernel CdfSum narrow case
        q = {x, x + 1e-3 * w * rng.NextDouble()};
        break;
      case 4:  // covers the whole domain
        q = {lo - w, lo + 2.0 * w};
        break;
      case 5:  // hugs the left boundary strip
        q = {lo - 0.1 * w, lo + 0.05 * w * rng.NextDouble()};
        break;
      case 6:  // hugs the right boundary strip
        q = {lo + w * (1.0 - 0.05 * rng.NextDouble()), lo + 1.1 * w};
        break;
      default:  // regular, in-domain
        q = {lo + 0.9 * w * std::min(rng.NextDouble(), rng.NextDouble()),
             lo + 0.9 * w * std::max(rng.NextDouble(), rng.NextDouble())};
        break;
    }
  }
  // Non-finite bounds exercise the vector kernels' bail-to-scalar path.
  if (n >= 64) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    queries[10] = {nan, 50.0};
    queries[21] = {10.0, nan};
    queries[32] = {-inf, 50.0};
    queries[43] = {10.0, inf};
    queries[54] = {-inf, inf};
  }
  return queries;
}

std::vector<SimdTier> SupportedVectorTiers() {
  std::vector<SimdTier> tiers;
  for (SimdTier tier : {SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (SimdTierSupported(tier) && SimdOpsForTier(tier) != nullptr) {
      tiers.push_back(tier);
    }
  }
  return tiers;
}

const size_t kBatchSizes[] = {1, 7, 64, 4096};

// Reference = per-query EstimateSelectivity (virtual, scalar by
// construction). Checks the batch API under the scalar tier and under
// every supported vector tier, over full spans and a misaligned subspan
// (offset 1 — every block boundary shifts, so tails and replication
// padding are exercised at a different phase).
void ExpectBatchBitIdentical(const SelectivityEstimator& est,
                             const std::string& label) {
  for (const size_t size : kBatchSizes) {
    const auto queries = MakeQueries(size, 1000 + size);
    std::vector<double> reference(size);
    for (size_t i = 0; i < size; ++i) {
      reference[i] = est.EstimateSelectivity(queries[i]);
    }

    const auto check_span = [&](std::span<const RangeQuery> span,
                                std::span<const double> want,
                                const char* what) {
      std::vector<double> got(span.size(), -1.0);
      est.EstimateSelectivityBatch(span, got);
      for (size_t i = 0; i < span.size(); ++i) {
        // Bitwise, not ==: NaN answers (from NaN query bounds) must also
        // reproduce exactly, and == would reject them.
        EXPECT_EQ(std::bit_cast<uint64_t>(got[i]),
                  std::bit_cast<uint64_t>(want[i]))
            << label << " tier=" << SimdTierName(ActiveSimdTier()) << " "
            << what << " n=" << span.size() << " query " << i << " ["
            << span[i].a << ", " << span[i].b << "] got=" << got[i]
            << " want=" << want[i];
      }
    };

    {
      ScopedSimdTier scalar(SimdTier::kScalar);
      check_span(queries, reference, "scalar-tier batch");
    }
    for (const SimdTier tier : SupportedVectorTiers()) {
      ScopedSimdTier scoped(tier);
      check_span(queries, reference, "full span");
      if (size > 1) {
        check_span(std::span<const RangeQuery>(queries).subspan(1),
                   std::span<const double>(reference).subspan(1),
                   "misaligned subspan");
      }
    }
  }
}

class SimdIdentityTest : public ::testing::TestWithParam<EstimatorKind> {};

TEST_P(SimdIdentityTest, BatchBitIdenticalAcrossTiers) {
  if (SupportedVectorTiers().empty()) {
    GTEST_SKIP() << "host has no vector tier; scalar path is the reference";
  }
  static const std::vector<double>* sample =
      new std::vector<double>(MixtureSample(2000, 77));
  EstimatorConfig config;
  config.kind = GetParam();
  auto est = BuildEstimator(*sample, kDomain, config);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  ExpectBatchBitIdentical(**est, (*est)->name());
}

const EstimatorKind kAllKinds[] = {
    EstimatorKind::kSampling,   EstimatorKind::kUniform,
    EstimatorKind::kEquiWidth,  EstimatorKind::kEquiDepth,
    EstimatorKind::kMaxDiff,    EstimatorKind::kAverageShifted,
    EstimatorKind::kKernel,     EstimatorKind::kHybrid,
    EstimatorKind::kVOptimal,   EstimatorKind::kAdaptiveKernel,
    EstimatorKind::kWavelet,    EstimatorKind::kFeedback,
    EstimatorKind::kReconstructed, EstimatorKind::kOnlineLearning,
};

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SimdIdentityTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<EstimatorKind>& info) {
      std::string name = EstimatorKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The 12th estimator type: the guarded chain (bit-transparent over its
// primary when healthy, so it must stay bit-identical too).
TEST(SimdIdentityGuardedTest, GuardedChainBatchBitIdentical) {
  if (SupportedVectorTiers().empty()) {
    GTEST_SKIP() << "host has no vector tier; scalar path is the reference";
  }
  const auto sample = MixtureSample(2000, 78);
  EstimatorConfig config;
  config.kind = EstimatorKind::kKernel;
  auto guarded = BuildGuardedEstimator(sample, kDomain, config);
  ASSERT_TRUE(guarded.ok()) << guarded.status().ToString();
  ASSERT_FALSE(guarded->degraded());
  ExpectBatchBitIdentical(*guarded->estimator, "guarded(kernel)");
}

// The kernel estimator's three boundary policies each route differently
// through the vector kernel (plain CdfSum, reflected sample strip, strip
// tables + interior); cover them all explicitly on top of the factory
// defaults.
TEST(SimdIdentityKernelBoundaryTest, AllBoundaryPoliciesBitIdentical) {
  if (SupportedVectorTiers().empty()) {
    GTEST_SKIP() << "host has no vector tier; scalar path is the reference";
  }
  const auto sample = MixtureSample(1500, 79);
  for (const BoundaryPolicy policy :
       {BoundaryPolicy::kNone, BoundaryPolicy::kReflection,
        BoundaryPolicy::kBoundaryKernel}) {
    KernelEstimatorOptions options;
    options.bandwidth = 2.5;
    options.boundary = policy;
    auto est = KernelEstimator::Create(sample, kDomain, options);
    ASSERT_TRUE(est.ok()) << est.status().ToString();
    ExpectBatchBitIdentical(*est, est->name());
  }
}

// Non-Epanechnikov kernels have no vector path; the batch API must still
// answer (scalar fallback) and still match per-query exactly.
TEST(SimdIdentityKernelBoundaryTest, NonEpanechnikovFallsBackCleanly) {
  const auto sample = MixtureSample(800, 80);
  KernelEstimatorOptions options;
  options.bandwidth = 2.5;
  options.kernel = Kernel(KernelType::kBiweight);
  options.boundary = BoundaryPolicy::kNone;
  auto est = KernelEstimator::Create(sample, kDomain, options);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  ExpectBatchBitIdentical(*est, est->name());
}

}  // namespace
}  // namespace selest
