#include "src/data/domain.h"

#include <gtest/gtest.h>

namespace selest {
namespace {

TEST(DomainTest, BitDomainBounds) {
  const Domain d = BitDomain(10);
  EXPECT_DOUBLE_EQ(d.lo, 0.0);
  EXPECT_DOUBLE_EQ(d.hi, 1023.0);
  EXPECT_TRUE(d.discrete);
  EXPECT_EQ(d.bits, 10);
}

TEST(DomainTest, BitDomainCardinality) {
  EXPECT_EQ(BitDomain(1).cardinality(), 2u);
  EXPECT_EQ(BitDomain(10).cardinality(), 1024u);
  EXPECT_EQ(BitDomain(20).cardinality(), 1u << 20);
}

TEST(DomainTest, ContinuousDomainHasNoCardinality) {
  const Domain d = ContinuousDomain(0.0, 1.0);
  EXPECT_EQ(d.cardinality(), 0u);
  EXPECT_FALSE(d.discrete);
}

TEST(DomainTest, Width) {
  EXPECT_DOUBLE_EQ(BitDomain(10).width(), 1023.0);
  EXPECT_DOUBLE_EQ(ContinuousDomain(-2.0, 3.0).width(), 5.0);
}

TEST(DomainTest, ClampPinsToBounds) {
  const Domain d = ContinuousDomain(0.0, 10.0);
  EXPECT_DOUBLE_EQ(d.Clamp(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Clamp(11.0), 10.0);
  EXPECT_DOUBLE_EQ(d.Clamp(5.0), 5.0);
}

TEST(DomainTest, ContainsIsInclusive) {
  const Domain d = ContinuousDomain(0.0, 10.0);
  EXPECT_TRUE(d.Contains(0.0));
  EXPECT_TRUE(d.Contains(10.0));
  EXPECT_FALSE(d.Contains(-0.001));
  EXPECT_FALSE(d.Contains(10.001));
}

TEST(DomainTest, QuantizeRoundsOnlyDiscreteDomains) {
  EXPECT_DOUBLE_EQ(BitDomain(10).Quantize(3.6), 4.0);
  EXPECT_DOUBLE_EQ(BitDomain(10).Quantize(3.4), 3.0);
  EXPECT_DOUBLE_EQ(ContinuousDomain(0.0, 1.0).Quantize(0.36), 0.36);
}

TEST(DomainTest, ToStringMentionsBits) {
  EXPECT_NE(BitDomain(15).ToString().find("p=15"), std::string::npos);
}

TEST(DomainDeathTest, BitDomainRejectsBadBitCounts) {
  EXPECT_DEATH(BitDomain(0), "SELEST_CHECK");
  EXPECT_DEATH(BitDomain(63), "SELEST_CHECK");
}

TEST(DomainDeathTest, ContinuousDomainRejectsEmptyRange) {
  EXPECT_DEATH(ContinuousDomain(1.0, 1.0), "SELEST_CHECK");
}

}  // namespace
}  // namespace selest
