// The live server's durable ingest path: WAL-first acknowledgment, the
// healthy → degraded → read-only health machine, retry counters on the
// refresh and write-back paths, and the crash → RecoverColumn round trip.
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/catalog/live_server.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/exec/fault_injection.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1000.0);

std::string FreshDir(const std::string& name) {
  // Suffixed with the pid: each gtest case runs as its own ctest process,
  // and concurrent cases of the same binary must not share a directory.
  const std::string dir =
      testing::TempDir() + name + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<double> MakeRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(kDomain.lo + rng.NextDouble() * kDomain.width());
  }
  return rows;
}

EstimatorConfig ConfigFor(EstimatorKind kind, int bins) {
  EstimatorConfig config;
  config.kind = kind;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = bins;
  return config;
}

LiveServerOptions DurableOptions(const std::string& wal_dir,
                                 const std::string& store_dir) {
  LiveServerOptions options;
  options.background_refresh = false;
  options.wal_directory = wal_dir;
  options.snapshot_directory = store_dir;
  options.retry.base_delay_ticks = 1;  // negligible real sleeping in tests
  return options;
}

class ServerDurabilityTest : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::DisarmAll(); }
};

TEST_F(ServerDurabilityTest, IngestIsLoggedBeforeItIsAcknowledged) {
  const std::string wal_dir = FreshDir("srvdur_log_wal");
  LiveStatisticsServer server(
      DurableOptions(wal_dir, FreshDir("srvdur_log_store")));
  const EstimatorConfig config = ConfigFor(EstimatorKind::kEquiWidth, 16);
  ASSERT_TRUE(
      server.RegisterColumn("t", "x", kDomain, config, MakeRows(200, 1))
          .ok());
  ASSERT_TRUE(server.Ingest("t", "x", MakeRows(50, 2)).ok());
  ASSERT_TRUE(server.Ingest("t", "x", MakeRows(30, 3)).ok());

  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().wal_appends, 2u);
  EXPECT_EQ(stats.value().wal_append_errors, 0u);
  EXPECT_EQ(stats.value().health, ServerHealth::kHealthy);
  // Registration record + two ingest batches, all durable.
  EXPECT_GE(stats.value().wal_last_sequence, 3u);
  // The column's log is a real directory of segment files on disk.
  const std::string column_wal = LiveStatisticsServer::WalDirectoryFor(
      wal_dir, CatalogKey{"t", "x", FingerprintConfig(config)});
  EXPECT_TRUE(std::filesystem::is_directory(column_wal));
  EXPECT_FALSE(std::filesystem::is_empty(column_wal));
}

TEST_F(ServerDurabilityTest, WalFailureDoesNotMutateInMemoryState) {
  LiveStatisticsServer server(DurableOptions(FreshDir("srvdur_atomic_wal"),
                                             FreshDir("srvdur_atomic_store")));
  ASSERT_TRUE(server
                  .RegisterColumn("t", "x", kDomain,
                                  ConfigFor(EstimatorKind::kEquiWidth, 16),
                                  MakeRows(200, 4))
                  .ok());
  const RangeQuery query{200.0, 700.0};
  ASSERT_TRUE(server.Refresh("t", "x").ok());
  auto before = server.Estimate("t", "x", query);
  ASSERT_TRUE(before.ok());
  {
    ScopedFault fault(kFaultPointWalAppend);
    const std::vector<double> batch = MakeRows(40, 5);
    EXPECT_FALSE(server.Ingest("t", "x", batch).ok());
    // Nothing was folded: the same batch can be retried verbatim without
    // double-counting once the log heals.
    auto stats = server.ColumnStats("t", "x");
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().ingested_rows, 0u);
    EXPECT_EQ(stats.value().health, ServerHealth::kDegraded);
  }
  ASSERT_TRUE(server.Ingest("t", "x", MakeRows(40, 5)).ok());
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().ingested_rows, 40u);
  EXPECT_EQ(stats.value().health, ServerHealth::kHealthy);  // healed
  // The refreshed estimate reflects exactly one copy of the batch.
  ASSERT_TRUE(server.Refresh("t", "x").ok());
  auto generation = server.CurrentGeneration("t", "x");
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(generation.value()->rows_at_build, 240u);
}

TEST_F(ServerDurabilityTest, RepeatedWalFailuresLatchReadOnly) {
  LiveStatisticsServer server(DurableOptions(FreshDir("srvdur_ro_wal"),
                                             FreshDir("srvdur_ro_store")));
  ASSERT_TRUE(server
                  .RegisterColumn("t", "x", kDomain,
                                  ConfigFor(EstimatorKind::kEquiWidth, 16),
                                  MakeRows(200, 6))
                  .ok());
  const RangeQuery query{100.0, 600.0};
  {
    ScopedFault fault(kFaultPointWalAppend);
    // Default read_only_after_failures = 3: two failures degrade, the
    // third latches read-only.
    for (int i = 0; i < 3; ++i) {
      EXPECT_FALSE(server.Ingest("t", "x", MakeRows(10, 10 + i)).ok());
    }
  }
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().health, ServerHealth::kReadOnly);
  EXPECT_EQ(stats.value().wal_append_errors, 3u);
  EXPECT_EQ(stats.value().consecutive_wal_failures, 3u);
  EXPECT_EQ(server.Health(), ServerHealth::kReadOnly);

  // Read-only: ingest is rejected BEFORE touching the WAL (the fault is
  // disarmed now — the gate alone rejects), serving continues.
  const Status rejected = server.Ingest("t", "x", MakeRows(10, 20));
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(server.Estimate("t", "x", query).ok());
  stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().wal_append_errors, 3u);  // gate, not a WAL trip

  // The operator lever: reset, and ingest flows again.
  ASSERT_TRUE(server.ResetColumnHealth("t", "x").ok());
  EXPECT_EQ(server.Health(), ServerHealth::kHealthy);
  ASSERT_TRUE(server.Ingest("t", "x", MakeRows(10, 21)).ok());
  stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().health, ServerHealth::kHealthy);
  EXPECT_EQ(stats.value().ingested_rows, 10u);
}

TEST_F(ServerDurabilityTest, TransientRefreshFaultIsRetriedToSuccess) {
  LiveStatisticsServer server(DurableOptions(FreshDir("srvdur_retry_wal"),
                                             FreshDir("srvdur_retry_store")));
  ASSERT_TRUE(server
                  .RegisterColumn("t", "x", kDomain,
                                  ConfigFor(EstimatorKind::kEquiWidth, 16),
                                  MakeRows(200, 7))
                  .ok());
  ASSERT_TRUE(server.Ingest("t", "x", MakeRows(50, 8)).ok());
  {
    // Fail only the first refresh attempt: with the default 3-attempt
    // budget the retry succeeds and no error is recorded.
    FaultPlan plan;
    plan.skip = 0;
    plan.count = 1;
    ScopedFault fault(kFaultPointServerRefresh, plan);
    ASSERT_TRUE(server.Refresh("t", "x").ok());
  }
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().refreshes, 1u);
  EXPECT_EQ(stats.value().refresh_errors, 0u);
  EXPECT_EQ(stats.value().refresh_retries, 1u);
  EXPECT_EQ(stats.value().generation, 2u);
}

TEST_F(ServerDurabilityTest, TransientWritebackFaultIsRetriedToSuccess) {
  LiveStatisticsServer server(DurableOptions(FreshDir("srvdur_wb_wal"),
                                             FreshDir("srvdur_wb_store")));
  ASSERT_TRUE(server
                  .RegisterColumn("t", "x", kDomain,
                                  ConfigFor(EstimatorKind::kEquiWidth, 16),
                                  MakeRows(200, 9))
                  .ok());
  ASSERT_TRUE(server.Ingest("t", "x", MakeRows(50, 10)).ok());
  {
    FaultPlan plan;
    plan.skip = 0;
    plan.count = 1;
    ScopedFault fault(kFaultPointStoreRename, plan);
    ASSERT_TRUE(server.Refresh("t", "x").ok());
  }
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().writeback_errors, 0u);
  EXPECT_EQ(stats.value().writeback_retries, 1u);
  // Registration + refresh both persisted despite the transient.
  EXPECT_EQ(stats.value().writebacks, 2u);
}

TEST_F(ServerDurabilityTest, CrashAndRecoverRoundTripServesIdentically) {
  const std::string wal_dir = FreshDir("srvdur_rt_wal");
  const std::string store_dir = FreshDir("srvdur_rt_store");
  const EstimatorConfig config = ConfigFor(EstimatorKind::kEquiWidth, 16);
  const RangeQuery query{150.0, 800.0};
  double before = 0.0;
  {
    LiveStatisticsServer server(DurableOptions(wal_dir, store_dir));
    ASSERT_TRUE(
        server.RegisterColumn("t", "x", kDomain, config, MakeRows(300, 11))
            .ok());
    ASSERT_TRUE(server.Ingest("t", "x", MakeRows(60, 12)).ok());
    ASSERT_TRUE(server.Ingest("t", "x", MakeRows(40, 13)).ok());
    ASSERT_TRUE(server.Refresh("t", "x").ok());
    auto estimate = server.Estimate("t", "x", query);
    ASSERT_TRUE(estimate.ok());
    before = estimate.value();
    // "Crash": the server is abandoned; only the WAL and snapshots
    // survive.
  }
  LiveStatisticsServer restarted(DurableOptions(wal_dir, store_dir));
  ASSERT_TRUE(restarted.RecoverColumn("t", "x", kDomain, config).ok());
  auto stats = restarted.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().recovered);
  EXPECT_TRUE(stats.value().recovery_used_snapshot);  // proven mark on disk
  EXPECT_EQ(stats.value().health, ServerHealth::kHealthy);
  auto generation = restarted.CurrentGeneration("t", "x");
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(generation.value()->rows_at_build, 400u);
  auto after = restarted.Estimate("t", "x", query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), before);  // bit-identical recovery
  // And the recovered column is fully live.
  ASSERT_TRUE(restarted.Ingest("t", "x", MakeRows(25, 14)).ok());
  ASSERT_TRUE(restarted.Refresh("t", "x").ok());
}

TEST_F(ServerDurabilityTest, RecoverWithoutRegistrationIsNotFound) {
  LiveStatisticsServer server(DurableOptions(FreshDir("srvdur_nf_wal"),
                                             FreshDir("srvdur_nf_store")));
  EXPECT_EQ(server
                .RecoverColumn("ghost", "x", kDomain,
                               ConfigFor(EstimatorKind::kEquiWidth, 16))
                .code(),
            StatusCode::kNotFound);
}

TEST_F(ServerDurabilityTest, WalDisabledKeepsLegacyBehavior) {
  // No wal_directory: ingest never touches a log, stats stay zero, and
  // recovery is unavailable by contract.
  LiveServerOptions options;
  options.background_refresh = false;
  LiveStatisticsServer server(std::move(options));
  const EstimatorConfig config = ConfigFor(EstimatorKind::kEquiWidth, 16);
  ASSERT_TRUE(
      server.RegisterColumn("t", "x", kDomain, config, MakeRows(200, 15))
          .ok());
  ASSERT_TRUE(server.Ingest("t", "x", MakeRows(30, 16)).ok());
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().wal_appends, 0u);
  EXPECT_EQ(stats.value().wal_last_sequence, 0u);
  EXPECT_EQ(stats.value().health, ServerHealth::kHealthy);
  EXPECT_EQ(server.RecoverColumn("t", "x", kDomain, config).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace selest
