#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/multidim/basic2d.h"
#include "src/multidim/dataset2d.h"
#include "src/multidim/grid_histogram.h"
#include "src/multidim/kernel2d.h"
#include "src/multidim/workload2d.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kSquare = ContinuousDomain(0.0, 100.0);

std::vector<Point2> UniformPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> points(n);
  for (Point2& p : points) {
    p = {100.0 * rng.NextDouble(), 100.0 * rng.NextDouble()};
  }
  return points;
}

TEST(Dataset2dTest, CountInWindowMatchesBruteForce) {
  const auto points = UniformPoints(400, 1);
  const Dataset2d data("d", kSquare, kSquare, points);
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    WindowQuery q;
    q.x_lo = 100.0 * rng.NextDouble();
    q.x_hi = q.x_lo + (100.0 - q.x_lo) * rng.NextDouble();
    q.y_lo = 100.0 * rng.NextDouble();
    q.y_hi = q.y_lo + (100.0 - q.y_lo) * rng.NextDouble();
    size_t brute = 0;
    for (const Point2& p : points) {
      if (p.x >= q.x_lo && p.x <= q.x_hi && p.y >= q.y_lo && p.y <= q.y_hi) {
        ++brute;
      }
    }
    EXPECT_EQ(data.CountInWindow(q), brute);
  }
}

TEST(Dataset2dTest, InvertedWindowIsEmpty) {
  const Dataset2d data("d", kSquare, kSquare, UniformPoints(10, 3));
  EXPECT_EQ(data.CountInWindow({50.0, 40.0, 0.0, 100.0}), 0u);
  EXPECT_EQ(data.CountInWindow({0.0, 100.0, 50.0, 40.0}), 0u);
}

TEST(Dataset2dTest, QuantizedConstruction) {
  const auto unit = [] {
    std::vector<Point2> pts;
    Rng rng(4);
    for (int i = 0; i < 100; ++i) {
      pts.push_back({rng.NextDouble(), rng.NextDouble()});
    }
    return pts;
  }();
  const Dataset2d data = MakeQuantizedDataset2d("q", unit, 10, 12, 80);
  EXPECT_EQ(data.size(), 80u);
  EXPECT_EQ(data.x_domain().bits, 10);
  EXPECT_EQ(data.y_domain().bits, 12);
  for (const Point2& p : data.points()) {
    EXPECT_DOUBLE_EQ(p.x, std::round(p.x));
    EXPECT_LE(p.x, 1023.0);
    EXPECT_LE(p.y, 4095.0);
  }
}

TEST(Workload2dTest, WindowsInsideDomainWithNonEmptyResults) {
  const Dataset2d data("d", kSquare, kSquare, UniformPoints(5000, 5));
  Rng rng(6);
  Workload2dConfig config;
  config.side_fraction = 0.1;
  config.num_queries = 200;
  const auto queries_or = GenerateWorkload2d(data, config, rng);
  ASSERT_TRUE(queries_or.ok()) << queries_or.status().ToString();
  const auto& queries = *queries_or;
  ASSERT_EQ(queries.size(), 200u);
  for (const WindowQuery& q : queries) {
    EXPECT_GE(q.x_lo, 0.0);
    EXPECT_LE(q.x_hi, 100.0);
    EXPECT_GE(q.y_lo, 0.0);
    EXPECT_LE(q.y_hi, 100.0);
    EXPECT_NEAR(q.width(), 10.0, 1e-9);
    EXPECT_NEAR(q.height(), 10.0, 1e-9);
    EXPECT_GT(data.CountInWindow(q), 0u);
  }
}

TEST(Uniform2dTest, AreaFraction) {
  const Uniform2dEstimator est(kSquare, kSquare);
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity({0.0, 100.0, 0.0, 100.0}), 1.0);
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity({0.0, 50.0, 0.0, 50.0}), 0.25);
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity({10.0, 20.0, 30.0, 80.0}), 0.05);
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity({-10.0, -5.0, 0.0, 100.0}), 0.0);
}

TEST(Sampling2dTest, ExactFractions) {
  const std::vector<Point2> sample{{10, 10}, {20, 20}, {30, 30}, {90, 90}};
  auto est = Sampling2dEstimator::Create(sample);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity({0, 100, 0, 100}), 1.0);
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity({15, 35, 15, 35}), 0.5);
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity({0, 100, 85, 100}), 0.25);
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity({40, 60, 40, 60}), 0.0);
}

TEST(Sampling2dTest, RejectsEmptySample) {
  EXPECT_FALSE(Sampling2dEstimator::Create({}).ok());
}

TEST(SamplePoints2dTest, SizeAndMembership) {
  const auto population = UniformPoints(300, 7);
  Rng rng(8);
  const auto sample = SamplePointsWithoutReplacement(population, 50, rng);
  EXPECT_EQ(sample.size(), 50u);
}

TEST(GridHistogramTest, ExactOnCellAlignedQueries) {
  // One point per quadrant corner region.
  const std::vector<Point2> sample{{25, 25}, {75, 25}, {25, 75}, {75, 75}};
  auto grid = GridHistogram::Create(sample, kSquare, kSquare, 2, 2);
  ASSERT_TRUE(grid.ok());
  EXPECT_DOUBLE_EQ(grid->EstimateSelectivity({0, 50, 0, 50}), 0.25);
  EXPECT_DOUBLE_EQ(grid->EstimateSelectivity({0, 100, 0, 50}), 0.5);
  EXPECT_DOUBLE_EQ(grid->EstimateSelectivity({0, 100, 0, 100}), 1.0);
}

TEST(GridHistogramTest, UniformInCellAssumption) {
  const std::vector<Point2> sample{{25, 25}};
  auto grid = GridHistogram::Create(sample, kSquare, kSquare, 2, 2);
  ASSERT_TRUE(grid.ok());
  // A quarter of the cell (half per axis) holds a quarter of its mass.
  EXPECT_DOUBLE_EQ(grid->EstimateSelectivity({0, 25, 0, 25}), 0.25);
}

TEST(GridHistogramTest, RejectsBadInput) {
  EXPECT_FALSE(GridHistogram::Create({}, kSquare, kSquare, 2, 2).ok());
  const std::vector<Point2> sample{{1, 1}};
  EXPECT_FALSE(GridHistogram::Create(sample, kSquare, kSquare, 0, 2).ok());
}

TEST(Kernel2dTest, RejectsBadConfig) {
  const std::vector<Point2> sample{{1, 1}};
  Kernel2dOptions options;
  options.boundary = BoundaryPolicy::kBoundaryKernel;
  EXPECT_FALSE(
      Kernel2dEstimator::Create(sample, kSquare, kSquare, options).ok());
  EXPECT_FALSE(Kernel2dEstimator::Create({}, kSquare, kSquare, {}).ok());
}

TEST(Kernel2dTest, SinglePointFullyCoveredWindow) {
  const std::vector<Point2> sample{{50, 50}};
  Kernel2dOptions options;
  options.x_bandwidth = 2.0;
  options.y_bandwidth = 3.0;
  options.boundary = BoundaryPolicy::kNone;
  auto est = Kernel2dEstimator::Create(sample, kSquare, kSquare, options);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity({40, 60, 40, 60}), 1.0);
  // Half coverage per axis: product gives a quarter.
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity({50, 60, 50, 60}), 0.25);
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity({60, 70, 40, 60}), 0.0);
}

TEST(Kernel2dTest, MatchesBruteForceProduct) {
  const auto population = UniformPoints(300, 9);
  Kernel2dOptions options;
  options.x_bandwidth = 5.0;
  options.y_bandwidth = 4.0;
  options.boundary = BoundaryPolicy::kNone;
  auto est =
      Kernel2dEstimator::Create(population, kSquare, kSquare, options);
  ASSERT_TRUE(est.ok());
  const Kernel kernel;
  Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    const double x_lo = 80.0 * rng.NextDouble();
    const double x_hi = x_lo + 15.0 * rng.NextDouble();
    const double y_lo = 80.0 * rng.NextDouble();
    const double y_hi = y_lo + 15.0 * rng.NextDouble();
    double brute = 0.0;
    for (const Point2& p : population) {
      brute += (kernel.Cdf((x_hi - p.x) / 5.0) -
                kernel.Cdf((x_lo - p.x) / 5.0)) *
               (kernel.Cdf((y_hi - p.y) / 4.0) -
                kernel.Cdf((y_lo - p.y) / 4.0));
    }
    brute /= static_cast<double>(population.size());
    EXPECT_NEAR(est->EstimateSelectivity({x_lo, x_hi, y_lo, y_hi}), brute,
                1e-10);
  }
}

TEST(Kernel2dTest, NormalScaleBandwidthShrinksAsNToMinusOneSixth) {
  const Kernel kernel;
  const double h1 = NormalScaleBandwidth2d(1.0, 1000, kernel);
  const double h64 = NormalScaleBandwidth2d(1.0, 64000, kernel);
  EXPECT_NEAR(h1 / h64, 2.0, 1e-9);  // 64^(1/6) = 2
}

TEST(Kernel2dTest, ReflectionRestoresCornerMass) {
  // Points clustered at a corner: without boundary treatment the window
  // anchored at the corner loses ~3/4 of each point's mass.
  Rng rng(11);
  std::vector<Point2> sample(500);
  for (Point2& p : sample) {
    p = {2.0 * rng.NextDouble(), 2.0 * rng.NextDouble()};
  }
  Kernel2dOptions plain;
  plain.x_bandwidth = 4.0;
  plain.y_bandwidth = 4.0;
  plain.boundary = BoundaryPolicy::kNone;
  Kernel2dOptions reflected = plain;
  reflected.boundary = BoundaryPolicy::kReflection;
  auto est_plain = Kernel2dEstimator::Create(sample, kSquare, kSquare, plain);
  auto est_reflected =
      Kernel2dEstimator::Create(sample, kSquare, kSquare, reflected);
  ASSERT_TRUE(est_plain.ok());
  ASSERT_TRUE(est_reflected.ok());
  // All sample points live in [0,2]²; the window [0,6]² should hold ~all
  // mass.
  const WindowQuery corner{0.0, 6.0, 0.0, 6.0};
  EXPECT_LT(est_plain->EstimateSelectivity(corner), 0.6);
  EXPECT_GT(est_reflected->EstimateSelectivity(corner), 0.85);
}

TEST(Kernel2dTest, EstimatesUniformWindowSelectivity) {
  const auto population = UniformPoints(20000, 12);
  Rng rng(13);
  const auto sample = SamplePointsWithoutReplacement(population, 2000, rng);
  auto est = Kernel2dEstimator::Create(sample, kSquare, kSquare, {});
  ASSERT_TRUE(est.ok());
  // 20×20 window on uniform data: true selectivity 0.04.
  EXPECT_NEAR(est->EstimateSelectivity({40, 60, 40, 60}), 0.04, 0.012);
}

TEST(Kernel2dTest, MonotoneInWindowGrowth) {
  const auto sample = UniformPoints(500, 14);
  auto est = Kernel2dEstimator::Create(sample, kSquare, kSquare, {});
  ASSERT_TRUE(est.ok());
  double prev = 0.0;
  for (double half = 1.0; half <= 50.0; half += 1.0) {
    const double s = est->EstimateSelectivity(
        {50.0 - half, 50.0 + half, 50.0 - half, 50.0 + half});
    EXPECT_GE(s, prev - 1e-12);
    prev = s;
  }
  EXPECT_NEAR(prev, 1.0, 0.02);
}

TEST(Kernel2dTest, AccuracyBeatsUniformOnClusteredData) {
  // Clustered data: kernel2d adapts, uniform2d cannot.
  Rng rng(15);
  std::vector<Point2> population(20000);
  for (Point2& p : population) {
    p = {kSquare.Clamp(30.0 + 8.0 * rng.NextGaussian()),
         kSquare.Clamp(70.0 + 8.0 * rng.NextGaussian())};
  }
  const Dataset2d data("clustered", kSquare, kSquare, population);
  Rng sample_rng(16);
  const auto sample =
      SamplePointsWithoutReplacement(data.points(), 2000, sample_rng);
  auto kernel = Kernel2dEstimator::Create(sample, kSquare, kSquare, {});
  ASSERT_TRUE(kernel.ok());
  const Uniform2dEstimator uniform(kSquare, kSquare);
  Rng query_rng(17);
  Workload2dConfig config;
  config.num_queries = 100;
  const auto queries_or = GenerateWorkload2d(data, config, query_rng);
  ASSERT_TRUE(queries_or.ok()) << queries_or.status().ToString();
  const auto& queries = *queries_or;
  double kernel_error = 0.0;
  double uniform_error = 0.0;
  for (const WindowQuery& q : queries) {
    const double truth = data.Selectivity(q);
    kernel_error += std::fabs(kernel->EstimateSelectivity(q) - truth) / truth;
    uniform_error += std::fabs(uniform.EstimateSelectivity(q) - truth) / truth;
  }
  EXPECT_LT(kernel_error, 0.5 * uniform_error);
}

}  // namespace
}  // namespace selest
