// The retry discipline: capped exponential backoff, deterministic seeded
// jitter, the retryability gate, the attempt budget, and the deadline —
// all driven through injected clocks and sleeps so no real time passes.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/retry.h"
#include "src/util/status.h"

namespace selest {
namespace {

TEST(RetryTest, FirstSuccessMakesOneAttempt) {
  size_t attempts = 0;
  size_t calls = 0;
  const Status status = RetryWithBackoff(
      RetryOptions{},
      [&]() {
        ++calls;
        return Status::Ok();
      },
      &attempts);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 1u);
  EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, TransientFailureRetriesUpToBudget) {
  RetryOptions options;
  options.max_attempts = 4;
  size_t attempts = 0;
  size_t calls = 0;
  std::vector<uint64_t> slept;
  const Status status = RetryWithBackoff(
      options,
      [&]() {
        ++calls;
        return InternalError("flaky disk");
      },
      &attempts, [&](uint64_t ticks) { slept.push_back(ticks); });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(attempts, 4u);
  EXPECT_EQ(calls, 4u);
  // One backoff between each pair of attempts, none after the last.
  EXPECT_EQ(slept.size(), 3u);
}

TEST(RetryTest, SucceedsMidwayAndStops) {
  RetryOptions options;
  options.max_attempts = 5;
  size_t attempts = 0;
  size_t calls = 0;
  const Status status = RetryWithBackoff(
      options,
      [&]() {
        ++calls;
        return calls < 3 ? InternalError("transient") : Status::Ok();
      },
      &attempts, [](uint64_t) {});
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 3u);
}

TEST(RetryTest, NonRetryableCodesFailFast) {
  for (const Status& terminal :
       {DataLossError("corrupt"), NotFoundError("missing"),
        InvalidArgumentError("bad"), FailedPreconditionError("nope")}) {
    size_t attempts = 0;
    const Status status = RetryWithBackoff(
        RetryOptions{}, [&]() { return terminal; }, &attempts,
        [](uint64_t) {});
    EXPECT_EQ(status.code(), terminal.code());
    EXPECT_EQ(attempts, 1u) << terminal.message();
  }
  EXPECT_TRUE(IsRetryableStatus(InternalError("x")));
  EXPECT_TRUE(IsRetryableStatus(ResourceExhaustedError("x")));
  EXPECT_FALSE(IsRetryableStatus(DataLossError("x")));
  EXPECT_FALSE(IsRetryableStatus(Status::Ok()));
}

TEST(RetryTest, BackoffGrowsExponentiallyAndCaps) {
  RetryOptions options;
  options.base_delay_ticks = 100;
  options.max_delay_ticks = 1000;
  options.jitter = 0.0;  // fixed delays for exact assertions
  EXPECT_EQ(BackoffDelayTicks(options, 1), 100u);
  EXPECT_EQ(BackoffDelayTicks(options, 2), 200u);
  EXPECT_EQ(BackoffDelayTicks(options, 3), 400u);
  EXPECT_EQ(BackoffDelayTicks(options, 4), 800u);
  EXPECT_EQ(BackoffDelayTicks(options, 5), 1000u);   // capped
  EXPECT_EQ(BackoffDelayTicks(options, 50), 1000u);  // shift saturates
}

TEST(RetryTest, JitterIsDeterministicPerSeedAndBounded) {
  RetryOptions options;
  options.base_delay_ticks = 1000;
  options.max_delay_ticks = 1000000;
  options.jitter = 0.5;
  options.seed = 7;
  for (size_t attempt = 1; attempt <= 8; ++attempt) {
    const uint64_t first = BackoffDelayTicks(options, attempt);
    const uint64_t again = BackoffDelayTicks(options, attempt);
    EXPECT_EQ(first, again);  // pure function of (options, attempt)
    RetryOptions fixed = options;
    fixed.jitter = 0.0;
    const uint64_t full = BackoffDelayTicks(fixed, attempt);
    EXPECT_LE(first, full);
    EXPECT_GE(first, full / 2);  // jitter 0.5 → factor in [0.5, 1]
  }
  RetryOptions other = options;
  other.seed = 8;
  bool any_differs = false;
  for (size_t attempt = 1; attempt <= 8; ++attempt) {
    any_differs |=
        BackoffDelayTicks(options, attempt) != BackoffDelayTicks(other, attempt);
  }
  EXPECT_TRUE(any_differs);
}

TEST(RetryTest, DeadlineStopsTheLoop) {
  RetryOptions options;
  options.max_attempts = 100;
  options.base_delay_ticks = 10;
  options.jitter = 0.0;
  options.deadline_ticks = 25;
  uint64_t fake_now = 0;
  size_t attempts = 0;
  const Status status = RetryWithBackoff(
      options, [&]() { return InternalError("always"); }, &attempts,
      [&](uint64_t ticks) { fake_now += ticks; }, [&]() { return fake_now; });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // Sleeps of 10 then 20 ticks: the second retry would start at tick 30,
  // past the 25-tick budget, so the loop gives up after two attempts.
  EXPECT_EQ(attempts, 2u);
}

TEST(RetryTest, BackwardsClockNeverExtendsOrWedgesTheBudget) {
  RetryOptions options;
  options.max_attempts = 5;
  options.base_delay_ticks = 1;
  options.jitter = 0.0;
  options.deadline_ticks = 1000;
  // The clock jumps far backwards after the first read; elapsed time is
  // clamped at 0, so the loop still runs its full attempt budget instead
  // of either wedging or overflowing into "deadline exceeded".
  uint64_t fake_now = 500;
  bool first_read = true;
  size_t attempts = 0;
  const Status status = RetryWithBackoff(
      options, [&]() { return InternalError("always"); }, &attempts,
      [](uint64_t) {},
      [&]() {
        if (first_read) {
          first_read = false;
          return fake_now;
        }
        return fake_now - 400;  // stepped backwards
      });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(attempts, 5u);
}

TEST(RetryTest, ZeroMaxAttemptsStillRunsOnce) {
  RetryOptions options;
  options.max_attempts = 0;
  size_t attempts = 0;
  const Status status = RetryWithBackoff(
      options, [&]() { return InternalError("x"); }, &attempts,
      [](uint64_t) {});
  EXPECT_EQ(attempts, 1u);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace selest
