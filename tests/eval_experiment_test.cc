#include <cmath>
#include "src/eval/experiment.h"

#include <gtest/gtest.h>

#include "src/data/distribution.h"
#include "src/util/random.h"

namespace selest {
namespace {

Dataset MakeData(uint64_t seed) {
  Rng rng(seed);
  const Domain domain = BitDomain(16);
  const NormalDistribution dist(0.5 * domain.hi, domain.width() / 8.0);
  return GenerateDataset("n", dist, 20000, domain, rng);
}

TEST(ExperimentTest, SetupHasRequestedShapes) {
  const Dataset data = MakeData(1);
  ProtocolConfig protocol;
  protocol.sample_size = 500;
  protocol.num_queries = 100;
  const ExperimentSetup setup = MakeSetup(data, protocol);
  EXPECT_EQ(setup.sample.size(), 500u);
  EXPECT_EQ(setup.queries.size(), 100u);
  EXPECT_EQ(setup.data, &data);
}

TEST(ExperimentTest, SetupIsDeterministic) {
  const Dataset data = MakeData(2);
  ProtocolConfig protocol;
  protocol.sample_size = 100;
  protocol.num_queries = 20;
  protocol.seed = 7;
  const ExperimentSetup a = MakeSetup(data, protocol);
  const ExperimentSetup b = MakeSetup(data, protocol);
  EXPECT_EQ(a.sample, b.sample);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.queries[i].a, b.queries[i].a);
  }
}

TEST(ExperimentTest, DifferentSeedsDifferentSamples) {
  const Dataset data = MakeData(3);
  ProtocolConfig protocol;
  protocol.sample_size = 100;
  protocol.num_queries = 10;
  protocol.seed = 1;
  const ExperimentSetup a = MakeSetup(data, protocol);
  protocol.seed = 2;
  const ExperimentSetup b = MakeSetup(data, protocol);
  EXPECT_NE(a.sample, b.sample);
}

TEST(ExperimentTest, RunConfigProducesSaneErrors) {
  const Dataset data = MakeData(4);
  ProtocolConfig protocol;
  protocol.sample_size = 1000;
  protocol.num_queries = 200;
  protocol.query_fraction = 0.05;
  const ExperimentSetup setup = MakeSetup(data, protocol);
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  auto report = RunConfig(setup, config);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->evaluated, 0u);
  // A 5% query on smooth normal data with 1000 samples: well under 100%.
  EXPECT_LT(report->mean_relative_error, 1.0);
  EXPECT_GT(report->mean_relative_error, 0.0);
}

TEST(ExperimentTest, RunConfigPropagatesBuildFailure) {
  const Dataset data = MakeData(5);
  ProtocolConfig protocol;
  protocol.sample_size = 100;
  protocol.num_queries = 10;
  const ExperimentSetup setup = MakeSetup(data, protocol);
  EstimatorConfig config;
  config.kind = EstimatorKind::kKernel;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = -1.0;
  EXPECT_FALSE(RunConfig(setup, config).ok());
}

TEST(ExperimentTest, BinCountObjectiveIsFiniteAndPositive) {
  const Dataset data = MakeData(6);
  ProtocolConfig protocol;
  protocol.sample_size = 500;
  protocol.num_queries = 100;
  const ExperimentSetup setup = MakeSetup(data, protocol);
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  auto objective = MakeBinCountObjective(setup, config);
  for (int k : {1, 5, 20, 100}) {
    const double error = objective(k);
    EXPECT_GE(error, 0.0);
    EXPECT_TRUE(std::isfinite(error));
  }
}

TEST(ExperimentTest, BandwidthObjectivePenalizesExtremes) {
  const Dataset data = MakeData(7);
  ProtocolConfig protocol;
  protocol.sample_size = 1000;
  protocol.num_queries = 200;
  const ExperimentSetup setup = MakeSetup(data, protocol);
  EstimatorConfig config;
  config.kind = EstimatorKind::kKernel;
  config.boundary = BoundaryPolicy::kBoundaryKernel;
  auto objective = MakeBandwidthObjective(setup, config);
  const double domain_width = data.domain().width();
  // A reasonable mid-range bandwidth beats an absurdly large one.
  const double sane = objective(domain_width / 50.0);
  const double oversmoothed = objective(domain_width);
  EXPECT_LT(sane, oversmoothed);
  // Invalid bandwidth maps to +inf rather than failing.
  EXPECT_TRUE(std::isinf(objective(-1.0)));
}

}  // namespace
}  // namespace selest
