// Golden regression tests for the paper's headline numbers.
//
// These pin the figures the repo reproduces to the values the current
// implementation produces with the documented seeds, with tolerances wide
// enough to absorb legitimate refactors (an order-of-evaluation change in
// a reduction) but tight enough to catch a broken estimator. Each golden
// value below was measured from the corresponding bench binary; the paper
// reference is quoted alongside.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/est/kernel_estimator.h"
#include "src/eval/metrics.h"
#include "src/eval/paper_data.h"
#include "src/eval/parallel_experiment.h"
#include "src/query/ground_truth.h"
#include "src/query/workload.h"
#include "src/sample/sampler.h"
#include "src/smoothing/normal_scale.h"

namespace selest {
namespace {

// Fig. 3 — boundary underestimation of the untreated kernel estimator on
// uniform data. Protocol of bench_fig03_boundary_error: u(20) at data seed
// 42, a 2,000-record sample at Rng(2025), normal-scale bandwidth, no
// boundary correction, 1% queries swept across 201 positions.
//
// Golden: max |error| within one bandwidth of a boundary = 548 records
// (paper reports "up to ~500" for |Q| = 1000); tolerance ±10%. Mid-domain
// error stays a fraction of the boundary spike.
TEST(GoldenFiguresTest, Fig3BoundarySpikeMagnitude) {
  auto data = MakePaperDataset("u(20)");
  ASSERT_TRUE(data.ok());
  Rng rng(2025);
  const std::vector<double> sample =
      SampleWithoutReplacement(data->values(), 2000, rng);

  KernelEstimatorOptions options;
  options.boundary = BoundaryPolicy::kNone;
  options.bandwidth = NormalScaleBandwidth(sample, data->domain());
  auto estimator = KernelEstimator::Create(sample, data->domain(), options);
  ASSERT_TRUE(estimator.ok());

  const auto queries = GeneratePositionSweep(*data, 0.01, 201);
  const GroundTruth truth(*data);
  const auto errors = EvaluateByPosition(*estimator, queries, truth);
  ASSERT_EQ(errors.size(), queries.size());

  double boundary_max = 0.0;
  double center_max = 0.0;
  const double h = options.bandwidth;
  for (const auto& e : errors) {
    const bool near_boundary = e.position - data->domain().lo < h ||
                               data->domain().hi - e.position < h;
    double& bucket = near_boundary ? boundary_max : center_max;
    bucket = std::max(bucket, std::fabs(e.signed_error));
  }
  EXPECT_GE(boundary_max, 493.0);  // 548 − 10%
  EXPECT_LE(boundary_max, 603.0);  // 548 + 10%
  // The defect is *localized*: mid-domain error is far below the spike.
  EXPECT_LT(center_max, 0.5 * boundary_max);
}

// Fig. 12 — final ranking of the most promising estimators on 1% queries
// at protocol seed 17 (bench_fig12_estimator_comparison). Golden MREs:
//
//   n(20):   EWH 8.8%, Kernel 4.2%, Hybrid 9.3%  → kernel wins (smooth)
//   rr2(22): EWH 44.6%, Kernel 32.0%, Hybrid 19.9% → hybrid wins (rough)
//
// The test asserts the *ranking* (the paper's §5.2.6 conclusion) plus a
// loose ±50%-relative band on each MRE so a silently broken estimator
// cannot hide behind a preserved ordering.
struct Fig12Golden {
  const char* file;
  double ewh_mre;
  double kernel_mre;
  double hybrid_mre;
  bool kernel_beats_hybrid;  // smooth data: true; rough spatial: false
};

TEST(GoldenFiguresTest, Fig12RankingAndMagnitudes) {
  EstimatorConfig ewh;
  ewh.kind = EstimatorKind::kEquiWidth;
  EstimatorConfig kernel;
  kernel.kind = EstimatorKind::kKernel;
  kernel.smoothing = SmoothingRule::kDirectPlugIn;
  kernel.boundary = BoundaryPolicy::kBoundaryKernel;
  EstimatorConfig hybrid;
  hybrid.kind = EstimatorKind::kHybrid;
  hybrid.boundary = BoundaryPolicy::kBoundaryKernel;
  const std::vector<EstimatorConfig> configs{ewh, kernel, hybrid};

  const Fig12Golden goldens[] = {
      {"n(20)", 0.088, 0.042, 0.093, /*kernel_beats_hybrid=*/true},
      {"rr2(22)", 0.446, 0.320, 0.199, /*kernel_beats_hybrid=*/false},
  };
  for (const Fig12Golden& golden : goldens) {
    auto data = MakePaperDataset(golden.file);
    ASSERT_TRUE(data.ok()) << golden.file;
    ProtocolConfig protocol;
    protocol.seed = 17;
    const ExperimentSetup setup = MakeSetup(*data, protocol);
    const auto reports = RunConfigsParallel(setup, configs);
    ASSERT_EQ(reports.size(), 3u);
    for (const auto& report : reports) ASSERT_TRUE(report.ok());
    const double ewh_mre = reports[0].value().mean_relative_error;
    const double kernel_mre = reports[1].value().mean_relative_error;
    const double hybrid_mre = reports[2].value().mean_relative_error;

    EXPECT_NEAR(ewh_mre, golden.ewh_mre, 0.5 * golden.ewh_mre)
        << golden.file;
    EXPECT_NEAR(kernel_mre, golden.kernel_mre, 0.5 * golden.kernel_mre)
        << golden.file;
    EXPECT_NEAR(hybrid_mre, golden.hybrid_mre, 0.5 * golden.hybrid_mre)
        << golden.file;
    // Kernel beats the equi-width histogram everywhere in Fig. 12, and
    // the kernel/hybrid order encodes the paper's headline conclusion:
    // smooth synthetic data favors the kernel estimator, rough spatial
    // data flips the order to the hybrid (§5.2.6).
    EXPECT_LT(kernel_mre, ewh_mre) << golden.file;
    if (golden.kernel_beats_hybrid) {
      EXPECT_LT(kernel_mre, hybrid_mre) << golden.file;
    } else {
      EXPECT_LT(hybrid_mre, kernel_mre) << golden.file;
    }
  }
}

// Table 2 — distinct-value counts of the generated data files at the
// default data seed 42. Exact golden values (bench_table2_datafiles): the
// generators are fully deterministic, so these are equality assertions —
// any drift means the data files changed and every figure is suspect.
TEST(GoldenFiguresTest, Table2DistinctCountsAreExact) {
  struct Golden {
    const char* file;
    size_t records;
    size_t distinct;
  };
  const Golden goldens[] = {
      {"n(10)", 100000, 881},
      {"n(20)", 100000, 90006},
      {"rr1(12)", 257942, 4096},
  };
  for (const Golden& golden : goldens) {
    auto data = MakePaperDataset(golden.file);
    ASSERT_TRUE(data.ok()) << golden.file;
    EXPECT_EQ(data->size(), golden.records) << golden.file;
    EXPECT_EQ(data->CountDistinct(), golden.distinct) << golden.file;
  }
}

}  // namespace
}  // namespace selest
