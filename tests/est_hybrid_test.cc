#include "src/est/hybrid_estimator.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

// Density with a hard step: 80% of mass on [0, 40], 20% on [40, 100].
std::vector<double> StepSample(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample;
  sample.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.8) {
      sample.push_back(40.0 * rng.NextDouble());
    } else {
      sample.push_back(40.0 + 60.0 * rng.NextDouble());
    }
  }
  return sample;
}

TEST(HybridTest, RejectsBadInput) {
  EXPECT_FALSE(HybridEstimator::Create({}, kDomain, {}).ok());
  const std::vector<double> sample{1.0};
  HybridEstimatorOptions options;
  options.min_bin_fraction = 1.5;
  EXPECT_FALSE(HybridEstimator::Create(sample, kDomain, options).ok());
}

TEST(HybridTest, BuildsOnSmoothData) {
  Rng rng(1);
  std::vector<double> sample(2000);
  for (double& x : sample) x = 100.0 * rng.NextDouble();
  auto est = HybridEstimator::Create(sample, kDomain, {});
  ASSERT_TRUE(est.ok());
  EXPECT_GE(est->num_bins(), 1u);
}

TEST(HybridTest, PartitionCoversDomain) {
  const auto sample = StepSample(2000, 2);
  auto est = HybridEstimator::Create(sample, kDomain, {});
  ASSERT_TRUE(est.ok());
  ASSERT_GE(est->partition().size(), 2u);
  EXPECT_DOUBLE_EQ(est->partition().front(), kDomain.lo);
  EXPECT_DOUBLE_EQ(est->partition().back(), kDomain.hi);
  for (size_t i = 1; i < est->partition().size(); ++i) {
    EXPECT_GT(est->partition()[i], est->partition()[i - 1]);
  }
}

TEST(HybridTest, SplitsAtDensityStep) {
  const auto sample = StepSample(4000, 3);
  auto est = HybridEstimator::Create(sample, kDomain, {});
  ASSERT_TRUE(est.ok());
  bool has_boundary_near_step = false;
  for (double edge : est->partition()) {
    if (std::fabs(edge - 40.0) < 6.0) has_boundary_near_step = true;
  }
  EXPECT_TRUE(has_boundary_near_step);
}

TEST(HybridTest, FullDomainSelectivityNearOne) {
  const auto sample = StepSample(2000, 4);
  auto est = HybridEstimator::Create(sample, kDomain, {});
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->EstimateSelectivity(kDomain.lo, kDomain.hi), 1.0, 0.05);
}

TEST(HybridTest, EstimatesStepDataAccurately) {
  const auto sample = StepSample(4000, 5);
  auto est = HybridEstimator::Create(sample, kDomain, {});
  ASSERT_TRUE(est.ok());
  // True selectivities: [0,40] holds 0.8, [40,100] holds 0.2.
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 40.0), 0.8, 0.05);
  EXPECT_NEAR(est->EstimateSelectivity(40.0, 100.0), 0.2, 0.05);
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 20.0), 0.4, 0.05);
}

TEST(HybridTest, EstimatesWithinUnitInterval) {
  const auto sample = StepSample(1000, 6);
  auto est = HybridEstimator::Create(sample, kDomain, {});
  ASSERT_TRUE(est.ok());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double a = 100.0 * rng.NextDouble();
    const double b = a + (100.0 - a) * rng.NextDouble();
    const double s = est->EstimateSelectivity(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(HybridTest, MonotoneInUpperBound) {
  const auto sample = StepSample(1500, 8);
  auto est = HybridEstimator::Create(sample, kDomain, {});
  ASSERT_TRUE(est.ok());
  double prev = 0.0;
  for (double b = 0.0; b <= 100.0; b += 0.5) {
    const double s = est->EstimateSelectivity(0.0, b);
    EXPECT_GE(s, prev - 1e-9);
    prev = s;
  }
}

TEST(HybridTest, MergesUnderpopulatedBins) {
  const auto sample = StepSample(600, 9);
  HybridEstimatorOptions options;
  options.min_bin_fraction = 0.2;  // aggressive merging
  options.change_points.max_change_points = 8;
  auto est = HybridEstimator::Create(sample, kDomain, options);
  ASSERT_TRUE(est.ok());
  // Every remaining bin must hold at least ~20% of the samples, so there
  // can be at most 5 bins.
  EXPECT_LE(est->num_bins(), 5u);
}

TEST(HybridTest, ReflectionBoundaryPolicyWorksToo) {
  const auto sample = StepSample(1000, 10);
  HybridEstimatorOptions options;
  options.boundary = BoundaryPolicy::kReflection;
  auto est = HybridEstimator::Create(sample, kDomain, options);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 40.0), 0.8, 0.07);
}

TEST(HybridTest, NameMentionsBins) {
  const auto sample = StepSample(500, 11);
  auto est = HybridEstimator::Create(sample, kDomain, {});
  ASSERT_TRUE(est.ok());
  EXPECT_NE(est->name().find("hybrid("), std::string::npos);
}

}  // namespace
}  // namespace selest
