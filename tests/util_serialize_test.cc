#include "src/util/serialize.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace selest {
namespace {

TEST(SerializeTest, RoundTripScalars) {
  ByteWriter writer;
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(0x0123456789abcdefull);
  writer.WriteDouble(-3.25);
  writer.WriteString("hello");
  ByteReader reader(writer.TakeBytes());
  EXPECT_EQ(reader.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(reader.ReadDouble().value(), -3.25);
  EXPECT_EQ(reader.ReadString().value(), "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, RoundTripSpecialDoubles) {
  ByteWriter writer;
  writer.WriteDouble(0.0);
  writer.WriteDouble(-0.0);
  writer.WriteDouble(std::numeric_limits<double>::infinity());
  writer.WriteDouble(std::numeric_limits<double>::denorm_min());
  ByteReader reader(writer.TakeBytes());
  EXPECT_EQ(reader.ReadDouble().value(), 0.0);
  EXPECT_TRUE(std::signbit(reader.ReadDouble().value()));
  EXPECT_TRUE(std::isinf(reader.ReadDouble().value()));
  EXPECT_EQ(reader.ReadDouble().value(),
            std::numeric_limits<double>::denorm_min());
}

TEST(SerializeTest, RoundTripVector) {
  ByteWriter writer;
  const std::vector<double> values{1.0, 2.5, -7.75, 1e300};
  writer.WriteDoubleVector(values);
  ByteReader reader(writer.TakeBytes());
  EXPECT_EQ(reader.ReadDoubleVector().value(), values);
}

TEST(SerializeTest, EmptyStringAndVector) {
  ByteWriter writer;
  writer.WriteString("");
  writer.WriteDoubleVector({});
  ByteReader reader(writer.TakeBytes());
  EXPECT_EQ(reader.ReadString().value(), "");
  EXPECT_TRUE(reader.ReadDoubleVector().value().empty());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, TruncatedInputFailsCleanly) {
  ByteWriter writer;
  writer.WriteU64(42);
  std::vector<uint8_t> bytes = writer.TakeBytes();
  bytes.pop_back();
  ByteReader reader(std::move(bytes));
  auto result = reader.ReadU64();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, CorruptVectorLengthRejectedBeforeAllocation) {
  ByteWriter writer;
  writer.WriteU64(std::numeric_limits<uint64_t>::max() / 16);  // absurd count
  ByteReader reader(writer.TakeBytes());
  EXPECT_FALSE(reader.ReadDoubleVector().ok());
}

TEST(SerializeTest, StringWithEmbeddedNul) {
  ByteWriter writer;
  const std::string value{"a\0b", 3};
  writer.WriteString(value);
  ByteReader reader(writer.TakeBytes());
  EXPECT_EQ(reader.ReadString().value(), value);
}

TEST(SerializeTest, RemainingTracksConsumption) {
  ByteWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(2);
  ByteReader reader(writer.TakeBytes());
  EXPECT_EQ(reader.remaining(), 8u);
  EXPECT_TRUE(reader.ReadU32().ok());
  EXPECT_EQ(reader.remaining(), 4u);
  EXPECT_FALSE(reader.AtEnd());
  EXPECT_TRUE(reader.ReadU32().ok());
  EXPECT_TRUE(reader.AtEnd());
}

// --- snapshot envelope ---

TEST(SnapshotEnvelopeTest, Crc32MatchesIeeeCheckValue) {
  // The standard CRC-32/IEEE check value for the ASCII string "123456789".
  const std::string check = "123456789";
  const std::vector<uint8_t> bytes(check.begin(), check.end());
  EXPECT_EQ(Crc32(bytes), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::span<const uint8_t>{}), 0u);
}

TEST(SnapshotEnvelopeTest, WrapUnwrapRoundTrips) {
  const std::vector<uint8_t> payload{0x01, 0x02, 0xFE, 0x00, 0x42};
  const std::vector<uint8_t> wrapped = WrapSnapshot(7, payload);
  EXPECT_EQ(wrapped.size(), payload.size() + 24);  // 20 header + 4 CRC
  auto view = UnwrapSnapshot(wrapped);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->type_tag, 7u);
  EXPECT_EQ(view->payload, payload);
}

TEST(SnapshotEnvelopeTest, EmptyPayloadRoundTrips) {
  auto view = UnwrapSnapshot(WrapSnapshot(1, {}));
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->payload.empty());
}

TEST(SnapshotEnvelopeTest, TruncationIsOutOfRange) {
  const std::vector<uint8_t> payload{1, 2, 3, 4};
  const std::vector<uint8_t> wrapped = WrapSnapshot(1, payload);
  for (size_t keep = 0; keep < wrapped.size(); ++keep) {
    auto result = UnwrapSnapshot(
        std::span<const uint8_t>(wrapped.data(), keep));
    ASSERT_FALSE(result.ok()) << keep;
  }
  EXPECT_EQ(UnwrapSnapshot(std::span<const uint8_t>(wrapped.data(), 12))
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(SnapshotEnvelopeTest, PayloadFlipIsDataLoss) {
  const std::vector<uint8_t> payload{1, 2, 3, 4};
  std::vector<uint8_t> wrapped = WrapSnapshot(1, payload);
  wrapped[20] ^= 0x10;
  EXPECT_EQ(UnwrapSnapshot(wrapped).status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotEnvelopeTest, BadMagicIsDataLoss) {
  const std::vector<uint8_t> payload{1, 2, 3, 4};
  std::vector<uint8_t> wrapped = WrapSnapshot(1, payload);
  wrapped[1] ^= 0xFF;
  EXPECT_EQ(UnwrapSnapshot(wrapped).status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotEnvelopeTest, FutureVersionIsFailedPrecondition) {
  const std::vector<uint8_t> payload{1, 2, 3, 4};
  std::vector<uint8_t> wrapped = WrapSnapshot(1, payload);
  wrapped[4] = static_cast<uint8_t>(kSnapshotFormatVersion + 1);
  EXPECT_EQ(UnwrapSnapshot(wrapped).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotEnvelopeTest, TrailingBytesAreInvalidArgument) {
  const std::vector<uint8_t> payload{1, 2, 3, 4};
  std::vector<uint8_t> wrapped = WrapSnapshot(1, payload);
  wrapped.push_back(0xAB);
  EXPECT_EQ(UnwrapSnapshot(wrapped).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotEnvelopeTest, FileRoundTripAndMissingFile) {
  const std::string path = testing::TempDir() + "selest_envelope_io.bin";
  const std::vector<uint8_t> payload{9, 8, 7};
  const std::vector<uint8_t> wrapped = WrapSnapshot(3, payload);
  ASSERT_TRUE(WriteBytesToFile(path, wrapped).ok());
  auto read = ReadBytesFromFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), wrapped);
  auto missing = ReadBytesFromFile(path + ".does-not-exist");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace selest
