#include "src/util/serialize.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace selest {
namespace {

TEST(SerializeTest, RoundTripScalars) {
  ByteWriter writer;
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(0x0123456789abcdefull);
  writer.WriteDouble(-3.25);
  writer.WriteString("hello");
  ByteReader reader(writer.TakeBytes());
  EXPECT_EQ(reader.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(reader.ReadDouble().value(), -3.25);
  EXPECT_EQ(reader.ReadString().value(), "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, RoundTripSpecialDoubles) {
  ByteWriter writer;
  writer.WriteDouble(0.0);
  writer.WriteDouble(-0.0);
  writer.WriteDouble(std::numeric_limits<double>::infinity());
  writer.WriteDouble(std::numeric_limits<double>::denorm_min());
  ByteReader reader(writer.TakeBytes());
  EXPECT_EQ(reader.ReadDouble().value(), 0.0);
  EXPECT_TRUE(std::signbit(reader.ReadDouble().value()));
  EXPECT_TRUE(std::isinf(reader.ReadDouble().value()));
  EXPECT_EQ(reader.ReadDouble().value(),
            std::numeric_limits<double>::denorm_min());
}

TEST(SerializeTest, RoundTripVector) {
  ByteWriter writer;
  const std::vector<double> values{1.0, 2.5, -7.75, 1e300};
  writer.WriteDoubleVector(values);
  ByteReader reader(writer.TakeBytes());
  EXPECT_EQ(reader.ReadDoubleVector().value(), values);
}

TEST(SerializeTest, EmptyStringAndVector) {
  ByteWriter writer;
  writer.WriteString("");
  writer.WriteDoubleVector({});
  ByteReader reader(writer.TakeBytes());
  EXPECT_EQ(reader.ReadString().value(), "");
  EXPECT_TRUE(reader.ReadDoubleVector().value().empty());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, TruncatedInputFailsCleanly) {
  ByteWriter writer;
  writer.WriteU64(42);
  std::vector<uint8_t> bytes = writer.TakeBytes();
  bytes.pop_back();
  ByteReader reader(std::move(bytes));
  auto result = reader.ReadU64();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, CorruptVectorLengthRejectedBeforeAllocation) {
  ByteWriter writer;
  writer.WriteU64(std::numeric_limits<uint64_t>::max() / 16);  // absurd count
  ByteReader reader(writer.TakeBytes());
  EXPECT_FALSE(reader.ReadDoubleVector().ok());
}

TEST(SerializeTest, StringWithEmbeddedNul) {
  ByteWriter writer;
  const std::string value{"a\0b", 3};
  writer.WriteString(value);
  ByteReader reader(writer.TakeBytes());
  EXPECT_EQ(reader.ReadString().value(), value);
}

TEST(SerializeTest, RemainingTracksConsumption) {
  ByteWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(2);
  ByteReader reader(writer.TakeBytes());
  EXPECT_EQ(reader.remaining(), 8u);
  EXPECT_TRUE(reader.ReadU32().ok());
  EXPECT_EQ(reader.remaining(), 4u);
  EXPECT_FALSE(reader.AtEnd());
  EXPECT_TRUE(reader.ReadU32().ok());
  EXPECT_TRUE(reader.AtEnd());
}

}  // namespace
}  // namespace selest
