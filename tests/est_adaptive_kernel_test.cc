#include "src/est/adaptive_kernel_estimator.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/est/kernel_estimator.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

std::vector<double> SkewedSample(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample(n);
  for (double& v : sample) {
    // Exponential-ish: dense near 0, long sparse tail.
    v = kDomain.Clamp(rng.NextExponential(1.0 / 12.0));
  }
  return sample;
}

TEST(AdaptiveKernelTest, RejectsBadConfig) {
  const std::vector<double> sample{1.0, 2.0};
  EXPECT_FALSE(AdaptiveKernelEstimator::Create({}, kDomain, {}).ok());
  AdaptiveKernelOptions options;
  options.sensitivity = -0.1;
  EXPECT_FALSE(AdaptiveKernelEstimator::Create(sample, kDomain, options).ok());
  options.sensitivity = 1.1;
  EXPECT_FALSE(AdaptiveKernelEstimator::Create(sample, kDomain, options).ok());
  options.sensitivity = 0.5;
  options.max_widening = 0.5;
  EXPECT_FALSE(AdaptiveKernelEstimator::Create(sample, kDomain, options).ok());
}

TEST(AdaptiveKernelTest, ZeroSensitivityMatchesFixedBandwidth) {
  const auto sample = SkewedSample(400, 1);
  AdaptiveKernelOptions adaptive_options;
  adaptive_options.sensitivity = 0.0;
  adaptive_options.base_bandwidth = 4.0;
  auto adaptive =
      AdaptiveKernelEstimator::Create(sample, kDomain, adaptive_options);
  ASSERT_TRUE(adaptive.ok());
  KernelEstimatorOptions fixed_options;
  fixed_options.bandwidth = 4.0;
  auto fixed = KernelEstimator::Create(sample, kDomain, fixed_options);
  ASSERT_TRUE(fixed.ok());
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const double a = 90.0 * rng.NextDouble();
    const double b = a + 10.0 * rng.NextDouble();
    EXPECT_NEAR(adaptive->EstimateSelectivity(a, b),
                fixed->EstimateSelectivity(a, b), 1e-12);
  }
}

TEST(AdaptiveKernelTest, BandwidthsNarrowInDenseRegions) {
  const auto sample = SkewedSample(2000, 3);
  auto est = AdaptiveKernelEstimator::Create(sample, kDomain, {});
  ASSERT_TRUE(est.ok());
  // Samples are sorted ascending; the head of the distribution is dense
  // (small h_i), the tail sparse (large h_i).
  const auto& bandwidths = est->bandwidths();
  double head = 0.0;
  double tail = 0.0;
  const size_t tenth = bandwidths.size() / 10;
  for (size_t i = 0; i < tenth; ++i) {
    head += bandwidths[i];
    tail += bandwidths[bandwidths.size() - 1 - i];
  }
  EXPECT_LT(head, 0.5 * tail);
}

TEST(AdaptiveKernelTest, MaxWideningCapsBandwidths) {
  const auto sample = SkewedSample(500, 4);
  AdaptiveKernelOptions options;
  options.max_widening = 2.0;
  auto est = AdaptiveKernelEstimator::Create(sample, kDomain, options);
  ASSERT_TRUE(est.ok());
  for (double h : est->bandwidths()) {
    EXPECT_LE(h, 2.0 * est->base_bandwidth() + 1e-12);
  }
}

TEST(AdaptiveKernelTest, EstimatesWithinUnitInterval) {
  const auto sample = SkewedSample(600, 5);
  auto est = AdaptiveKernelEstimator::Create(sample, kDomain, {});
  ASSERT_TRUE(est.ok());
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const double a = -10.0 + 120.0 * rng.NextDouble();
    const double b = a + 60.0 * rng.NextDouble();
    const double s = est->EstimateSelectivity(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(AdaptiveKernelTest, MonotoneInUpperBound) {
  const auto sample = SkewedSample(600, 7);
  auto est = AdaptiveKernelEstimator::Create(sample, kDomain, {});
  ASSERT_TRUE(est.ok());
  double prev = 0.0;
  for (double b = 0.0; b <= 100.0; b += 1.0) {
    const double s = est->EstimateSelectivity(0.0, b);
    EXPECT_GE(s, prev - 1e-12);
    prev = s;
  }
}

TEST(AdaptiveKernelTest, BeatsFixedBandwidthOnSkewedTail) {
  // Large skewed population; compare MRE of tail queries: the adaptive
  // estimator's widened tail bumps should not lose to the fixed-h version.
  Rng rng(8);
  std::vector<double> population(100000);
  for (double& v : population) {
    v = kDomain.Clamp(rng.NextExponential(1.0 / 12.0));
  }
  std::sort(population.begin(), population.end());
  const auto truth = [&population](double a, double b) {
    const auto lo = std::lower_bound(population.begin(), population.end(), a);
    const auto hi = std::upper_bound(population.begin(), population.end(), b);
    return static_cast<double>(hi - lo) /
           static_cast<double>(population.size());
  };
  const auto sample = SkewedSample(2000, 9);
  auto adaptive = AdaptiveKernelEstimator::Create(sample, kDomain, {});
  ASSERT_TRUE(adaptive.ok());
  KernelEstimatorOptions fixed_options;
  fixed_options.bandwidth = adaptive->base_bandwidth();
  auto fixed = KernelEstimator::Create(sample, kDomain, fixed_options);
  ASSERT_TRUE(fixed.ok());
  double adaptive_error = 0.0;
  double fixed_error = 0.0;
  int counted = 0;
  Rng query_rng(10);
  for (int i = 0; i < 300; ++i) {
    // Tail queries: [40, 95] region where data is sparse.
    const double a = 40.0 + 50.0 * query_rng.NextDouble();
    const double b = a + 5.0;
    const double t = truth(a, b);
    if (t <= 0.0) continue;
    adaptive_error += std::fabs(adaptive->EstimateSelectivity(a, b) - t) / t;
    fixed_error += std::fabs(fixed->EstimateSelectivity(a, b) - t) / t;
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_LT(adaptive_error, 1.2 * fixed_error);
}

TEST(AdaptiveKernelTest, NameAndStorage) {
  const auto sample = SkewedSample(100, 11);
  auto est = AdaptiveKernelEstimator::Create(sample, kDomain, {});
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->name(), "adaptive-kernel(epanechnikov)");
  EXPECT_EQ(est->StorageBytes(), (2 * 100 + 1) * sizeof(double));
}

}  // namespace
}  // namespace selest
