#include "src/density/kernel.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/numeric.h"

namespace selest {
namespace {

const std::vector<KernelType> kAllKernels{
    KernelType::kEpanechnikov, KernelType::kBiweight, KernelType::kTriangular,
    KernelType::kUniform, KernelType::kGaussian};

class KernelParamTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(KernelParamTest, IntegratesToOne) {
  const Kernel k(GetParam());
  const double r = k.support_radius();
  const double mass =
      AdaptiveSimpson([&k](double t) { return k.Value(t); }, -r, r, 1e-12);
  EXPECT_NEAR(mass, 1.0, 1e-7);
}

TEST_P(KernelParamTest, IsSymmetric) {
  const Kernel k(GetParam());
  for (double t : {0.1, 0.3, 0.77, 0.99, 1.5}) {
    EXPECT_DOUBLE_EQ(k.Value(t), k.Value(-t));
  }
}

TEST_P(KernelParamTest, IsNonNegative) {
  const Kernel k(GetParam());
  for (double t = -2.0; t <= 2.0; t += 0.01) {
    EXPECT_GE(k.Value(t), 0.0);
  }
}

TEST_P(KernelParamTest, CdfMatchesIntegralOfValue) {
  const Kernel k(GetParam());
  const double r = k.support_radius();
  for (double t : {-0.9, -0.4, 0.0, 0.25, 0.6, 0.95}) {
    const double integral =
        AdaptiveSimpson([&k](double u) { return k.Value(u); }, -r, t, 1e-12);
    EXPECT_NEAR(k.Cdf(t), integral, 1e-7) << k.name() << " at " << t;
  }
}

TEST_P(KernelParamTest, CdfEndpoints) {
  const Kernel k(GetParam());
  const double r = k.support_radius();
  EXPECT_NEAR(k.Cdf(-r), 0.0, 1e-8);
  EXPECT_NEAR(k.Cdf(r), 1.0, 1e-8);
  EXPECT_NEAR(k.Cdf(0.0), 0.5, 1e-12);  // symmetry
}

TEST_P(KernelParamTest, CdfIsMonotone) {
  const Kernel k(GetParam());
  double prev = -1.0;
  for (double t = -1.5; t <= 1.5; t += 0.01) {
    const double c = k.Cdf(t);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

TEST_P(KernelParamTest, SquaredL2NormMatchesQuadrature) {
  const Kernel k(GetParam());
  const double r = k.support_radius();
  const double quad = AdaptiveSimpson(
      [&k](double t) { return k.Value(t) * k.Value(t); }, -r, r, 1e-12);
  EXPECT_NEAR(k.squared_l2_norm(), quad, 1e-7) << k.name();
}

TEST_P(KernelParamTest, SecondMomentMatchesQuadrature) {
  const Kernel k(GetParam());
  const double r = k.support_radius();
  const double quad = AdaptiveSimpson(
      [&k](double t) { return t * t * k.Value(t); }, -r, r, 1e-12);
  EXPECT_NEAR(k.second_moment(), quad, 1e-6) << k.name();
}

TEST_P(KernelParamTest, FirstMomentVanishes) {
  const Kernel k(GetParam());
  const double r = k.support_radius();
  const double quad = AdaptiveSimpson(
      [&k](double t) { return t * k.Value(t); }, -r, r, 1e-12);
  EXPECT_NEAR(quad, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelParamTest,
                         ::testing::ValuesIn(kAllKernels),
                         [](const ::testing::TestParamInfo<KernelType>& info) {
                           return Kernel(info.param).name();
                         });

TEST(EpanechnikovTest, PaperConstants) {
  const Kernel k(KernelType::kEpanechnikov);
  // §4.2: k2 = 1/5; §3.2: K(t) = 3/4 (1 − t²).
  EXPECT_DOUBLE_EQ(k.second_moment(), 0.2);
  EXPECT_DOUBLE_EQ(k.Value(0.0), 0.75);
  EXPECT_DOUBLE_EQ(k.Value(1.0), 0.0);
  EXPECT_DOUBLE_EQ(k.Value(0.5), 0.75 * 0.75);
  // Normal scale constant ≈ 2.345 (§4.2).
  EXPECT_NEAR(k.normal_scale_constant(), 2.345, 0.001);
}

TEST(EpanechnikovTest, PrimitiveMatchesPaperFormula) {
  const Kernel k(KernelType::kEpanechnikov);
  // F_K(t) = (3t − t³)/4; Cdf = 0.5 + F_K.
  for (double t : {-1.0, -0.5, 0.0, 0.3, 1.0}) {
    EXPECT_NEAR(k.Cdf(t), 0.5 + 0.25 * (3.0 * t - t * t * t), 1e-12);
  }
}

TEST(GaussianKernelTest, EffectiveSupportCapturesAllMass) {
  const Kernel k(KernelType::kGaussian);
  EXPECT_LT(1.0 - k.Cdf(k.support_radius()), 1e-8);
}

TEST(KernelTest, NamesAreDistinct) {
  std::vector<std::string> names;
  for (KernelType t : kAllKernels) names.push_back(Kernel(t).name());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace selest
