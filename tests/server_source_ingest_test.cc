// Live-server ingest from a ColumnSource: the out-of-core path must be
// observationally identical to span Ingest over the materialized rows.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/catalog/live_server.h"
#include "src/data/column_source.h"
#include "src/data/dataset.h"
#include "src/data/distribution.h"
#include "src/data/domain.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1000.0);

std::vector<double> MakeRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(kDomain.lo + rng.NextDouble() * kDomain.width());
  }
  return rows;
}

EstimatorConfig EquiWidthConfig() {
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = 32;
  return config;
}

LiveServerOptions InlineOptions() {
  LiveServerOptions options;
  options.background_refresh = false;
  return options;
}

TEST(ServerSourceIngestTest, MatchesSpanIngestExactly) {
  const std::vector<double> initial = MakeRows(400, 1);
  const std::vector<double> extra = MakeRows(600, 2);

  LiveStatisticsServer via_span(InlineOptions());
  ASSERT_TRUE(
      via_span.RegisterColumn("t", "x", kDomain, EquiWidthConfig(), initial)
          .ok());
  ASSERT_TRUE(via_span.Ingest("t", "x", extra).ok());

  LiveStatisticsServer via_source(InlineOptions());
  ASSERT_TRUE(
      via_source.RegisterColumn("t", "x", kDomain, EquiWidthConfig(), initial)
          .ok());
  InMemoryColumnSource source("x", kDomain, extra, 64);
  auto ingested = via_source.IngestFromSource("t", "x", source);
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  EXPECT_EQ(*ingested, extra.size());

  auto span_stats = via_span.ColumnStats("t", "x");
  auto source_stats = via_source.ColumnStats("t", "x");
  ASSERT_TRUE(span_stats.ok());
  ASSERT_TRUE(source_stats.ok());
  EXPECT_EQ(source_stats->ingested_rows, span_stats->ingested_rows);
  EXPECT_EQ(source_stats->ingested_rows, extra.size());

  for (const RangeQuery query :
       {RangeQuery{0.0, 100.0}, RangeQuery{250.0, 700.0},
        RangeQuery{900.0, 1000.0}}) {
    auto a = via_span.Estimate("t", "x", query);
    auto b = via_source.Estimate("t", "x", query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "[" << query.a << ", " << query.b << "]";
  }
}

TEST(ServerSourceIngestTest, ChunkSizeDoesNotChangeServing) {
  const std::vector<double> initial = MakeRows(300, 3);
  const std::vector<double> extra = MakeRows(500, 4);
  const RangeQuery query{100.0, 600.0};
  double reference = -1.0;
  for (const size_t chunk_rows : {1ul, 64ul, 4096ul}) {
    LiveStatisticsServer server(InlineOptions());
    ASSERT_TRUE(
        server.RegisterColumn("t", "x", kDomain, EquiWidthConfig(), initial)
            .ok());
    InMemoryColumnSource source("x", kDomain, extra, chunk_rows);
    ASSERT_TRUE(server.IngestFromSource("t", "x", source).ok());
    auto served = server.Estimate("t", "x", query);
    ASSERT_TRUE(served.ok());
    if (reference < 0.0) {
      reference = *served;
    } else {
      EXPECT_EQ(*served, reference) << "chunk_rows=" << chunk_rows;
    }
  }
}

TEST(ServerSourceIngestTest, UnknownColumnIsNotFound) {
  LiveStatisticsServer server(InlineOptions());
  const std::vector<double> rows = MakeRows(10, 5);
  InMemoryColumnSource source("x", kDomain, rows, 4);
  EXPECT_EQ(server.IngestFromSource("t", "missing", source).status().code(),
            StatusCode::kNotFound);
}

TEST(ServerSourceIngestTest, SyntheticSourceStreamsIntoServer) {
  LiveStatisticsServer server(InlineOptions());
  const std::vector<double> initial = MakeRows(200, 6);
  ASSERT_TRUE(
      server.RegisterColumn("t", "x", ContinuousDomain(0.0, 1024.0),
                            EquiWidthConfig(), initial)
          .ok());
  auto source = MakeNamedSource("uniform", 2000, 10, 11);
  ASSERT_TRUE(source.ok());
  auto ingested = server.IngestFromSource("t", "x", **source);
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  EXPECT_EQ(*ingested, 2000u);
  auto stats = server.ColumnStats("t", "x");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->ingested_rows, 2000u);
}

}  // namespace
}  // namespace selest
