// The guarded sweep acceptance test: a parallel_experiment sweep with a
// deliberately broken config completes, records the error in that cell,
// and still reports fallback estimates — and healthy cells stay
// bit-identical to the unguarded runner.
#include "src/eval/parallel_experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/data/distribution.h"
#include "src/exec/fault_injection.h"
#include "src/util/random.h"

namespace selest {
namespace {

Dataset MakeData() {
  Rng rng(11);
  const Domain domain = BitDomain(16);
  const NormalDistribution dist(0.5 * domain.hi, domain.width() / 8.0);
  return GenerateDataset("guarded-sweep", dist, 10000, domain, rng);
}

ExperimentSetup MakeSmallSetup(const Dataset& data) {
  ProtocolConfig protocol;
  protocol.sample_size = 500;
  protocol.num_queries = 200;
  return MakeSetup(data, protocol);
}

void ExpectBitIdentical(const ErrorReport& a, const ErrorReport& b) {
  EXPECT_EQ(a.mean_relative_error, b.mean_relative_error);
  EXPECT_EQ(a.mean_absolute_error, b.mean_absolute_error);
  EXPECT_EQ(a.max_relative_error, b.max_relative_error);
  EXPECT_EQ(a.p50_relative_error, b.p50_relative_error);
  EXPECT_EQ(a.evaluated, b.evaluated);
}

// Two healthy configs around one that cannot build: NaN fixed bandwidth.
std::vector<EstimatorConfig> ConfigsWithOneBroken() {
  std::vector<EstimatorConfig> configs(3);
  configs[0].kind = EstimatorKind::kEquiWidth;
  configs[1].kind = EstimatorKind::kKernel;
  configs[1].smoothing = SmoothingRule::kFixed;
  configs[1].fixed_smoothing = std::numeric_limits<double>::quiet_NaN();
  configs[2].kind = EstimatorKind::kEquiDepth;
  return configs;
}

class GuardedSweepTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::DisarmAll(); }
};

TEST_F(GuardedSweepTest, BrokenConfigYieldsErrorCellPlusFallbackEstimates) {
  const Dataset data = MakeData();
  const ExperimentSetup setup = MakeSmallSetup(data);
  const auto configs = ConfigsWithOneBroken();
  for (const size_t threads : {size_t{1}, size_t{3}}) {
    const auto cells =
        RunConfigsGuarded(setup, configs, ParallelExecOptions{threads});
    ASSERT_EQ(cells.size(), 3u);

    // Healthy cells: clean, and bit-identical to the unguarded runner.
    const auto raw = RunConfigsParallel(setup, configs,
                                        ParallelExecOptions{threads});
    for (const size_t c : {size_t{0}, size_t{2}}) {
      EXPECT_TRUE(cells[c].primary_status.ok());
      EXPECT_TRUE(cells[c].eval_status.ok());
      EXPECT_FALSE(cells[c].degraded());
      ASSERT_TRUE(raw[c].ok());
      ExpectBitIdentical(cells[c].report, raw[c].value());
    }

    // The broken cell: the build error is recorded, the sweep did not
    // abort, and the fallback chain still produced a scored report.
    const GuardedCellReport& broken = cells[1];
    EXPECT_FALSE(broken.primary_status.ok());
    EXPECT_EQ(broken.primary_status.code(), StatusCode::kInvalidArgument);
    EXPECT_TRUE(broken.eval_status.ok());
    EXPECT_TRUE(broken.degraded());
    EXPECT_GT(broken.report.evaluated, 0u);
    EXPECT_TRUE(std::isfinite(broken.report.mean_relative_error));
    EXPECT_NE(broken.estimator_name.find("guarded("), std::string::npos);
    EXPECT_FALSE(raw[1].ok());  // the unguarded runner only has the error
  }
}

TEST_F(GuardedSweepTest, GuardedSweepIsDeterministicAcrossThreadCounts) {
  const Dataset data = MakeData();
  const ExperimentSetup setup = MakeSmallSetup(data);
  const auto configs = ConfigsWithOneBroken();
  const auto serial =
      RunConfigsGuarded(setup, configs, ParallelExecOptions{1});
  const auto parallel =
      RunConfigsGuarded(setup, configs, ParallelExecOptions{4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t c = 0; c < serial.size(); ++c) {
    EXPECT_EQ(serial[c].primary_status.code(),
              parallel[c].primary_status.code());
    ExpectBitIdentical(serial[c].report, parallel[c].report);
    EXPECT_EQ(serial[c].estimator_name, parallel[c].estimator_name);
  }
}

TEST_F(GuardedSweepTest, InjectedBuildFaultsDegradeEveryCellToUniform) {
  const Dataset data = MakeData();
  const ExperimentSetup setup = MakeSmallSetup(data);
  const auto configs = ConfigsWithOneBroken();
  ScopedFault fault(kFaultPointEstimatorBuild);
  const auto cells =
      RunConfigsGuarded(setup, configs, ParallelExecOptions{1});
  for (const GuardedCellReport& cell : cells) {
    EXPECT_EQ(cell.primary_status.code(), StatusCode::kInternal);
    EXPECT_TRUE(cell.eval_status.ok());
    // Uniform-only chains still score every query.
    EXPECT_GT(cell.report.evaluated, 0u);
    EXPECT_EQ(cell.estimator_name, "guarded(uniform)");
  }
}

TEST_F(GuardedSweepTest, InjectedTaskFaultsSurfaceAsEvalErrors) {
  const Dataset data = MakeData();
  const ExperimentSetup setup = MakeSmallSetup(data);
  std::vector<EstimatorConfig> configs(1);
  configs[0].kind = EstimatorKind::kEquiWidth;
  ScopedFault fault(kFaultPointExecTask);
  for (const size_t threads : {size_t{1}, size_t{3}}) {
    const auto cells =
        RunConfigsGuarded(setup, configs, ParallelExecOptions{threads});
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_TRUE(cells[0].primary_status.ok());
    EXPECT_FALSE(cells[0].eval_status.ok());
    EXPECT_EQ(cells[0].eval_status.code(), StatusCode::kInternal);
    EXPECT_TRUE(cells[0].degraded());
    EXPECT_EQ(cells[0].report.evaluated, 0u);  // the report stays zeroed
  }
}

TEST_F(GuardedSweepTest, EmptyConfigListAndEmptySampleDoNotCrash) {
  const Dataset data = MakeData();
  const ExperimentSetup setup = MakeSmallSetup(data);
  EXPECT_TRUE(RunConfigsGuarded(setup, {}, ParallelExecOptions{1}).empty());

  ExperimentSetup degenerate = setup;
  degenerate.sample.clear();
  std::vector<EstimatorConfig> configs(1);
  configs[0].kind = EstimatorKind::kKernel;
  const auto cells =
      RunConfigsGuarded(degenerate, configs, ParallelExecOptions{1});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_FALSE(cells[0].primary_status.ok());
  EXPECT_TRUE(cells[0].eval_status.ok());
  EXPECT_GT(cells[0].report.evaluated, 0u);  // uniform still answers
}

}  // namespace
}  // namespace selest
