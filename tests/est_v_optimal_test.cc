#include <cmath>
#include "src/est/v_optimal_histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/est/equi_width_histogram.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

TEST(VOptimalTest, RejectsBadInput) {
  EXPECT_FALSE(VOptimalHistogram::Create({}, kDomain, 4).ok());
  const std::vector<double> sample{1.0};
  EXPECT_FALSE(VOptimalHistogram::Create(sample, kDomain, 0).ok());
  EXPECT_FALSE(VOptimalHistogram::Create(sample, kDomain, 10, 5).ok());
}

TEST(VOptimalTest, SingleBucketMatchesUniformOverDomain) {
  const std::vector<double> sample{10.0, 20.0, 30.0};
  auto est = VOptimalHistogram::Create(sample, kDomain, 1);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->num_buckets(), 1);
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(0.0, 50.0), 0.5);
}

TEST(VOptimalTest, SeparatesTwoLevels) {
  // Dense on [0, 50), sparse on [50, 100): the optimal 2-bucket partition
  // splits at 50 and each bucket's frequencies are constant → SSE 0.
  Rng rng(1);
  std::vector<double> sample;
  for (int i = 0; i < 64; ++i) {
    // 4 per cell in the left half, 1 per cell in the right half, with the
    // default 512 base cells aligned to eighths.
    sample.push_back(50.0 * (i + 0.5) / 64.0);
    sample.push_back(50.0 * (i + 0.5) / 64.0);
    sample.push_back(50.0 * (i + 0.5) / 64.0);
    sample.push_back(50.0 + 50.0 * (i + 0.5) / 64.0);
  }
  auto est = VOptimalHistogram::Create(sample, kDomain, 2, 128);
  ASSERT_TRUE(est.ok());
  ASSERT_EQ(est->bins().edges().size(), 3u);
  EXPECT_NEAR(est->bins().edges()[1], 50.0, 1.0);
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 50.0), 0.75, 0.02);
}

TEST(VOptimalTest, SseIsOptimalVersusManualPartitions) {
  // Brute-force all 2-bucket partitions at a small base resolution and
  // compare with the DP's reported SSE.
  Rng rng(2);
  std::vector<double> sample(200);
  for (double& v : sample) v = 100.0 * rng.NextDouble() * rng.NextDouble();
  const int base = 32;
  auto est = VOptimalHistogram::Create(sample, kDomain, 2, base);
  ASSERT_TRUE(est.ok());

  // Rebuild the base frequency vector exactly as the implementation does.
  std::vector<double> freq(base, 0.0);
  for (double v : sample) {
    auto cell = static_cast<int>(v / (100.0 / base));
    cell = std::min(cell, base - 1);
    freq[static_cast<size_t>(cell)] += 1.0;
  }
  const auto sse = [&](int lo, int hi) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int c = lo; c < hi; ++c) {
      sum += freq[static_cast<size_t>(c)];
      sum_sq += freq[static_cast<size_t>(c)] * freq[static_cast<size_t>(c)];
    }
    return sum_sq - sum * sum / (hi - lo);
  };
  double best = sse(0, base);
  for (int split = 1; split < base; ++split) {
    best = std::min(best, sse(0, split) + sse(split, base));
  }
  EXPECT_NEAR(est->sse(), best, 1e-9);
}

TEST(VOptimalTest, MoreBucketsNeverIncreaseSse) {
  Rng rng(3);
  std::vector<double> sample(500);
  for (double& v : sample) v = 100.0 * rng.NextDouble() * rng.NextDouble();
  double previous_sse = 1e300;
  for (int buckets : {1, 2, 4, 8, 16, 32}) {
    auto est = VOptimalHistogram::Create(sample, kDomain, buckets, 128);
    ASSERT_TRUE(est.ok());
    EXPECT_LE(est->sse(), previous_sse + 1e-9) << buckets;
    previous_sse = est->sse();
  }
}

TEST(VOptimalTest, FullDomainSelectivityIsOne) {
  Rng rng(4);
  std::vector<double> sample(300);
  for (double& v : sample) v = 100.0 * rng.NextDouble();
  auto est = VOptimalHistogram::Create(sample, kDomain, 12);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->EstimateSelectivity(0.0, 100.0), 1.0, 1e-12);
}

TEST(VOptimalTest, CompetitiveWithEquiWidthOnSkewedData) {
  // On strongly two-level data, v-optimal with few buckets should beat an
  // equi-width histogram with the same bucket budget.
  Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 900; ++i) sample.push_back(20.0 * rng.NextDouble());
  for (int i = 0; i < 100; ++i) {
    sample.push_back(20.0 + 80.0 * rng.NextDouble());
  }
  auto voh = VOptimalHistogram::Create(sample, kDomain, 3);
  auto ewh = EquiWidthHistogram::Create(sample, kDomain, 3);
  ASSERT_TRUE(voh.ok());
  ASSERT_TRUE(ewh.ok());
  // Query inside the dense region, truth 0.45 of the sample mass.
  const double truth = 0.45;
  const double voh_error =
      std::fabs(voh->EstimateSelectivity(0.0, 10.0) - truth);
  const double ewh_error =
      std::fabs(ewh->EstimateSelectivity(0.0, 10.0) - truth);
  EXPECT_LT(voh_error, ewh_error);
}

TEST(VOptimalTest, Name) {
  const std::vector<double> sample{1.0, 2.0};
  auto est = VOptimalHistogram::Create(sample, kDomain, 2);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->name(), "v-optimal(2)");
}

}  // namespace
}  // namespace selest
