// The feedback write-back path (DESIGN.md §14): executed-query truths fold
// into the serving catalog's estimators via clone-and-swap, persist across
// catalog restarts when the durable tier is on, are rejected for
// non-query-driven estimators, and route through guarded chains to every
// supporting link.
#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/catalog/statistics_catalog.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/est/guarded_estimator.h"
#include "src/feedback/feedback_histogram.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 100.0);

std::string FreshDir(const std::string& name) {
  const std::string dir =
      testing::TempDir() + name + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

// A sample that concentrates on [0, 25] — the "stale" world. Feedback will
// teach the estimator that the data has since moved to [75, 100].
std::vector<double> StaleSample(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample(n);
  for (double& v : sample) v = 25.0 * rng.NextDouble();
  return sample;
}

TEST(FeedbackWritebackTest, ObservationsImproveTheServedEstimate) {
  Catalog catalog;  // memory-only tier
  EstimatorConfig config;
  config.kind = EstimatorKind::kFeedback;
  auto key = catalog.RegisterColumn("orders", "amount", kDomain,
                                    StaleSample(500, 1), config);
  ASSERT_TRUE(key.ok());
  const RangeQuery moved{75.0, 100.0};
  auto before = catalog.Estimate(*key, moved);
  ASSERT_TRUE(before.ok());
  EXPECT_LT(*before, 0.1);  // the stale sample has ~no mass there

  for (int i = 0; i < 48; ++i) {
    ASSERT_TRUE(catalog.ObserveTrueSelectivity(*key, moved, 0.9).ok());
  }
  auto after = catalog.Estimate(*key, moved);
  ASSERT_TRUE(after.ok());
  EXPECT_NEAR(*after, 0.9, 0.05);

  const CatalogServeStats stats = catalog.serve_stats();
  EXPECT_EQ(stats.feedback_applied, 48u);
  EXPECT_EQ(stats.feedback_rejected, 0u);
}

TEST(FeedbackWritebackTest, RelationAttributeOverloadResolvesTheDefaultKey) {
  Catalog catalog;
  EstimatorConfig config;
  config.kind = EstimatorKind::kOnlineLearning;
  ASSERT_TRUE(catalog
                  .RegisterColumn("orders", "amount", kDomain,
                                  StaleSample(500, 2), config)
                  .ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(catalog
                    .ObserveTrueSelectivity("orders", "amount",
                                            {75.0, 100.0}, 0.9)
                    .ok());
  }
  auto estimate = catalog.Estimate("orders", "amount", {75.0, 100.0});
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(*estimate, 0.5);
  EXPECT_FALSE(catalog
                   .ObserveTrueSelectivity("orders", "nope", {1.0, 2.0}, 0.5)
                   .ok());
}

TEST(FeedbackWritebackTest, NonFeedbackEstimatorRejectsWithFailedPrecondition) {
  Catalog catalog;
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  auto key = catalog.RegisterColumn("orders", "amount", kDomain,
                                    StaleSample(500, 3), config);
  ASSERT_TRUE(key.ok());
  const Status status =
      catalog.ObserveTrueSelectivity(*key, {10.0, 20.0}, 0.5);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(catalog.serve_stats().feedback_rejected, 1u);
  EXPECT_EQ(catalog.serve_stats().feedback_applied, 0u);
}

TEST(FeedbackWritebackTest, InvalidFeedbackValuesDoNotReachTheCatalogEntry) {
  Catalog catalog;
  EstimatorConfig config;
  config.kind = EstimatorKind::kFeedback;
  auto key = catalog.RegisterColumn("orders", "amount", kDomain,
                                    StaleSample(500, 4), config);
  ASSERT_TRUE(key.ok());
  EXPECT_FALSE(catalog
                   .ObserveTrueSelectivity(
                       *key, {10.0, 20.0},
                       std::numeric_limits<double>::quiet_NaN())
                   .ok());
  EXPECT_FALSE(
      catalog.ObserveTrueSelectivity(*key, {10.0, 20.0}, 1.5).ok());
  EXPECT_EQ(catalog.serve_stats().feedback_applied, 0u);
}

TEST(FeedbackWritebackTest, LearnedStatePersistsAcrossCatalogRestart) {
  const std::string dir = FreshDir("selest_feedback_writeback");
  EstimatorConfig config;
  config.kind = EstimatorKind::kFeedback;
  const RangeQuery moved{75.0, 100.0};
  CatalogKey key;
  {
    Catalog catalog(CatalogOptions{dir});
    auto registered = catalog.RegisterColumn("orders", "amount", kDomain,
                                             StaleSample(500, 5), config);
    ASSERT_TRUE(registered.ok());
    key = *registered;
    for (int i = 0; i < 48; ++i) {
      ASSERT_TRUE(catalog.ObserveTrueSelectivity(key, moved, 0.9).ok());
    }
    // Every write-back re-persisted the snapshot.
    EXPECT_GE(catalog.serve_stats().writebacks, 48u);
  }
  // A fresh catalog over the same durable tier serves the learned state —
  // NOT a rebuild from the stale sample.
  Catalog reopened(CatalogOptions{dir});
  ASSERT_TRUE(reopened
                  .RegisterColumn("orders", "amount", kDomain,
                                  StaleSample(500, 5), config)
                  .ok());
  auto estimate = reopened.Estimate(key, moved);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, 0.9, 0.05);
  EXPECT_EQ(reopened.serve_stats().snapshot_loads, 1u);
  EXPECT_EQ(reopened.serve_stats().rebuilds, 0u);
}

TEST(FeedbackWritebackTest, GuardedChainForwardsToEverySupportingLink) {
  // Chain: non-feedback primary + two query-driven fallbacks. Feedback must
  // reach both fallbacks (each counts its own observation) and the guard
  // must count one accepted observation per call.
  std::vector<std::unique_ptr<SelectivityEstimator>> chain;
  EstimatorConfig equi;
  equi.kind = EstimatorKind::kEquiWidth;
  auto primary = BuildEstimator(StaleSample(200, 6), kDomain, equi);
  ASSERT_TRUE(primary.ok());
  chain.push_back(std::move(*primary));
  auto histogram = FeedbackHistogram::Create(kDomain, {});
  ASSERT_TRUE(histogram.ok());
  chain.push_back(std::make_unique<FeedbackHistogram>(std::move(*histogram)));
  auto histogram2 = FeedbackHistogram::Create(kDomain, {});
  ASSERT_TRUE(histogram2.ok());
  chain.push_back(
      std::make_unique<FeedbackHistogram>(std::move(*histogram2)));
  GuardedEstimator guarded(std::move(chain), kDomain);
  ASSERT_TRUE(guarded.SupportsFeedback());

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        guarded.ObserveTrueSelectivity({10.0, 30.0}, 0.8).ok());
  }
  EXPECT_EQ(guarded.feedback_observations(), 5u);

  // Feedback queries are repaired like estimate queries: inverted bounds
  // swap, NaN widens to the domain edge — the observation still lands.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  ASSERT_TRUE(guarded.ObserveTrueSelectivity({30.0, 10.0}, 0.8).ok());
  ASSERT_TRUE(guarded.ObserveTrueSelectivity({nan, 30.0}, 0.4).ok());
  EXPECT_EQ(guarded.feedback_observations(), 7u);
}

TEST(FeedbackWritebackTest, GuardedChainWithoutFeedbackLinksRejects) {
  std::vector<std::unique_ptr<SelectivityEstimator>> chain;
  EstimatorConfig equi;
  equi.kind = EstimatorKind::kEquiWidth;
  auto primary = BuildEstimator(StaleSample(200, 7), kDomain, equi);
  ASSERT_TRUE(primary.ok());
  chain.push_back(std::move(*primary));
  GuardedEstimator guarded(std::move(chain), kDomain);
  EXPECT_FALSE(guarded.SupportsFeedback());
  const Status status = guarded.ObserveTrueSelectivity({10.0, 30.0}, 0.5);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(guarded.feedback_observations(), 0u);
}

}  // namespace
}  // namespace selest
