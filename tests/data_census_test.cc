#include <cmath>
#include "src/data/census.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

TEST(CensusTest, ProducesRequestedCount) {
  Rng rng(1);
  const Dataset d =
      GenerateInstanceWeights("iw", InstanceWeightConfig{}, 10000, rng);
  EXPECT_EQ(d.size(), 10000u);
}

TEST(CensusTest, ValuesAreIntegersInDomain) {
  Rng rng(2);
  InstanceWeightConfig config;
  config.bits = 12;
  const Dataset d = GenerateInstanceWeights("iw", config, 5000, rng);
  for (double v : d.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 4095.0);
    EXPECT_DOUBLE_EQ(v, std::round(v));
  }
}

TEST(CensusTest, HeavyDuplication) {
  Rng rng(3);
  const Dataset d =
      GenerateInstanceWeights("iw", InstanceWeightConfig{}, 50000, rng);
  // A survey-weight column has far fewer distinct values than records: at
  // most the spikes plus the thin background.
  EXPECT_LT(d.CountDistinct(), d.size() / 10);
}

TEST(CensusTest, TopValueCarriesLargeMass) {
  Rng rng(4);
  const Dataset d =
      GenerateInstanceWeights("iw", InstanceWeightConfig{}, 50000, rng);
  // Zipf skew 1.1 over 400 spikes gives the heaviest value several percent
  // of all records.
  size_t heaviest = 0;
  const auto& sorted = d.sorted_values();
  size_t run = 1;
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] == sorted[i - 1]) {
      ++run;
    } else {
      heaviest = std::max(heaviest, run);
      run = 1;
    }
  }
  heaviest = std::max(heaviest, run);
  EXPECT_GT(heaviest, d.size() / 50);
}

TEST(CensusTest, DeterministicForFixedSeed) {
  Rng rng1(5);
  Rng rng2(5);
  const Dataset a =
      GenerateInstanceWeights("a", InstanceWeightConfig{}, 1000, rng1);
  const Dataset b =
      GenerateInstanceWeights("b", InstanceWeightConfig{}, 1000, rng2);
  EXPECT_EQ(a.values(), b.values());
}

TEST(CensusTest, MassConcentratedAtLowWeights) {
  Rng rng(6);
  const Dataset d =
      GenerateInstanceWeights("iw", InstanceWeightConfig{}, 50000, rng);
  const double midpoint = 0.5 * (d.domain().lo + d.domain().hi);
  // Log-normal positions put most weights in the lower half of the domain —
  // the skew that makes the one-bin uniform estimator fail.
  EXPECT_GT(d.CountInRange(d.domain().lo, midpoint), d.size() * 3 / 5);
}

}  // namespace
}  // namespace selest
