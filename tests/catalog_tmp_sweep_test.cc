// The snapshot store's orphaned-temporary sweep and the serving catalog's
// store retry discipline. A crash between the temporary write and the
// rename (the store/rename crash point) leaks a `.snapshot.tmp` sibling
// that no reader ever opens; construction sweeps such orphans. Transient
// store failures on the catalog serve path retry instead of failing once.
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/catalog/snapshot_store.h"
#include "src/catalog/statistics_catalog.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/exec/fault_injection.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1000.0);

std::string FreshDir(const std::string& name) {
  // Suffixed with the pid: each gtest case runs as its own ctest process,
  // and concurrent cases of the same binary must not share a directory.
  const std::string dir =
      testing::TempDir() + name + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<double> MakeSample(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample;
  sample.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sample.push_back(kDomain.lo + rng.NextDouble() * kDomain.width());
  }
  return sample;
}

EstimatorConfig EquiWidthConfig(int bins) {
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = bins;
  return config;
}

size_t CountFiles(const std::string& dir, const std::string& needle) {
  size_t count = 0;
  if (!std::filesystem::is_directory(dir)) return 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().find(needle) != std::string::npos) {
      ++count;
    }
  }
  return count;
}

class TmpSweepTest : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::DisarmAll(); }
};

TEST_F(TmpSweepTest, ConstructionSweepsForgedOrphan) {
  const std::string dir = FreshDir("sweep_forged");
  const CatalogKey key{"t", "x", 123};
  // A valid snapshot that must survive the sweep, plus a forged orphan of
  // the shape WriteBytesToFile's temporary naming produces.
  {
    SnapshotStore store(dir);
    auto built =
        BuildEstimator(MakeSample(200, 1), kDomain, EquiWidthConfig(16));
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE(store.Put(key, *built.value()).ok());
  }
  const std::string orphan =
      dir + "/" + SnapshotStore::LabelFor(key) + ".snapshot.tmp42";
  {
    std::ofstream out(orphan, std::ios::binary);
    out << "half-written snapshot bytes";
  }
  ASSERT_TRUE(std::filesystem::exists(orphan));

  SnapshotStore swept(dir);
  EXPECT_EQ(swept.swept_tmp_files(), 1u);
  EXPECT_FALSE(std::filesystem::exists(orphan));
  // The real snapshot is untouched and loadable.
  EXPECT_TRUE(swept.Contains(key));
  EXPECT_TRUE(swept.Get(key).ok());
}

TEST_F(TmpSweepTest, StoreRenameFaultLeaksTmpAndNextSweepReclaimsIt) {
  const std::string dir = FreshDir("sweep_rename_fault");
  const CatalogKey key{"t", "x", 7};
  auto built =
      BuildEstimator(MakeSample(200, 2), kDomain, EquiWidthConfig(16));
  ASSERT_TRUE(built.ok());
  {
    SnapshotStore store(dir);
    ScopedFault fault(kFaultPointStoreRename);
    // The crash point fires between the temporary write and the rename:
    // the Put fails and the temporary is leaked exactly as process death
    // at that instant would leave it.
    const Status failed = store.Put(key, *built.value());
    EXPECT_EQ(failed.code(), StatusCode::kInternal);
    EXPECT_FALSE(store.Contains(key));
    EXPECT_EQ(CountFiles(dir, ".snapshot.tmp"), 1u);
  }
  // "Restart": the next store over the directory sweeps the orphan, and
  // the retried Put succeeds cleanly.
  SnapshotStore restarted(dir);
  EXPECT_EQ(restarted.swept_tmp_files(), 1u);
  EXPECT_EQ(CountFiles(dir, ".snapshot.tmp"), 0u);
  ASSERT_TRUE(restarted.Put(key, *built.value()).ok());
  EXPECT_TRUE(restarted.Get(key).ok());
}

TEST_F(TmpSweepTest, CatalogRetriesTransientStoreFailure) {
  const std::string dir = FreshDir("sweep_catalog_retry");
  CatalogOptions options;
  options.snapshot_directory = dir;
  options.retry.base_delay_ticks = 1;  // keep test-time sleeps negligible
  Catalog catalog(options);
  auto key = catalog.RegisterColumn("t", "x", kDomain, MakeSample(300, 3),
                                    EquiWidthConfig(16));
  ASSERT_TRUE(key.ok());
  {
    // Fail exactly the first write-back attempt; the retry succeeds, so
    // the cold miss still ends with a persisted snapshot.
    FaultPlan plan;
    plan.skip = 0;
    plan.count = 1;
    ScopedFault fault(kFaultPointStoreRename, plan);
    ASSERT_TRUE(catalog.Warm(key.value()).ok());
  }
  const CatalogServeStats stats = catalog.serve_stats();
  EXPECT_EQ(stats.rebuilds, 1u);
  EXPECT_EQ(stats.writebacks, 1u);
  EXPECT_EQ(stats.snapshot_retries, 1u);
  EXPECT_EQ(stats.snapshot_errors, 0u);
  EXPECT_TRUE(catalog.store()->Contains(key.value()));
}

TEST_F(TmpSweepTest, CatalogCorruptSnapshotStillFailsFastIntoRebuild) {
  // The retry gate must not blur the corruption taxonomy: kDataLoss is
  // non-retryable, so a damaged snapshot degrades to a rebuild after a
  // single load attempt, same as before the retry discipline existed.
  const std::string dir = FreshDir("sweep_corrupt_fastfail");
  CatalogOptions options;
  options.snapshot_directory = dir;
  Catalog catalog(options);
  auto key = catalog.RegisterColumn("t", "x", kDomain, MakeSample(300, 4),
                                    EquiWidthConfig(16));
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(catalog.Warm(key.value()).ok());
  // Damage the snapshot in place (flip a payload byte), then force a cold
  // miss by serving through a fresh catalog over the same directory.
  const std::string path = catalog.store()->PathFor(key.value());
  {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    file.seekg(20);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x7F);
    file.seekp(20);
    file.write(&byte, 1);
  }
  Catalog cold(options);
  auto key2 = cold.RegisterColumn("t", "x", kDomain, MakeSample(300, 4),
                                  EquiWidthConfig(16));
  ASSERT_TRUE(key2.ok());
  ASSERT_TRUE(cold.Estimate(key2.value(), {100.0, 500.0}).ok());
  const CatalogServeStats stats = cold.serve_stats();
  EXPECT_EQ(stats.snapshot_errors, 1u);
  EXPECT_EQ(stats.rebuilds, 1u);
  EXPECT_EQ(stats.snapshot_retries, 0u);  // corruption did not retry
}

}  // namespace
}  // namespace selest
