#include "src/catalog/statistics_catalog.h"

#include <gtest/gtest.h>

#include "src/data/distribution.h"

namespace selest {
namespace {

Dataset MakeColumn(const std::string& name, uint64_t seed) {
  Rng rng(seed);
  const Domain domain = BitDomain(16);
  const NormalDistribution dist(0.5 * domain.hi, domain.width() / 8.0);
  return GenerateDataset(name, dist, 20000, domain, rng);
}

TEST(CatalogTest, AnalyzeAndEstimate) {
  const Dataset column = MakeColumn("price", 1);
  StatisticsCatalog catalog;
  Rng rng(2);
  EstimatorConfig config;
  config.kind = EstimatorKind::kKernel;
  ASSERT_TRUE(catalog.AnalyzeColumn(column, config, 2000, rng).ok());
  EXPECT_TRUE(catalog.HasColumn("price"));
  EXPECT_EQ(catalog.size(), 1u);

  const double center = 0.5 * column.domain().hi;
  const RangeQuery q{center - 0.05 * column.domain().width(),
                     center + 0.05 * column.domain().width()};
  auto selectivity = catalog.EstimateSelectivity("price", q);
  ASSERT_TRUE(selectivity.ok());
  const double truth = static_cast<double>(column.CountInRange(q.a, q.b)) /
                       static_cast<double>(column.size());
  EXPECT_NEAR(selectivity.value(), truth, 0.2 * truth);
}

TEST(CatalogTest, EstimateResultSizeScalesByRecords) {
  const Dataset column = MakeColumn("qty", 3);
  StatisticsCatalog catalog;
  Rng rng(4);
  ASSERT_TRUE(catalog.AnalyzeColumn(column, {}, 1000, rng).ok());
  const RangeQuery q{0.0, column.domain().hi};
  auto size = catalog.EstimateResultSize("qty", q);
  ASSERT_TRUE(size.ok());
  EXPECT_NEAR(size.value(), 20000.0, 400.0);
}

TEST(CatalogTest, UnknownColumnIsNotFound) {
  StatisticsCatalog catalog;
  EXPECT_EQ(catalog.EstimateSelectivity("nope", {0.0, 1.0}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog.Staleness("nope").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(catalog.RecordModifications("nope", 1).ok());
}

TEST(CatalogTest, InvalidSampleSizeRejected) {
  const Dataset column = MakeColumn("c", 5);
  StatisticsCatalog catalog;
  Rng rng(6);
  EXPECT_FALSE(catalog.AnalyzeColumn(column, {}, 0, rng).ok());
  EXPECT_FALSE(
      catalog.AnalyzeColumn(column, {}, column.size() + 1, rng).ok());
}

TEST(CatalogTest, StalenessTracksModifications) {
  const Dataset column = MakeColumn("c", 7);
  StatisticsCatalog catalog;
  Rng rng(8);
  ASSERT_TRUE(catalog.AnalyzeColumn(column, {}, 500, rng).ok());
  EXPECT_DOUBLE_EQ(catalog.Staleness("c").value(), 0.0);
  ASSERT_TRUE(catalog.RecordModifications("c", 2000).ok());
  ASSERT_TRUE(catalog.RecordModifications("c", 2000).ok());
  EXPECT_DOUBLE_EQ(catalog.Staleness("c").value(), 0.2);
  // Re-analyzing resets staleness.
  ASSERT_TRUE(catalog.AnalyzeColumn(column, {}, 500, rng).ok());
  EXPECT_DOUBLE_EQ(catalog.Staleness("c").value(), 0.0);
}

TEST(CatalogTest, SaveLoadRoundTripPreservesEstimates) {
  const Dataset a = MakeColumn("a", 9);
  const Dataset b = MakeColumn("b", 10);
  StatisticsCatalog catalog;
  Rng rng(11);
  EstimatorConfig kernel_config;
  kernel_config.kind = EstimatorKind::kKernel;
  EstimatorConfig histogram_config;
  histogram_config.kind = EstimatorKind::kEquiWidth;
  ASSERT_TRUE(catalog.AnalyzeColumn(a, kernel_config, 1500, rng).ok());
  ASSERT_TRUE(catalog.AnalyzeColumn(b, histogram_config, 800, rng).ok());

  auto loaded = StatisticsCatalog::LoadFromBytes(catalog.SaveToBytes());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), 2u);
  Rng query_rng(12);
  for (int i = 0; i < 50; ++i) {
    const double lo = a.domain().width() * query_rng.NextDouble() * 0.9;
    const RangeQuery q{lo, lo + 0.05 * a.domain().width()};
    for (const char* column : {"a", "b"}) {
      EXPECT_DOUBLE_EQ(catalog.EstimateSelectivity(column, q).value(),
                       (*loaded)->EstimateSelectivity(column, q).value())
          << column;
    }
  }
}

TEST(CatalogTest, LoadRejectsCorruptBytes) {
  const Dataset column = MakeColumn("c", 13);
  StatisticsCatalog catalog;
  Rng rng(14);
  ASSERT_TRUE(catalog.AnalyzeColumn(column, {}, 200, rng).ok());
  std::vector<uint8_t> bytes = catalog.SaveToBytes();
  // Truncated payload.
  std::vector<uint8_t> truncated(bytes.begin(),
                                 bytes.begin() + bytes.size() / 2);
  EXPECT_FALSE(StatisticsCatalog::LoadFromBytes(truncated).ok());
  // Trailing garbage.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0xff);
  EXPECT_FALSE(StatisticsCatalog::LoadFromBytes(padded).ok());
  // Corrupt estimator kind.
  std::vector<uint8_t> corrupt = bytes;
  // Flip a byte inside the header region to an invalid enum; find it by
  // decoding offsets: 8 (count) + 4 (version) then string... easier: flip
  // many bytes and require that *some* flip is rejected while not crashing.
  bool any_rejected = false;
  for (size_t i = 8; i < corrupt.size(); i += 7) {
    std::vector<uint8_t> mutated = bytes;
    mutated[i] ^= 0xff;
    auto result = StatisticsCatalog::LoadFromBytes(mutated);
    if (!result.ok()) any_rejected = true;
  }
  EXPECT_TRUE(any_rejected);
}

TEST(CatalogTest, InstallStatisticsValidatesConfig) {
  ColumnStatistics statistics;
  statistics.column = "x";
  statistics.domain = ContinuousDomain(0.0, 1.0);
  statistics.num_records = 10;
  statistics.config.kind = EstimatorKind::kKernel;
  statistics.config.smoothing = SmoothingRule::kFixed;
  statistics.config.fixed_smoothing = -1.0;  // invalid bandwidth
  statistics.sample = {0.5, 0.6};
  StatisticsCatalog catalog;
  EXPECT_FALSE(catalog.InstallStatistics(std::move(statistics)).ok());
}

TEST(CatalogTest, ColumnNamesSorted) {
  StatisticsCatalog catalog;
  Rng rng(15);
  for (const char* name : {"zeta", "alpha", "mid"}) {
    ASSERT_TRUE(
        catalog.AnalyzeColumn(MakeColumn(name, 16), {}, 100, rng).ok());
  }
  const std::vector<std::string> names = catalog.ColumnNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[2], "zeta");
}

TEST(CatalogTest, StatisticsAccessor) {
  const Dataset column = MakeColumn("c", 17);
  StatisticsCatalog catalog;
  Rng rng(18);
  ASSERT_TRUE(catalog.AnalyzeColumn(column, {}, 321, rng).ok());
  auto statistics = catalog.Statistics("c");
  ASSERT_TRUE(statistics.ok());
  EXPECT_EQ((*statistics)->sample.size(), 321u);
  EXPECT_EQ((*statistics)->num_records, column.size());
}

}  // namespace
}  // namespace selest
