// The streaming-build bit-identity contract (DESIGN.md §13): for every
// estimator kind, building from a chunk stream must equal building from
// the materialized rows — byte for byte, via estimator snapshots — for
// every chunk size, including chunk 1 and a misaligned final chunk.
#include "src/est/streaming_build.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "src/data/column_file.h"
#include "src/data/column_source.h"
#include "src/data/dataset.h"
#include "src/data/distribution.h"
#include "src/data/domain.h"
#include "src/est/equi_width_histogram.h"
#include "src/est/estimator_snapshot.h"
#include "src/online/online_estimator.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

constexpr EstimatorKind kAllKinds[] = {
    EstimatorKind::kSampling,       EstimatorKind::kUniform,
    EstimatorKind::kEquiWidth,      EstimatorKind::kEquiDepth,
    EstimatorKind::kMaxDiff,        EstimatorKind::kAverageShifted,
    EstimatorKind::kKernel,         EstimatorKind::kHybrid,
    EstimatorKind::kVOptimal,       EstimatorKind::kAdaptiveKernel,
    EstimatorKind::kWavelet,        EstimatorKind::kFeedback,
    EstimatorKind::kReconstructed,  EstimatorKind::kOnlineLearning,
};

// 500 rows: a misaligned final chunk for every chunk size below that is
// not a divisor of 500 (64 → tail of 52, 4096/whole-file → single chunk).
Dataset TestData() {
  Rng rng(21);
  return GenerateDataset("normal", NormalDistribution(512.0, 120.0), 500,
                         BitDomain(10), rng);
}

std::vector<uint8_t> MustSnapshot(const SelectivityEstimator& estimator) {
  auto bytes = SnapshotEstimator(estimator);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? *bytes : std::vector<uint8_t>{};
}

TEST(StreamingBuildTest, EveryKindBitIdenticalToInMemoryBuild) {
  const Dataset data = TestData();
  for (const EstimatorKind kind : kAllKinds) {
    EstimatorConfig config;
    config.kind = kind;
    auto in_memory = BuildEstimator(data.values(), data.domain(), config);
    ASSERT_TRUE(in_memory.ok())
        << EstimatorKindName(kind) << ": " << in_memory.status().ToString();
    const std::vector<uint8_t> expected = MustSnapshot(**in_memory);

    // Reservoir capacity >= rows, so the streaming sample is the whole
    // column in insertion order and the builds must agree exactly.
    StreamingBuildOptions options;
    options.sample_size = 2000;
    for (const size_t chunk_rows : {1ul, 64ul, 500ul, 4096ul}) {
      InMemoryColumnSource source(data, chunk_rows);
      auto streamed = BuildEstimatorStreaming(source, config, options);
      ASSERT_TRUE(streamed.ok())
          << EstimatorKindName(kind) << " chunk=" << chunk_rows << ": "
          << streamed.status().ToString();
      EXPECT_EQ(MustSnapshot(*streamed->estimator), expected)
          << EstimatorKindName(kind) << " chunk=" << chunk_rows;
      EXPECT_EQ(streamed->rows_seen, data.size());
    }
  }
}

TEST(StreamingBuildTest, ChunkSizeInvariantPastReservoirCapacity) {
  // More rows than the reservoir holds: streaming no longer equals the
  // in-memory build over all rows, but chunk boundaries must still not
  // leak into the result — any chunking yields the identical estimator.
  Rng rng(33);
  const Dataset data = GenerateDataset(
      "normal", NormalDistribution(512.0, 100.0), 3000, BitDomain(10), rng);
  StreamingBuildOptions options;
  options.sample_size = 128;
  for (const EstimatorKind kind : kAllKinds) {
    EstimatorConfig config;
    config.kind = kind;
    InMemoryColumnSource reference_source(data, 4096);
    auto reference = BuildEstimatorStreaming(reference_source, config, options);
    ASSERT_TRUE(reference.ok())
        << EstimatorKindName(kind) << ": " << reference.status().ToString();
    const std::vector<uint8_t> expected = MustSnapshot(*reference->estimator);
    for (const size_t chunk_rows : {1ul, 64ul, 333ul, 3000ul}) {
      InMemoryColumnSource source(data, chunk_rows);
      auto streamed = BuildEstimatorStreaming(source, config, options);
      ASSERT_TRUE(streamed.ok());
      EXPECT_EQ(MustSnapshot(*streamed->estimator), expected)
          << EstimatorKindName(kind) << " chunk=" << chunk_rows;
      EXPECT_EQ(streamed->sample, reference->sample);
    }
  }
}

TEST(StreamingBuildTest, PathAssignmentMatchesContract) {
  EXPECT_EQ(StreamingPathFor(EstimatorKind::kUniform),
            StreamingBuildPath::kDomainOnly);
  EXPECT_EQ(StreamingPathFor(EstimatorKind::kEquiWidth),
            StreamingBuildPath::kOnePassFold);
  for (const EstimatorKind kind :
       {EstimatorKind::kSampling, EstimatorKind::kEquiDepth,
        EstimatorKind::kMaxDiff, EstimatorKind::kAverageShifted,
        EstimatorKind::kKernel, EstimatorKind::kHybrid,
        EstimatorKind::kVOptimal, EstimatorKind::kAdaptiveKernel,
        EstimatorKind::kWavelet, EstimatorKind::kFeedback,
        EstimatorKind::kReconstructed, EstimatorKind::kOnlineLearning}) {
    EXPECT_EQ(StreamingPathFor(kind), StreamingBuildPath::kReservoirSample)
        << EstimatorKindName(kind);
  }
}

TEST(StreamingBuildTest, EquiWidthFoldCountsEveryRow) {
  // The one-pass fold's whole advantage: counts come from ALL rows, not
  // the reservoir sample. total_count of the folded histogram equals the
  // full row count even when the reservoir is tiny.
  Rng rng(5);
  const Dataset data = GenerateDataset(
      "uniform", UniformDistribution(0.0, 1024.0), 2500, BitDomain(10), rng);
  StreamingBuildOptions options;
  options.sample_size = 100;
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  InMemoryColumnSource source(data, 64);
  auto streamed = BuildEstimatorStreaming(source, config, options);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed->path, StreamingBuildPath::kOnePassFold);
  EXPECT_EQ(streamed->rows_seen, 2500u);
  const auto* histogram =
      dynamic_cast<const EquiWidthHistogram*>(streamed->estimator.get());
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->bins().total_count(), 2500.0);
}

TEST(StreamingBuildTest, FixedSmoothingEquiWidthSkipsSamplingPass) {
  const Dataset data = TestData();
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  config.smoothing = SmoothingRule::kFixed;
  config.fixed_smoothing = 32.0;
  InMemoryColumnSource source(data, 100);
  auto streamed = BuildEstimatorStreaming(source, config, {});
  ASSERT_TRUE(streamed.ok());
  EXPECT_TRUE(streamed->sample.empty());  // single pass, no reservoir
  auto in_memory = BuildEstimator(data.values(), data.domain(), config);
  ASSERT_TRUE(in_memory.ok());
  EXPECT_EQ(MustSnapshot(*streamed->estimator), MustSnapshot(**in_memory));
}

TEST(StreamingBuildTest, EmptySourceFailsExceptUniform) {
  const std::vector<double> none;
  InMemoryColumnSource source("empty", BitDomain(8), none, 64);
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiDepth;
  EXPECT_EQ(BuildEstimatorStreaming(source, config, {}).status().code(),
            StatusCode::kInvalidArgument);
  config.kind = EstimatorKind::kEquiWidth;
  EXPECT_EQ(BuildEstimatorStreaming(source, config, {}).status().code(),
            StatusCode::kInvalidArgument);
  config.kind = EstimatorKind::kUniform;
  EXPECT_TRUE(BuildEstimatorStreaming(source, config, {}).ok());
}

TEST(StreamingBuildTest, NonFiniteRowIsInvalidArgument) {
  const std::vector<double> rows = {1.0, 2.0,
                                    std::numeric_limits<double>::quiet_NaN()};
  InMemoryColumnSource source("nan", ContinuousDomain(0.0, 4.0), rows, 2);
  EstimatorConfig config;
  config.kind = EstimatorKind::kSampling;
  EXPECT_EQ(BuildEstimatorStreaming(source, config, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamingBuildTest, MmapSourceBuildsIdenticallyToInMemory) {
  const Dataset data = TestData();
  const std::string path =
      std::string(::testing::TempDir()) + "/stream_build_col.bin";
  ASSERT_TRUE(
      WriteColumnFile(path, data.name(), data.domain(), data.values()).ok());
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  InMemoryColumnSource in_memory_source(data, 64);
  auto expected = BuildEstimatorStreaming(in_memory_source, config, {});
  ASSERT_TRUE(expected.ok());
  for (const size_t chunk_rows : {1ul, 64ul, 4096ul}) {
    auto mapped = MmapColumnSource::Open(path, chunk_rows);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    auto streamed = BuildEstimatorStreaming(**mapped, config, {});
    ASSERT_TRUE(streamed.ok());
    EXPECT_EQ(MustSnapshot(*streamed->estimator),
              MustSnapshot(*expected->estimator))
        << "chunk=" << chunk_rows;
  }
  std::remove(path.c_str());
}

TEST(StreamingBuildTest, OnlineEstimatorIngestsFromSource) {
  const Dataset data = TestData();
  OnlineSelectivityEstimator from_rows(data.domain());
  from_rows.AddSamples(data.values());
  OnlineSelectivityEstimator from_source(data.domain());
  InMemoryColumnSource source(data, 64);
  EXPECT_EQ(from_source.AddFromSource(source), data.size());
  const RangeQuery query{200.0, 600.0};
  const IntervalEstimate a = from_rows.Estimate(query);
  const IntervalEstimate b = from_source.Estimate(query);
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
}

}  // namespace
}  // namespace selest
