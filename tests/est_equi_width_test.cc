#include "src/est/equi_width_histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 10.0);

TEST(EquiWidthTest, RejectsBadInput) {
  const std::vector<double> sample{1.0};
  EXPECT_FALSE(EquiWidthHistogram::Create({}, kDomain, 4).ok());
  EXPECT_FALSE(EquiWidthHistogram::Create(sample, kDomain, 0).ok());
  EXPECT_FALSE(EquiWidthHistogram::Create(sample, kDomain, 4, -0.1).ok());
  EXPECT_FALSE(EquiWidthHistogram::Create(sample, kDomain, 4, 2.5).ok());
}

TEST(EquiWidthTest, SingleBinActsUniform) {
  const std::vector<double> sample{1.0, 2.0, 3.0};
  auto est = EquiWidthHistogram::Create(sample, kDomain, 1);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(0.0, 5.0), 0.5);
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(0.0, 10.0), 1.0);
}

TEST(EquiWidthTest, BinWidthAndCount) {
  const std::vector<double> sample{1.0};
  auto est = EquiWidthHistogram::Create(sample, kDomain, 5);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->num_bins(), 5);
  EXPECT_DOUBLE_EQ(est->bin_width(), 2.0);
}

TEST(EquiWidthTest, ExactSelectivityOnBinBoundaries) {
  // 2 samples in (0,5], 2 in (5,10].
  const std::vector<double> sample{1.0, 4.0, 6.0, 9.0};
  auto est = EquiWidthHistogram::Create(sample, kDomain, 2);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(0.0, 5.0), 0.5);
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(5.0, 10.0), 0.5);
}

TEST(EquiWidthTest, UniformWithinBinAssumption) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};  // all in (0, 5]
  auto est = EquiWidthHistogram::Create(sample, kDomain, 2);
  ASSERT_TRUE(est.ok());
  // Half of the first bin holds half of the bin's mass.
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(0.0, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(2.5, 5.0), 0.5);
}

TEST(EquiWidthTest, ShiftMovesBinBoundaries) {
  const std::vector<double> sample{4.9, 5.1};
  // Unshifted: boundary at 5 separates the two samples.
  auto unshifted = EquiWidthHistogram::Create(sample, kDomain, 2);
  ASSERT_TRUE(unshifted.ok());
  EXPECT_DOUBLE_EQ(unshifted->EstimateSelectivity(0.0, 5.0), 0.5);
  // Shift 1: boundaries at 1 and 6 — both samples in the middle bin (1, 6].
  auto shifted = EquiWidthHistogram::Create(sample, kDomain, 2, 1.0);
  ASSERT_TRUE(shifted.ok());
  EXPECT_DOUBLE_EQ(shifted->EstimateSelectivity(1.0, 6.0), 1.0);
}

TEST(EquiWidthTest, ShiftedHistogramStillCoversDomain) {
  const std::vector<double> sample{0.1, 9.9};
  auto est = EquiWidthHistogram::Create(sample, kDomain, 4, 1.0);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(0.0, 10.0), 1.0);
}

TEST(EquiWidthTest, SelectivityClampedToOne) {
  const std::vector<double> sample{5.0};
  auto est = EquiWidthHistogram::Create(sample, kDomain, 3);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->EstimateSelectivity(-100.0, 100.0), 1.0);
}

TEST(EquiWidthTest, MoreBinsTrackSkewBetter) {
  // Highly skewed data: all mass in [0, 1]. A 1-bin histogram badly
  // overestimates a query at the empty end; 100 bins do not.
  Rng rng(3);
  std::vector<double> sample(1000);
  for (double& x : sample) x = rng.NextDouble();
  auto coarse = EquiWidthHistogram::Create(sample, kDomain, 1);
  auto fine = EquiWidthHistogram::Create(sample, kDomain, 100);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_GT(coarse->EstimateSelectivity(8.0, 10.0), 0.15);
  EXPECT_DOUBLE_EQ(fine->EstimateSelectivity(8.0, 10.0), 0.0);
}

TEST(EquiWidthTest, NameContainsBinCount) {
  const std::vector<double> sample{1.0};
  auto est = EquiWidthHistogram::Create(sample, kDomain, 7);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->name(), "equi-width(7)");
}

}  // namespace
}  // namespace selest
