// End-to-end tests reproducing the paper's qualitative findings on small
// workloads: the theory-vs-practice claims of §5.2 at test-suite scale.
#include <gtest/gtest.h>

#include "src/data/distribution.h"
#include "src/eval/experiment.h"
#include "src/eval/paper_data.h"
#include "src/smoothing/normal_scale.h"
#include "src/smoothing/oracle.h"
#include "src/util/random.h"

namespace selest {
namespace {

Dataset MakeNormalData(uint64_t seed) {
  Rng rng(seed);
  const Domain domain = BitDomain(18);
  const NormalDistribution dist(0.5 * domain.hi, domain.width() / 8.0);
  return GenerateDataset("n(18)", dist, 50000, domain, rng);
}

double Mre(const ExperimentSetup& setup, EstimatorKind kind,
           BoundaryPolicy boundary = BoundaryPolicy::kBoundaryKernel) {
  EstimatorConfig config;
  config.kind = kind;
  config.boundary = boundary;
  auto report = RunConfig(setup, config);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? report->mean_relative_error : 1e9;
}

TEST(IntegrationTest, KernelBeatsHistogramBeatsSampling) {
  // §5.2.2 / Fig. 6 ordering on smooth normal data.
  const Dataset data = MakeNormalData(1);
  ProtocolConfig protocol;
  protocol.sample_size = 2000;
  protocol.num_queries = 300;
  protocol.query_fraction = 0.01;
  const ExperimentSetup setup = MakeSetup(data, protocol);
  const double sampling = Mre(setup, EstimatorKind::kSampling);
  const double histogram = Mre(setup, EstimatorKind::kEquiWidth);
  const double kernel = Mre(setup, EstimatorKind::kKernel);
  EXPECT_LT(histogram, sampling);
  EXPECT_LT(kernel, sampling);
  // The kernel estimator is at least competitive with the histogram.
  EXPECT_LT(kernel, histogram * 1.2);
}

TEST(IntegrationTest, ErrorDecreasesWithSampleSize) {
  // Consistency (§5.2.2): sampling, histograms and kernels all improve as
  // the sample grows.
  const Dataset data = MakeNormalData(2);
  for (EstimatorKind kind :
       {EstimatorKind::kSampling, EstimatorKind::kEquiWidth,
        EstimatorKind::kKernel}) {
    ProtocolConfig protocol;
    protocol.num_queries = 300;
    protocol.query_fraction = 0.02;
    protocol.sample_size = 200;
    const ExperimentSetup small = MakeSetup(data, protocol);
    protocol.sample_size = 8000;
    const ExperimentSetup large = MakeSetup(data, protocol);
    EXPECT_LT(Mre(large, kind), Mre(small, kind))
        << EstimatorKindName(kind);
  }
}

TEST(IntegrationTest, ErrorDecreasesWithQuerySize) {
  // §5.2.3 / Fig. 7: larger queries are easier, relatively.
  const Dataset data = MakeNormalData(3);
  ProtocolConfig protocol;
  protocol.sample_size = 2000;
  protocol.num_queries = 300;
  protocol.query_fraction = 0.01;
  const ExperimentSetup small_q = MakeSetup(data, protocol);
  protocol.query_fraction = 0.10;
  const ExperimentSetup large_q = MakeSetup(data, protocol);
  EXPECT_LT(Mre(large_q, EstimatorKind::kEquiWidth),
            Mre(small_q, EstimatorKind::kEquiWidth));
}

TEST(IntegrationTest, UniformEstimatorLosesOnSkewedData) {
  // Fig. 8: the uniform (one-bin) estimator is the overall loser except on
  // uniform data.
  Rng rng(4);
  const Domain domain = BitDomain(18);
  const ExponentialDistribution dist(8.0 / domain.width());
  const Dataset data = GenerateDataset("e", dist, 50000, domain, rng);
  ProtocolConfig protocol;
  protocol.sample_size = 2000;
  protocol.num_queries = 300;
  const ExperimentSetup setup = MakeSetup(data, protocol);
  const double uniform = Mre(setup, EstimatorKind::kUniform);
  for (EstimatorKind kind :
       {EstimatorKind::kSampling, EstimatorKind::kEquiWidth,
        EstimatorKind::kEquiDepth, EstimatorKind::kKernel}) {
    EXPECT_LT(3.0 * Mre(setup, kind), uniform) << EstimatorKindName(kind);
  }
}

TEST(IntegrationTest, HybridBeatsKernelOnChangePointData) {
  // §5.2.6: on rough densities with change points the hybrid wins against
  // the pure kernel estimator.
  Rng rng(5);
  const Domain domain = BitDomain(18);
  std::vector<double> values;
  values.reserve(50000);
  // Piecewise-uniform density with two hard steps.
  while (values.size() < 50000) {
    const double u = rng.NextDouble();
    double x;
    if (u < 0.7) {
      x = 0.2 + 0.1 * rng.NextDouble();  // very dense narrow band
    } else if (u < 0.9) {
      x = 0.5 + 0.3 * rng.NextDouble();
    } else {
      x = rng.NextDouble();
    }
    values.push_back(domain.Quantize(x * domain.hi));
  }
  const Dataset data("steps", domain, std::move(values));
  ProtocolConfig protocol;
  protocol.sample_size = 2000;
  protocol.num_queries = 300;
  const ExperimentSetup setup = MakeSetup(data, protocol);
  const double kernel = Mre(setup, EstimatorKind::kKernel);
  const double hybrid = Mre(setup, EstimatorKind::kHybrid);
  EXPECT_LT(hybrid, kernel);
}

TEST(IntegrationTest, OracleBinCountBeatsArbitraryChoices) {
  // Fig. 4: the bin-count/error curve is U-shaped; the oracle minimum is at
  // least as good as both extremes.
  const Dataset data = MakeNormalData(6);
  ProtocolConfig protocol;
  protocol.sample_size = 2000;
  protocol.num_queries = 200;
  const ExperimentSetup setup = MakeSetup(data, protocol);
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  auto objective = MakeBinCountObjective(setup, config);
  const int best = FindOptimalBinCount(objective, 1, 2000);
  const double at_best = objective(best);
  EXPECT_LE(at_best, objective(1));
  EXPECT_LE(at_best, objective(2000));
  // And the U-shape is genuine: both extremes are clearly worse.
  EXPECT_GT(objective(1), 1.5 * at_best);
  EXPECT_GT(objective(2000), 1.5 * at_best);
}

TEST(IntegrationTest, NormalScaleRuleNearOracleOnNormalData) {
  // Fig. 9: h-NS costs only a few points of MRE over h-opt.
  const Dataset data = MakeNormalData(7);
  ProtocolConfig protocol;
  protocol.sample_size = 2000;
  protocol.num_queries = 200;
  const ExperimentSetup setup = MakeSetup(data, protocol);
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  auto objective = MakeBinCountObjective(setup, config);
  const double at_oracle = objective(FindOptimalBinCount(objective, 1, 2000));
  const double at_ns = objective(NormalScaleNumBins(setup.sample, setup.domain()));
  EXPECT_LE(at_ns, at_oracle + 0.05);
}

TEST(IntegrationTest, PaperDatasetEndToEnd) {
  // Full pipeline on a registered paper file.
  auto data = MakePaperDataset("n(15)");
  ASSERT_TRUE(data.ok());
  ProtocolConfig protocol;
  protocol.sample_size = 2000;
  protocol.num_queries = 200;
  const ExperimentSetup setup = MakeSetup(*data, protocol);
  for (EstimatorKind kind :
       {EstimatorKind::kEquiWidth, EstimatorKind::kKernel,
        EstimatorKind::kHybrid, EstimatorKind::kAverageShifted}) {
    EstimatorConfig config;
    config.kind = kind;
    auto report = RunConfig(setup, config);
    ASSERT_TRUE(report.ok()) << EstimatorKindName(kind);
    EXPECT_LT(report->mean_relative_error, 0.5) << EstimatorKindName(kind);
  }
}

}  // namespace
}  // namespace selest
