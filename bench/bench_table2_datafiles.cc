// Table 2: properties of the data files.
//
// Regenerates every registered data file (synthetic files exactly as the
// paper; real files via the documented stand-ins) and prints its
// distribution, domain parameter p, record count — plus the measured
// distinct-value count, the quantity behind the paper's "values occur with
// low frequencies on large domains" argument.
#include "bench/bench_common.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Table 2 — properties of the data files",
              "Expected: record counts and p match the paper; distinct "
              "counts shrink as p does.");

  TextTable table({"data file", "data distribution", "p", "#records",
                   "#distinct (measured)"});
  for (const PaperFileSpec& spec : PaperFileSpecs()) {
    const Dataset data = MustLoad(spec.name);
    table.AddRow({spec.name, spec.distribution, std::to_string(spec.bits),
                  std::to_string(data.size()),
                  std::to_string(data.CountDistinct())});
  }
  table.Print();
  return 0;
}
