// Micro-benchmark: the three serve tiers of the statistics catalog.
//
// For each estimator family at n = 65,536 sample records, measures
//
//   cold build     — BuildEstimator from the raw sample (what a catalog
//                    miss without a snapshot pays),
//   snapshot load  — LoadEstimatorSnapshot from in-memory bytes (what a
//                    cold process start with a warm disk pays; file IO
//                    excluded so the number isolates decode cost),
//   cache hit      — Catalog::Estimate against a resident entry (the
//                    steady state; one query answered per iteration), and
//   direct query   — the same query on the estimator object itself, the
//                    baseline the cache-hit path is compared against.
//
// The build-once/serve-many contract expects snapshot-load to beat cold
// build by a wide margin for the construction-heavy estimators (kernel:
// sorting + strip quadrature; hybrid: change-point detection) and cache
// hits to sit within a few percent of direct estimator queries.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/catalog/statistics_catalog.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/est/estimator_snapshot.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

constexpr size_t kSampleSize = 1 << 16;  // 65,536
const Domain kDomain = ContinuousDomain(0.0, 1.0e6);

const std::vector<double>& BenchSample() {
  static const std::vector<double>* sample = [] {
    Rng rng(7);
    auto* values = new std::vector<double>(kSampleSize);
    for (double& x : *values) {
      x = kDomain.Clamp(0.5e6 + 1.2e5 * rng.NextGaussian());
    }
    return values;
  }();
  return *sample;
}

EstimatorConfig ConfigFor(EstimatorKind kind) {
  EstimatorConfig config;
  config.kind = kind;
  return config;
}

void ColdBuild(benchmark::State& state, EstimatorKind kind) {
  const EstimatorConfig config = ConfigFor(kind);
  for (auto _ : state) {
    auto estimator = BuildEstimator(BenchSample(), kDomain, config);
    benchmark::DoNotOptimize(estimator);
  }
}

void SnapshotLoad(benchmark::State& state, EstimatorKind kind) {
  auto built = BuildEstimator(BenchSample(), kDomain, ConfigFor(kind));
  if (!built.ok()) {
    state.SkipWithError(built.status().ToString().c_str());
    return;
  }
  auto bytes = SnapshotEstimator(*built.value());
  if (!bytes.ok()) {
    state.SkipWithError(bytes.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto loaded = LoadEstimatorSnapshot(bytes.value());
    benchmark::DoNotOptimize(loaded);
  }
  state.counters["snapshot_bytes"] =
      static_cast<double>(bytes.value().size());
}

void CacheHit(benchmark::State& state, EstimatorKind kind) {
  Catalog catalog;  // memory-only: isolates the cache path
  auto key = catalog.RegisterColumn("bench", "x", kDomain, BenchSample(),
                                    ConfigFor(kind));
  if (!key.ok()) {
    state.SkipWithError(key.status().ToString().c_str());
    return;
  }
  const RangeQuery query{2.0e5, 8.0e5};
  (void)catalog.Estimate(key.value(), query);  // warm the entry
  for (auto _ : state) {
    auto estimate = catalog.Estimate(key.value(), query);
    benchmark::DoNotOptimize(estimate);
  }
}

void DirectQuery(benchmark::State& state, EstimatorKind kind) {
  auto built = BuildEstimator(BenchSample(), kDomain, ConfigFor(kind));
  if (!built.ok()) {
    state.SkipWithError(built.status().ToString().c_str());
    return;
  }
  const RangeQuery query{2.0e5, 8.0e5};
  for (auto _ : state) {
    const double estimate = built.value()->EstimateSelectivity(query);
    benchmark::DoNotOptimize(estimate);
  }
}

#define CATALOG_BENCH(name, kind)                                   \
  void BM_ColdBuild_##name(benchmark::State& state) {               \
    ColdBuild(state, EstimatorKind::kind);                          \
  }                                                                 \
  BENCHMARK(BM_ColdBuild_##name)->Unit(benchmark::kMicrosecond);    \
  void BM_SnapshotLoad_##name(benchmark::State& state) {            \
    SnapshotLoad(state, EstimatorKind::kind);                       \
  }                                                                 \
  BENCHMARK(BM_SnapshotLoad_##name)->Unit(benchmark::kMicrosecond); \
  void BM_CacheHit_##name(benchmark::State& state) {                \
    CacheHit(state, EstimatorKind::kind);                           \
  }                                                                 \
  BENCHMARK(BM_CacheHit_##name)->Unit(benchmark::kNanosecond);      \
  void BM_DirectQuery_##name(benchmark::State& state) {             \
    DirectQuery(state, EstimatorKind::kind);                        \
  }                                                                 \
  BENCHMARK(BM_DirectQuery_##name)->Unit(benchmark::kNanosecond)

CATALOG_BENCH(Uniform, kUniform);
CATALOG_BENCH(Sampling, kSampling);
CATALOG_BENCH(EquiWidth, kEquiWidth);
CATALOG_BENCH(EquiDepth, kEquiDepth);
CATALOG_BENCH(MaxDiff, kMaxDiff);
CATALOG_BENCH(VOptimal, kVOptimal);
CATALOG_BENCH(Wavelet, kWavelet);
CATALOG_BENCH(Ash, kAverageShifted);
CATALOG_BENCH(Kernel, kKernel);
CATALOG_BENCH(AdaptiveKernel, kAdaptiveKernel);
CATALOG_BENCH(Hybrid, kHybrid);

}  // namespace
}  // namespace selest

// Custom main instead of benchmark_main: unless the caller already chose a
// report destination, results also land in BENCH_catalog.json so the bench
// produces a machine-readable artifact by default (mirroring
// bench_perf_server's BENCH_server.json).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_catalog.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int arg_count = static_cast<int>(args.size());
  benchmark::Initialize(&arg_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(arg_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
