// Fig. 7: MRE of equi-width histograms (normal scale rule) for the four
// size-separated query files (1%, 2%, 5%, 10%) across data files.
//
// Expected shape: within every data file the error falls as the query
// grows (paper example arap2: 17.5% at 1% queries down to 4.5% at 10%).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Fig. 7 — MRE of equi-width histograms (h-NS) per query size",
              "Expected: monotone decline with query size in every file.");

  const char* files[] = {"u(20)", "n(20)", "e(20)", "arap1", "arap2", "iw"};
  const double sizes[] = {0.01, 0.02, 0.05, 0.10};

  TextTable table({"data file", "1% queries", "2% queries", "5% queries",
                   "10% queries"});
  for (const char* name : files) {
    const Dataset data = MustLoad(name);
    std::vector<std::string> row{name};
    for (double size : sizes) {
      ProtocolConfig protocol;
      protocol.query_fraction = size;
      protocol.seed = 3;
      const ExperimentSetup setup = MakeSetup(data, protocol);
      EstimatorConfig config;
      config.kind = EstimatorKind::kEquiWidth;
      row.push_back(FormatPercent(MustMre(setup, config)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
