// Ablation A2: how many direct plug-in stages are enough?
//
// §4.3: "In general, two or three iteration steps are sufficient." This
// sweep compares 1–3 stages (plus the normal scale rule as stage 0) on a
// smooth and on a rough data file.
//
// Expected: stage 1 already recovers most of the gain on rough data;
// stages 2 and 3 change little (the paper settles on 2).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/smoothing/direct_plug_in.h"
#include "src/smoothing/normal_scale.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Ablation A2 — direct plug-in stage count (1% queries)",
              "Expected: gains saturate at 2 stages.");

  TextTable table({"data file", "MRE h-NS (0 stages)", "MRE h-DPI1",
                   "MRE h-DPI2", "MRE h-DPI3"});
  for (const char* name : {"n(20)", "e(20)", "arap1", "rr2(22)"}) {
    const Dataset data = MustLoad(name);
    ProtocolConfig protocol;
    protocol.seed = 23;
    const ExperimentSetup setup = MakeSetup(data, protocol);
    EstimatorConfig config;
    config.kind = EstimatorKind::kKernel;
    config.boundary = BoundaryPolicy::kBoundaryKernel;
    auto objective = MakeBandwidthObjective(setup, config);
    std::vector<std::string> row{name};
    row.push_back(FormatPercent(
        objective(NormalScaleBandwidth(setup.sample, setup.domain()))));
    for (int stages = 1; stages <= 3; ++stages) {
      const double h = DirectPlugInBandwidth(setup.sample, setup.domain(),
                                             Kernel(), stages);
      row.push_back(FormatPercent(objective(h)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
