// Fig. 4: mean relative error of 1% queries as a function of the number of
// equi-width bins (Normal data, 100,000 records, 2,000 samples), with the
// pure-sampling error as the reference line.
//
// Expected shape: U-shaped curve — worse than sampling for very few bins,
// minimum around a few dozen bins and well below the sampling line, rising
// back toward the sampling error as bins outnumber what the sample
// supports (paper: minimum ≈ 7% at 20 bins vs. 17.5% sampling).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Fig. 4 — MRE vs. number of equi-width bins (n(20), 1% "
              "queries, 2000 samples)",
              "Expected: U-shape; minimum well below the sampling line.");

  const Dataset data = MustLoad("n(20)");
  ProtocolConfig protocol;  // paper defaults: 2000 samples, 1000 1%-queries
  const ExperimentSetup setup = MakeSetup(data, protocol);

  EstimatorConfig sampling;
  sampling.kind = EstimatorKind::kSampling;
  const double sampling_mre = MustMre(setup, sampling);

  TextTable table({"#bins", "MRE equi-width", "MRE sampling (ref)"});
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  config.smoothing = SmoothingRule::kFixed;
  double best_mre = 1e9;
  int best_bins = 0;
  for (int bins : {1, 2, 4, 8, 12, 16, 20, 24, 32, 48, 64, 96, 128, 192, 256,
                   384, 512, 1024, 2048, 4096}) {
    config.fixed_smoothing = bins;
    const double mre = MustMre(setup, config);
    if (mre < best_mre) {
      best_mre = mre;
      best_bins = bins;
    }
    table.AddRow({std::to_string(bins), FormatPercent(mre),
                  FormatPercent(sampling_mre)});
  }
  table.Print();
  std::printf("\nminimum: %s at %d bins; sampling reference: %s\n",
              FormatPercent(best_mre).c_str(), best_bins,
              FormatPercent(sampling_mre).c_str());
  return 0;
}
