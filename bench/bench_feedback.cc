// Drift replay: query-driven estimators vs the static roster under data
// shift.
//
// Runs the three drift scenarios of src/eval/drift.h (abrupt swap, linear
// shift, Zipf skew sweep) and writes BENCH_feedback.json — google-benchmark
// shape plus a "drift" array of downsampled error-vs-queries curves — for
// tools/bench_diff.py, which also flags regressions in the convergence
// point (the query after which a feedback curve stays below the best
// static curve).
//
// Flags:
//   --out=PATH     output JSON (default BENCH_feedback.json)
//   --seed=N       replay seed (default 17)
//   --rows=N       rows per drift step (default 20000)
//   --queries=N    queries per scenario (default 600)
//   --steps=N      drift steps per scenario (default 12)
//   --window=N     rolling-MRE window in queries (default 60)
//   --bins=N       bins of the query-driven estimators (default 64)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/eval/drift.h"

namespace selest {
namespace {

int Run(int argc, char** argv) {
  DriftConfig config;
  std::string out_path = "BENCH_feedback.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--out=")) {
      out_path = v;
    } else if (const char* v = value("--seed=")) {
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--rows=")) {
      config.rows = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--queries=")) {
      config.num_queries = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--steps=")) {
      config.num_steps = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--window=")) {
      config.window = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--bins=")) {
      config.num_bins = static_cast<int>(std::strtol(v, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const DriftScenario scenarios[] = {DriftScenario::kAbruptSwap,
                                     DriftScenario::kLinearShift,
                                     DriftScenario::kZipfSweep};
  std::vector<DriftResult> results;
  for (DriftScenario scenario : scenarios) {
    config.scenario = scenario;
    auto result = RunDriftReplay(config);
    if (!result.ok()) {
      std::fprintf(stderr, "drift replay (%s) failed: %s\n",
                   DriftScenarioName(scenario),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s (best static: %s, final MRE %.4f)\n",
                DriftScenarioName(scenario), result->best_static.c_str(),
                result->best_static_final_mre);
    for (const DriftCurve& curve : result->curves) {
      std::printf("  %-24s %-7s final MRE %-8.4f overall %-8.4f "
                  "converged after %zu queries\n",
                  curve.estimator.c_str(),
                  curve.query_driven ? "learned" : "static", curve.final_mre,
                  curve.overall_mre, curve.convergence_query);
    }
    results.push_back(std::move(*result));
  }

  const Status written = WriteDriftJson(results, out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu scenarios)\n", out_path.c_str(), results.size());
  return 0;
}

}  // namespace
}  // namespace selest

int main(int argc, char** argv) { return selest::Run(argc, argv); }
