// Perf bench: the live statistics server under mixed read/ingest load.
//
// For reader counts 1/2/4/8 (ISSUE: production serving is read-dominated
// with a trickle of ingest), runs N reader threads against one live column
// while a writer thread folds row batches that trip the ingest-volume
// refresh policy, and reports per reader count:
//
//   reads_per_sec        — aggregate serve throughput,
//   p50_ns / p99_ns      — serve latency percentiles across all readers,
//   ingest_rows_per_sec  — writer-side fold throughput,
//   generations          — how many epoch flips the policy produced,
//   staleness_mre        — mean relative error of the final served
//                          generation against an oracle estimator rebuilt
//                          from every row the column has ever seen (how
//                          far behind the truth serving ended up),
//
// and writes the whole table to BENCH_server.json (hand-rolled JSON — this
// bench measures wall-clock phases, not single hot loops, so
// google-benchmark's timing model does not fit).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/catalog/live_server.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

constexpr size_t kInitialRows = 1 << 15;   // 32,768 registration rows
constexpr size_t kReadsTotal = 1 << 16;    // reads split across readers
constexpr size_t kIngestBatches = 64;
constexpr size_t kIngestBatchRows = 512;
constexpr size_t kRefreshEveryRows = 4096;
constexpr size_t kProbeQueries = 256;

const Domain kDomain = ContinuousDomain(0.0, 1.0e6);

std::vector<double> MakeRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rows(n);
  for (double& x : rows) {
    x = kDomain.Clamp(0.5e6 + 1.2e5 * rng.NextGaussian());
  }
  return rows;
}

std::vector<RangeQuery> MakeQueries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<RangeQuery> queries(n);
  for (RangeQuery& q : queries) {
    const double center = kDomain.lo + kDomain.width() * rng.NextDouble();
    const double half = 0.05 * kDomain.width() * rng.NextDouble();
    q.a = kDomain.Clamp(center - half);
    q.b = kDomain.Clamp(center + half);
  }
  return queries;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double Percentile(std::vector<uint64_t>& latencies, double p) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(latencies.size() - 1) + 0.5);
  return static_cast<double>(latencies[index]);
}

struct ScenarioResult {
  size_t threads = 0;
  double reads_per_sec = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double ingest_rows_per_sec = 0.0;
  uint64_t generations = 0;
  uint64_t refresh_errors = 0;
  double staleness_mre = 0.0;
};

ScenarioResult RunScenario(size_t num_readers) {
  LiveServerOptions options;
  options.reservoir_capacity = kInitialRows;
  options.refresh_ingest_rows = kRefreshEveryRows;
  options.background_refresh = true;
  LiveStatisticsServer server(std::move(options));

  const std::vector<double> initial = MakeRows(kInitialRows, 7);
  EstimatorConfig config;  // equi-width: the mergeable fold path
  config.kind = EstimatorKind::kEquiWidth;
  {
    const Status registered =
        server.RegisterColumn("bench", "x", kDomain, config, initial);
    if (!registered.ok()) {
      std::fprintf(stderr, "register failed: %s\n",
                   registered.ToString().c_str());
      return {};
    }
  }
  const std::vector<RangeQuery> queries = MakeQueries(kProbeQueries, 11);

  const size_t reads_per_thread = kReadsTotal / num_readers;
  std::vector<std::vector<uint64_t>> latencies(num_readers);
  std::vector<std::thread> readers;
  readers.reserve(num_readers);

  // Rows the column sees, writer-side, for the oracle rebuild below.
  std::vector<double> all_rows = initial;
  const uint64_t start_ns = NowNs();
  for (size_t r = 0; r < num_readers; ++r) {
    latencies[r].reserve(reads_per_thread);
    readers.emplace_back([&, r]() {
      for (size_t i = 0; i < reads_per_thread; ++i) {
        const RangeQuery& query = queries[i % queries.size()];
        const uint64_t begin = NowNs();
        auto estimate = server.Estimate("bench", "x", query);
        latencies[r].push_back(NowNs() - begin);
        if (!estimate.ok()) break;  // surfaces as a short latency vector
      }
    });
  }

  const uint64_t ingest_start_ns = NowNs();
  for (size_t batch = 0; batch < kIngestBatches; ++batch) {
    const std::vector<double> rows =
        MakeRows(kIngestBatchRows, 1000 + batch);
    all_rows.insert(all_rows.end(), rows.begin(), rows.end());
    const Status ingested = server.Ingest("bench", "x", rows);
    if (!ingested.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", ingested.ToString().c_str());
      break;
    }
  }
  const uint64_t ingest_ns = NowNs() - ingest_start_ns;

  for (std::thread& reader : readers) reader.join();
  const uint64_t read_ns = NowNs() - start_ns;
  server.WaitForRefreshes();

  ScenarioResult result;
  result.threads = num_readers;
  std::vector<uint64_t> merged;
  merged.reserve(kReadsTotal);
  size_t reads_done = 0;
  for (const auto& per_thread : latencies) {
    reads_done += per_thread.size();
    merged.insert(merged.end(), per_thread.begin(), per_thread.end());
  }
  result.reads_per_sec = static_cast<double>(reads_done) /
                         (static_cast<double>(read_ns) * 1e-9);
  result.p50_ns = Percentile(merged, 0.50);
  result.p99_ns = Percentile(merged, 0.99);
  result.ingest_rows_per_sec =
      static_cast<double>(kIngestBatches * kIngestBatchRows) /
      (static_cast<double>(ingest_ns) * 1e-9);

  auto stats = server.ColumnStats("bench", "x");
  if (stats.ok()) {
    result.generations = stats.value().generation;
    result.refresh_errors = stats.value().refresh_errors;
  }

  // Staleness: the served generation vs an oracle built from every row.
  auto oracle = BuildEstimator(all_rows, kDomain, config);
  auto served = server.CurrentEstimator("bench", "x");
  if (oracle.ok() && served.ok()) {
    double sum = 0.0;
    size_t used = 0;
    for (const RangeQuery& query : queries) {
      const double truth = oracle.value()->EstimateSelectivity(query);
      if (truth <= 0.0) continue;
      const double answer = served.value()->EstimateSelectivity(query);
      sum += std::abs(answer - truth) / truth;
      ++used;
    }
    result.staleness_mre = used == 0 ? 0.0 : sum / static_cast<double>(used);
  }
  return result;
}

void WriteJson(const std::vector<ScenarioResult>& results,
               const std::string& path) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"live_statistics_server\",\n"
      << "  \"initial_rows\": " << kInitialRows << ",\n"
      << "  \"reads_total\": " << kReadsTotal << ",\n"
      << "  \"ingest_rows\": " << kIngestBatches * kIngestBatchRows << ",\n"
      << "  \"refresh_every_rows\": " << kRefreshEveryRows << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    out << "    {\"threads\": " << r.threads
        << ", \"reads_per_sec\": " << r.reads_per_sec
        << ", \"p50_ns\": " << r.p50_ns << ", \"p99_ns\": " << r.p99_ns
        << ", \"ingest_rows_per_sec\": " << r.ingest_rows_per_sec
        << ", \"generations\": " << r.generations
        << ", \"refresh_errors\": " << r.refresh_errors
        << ", \"staleness_mre\": " << r.staleness_mre << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace selest

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_server.json";
  std::vector<selest::ScenarioResult> results;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    results.push_back(selest::RunScenario(threads));
    const selest::ScenarioResult& r = results.back();
    std::printf(
        "threads=%zu reads/s=%.0f p50=%.0fns p99=%.0fns ingest rows/s=%.0f "
        "generations=%llu staleness_mre=%.4f\n",
        r.threads, r.reads_per_sec, r.p50_ns, r.p99_ns, r.ingest_rows_per_sec,
        static_cast<unsigned long long>(r.generations), r.staleness_mre);
  }
  selest::WriteJson(results, path);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
