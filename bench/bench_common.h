// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the data series of one paper figure/table. The
// absolute numbers depend on the synthetic stand-ins for the paper's real
// data (DESIGN.md §1.3); the *shape* of each series is the reproduction
// target recorded in EXPERIMENTS.md.
#ifndef SELEST_BENCH_BENCH_COMMON_H_
#define SELEST_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "src/eval/experiment.h"
#include "src/eval/paper_data.h"
#include "src/eval/parallel_experiment.h"
#include "src/eval/report.h"

namespace selest {
namespace bench {

// Loads a registered paper data file or aborts with a message.
inline Dataset MustLoad(const std::string& name) {
  auto data = MakePaperDataset(name);
  if (!data.ok()) {
    std::fprintf(stderr, "loading %s failed: %s\n", name.c_str(),
                 data.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(data).value();
}

// Runs a config and returns the MRE, aborting on build failure.
inline double MustMre(const ExperimentSetup& setup,
                      const EstimatorConfig& config) {
  auto report = RunConfig(setup, config);
  if (!report.ok()) {
    std::fprintf(stderr, "estimator %s failed: %s\n",
                 EstimatorKindName(config.kind),
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return report->mean_relative_error;
}

// Runs a whole config sweep through the parallel runner and returns the
// MREs in config order, aborting on any build failure. Bit-identical to
// calling MustMre per config, at any thread count.
inline std::vector<double> MustMres(const ExperimentSetup& setup,
                                    std::span<const EstimatorConfig> configs) {
  std::vector<double> mres;
  mres.reserve(configs.size());
  const auto reports = RunConfigsParallel(setup, configs);
  for (size_t c = 0; c < reports.size(); ++c) {
    if (!reports[c].ok()) {
      std::fprintf(stderr, "estimator %s failed: %s\n",
                   EstimatorKindName(configs[c].kind),
                   reports[c].status().ToString().c_str());
      std::exit(1);
    }
    mres.push_back(reports[c]->mean_relative_error);
  }
  return mres;
}

inline void PrintHeader(const char* artifact, const char* claim) {
  std::printf("== %s ==\n%s\n\n", artifact, claim);
}

}  // namespace bench
}  // namespace selest

#endif  // SELEST_BENCH_BENCH_COMMON_H_
