// Micro-benchmark: per-query estimation cost, plus the Fig. 12 sweep
// wall-clock across thread counts.
//
// §3.2 gives the kernel selectivity estimator a Θ(n) scan cost and notes
// that a search-tree organization reduces it to O(log n + k). The sorted-
// sample implementation realizes the latter; Algorithm 1 is the Θ(n)
// literal transcription. Histograms cost O(log k + bins touched).
//
// BM_Fig12SweepWallClock tracks the parallel trajectory: its JSON output
// (--benchmark_format=json) carries `threads`, `speedup_vs_serial`, and
// `mre_bit_identical` counters so successive BENCH_*.json files record how
// the parallel runner scales — and that parallelism never changed a
// result.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "src/data/domain.h"
#include "src/est/equi_width_histogram.h"
#include "src/est/guarded_estimator.h"
#include "src/est/kernel_estimator.h"
#include "src/est/sampling_estimator.h"
#include "src/eval/paper_data.h"
#include "src/eval/parallel_experiment.h"
#include "src/smoothing/normal_scale.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1.0e6);

std::vector<double> MakeSample(size_t n) {
  Rng rng(42);
  std::vector<double> sample(n);
  for (double& x : sample) x = kDomain.width() * rng.NextDouble();
  return sample;
}

// One percent queries at rotating positions.
RangeQuery NextQuery(Rng& rng) {
  const double width = 0.01 * kDomain.width();
  const double a = (kDomain.width() - width) * rng.NextDouble();
  return {a, a + width};
}

// Fixed bandwidth well under half the query width so the Algorithm 1
// variant's b − a >= 2h precondition holds at every sample size.
constexpr double kBenchBandwidth = 2000.0;

void BM_KernelIndexed(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  KernelEstimatorOptions options;
  options.bandwidth = kBenchBandwidth;
  auto est = KernelEstimator::Create(sample, kDomain, options);
  Rng rng(1);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivity(q.a, q.b));
  }
}
BENCHMARK(BM_KernelIndexed)->Range(1 << 10, 1 << 20);

void BM_KernelAlgorithm1LinearScan(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  KernelEstimatorOptions options;
  options.bandwidth = kBenchBandwidth;
  auto est = KernelEstimator::Create(sample, kDomain, options);
  Rng rng(2);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivityAlgorithm1(q.a, q.b));
  }
}
BENCHMARK(BM_KernelAlgorithm1LinearScan)->Range(1 << 10, 1 << 20);

void BM_KernelBoundaryKernels(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  KernelEstimatorOptions options;
  options.bandwidth = NormalScaleBandwidth(sample, kDomain);
  options.boundary = BoundaryPolicy::kBoundaryKernel;
  auto est = KernelEstimator::Create(sample, kDomain, options);
  Rng rng(3);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivity(q.a, q.b));
  }
}
BENCHMARK(BM_KernelBoundaryKernels)->Range(1 << 10, 1 << 18);

void BM_EquiWidthHistogram(benchmark::State& state) {
  const auto sample = MakeSample(2000);
  auto est = EquiWidthHistogram::Create(sample, kDomain,
                                        static_cast<int>(state.range(0)));
  Rng rng(4);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivity(q.a, q.b));
  }
}
BENCHMARK(BM_EquiWidthHistogram)->Range(8, 8 << 10);

// --- Guarded-vs-raw overhead on the kernel hot path ---
//
// Per healthy query the guard adds one relaxed counter increment, two NaN
// tests, a domain clamp, and a finiteness check on the answer. The
// robustness budget is <5% on the kernel hot path; `guard_overhead_pct`
// records the measured figure (raw and guarded timed back to back on the
// same pre-generated query stream each iteration).
void BM_KernelGuardedOverhead(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  KernelEstimatorOptions options;
  options.bandwidth = kBenchBandwidth;
  // Both sides dispatch through the SelectivityEstimator base, exactly as
  // the experiment runners call estimators; the delta is then the guard
  // alone, not a devirtualization artifact.
  auto raw_kernel = KernelEstimator::Create(sample, kDomain, options);
  const std::unique_ptr<SelectivityEstimator> raw =
      std::make_unique<KernelEstimator>(std::move(raw_kernel).value());
  auto inner = KernelEstimator::Create(sample, kDomain, options);
  std::vector<std::unique_ptr<SelectivityEstimator>> chain;
  chain.push_back(
      std::make_unique<KernelEstimator>(std::move(inner).value()));
  const GuardedEstimator guarded(std::move(chain), kDomain);

  Rng rng(6);
  std::vector<RangeQuery> queries(4096);
  for (RangeQuery& q : queries) q = NextQuery(rng);

  double raw_seconds = 0.0;
  double guarded_seconds = 0.0;
  for (auto _ : state) {
    double acc = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const RangeQuery& q : queries) {
      acc += raw->EstimateSelectivity(q.a, q.b);
    }
    const auto t1 = std::chrono::steady_clock::now();
    for (const RangeQuery& q : queries) {
      acc += guarded.EstimateSelectivity(q.a, q.b);
    }
    const auto t2 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(acc);
    raw_seconds += std::chrono::duration<double>(t1 - t0).count();
    guarded_seconds += std::chrono::duration<double>(t2 - t1).count();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * queries.size()));
  state.counters["guard_overhead_pct"] =
      raw_seconds > 0.0
          ? 100.0 * (guarded_seconds - raw_seconds) / raw_seconds
          : 0.0;
}
BENCHMARK(BM_KernelGuardedOverhead)->Arg(1 << 11)->Arg(1 << 16);

void BM_SamplingEstimator(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  auto est = SamplingEstimator::Create(sample);
  Rng rng(5);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivity(q.a, q.b));
  }
}
BENCHMARK(BM_SamplingEstimator)->Range(1 << 10, 1 << 20);

// --- The Fig. 12 sweep across thread counts ---
//
// One full sweep = the four headline configs of Fig. 12 (equi-width h-NS,
// kernel h-DPI2 with boundary kernels, hybrid, ASH-10) built from the
// standard 2,000-record sample and scored on the 1,000-query file of one
// headline data file — builds and evaluation both included, exactly what
// RunConfigsParallel fans out.

struct Fig12Workload {
  Dataset data;
  ExperimentSetup setup;
  std::vector<EstimatorConfig> configs;

  Fig12Workload(Dataset d, const ProtocolConfig& protocol) : data(std::move(d)) {
    setup = MakeSetup(data, protocol);
  }
};

const Fig12Workload& GetFig12Workload() {
  static const Fig12Workload* workload = [] {
    auto data = MakePaperDataset("n(20)");
    if (!data.ok()) {
      std::fprintf(stderr, "loading n(20) failed: %s\n",
                   data.status().ToString().c_str());
      std::exit(1);
    }
    ProtocolConfig protocol;
    protocol.seed = 17;
    auto* out = new Fig12Workload(std::move(data).value(), protocol);

    EstimatorConfig ewh;
    ewh.kind = EstimatorKind::kEquiWidth;
    out->configs.push_back(ewh);
    EstimatorConfig kernel;
    kernel.kind = EstimatorKind::kKernel;
    kernel.smoothing = SmoothingRule::kDirectPlugIn;
    kernel.boundary = BoundaryPolicy::kBoundaryKernel;
    out->configs.push_back(kernel);
    EstimatorConfig hybrid;
    hybrid.kind = EstimatorKind::kHybrid;
    hybrid.boundary = BoundaryPolicy::kBoundaryKernel;
    out->configs.push_back(hybrid);
    EstimatorConfig ash;
    ash.kind = EstimatorKind::kAverageShifted;
    ash.ash_shifts = 10;
    out->configs.push_back(ash);
    return out;
  }();
  return *workload;
}

// Serial reference: per-sweep wall-clock and the per-config MREs every
// parallel run must reproduce bit-identically.
struct SerialBaseline {
  double seconds_per_sweep = 0.0;
  std::vector<double> mres;
};

const SerialBaseline& GetSerialBaseline() {
  static const SerialBaseline* baseline = [] {
    const Fig12Workload& workload = GetFig12Workload();
    ParallelExecOptions serial;
    serial.threads = 1;
    // Warm-up run sorts the ground-truth cache and faults in the sample.
    auto warm = RunConfigsParallel(workload.setup, workload.configs, serial);
    auto* out = new SerialBaseline();
    for (const auto& report : warm) {
      if (!report.ok()) {
        std::fprintf(stderr, "fig12 config failed: %s\n",
                     report.status().ToString().c_str());
        std::exit(1);
      }
      out->mres.push_back(report->mean_relative_error);
    }
    constexpr int kReps = 3;
    const auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      auto reports =
          RunConfigsParallel(workload.setup, workload.configs, serial);
      benchmark::DoNotOptimize(reports);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    out->seconds_per_sweep = elapsed.count() / kReps;
    return out;
  }();
  return *baseline;
}

void BM_Fig12SweepWallClock(benchmark::State& state) {
  const Fig12Workload& workload = GetFig12Workload();
  const SerialBaseline& baseline = GetSerialBaseline();
  ParallelExecOptions options;
  options.threads = static_cast<size_t>(state.range(0));

  double seconds = 0.0;
  size_t iterations = 0;
  bool identical = true;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto reports =
        RunConfigsParallel(workload.setup, workload.configs, options);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    seconds += elapsed.count();
    ++iterations;
    for (size_t c = 0; c < reports.size(); ++c) {
      // Exact comparison: the determinism contract is bit-identity.
      if (!reports[c].ok() ||
          reports[c]->mean_relative_error != baseline.mres[c]) {
        identical = false;
      }
    }
    benchmark::DoNotOptimize(reports);
  }
  if (!identical) {
    state.SkipWithError("MRE diverged from the serial baseline");
  }
  state.counters["threads"] = static_cast<double>(options.threads);
  state.counters["mre_bit_identical"] = identical ? 1.0 : 0.0;
  state.counters["speedup_vs_serial"] =
      iterations > 0 && seconds > 0.0
          ? baseline.seconds_per_sweep / (seconds / iterations)
          : 0.0;
}
BENCHMARK(BM_Fig12SweepWallClock)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace selest
