// Micro-benchmark: per-query estimation cost.
//
// §3.2 gives the kernel selectivity estimator a Θ(n) scan cost and notes
// that a search-tree organization reduces it to O(log n + k). The sorted-
// sample implementation realizes the latter; Algorithm 1 is the Θ(n)
// literal transcription. Histograms cost O(log k + bins touched).
#include <benchmark/benchmark.h>

#include "src/data/domain.h"
#include "src/est/equi_width_histogram.h"
#include "src/est/kernel_estimator.h"
#include "src/est/sampling_estimator.h"
#include "src/smoothing/normal_scale.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1.0e6);

std::vector<double> MakeSample(size_t n) {
  Rng rng(42);
  std::vector<double> sample(n);
  for (double& x : sample) x = kDomain.width() * rng.NextDouble();
  return sample;
}

// One percent queries at rotating positions.
RangeQuery NextQuery(Rng& rng) {
  const double width = 0.01 * kDomain.width();
  const double a = (kDomain.width() - width) * rng.NextDouble();
  return {a, a + width};
}

// Fixed bandwidth well under half the query width so the Algorithm 1
// variant's b − a >= 2h precondition holds at every sample size.
constexpr double kBenchBandwidth = 2000.0;

void BM_KernelIndexed(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  KernelEstimatorOptions options;
  options.bandwidth = kBenchBandwidth;
  auto est = KernelEstimator::Create(sample, kDomain, options);
  Rng rng(1);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivity(q.a, q.b));
  }
}
BENCHMARK(BM_KernelIndexed)->Range(1 << 10, 1 << 20);

void BM_KernelAlgorithm1LinearScan(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  KernelEstimatorOptions options;
  options.bandwidth = kBenchBandwidth;
  auto est = KernelEstimator::Create(sample, kDomain, options);
  Rng rng(2);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivityAlgorithm1(q.a, q.b));
  }
}
BENCHMARK(BM_KernelAlgorithm1LinearScan)->Range(1 << 10, 1 << 20);

void BM_KernelBoundaryKernels(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  KernelEstimatorOptions options;
  options.bandwidth = NormalScaleBandwidth(sample, kDomain);
  options.boundary = BoundaryPolicy::kBoundaryKernel;
  auto est = KernelEstimator::Create(sample, kDomain, options);
  Rng rng(3);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivity(q.a, q.b));
  }
}
BENCHMARK(BM_KernelBoundaryKernels)->Range(1 << 10, 1 << 18);

void BM_EquiWidthHistogram(benchmark::State& state) {
  const auto sample = MakeSample(2000);
  auto est = EquiWidthHistogram::Create(sample, kDomain,
                                        static_cast<int>(state.range(0)));
  Rng rng(4);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivity(q.a, q.b));
  }
}
BENCHMARK(BM_EquiWidthHistogram)->Range(8, 8 << 10);

void BM_SamplingEstimator(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  auto est = SamplingEstimator::Create(sample);
  Rng rng(5);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivity(q.a, q.b));
  }
}
BENCHMARK(BM_SamplingEstimator)->Range(1 << 10, 1 << 20);

}  // namespace
}  // namespace selest
