// Micro-benchmark: per-query estimation cost, plus the Fig. 12 sweep
// wall-clock across thread counts.
//
// §3.2 gives the kernel selectivity estimator a Θ(n) scan cost and notes
// that a search-tree organization reduces it to O(log n + k). The sorted-
// sample implementation realizes the latter; Algorithm 1 is the Θ(n)
// literal transcription. Histograms cost O(log k + bins touched).
//
// BM_Fig12SweepWallClock tracks the parallel trajectory: its JSON output
// (--benchmark_format=json) carries `threads`, `speedup_vs_serial`, and
// `mre_bit_identical` counters so successive BENCH_*.json files record how
// the parallel runner scales — and that parallelism never changed a
// result.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/data/domain.h"
#include "src/est/equi_width_histogram.h"
#include "src/est/estimator_factory.h"
#include "src/est/guarded_estimator.h"
#include "src/est/kernel_estimator.h"
#include "src/est/sampling_estimator.h"
#include "src/eval/paper_data.h"
#include "src/eval/parallel_experiment.h"
#include "src/smoothing/normal_scale.h"
#include "src/util/random.h"
#include "src/util/simd.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1.0e6);

std::vector<double> MakeSample(size_t n) {
  Rng rng(42);
  std::vector<double> sample(n);
  for (double& x : sample) x = kDomain.width() * rng.NextDouble();
  return sample;
}

// One percent queries at rotating positions.
RangeQuery NextQuery(Rng& rng) {
  const double width = 0.01 * kDomain.width();
  const double a = (kDomain.width() - width) * rng.NextDouble();
  return {a, a + width};
}

// Fixed bandwidth well under half the query width so the Algorithm 1
// variant's b − a >= 2h precondition holds at every sample size.
constexpr double kBenchBandwidth = 2000.0;

void BM_KernelIndexed(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  KernelEstimatorOptions options;
  options.bandwidth = kBenchBandwidth;
  auto est = KernelEstimator::Create(sample, kDomain, options);
  Rng rng(1);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivity(q.a, q.b));
  }
}
BENCHMARK(BM_KernelIndexed)->Range(1 << 10, 1 << 20);

void BM_KernelAlgorithm1LinearScan(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  KernelEstimatorOptions options;
  options.bandwidth = kBenchBandwidth;
  auto est = KernelEstimator::Create(sample, kDomain, options);
  Rng rng(2);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivityAlgorithm1(q.a, q.b));
  }
}
BENCHMARK(BM_KernelAlgorithm1LinearScan)->Range(1 << 10, 1 << 20);

void BM_KernelBoundaryKernels(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  KernelEstimatorOptions options;
  options.bandwidth = NormalScaleBandwidth(sample, kDomain);
  options.boundary = BoundaryPolicy::kBoundaryKernel;
  auto est = KernelEstimator::Create(sample, kDomain, options);
  Rng rng(3);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivity(q.a, q.b));
  }
}
BENCHMARK(BM_KernelBoundaryKernels)->Range(1 << 10, 1 << 18);

void BM_EquiWidthHistogram(benchmark::State& state) {
  const auto sample = MakeSample(2000);
  auto est = EquiWidthHistogram::Create(sample, kDomain,
                                        static_cast<int>(state.range(0)));
  Rng rng(4);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivity(q.a, q.b));
  }
}
BENCHMARK(BM_EquiWidthHistogram)->Range(8, 8 << 10);

// --- Guarded-vs-raw overhead on the kernel hot path ---
//
// Per healthy query the guard adds one relaxed counter increment, two NaN
// tests, a domain clamp, and a finiteness check on the answer. The
// robustness budget is <5% on the kernel hot path; `guard_overhead_pct`
// records the measured figure (raw and guarded timed back to back on the
// same pre-generated query stream each iteration).
void BM_KernelGuardedOverhead(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  KernelEstimatorOptions options;
  options.bandwidth = kBenchBandwidth;
  // Both sides dispatch through the SelectivityEstimator base, exactly as
  // the experiment runners call estimators; the delta is then the guard
  // alone, not a devirtualization artifact.
  auto raw_kernel = KernelEstimator::Create(sample, kDomain, options);
  const std::unique_ptr<SelectivityEstimator> raw =
      std::make_unique<KernelEstimator>(std::move(raw_kernel).value());
  auto inner = KernelEstimator::Create(sample, kDomain, options);
  std::vector<std::unique_ptr<SelectivityEstimator>> chain;
  chain.push_back(
      std::make_unique<KernelEstimator>(std::move(inner).value()));
  const GuardedEstimator guarded(std::move(chain), kDomain);

  Rng rng(6);
  std::vector<RangeQuery> queries(4096);
  for (RangeQuery& q : queries) q = NextQuery(rng);

  double raw_seconds = 0.0;
  double guarded_seconds = 0.0;
  for (auto _ : state) {
    double acc = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const RangeQuery& q : queries) {
      acc += raw->EstimateSelectivity(q.a, q.b);
    }
    const auto t1 = std::chrono::steady_clock::now();
    for (const RangeQuery& q : queries) {
      acc += guarded.EstimateSelectivity(q.a, q.b);
    }
    const auto t2 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(acc);
    raw_seconds += std::chrono::duration<double>(t1 - t0).count();
    guarded_seconds += std::chrono::duration<double>(t2 - t1).count();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * queries.size()));
  state.counters["guard_overhead_pct"] =
      raw_seconds > 0.0
          ? 100.0 * (guarded_seconds - raw_seconds) / raw_seconds
          : 0.0;
}
BENCHMARK(BM_KernelGuardedOverhead)->Arg(1 << 11)->Arg(1 << 16);

void BM_SamplingEstimator(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  auto est = SamplingEstimator::Create(sample);
  Rng rng(5);
  for (auto _ : state) {
    const RangeQuery q = NextQuery(rng);
    benchmark::DoNotOptimize(est->EstimateSelectivity(q.a, q.b));
  }
}
BENCHMARK(BM_SamplingEstimator)->Range(1 << 10, 1 << 20);

// --- The SIMD batch paths (DESIGN.md §12) ---
//
// Each batch benchmark times EstimateSelectivityBatch under the scalar
// tier and under one vector tier back to back on the same pre-generated
// query stream. Both sides take the identical pool fan-out, so
// `speedup_vs_scalar` isolates the vector kernels (per-thread throughput;
// run with SELEST_THREADS=1 for clean single-thread numbers), and
// `bit_identical` re-asserts the exactness contract on every iteration.
// Unsupported tiers report skipped, so one BENCH_estimators.json diffs
// cleanly across hosts of different ISA generations.
//
// Note the scalar tier is itself post-PR code (branch-free searches, SoA
// strips), i.e. a harder baseline than the `std::lower_bound` chains the
// seed shipped. Where a benchmark supplies a `prepr` functor — a faithful
// replica of the seed's per-query algorithm — the extra
// `speedup_vs_prepr` counter reports the vector tier against that
// original baseline too.

SimdTier TierFromArg(int64_t arg) {
  return arg == 2 ? SimdTier::kAvx512 : SimdTier::kAvx2;
}

void BatchTierSpeedup(benchmark::State& state, const SelectivityEstimator& est,
                      size_t num_queries,
                      const std::function<double(const RangeQuery&)>& prepr =
                          nullptr) {
  const SimdTier tier = TierFromArg(state.range(0));
  if (!SimdTierSupported(tier)) {
    state.SkipWithError("simd tier not supported on this host");
    return;
  }
  Rng rng(9);
  std::vector<RangeQuery> queries(num_queries);
  for (RangeQuery& q : queries) q = NextQuery(rng);
  std::vector<double> scalar_out(queries.size());
  std::vector<double> vector_out(queries.size());

  double scalar_seconds = 0.0;
  double vector_seconds = 0.0;
  double prepr_seconds = 0.0;
  bool identical = true;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    {
      ScopedSimdTier scoped(SimdTier::kScalar);
      est.EstimateSelectivityBatch(queries, scalar_out);
    }
    const auto t1 = std::chrono::steady_clock::now();
    {
      ScopedSimdTier scoped(tier);
      est.EstimateSelectivityBatch(queries, vector_out);
    }
    const auto t2 = std::chrono::steady_clock::now();
    scalar_seconds += std::chrono::duration<double>(t1 - t0).count();
    vector_seconds += std::chrono::duration<double>(t2 - t1).count();
    for (size_t i = 0; i < queries.size(); ++i) {
      // Exact comparison: the SIMD contract is bit-identity.
      if (scalar_out[i] != vector_out[i]) identical = false;
    }
    benchmark::DoNotOptimize(vector_out.data());
    if (prepr) {
      double acc = 0.0;
      const auto t3 = std::chrono::steady_clock::now();
      for (const RangeQuery& q : queries) acc += prepr(q);
      const auto t4 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(acc);
      prepr_seconds += std::chrono::duration<double>(t4 - t3).count();
    }
  }
  if (!identical) {
    state.SkipWithError("vector tier diverged from the scalar batch");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
  state.counters["simd_width"] =
      static_cast<double>(SimdOpsForTier(tier)->width);
  state.counters["bit_identical"] = identical ? 1.0 : 0.0;
  state.counters["speedup_vs_scalar"] =
      vector_seconds > 0.0 ? scalar_seconds / vector_seconds : 0.0;
  if (prepr) {
    state.counters["speedup_vs_prepr"] =
        vector_seconds > 0.0 ? prepr_seconds / vector_seconds : 0.0;
  }
}

constexpr size_t kBatchSampleSize = 1 << 16;
constexpr size_t kBatchQueries = 4096;

// Two bin-count regimes: tens of bins is the paper's own configuration
// (h-NS on small samples; 1% queries touch 1–2 bins, so the vectorized
// edge search dominates), while 1024 bins makes every query walk ~11 bins
// — a per-bin accumulation whose summation order the bit-identity contract
// pins, so the walk cannot be collapsed into prefix-sum lookups and the
// vector win is structurally smaller there.
void BM_BatchEquiWidth(benchmark::State& state) {
  static auto* cache = new std::map<int64_t, const EquiWidthHistogram*>();
  const EquiWidthHistogram*& slot = (*cache)[state.range(1)];
  if (slot == nullptr) {
    auto built = EquiWidthHistogram::Create(MakeSample(kBatchSampleSize),
                                            kDomain,
                                            static_cast<int>(state.range(1)));
    if (!built.ok()) {
      std::fprintf(stderr, "equi-width build failed: %s\n",
                   built.status().ToString().c_str());
      std::exit(1);
    }
    slot = new EquiWidthHistogram(std::move(built).value());
  }
  const EquiWidthHistogram* est = slot;
  // The seed's BinnedDensity::Selectivity, std::lower_bound and all — the
  // pre-PR scalar baseline the acceptance speedup is quoted against.
  const auto prepr = [est](const RangeQuery& q) {
    const auto& edges = est->bins().edges();
    const auto& counts = est->bins().counts();
    if (q.a > q.b) return 0.0;
    double mass = 0.0;
    const size_t first = static_cast<size_t>(
        std::lower_bound(edges.begin(), edges.end(), q.a) - edges.begin());
    size_t i = first == 0 ? 0 : first - 1;
    for (; i < counts.size() && edges[i] <= q.b; ++i) {
      const double lo = edges[i];
      const double hi = edges[i + 1];
      const double width = hi - lo;
      if (width <= 0.0) {
        if (lo >= q.a && lo <= q.b) mass += counts[i];
        continue;
      }
      const double overlap = std::min(q.b, hi) - std::max(q.a, lo);
      if (overlap <= 0.0) continue;
      mass += counts[i] * (overlap / width);
    }
    return std::clamp(mass / est->bins().total_count(), 0.0, 1.0);
  };
  BatchTierSpeedup(state, *est, kBatchQueries, prepr);
}
BENCHMARK(BM_BatchEquiWidth)
    ->ArgNames({"tier", "bins"})
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({1, 1024})
    ->Args({2, 1024})
    ->Unit(benchmark::kMicrosecond);

void BM_BatchKernel(benchmark::State& state) {
  static const auto* est = [] {
    KernelEstimatorOptions options;
    options.bandwidth = kBenchBandwidth;
    auto built =
        KernelEstimator::Create(MakeSample(kBatchSampleSize), kDomain, options);
    return new KernelEstimator(std::move(built).value());
  }();
  BatchTierSpeedup(state, *est, kBatchQueries);
}
BENCHMARK(BM_BatchKernel)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_BatchKernelBoundary(benchmark::State& state) {
  static const auto* est = [] {
    const auto sample = MakeSample(kBatchSampleSize);
    KernelEstimatorOptions options;
    options.bandwidth = NormalScaleBandwidth(sample, kDomain);
    options.boundary = BoundaryPolicy::kBoundaryKernel;
    auto built = KernelEstimator::Create(sample, kDomain, options);
    return new KernelEstimator(std::move(built).value());
  }();
  BatchTierSpeedup(state, *est, kBatchQueries);
}
BENCHMARK(BM_BatchKernelBoundary)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_BatchSampling(benchmark::State& state) {
  static const auto* est = [] {
    auto built = SamplingEstimator::Create(MakeSample(kBatchSampleSize));
    return new SamplingEstimator(std::move(built).value());
  }();
  BatchTierSpeedup(state, *est, kBatchQueries);
}
BENCHMARK(BM_BatchSampling)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_BatchHybrid(benchmark::State& state) {
  static const SelectivityEstimator* est = [] {
    EstimatorConfig config;
    config.kind = EstimatorKind::kHybrid;
    auto built = BuildEstimator(MakeSample(kBatchSampleSize), kDomain, config);
    if (!built.ok()) {
      std::fprintf(stderr, "hybrid build failed: %s\n",
                   built.status().ToString().c_str());
      std::exit(1);
    }
    return built.value().release();
  }();
  BatchTierSpeedup(state, *est, kBatchQueries);
}
BENCHMARK(BM_BatchHybrid)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// --- The Fig. 12 sweep across thread counts ---
//
// One full sweep = the four headline configs of Fig. 12 (equi-width h-NS,
// kernel h-DPI2 with boundary kernels, hybrid, ASH-10) built from the
// standard 2,000-record sample and scored on the 1,000-query file of one
// headline data file — builds and evaluation both included, exactly what
// RunConfigsParallel fans out.

struct Fig12Workload {
  Dataset data;
  ExperimentSetup setup;
  std::vector<EstimatorConfig> configs;

  Fig12Workload(Dataset d, const ProtocolConfig& protocol) : data(std::move(d)) {
    setup = MakeSetup(data, protocol);
  }
};

const Fig12Workload& GetFig12Workload() {
  static const Fig12Workload* workload = [] {
    auto data = MakePaperDataset("n(20)");
    if (!data.ok()) {
      std::fprintf(stderr, "loading n(20) failed: %s\n",
                   data.status().ToString().c_str());
      std::exit(1);
    }
    ProtocolConfig protocol;
    protocol.seed = 17;
    auto* out = new Fig12Workload(std::move(data).value(), protocol);

    EstimatorConfig ewh;
    ewh.kind = EstimatorKind::kEquiWidth;
    out->configs.push_back(ewh);
    EstimatorConfig kernel;
    kernel.kind = EstimatorKind::kKernel;
    kernel.smoothing = SmoothingRule::kDirectPlugIn;
    kernel.boundary = BoundaryPolicy::kBoundaryKernel;
    out->configs.push_back(kernel);
    EstimatorConfig hybrid;
    hybrid.kind = EstimatorKind::kHybrid;
    hybrid.boundary = BoundaryPolicy::kBoundaryKernel;
    out->configs.push_back(hybrid);
    EstimatorConfig ash;
    ash.kind = EstimatorKind::kAverageShifted;
    ash.ash_shifts = 10;
    out->configs.push_back(ash);
    return out;
  }();
  return *workload;
}

// Serial reference: per-sweep wall-clock and the per-config MREs every
// parallel run must reproduce bit-identically.
struct SerialBaseline {
  double seconds_per_sweep = 0.0;
  std::vector<double> mres;
};

const SerialBaseline& GetSerialBaseline() {
  static const SerialBaseline* baseline = [] {
    const Fig12Workload& workload = GetFig12Workload();
    ParallelExecOptions serial;
    serial.threads = 1;
    // Warm-up run sorts the ground-truth cache and faults in the sample.
    auto warm = RunConfigsParallel(workload.setup, workload.configs, serial);
    auto* out = new SerialBaseline();
    for (const auto& report : warm) {
      if (!report.ok()) {
        std::fprintf(stderr, "fig12 config failed: %s\n",
                     report.status().ToString().c_str());
        std::exit(1);
      }
      out->mres.push_back(report->mean_relative_error);
    }
    constexpr int kReps = 3;
    const auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      auto reports =
          RunConfigsParallel(workload.setup, workload.configs, serial);
      benchmark::DoNotOptimize(reports);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    out->seconds_per_sweep = elapsed.count() / kReps;
    return out;
  }();
  return *baseline;
}

void BM_Fig12SweepWallClock(benchmark::State& state) {
  const Fig12Workload& workload = GetFig12Workload();
  const SerialBaseline& baseline = GetSerialBaseline();
  ParallelExecOptions options;
  options.threads = static_cast<size_t>(state.range(0));

  double seconds = 0.0;
  size_t iterations = 0;
  bool identical = true;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto reports =
        RunConfigsParallel(workload.setup, workload.configs, options);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    seconds += elapsed.count();
    ++iterations;
    for (size_t c = 0; c < reports.size(); ++c) {
      // Exact comparison: the determinism contract is bit-identity.
      if (!reports[c].ok() ||
          reports[c]->mean_relative_error != baseline.mres[c]) {
        identical = false;
      }
    }
    benchmark::DoNotOptimize(reports);
  }
  if (!identical) {
    state.SkipWithError("MRE diverged from the serial baseline");
  }
  state.counters["threads"] = static_cast<double>(options.threads);
  state.counters["mre_bit_identical"] = identical ? 1.0 : 0.0;
  state.counters["speedup_vs_serial"] =
      iterations > 0 && seconds > 0.0
          ? baseline.seconds_per_sweep / (seconds / iterations)
          : 0.0;
}
BENCHMARK(BM_Fig12SweepWallClock)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace selest

// Custom main instead of benchmark_main (mirrors bench_perf_catalog):
// unless the caller already chose a report destination, results also land
// in BENCH_estimators.json so every run leaves a machine-readable artifact
// that tools/bench_diff.py can compare against a previous build's file.
// The host's detected SIMD tier is recorded in the JSON context block.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_estimators.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  benchmark::AddCustomContext("simd_tier",
                              selest::SimdTierName(selest::ActiveSimdTier()));
  int arg_count = static_cast<int>(args.size());
  benchmark::Initialize(&arg_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(arg_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
