// Ablation A1: does the kernel function matter?
//
// §3.2 claims (citing Silverman) that the choice of kernel matters far
// less than the choice of bandwidth. This sweep crosses five kernels with
// three bandwidth scalings and reports the MRE spread.
//
// Expected: per bandwidth row, the spread across kernels is small compared
// to the spread across bandwidths.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/smoothing/normal_scale.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Ablation A1 — kernel function vs. bandwidth sensitivity "
              "(n(20), 1% queries)",
              "Expected: rows (kernels) differ far less than columns "
              "(bandwidth scalings).");

  const Dataset data = MustLoad("n(20)");
  ProtocolConfig protocol;
  protocol.seed = 19;
  const ExperimentSetup setup = MakeSetup(data, protocol);

  const KernelType kernels[] = {KernelType::kEpanechnikov,
                                KernelType::kBiweight,
                                KernelType::kTriangular, KernelType::kUniform,
                                KernelType::kGaussian};
  const double scalings[] = {0.25, 1.0, 4.0, 16.0};

  TextTable table({"kernel", "MRE 0.25·h", "MRE 1·h", "MRE 4·h",
                   "MRE 16·h"});
  std::vector<std::vector<double>> grid;
  for (KernelType type : kernels) {
    const Kernel kernel(type);
    const double h_ns =
        NormalScaleBandwidth(setup.sample, setup.domain(), kernel);
    std::vector<std::string> row{kernel.name()};
    std::vector<double> mres;
    for (double scale : scalings) {
      EstimatorConfig config;
      config.kind = EstimatorKind::kKernel;
      config.kernel = type;
      config.smoothing = SmoothingRule::kFixed;
      config.fixed_smoothing = scale * h_ns;
      // Boundary kernels only extend Epanechnikov; use reflection so every
      // kernel gets the same treatment.
      config.boundary = BoundaryPolicy::kReflection;
      const double mre = MustMre(setup, config);
      mres.push_back(mre);
      row.push_back(FormatPercent(mre));
    }
    grid.push_back(mres);
    table.AddRow(std::move(row));
  }
  table.Print();

  // Spread across kernels at the normal-scale bandwidth vs. spread across
  // bandwidths for the Epanechnikov kernel.
  double kernel_lo = 1e9;
  double kernel_hi = 0.0;
  for (const auto& mres : grid) {
    kernel_lo = std::min(kernel_lo, mres[1]);
    kernel_hi = std::max(kernel_hi, mres[1]);
  }
  const double bandwidth_lo =
      *std::min_element(grid[0].begin(), grid[0].end());
  const double bandwidth_hi =
      *std::max_element(grid[0].begin(), grid[0].end());
  std::printf(
      "\nspread across kernels at 1·h:       %s .. %s\n"
      "spread across bandwidths (Epan.):    %s .. %s\n",
      FormatPercent(kernel_lo).c_str(), FormatPercent(kernel_hi).c_str(),
      FormatPercent(bandwidth_lo).c_str(), FormatPercent(bandwidth_hi).c_str());
  return 0;
}
