// Fig. 9: MRE of equi-width histograms under two bin-count policies — the
// best observed count (h-opt) and the normal scale rule (h-NS); 1%
// queries.
//
// Expected shape: h-NS lands close to h-opt, on average only a few points
// of MRE above it (paper: ≈3% higher on average).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/smoothing/normal_scale.h"
#include "src/smoothing/oracle.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Fig. 9 — equi-width bin-count policies: h-opt vs. h-NS; 1% "
              "queries",
              "Expected: h-NS within a few MRE points of h-opt on every "
              "file.");

  TextTable table({"data file", "bins h-opt", "MRE h-opt", "bins h-NS",
                   "MRE h-NS", "gap"});
  double total_gap = 0.0;
  int files = 0;
  for (const std::string& name : HeadlineFileNames()) {
    const Dataset data = MustLoad(name);
    ProtocolConfig protocol;
    protocol.seed = 7;
    const ExperimentSetup setup = MakeSetup(data, protocol);
    EstimatorConfig config;
    config.kind = EstimatorKind::kEquiWidth;
    auto objective = MakeBinCountObjective(setup, config);
    const int best_bins = FindOptimalBinCount(objective, 1, 2000);
    const double best_mre = objective(best_bins);
    const int ns_bins = NormalScaleNumBins(setup.sample, setup.domain());
    const double ns_mre = objective(ns_bins);
    total_gap += ns_mre - best_mre;
    ++files;
    table.AddRow({name, std::to_string(best_bins), FormatPercent(best_mre),
                  std::to_string(ns_bins), FormatPercent(ns_mre),
                  FormatPercent(ns_mre - best_mre)});
  }
  table.Print();
  std::printf("\naverage gap h-NS − h-opt: %s (paper: about +3%%)\n",
              FormatPercent(total_gap / files).c_str());
  return 0;
}
