// Fig. 10: relative error of 1% queries as a function of the query
// position for the three boundary policies (none, reflection, boundary
// kernels) on uniform data.
//
// Expected shape: the untreated estimator spikes at both boundaries; both
// treatments flatten the curve, boundary kernels slightly better than
// reflection (§5.2.5).
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/est/kernel_estimator.h"
#include "src/eval/metrics.h"
#include "src/query/workload.h"
#include "src/sample/sampler.h"
#include "src/smoothing/normal_scale.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Fig. 10 — relative error of 1% queries vs. position, per "
              "boundary policy (uniform data)",
              "Expected: untreated spikes at the boundaries; both fixes "
              "flatten them, boundary kernels best.");

  const Dataset data = MustLoad("u(20)");
  Rng rng(11);
  const std::vector<double> sample =
      SampleWithoutReplacement(data.values(), 2000, rng);
  const double bandwidth = NormalScaleBandwidth(sample, data.domain());
  const auto queries = GeneratePositionSweep(data, 0.01, 201);
  const GroundTruth truth(data);

  const BoundaryPolicy policies[] = {BoundaryPolicy::kNone,
                                     BoundaryPolicy::kReflection,
                                     BoundaryPolicy::kBoundaryKernel};
  std::vector<std::vector<PositionalError>> errors;
  for (BoundaryPolicy policy : policies) {
    KernelEstimatorOptions options;
    options.bandwidth = bandwidth;
    options.boundary = policy;
    auto estimator = KernelEstimator::Create(sample, data.domain(), options);
    if (!estimator.ok()) return 1;
    errors.push_back(EvaluateByPosition(*estimator, queries, truth));
  }

  TextTable table({"position (% of domain)", "rel. error none",
                   "rel. error reflection", "rel. error boundary kernels"});
  for (size_t i = 0; i < queries.size(); i += 10) {
    table.AddRow(
        {FormatDouble(100.0 * errors[0][i].position / data.domain().width(),
                      1),
         FormatPercent(errors[0][i].relative_error),
         FormatPercent(errors[1][i].relative_error),
         FormatPercent(errors[2][i].relative_error)});
  }
  table.Print();

  // Boundary-strip summary (queries within one bandwidth of a boundary).
  std::printf("\nmean relative error within one bandwidth of a boundary:\n");
  const char* labels[] = {"none", "reflection", "boundary kernels"};
  for (size_t p = 0; p < errors.size(); ++p) {
    double sum = 0.0;
    int count = 0;
    for (const auto& e : errors[p]) {
      if (e.position - data.domain().lo < bandwidth ||
          data.domain().hi - e.position < bandwidth) {
        sum += e.relative_error;
        ++count;
      }
    }
    std::printf("  %-18s %s\n", labels[p],
                FormatPercent(sum / std::max(count, 1)).c_str());
  }
  return 0;
}
