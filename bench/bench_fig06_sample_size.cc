// Fig. 6: MRE(n(20), 1%) as a function of the sample size for pure
// sampling, equi-width histograms and kernel estimators.
//
// Expected shape: all three fall as the sample grows (consistency), with
// kernel < histogram < sampling throughout (paper: histogram 12% at 200
// samples down to ~4% at 10,000).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Fig. 6 — MRE(n(20), 1%) vs. sample size",
              "Expected: monotone decline; kernel < equi-width < sampling.");

  const Dataset data = MustLoad("n(20)");

  TextTable table({"sample size", "sampling", "equi-width (h-NS)",
                   "kernel (boundary kernels, h-NS)"});
  for (size_t n : {200u, 500u, 1000u, 2000u, 5000u, 10000u}) {
    ProtocolConfig protocol;
    protocol.sample_size = n;
    protocol.seed = 1;
    const ExperimentSetup setup = MakeSetup(data, protocol);
    EstimatorConfig config;
    std::vector<std::string> row{std::to_string(n)};
    for (EstimatorKind kind :
         {EstimatorKind::kSampling, EstimatorKind::kEquiWidth,
          EstimatorKind::kKernel}) {
      config.kind = kind;
      row.push_back(FormatPercent(MustMre(setup, config)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
