// Fig. 5: impact of the domain cardinality — MRE of equi-width histograms
// as a function of the number of bins for n(10), n(15) and n(20).
//
// Expected shape: the error curves rise with the domain parameter p —
// small domains duplicate values heavily and are easy; the paper's large
// metric domains are the hard case.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Fig. 5 — MRE vs. #bins for different domain cardinalities "
              "(n(10), n(15), n(20); 1% queries)",
              "Expected: larger domains give uniformly higher error.");

  const char* files[] = {"n(10)", "n(15)", "n(20)"};
  std::vector<Dataset> datasets;
  std::vector<ExperimentSetup> setups;
  datasets.reserve(3);
  for (const char* name : files) datasets.push_back(MustLoad(name));
  for (const Dataset& data : datasets) {
    ProtocolConfig protocol;
    setups.push_back(MakeSetup(data, protocol));
  }

  TextTable table({"#bins", "MRE n(10)", "MRE n(15)", "MRE n(20)"});
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  config.smoothing = SmoothingRule::kFixed;
  std::vector<double> averages(3, 0.0);
  const int bin_choices[] = {4, 8, 16, 24, 32, 64, 128, 256, 512};
  for (int bins : bin_choices) {
    config.fixed_smoothing = bins;
    std::vector<std::string> row{std::to_string(bins)};
    for (size_t i = 0; i < setups.size(); ++i) {
      const double mre = MustMre(setups[i], config);
      averages[i] += mre / std::size(bin_choices);
      row.push_back(FormatPercent(mre));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\naverage over the sweep: n(10) %s, n(15) %s, n(20) %s\n"
      "(paper: error considerably higher for large domain cardinalities)\n",
      FormatPercent(averages[0]).c_str(), FormatPercent(averages[1]).c_str(),
      FormatPercent(averages[2]).c_str());
  return 0;
}
