// Extension E2 (paper §6, future work): kernel estimators for online
// aggregation.
//
// Streams samples from n(20) and tracks, at checkpoints, the progressive
// estimate, the 95% confidence-interval width and the actual error — for
// the kernel-contribution estimator and the pure-sampling baseline.
//
// Expected: both converge; the kernel interval is never wider and the
// kernel's actual error is smaller at small sample counts (the faster
// convergence the paper cites from [11]).
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/online/online_estimator.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Extension E2 — online aggregation: progressive estimates",
              "Expected: CI width and error fall ~n^(-1/2); kernel CI <= "
              "sampling CI.");

  const Dataset data = MustLoad("n(20)");
  const GroundTruth truth(data);
  // A 2%-of-domain query near the mode.
  const double center = 0.55 * data.domain().hi;
  const RangeQuery query{center - 0.01 * data.domain().width(),
                         center + 0.01 * data.domain().width()};
  const double true_selectivity = truth.Selectivity(query);

  Rng rng(4242);
  OnlineSelectivityEstimator online(data.domain());

  TextTable table({"samples", "kernel estimate", "kernel 95% CI width",
                   "kernel |error|", "sampling 95% CI width",
                   "sampling |error|"});
  size_t streamed = 0;
  for (size_t checkpoint :
       {50u, 100u, 250u, 500u, 1000u, 2500u, 5000u, 10000u, 25000u}) {
    while (streamed < checkpoint) {
      online.AddSample(data.values()[rng.NextUint64(data.size())]);
      ++streamed;
    }
    const IntervalEstimate kernel = online.Estimate(query);
    const IntervalEstimate sampling = online.SamplingEstimate(query);
    table.AddRow({std::to_string(checkpoint),
                  FormatDouble(kernel.estimate, 5),
                  FormatDouble(kernel.hi - kernel.lo, 5),
                  FormatDouble(std::fabs(kernel.estimate - true_selectivity),
                               5),
                  FormatDouble(sampling.hi - sampling.lo, 5),
                  FormatDouble(
                      std::fabs(sampling.estimate - true_selectivity), 5)});
  }
  table.Print();
  std::printf("\ntrue selectivity: %.5f (exact count %zu of %zu)\n",
              true_selectivity, truth.Count(query), data.size());
  return 0;
}
