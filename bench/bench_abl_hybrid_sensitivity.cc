// Ablation A4: sensitivity of the hybrid estimator to its two knobs — the
// change-point budget and the minimum bin mass (merge threshold).
//
// §3.3 leaves change-point detection quality as the key driver of hybrid
// accuracy. Expected: too few change points degenerate toward the pure
// kernel estimator; an overly aggressive merge threshold does the same;
// a moderate budget (4–8 points, a few percent minimum mass) is robust.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/est/hybrid_estimator.h"
#include "src/eval/metrics.h"
#include "src/query/ground_truth.h"

namespace {

double HybridMre(const selest::ExperimentSetup& setup,
                 const selest::HybridEstimatorOptions& options) {
  auto est = selest::HybridEstimator::Create(setup.sample, setup.domain(),
                                             options);
  if (!est.ok()) {
    std::fprintf(stderr, "hybrid failed: %s\n",
                 est.status().ToString().c_str());
    std::exit(1);
  }
  const selest::GroundTruth truth(*setup.data);
  return selest::Evaluate(*est, setup.queries, truth).mean_relative_error;
}

}  // namespace

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Ablation A4 — hybrid estimator sensitivity (1% queries)",
              "Expected: 0 change points ≈ pure kernel; moderate budgets "
              "robust; extreme merging hurts on rough data.");

  for (const char* name : {"arap1", "rr2(22)"}) {
    const Dataset data = MustLoad(name);
    ProtocolConfig protocol;
    protocol.seed = 31;
    const ExperimentSetup setup = MakeSetup(data, protocol);

    std::printf("data file %s\n", name);
    TextTable table({"max change points", "MRE (min mass 2%)",
                     "MRE (min mass 10%)", "MRE (min mass 25%)"});
    for (int budget : {0, 2, 4, 8, 16}) {
      std::vector<std::string> row{std::to_string(budget)};
      for (double min_mass : {0.02, 0.10, 0.25}) {
        HybridEstimatorOptions options;
        options.change_points.max_change_points = budget;
        options.min_bin_fraction = min_mass;
        row.push_back(FormatPercent(HybridMre(setup, options)));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
