// Extension E3 (paper §6, future work): adaptive estimation from query
// feedback [1].
//
// A feedback histogram starts from the uniform assumption (no sample at
// all) and learns from the true result sizes of executed queries. Tracked:
// workload MRE after each feedback round, against static baselines.
//
// Expected: the feedback histogram starts as bad as the uniform estimator
// and, within a few rounds, matches or beats the sample-built equi-width
// histogram on the recurring workload — without ever drawing a sample.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/feedback/feedback_histogram.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Extension E3 — query-feedback adaptation (e(20), 1% queries)",
              "Expected: MRE falls steeply over the first rounds, ending "
              "near the sampled-histogram baseline.");

  const Dataset data = MustLoad("e(20)");
  ProtocolConfig protocol;
  protocol.seed = 99;
  const ExperimentSetup setup = MakeSetup(data, protocol);
  const GroundTruth truth(*setup.data);

  // Static baselines.
  EstimatorConfig config;
  config.kind = EstimatorKind::kUniform;
  const double uniform_mre = MustMre(setup, config);
  config.kind = EstimatorKind::kEquiWidth;
  const double ewh_mre = MustMre(setup, config);

  FeedbackHistogramOptions options;
  options.num_bins = 64;
  options.learning_rate = 0.5;
  auto feedback = FeedbackHistogram::Create(setup.domain(), options);
  if (!feedback.ok()) return 1;

  const auto workload_mre = [&] {
    return Evaluate(*feedback, setup.queries, truth).mean_relative_error;
  };

  TextTable table({"feedback round", "feedback-histogram MRE",
                   "uniform (static)", "equi-width from sample (static)"});
  table.AddRow({"0 (uniform start)", FormatPercent(workload_mre()),
                FormatPercent(uniform_mre), FormatPercent(ewh_mre)});
  for (int round = 1; round <= 8; ++round) {
    for (const RangeQuery& q : setup.queries) {
      feedback->Observe(q, truth.Selectivity(q));
    }
    table.AddRow({std::to_string(round), FormatPercent(workload_mre()),
                  FormatPercent(uniform_mre), FormatPercent(ewh_mre)});
  }
  table.Print();
  std::printf("\nfeedback observations consumed: %zu\n",
              feedback->observations());
  return 0;
}
