// Crossover-frontier sweep: estimator × selectivity band × data size ×
// distribution, entirely out of core.
//
// Every column is streamed from a seeded SyntheticColumnSource, so the
// data-size axis can run to 10⁷–10⁸ rows without materializing a column:
// peak RSS stays bounded by one chunk plus the estimators themselves
// (reported at the end via getrusage). Writes BENCH_crossover.json
// (google-benchmark shape plus a "frontier" array) for
// tools/bench_diff.py.
//
// Flags:
//   --out=PATH          output JSON (default BENCH_crossover.json)
//   --sizes=N,N,...     data sizes (default 10000,100000,1000000)
//   --dists=a,b,...     distributions (default uniform,normal,zipf)
//   --bands=f,f,...     query fractions (default 0.01,0.02,0.05,0.10)
//   --queries=N         queries per band (default 200)
//   --seed=N            sweep seed (default 1)
#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/eval/crossover.h"

namespace selest {
namespace {

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) parts.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

double PeakRssMiB() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // ru_maxrss is KiB
}

int Run(int argc, char** argv) {
  CrossoverConfig config = DefaultCrossoverConfig();
  std::string out_path = "BENCH_crossover.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--out=")) {
      out_path = v;
    } else if (const char* v = value("--sizes=")) {
      config.data_sizes.clear();
      for (const std::string& s : SplitCommas(v)) {
        config.data_sizes.push_back(std::strtoull(s.c_str(), nullptr, 10));
      }
    } else if (const char* v = value("--dists=")) {
      config.data.clear();
      for (const std::string& name : SplitCommas(v)) {
        CrossoverDataSpec spec;
        spec.distribution = name;
        if (name == "zipf") spec.param = 1.1;
        config.data.push_back(spec);
      }
    } else if (const char* v = value("--bands=")) {
      config.selectivity_bands.clear();
      for (const std::string& s : SplitCommas(v)) {
        config.selectivity_bands.push_back(std::strtod(s.c_str(), nullptr));
      }
    } else if (const char* v = value("--queries=")) {
      config.queries_per_band =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--seed=")) {
      config.seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  auto result = RunCrossover(config);
  if (!result.ok()) {
    std::fprintf(stderr, "crossover sweep failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  for (const CrossoverFrontierPoint& point : result->frontier) {
    std::printf("%-12s n=%-10llu s=%-5g error: %-12s (MRE %.4f)  "
                "latency: %-12s (%.0f ns/query)\n",
                point.distribution.c_str(),
                static_cast<unsigned long long>(point.rows), point.band,
                point.error_winner.c_str(), point.error_winner_mre,
                point.latency_winner.c_str(), point.latency_winner_ns);
  }
  for (const CrossoverCell& cell : result->cells) {
    if (!cell.error.empty()) {
      std::fprintf(stderr, "skipped %s at %s/n=%llu: %s\n",
                   cell.estimator.c_str(), cell.distribution.c_str(),
                   static_cast<unsigned long long>(cell.rows),
                   cell.error.c_str());
    }
  }
  const Status written = WriteCrossoverJson(*result, out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu cells, %zu frontier points), peak RSS %.0f MiB\n",
              out_path.c_str(), result->cells.size(),
              result->frontier.size(), PeakRssMiB());
  return 0;
}

}  // namespace
}  // namespace selest

int main(int argc, char** argv) { return selest::Run(argc, argv); }
