// Extension E5: robustness of the Fig. 12 conclusions to experimental
// randomness.
//
// Repeats the headline comparison over several independent seeds (sample
// and workload redrawn each time) and reports mean ± stddev of the MRE.
//
// Expected: the orderings of Fig. 12 (kernel best on smooth synthetic
// files, hybrid best on rough spatial files) hold beyond one-seed noise.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/stats.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Extension E5 — Fig. 12 across seeds (mean ± sd of MRE)",
              "Expected: the per-file winners of Fig. 12 are stable across "
              "seeds.");

  const EstimatorKind kinds[] = {EstimatorKind::kEquiWidth,
                                 EstimatorKind::kKernel,
                                 EstimatorKind::kHybrid,
                                 EstimatorKind::kAverageShifted};
  const char* labels[] = {"EWH", "Kernel", "Hybrid", "ASH"};
  constexpr int kSeeds = 5;

  TextTable table({"data file", "EWH", "Kernel", "Hybrid", "ASH", "winner"});
  for (const char* name : {"n(20)", "e(20)", "arap1", "rr2(22)"}) {
    const Dataset data = MustLoad(name);
    RunningStat stats[4];
    for (int seed = 1; seed <= kSeeds; ++seed) {
      ProtocolConfig protocol;
      protocol.seed = static_cast<uint64_t>(seed);
      protocol.num_queries = 500;
      const ExperimentSetup setup = MakeSetup(data, protocol);
      for (int k = 0; k < 4; ++k) {
        EstimatorConfig config;
        config.kind = kinds[k];
        if (kinds[k] == EstimatorKind::kKernel) {
          config.smoothing = SmoothingRule::kDirectPlugIn;
        }
        stats[k].Add(MustMre(setup, config));
      }
    }
    std::vector<std::string> row{name};
    int winner = 0;
    for (int k = 0; k < 4; ++k) {
      if (stats[k].mean() < stats[winner].mean()) winner = k;
      row.push_back(FormatPercent(stats[k].mean()) + " ± " +
                    FormatPercent(stats[k].stddev()));
    }
    row.push_back(labels[winner]);
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
