// Micro-benchmark: estimator construction cost from a sample.
//
// Catalog maintenance rebuilds estimators when statistics refresh; this
// measures build cost as a function of the sample size for each family,
// including the smoothing-rule cost (the O(n²) direct plug-in is the
// expensive outlier).
#include <benchmark/benchmark.h>

#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/smoothing/direct_plug_in.h"
#include "src/util/random.h"

namespace selest {
namespace {

const Domain kDomain = ContinuousDomain(0.0, 1.0e6);

std::vector<double> MakeSample(size_t n) {
  Rng rng(7);
  std::vector<double> sample(n);
  for (double& x : sample) {
    x = 0.5e6 + 1.2e5 * rng.NextGaussian();
    x = kDomain.Clamp(x);
  }
  return sample;
}

void BuildBenchmark(benchmark::State& state, EstimatorKind kind) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  EstimatorConfig config;
  config.kind = kind;
  for (auto _ : state) {
    auto est = BuildEstimator(sample, kDomain, config);
    benchmark::DoNotOptimize(est);
  }
}

void BM_BuildEquiWidth(benchmark::State& state) {
  BuildBenchmark(state, EstimatorKind::kEquiWidth);
}
BENCHMARK(BM_BuildEquiWidth)->Range(1 << 8, 1 << 15);

void BM_BuildEquiDepth(benchmark::State& state) {
  BuildBenchmark(state, EstimatorKind::kEquiDepth);
}
BENCHMARK(BM_BuildEquiDepth)->Range(1 << 8, 1 << 15);

void BM_BuildMaxDiff(benchmark::State& state) {
  BuildBenchmark(state, EstimatorKind::kMaxDiff);
}
BENCHMARK(BM_BuildMaxDiff)->Range(1 << 8, 1 << 15);

void BM_BuildKernel(benchmark::State& state) {
  BuildBenchmark(state, EstimatorKind::kKernel);
}
BENCHMARK(BM_BuildKernel)->Range(1 << 8, 1 << 15);

void BM_BuildHybrid(benchmark::State& state) {
  BuildBenchmark(state, EstimatorKind::kHybrid);
}
BENCHMARK(BM_BuildHybrid)->Range(1 << 8, 1 << 13);

void BM_BuildAsh(benchmark::State& state) {
  BuildBenchmark(state, EstimatorKind::kAverageShifted);
}
BENCHMARK(BM_BuildAsh)->Range(1 << 8, 1 << 15);

void BM_DirectPlugInBandwidth(benchmark::State& state) {
  const auto sample = MakeSample(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DirectPlugInBandwidth(sample, kDomain, Kernel(), 2));
  }
}
BENCHMARK(BM_DirectPlugInBandwidth)->Range(1 << 8, 1 << 12);

}  // namespace
}  // namespace selest
