// Extension E1 (paper §6, future work): multidimensional kernel estimators
// for multidimensional range queries.
//
// Window queries on the 2-D street network: product-Epanechnikov kernel
// estimator vs. grid histogram vs. sampling vs. the uniform/independence
// assumption, from a 2,000-point sample.
//
// Expected: kernel2d and the grid histogram clearly beat sampling and
// crush the uniform assumption on clustered spatial data; the kernel keeps
// its 1-D advantage on the smoother workloads (larger windows).
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "src/multidim/basic2d.h"
#include "src/multidim/grid_histogram.h"
#include "src/multidim/kernel2d.h"
#include "src/multidim/workload2d.h"
#include "src/smoothing/direct_plug_in.h"

namespace {

using namespace selest;

double Mre2d(const Selectivity2dEstimator& estimator,
             const std::vector<WindowQuery>& queries, const Dataset2d& data) {
  double total = 0.0;
  size_t counted = 0;
  for (const WindowQuery& q : queries) {
    const size_t exact = data.CountInWindow(q);
    if (exact == 0) continue;
    const double estimate =
        estimator.EstimateSelectivity(q) * static_cast<double>(data.size());
    total += std::fabs(estimate - static_cast<double>(exact)) /
             static_cast<double>(exact);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace

int main() {
  using namespace selest::bench;

  PrintHeader("Extension E1 — 2-D window-query selectivity (street network)",
              "Expected: kernel2d & grid >> sampling >> uniform on clustered "
              "spatial data.");

  Rng rng(77);
  StreetNetworkConfig network;
  const auto unit_points = GenerateStreetNetwork(network, 52120, rng);
  const Dataset2d data =
      MakeQuantizedDataset2d("arap-2d", unit_points, 21, 21, 52120);
  Rng sample_rng = rng.Fork();
  const auto sample =
      SamplePointsWithoutReplacement(data.points(), 2000, sample_rng);

  // Per-axis plug-in bandwidths: the 1-D DPI rule on each marginal,
  // rescaled from the 1-D rate n^(−1/5) to the 2-D rate n^(−1/6). The
  // normal scale rule oversmooths this clustered data as badly as it did in
  // Fig. 11, so the plug-in variant is the interesting one.
  Kernel2dOptions dpi_options;
  {
    std::vector<double> xs(sample.size());
    std::vector<double> ys(sample.size());
    for (size_t i = 0; i < sample.size(); ++i) {
      xs[i] = sample[i].x;
      ys[i] = sample[i].y;
    }
    const double rate_fix =
        std::pow(static_cast<double>(sample.size()), 0.2 - 1.0 / 6.0);
    dpi_options.x_bandwidth =
        DirectPlugInBandwidth(xs, data.x_domain()) * rate_fix;
    dpi_options.y_bandwidth =
        DirectPlugInBandwidth(ys, data.y_domain()) * rate_fix;
  }

  TextTable table({"window side", "uniform2d", "sampling2d", "grid(32x32)",
                   "kernel2d (h-NS)", "kernel2d (h-DPI2)"});
  for (double side : {0.02, 0.05, 0.10, 0.20}) {
    Rng query_rng(1000 + static_cast<uint64_t>(side * 1000));
    Workload2dConfig workload;
    workload.side_fraction = side;
    workload.num_queries = 500;
    auto queries_or = GenerateWorkload2d(data, workload, query_rng);
    if (!queries_or.ok()) {
      std::fprintf(stderr, "2-D workload failed: %s\n",
                   queries_or.status().ToString().c_str());
      std::exit(1);
    }
    const auto& queries = *queries_or;

    const Uniform2dEstimator uniform(data.x_domain(), data.y_domain());
    auto sampling = Sampling2dEstimator::Create(sample);
    auto grid = GridHistogram::Create(sample, data.x_domain(),
                                      data.y_domain(), 32, 32);
    auto kernel_ns =
        Kernel2dEstimator::Create(sample, data.x_domain(), data.y_domain(),
                                  Kernel2dOptions{});
    auto kernel_dpi = Kernel2dEstimator::Create(sample, data.x_domain(),
                                                data.y_domain(), dpi_options);
    if (!sampling.ok() || !grid.ok() || !kernel_ns.ok() || !kernel_dpi.ok()) {
      return 1;
    }

    table.AddRow({FormatPercent(side, 0) + " of each axis",
                  FormatPercent(Mre2d(uniform, queries, data)),
                  FormatPercent(Mre2d(*sampling, queries, data)),
                  FormatPercent(Mre2d(*grid, queries, data)),
                  FormatPercent(Mre2d(*kernel_ns, queries, data)),
                  FormatPercent(Mre2d(*kernel_dpi, queries, data))});
  }
  table.Print();
  return 0;
}
