// Fig. 12: the final comparison of the most promising estimators on 1%
// queries — equi-width histogram (h-NS bins), kernel estimator (boundary
// kernels, h-DPI2 bandwidth), hybrid estimator (boundary kernels), and the
// average shifted histogram with ten shifts.
//
// Expected shape: kernel estimator most accurate on the smooth synthetic
// files (ASH close behind); the hybrid most accurate on the rough spatial
// "real" files; on iw/ci all methods bunch together (§5.2.6).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Fig. 12 — most promising estimators; 1% queries",
              "Expected: kernel wins on u/n/e files; hybrid wins on the "
              "spatial files; near-tie on iw.");

  TextTable table({"data file", "EWH (h-NS)", "Kernel (h-DPI2)",
                   "Hybrid", "ASH (10 shifts)"});
  for (const std::string& name : HeadlineFileNames()) {
    const Dataset data = MustLoad(name);
    ProtocolConfig protocol;
    protocol.seed = 17;
    const ExperimentSetup setup = MakeSetup(data, protocol);
    std::vector<std::string> row{name};

    EstimatorConfig ewh;
    ewh.kind = EstimatorKind::kEquiWidth;
    row.push_back(FormatPercent(MustMre(setup, ewh)));

    EstimatorConfig kernel;
    kernel.kind = EstimatorKind::kKernel;
    kernel.smoothing = SmoothingRule::kDirectPlugIn;
    kernel.boundary = BoundaryPolicy::kBoundaryKernel;
    row.push_back(FormatPercent(MustMre(setup, kernel)));

    EstimatorConfig hybrid;
    hybrid.kind = EstimatorKind::kHybrid;
    hybrid.boundary = BoundaryPolicy::kBoundaryKernel;
    row.push_back(FormatPercent(MustMre(setup, hybrid)));

    EstimatorConfig ash;
    ash.kind = EstimatorKind::kAverageShifted;
    ash.ash_shifts = 10;
    row.push_back(FormatPercent(MustMre(setup, ash)));

    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
