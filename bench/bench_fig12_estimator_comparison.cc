// Fig. 12: the final comparison of the most promising estimators on 1%
// queries — equi-width histogram (h-NS bins), kernel estimator (boundary
// kernels, h-DPI2 bandwidth), hybrid estimator (boundary kernels), and the
// average shifted histogram with ten shifts.
//
// Expected shape: kernel estimator most accurate on the smooth synthetic
// files (ASH close behind); the hybrid most accurate on the rough spatial
// "real" files; on iw/ci all methods bunch together (§5.2.6).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Fig. 12 — most promising estimators; 1% queries",
              "Expected: kernel wins on u/n/e files; hybrid wins on the "
              "spatial files; near-tie on iw.");

  TextTable table({"data file", "EWH (h-NS)", "Kernel (h-DPI2)",
                   "Hybrid", "ASH (10 shifts)"});
  // The whole per-file sweep goes through the parallel runner in one call:
  // estimator builds fan out across configs and estimation across
  // (config × query chunk) tasks, with results bit-identical to the serial
  // path (set SELEST_THREADS=1 to force the serial fallback).
  EstimatorConfig ewh;
  ewh.kind = EstimatorKind::kEquiWidth;
  EstimatorConfig kernel;
  kernel.kind = EstimatorKind::kKernel;
  kernel.smoothing = SmoothingRule::kDirectPlugIn;
  kernel.boundary = BoundaryPolicy::kBoundaryKernel;
  EstimatorConfig hybrid;
  hybrid.kind = EstimatorKind::kHybrid;
  hybrid.boundary = BoundaryPolicy::kBoundaryKernel;
  EstimatorConfig ash;
  ash.kind = EstimatorKind::kAverageShifted;
  ash.ash_shifts = 10;
  const std::vector<EstimatorConfig> configs{ewh, kernel, hybrid, ash};

  for (const std::string& name : HeadlineFileNames()) {
    const Dataset data = MustLoad(name);
    ProtocolConfig protocol;
    protocol.seed = 17;
    const ExperimentSetup setup = MakeSetup(data, protocol);

    std::vector<std::string> row{name};
    for (double mre : MustMres(setup, configs)) {
      row.push_back(FormatPercent(mre));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
