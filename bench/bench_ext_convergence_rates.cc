// Extension E4: empirical validation of the §4 convergence-rate theory.
//
// Measures the empirical MISE of the equi-width histogram and the kernel
// density estimate at their asymptotically optimal smoothing parameters,
// across sample sizes, and fits log-log slopes.
//
// Expected: slope ≈ −2/3 for the histogram and ≈ −4/5 for the kernel
// (AMISE(h_EW) = O(n^−2/3), AMISE(h_K) = O(n^−4/5)), with kernel MISE
// below histogram MISE at every n.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/density/kde.h"
#include "src/est/equi_width_histogram.h"
#include "src/eval/mise.h"
#include "src/smoothing/amise.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Extension E4 — empirical MISE convergence rates (§4 theory)",
              "Expected: slopes ≈ −0.67 (histogram) and ≈ −0.80 (kernel); "
              "kernel below histogram.");

  const NormalDistribution truth(0.0, 1.0);
  const Domain domain = ContinuousDomain(-8.0, 8.0);
  const double r1 = DensityDerivativeRoughness(truth, -8.0, 8.0);
  const double r2 = DensitySecondDerivativeRoughness(truth, -8.0, 8.0);

  // Start at n = 1000: below that the asymptotic expansion behind the
  // AMISE has visibly not kicked in yet (the measured kernel MISE sits
  // under the AMISE value) and the fitted slope is biased toward zero.
  const std::vector<double> sizes{1000, 2000, 4000, 8000, 16000, 32000,
                                  64000};
  std::vector<double> histogram_mise;
  std::vector<double> kernel_mise;

  TextTable table({"n", "histogram MISE (h_EW opt)", "kernel MISE (h_K opt)",
                   "AMISE histogram", "AMISE kernel"});
  for (double n_value : sizes) {
    const auto n = static_cast<size_t>(n_value);
    MiseOptions options;
    options.trials = 8;
    options.sample_size = n;
    options.intervals = 1024;
    options.seed = 31;

    const double h_ew = OptimalBinWidth(n, r1);
    const int bins =
        std::max(1, static_cast<int>(std::lround(domain.width() / h_ew)));
    const double h_mise = EstimateMise(
        [&](std::span<const double> sample) -> DensityFn {
          auto histogram = std::make_shared<EquiWidthHistogram>(
              EquiWidthHistogram::Create(sample, domain, bins).value());
          return [histogram](double x) {
            return histogram->bins().Density(x);
          };
        },
        truth, domain, options);
    const double h_k = OptimalBandwidth(n, r2);
    const double k_mise = EstimateMise(
        [&](std::span<const double> sample) -> DensityFn {
          auto kde =
              std::make_shared<Kde>(Kde::Create(sample, h_k, domain).value());
          return [kde](double x) { return kde->Density(x); };
        },
        truth, domain, options);
    histogram_mise.push_back(h_mise);
    kernel_mise.push_back(k_mise);
    table.AddRow({std::to_string(n), FormatDouble(h_mise, 6),
                  FormatDouble(k_mise, 6),
                  FormatDouble(HistogramAmise(h_ew, n, r1), 6),
                  FormatDouble(KernelAmise(h_k, n, r2), 6)});
  }
  table.Print();
  std::printf(
      "\nlog-log slope histogram: %.3f (theory −2/3 = −0.667)\n"
      "log-log slope kernel:    %.3f (theory −4/5 = −0.800)\n",
      LogLogSlope(sizes, histogram_mise), LogLogSlope(sizes, kernel_mise));
  return 0;
}
