// Extension E6: beyond-the-paper baselines on the paper's workload.
//
// Adds the V-optimal histogram (Jagadish et al. [7]) and the adaptive
// (sample-point bandwidth) kernel estimator to the Fig. 12 comparison.
//
// Expected: V-optimal tracks the best histogram; the adaptive kernel
// matches the fixed kernel on smooth files and improves on the skewed and
// rough ones, narrowing (not closing) the gap to the hybrid.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Extension E6 — V-optimal and adaptive-kernel baselines; 1% "
              "queries",
              "Expected: V-optimal/wavelet ≈ best histogram; adaptive kernel "
              ">= fixed kernel on skewed files.");

  TextTable table({"data file", "EWH (h-NS)", "V-optimal (h-NS bins)",
                   "Wavelet (h-NS coeffs)", "Kernel (h-DPI2)",
                   "Adaptive kernel (h-DPI2 base)", "Hybrid"});
  for (const std::string& name : HeadlineFileNames()) {
    const Dataset data = MustLoad(name);
    ProtocolConfig protocol;
    protocol.seed = 37;
    const ExperimentSetup setup = MakeSetup(data, protocol);
    std::vector<std::string> row{name};

    EstimatorConfig config;
    config.kind = EstimatorKind::kEquiWidth;
    row.push_back(FormatPercent(MustMre(setup, config)));

    config.kind = EstimatorKind::kVOptimal;
    row.push_back(FormatPercent(MustMre(setup, config)));

    config.kind = EstimatorKind::kWavelet;
    row.push_back(FormatPercent(MustMre(setup, config)));

    config.kind = EstimatorKind::kKernel;
    config.smoothing = SmoothingRule::kDirectPlugIn;
    row.push_back(FormatPercent(MustMre(setup, config)));

    config.kind = EstimatorKind::kAdaptiveKernel;
    row.push_back(FormatPercent(MustMre(setup, config)));

    config.kind = EstimatorKind::kHybrid;
    config.smoothing = SmoothingRule::kNormalScale;
    row.push_back(FormatPercent(MustMre(setup, config)));

    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
