// Ablation A3: shift count of the average shifted histogram.
//
// The paper's final comparison fixes 10 shifts. This sweep shows the MRE
// as the number of shifts grows.
//
// Expected: a clear improvement from 1 shift (plain equi-width) to a
// handful, then quickly diminishing returns — 10 is safely on the plateau.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Ablation A3 — ASH shift count (1% queries)",
              "Expected: large gain over 1 shift, plateau by ~8–10 shifts.");

  TextTable table({"data file", "1 shift", "2", "4", "8", "10", "16", "32"});
  for (const char* name : {"n(20)", "e(20)", "arap2"}) {
    const Dataset data = MustLoad(name);
    ProtocolConfig protocol;
    protocol.seed = 29;
    const ExperimentSetup setup = MakeSetup(data, protocol);
    std::vector<std::string> row{name};
    for (int shifts : {1, 2, 4, 8, 10, 16, 32}) {
      EstimatorConfig config;
      config.kind = EstimatorKind::kAverageShifted;
      config.ash_shifts = shifts;
      row.push_back(FormatPercent(MustMre(setup, config)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
