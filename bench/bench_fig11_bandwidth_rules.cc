// Fig. 11: MRE of kernel estimators (boundary kernels) under three
// bandwidth selection techniques — best observed (h-opt), normal scale
// (h-NS) and two-stage direct plug-in (h-DPI2); 1% queries.
//
// Expected shape: h-NS near-optimal on the synthetic (Gaussian-like)
// files; on the rough "real" files h-NS oversmooths badly and h-DPI2
// clearly beats it, landing within a few points of h-opt (§5.2.5).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/smoothing/direct_plug_in.h"
#include "src/smoothing/normal_scale.h"
#include "src/smoothing/oracle.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Fig. 11 — kernel bandwidth rules: h-opt vs. h-NS vs. h-DPI2; "
              "1% queries",
              "Expected: h-NS good on synthetic files, bad on real ones; "
              "h-DPI2 better there.");

  TextTable table({"data file", "MRE h-opt", "MRE h-NS", "MRE h-DPI2"});
  for (const std::string& name : HeadlineFileNames()) {
    const Dataset data = MustLoad(name);
    ProtocolConfig protocol;
    protocol.seed = 13;
    const ExperimentSetup setup = MakeSetup(data, protocol);
    EstimatorConfig config;
    config.kind = EstimatorKind::kKernel;
    config.boundary = BoundaryPolicy::kBoundaryKernel;
    auto objective = MakeBandwidthObjective(setup, config);
    const double width = setup.domain().width();
    const double h_opt =
        FindOptimalSmoothing(objective, width * 1e-5, width * 0.25);
    const double h_ns = NormalScaleBandwidth(setup.sample, setup.domain());
    const double h_dpi2 =
        DirectPlugInBandwidth(setup.sample, setup.domain(), Kernel(), 2);
    table.AddRow({name, FormatPercent(objective(h_opt)),
                  FormatPercent(objective(h_ns)),
                  FormatPercent(objective(h_dpi2))});
  }
  table.Print();
  return 0;
}
