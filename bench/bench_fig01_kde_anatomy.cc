// Fig. 1: anatomy of a kernel density estimate.
//
// Five samples, each contributing an Epanechnikov bump; the estimate is
// their superposition. Prints the per-sample bumps and the total on a grid
// and verifies the superposition identity pointwise.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/density/kde.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Fig. 1 — kernel density estimation example",
              "Expected: the estimate equals the mean of the per-sample "
              "bumps (max deviation ~0).");

  const Domain domain = ContinuousDomain(0.0, 10.0);
  const std::vector<double> samples{2.0, 3.2, 4.0, 6.5, 7.1};
  const double h = 1.0;
  auto kde = Kde::Create(samples, h, domain);
  if (!kde.ok()) return 1;
  const Kernel kernel;

  TextTable table(
      {"x", "bump@2.0", "bump@3.2", "bump@4.0", "bump@6.5", "bump@7.1",
       "estimate f(x)"});
  double max_deviation = 0.0;
  for (double x = 0.0; x <= 10.0 + 1e-9; x += 0.5) {
    std::vector<std::string> row{FormatDouble(x, 1)};
    double superposition = 0.0;
    for (double s : samples) {
      const double bump =
          kernel.Value((x - s) / h) / (h * static_cast<double>(samples.size()));
      superposition += bump;
      row.push_back(FormatDouble(bump, 4));
    }
    const double estimate = kde->Density(x);
    max_deviation = std::max(max_deviation,
                             std::fabs(estimate - superposition));
    row.push_back(FormatDouble(estimate, 4));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nmax |estimate - superposition of bumps| = %.2e\n",
              max_deviation);
  return 0;
}
