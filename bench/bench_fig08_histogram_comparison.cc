// Fig. 8: average relative error of the histogram estimators (equi-width,
// equi-depth, max-diff — each at its best observed bin count), pure
// sampling and the uniform estimator, per data file; 1% queries.
//
// Expected shape: uniform estimator loses everywhere except u(20)
// (catastrophically on iw/ci); equi-width is the overall histogram winner
// on these large metric domains — inverting the small-domain result of
// Poosala et al. [8]; sampling trails the histograms.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/smoothing/oracle.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Fig. 8 — histogram estimators (best-case bins) vs. sampling "
              "vs. uniform; 1% queries",
              "Expected: equi-width wins among histograms; uniform is the "
              "overall loser (~600% on iw).");

  TextTable table({"data file", "EWH", "EDH", "MDH", "sampling", "uniform"});
  for (const std::string& name : HeadlineFileNames()) {
    const Dataset data = MustLoad(name);
    ProtocolConfig protocol;
    protocol.seed = 5;
    const ExperimentSetup setup = MakeSetup(data, protocol);
    std::vector<std::string> row{name};
    // Histograms at their oracle bin count ("the optimum number of bins we
    // observed", §5.2.4).
    for (EstimatorKind kind :
         {EstimatorKind::kEquiWidth, EstimatorKind::kEquiDepth,
          EstimatorKind::kMaxDiff}) {
      EstimatorConfig config;
      config.kind = kind;
      auto objective = MakeBinCountObjective(setup, config);
      const int best = FindOptimalBinCount(objective, 1, 2000);
      row.push_back(FormatPercent(objective(best)));
    }
    EstimatorConfig config;
    config.kind = EstimatorKind::kSampling;
    row.push_back(FormatPercent(MustMre(setup, config)));
    config.kind = EstimatorKind::kUniform;
    row.push_back(FormatPercent(MustMre(setup, config)));
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
