// Perf bench: what durability costs, and what recovery costs.
//
// Three phases, all against the live statistics server's equi-width
// (mergeable fold) path:
//
//   1. Ingest overhead — batches/sec with the WAL off, with the WAL in
//      buffered group-commit mode (sync_every_append=false; appends stay
//      pending until the refresh-boundary Sync), and with a full fsync
//      per append. Reports each mode's overhead vs WAL-off; the budget
//      the durability contract promises (DESIGN.md §11) is ≤ 15% in
//      buffered mode.
//   2. Recovery time vs log length — register + N ingest batches, drop
//      the server, then time RecoverColumn on a fresh one, with and
//      without a proven snapshot mark shortening the replay tail.
//   3. Serve latency during recovery — p50/p99 of Estimate on an already
//      live column while a second column recovers a long log on another
//      thread (recovery must not stall serving).
//
// Writes BENCH_durability.json (hand-rolled JSON — wall-clock phases, not
// single hot loops, so google-benchmark's timing model does not fit).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/catalog/live_server.h"
#include "src/data/domain.h"
#include "src/est/estimator_factory.h"
#include "src/query/range_query.h"
#include "src/util/random.h"

namespace selest {
namespace {

constexpr size_t kRegistrationRows = 1 << 14;  // 16,384
constexpr size_t kIngestBatches = 512;
constexpr size_t kIngestBatchRows = 256;
constexpr size_t kIngestReps = 5;
constexpr size_t kServeReads = 1 << 14;

const Domain kDomain = ContinuousDomain(0.0, 1.0e6);

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<double> MakeRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rows(n);
  for (double& x : rows) {
    x = kDomain.Clamp(0.5e6 + 1.2e5 * rng.NextGaussian());
  }
  return rows;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double Percentile(std::vector<uint64_t>& latencies, double p) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(latencies.size() - 1) + 0.5);
  return static_cast<double>(latencies[index]);
}

EstimatorConfig BenchConfig() {
  EstimatorConfig config;
  config.kind = EstimatorKind::kEquiWidth;
  return config;
}

LiveServerOptions BaseOptions() {
  LiveServerOptions options;
  options.background_refresh = false;
  options.reservoir_capacity = kRegistrationRows;
  return options;
}

// ---------------------------------------------------------------------
// Phase 1: ingest overhead per WAL mode.

enum class WalMode { kOff, kBuffered, kFsyncEveryAppend };

const char* WalModeName(WalMode mode) {
  switch (mode) {
    case WalMode::kOff:
      return "off";
    case WalMode::kBuffered:
      return "buffered";
    case WalMode::kFsyncEveryAppend:
      return "fsync_every_append";
  }
  return "?";
}

struct IngestResult {
  std::string mode;
  double batches_per_sec = 0.0;
  double rows_per_sec = 0.0;
  double overhead_pct = 0.0;  // vs WAL-off, filled by the caller
  // Cost of the refresh that closes the pass: snapshot rebuild plus
  // write-back for every mode, plus the deferred group-commit WAL sync in
  // buffered mode. Reported separately because it is disk-throughput
  // bound and amortized over the whole interval, not per-ingest latency.
  double refresh_ms = 0.0;
};

struct IngestPassTiming {
  double batches_per_sec = 0.0;
  double refresh_ms = 0.0;
};

// One timed pass: a fresh server, kIngestBatches ingests, one refresh.
// The ingest loop and the refresh are clocked separately — the ≤ 15%
// overhead budget applies to the ingest path an acknowledged batch
// experiences, while the refresh-boundary sync is amortized batch-count
// independent work. Returns zeros on error.
IngestPassTiming TimeIngestPass(WalMode mode,
                                const std::vector<std::vector<double>>& batches) {
  LiveServerOptions options = BaseOptions();
  // Snapshot write-back is on for every mode — it is a PR 5/6 feature that
  // exists without a WAL, so charging it only to the WAL modes would
  // overstate the durability overhead. The WAL is the only delta.
  options.snapshot_directory = FreshDir("bench_dur_ingest_store");
  if (mode != WalMode::kOff) {
    options.wal_directory = FreshDir("bench_dur_ingest_wal");
    options.wal.sync_every_append = mode == WalMode::kFsyncEveryAppend;
  }
  LiveStatisticsServer server(std::move(options));
  const Status registered =
      server.RegisterColumn("bench", "x", kDomain, BenchConfig(),
                            MakeRows(kRegistrationRows, 7));
  if (!registered.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 registered.ToString().c_str());
    return {};
  }
  const uint64_t start_ns = NowNs();
  for (const std::vector<double>& batch : batches) {
    const Status ingested = server.Ingest("bench", "x", batch);
    if (!ingested.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   ingested.ToString().c_str());
      return {};
    }
  }
  const uint64_t ingested_ns = NowNs();
  // Every mode finishes with one refresh at equal work: the rebuild +
  // snapshot write happen regardless of durability, and buffered mode
  // additionally pays its deferred WAL sync at this boundary.
  (void)server.Refresh("bench", "x");
  const uint64_t refreshed_ns = NowNs();
  IngestPassTiming timing;
  const double ingest_seconds =
      static_cast<double>(ingested_ns - start_ns) * 1e-9;
  if (ingest_seconds > 0.0) {
    timing.batches_per_sec =
        static_cast<double>(kIngestBatches) / ingest_seconds;
  }
  timing.refresh_ms =
      static_cast<double>(refreshed_ns - ingested_ns) * 1e-6;
  return timing;
}

IngestResult RunIngest(WalMode mode) {
  // Pre-generate the batches so the clock sees only the ingest path.
  std::vector<std::vector<double>> batches;
  batches.reserve(kIngestBatches);
  for (size_t i = 0; i < kIngestBatches; ++i) {
    batches.push_back(MakeRows(kIngestBatchRows, 1000 + i));
  }
  // Best-of-N: each pass's window is a handful of milliseconds, so one
  // scheduler preemption can double it. The fastest pass is the one with
  // the least interference — the honest hardware number.
  IngestPassTiming best;
  for (size_t rep = 0; rep < kIngestReps; ++rep) {
    const IngestPassTiming pass = TimeIngestPass(mode, batches);
    if (pass.batches_per_sec > best.batches_per_sec) {
      best.batches_per_sec = pass.batches_per_sec;
    }
    if (best.refresh_ms == 0.0 ||
        (pass.refresh_ms > 0.0 && pass.refresh_ms < best.refresh_ms)) {
      best.refresh_ms = pass.refresh_ms;
    }
  }
  IngestResult result;
  result.mode = WalModeName(mode);
  result.batches_per_sec = best.batches_per_sec;
  result.rows_per_sec =
      best.batches_per_sec * static_cast<double>(kIngestBatchRows);
  result.refresh_ms = best.refresh_ms;
  return result;
}

// ---------------------------------------------------------------------
// Phase 2: recovery time vs log length.

struct RecoveryResult {
  size_t batches = 0;
  bool snapshot_mark = false;
  double recover_ms = 0.0;
  uint64_t recovered_rows = 0;
};

RecoveryResult RunRecovery(size_t batches, bool with_snapshot_mark) {
  const std::string wal_dir = FreshDir("bench_dur_recover_wal");
  const std::string store_dir = FreshDir("bench_dur_recover_store");
  const EstimatorConfig config = BenchConfig();
  {
    LiveServerOptions options = BaseOptions();
    options.wal_directory = wal_dir;
    options.snapshot_directory = store_dir;
    LiveStatisticsServer server(std::move(options));
    (void)server.RegisterColumn("bench", "x", kDomain, config,
                                MakeRows(kRegistrationRows, 7));
    for (size_t i = 0; i < batches; ++i) {
      (void)server.Ingest("bench", "x", MakeRows(kIngestBatchRows, 1000 + i));
    }
    // A refresh writes the snapshot and its proven mark, so recovery only
    // replays the (empty) tail; without it the whole log replays.
    if (with_snapshot_mark) (void)server.Refresh("bench", "x");
  }
  LiveServerOptions options = BaseOptions();
  options.wal_directory = wal_dir;
  options.snapshot_directory = store_dir;
  LiveStatisticsServer restarted(std::move(options));
  const uint64_t start_ns = NowNs();
  const Status recovered = restarted.RecoverColumn("bench", "x", kDomain,
                                                   config);
  RecoveryResult result;
  result.batches = batches;
  result.snapshot_mark = with_snapshot_mark;
  result.recover_ms = static_cast<double>(NowNs() - start_ns) * 1e-6;
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover failed: %s\n", recovered.ToString().c_str());
    return result;
  }
  auto generation = restarted.CurrentGeneration("bench", "x");
  if (generation.ok()) result.recovered_rows = generation.value()->rows_at_build;
  return result;
}

// ---------------------------------------------------------------------
// Phase 3: serve latency while another column recovers.

struct ServeDuringRecoveryResult {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double recover_ms = 0.0;
};

ServeDuringRecoveryResult RunServeDuringRecovery() {
  const std::string wal_dir = FreshDir("bench_dur_serve_wal");
  const std::string store_dir = FreshDir("bench_dur_serve_store");
  const EstimatorConfig config = BenchConfig();
  {
    LiveServerOptions options = BaseOptions();
    options.wal_directory = wal_dir;
    options.snapshot_directory = store_dir;
    LiveStatisticsServer victim(std::move(options));
    (void)victim.RegisterColumn("crashed", "x", kDomain, config,
                                MakeRows(kRegistrationRows, 7));
    for (size_t i = 0; i < kIngestBatches; ++i) {
      (void)victim.Ingest("crashed", "x", MakeRows(kIngestBatchRows, 1000 + i));
    }
  }
  LiveServerOptions options = BaseOptions();
  options.wal_directory = wal_dir;
  options.snapshot_directory = store_dir;
  LiveStatisticsServer server(std::move(options));
  // The live column readers hit while "crashed" recovers its long log.
  (void)server.RegisterColumn("live", "y", kDomain, config,
                              MakeRows(kRegistrationRows, 9));
  const RangeQuery query{4.0e5, 6.0e5};
  ServeDuringRecoveryResult result;
  std::thread recoverer([&]() {
    const uint64_t start_ns = NowNs();
    (void)server.RecoverColumn("crashed", "x", kDomain, config);
    result.recover_ms = static_cast<double>(NowNs() - start_ns) * 1e-6;
  });
  std::vector<uint64_t> latencies;
  latencies.reserve(kServeReads);
  for (size_t i = 0; i < kServeReads; ++i) {
    const uint64_t begin = NowNs();
    auto estimate = server.Estimate("live", "y", query);
    latencies.push_back(NowNs() - begin);
    if (!estimate.ok()) break;
  }
  recoverer.join();
  result.p50_ns = Percentile(latencies, 0.50);
  result.p99_ns = Percentile(latencies, 0.99);
  return result;
}

void WriteJson(const std::vector<IngestResult>& ingest,
               const std::vector<RecoveryResult>& recovery,
               const ServeDuringRecoveryResult& serve,
               const std::string& path) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"durability\",\n"
      << "  \"registration_rows\": " << kRegistrationRows << ",\n"
      << "  \"ingest_batch_rows\": " << kIngestBatchRows << ",\n"
      << "  \"ingest_overhead_budget_pct\": 15,\n"
      << "  \"ingest\": [\n";
  for (size_t i = 0; i < ingest.size(); ++i) {
    const IngestResult& r = ingest[i];
    out << "    {\"wal_mode\": \"" << r.mode
        << "\", \"batches_per_sec\": " << r.batches_per_sec
        << ", \"rows_per_sec\": " << r.rows_per_sec
        << ", \"overhead_pct\": " << r.overhead_pct
        << ", \"refresh_ms\": " << r.refresh_ms << "}"
        << (i + 1 < ingest.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"recovery\": [\n";
  for (size_t i = 0; i < recovery.size(); ++i) {
    const RecoveryResult& r = recovery[i];
    out << "    {\"log_batches\": " << r.batches << ", \"snapshot_mark\": "
        << (r.snapshot_mark ? "true" : "false")
        << ", \"recover_ms\": " << r.recover_ms
        << ", \"recovered_rows\": " << r.recovered_rows << "}"
        << (i + 1 < recovery.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"serve_during_recovery\": {\"p50_ns\": " << serve.p50_ns
      << ", \"p99_ns\": " << serve.p99_ns
      << ", \"recover_ms\": " << serve.recover_ms << "}\n}\n";
}

}  // namespace
}  // namespace selest

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_durability.json";
  std::vector<selest::IngestResult> ingest;
  for (const selest::WalMode mode :
       {selest::WalMode::kOff, selest::WalMode::kBuffered,
        selest::WalMode::kFsyncEveryAppend}) {
    ingest.push_back(selest::RunIngest(mode));
  }
  const double baseline = ingest[0].batches_per_sec;
  for (selest::IngestResult& r : ingest) {
    r.overhead_pct = baseline <= 0.0
                         ? 0.0
                         : 100.0 * (baseline - r.batches_per_sec) / baseline;
    std::printf(
        "ingest wal=%s batches/s=%.0f rows/s=%.0f overhead=%.1f%% "
        "refresh_ms=%.2f\n",
        r.mode.c_str(), r.batches_per_sec, r.rows_per_sec, r.overhead_pct,
        r.refresh_ms);
  }
  std::vector<selest::RecoveryResult> recovery;
  for (const size_t batches : {size_t{16}, size_t{64}, size_t{256}}) {
    for (const bool mark : {false, true}) {
      recovery.push_back(selest::RunRecovery(batches, mark));
      const selest::RecoveryResult& r = recovery.back();
      std::printf(
          "recovery batches=%zu snapshot_mark=%d recover_ms=%.2f rows=%llu\n",
          r.batches, r.snapshot_mark ? 1 : 0, r.recover_ms,
          static_cast<unsigned long long>(r.recovered_rows));
    }
  }
  const selest::ServeDuringRecoveryResult serve =
      selest::RunServeDuringRecovery();
  std::printf("serve-during-recovery p50=%.0fns p99=%.0fns recover_ms=%.2f\n",
              serve.p50_ns, serve.p99_ns, serve.recover_ms);
  selest::WriteJson(ingest, recovery, serve, path);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
