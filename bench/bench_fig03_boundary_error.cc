// Fig. 3: absolute estimation error of 1% queries as a function of the
// query position, uniform data, kernel estimator WITHOUT boundary
// treatment.
//
// Expected shape: error near zero through the middle of the domain, large
// underestimation spikes (hundreds of records out of the exact 1,000) for
// queries touching either boundary.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/est/kernel_estimator.h"
#include "src/eval/metrics.h"
#include "src/query/workload.h"
#include "src/sample/sampler.h"
#include "src/smoothing/normal_scale.h"

int main() {
  using namespace selest;
  using namespace selest::bench;

  PrintHeader("Fig. 3 — absolute error of 1% queries vs. query position "
              "(uniform data, no boundary treatment)",
              "Expected: |error| small mid-domain, hundreds of records near "
              "the boundaries.");

  const Dataset data = MustLoad("u(20)");
  Rng rng(2025);
  const std::vector<double> sample =
      SampleWithoutReplacement(data.values(), 2000, rng);

  KernelEstimatorOptions options;
  options.boundary = BoundaryPolicy::kNone;
  options.bandwidth = NormalScaleBandwidth(sample, data.domain());
  auto estimator = KernelEstimator::Create(sample, data.domain(), options);
  if (!estimator.ok()) return 1;

  const auto queries = GeneratePositionSweep(data, 0.01, 201);
  const GroundTruth truth(data);
  const auto errors = EvaluateByPosition(*estimator, queries, truth);

  TextTable table({"position (% of domain)", "exact |Q|", "estimated",
                   "signed error (records)"});
  for (size_t i = 0; i < errors.size(); i += 10) {
    const auto& e = errors[i];
    table.AddRow({FormatDouble(100.0 * e.position / data.domain().width(), 1),
                  std::to_string(e.exact_count),
                  FormatDouble(static_cast<double>(e.exact_count) +
                                   e.signed_error, 0),
                  FormatDouble(e.signed_error, 1)});
  }
  table.Print();

  // Summary: boundary strip (within one bandwidth) vs. center.
  double boundary_max = 0.0;
  double center_max = 0.0;
  const double h = options.bandwidth;
  for (const auto& e : errors) {
    const bool near_boundary = e.position - data.domain().lo < h ||
                               data.domain().hi - e.position < h;
    double& bucket = near_boundary ? boundary_max : center_max;
    bucket = std::max(bucket, std::fabs(e.signed_error));
  }
  std::printf(
      "\nmax |error| within one bandwidth of a boundary: %.0f records\n"
      "max |error| elsewhere:                            %.0f records\n"
      "(paper: up to ~500 vs. near 0 for |Q| = 1000)\n",
      boundary_max, center_max);
  return 0;
}
