// datagen: writes large binary column files for the out-of-core sweeps.
//
// Streams a seeded synthetic column (the paper's distributions plus the
// census-like instance-weight stand-in) straight into the mmap-able
// column-file format (data/column_file.h), one chunk at a time — a
// 10⁸-row file never materializes in memory. The same (distribution,
// rows, bits, seed) always produces a byte-identical file, so generated
// columns are reproducible fixtures, not artifacts to commit.
//
// Usage:
//   datagen --out=uniform.col [--dist=uniform|normal|exponential|zipf|census]
//           [--rows=N] [--bits=B] [--seed=S] [--param=P] [--name=NAME]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/data/column_file.h"
#include "src/data/column_source.h"

namespace selest {
namespace {

int Run(int argc, char** argv) {
  std::string out_path;
  std::string dist = "uniform";
  std::string name;
  uint64_t rows = 1'000'000;
  int bits = 16;
  uint64_t seed = 1;
  double param = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--out=")) {
      out_path = v;
    } else if (const char* v = value("--dist=")) {
      dist = v;
    } else if (const char* v = value("--name=")) {
      name = v;
    } else if (const char* v = value("--rows=")) {
      rows = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--bits=")) {
      bits = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value("--seed=")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--param=")) {
      param = std::strtod(v, nullptr);
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s\nusage: datagen --out=FILE "
                   "[--dist=uniform|normal|exponential|zipf|census] "
                   "[--rows=N] [--bits=B] [--seed=S] [--param=P] "
                   "[--name=NAME]\n",
                   arg.c_str());
      return 2;
    }
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "datagen needs --out=FILE\n");
    return 2;
  }
  if (name.empty()) name = dist;

  auto source = MakeNamedSource(dist, rows, bits, seed, param);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }

  auto writer =
      ColumnFileWriter::Open(out_path, name, (*source)->domain());
  if (!writer.ok()) {
    std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
    return 1;
  }
  uint64_t written = 0;
  for (std::span<const double> chunk = (*source)->NextChunk(); !chunk.empty();
       chunk = (*source)->NextChunk()) {
    const Status appended = writer->Append(chunk);
    if (!appended.ok()) {
      std::fprintf(stderr, "%s\n", appended.ToString().c_str());
      return 1;
    }
    written += chunk.size();
  }
  const Status finished = writer->Finish();
  if (!finished.ok()) {
    std::fprintf(stderr, "%s\n", finished.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %llu %s rows, domain %s, seed %llu\n",
              out_path.c_str(), static_cast<unsigned long long>(written),
              dist.c_str(), (*source)->domain().ToString().c_str(),
              static_cast<unsigned long long>(seed));
  return 0;
}

}  // namespace
}  // namespace selest

int main(int argc, char** argv) { return selest::Run(argc, argv); }
