#!/usr/bin/env python3
"""Diff two google-benchmark JSON files and fail on regressions.

The perf benches (bench_perf_estimators, bench_perf_catalog,
bench_perf_server, bench_perf_durability) each write a BENCH_*.json
artifact by default. Committing one per milestone gives the repo a
diffable perf trajectory; this tool is the diff:

    tools/bench_diff.py old/BENCH_estimators.json new/BENCH_estimators.json

For every benchmark present in both files it reports the per-iteration
time ratio new/old, and exits non-zero when any benchmark slowed down by
more than the threshold (default 10%, override with --threshold-pct).
Benchmarks present in only one file are listed but never fail the diff —
a new benchmark is not a regression.

Counters are compared informationally (speedup_vs_scalar and friends);
`bit_identical` dropping from 1 to 0 in the new file is treated as a
failure, because the SIMD exactness contract is part of what the perf
trajectory certifies.

BENCH_feedback.json rows carry a `convergence_query` counter: the number
of observed queries after which a query-driven estimator's rolling error
stays below the best static curve. A later convergence point means the
estimator learns slower, so the diff fails when the new value exceeds
old * 1.25 + 5 — the multiplicative slack absorbs windowing noise on
large values, the additive slack absorbs jitter near zero.

A missing or empty baseline is not a failure: the first run of a new
bench (or a fresh checkout without committed baselines) has nothing to
diff against, so the tool reports "no baseline" and exits 0 — the
candidate file simply becomes the baseline to commit.
"""

import argparse
import json
import os
import sys


def load_benchmarks(path):
    """Returns {name: benchmark-entry} for a google-benchmark JSON file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of --benchmark_repetitions);
        # compare the raw iteration rows only.
        if entry.get("run_type") == "aggregate":
            continue
        if entry.get("error_occurred"):
            continue
        out[entry["name"]] = entry
    return out


def time_per_iter(entry):
    """Per-iteration real time in the entry's own unit (unit cancels in the
    ratio as long as the benchmark kept the same unit across runs)."""
    t = entry.get("real_time")
    if t is None:
        t = entry.get("cpu_time")
    return t, entry.get("time_unit", "ns")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold-pct",
        type=float,
        default=10.0,
        help="fail when a benchmark is more than this many percent slower "
        "(default: 10)",
    )
    args = parser.parse_args()

    # No baseline (first run of a new bench) is a recording event, not a
    # regression: there is nothing to compare against yet.
    if not os.path.exists(args.old) or os.path.getsize(args.old) == 0:
        print(
            f"no baseline at {args.old}; recording — commit {args.new} "
            "as the baseline"
        )
        return 0

    old = load_benchmarks(args.old)
    new = load_benchmarks(args.new)

    regressions = []
    identity_breaks = []
    convergence_regressions = []
    shared = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    if shared:
        width = max(len(name) for name in shared)
        print(f"{'benchmark':<{width}}  {'old':>12}  {'new':>12}  {'ratio':>7}")
        for name in shared:
            t_old, unit_old = time_per_iter(old[name])
            t_new, unit_new = time_per_iter(new[name])
            if not t_old or t_new is None or unit_old != unit_new:
                print(f"{name:<{width}}  (not comparable)")
                continue
            ratio = t_new / t_old
            flag = ""
            if ratio > 1.0 + args.threshold_pct / 100.0:
                flag = "  REGRESSION"
                regressions.append((name, ratio))
            elif ratio < 1.0 - args.threshold_pct / 100.0:
                flag = "  improved"
            print(
                f"{name:<{width}}  {t_old:>10.1f}{unit_old:>2}  "
                f"{t_new:>10.1f}{unit_new:>2}  {ratio:>7.3f}{flag}"
            )
            old_ident = old[name].get("bit_identical")
            new_ident = new[name].get("bit_identical")
            if old_ident == 1.0 and new_ident == 0.0:
                identity_breaks.append(name)
            old_speedup = old[name].get("speedup_vs_scalar")
            new_speedup = new[name].get("speedup_vs_scalar")
            if old_speedup is not None and new_speedup is not None:
                print(
                    f"{'':<{width}}  speedup_vs_scalar: "
                    f"{old_speedup:.2f}x -> {new_speedup:.2f}x"
                )
            old_conv = old[name].get("convergence_query")
            new_conv = new[name].get("convergence_query")
            if old_conv is not None and new_conv is not None:
                print(
                    f"{'':<{width}}  convergence_query: "
                    f"{old_conv:g} -> {new_conv:g}"
                )
                if new_conv > old_conv * 1.25 + 5:
                    convergence_regressions.append((name, old_conv, new_conv))

    for name in only_old:
        print(f"removed: {name}")
    for name in only_new:
        print(f"added:   {name}")

    ok = True
    if regressions:
        ok = False
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed by more than "
            f"{args.threshold_pct:g}%:",
            file=sys.stderr,
        )
        for name, ratio in regressions:
            print(f"  {name}: {100.0 * (ratio - 1.0):.1f}% slower", file=sys.stderr)
    if identity_breaks:
        ok = False
        print(
            f"\nFAIL: bit_identical dropped to 0 in: {', '.join(identity_breaks)}",
            file=sys.stderr,
        )
    if convergence_regressions:
        ok = False
        print(
            f"\nFAIL: {len(convergence_regressions)} benchmark(s) converge "
            "later than old * 1.25 + 5 queries:",
            file=sys.stderr,
        )
        for name, old_conv, new_conv in convergence_regressions:
            print(
                f"  {name}: {old_conv:g} -> {new_conv:g} queries",
                file=sys.stderr,
            )
    if not shared:
        print("warning: no benchmarks in common", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
