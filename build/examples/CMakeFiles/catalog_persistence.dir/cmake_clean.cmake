file(REMOVE_RECURSE
  "CMakeFiles/catalog_persistence.dir/catalog_persistence.cpp.o"
  "CMakeFiles/catalog_persistence.dir/catalog_persistence.cpp.o.d"
  "catalog_persistence"
  "catalog_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
