# Empty dependencies file for catalog_persistence.
# This may be replaced when dependencies are built.
