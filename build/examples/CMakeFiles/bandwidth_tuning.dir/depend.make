# Empty dependencies file for bandwidth_tuning.
# This may be replaced when dependencies are built.
