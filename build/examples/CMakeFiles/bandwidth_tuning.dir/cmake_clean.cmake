file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_tuning.dir/bandwidth_tuning.cpp.o"
  "CMakeFiles/bandwidth_tuning.dir/bandwidth_tuning.cpp.o.d"
  "bandwidth_tuning"
  "bandwidth_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
