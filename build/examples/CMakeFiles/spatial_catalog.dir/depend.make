# Empty dependencies file for spatial_catalog.
# This may be replaced when dependencies are built.
