file(REMOVE_RECURSE
  "CMakeFiles/spatial_catalog.dir/spatial_catalog.cpp.o"
  "CMakeFiles/spatial_catalog.dir/spatial_catalog.cpp.o.d"
  "spatial_catalog"
  "spatial_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
