# Empty dependencies file for smoothing_amise_test.
# This may be replaced when dependencies are built.
