file(REMOVE_RECURSE
  "CMakeFiles/smoothing_amise_test.dir/smoothing_amise_test.cc.o"
  "CMakeFiles/smoothing_amise_test.dir/smoothing_amise_test.cc.o.d"
  "smoothing_amise_test"
  "smoothing_amise_test.pdb"
  "smoothing_amise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothing_amise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
