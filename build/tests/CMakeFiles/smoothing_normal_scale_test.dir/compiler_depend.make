# Empty compiler generated dependencies file for smoothing_normal_scale_test.
# This may be replaced when dependencies are built.
