file(REMOVE_RECURSE
  "CMakeFiles/smoothing_normal_scale_test.dir/smoothing_normal_scale_test.cc.o"
  "CMakeFiles/smoothing_normal_scale_test.dir/smoothing_normal_scale_test.cc.o.d"
  "smoothing_normal_scale_test"
  "smoothing_normal_scale_test.pdb"
  "smoothing_normal_scale_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothing_normal_scale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
