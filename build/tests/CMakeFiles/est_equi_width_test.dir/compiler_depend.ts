# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for est_equi_width_test.
