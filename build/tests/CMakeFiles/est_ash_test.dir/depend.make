# Empty dependencies file for est_ash_test.
# This may be replaced when dependencies are built.
