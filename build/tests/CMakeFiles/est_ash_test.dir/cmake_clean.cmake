file(REMOVE_RECURSE
  "CMakeFiles/est_ash_test.dir/est_ash_test.cc.o"
  "CMakeFiles/est_ash_test.dir/est_ash_test.cc.o.d"
  "est_ash_test"
  "est_ash_test.pdb"
  "est_ash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_ash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
