# Empty compiler generated dependencies file for est_adaptive_kernel_test.
# This may be replaced when dependencies are built.
