# Empty dependencies file for density_histogram_test.
# This may be replaced when dependencies are built.
