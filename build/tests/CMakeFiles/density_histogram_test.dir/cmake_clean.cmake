file(REMOVE_RECURSE
  "CMakeFiles/density_histogram_test.dir/density_histogram_test.cc.o"
  "CMakeFiles/density_histogram_test.dir/density_histogram_test.cc.o.d"
  "density_histogram_test"
  "density_histogram_test.pdb"
  "density_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
