# Empty dependencies file for exec_fault_injection_test.
# This may be replaced when dependencies are built.
