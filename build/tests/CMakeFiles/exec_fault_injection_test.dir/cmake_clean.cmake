file(REMOVE_RECURSE
  "CMakeFiles/exec_fault_injection_test.dir/exec_fault_injection_test.cc.o"
  "CMakeFiles/exec_fault_injection_test.dir/exec_fault_injection_test.cc.o.d"
  "exec_fault_injection_test"
  "exec_fault_injection_test.pdb"
  "exec_fault_injection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_fault_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
