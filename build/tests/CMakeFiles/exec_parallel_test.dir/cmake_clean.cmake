file(REMOVE_RECURSE
  "CMakeFiles/exec_parallel_test.dir/exec_parallel_test.cc.o"
  "CMakeFiles/exec_parallel_test.dir/exec_parallel_test.cc.o.d"
  "exec_parallel_test"
  "exec_parallel_test.pdb"
  "exec_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
