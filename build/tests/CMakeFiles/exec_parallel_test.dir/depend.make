# Empty dependencies file for exec_parallel_test.
# This may be replaced when dependencies are built.
