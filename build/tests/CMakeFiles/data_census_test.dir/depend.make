# Empty dependencies file for data_census_test.
# This may be replaced when dependencies are built.
