file(REMOVE_RECURSE
  "CMakeFiles/data_census_test.dir/data_census_test.cc.o"
  "CMakeFiles/data_census_test.dir/data_census_test.cc.o.d"
  "data_census_test"
  "data_census_test.pdb"
  "data_census_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_census_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
