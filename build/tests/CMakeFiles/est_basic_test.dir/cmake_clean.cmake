file(REMOVE_RECURSE
  "CMakeFiles/est_basic_test.dir/est_basic_test.cc.o"
  "CMakeFiles/est_basic_test.dir/est_basic_test.cc.o.d"
  "est_basic_test"
  "est_basic_test.pdb"
  "est_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
