# Empty compiler generated dependencies file for est_basic_test.
# This may be replaced when dependencies are built.
