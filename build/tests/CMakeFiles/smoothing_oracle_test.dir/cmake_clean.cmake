file(REMOVE_RECURSE
  "CMakeFiles/smoothing_oracle_test.dir/smoothing_oracle_test.cc.o"
  "CMakeFiles/smoothing_oracle_test.dir/smoothing_oracle_test.cc.o.d"
  "smoothing_oracle_test"
  "smoothing_oracle_test.pdb"
  "smoothing_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothing_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
