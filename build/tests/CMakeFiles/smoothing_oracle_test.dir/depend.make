# Empty dependencies file for smoothing_oracle_test.
# This may be replaced when dependencies are built.
