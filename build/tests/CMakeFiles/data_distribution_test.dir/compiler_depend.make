# Empty compiler generated dependencies file for data_distribution_test.
# This may be replaced when dependencies are built.
