file(REMOVE_RECURSE
  "CMakeFiles/data_distribution_test.dir/data_distribution_test.cc.o"
  "CMakeFiles/data_distribution_test.dir/data_distribution_test.cc.o.d"
  "data_distribution_test"
  "data_distribution_test.pdb"
  "data_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
