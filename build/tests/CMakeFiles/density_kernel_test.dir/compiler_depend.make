# Empty compiler generated dependencies file for density_kernel_test.
# This may be replaced when dependencies are built.
