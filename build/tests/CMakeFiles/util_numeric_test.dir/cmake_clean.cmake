file(REMOVE_RECURSE
  "CMakeFiles/util_numeric_test.dir/util_numeric_test.cc.o"
  "CMakeFiles/util_numeric_test.dir/util_numeric_test.cc.o.d"
  "util_numeric_test"
  "util_numeric_test.pdb"
  "util_numeric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_numeric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
