# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for smoothing_direct_plug_in_test.
