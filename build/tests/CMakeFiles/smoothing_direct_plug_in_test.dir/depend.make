# Empty dependencies file for smoothing_direct_plug_in_test.
# This may be replaced when dependencies are built.
