file(REMOVE_RECURSE
  "CMakeFiles/smoothing_direct_plug_in_test.dir/smoothing_direct_plug_in_test.cc.o"
  "CMakeFiles/smoothing_direct_plug_in_test.dir/smoothing_direct_plug_in_test.cc.o.d"
  "smoothing_direct_plug_in_test"
  "smoothing_direct_plug_in_test.pdb"
  "smoothing_direct_plug_in_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothing_direct_plug_in_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
