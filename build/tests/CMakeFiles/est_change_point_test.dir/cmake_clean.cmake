file(REMOVE_RECURSE
  "CMakeFiles/est_change_point_test.dir/est_change_point_test.cc.o"
  "CMakeFiles/est_change_point_test.dir/est_change_point_test.cc.o.d"
  "est_change_point_test"
  "est_change_point_test.pdb"
  "est_change_point_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_change_point_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
