# Empty compiler generated dependencies file for est_change_point_test.
# This may be replaced when dependencies are built.
