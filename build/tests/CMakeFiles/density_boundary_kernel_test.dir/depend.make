# Empty dependencies file for density_boundary_kernel_test.
# This may be replaced when dependencies are built.
