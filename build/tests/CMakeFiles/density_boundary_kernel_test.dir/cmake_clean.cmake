file(REMOVE_RECURSE
  "CMakeFiles/density_boundary_kernel_test.dir/density_boundary_kernel_test.cc.o"
  "CMakeFiles/density_boundary_kernel_test.dir/density_boundary_kernel_test.cc.o.d"
  "density_boundary_kernel_test"
  "density_boundary_kernel_test.pdb"
  "density_boundary_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_boundary_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
