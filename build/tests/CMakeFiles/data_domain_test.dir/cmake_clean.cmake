file(REMOVE_RECURSE
  "CMakeFiles/data_domain_test.dir/data_domain_test.cc.o"
  "CMakeFiles/data_domain_test.dir/data_domain_test.cc.o.d"
  "data_domain_test"
  "data_domain_test.pdb"
  "data_domain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
