# Empty compiler generated dependencies file for data_domain_test.
# This may be replaced when dependencies are built.
