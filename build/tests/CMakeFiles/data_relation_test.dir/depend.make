# Empty dependencies file for data_relation_test.
# This may be replaced when dependencies are built.
