file(REMOVE_RECURSE
  "CMakeFiles/data_relation_test.dir/data_relation_test.cc.o"
  "CMakeFiles/data_relation_test.dir/data_relation_test.cc.o.d"
  "data_relation_test"
  "data_relation_test.pdb"
  "data_relation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
