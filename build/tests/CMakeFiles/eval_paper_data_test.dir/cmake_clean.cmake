file(REMOVE_RECURSE
  "CMakeFiles/eval_paper_data_test.dir/eval_paper_data_test.cc.o"
  "CMakeFiles/eval_paper_data_test.dir/eval_paper_data_test.cc.o.d"
  "eval_paper_data_test"
  "eval_paper_data_test.pdb"
  "eval_paper_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_paper_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
