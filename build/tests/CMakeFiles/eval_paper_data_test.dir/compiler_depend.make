# Empty compiler generated dependencies file for eval_paper_data_test.
# This may be replaced when dependencies are built.
