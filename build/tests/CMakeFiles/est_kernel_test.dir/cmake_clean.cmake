file(REMOVE_RECURSE
  "CMakeFiles/est_kernel_test.dir/est_kernel_test.cc.o"
  "CMakeFiles/est_kernel_test.dir/est_kernel_test.cc.o.d"
  "est_kernel_test"
  "est_kernel_test.pdb"
  "est_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
