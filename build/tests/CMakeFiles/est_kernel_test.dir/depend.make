# Empty dependencies file for est_kernel_test.
# This may be replaced when dependencies are built.
