file(REMOVE_RECURSE
  "CMakeFiles/data_spatial_test.dir/data_spatial_test.cc.o"
  "CMakeFiles/data_spatial_test.dir/data_spatial_test.cc.o.d"
  "data_spatial_test"
  "data_spatial_test.pdb"
  "data_spatial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_spatial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
