# Empty compiler generated dependencies file for data_spatial_test.
# This may be replaced when dependencies are built.
