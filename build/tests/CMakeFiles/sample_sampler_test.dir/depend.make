# Empty dependencies file for sample_sampler_test.
# This may be replaced when dependencies are built.
