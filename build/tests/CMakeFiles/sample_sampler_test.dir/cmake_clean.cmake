file(REMOVE_RECURSE
  "CMakeFiles/sample_sampler_test.dir/sample_sampler_test.cc.o"
  "CMakeFiles/sample_sampler_test.dir/sample_sampler_test.cc.o.d"
  "sample_sampler_test"
  "sample_sampler_test.pdb"
  "sample_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
