# Empty compiler generated dependencies file for multidim_test.
# This may be replaced when dependencies are built.
