# Empty dependencies file for multidim_test.
# This may be replaced when dependencies are built.
