file(REMOVE_RECURSE
  "CMakeFiles/multidim_test.dir/multidim_test.cc.o"
  "CMakeFiles/multidim_test.dir/multidim_test.cc.o.d"
  "multidim_test"
  "multidim_test.pdb"
  "multidim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
