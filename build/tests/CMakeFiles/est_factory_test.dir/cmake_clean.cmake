file(REMOVE_RECURSE
  "CMakeFiles/est_factory_test.dir/est_factory_test.cc.o"
  "CMakeFiles/est_factory_test.dir/est_factory_test.cc.o.d"
  "est_factory_test"
  "est_factory_test.pdb"
  "est_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
