# Empty dependencies file for est_factory_test.
# This may be replaced when dependencies are built.
