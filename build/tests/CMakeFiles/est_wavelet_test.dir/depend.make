# Empty dependencies file for est_wavelet_test.
# This may be replaced when dependencies are built.
