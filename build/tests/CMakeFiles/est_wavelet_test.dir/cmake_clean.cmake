file(REMOVE_RECURSE
  "CMakeFiles/est_wavelet_test.dir/est_wavelet_test.cc.o"
  "CMakeFiles/est_wavelet_test.dir/est_wavelet_test.cc.o.d"
  "est_wavelet_test"
  "est_wavelet_test.pdb"
  "est_wavelet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_wavelet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
