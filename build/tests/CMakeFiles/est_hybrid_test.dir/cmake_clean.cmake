file(REMOVE_RECURSE
  "CMakeFiles/est_hybrid_test.dir/est_hybrid_test.cc.o"
  "CMakeFiles/est_hybrid_test.dir/est_hybrid_test.cc.o.d"
  "est_hybrid_test"
  "est_hybrid_test.pdb"
  "est_hybrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
