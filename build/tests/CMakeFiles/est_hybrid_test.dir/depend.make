# Empty dependencies file for est_hybrid_test.
# This may be replaced when dependencies are built.
