file(REMOVE_RECURSE
  "CMakeFiles/eval_guarded_sweep_test.dir/eval_guarded_sweep_test.cc.o"
  "CMakeFiles/eval_guarded_sweep_test.dir/eval_guarded_sweep_test.cc.o.d"
  "eval_guarded_sweep_test"
  "eval_guarded_sweep_test.pdb"
  "eval_guarded_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_guarded_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
