# Empty dependencies file for eval_guarded_sweep_test.
# This may be replaced when dependencies are built.
