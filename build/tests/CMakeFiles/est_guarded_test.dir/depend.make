# Empty dependencies file for est_guarded_test.
# This may be replaced when dependencies are built.
