file(REMOVE_RECURSE
  "CMakeFiles/est_guarded_test.dir/est_guarded_test.cc.o"
  "CMakeFiles/est_guarded_test.dir/est_guarded_test.cc.o.d"
  "est_guarded_test"
  "est_guarded_test.pdb"
  "est_guarded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_guarded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
