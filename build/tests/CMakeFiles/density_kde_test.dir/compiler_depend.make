# Empty compiler generated dependencies file for density_kde_test.
# This may be replaced when dependencies are built.
