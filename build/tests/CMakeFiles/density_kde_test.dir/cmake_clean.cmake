file(REMOVE_RECURSE
  "CMakeFiles/density_kde_test.dir/density_kde_test.cc.o"
  "CMakeFiles/density_kde_test.dir/density_kde_test.cc.o.d"
  "density_kde_test"
  "density_kde_test.pdb"
  "density_kde_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_kde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
