file(REMOVE_RECURSE
  "CMakeFiles/online_estimator_test.dir/online_estimator_test.cc.o"
  "CMakeFiles/online_estimator_test.dir/online_estimator_test.cc.o.d"
  "online_estimator_test"
  "online_estimator_test.pdb"
  "online_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
