# Empty dependencies file for est_v_optimal_test.
# This may be replaced when dependencies are built.
