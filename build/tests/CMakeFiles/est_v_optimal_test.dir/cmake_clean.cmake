file(REMOVE_RECURSE
  "CMakeFiles/est_v_optimal_test.dir/est_v_optimal_test.cc.o"
  "CMakeFiles/est_v_optimal_test.dir/est_v_optimal_test.cc.o.d"
  "est_v_optimal_test"
  "est_v_optimal_test.pdb"
  "est_v_optimal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_v_optimal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
