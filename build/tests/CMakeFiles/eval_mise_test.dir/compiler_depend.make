# Empty compiler generated dependencies file for eval_mise_test.
# This may be replaced when dependencies are built.
