file(REMOVE_RECURSE
  "CMakeFiles/eval_mise_test.dir/eval_mise_test.cc.o"
  "CMakeFiles/eval_mise_test.dir/eval_mise_test.cc.o.d"
  "eval_mise_test"
  "eval_mise_test.pdb"
  "eval_mise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_mise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
