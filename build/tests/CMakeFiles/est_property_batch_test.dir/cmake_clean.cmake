file(REMOVE_RECURSE
  "CMakeFiles/est_property_batch_test.dir/est_property_batch_test.cc.o"
  "CMakeFiles/est_property_batch_test.dir/est_property_batch_test.cc.o.d"
  "est_property_batch_test"
  "est_property_batch_test.pdb"
  "est_property_batch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_property_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
