# Empty dependencies file for est_property_batch_test.
# This may be replaced when dependencies are built.
