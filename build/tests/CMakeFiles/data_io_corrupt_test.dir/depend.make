# Empty dependencies file for data_io_corrupt_test.
# This may be replaced when dependencies are built.
