# Empty dependencies file for query_ground_truth_test.
# This may be replaced when dependencies are built.
