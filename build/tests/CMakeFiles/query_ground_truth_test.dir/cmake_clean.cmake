file(REMOVE_RECURSE
  "CMakeFiles/query_ground_truth_test.dir/query_ground_truth_test.cc.o"
  "CMakeFiles/query_ground_truth_test.dir/query_ground_truth_test.cc.o.d"
  "query_ground_truth_test"
  "query_ground_truth_test.pdb"
  "query_ground_truth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_ground_truth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
