file(REMOVE_RECURSE
  "CMakeFiles/est_equi_depth_test.dir/est_equi_depth_test.cc.o"
  "CMakeFiles/est_equi_depth_test.dir/est_equi_depth_test.cc.o.d"
  "est_equi_depth_test"
  "est_equi_depth_test.pdb"
  "est_equi_depth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_equi_depth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
