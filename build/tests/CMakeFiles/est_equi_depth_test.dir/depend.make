# Empty dependencies file for est_equi_depth_test.
# This may be replaced when dependencies are built.
