# Empty dependencies file for util_serialize_test.
# This may be replaced when dependencies are built.
