file(REMOVE_RECURSE
  "CMakeFiles/util_serialize_test.dir/util_serialize_test.cc.o"
  "CMakeFiles/util_serialize_test.dir/util_serialize_test.cc.o.d"
  "util_serialize_test"
  "util_serialize_test.pdb"
  "util_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
