# Empty compiler generated dependencies file for est_max_diff_test.
# This may be replaced when dependencies are built.
