file(REMOVE_RECURSE
  "CMakeFiles/est_max_diff_test.dir/est_max_diff_test.cc.o"
  "CMakeFiles/est_max_diff_test.dir/est_max_diff_test.cc.o.d"
  "est_max_diff_test"
  "est_max_diff_test.pdb"
  "est_max_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_max_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
