# Empty dependencies file for feedback_histogram_test.
# This may be replaced when dependencies are built.
