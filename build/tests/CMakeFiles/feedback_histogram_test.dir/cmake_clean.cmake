file(REMOVE_RECURSE
  "CMakeFiles/feedback_histogram_test.dir/feedback_histogram_test.cc.o"
  "CMakeFiles/feedback_histogram_test.dir/feedback_histogram_test.cc.o.d"
  "feedback_histogram_test"
  "feedback_histogram_test.pdb"
  "feedback_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
