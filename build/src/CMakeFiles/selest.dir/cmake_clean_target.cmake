file(REMOVE_RECURSE
  "libselest.a"
)
