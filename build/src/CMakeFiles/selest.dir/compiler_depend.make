# Empty compiler generated dependencies file for selest.
# This may be replaced when dependencies are built.
