
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/statistics_catalog.cc" "src/CMakeFiles/selest.dir/catalog/statistics_catalog.cc.o" "gcc" "src/CMakeFiles/selest.dir/catalog/statistics_catalog.cc.o.d"
  "/root/repo/src/data/census.cc" "src/CMakeFiles/selest.dir/data/census.cc.o" "gcc" "src/CMakeFiles/selest.dir/data/census.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/selest.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/selest.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/distribution.cc" "src/CMakeFiles/selest.dir/data/distribution.cc.o" "gcc" "src/CMakeFiles/selest.dir/data/distribution.cc.o.d"
  "/root/repo/src/data/domain.cc" "src/CMakeFiles/selest.dir/data/domain.cc.o" "gcc" "src/CMakeFiles/selest.dir/data/domain.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/selest.dir/data/io.cc.o" "gcc" "src/CMakeFiles/selest.dir/data/io.cc.o.d"
  "/root/repo/src/data/relation.cc" "src/CMakeFiles/selest.dir/data/relation.cc.o" "gcc" "src/CMakeFiles/selest.dir/data/relation.cc.o.d"
  "/root/repo/src/data/spatial.cc" "src/CMakeFiles/selest.dir/data/spatial.cc.o" "gcc" "src/CMakeFiles/selest.dir/data/spatial.cc.o.d"
  "/root/repo/src/density/boundary_kernel.cc" "src/CMakeFiles/selest.dir/density/boundary_kernel.cc.o" "gcc" "src/CMakeFiles/selest.dir/density/boundary_kernel.cc.o.d"
  "/root/repo/src/density/histogram_density.cc" "src/CMakeFiles/selest.dir/density/histogram_density.cc.o" "gcc" "src/CMakeFiles/selest.dir/density/histogram_density.cc.o.d"
  "/root/repo/src/density/kde.cc" "src/CMakeFiles/selest.dir/density/kde.cc.o" "gcc" "src/CMakeFiles/selest.dir/density/kde.cc.o.d"
  "/root/repo/src/density/kernel.cc" "src/CMakeFiles/selest.dir/density/kernel.cc.o" "gcc" "src/CMakeFiles/selest.dir/density/kernel.cc.o.d"
  "/root/repo/src/est/adaptive_kernel_estimator.cc" "src/CMakeFiles/selest.dir/est/adaptive_kernel_estimator.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/adaptive_kernel_estimator.cc.o.d"
  "/root/repo/src/est/average_shifted_histogram.cc" "src/CMakeFiles/selest.dir/est/average_shifted_histogram.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/average_shifted_histogram.cc.o.d"
  "/root/repo/src/est/change_point.cc" "src/CMakeFiles/selest.dir/est/change_point.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/change_point.cc.o.d"
  "/root/repo/src/est/equi_depth_histogram.cc" "src/CMakeFiles/selest.dir/est/equi_depth_histogram.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/equi_depth_histogram.cc.o.d"
  "/root/repo/src/est/equi_width_histogram.cc" "src/CMakeFiles/selest.dir/est/equi_width_histogram.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/equi_width_histogram.cc.o.d"
  "/root/repo/src/est/estimator_factory.cc" "src/CMakeFiles/selest.dir/est/estimator_factory.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/estimator_factory.cc.o.d"
  "/root/repo/src/est/guarded_estimator.cc" "src/CMakeFiles/selest.dir/est/guarded_estimator.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/guarded_estimator.cc.o.d"
  "/root/repo/src/est/hybrid_estimator.cc" "src/CMakeFiles/selest.dir/est/hybrid_estimator.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/hybrid_estimator.cc.o.d"
  "/root/repo/src/est/kernel_estimator.cc" "src/CMakeFiles/selest.dir/est/kernel_estimator.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/kernel_estimator.cc.o.d"
  "/root/repo/src/est/max_diff_histogram.cc" "src/CMakeFiles/selest.dir/est/max_diff_histogram.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/max_diff_histogram.cc.o.d"
  "/root/repo/src/est/sampling_estimator.cc" "src/CMakeFiles/selest.dir/est/sampling_estimator.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/sampling_estimator.cc.o.d"
  "/root/repo/src/est/selectivity_estimator.cc" "src/CMakeFiles/selest.dir/est/selectivity_estimator.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/selectivity_estimator.cc.o.d"
  "/root/repo/src/est/uniform_estimator.cc" "src/CMakeFiles/selest.dir/est/uniform_estimator.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/uniform_estimator.cc.o.d"
  "/root/repo/src/est/v_optimal_histogram.cc" "src/CMakeFiles/selest.dir/est/v_optimal_histogram.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/v_optimal_histogram.cc.o.d"
  "/root/repo/src/est/wavelet_histogram.cc" "src/CMakeFiles/selest.dir/est/wavelet_histogram.cc.o" "gcc" "src/CMakeFiles/selest.dir/est/wavelet_histogram.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/selest.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/selest.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/selest.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/selest.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/mise.cc" "src/CMakeFiles/selest.dir/eval/mise.cc.o" "gcc" "src/CMakeFiles/selest.dir/eval/mise.cc.o.d"
  "/root/repo/src/eval/paper_data.cc" "src/CMakeFiles/selest.dir/eval/paper_data.cc.o" "gcc" "src/CMakeFiles/selest.dir/eval/paper_data.cc.o.d"
  "/root/repo/src/eval/parallel_experiment.cc" "src/CMakeFiles/selest.dir/eval/parallel_experiment.cc.o" "gcc" "src/CMakeFiles/selest.dir/eval/parallel_experiment.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/selest.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/selest.dir/eval/report.cc.o.d"
  "/root/repo/src/exec/fault_injection.cc" "src/CMakeFiles/selest.dir/exec/fault_injection.cc.o" "gcc" "src/CMakeFiles/selest.dir/exec/fault_injection.cc.o.d"
  "/root/repo/src/exec/parallel_for.cc" "src/CMakeFiles/selest.dir/exec/parallel_for.cc.o" "gcc" "src/CMakeFiles/selest.dir/exec/parallel_for.cc.o.d"
  "/root/repo/src/exec/thread_pool.cc" "src/CMakeFiles/selest.dir/exec/thread_pool.cc.o" "gcc" "src/CMakeFiles/selest.dir/exec/thread_pool.cc.o.d"
  "/root/repo/src/feedback/feedback_histogram.cc" "src/CMakeFiles/selest.dir/feedback/feedback_histogram.cc.o" "gcc" "src/CMakeFiles/selest.dir/feedback/feedback_histogram.cc.o.d"
  "/root/repo/src/multidim/basic2d.cc" "src/CMakeFiles/selest.dir/multidim/basic2d.cc.o" "gcc" "src/CMakeFiles/selest.dir/multidim/basic2d.cc.o.d"
  "/root/repo/src/multidim/dataset2d.cc" "src/CMakeFiles/selest.dir/multidim/dataset2d.cc.o" "gcc" "src/CMakeFiles/selest.dir/multidim/dataset2d.cc.o.d"
  "/root/repo/src/multidim/grid_histogram.cc" "src/CMakeFiles/selest.dir/multidim/grid_histogram.cc.o" "gcc" "src/CMakeFiles/selest.dir/multidim/grid_histogram.cc.o.d"
  "/root/repo/src/multidim/kernel2d.cc" "src/CMakeFiles/selest.dir/multidim/kernel2d.cc.o" "gcc" "src/CMakeFiles/selest.dir/multidim/kernel2d.cc.o.d"
  "/root/repo/src/multidim/workload2d.cc" "src/CMakeFiles/selest.dir/multidim/workload2d.cc.o" "gcc" "src/CMakeFiles/selest.dir/multidim/workload2d.cc.o.d"
  "/root/repo/src/online/online_estimator.cc" "src/CMakeFiles/selest.dir/online/online_estimator.cc.o" "gcc" "src/CMakeFiles/selest.dir/online/online_estimator.cc.o.d"
  "/root/repo/src/query/ground_truth.cc" "src/CMakeFiles/selest.dir/query/ground_truth.cc.o" "gcc" "src/CMakeFiles/selest.dir/query/ground_truth.cc.o.d"
  "/root/repo/src/query/workload.cc" "src/CMakeFiles/selest.dir/query/workload.cc.o" "gcc" "src/CMakeFiles/selest.dir/query/workload.cc.o.d"
  "/root/repo/src/sample/sampler.cc" "src/CMakeFiles/selest.dir/sample/sampler.cc.o" "gcc" "src/CMakeFiles/selest.dir/sample/sampler.cc.o.d"
  "/root/repo/src/smoothing/amise.cc" "src/CMakeFiles/selest.dir/smoothing/amise.cc.o" "gcc" "src/CMakeFiles/selest.dir/smoothing/amise.cc.o.d"
  "/root/repo/src/smoothing/direct_plug_in.cc" "src/CMakeFiles/selest.dir/smoothing/direct_plug_in.cc.o" "gcc" "src/CMakeFiles/selest.dir/smoothing/direct_plug_in.cc.o.d"
  "/root/repo/src/smoothing/normal_scale.cc" "src/CMakeFiles/selest.dir/smoothing/normal_scale.cc.o" "gcc" "src/CMakeFiles/selest.dir/smoothing/normal_scale.cc.o.d"
  "/root/repo/src/smoothing/oracle.cc" "src/CMakeFiles/selest.dir/smoothing/oracle.cc.o" "gcc" "src/CMakeFiles/selest.dir/smoothing/oracle.cc.o.d"
  "/root/repo/src/util/check.cc" "src/CMakeFiles/selest.dir/util/check.cc.o" "gcc" "src/CMakeFiles/selest.dir/util/check.cc.o.d"
  "/root/repo/src/util/numeric.cc" "src/CMakeFiles/selest.dir/util/numeric.cc.o" "gcc" "src/CMakeFiles/selest.dir/util/numeric.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/selest.dir/util/random.cc.o" "gcc" "src/CMakeFiles/selest.dir/util/random.cc.o.d"
  "/root/repo/src/util/serialize.cc" "src/CMakeFiles/selest.dir/util/serialize.cc.o" "gcc" "src/CMakeFiles/selest.dir/util/serialize.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/selest.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/selest.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/selest.dir/util/status.cc.o" "gcc" "src/CMakeFiles/selest.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
