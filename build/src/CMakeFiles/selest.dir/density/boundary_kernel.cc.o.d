src/CMakeFiles/selest.dir/density/boundary_kernel.cc.o: \
 /root/repo/src/density/boundary_kernel.cc /usr/include/stdc-predef.h \
 /root/repo/src/../src/density/boundary_kernel.h \
 /root/repo/src/../src/util/check.h
