file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_datafiles.dir/bench_table2_datafiles.cc.o"
  "CMakeFiles/bench_table2_datafiles.dir/bench_table2_datafiles.cc.o.d"
  "bench_table2_datafiles"
  "bench_table2_datafiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_datafiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
