# Empty dependencies file for bench_fig09_binwidth_rules.
# This may be replaced when dependencies are built.
