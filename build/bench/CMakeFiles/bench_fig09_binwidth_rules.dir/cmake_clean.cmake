file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_binwidth_rules.dir/bench_fig09_binwidth_rules.cc.o"
  "CMakeFiles/bench_fig09_binwidth_rules.dir/bench_fig09_binwidth_rules.cc.o.d"
  "bench_fig09_binwidth_rules"
  "bench_fig09_binwidth_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_binwidth_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
