# Empty dependencies file for bench_perf_build.
# This may be replaced when dependencies are built.
