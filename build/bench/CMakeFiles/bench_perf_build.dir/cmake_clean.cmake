file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_build.dir/bench_perf_build.cc.o"
  "CMakeFiles/bench_perf_build.dir/bench_perf_build.cc.o.d"
  "bench_perf_build"
  "bench_perf_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
