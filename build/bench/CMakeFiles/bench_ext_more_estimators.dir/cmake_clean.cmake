file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_more_estimators.dir/bench_ext_more_estimators.cc.o"
  "CMakeFiles/bench_ext_more_estimators.dir/bench_ext_more_estimators.cc.o.d"
  "bench_ext_more_estimators"
  "bench_ext_more_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_more_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
