# Empty dependencies file for bench_ext_more_estimators.
# This may be replaced when dependencies are built.
