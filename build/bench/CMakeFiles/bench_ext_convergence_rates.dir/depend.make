# Empty dependencies file for bench_ext_convergence_rates.
# This may be replaced when dependencies are built.
