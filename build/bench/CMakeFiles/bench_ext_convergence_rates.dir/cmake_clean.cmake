file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_convergence_rates.dir/bench_ext_convergence_rates.cc.o"
  "CMakeFiles/bench_ext_convergence_rates.dir/bench_ext_convergence_rates.cc.o.d"
  "bench_ext_convergence_rates"
  "bench_ext_convergence_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_convergence_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
