file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_kernel_choice.dir/bench_abl_kernel_choice.cc.o"
  "CMakeFiles/bench_abl_kernel_choice.dir/bench_abl_kernel_choice.cc.o.d"
  "bench_abl_kernel_choice"
  "bench_abl_kernel_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_kernel_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
