# Empty compiler generated dependencies file for bench_abl_kernel_choice.
# This may be replaced when dependencies are built.
