# Empty compiler generated dependencies file for bench_fig08_histogram_comparison.
# This may be replaced when dependencies are built.
