# Empty compiler generated dependencies file for bench_fig05_domain_cardinality.
# This may be replaced when dependencies are built.
