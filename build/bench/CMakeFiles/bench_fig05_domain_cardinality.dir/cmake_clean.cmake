file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_domain_cardinality.dir/bench_fig05_domain_cardinality.cc.o"
  "CMakeFiles/bench_fig05_domain_cardinality.dir/bench_fig05_domain_cardinality.cc.o.d"
  "bench_fig05_domain_cardinality"
  "bench_fig05_domain_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_domain_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
