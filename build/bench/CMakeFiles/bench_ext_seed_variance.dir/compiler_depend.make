# Empty compiler generated dependencies file for bench_ext_seed_variance.
# This may be replaced when dependencies are built.
