file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_seed_variance.dir/bench_ext_seed_variance.cc.o"
  "CMakeFiles/bench_ext_seed_variance.dir/bench_ext_seed_variance.cc.o.d"
  "bench_ext_seed_variance"
  "bench_ext_seed_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_seed_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
