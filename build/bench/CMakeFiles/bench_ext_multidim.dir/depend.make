# Empty dependencies file for bench_ext_multidim.
# This may be replaced when dependencies are built.
