file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multidim.dir/bench_ext_multidim.cc.o"
  "CMakeFiles/bench_ext_multidim.dir/bench_ext_multidim.cc.o.d"
  "bench_ext_multidim"
  "bench_ext_multidim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multidim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
