file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_bandwidth_rules.dir/bench_fig11_bandwidth_rules.cc.o"
  "CMakeFiles/bench_fig11_bandwidth_rules.dir/bench_fig11_bandwidth_rules.cc.o.d"
  "bench_fig11_bandwidth_rules"
  "bench_fig11_bandwidth_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_bandwidth_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
