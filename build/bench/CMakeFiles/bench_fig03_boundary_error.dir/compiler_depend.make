# Empty compiler generated dependencies file for bench_fig03_boundary_error.
# This may be replaced when dependencies are built.
