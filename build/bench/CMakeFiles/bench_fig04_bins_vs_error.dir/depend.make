# Empty dependencies file for bench_fig04_bins_vs_error.
# This may be replaced when dependencies are built.
