file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_bins_vs_error.dir/bench_fig04_bins_vs_error.cc.o"
  "CMakeFiles/bench_fig04_bins_vs_error.dir/bench_fig04_bins_vs_error.cc.o.d"
  "bench_fig04_bins_vs_error"
  "bench_fig04_bins_vs_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_bins_vs_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
