file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dpi_stages.dir/bench_abl_dpi_stages.cc.o"
  "CMakeFiles/bench_abl_dpi_stages.dir/bench_abl_dpi_stages.cc.o.d"
  "bench_abl_dpi_stages"
  "bench_abl_dpi_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dpi_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
