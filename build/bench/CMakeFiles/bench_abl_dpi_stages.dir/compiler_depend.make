# Empty compiler generated dependencies file for bench_abl_dpi_stages.
# This may be replaced when dependencies are built.
