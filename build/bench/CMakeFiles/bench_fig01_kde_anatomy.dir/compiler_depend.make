# Empty compiler generated dependencies file for bench_fig01_kde_anatomy.
# This may be replaced when dependencies are built.
