file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_kde_anatomy.dir/bench_fig01_kde_anatomy.cc.o"
  "CMakeFiles/bench_fig01_kde_anatomy.dir/bench_fig01_kde_anatomy.cc.o.d"
  "bench_fig01_kde_anatomy"
  "bench_fig01_kde_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_kde_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
