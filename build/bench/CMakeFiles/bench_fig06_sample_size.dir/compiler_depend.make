# Empty compiler generated dependencies file for bench_fig06_sample_size.
# This may be replaced when dependencies are built.
