file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_hybrid_sensitivity.dir/bench_abl_hybrid_sensitivity.cc.o"
  "CMakeFiles/bench_abl_hybrid_sensitivity.dir/bench_abl_hybrid_sensitivity.cc.o.d"
  "bench_abl_hybrid_sensitivity"
  "bench_abl_hybrid_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_hybrid_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
