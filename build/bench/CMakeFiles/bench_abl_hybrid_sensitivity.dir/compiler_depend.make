# Empty compiler generated dependencies file for bench_abl_hybrid_sensitivity.
# This may be replaced when dependencies are built.
