# Empty compiler generated dependencies file for bench_fig10_boundary_treatments.
# This may be replaced when dependencies are built.
