file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_boundary_treatments.dir/bench_fig10_boundary_treatments.cc.o"
  "CMakeFiles/bench_fig10_boundary_treatments.dir/bench_fig10_boundary_treatments.cc.o.d"
  "bench_fig10_boundary_treatments"
  "bench_fig10_boundary_treatments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_boundary_treatments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
