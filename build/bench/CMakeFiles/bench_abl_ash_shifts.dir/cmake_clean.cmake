file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_ash_shifts.dir/bench_abl_ash_shifts.cc.o"
  "CMakeFiles/bench_abl_ash_shifts.dir/bench_abl_ash_shifts.cc.o.d"
  "bench_abl_ash_shifts"
  "bench_abl_ash_shifts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_ash_shifts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
