# Empty dependencies file for bench_abl_ash_shifts.
# This may be replaced when dependencies are built.
