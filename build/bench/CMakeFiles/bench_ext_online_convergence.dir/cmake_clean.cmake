file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_online_convergence.dir/bench_ext_online_convergence.cc.o"
  "CMakeFiles/bench_ext_online_convergence.dir/bench_ext_online_convergence.cc.o.d"
  "bench_ext_online_convergence"
  "bench_ext_online_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_online_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
