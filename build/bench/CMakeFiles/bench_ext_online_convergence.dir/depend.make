# Empty dependencies file for bench_ext_online_convergence.
# This may be replaced when dependencies are built.
