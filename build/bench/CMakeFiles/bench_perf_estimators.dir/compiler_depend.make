# Empty compiler generated dependencies file for bench_perf_estimators.
# This may be replaced when dependencies are built.
