file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_estimators.dir/bench_perf_estimators.cc.o"
  "CMakeFiles/bench_perf_estimators.dir/bench_perf_estimators.cc.o.d"
  "bench_perf_estimators"
  "bench_perf_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
