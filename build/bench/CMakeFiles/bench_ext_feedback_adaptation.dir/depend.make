# Empty dependencies file for bench_ext_feedback_adaptation.
# This may be replaced when dependencies are built.
