file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_feedback_adaptation.dir/bench_ext_feedback_adaptation.cc.o"
  "CMakeFiles/bench_ext_feedback_adaptation.dir/bench_ext_feedback_adaptation.cc.o.d"
  "bench_ext_feedback_adaptation"
  "bench_ext_feedback_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_feedback_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
