// A deterministic fixed-size thread pool (no work stealing).
//
// The batch estimation API and the parallel experiment runner fan work out
// as contiguous, pre-partitioned chunks (see exec/parallel_for.h). Which
// worker runs which chunk is intentionally *not* part of the contract:
// every chunk writes only to its own output slots, and all reductions
// happen in a fixed serial order after the fan-out completes, so results
// are bit-identical regardless of thread count or scheduling order.
//
// Tasks must not block on work enqueued to the same pool (classic nested-
// wait deadlock). ParallelFor enforces this by degrading to serial
// execution when invoked from a worker thread.
#ifndef SELEST_EXEC_THREAD_POOL_H_
#define SELEST_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace selest {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  // Completes every task already scheduled, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Enqueues a task for execution on some worker. Tasks run in FIFO claim
  // order but may complete in any order. An exception escaping a task is
  // caught and dropped — the pool survives; use ParallelFor when the
  // caller needs the exception propagated.
  void Schedule(std::function<void()> task);

  // True iff the calling thread is a worker of *any* ThreadPool. Used to
  // serialize nested parallelism instead of deadlocking.
  static bool InWorkerThread();

  // Process-wide shared pool, created on first use with DefaultThreadCount()
  // workers. Never destroyed before exit.
  static ThreadPool& Default();

  // SELEST_THREADS environment override if set and positive, otherwise
  // std::thread::hardware_concurrency() (at least 1).
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace selest

#endif  // SELEST_EXEC_THREAD_POOL_H_
