#include "src/exec/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <string>

#include "src/exec/fault_injection.h"

namespace selest {

std::vector<std::pair<size_t, size_t>> SplitRange(size_t n, size_t num_chunks) {
  std::vector<std::pair<size_t, size_t>> chunks;
  if (n == 0) return chunks;
  num_chunks = std::clamp<size_t>(num_chunks, 1, n);
  chunks.reserve(num_chunks);
  const size_t base = n / num_chunks;
  const size_t remainder = n % num_chunks;
  size_t begin = 0;
  for (size_t i = 0; i < num_chunks; ++i) {
    const size_t size = base + (i < remainder ? 1 : 0);
    chunks.emplace_back(begin, begin + size);
    begin += size;
  }
  return chunks;
}

namespace {

// True while the calling (non-worker) thread is executing its own chunk of
// an active fan-out. Nested ParallelFor calls from such a context run
// serially, exactly like calls from worker threads: one fan-out at a time
// is the policy, nested parallelism never multiplies.
thread_local bool t_in_parallel_region = false;

// Completion latch for one fan-out. Each chunk decrements once; the caller
// blocks until the count reaches zero.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n, size_t num_chunks,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  const auto chunks = SplitRange(n, num_chunks);
  if (chunks.empty()) return;

  const bool serial = pool == nullptr || chunks.size() == 1 ||
                      ThreadPool::InWorkerThread() || t_in_parallel_region;
  if (serial) {
    for (size_t i = 0; i < chunks.size(); ++i) {
      body(chunks[i].first, chunks[i].second, i);
    }
    return;
  }

  // One exception slot per chunk so the rethrow choice is deterministic
  // (lowest chunk index), not a race between throwing chunks.
  std::vector<std::exception_ptr> errors(chunks.size());
  Latch latch(chunks.size());
  auto run_chunk = [&](size_t i) {
    try {
      body(chunks[i].first, chunks[i].second, i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
    latch.CountDown();
  };

  // The calling thread takes chunk 0 while the workers drain the rest:
  // with a single-worker pool this still overlaps caller and worker, and a
  // caller-side chunk guarantees progress even if every worker is busy.
  for (size_t i = 1; i < chunks.size(); ++i) {
    pool->Schedule([&run_chunk, i] { run_chunk(i); });
  }
  t_in_parallel_region = true;
  run_chunk(0);
  t_in_parallel_region = false;
  latch.Wait();

  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

namespace {

// One chunk of a TryParallelFor: the fault-point check, the body, and an
// exception-to-Status firewall, in that order. Runs on pool workers and on
// the calling thread.
Status RunTryChunk(const std::function<Status(size_t, size_t, size_t)>& body,
                   size_t begin, size_t end, size_t chunk) {
  SELEST_RETURN_IF_ERROR(FaultInjector::Check(kFaultPointExecTask));
  try {
    return body(begin, end, chunk);
  } catch (const std::exception& e) {
    return InternalError(std::string("task threw: ") + e.what());
  } catch (...) {
    return InternalError("task threw a non-std exception");
  }
}

}  // namespace

Status TryParallelFor(
    ThreadPool* pool, size_t n, size_t num_chunks,
    const std::function<Status(size_t, size_t, size_t)>& body) {
  const auto chunks = SplitRange(n, num_chunks);
  if (chunks.empty()) return Status::Ok();

  const bool serial = pool == nullptr || chunks.size() == 1 ||
                      ThreadPool::InWorkerThread() || t_in_parallel_region;
  if (serial) {
    // Like the parallel path, every chunk runs even after a failure —
    // determinism of the outputs (and of the fault-point hit counters)
    // over early exit.
    Status first_error;
    for (size_t i = 0; i < chunks.size(); ++i) {
      Status status = RunTryChunk(body, chunks[i].first, chunks[i].second, i);
      if (!status.ok() && first_error.ok()) first_error = std::move(status);
    }
    return first_error;
  }

  // One Status slot per chunk so the returned error is deterministically
  // the lowest-indexed failure, not a race between failing chunks.
  std::vector<Status> statuses(chunks.size());
  Latch latch(chunks.size());
  auto run_chunk = [&](size_t i) {
    statuses[i] = RunTryChunk(body, chunks[i].first, chunks[i].second, i);
    latch.CountDown();
  };

  for (size_t i = 1; i < chunks.size(); ++i) {
    pool->Schedule([&run_chunk, i] { run_chunk(i); });
  }
  t_in_parallel_region = true;
  run_chunk(0);
  t_in_parallel_region = false;
  latch.Wait();

  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::Ok();
}

}  // namespace selest
