// Deterministic chunked fan-out over an index range.
//
// ParallelFor partitions [0, n) into contiguous chunks with boundaries that
// depend only on (n, num_chunks) — never on thread count or timing — and
// runs a body per chunk. Callers get bit-identical results at any
// parallelism level as long as each chunk writes only to its own output
// slots and any floating-point reduction happens after the fan-out, in
// chunk order (the "fixed-order reduction" contract; see DESIGN.md,
// Execution layer).
#ifndef SELEST_EXEC_PARALLEL_FOR_H_
#define SELEST_EXEC_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/util/status.h"

namespace selest {

// The deterministic partition used by ParallelFor: min(num_chunks, n)
// contiguous [begin, end) chunks covering [0, n), sizes differing by at
// most one, larger chunks first. Empty when n == 0; a num_chunks of 0 is
// treated as 1.
std::vector<std::pair<size_t, size_t>> SplitRange(size_t n, size_t num_chunks);

// Runs body(begin, end, chunk_index) for every chunk of SplitRange(n,
// num_chunks). Chunks run on `pool` workers plus the calling thread; the
// call returns after every chunk has finished. Runs serially (in chunk
// order, on the calling thread) when pool is null, when there is at most
// one chunk, or when called from inside an active fan-out (a pool worker,
// or the calling thread running its own chunk) — nested fan-outs degrade
// to serial instead of deadlocking on or flooding the shared queue.
//
// If chunk bodies throw, the exception from the lowest-indexed throwing
// chunk is rethrown after all chunks complete; the pool remains usable.
void ParallelFor(ThreadPool* pool, size_t n, size_t num_chunks,
                 const std::function<void(size_t, size_t, size_t)>& body);

// Status-first fan-out, same scheduling and determinism contract as
// ParallelFor. Every chunk runs to completion regardless of other chunks'
// outcomes; afterwards the error of the lowest-indexed failing chunk is
// returned (OK when all chunks succeed). A chunk fails when its body
// returns a non-OK Status, when it throws (reported as kInternal), or when
// the `exec/task` fault point (exec/fault_injection.h) fires for it —
// the hook that lets the robustness suite prove an injected task failure
// surfaces as a Status instead of crashing or hanging the pool.
//
// Guarded pipelines (eval/parallel_experiment.h RunConfigsGuarded) use
// this; the void ParallelFor above remains for bodies that cannot fail.
Status TryParallelFor(ThreadPool* pool, size_t n, size_t num_chunks,
                      const std::function<Status(size_t, size_t, size_t)>& body);

}  // namespace selest

#endif  // SELEST_EXEC_PARALLEL_FOR_H_
