#include "src/exec/fault_injection.h"

#include <atomic>
#include <map>
#include <mutex>

namespace selest {
namespace {

struct PointState {
  FaultPlan plan;
  std::atomic<size_t> hits{0};
  std::atomic<size_t> fired{0};
};

struct Registry {
  std::mutex mu;
  // Node-stable map: Check holds a pointer to a PointState across the
  // unlocked fire decision; nodes must not move when other points are
  // armed concurrently.
  std::map<std::string, PointState> points;
};

// Fast path: Check returns immediately when nothing is armed anywhere.
std::atomic<size_t> g_armed_points{0};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// SplitMix64: a seeded stateless hash of the hit index, giving each hit an
// independent uniform draw in [0, 1).
double HashToUnit(uint64_t seed, uint64_t index) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

bool PlanFires(const FaultPlan& plan, size_t hit_index) {
  if (hit_index < plan.skip) return false;
  if (hit_index - plan.skip >= plan.count) return false;
  if (plan.probability > 0.0) {
    return HashToUnit(plan.seed, hit_index) < plan.probability;
  }
  return true;
}

}  // namespace

std::span<const char* const> WritePathCrashPoints() {
  static constexpr const char* kPoints[] = {
      kFaultPointWalAppend,
      kFaultPointWalSync,
      kFaultPointStoreRename,
      kFaultPointServerRefresh,
  };
  return kPoints;
}

void FaultInjector::Arm(const std::string& point, const FaultPlan& plan) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.points.try_emplace(point);
  it->second.plan = plan;
  it->second.hits.store(0, std::memory_order_relaxed);
  it->second.fired.store(0, std::memory_order_relaxed);
  if (inserted) g_armed_points.fetch_add(1, std::memory_order_release);
}

void FaultInjector::ArmNthHit(const std::string& point, size_t nth) {
  FaultPlan plan;
  plan.skip = nth;
  plan.count = 1;
  Arm(point, plan);
}

void FaultInjector::Disarm(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.points.erase(point) > 0) {
    g_armed_points.fetch_sub(1, std::memory_order_release);
  }
}

void FaultInjector::DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  g_armed_points.fetch_sub(registry.points.size(), std::memory_order_release);
  registry.points.clear();
}

Status FaultInjector::Check(const char* point) {
  if (g_armed_points.load(std::memory_order_acquire) == 0) {
    return Status::Ok();
  }
  Registry& registry = GetRegistry();
  size_t hit_index = 0;
  bool fires = false;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.points.find(point);
    if (it == registry.points.end()) return Status::Ok();
    hit_index = it->second.hits.fetch_add(1, std::memory_order_relaxed);
    fires = PlanFires(it->second.plan, hit_index);
    if (fires) it->second.fired.fetch_add(1, std::memory_order_relaxed);
  }
  if (!fires) return Status::Ok();
  return InternalError("injected fault at '" + std::string(point) + "' (hit " +
                       std::to_string(hit_index) + ")");
}

size_t FaultInjector::HitCount(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(point);
  return it == registry.points.end()
             ? 0
             : it->second.hits.load(std::memory_order_relaxed);
}

size_t FaultInjector::FiredCount(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(point);
  return it == registry.points.end()
             ? 0
             : it->second.fired.load(std::memory_order_relaxed);
}

}  // namespace selest
