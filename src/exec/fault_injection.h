// Deterministic fault injection for robustness tests.
//
// A fault point is a named call site that asks the process-global injector
// whether this execution should fail:
//
//   SELEST_RETURN_IF_ERROR(FaultInjector::Check(kFaultPointDatasetRead));
//
// Unarmed points cost one relaxed atomic load (the armed-point count), so
// instrumentation stays on hot paths permanently. Tests arm points with a
// deterministic plan — fail hits [skip, skip+count) of the point's hit
// counter, or fail a seeded pseudo-random subset of hits — and assert that
// every injected failure surfaces as an error Status or a recorded
// degradation event, never as an abort or a hang.
//
// Registered fault points (see DESIGN.md, "Error-handling contract"):
//   data/io/read-text    LoadDatasetText, after opening the file
//   data/io/read-binary  LoadDatasetBinary, after opening the file
//   est/build            BuildEstimator, before dispatching on the kind
//   exec/task            TryParallelFor, before each chunk body (runs on
//                        pool workers and the calling thread)
//   server/refresh       LiveStatisticsServer refresh, before the new
//                        generation is produced (merge or rebuild path)
//   wal/append           WriteAheadLog::Append, before the record is
//                        buffered (the record is wholly lost)
//   wal/fsync            WriteAheadLog::Sync, before the flush; firing
//                        leaves a deterministic torn tail on disk (half
//                        the pending bytes) and drops the rest
//   store/rename         WriteBytesToFile, between the temporary write
//                        and the rename; firing leaks the .tmp sibling
//                        exactly as a crash at that instant would
//
// The four write-path points above (wal/append, wal/fsync, store/rename,
// server/refresh) double as *crash points*: the chaos harness
// (durability_chaos_test) arms each to fire on its k-th hit via ArmNthHit
// and treats the injected error as process death — abandon every object,
// reconstruct from disk, verify the recovery invariants. Enumerating k
// over a point's hit count covers every crash instant on the write path.
//
// Thread-safety: Check may race with Arm/Disarm from other threads; the
// registry is mutex-protected and hit counters are atomic. The injector
// itself runs clean under TSan; arming is typically test-scoped via
// ScopedFault.
#ifndef SELEST_EXEC_FAULT_INJECTION_H_
#define SELEST_EXEC_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace selest {

// Canonical fault-point names. Call sites and tests share these constants
// so a typo cannot silently arm a point nothing checks.
inline constexpr char kFaultPointDatasetReadText[] = "data/io/read-text";
inline constexpr char kFaultPointDatasetReadBinary[] = "data/io/read-binary";
inline constexpr char kFaultPointEstimatorBuild[] = "est/build";
inline constexpr char kFaultPointExecTask[] = "exec/task";
inline constexpr char kFaultPointServerRefresh[] = "server/refresh";
inline constexpr char kFaultPointWalAppend[] = "wal/append";
inline constexpr char kFaultPointWalSync[] = "wal/fsync";
inline constexpr char kFaultPointStoreRename[] = "store/rename";

// The crash points of the durable write path (ingest → WAL → refresh →
// snapshot write-back), in the order a chaos harness should enumerate
// them. Every point here is reached between two externally observable
// filesystem states, so "crash on the k-th hit, restart, verify" covers
// the whole path.
std::span<const char* const> WritePathCrashPoints();

// How an armed point decides which hits fail. Deterministic: the decision
// depends only on the plan and the point's hit index, never on timing.
struct FaultPlan {
  // Hits [skip, skip + count) fail; all others pass.
  size_t skip = 0;
  size_t count = static_cast<size_t>(-1);
  // When probability > 0, a hit fails iff a hash of (seed, hit index)
  // lands below it — a seeded coin flip per hit, reproducible across runs
  // and thread schedules that preserve per-point hit order. The window
  // above still applies on top.
  double probability = 0.0;
  uint64_t seed = 0;
};

class FaultInjector {
 public:
  // Arms `point` with `plan`, replacing any previous plan and resetting
  // the point's hit and fired counters.
  static void Arm(const std::string& point, const FaultPlan& plan = {});

  // Arms `point` to fire exactly once, on its `nth` hit (0-based) — the
  // crash-schedule primitive: a deterministic "die at instant n" along a
  // replayed execution.
  static void ArmNthHit(const std::string& point, size_t nth);

  // Disarms `point`; its counters are discarded. No-op when unarmed.
  static void Disarm(const std::string& point);

  // Disarms every point (test teardown).
  static void DisarmAll();

  // Returns OK when `point` is unarmed or this hit does not fire, else an
  // InternalError naming the point and the hit index. Each call advances
  // the point's hit counter by one.
  static Status Check(const char* point);

  // Counters observed so far for an armed point (0 when unarmed).
  static size_t HitCount(const std::string& point);
  static size_t FiredCount(const std::string& point);
};

// Arms a point for the enclosing scope and disarms it on destruction.
class ScopedFault {
 public:
  explicit ScopedFault(std::string point, const FaultPlan& plan = {})
      : point_(std::move(point)) {
    FaultInjector::Arm(point_, plan);
  }
  ~ScopedFault() { FaultInjector::Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

// A fault schedule: several points armed together, each on its own k-th
// hit, disarmed as one unit. The chaos harness uses single-entry
// schedules per crash instant; multi-entry schedules model correlated
// failures (e.g. a disk that fails appends and renames together).
struct FaultScheduleEntry {
  std::string point;
  size_t nth = 0;
};

class ScopedFaultSchedule {
 public:
  explicit ScopedFaultSchedule(std::vector<FaultScheduleEntry> entries)
      : entries_(std::move(entries)) {
    for (const FaultScheduleEntry& entry : entries_) {
      FaultInjector::ArmNthHit(entry.point, entry.nth);
    }
  }
  ~ScopedFaultSchedule() {
    for (const FaultScheduleEntry& entry : entries_) {
      FaultInjector::Disarm(entry.point);
    }
  }

  ScopedFaultSchedule(const ScopedFaultSchedule&) = delete;
  ScopedFaultSchedule& operator=(const ScopedFaultSchedule&) = delete;

 private:
  std::vector<FaultScheduleEntry> entries_;
};

}  // namespace selest

#endif  // SELEST_EXEC_FAULT_INJECTION_H_
