#include "src/exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace selest {
namespace {

thread_local bool t_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      // Dropped by contract; ParallelFor captures exceptions per chunk
      // before they ever reach this loop.
    }
  }
}

bool ThreadPool::InWorkerThread() { return t_in_worker; }

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return *pool;
}

size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("SELEST_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace selest
