// Distribution reconstruction from query selectivities.
//
// Following *Computing Data Distribution from Query Selectivities*
// (arXiv 2401.06047), this estimator never looks at data rows after
// construction: it maintains a set of (range, true-selectivity)
// constraints harvested from executed queries and solves for the
// piecewise-constant density on a fixed equi-width grid that is
// consistent with all of them. Two deterministic solvers are offered:
//
//   kMaxEntropy   — iterative proportional fitting: each sweep rescales
//                   the mass under every constraint multiplicatively so
//                   the constraint is met, then renormalizes to the
//                   probability simplex. Converges to the max-entropy
//                   density satisfying a consistent constraint set.
//   kLeastSquares — cyclic Kaczmarz projections: each sweep moves the
//                   masses additively along every constraint's overlap
//                   row to cancel its residual, clips at zero, then
//                   renormalizes. Minimizes the squared residual of an
//                   inconsistent (drifting) constraint set.
//
// The solve is budgeted (solve_sweeps) and warm-started from the previous
// solution, so per-observation cost is bounded and repeated feedback at
// the fixed point is a no-op. The constraint set is a bounded ring: a new
// observation on an already-constrained range replaces the stale value
// (drift updates in place), and beyond max_constraints the oldest
// constraint is dropped.
#ifndef SELEST_FEEDBACK_RECONSTRUCTED_DISTRIBUTION_H_
#define SELEST_FEEDBACK_RECONSTRUCTED_DISTRIBUTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/data/domain.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

enum class ReconstructionSolver : uint32_t {
  kMaxEntropy = 0,
  kLeastSquares = 1,
};

const char* ReconstructionSolverName(ReconstructionSolver solver);

struct ReconstructedDistributionOptions {
  int num_bins = 64;
  ReconstructionSolver solver = ReconstructionSolver::kMaxEntropy;
  // Full passes over the constraint set per observation (fixed budget; the
  // sweep loop exits early once the worst residual drops below tolerance).
  int solve_sweeps = 24;
  double tolerance = 1e-9;
  // Ring capacity for retained constraints; oldest evicted beyond this.
  size_t max_constraints = 256;
  // Step scale in (0, 1]: 1 projects each constraint fully per visit.
  double damping = 1.0;
};

// One harvested feedback fact: σ(a, b) was observed to be `selectivity`.
struct SelectivityConstraint {
  double a = 0.0;
  double b = 0.0;
  double selectivity = 0.0;
};

class ReconstructedDistributionEstimator : public SelectivityEstimator {
 public:
  // Starts from the uniform density (constraints are the only knowledge),
  // or from a sample prior when one is available.
  static StatusOr<ReconstructedDistributionEstimator> Create(
      const Domain& domain, const ReconstructedDistributionOptions& options);
  static StatusOr<ReconstructedDistributionEstimator> CreateFromSample(
      std::span<const double> sample, const Domain& domain,
      const ReconstructedDistributionOptions& options);

  double EstimateSelectivity(double a, double b) const override;
  void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                std::span<double> out) const override;
  size_t StorageBytes() const override;
  std::string name() const override;

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kReconstructed;
  }
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<ReconstructedDistributionEstimator> DeserializeState(
      ByteReader& reader);

  bool SupportsFeedback() const override { return true; }
  Status ObserveTrueSelectivity(const RangeQuery& query,
                                double true_selectivity) override;
  uint64_t feedback_observations() const override { return observations_; }

  const std::vector<double>& masses() const { return masses_; }
  const std::vector<SelectivityConstraint>& constraints() const {
    return constraints_;
  }
  // Worst |Σ overlap·mass − selectivity| over the constraint set after the
  // last solve (0 before any observation).
  double max_residual() const { return max_residual_; }

 private:
  ReconstructedDistributionEstimator(
      const Domain& domain, const ReconstructedDistributionOptions& options,
      std::vector<double> masses)
      : domain_(domain), options_(options), masses_(std::move(masses)) {}

  // Fraction of bin i covered by [a, b].
  double Overlap(size_t i, double a, double b) const;
  // Σ_i Overlap(i, a, b) · masses_[i], unclamped.
  double ConstraintEstimate(const SelectivityConstraint& c) const;
  void ApplyMaxEntropy(const SelectivityConstraint& c);
  void ApplyLeastSquares(const SelectivityConstraint& c);
  void Normalize();
  void Solve();

  Domain domain_;
  ReconstructedDistributionOptions options_;
  std::vector<double> masses_;  // density on the grid; sums to 1
  std::vector<SelectivityConstraint> constraints_;  // arrival order
  uint64_t observations_ = 0;
  double max_residual_ = 0.0;
};

}  // namespace selest

#endif  // SELEST_FEEDBACK_RECONSTRUCTED_DISTRIBUTION_H_
