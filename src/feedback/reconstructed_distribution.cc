#include "src/feedback/reconstructed_distribution.h"

#include <algorithm>
#include <cmath>

#include "src/est/estimator_snapshot.h"

namespace selest {
namespace {

// Two constraints name the same range when their endpoints are bitwise
// equal; feedback for an identical query replaces the stale value.
bool SameRange(const SelectivityConstraint& c, double a, double b) {
  return c.a == a && c.b == b;
}

Status ValidateOptions(const ReconstructedDistributionOptions& options) {
  if (options.num_bins < 1) {
    return InvalidArgumentError("reconstructed distribution needs >= 1 bin");
  }
  if (options.solver != ReconstructionSolver::kMaxEntropy &&
      options.solver != ReconstructionSolver::kLeastSquares) {
    return InvalidArgumentError("unknown reconstruction solver");
  }
  if (options.solve_sweeps < 1 || options.solve_sweeps > 100000) {
    return InvalidArgumentError("solve_sweeps must be in [1, 100000]");
  }
  if (!(options.tolerance >= 0.0)) {
    return InvalidArgumentError("tolerance must be >= 0");
  }
  if (options.max_constraints < 1 || options.max_constraints > (1u << 20)) {
    return InvalidArgumentError("max_constraints must be in [1, 2^20]");
  }
  if (!(options.damping > 0.0) || options.damping > 1.0) {
    return InvalidArgumentError("damping must be in (0, 1]");
  }
  return Status::Ok();
}

}  // namespace

const char* ReconstructionSolverName(ReconstructionSolver solver) {
  switch (solver) {
    case ReconstructionSolver::kMaxEntropy:
      return "max-entropy";
    case ReconstructionSolver::kLeastSquares:
      return "least-squares";
  }
  return "unknown";
}

StatusOr<ReconstructedDistributionEstimator>
ReconstructedDistributionEstimator::Create(
    const Domain& domain, const ReconstructedDistributionOptions& options) {
  SELEST_RETURN_IF_ERROR(ValidateOptions(options));
  std::vector<double> masses(static_cast<size_t>(options.num_bins),
                             1.0 / options.num_bins);
  return ReconstructedDistributionEstimator(domain, options,
                                            std::move(masses));
}

StatusOr<ReconstructedDistributionEstimator>
ReconstructedDistributionEstimator::CreateFromSample(
    std::span<const double> sample, const Domain& domain,
    const ReconstructedDistributionOptions& options) {
  auto estimator = Create(domain, options);
  if (!estimator.ok()) return estimator.status();
  if (sample.empty()) {
    return InvalidArgumentError("CreateFromSample needs a non-empty sample");
  }
  std::vector<double>& masses = estimator->masses_;
  std::fill(masses.begin(), masses.end(), 0.0);
  const double bin_width = domain.width() / options.num_bins;
  for (double v : sample) {
    auto bin = static_cast<long>((domain.Clamp(v) - domain.lo) / bin_width);
    bin = std::clamp<long>(bin, 0, options.num_bins - 1);
    masses[static_cast<size_t>(bin)] +=
        1.0 / static_cast<double>(sample.size());
  }
  return estimator;
}

double ReconstructedDistributionEstimator::Overlap(size_t i, double a,
                                                   double b) const {
  const double bin_width = domain_.width() / masses_.size();
  const double lo = domain_.lo + i * bin_width;
  const double hi = lo + bin_width;
  const double overlap = std::min(b, hi) - std::max(a, lo);
  return overlap <= 0.0 ? 0.0 : overlap / bin_width;
}

double ReconstructedDistributionEstimator::ConstraintEstimate(
    const SelectivityConstraint& c) const {
  double estimate = 0.0;
  for (size_t i = 0; i < masses_.size(); ++i) {
    const double fraction = Overlap(i, c.a, c.b);
    if (fraction > 0.0) estimate += fraction * masses_[i];
  }
  return estimate;
}

double ReconstructedDistributionEstimator::EstimateSelectivity(
    double a, double b) const {
  a = domain_.Clamp(a);
  b = domain_.Clamp(b);
  // Clamp passes NaN through; this guard rejects NaN, inverted, and
  // degenerate ranges in one comparison (±inf clamps to the domain edges).
  if (!(a < b)) return 0.0;
  const double bin_width = domain_.width() / masses_.size();
  const auto first = static_cast<size_t>((a - domain_.lo) / bin_width);
  double mass = 0.0;
  for (size_t i = std::min(first, masses_.size() - 1); i < masses_.size();
       ++i) {
    const double fraction = Overlap(i, a, b);
    if (fraction <= 0.0 && domain_.lo + i * bin_width > b) break;
    mass += fraction * masses_[i];
  }
  return std::clamp(mass, 0.0, 1.0);
}

void ReconstructedDistributionEstimator::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  BatchWith(queries, out, [this](const RangeQuery& q) {
    return ReconstructedDistributionEstimator::EstimateSelectivity(q.a, q.b);
  });
}

void ReconstructedDistributionEstimator::ApplyMaxEntropy(
    const SelectivityConstraint& c) {
  const double estimate = ConstraintEstimate(c);
  if (estimate > 1e-12) {
    // Proportional fitting: scale the covered part of every overlapping bin
    // so the constraint is met (damped); uncovered parts keep their mass.
    const double ratio = c.selectivity / estimate;
    const double factor = 1.0 + options_.damping * (ratio - 1.0);
    for (size_t i = 0; i < masses_.size(); ++i) {
      const double fraction = Overlap(i, c.a, c.b);
      if (fraction <= 0.0) continue;
      masses_[i] *= (1.0 - fraction) + fraction * factor;
    }
    return;
  }
  if (c.selectivity <= 0.0) return;  // zero mass, zero target: satisfied
  // The constrained region is empty but the observation says it holds mass:
  // seed it ∝ covered fraction, normalized by Σ fraction² so the region's
  // estimate lands on the target exactly (the multiplicative rule cannot
  // lift zero mass).
  double sum_sq_fraction = 0.0;
  for (size_t i = 0; i < masses_.size(); ++i) {
    const double fraction = Overlap(i, c.a, c.b);
    sum_sq_fraction += fraction * fraction;
  }
  if (sum_sq_fraction <= 0.0) return;
  const double scale = options_.damping * c.selectivity / sum_sq_fraction;
  for (size_t i = 0; i < masses_.size(); ++i) {
    const double fraction = Overlap(i, c.a, c.b);
    if (fraction > 0.0) masses_[i] += scale * fraction;
  }
}

void ReconstructedDistributionEstimator::ApplyLeastSquares(
    const SelectivityConstraint& c) {
  // Kaczmarz projection onto the hyperplane Σ f_i m_i = s, clipped at 0.
  const double residual = c.selectivity - ConstraintEstimate(c);
  double sum_sq_fraction = 0.0;
  for (size_t i = 0; i < masses_.size(); ++i) {
    const double fraction = Overlap(i, c.a, c.b);
    sum_sq_fraction += fraction * fraction;
  }
  if (sum_sq_fraction <= 0.0) return;
  const double step = options_.damping * residual / sum_sq_fraction;
  for (size_t i = 0; i < masses_.size(); ++i) {
    const double fraction = Overlap(i, c.a, c.b);
    if (fraction <= 0.0) continue;
    masses_[i] = std::max(0.0, masses_[i] + step * fraction);
  }
}

void ReconstructedDistributionEstimator::Normalize() {
  double total = 0.0;
  for (double m : masses_) total += m;
  if (total > 0.0) {
    for (double& m : masses_) m /= total;
  } else {
    std::fill(masses_.begin(), masses_.end(), 1.0 / masses_.size());
  }
}

void ReconstructedDistributionEstimator::Solve() {
  for (int sweep = 0; sweep < options_.solve_sweeps; ++sweep) {
    for (const SelectivityConstraint& c : constraints_) {
      if (options_.solver == ReconstructionSolver::kMaxEntropy) {
        ApplyMaxEntropy(c);
      } else {
        ApplyLeastSquares(c);
      }
    }
    Normalize();
    double worst = 0.0;
    for (const SelectivityConstraint& c : constraints_) {
      worst = std::max(worst, std::abs(c.selectivity - ConstraintEstimate(c)));
    }
    max_residual_ = worst;
    if (worst <= options_.tolerance) break;
  }
}

Status ReconstructedDistributionEstimator::ObserveTrueSelectivity(
    const RangeQuery& query, double true_selectivity) {
  if (std::isnan(true_selectivity) || true_selectivity < 0.0 ||
      true_selectivity > 1.0) {
    return InvalidArgumentError("true selectivity must be in [0, 1]");
  }
  const double a = domain_.Clamp(query.a);
  const double b = domain_.Clamp(query.b);
  if (!(a < b)) {
    // NaN, inverted, or degenerate queries carry no density information.
    return InvalidArgumentError("feedback query is not a non-empty range");
  }
  ++observations_;
  const SelectivityConstraint incoming{a, b, true_selectivity};
  // An observation the current solution already explains exactly carries no
  // new information, so the (event-driven) solver does not run: feedback at
  // the fixed point is exactly idempotent. The constraint is still retained
  // for future solves.
  const bool satisfied = ConstraintEstimate(incoming) == true_selectivity;
  auto existing = std::find_if(
      constraints_.begin(), constraints_.end(),
      [&](const SelectivityConstraint& c) { return SameRange(c, a, b); });
  if (existing != constraints_.end()) {
    // Same range observed again: the newer truth supersedes the stale one
    // (this is how the estimator tracks drift); move it to the back so the
    // ring evicts by recency of information, not first arrival.
    constraints_.erase(existing);
  }
  constraints_.push_back(incoming);
  if (constraints_.size() > options_.max_constraints) {
    constraints_.erase(constraints_.begin());
  }
  if (!satisfied) Solve();
  return Status::Ok();
}

size_t ReconstructedDistributionEstimator::StorageBytes() const {
  return masses_.size() * sizeof(double) +
         constraints_.size() * sizeof(SelectivityConstraint);
}

std::string ReconstructedDistributionEstimator::name() const {
  return std::string("reconstructed(") + std::to_string(masses_.size()) + "," +
         ReconstructionSolverName(options_.solver) + ")";
}

Status ReconstructedDistributionEstimator::SerializeState(
    ByteWriter& writer) const {
  WriteDomain(writer, domain_);
  writer.WriteU32(static_cast<uint32_t>(options_.solver));
  writer.WriteU32(static_cast<uint32_t>(options_.solve_sweeps));
  writer.WriteDouble(options_.tolerance);
  writer.WriteU64(options_.max_constraints);
  writer.WriteDouble(options_.damping);
  // The solved masses are persisted directly, so a reloaded instance
  // answers bit-identically without re-running the solver.
  writer.WriteDoubleVector(masses_);
  writer.WriteU32(static_cast<uint32_t>(constraints_.size()));
  for (const SelectivityConstraint& c : constraints_) {
    writer.WriteDouble(c.a);
    writer.WriteDouble(c.b);
    writer.WriteDouble(c.selectivity);
  }
  writer.WriteU64(observations_);
  writer.WriteDouble(max_residual_);
  return Status::Ok();
}

StatusOr<ReconstructedDistributionEstimator>
ReconstructedDistributionEstimator::DeserializeState(ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(const Domain domain, ReadDomain(reader));
  ReconstructedDistributionOptions options;
  SELEST_ASSIGN_OR_RETURN(const uint32_t solver, reader.ReadU32());
  SELEST_ASSIGN_OR_RETURN(const uint32_t sweeps, reader.ReadU32());
  SELEST_ASSIGN_OR_RETURN(options.tolerance, reader.ReadDouble());
  SELEST_ASSIGN_OR_RETURN(const uint64_t max_constraints, reader.ReadU64());
  SELEST_ASSIGN_OR_RETURN(options.damping, reader.ReadDouble());
  if (solver > static_cast<uint32_t>(ReconstructionSolver::kLeastSquares)) {
    return InvalidArgumentError("reconstructed snapshot solver is unknown");
  }
  options.solver = static_cast<ReconstructionSolver>(solver);
  options.solve_sweeps = static_cast<int>(sweeps);
  options.max_constraints = static_cast<size_t>(max_constraints);
  SELEST_ASSIGN_OR_RETURN(std::vector<double> masses,
                          reader.ReadDoubleVector());
  if (masses.empty() || masses.size() > (1u << 24)) {
    return InvalidArgumentError("reconstructed snapshot bin count is invalid");
  }
  for (double m : masses) {
    if (!std::isfinite(m) || m < 0.0) {
      return InvalidArgumentError("reconstructed snapshot masses are invalid");
    }
  }
  options.num_bins = static_cast<int>(masses.size());
  SELEST_RETURN_IF_ERROR(ValidateOptions(options));
  SELEST_ASSIGN_OR_RETURN(const uint32_t num_constraints, reader.ReadU32());
  if (num_constraints > options.max_constraints) {
    return InvalidArgumentError(
        "reconstructed snapshot constraint count exceeds capacity");
  }
  std::vector<SelectivityConstraint> constraints;
  constraints.reserve(num_constraints);
  for (uint32_t i = 0; i < num_constraints; ++i) {
    SelectivityConstraint c;
    SELEST_ASSIGN_OR_RETURN(c.a, reader.ReadDouble());
    SELEST_ASSIGN_OR_RETURN(c.b, reader.ReadDouble());
    SELEST_ASSIGN_OR_RETURN(c.selectivity, reader.ReadDouble());
    if (!std::isfinite(c.a) || !std::isfinite(c.b) || !(c.a < c.b) ||
        !(c.selectivity >= 0.0) || c.selectivity > 1.0) {
      return InvalidArgumentError(
          "reconstructed snapshot constraint is invalid");
    }
    constraints.push_back(c);
  }
  SELEST_ASSIGN_OR_RETURN(const uint64_t observations, reader.ReadU64());
  SELEST_ASSIGN_OR_RETURN(const double max_residual, reader.ReadDouble());
  if (!std::isfinite(max_residual) || max_residual < 0.0) {
    return InvalidArgumentError("reconstructed snapshot residual is invalid");
  }
  ReconstructedDistributionEstimator estimator(domain, options,
                                               std::move(masses));
  estimator.constraints_ = std::move(constraints);
  estimator.observations_ = observations;
  estimator.max_residual_ = max_residual;
  return estimator;
}

}  // namespace selest
