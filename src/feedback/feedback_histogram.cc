#include "src/feedback/feedback_histogram.h"

#include <algorithm>
#include <cmath>

#include "src/est/estimator_snapshot.h"

namespace selest {

StatusOr<FeedbackHistogram> FeedbackHistogram::Create(
    const Domain& domain, const FeedbackHistogramOptions& options) {
  if (options.num_bins < 1) {
    return InvalidArgumentError("feedback histogram needs >= 1 bin");
  }
  if (!(options.learning_rate > 0.0) || options.learning_rate > 1.0) {
    return InvalidArgumentError("learning_rate must be in (0, 1]");
  }
  // Uniform start: the System R assumption, to be corrected by feedback.
  std::vector<double> masses(static_cast<size_t>(options.num_bins),
                             1.0 / options.num_bins);
  return FeedbackHistogram(domain, options, std::move(masses));
}

StatusOr<FeedbackHistogram> FeedbackHistogram::CreateFromSample(
    std::span<const double> sample, const Domain& domain,
    const FeedbackHistogramOptions& options) {
  auto histogram = Create(domain, options);
  if (!histogram.ok()) return histogram.status();
  if (sample.empty()) {
    return InvalidArgumentError("CreateFromSample needs a non-empty sample");
  }
  std::vector<double>& masses = histogram->masses_;
  std::fill(masses.begin(), masses.end(), 0.0);
  const double bin_width = domain.width() / options.num_bins;
  for (double v : sample) {
    auto bin = static_cast<long>((domain.Clamp(v) - domain.lo) / bin_width);
    bin = std::clamp<long>(bin, 0, options.num_bins - 1);
    masses[static_cast<size_t>(bin)] += 1.0 / static_cast<double>(sample.size());
  }
  return histogram;
}

double FeedbackHistogram::Overlap(size_t i, double a, double b) const {
  const double bin_width = domain_.width() / masses_.size();
  const double lo = domain_.lo + i * bin_width;
  const double hi = lo + bin_width;
  const double overlap = std::min(b, hi) - std::max(a, lo);
  return overlap <= 0.0 ? 0.0 : overlap / bin_width;
}

double FeedbackHistogram::EstimateSelectivity(double a, double b) const {
  a = domain_.Clamp(a);
  b = domain_.Clamp(b);
  // Clamp passes NaN through, so this single guard rejects NaN bounds as
  // well as inverted and degenerate ranges — the bin walk below only ever
  // sees finite in-domain endpoints (±inf clamps to the domain edges).
  if (!(a < b)) return 0.0;
  const double bin_width = domain_.width() / masses_.size();
  const auto first = static_cast<size_t>((a - domain_.lo) / bin_width);
  double mass = 0.0;
  for (size_t i = std::min(first, masses_.size() - 1); i < masses_.size();
       ++i) {
    const double fraction = Overlap(i, a, b);
    if (fraction <= 0.0 && domain_.lo + i * bin_width > b) break;
    mass += fraction * masses_[i];
  }
  return std::clamp(mass, 0.0, 1.0);
}

void FeedbackHistogram::Observe(const RangeQuery& query,
                                double true_selectivity) {
  if (std::isnan(true_selectivity)) return;
  true_selectivity = std::clamp(true_selectivity, 0.0, 1.0);
  const double a = domain_.Clamp(query.a);
  const double b = domain_.Clamp(query.b);
  if (!(a < b)) return;  // rejects NaN, inverted, and degenerate queries
  ++observations_;

  // Current estimate restricted to the query, per overlapping bin.
  std::vector<std::pair<size_t, double>> overlapped;  // (bin, overlap mass)
  double estimate = 0.0;
  for (size_t i = 0; i < masses_.size(); ++i) {
    const double fraction = Overlap(i, a, b);
    if (fraction <= 0.0) continue;
    overlapped.emplace_back(i, fraction * masses_[i]);
    estimate += fraction * masses_[i];
  }
  if (overlapped.empty()) return;

  const double correction =
      options_.learning_rate * (true_selectivity - estimate);
  // A zero-error observation is exactly a no-op (idempotence at the fixed
  // point): even renormalization is skipped, since dividing by a total an
  // ulp away from 1 would still perturb the masses.
  if (correction == 0.0) return;
  if (estimate > 0.0) {
    // Distribute proportionally to each bin's current overlapped mass, and
    // scale the bin's full mass by the same relative factor (the overlapped
    // part absorbs the correction; the non-overlapped part keeps its
    // density ratio).
    for (const auto& [i, overlap_mass] : overlapped) {
      const double share = overlap_mass / estimate;
      const double delta = correction * share;
      const double fraction = Overlap(i, a, b);
      // Only the overlapped fraction of the bin is re-estimated; lift the
      // bin by delta / fraction so the overlapped portion changes by delta.
      masses_[i] = std::max(0.0, masses_[i] + delta / std::max(fraction, 1e-12));
    }
  } else {
    // No current mass in the query: spread the correction over the
    // overlapped bins proportionally to how much of each bin the query
    // covers. Only the covered fraction of each added mass falls back into
    // the query, so normalize by Σ fraction² to make the post-observation
    // estimate hit the target exactly.
    double sum_sq_fraction = 0.0;
    for (const auto& [i, overlap_mass] : overlapped) {
      (void)overlap_mass;
      const double fraction = Overlap(i, a, b);
      sum_sq_fraction += fraction * fraction;
    }
    for (const auto& [i, overlap_mass] : overlapped) {
      (void)overlap_mass;
      const double fraction = Overlap(i, a, b);
      masses_[i] = std::max(
          0.0, masses_[i] + correction * fraction /
                                std::max(sum_sq_fraction, 1e-12));
    }
  }

  if (options_.renormalize) {
    const double total = total_mass();
    if (total > 0.0) {
      for (double& m : masses_) m /= total;
    }
  }
}

Status FeedbackHistogram::ObserveTrueSelectivity(const RangeQuery& query,
                                                 double true_selectivity) {
  if (std::isnan(true_selectivity) || true_selectivity < 0.0 ||
      true_selectivity > 1.0) {
    return InvalidArgumentError("true selectivity must be in [0, 1]");
  }
  Observe(query, true_selectivity);
  return Status::Ok();
}

void FeedbackHistogram::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  BatchWith(queries, out, [this](const RangeQuery& q) {
    return FeedbackHistogram::EstimateSelectivity(q.a, q.b);
  });
}

Status FeedbackHistogram::SerializeState(ByteWriter& writer) const {
  WriteDomain(writer, domain_);
  writer.WriteDouble(options_.learning_rate);
  writer.WriteU32(options_.renormalize ? 1 : 0);
  writer.WriteDoubleVector(masses_);
  writer.WriteU64(observations_);
  return Status::Ok();
}

StatusOr<FeedbackHistogram> FeedbackHistogram::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(const Domain domain, ReadDomain(reader));
  FeedbackHistogramOptions options;
  SELEST_ASSIGN_OR_RETURN(options.learning_rate, reader.ReadDouble());
  SELEST_ASSIGN_OR_RETURN(const uint32_t renormalize, reader.ReadU32());
  if (!(options.learning_rate > 0.0) || options.learning_rate > 1.0 ||
      renormalize > 1) {
    return InvalidArgumentError("feedback snapshot options are invalid");
  }
  options.renormalize = renormalize != 0;
  SELEST_ASSIGN_OR_RETURN(std::vector<double> masses,
                          reader.ReadDoubleVector());
  SELEST_ASSIGN_OR_RETURN(const uint64_t observations, reader.ReadU64());
  if (masses.empty() || masses.size() > (1u << 24)) {
    return InvalidArgumentError("feedback snapshot bin count is invalid");
  }
  for (double m : masses) {
    if (!std::isfinite(m) || m < 0.0) {
      return InvalidArgumentError("feedback snapshot masses are invalid");
    }
  }
  options.num_bins = static_cast<int>(masses.size());
  FeedbackHistogram histogram(domain, options, std::move(masses));
  histogram.observations_ = observations;
  return histogram;
}

double FeedbackHistogram::total_mass() const {
  double total = 0.0;
  for (double m : masses_) total += m;
  return total;
}

size_t FeedbackHistogram::StorageBytes() const {
  return masses_.size() * sizeof(double);
}

std::string FeedbackHistogram::name() const {
  return "feedback(" + std::to_string(masses_.size()) + ")";
}

}  // namespace selest
