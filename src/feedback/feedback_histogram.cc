#include "src/feedback/feedback_histogram.h"

#include <algorithm>
#include <cmath>

namespace selest {

StatusOr<FeedbackHistogram> FeedbackHistogram::Create(
    const Domain& domain, const FeedbackHistogramOptions& options) {
  if (options.num_bins < 1) {
    return InvalidArgumentError("feedback histogram needs >= 1 bin");
  }
  if (!(options.learning_rate > 0.0) || options.learning_rate > 1.0) {
    return InvalidArgumentError("learning_rate must be in (0, 1]");
  }
  // Uniform start: the System R assumption, to be corrected by feedback.
  std::vector<double> masses(static_cast<size_t>(options.num_bins),
                             1.0 / options.num_bins);
  return FeedbackHistogram(domain, options, std::move(masses));
}

StatusOr<FeedbackHistogram> FeedbackHistogram::CreateFromSample(
    std::span<const double> sample, const Domain& domain,
    const FeedbackHistogramOptions& options) {
  auto histogram = Create(domain, options);
  if (!histogram.ok()) return histogram.status();
  if (sample.empty()) {
    return InvalidArgumentError("CreateFromSample needs a non-empty sample");
  }
  std::vector<double>& masses = histogram->masses_;
  std::fill(masses.begin(), masses.end(), 0.0);
  const double bin_width = domain.width() / options.num_bins;
  for (double v : sample) {
    auto bin = static_cast<long>((domain.Clamp(v) - domain.lo) / bin_width);
    bin = std::clamp<long>(bin, 0, options.num_bins - 1);
    masses[static_cast<size_t>(bin)] += 1.0 / static_cast<double>(sample.size());
  }
  return histogram;
}

double FeedbackHistogram::Overlap(size_t i, double a, double b) const {
  const double bin_width = domain_.width() / masses_.size();
  const double lo = domain_.lo + i * bin_width;
  const double hi = lo + bin_width;
  const double overlap = std::min(b, hi) - std::max(a, lo);
  return overlap <= 0.0 ? 0.0 : overlap / bin_width;
}

double FeedbackHistogram::EstimateSelectivity(double a, double b) const {
  if (a > b) return 0.0;
  a = domain_.Clamp(a);
  b = domain_.Clamp(b);
  if (a >= b) return 0.0;
  const double bin_width = domain_.width() / masses_.size();
  const auto first = static_cast<size_t>((a - domain_.lo) / bin_width);
  double mass = 0.0;
  for (size_t i = std::min(first, masses_.size() - 1); i < masses_.size();
       ++i) {
    const double fraction = Overlap(i, a, b);
    if (fraction <= 0.0 && domain_.lo + i * bin_width > b) break;
    mass += fraction * masses_[i];
  }
  return std::clamp(mass, 0.0, 1.0);
}

void FeedbackHistogram::Observe(const RangeQuery& query,
                                double true_selectivity) {
  true_selectivity = std::clamp(true_selectivity, 0.0, 1.0);
  const double a = domain_.Clamp(query.a);
  const double b = domain_.Clamp(query.b);
  if (a >= b) return;
  ++observations_;

  // Current estimate restricted to the query, per overlapping bin.
  std::vector<std::pair<size_t, double>> overlapped;  // (bin, overlap mass)
  double estimate = 0.0;
  for (size_t i = 0; i < masses_.size(); ++i) {
    const double fraction = Overlap(i, a, b);
    if (fraction <= 0.0) continue;
    overlapped.emplace_back(i, fraction * masses_[i]);
    estimate += fraction * masses_[i];
  }
  if (overlapped.empty()) return;

  const double correction =
      options_.learning_rate * (true_selectivity - estimate);
  if (estimate > 0.0) {
    // Distribute proportionally to each bin's current overlapped mass, and
    // scale the bin's full mass by the same relative factor (the overlapped
    // part absorbs the correction; the non-overlapped part keeps its
    // density ratio).
    for (const auto& [i, overlap_mass] : overlapped) {
      const double share = overlap_mass / estimate;
      const double delta = correction * share;
      const double fraction = Overlap(i, a, b);
      // Only the overlapped fraction of the bin is re-estimated; lift the
      // bin by delta / fraction so the overlapped portion changes by delta.
      masses_[i] = std::max(0.0, masses_[i] + delta / std::max(fraction, 1e-12));
    }
  } else {
    // No current mass in the query: spread the correction over the
    // overlapped bins proportionally to how much of each bin the query
    // covers. Only the covered fraction of each added mass falls back into
    // the query, so normalize by Σ fraction² to make the post-observation
    // estimate hit the target exactly.
    double sum_sq_fraction = 0.0;
    for (const auto& [i, overlap_mass] : overlapped) {
      (void)overlap_mass;
      const double fraction = Overlap(i, a, b);
      sum_sq_fraction += fraction * fraction;
    }
    for (const auto& [i, overlap_mass] : overlapped) {
      (void)overlap_mass;
      const double fraction = Overlap(i, a, b);
      masses_[i] = std::max(
          0.0, masses_[i] + correction * fraction /
                                std::max(sum_sq_fraction, 1e-12));
    }
  }

  if (options_.renormalize) {
    const double total = total_mass();
    if (total > 0.0) {
      for (double& m : masses_) m /= total;
    }
  }
}

double FeedbackHistogram::total_mass() const {
  double total = 0.0;
  for (double m : masses_) total += m;
  return total;
}

size_t FeedbackHistogram::StorageBytes() const {
  return masses_.size() * sizeof(double);
}

std::string FeedbackHistogram::name() const {
  return "feedback(" + std::to_string(masses_.size()) + ")";
}

}  // namespace selest
