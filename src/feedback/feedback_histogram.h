// Adaptive selectivity estimation from query feedback.
//
// §6 lists "include the knowledge of previous queries to improve the
// quality of kernel estimators" ([1], Chen & Roussopoulos) as future work.
// FeedbackHistogram realizes the classic version of that idea: an
// equi-width histogram whose bin masses are recalibrated every time the
// true result size of an executed query becomes known. Each observation
// moves the mass of the bins overlapping the query toward the value that
// would have answered the query exactly, by a configurable learning rate —
// so the estimator improves precisely where the workload queries.
//
// The update law (proportional error correction, DESIGN.md §14): when the
// query region holds mass, the observed error is distributed over the
// overlapping bins proportionally to their current overlapped mass; when it
// holds none, the correction is seeded over the overlap ∝ covered fraction
// (normalized by Σ fraction² so the post-observation estimate hits the
// target exactly). An observation whose true selectivity equals the current
// estimate is a no-op, so repeated identical feedback is idempotent at the
// fixed point.
#ifndef SELEST_FEEDBACK_FEEDBACK_HISTOGRAM_H_
#define SELEST_FEEDBACK_FEEDBACK_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/data/domain.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

struct FeedbackHistogramOptions {
  int num_bins = 64;
  // Fraction of the observed error corrected per observation, in (0, 1].
  double learning_rate = 0.5;
  // When true, after each observation the bins outside the query are scaled
  // so total mass stays 1 (mass is conserved, errors are redistributed).
  bool renormalize = true;
};

class FeedbackHistogram : public SelectivityEstimator {
 public:
  // Starts from the uniform assumption (no sample needed), or from a sample
  // when one is available.
  static StatusOr<FeedbackHistogram> Create(
      const Domain& domain, const FeedbackHistogramOptions& options);
  static StatusOr<FeedbackHistogram> CreateFromSample(
      std::span<const double> sample, const Domain& domain,
      const FeedbackHistogramOptions& options);

  double EstimateSelectivity(double a, double b) const override;
  void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                std::span<double> out) const override;
  size_t StorageBytes() const override;
  std::string name() const override;

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kFeedback;
  }
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<FeedbackHistogram> DeserializeState(ByteReader& reader);

  // Feeds back the true selectivity of an executed query. The mass of the
  // overlapping bins is adjusted toward `true_selectivity` by the learning
  // rate, proportionally to each bin's overlapped mass (or uniformly over
  // the overlap when the current estimate there is zero).
  void Observe(const RangeQuery& query, double true_selectivity);

  // The common query-driven interface (SelectivityEstimator, DESIGN.md §14).
  bool SupportsFeedback() const override { return true; }
  Status ObserveTrueSelectivity(const RangeQuery& query,
                                double true_selectivity) override;
  uint64_t feedback_observations() const override { return observations_; }

  size_t observations() const { return static_cast<size_t>(observations_); }
  const std::vector<double>& masses() const { return masses_; }
  // Total mass currently assigned (1 when renormalizing).
  double total_mass() const;

 private:
  FeedbackHistogram(const Domain& domain,
                    const FeedbackHistogramOptions& options,
                    std::vector<double> masses)
      : domain_(domain), options_(options), masses_(std::move(masses)) {}

  // Fraction of bin i covered by [a, b].
  double Overlap(size_t i, double a, double b) const;

  Domain domain_;
  FeedbackHistogramOptions options_;
  std::vector<double> masses_;  // mass per bin; intended to sum to ~1
  uint64_t observations_ = 0;
};

}  // namespace selest

#endif  // SELEST_FEEDBACK_FEEDBACK_HISTOGRAM_H_
