// Kernel density estimation (§3.2, equation (5)).
//
//   f̂_K(x) = (1/nh) Σ_i K((x − X_i)/h)
//
// This class evaluates the density itself. It backs the illustration of
// Fig. 1, the pilot estimates of the hybrid estimator (§3.3), and the
// change-point detector; the selectivity integral of Alg. 1 lives in
// est/kernel_estimator.h.
#ifndef SELEST_DENSITY_KDE_H_
#define SELEST_DENSITY_KDE_H_

#include <span>
#include <vector>

#include "src/data/domain.h"
#include "src/density/kernel.h"
#include "src/util/status.h"

namespace selest {

// How the estimator treats the domain boundaries (§3.2.1).
enum class BoundaryPolicy {
  // Plain kernel estimate; loses mass outside the domain, inflating errors
  // for queries near the boundary (Fig. 3).
  kNone,
  // Samples within one bandwidth of a boundary are mirrored across it: the
  // estimate is a density again, at the price of consistency (§3.2.1).
  kReflection,
  // Simonoff–Dong boundary kernels replace the Epanechnikov kernel within
  // one bandwidth of a boundary: consistent, but the estimate need not
  // integrate to exactly one (§3.2.1).
  kBoundaryKernel,
};

const char* BoundaryPolicyName(BoundaryPolicy policy);

// A kernel density estimate over a metric domain.
class Kde {
 public:
  // Builds the estimate. Fails when the sample is empty or the bandwidth is
  // not positive. The boundary-kernel policy requires the Epanechnikov
  // kernel (the family of §3.2.1 extends it specifically).
  static StatusOr<Kde> Create(std::span<const double> sample, double bandwidth,
                              const Domain& domain,
                              Kernel kernel = Kernel(),
                              BoundaryPolicy boundary = BoundaryPolicy::kNone);

  // Density estimate at x. O(log n + k) with k samples within one kernel
  // radius of x.
  double Density(double x) const;

  double bandwidth() const { return bandwidth_; }
  const Kernel& kernel() const { return kernel_; }
  BoundaryPolicy boundary_policy() const { return boundary_; }
  const Domain& domain() const { return domain_; }
  // Number of original (pre-reflection) samples.
  size_t sample_size() const { return original_count_; }
  // Sorted samples, including reflected copies under kReflection.
  const std::vector<double>& effective_samples() const { return samples_; }

 private:
  Kde(std::vector<double> samples, size_t original_count, double bandwidth,
      const Domain& domain, Kernel kernel, BoundaryPolicy boundary);

  double PlainDensity(double x) const;
  double BoundaryKernelDensity(double x) const;

  std::vector<double> samples_;  // sorted; reflected copies included
  size_t original_count_;
  double bandwidth_;
  Domain domain_;
  Kernel kernel_;
  BoundaryPolicy boundary_;
};

}  // namespace selest

#endif  // SELEST_DENSITY_KDE_H_
