// Kernel functions for density and selectivity estimation (§3.2).
//
// The paper uses the Epanechnikov kernel and notes that the choice of kernel
// matters far less than the choice of bandwidth. Alternatives are provided
// to verify that claim empirically (ablation A1 in DESIGN.md). Each kernel
// K is symmetric, integrates to one, has zero first moment and nonzero
// second moment k2 — the conditions (a)–(c) of §4.2.
#ifndef SELEST_DENSITY_KERNEL_H_
#define SELEST_DENSITY_KERNEL_H_

#include <string>

namespace selest {

enum class KernelType {
  kEpanechnikov,
  kBiweight,
  kTriangular,
  kUniform,
  kGaussian,
};

// A symmetric probability kernel. Value type; cheap to copy.
class Kernel {
 public:
  explicit Kernel(KernelType type = KernelType::kEpanechnikov);

  KernelType type() const { return type_; }

  // K(t).
  double Value(double t) const;

  // ∫_{-inf}^{t} K(u) du — the primitive the kernel selectivity estimator is
  // built from (Alg. 1 uses F(t) − 1/2, this is the full CDF).
  double Cdf(double t) const;

  // Radius of the kernel's support: K(t) = 0 for |t| > support_radius().
  // The Gaussian kernel reports an effective radius beyond which its mass is
  // negligible (< 1e-8), so boundary logic stays finite.
  double support_radius() const;

  // R(K) = ∫ K(t)² dt, the roughness term of the AIVar formula (9b).
  double squared_l2_norm() const;

  // k2 = ∫ t² K(t) dt, the second moment of condition (c) in §4.2
  // (1/5 for Epanechnikov).
  double second_moment() const;

  // The bandwidth constant of the normal scale rule (§4.2):
  //   h = C(K) · s · n^(−1/5),  C(K) = (8√π R(K) / (3 k2²))^(1/5).
  // ≈ 2.345 for Epanechnikov, the value quoted in the paper.
  double normal_scale_constant() const;

  std::string name() const;

 private:
  KernelType type_;
};

}  // namespace selest

#endif  // SELEST_DENSITY_KERNEL_H_
