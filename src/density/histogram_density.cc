#include "src/density/histogram_density.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace selest {

StatusOr<BinnedDensity> BinnedDensity::Create(std::vector<double> edges,
                                              std::vector<double> counts,
                                              double total_count) {
  if (edges.size() < 2) {
    return InvalidArgumentError("histogram needs at least two edges");
  }
  if (counts.size() + 1 != edges.size()) {
    return InvalidArgumentError("counts must have edges.size()-1 entries");
  }
  if (!(total_count > 0.0)) {
    return InvalidArgumentError("total_count must be positive");
  }
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    if (edges[i] > edges[i + 1]) {
      return InvalidArgumentError("edges must be non-decreasing");
    }
  }
  for (double c : counts) {
    if (c < 0.0) return InvalidArgumentError("counts must be non-negative");
  }
  return BinnedDensity(AlignedDoubles(edges.begin(), edges.end()),
                       AlignedDoubles(counts.begin(), counts.end()),
                       total_count);
}

namespace {

// Bin i covers (edges[i], edges[i+1]]; the first bin also includes its
// left edge so the full edge range is covered. Out-of-range values clamp
// into the first/last bin. Shared by FromSample and FoldedWith so batch
// builds and incremental folds bucket identically.
size_t BucketIndex(std::span<const double> edges, size_t num_bins, double v) {
  const size_t pos = BranchFreeLowerBound(edges.data(), edges.size(), v);
  const size_t bin = pos == 0 ? 0 : pos - 1;
  return std::min(bin, num_bins - 1);
}

}  // namespace

StatusOr<BinnedDensity> BinnedDensity::FromSample(
    std::span<const double> sample, std::vector<double> edges) {
  if (sample.empty()) {
    return InvalidArgumentError("histogram needs a non-empty sample");
  }
  if (edges.size() < 2) {
    return InvalidArgumentError("histogram needs at least two edges");
  }
  std::vector<double> counts(edges.size() - 1, 0.0);
  for (double v : sample) {
    counts[BucketIndex(edges, counts.size(), v)] += 1.0;
  }
  const double total = static_cast<double>(sample.size());
  return Create(std::move(edges), std::move(counts), total);
}

double BinnedDensity::Density(double x) const {
  if (x < edges_.front() || x > edges_.back()) return 0.0;
  auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  size_t bin = it == edges_.begin()
                   ? 0
                   : static_cast<size_t>(it - edges_.begin()) - 1;
  bin = std::min(bin, counts_.size() - 1);
  const double width = edges_[bin + 1] - edges_[bin];
  if (width <= 0.0) {
    return counts_[bin] > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return counts_[bin] / (total_count_ * width);
}

double BinnedDensity::Selectivity(double a, double b) const {
  if (a > b) return 0.0;
  double mass = 0.0;
  // Only bins overlapping [a, b] contribute; find the first candidate by
  // binary search. lower_bound (not upper_bound) so that zero-width atom
  // bins located exactly at `a` are not skipped. The branch-free search
  // returns the same index and is what the vector block kernel replays,
  // keeping the two paths structurally identical.
  const size_t first = BranchFreeLowerBound(edges_.data(), edges_.size(), a);
  size_t i = first == 0 ? 0 : first - 1;
  for (; i < counts_.size() && edges_[i] <= b; ++i) {
    const double lo = edges_[i];
    const double hi = edges_[i + 1];
    const double width = hi - lo;
    if (width <= 0.0) {
      // Atom at lo: all of its mass lies inside [a, b] iff a <= lo <= b.
      if (lo >= a && lo <= b) mass += counts_[i];
      continue;
    }
    const double overlap = std::min(b, hi) - std::max(a, lo);
    if (overlap <= 0.0) continue;
    mass += counts_[i] * (overlap / width);
  }
  return std::clamp(mass / total_count_, 0.0, 1.0);
}

size_t BinnedDensity::StorageBytes() const {
  return sizeof(double) * (edges_.size() + counts_.size());
}

StatusOr<BinnedDensity> BinnedDensity::MergedWith(
    const BinnedDensity& other) const {
  if (edges_ != other.edges_) {
    return FailedPreconditionError(
        "histogram merge requires identical bin edges");
  }
  AlignedDoubles counts(counts_);
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts_[i];
  return BinnedDensity(edges_, std::move(counts),
                       total_count_ + other.total_count_);
}

BinnedDensity BinnedDensity::FoldedWith(std::span<const double> values) const {
  BinnedDensity folded(*this);
  for (double v : values) {
    folded.counts_[BucketIndex(edges_, counts_.size(), v)] += 1.0;
  }
  folded.total_count_ += static_cast<double>(values.size());
  return folded;
}

double BinnedDensity::MassBelow(double x) const {
  return Selectivity(edges_.front(), x) * total_count_;
}

}  // namespace selest
