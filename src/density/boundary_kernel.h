// Boundary kernels (§3.2.1).
//
// Near a domain boundary the ordinary kernel loses mass outside the domain
// and the estimator becomes inconsistent. The paper adopts the family of
// Simonoff & Dong (1994): for the left boundary l and an evaluation point x
// with q = (x − l)/h in [0, 1],
//
//   K^(l)(u, q) = (3 + 3q² − 6u²) / (1 + q)³ · 1[−1 <= u <= q].
//
// For every q the kernel integrates to one and has vanishing first moment,
// restoring consistency at the boundary; at q = 1 it reduces to the
// Epanechnikov kernel. The right-boundary family is the mirror image.
#ifndef SELEST_DENSITY_BOUNDARY_KERNEL_H_
#define SELEST_DENSITY_BOUNDARY_KERNEL_H_

namespace selest {

// K^(l)(u, q) for the left boundary; q must be in [0, 1].
double LeftBoundaryKernel(double u, double q);

// K^(r)(u, q) = K^(l)(−u, q) for the right boundary; q must be in [0, 1].
double RightBoundaryKernel(double u, double q);

// First and second moments, exposed for tests of the consistency-restoring
// moment conditions: Moment0 == 1 and Moment1 == 0 for all q in [0, 1].
double LeftBoundaryKernelMoment0(double q);
double LeftBoundaryKernelMoment1(double q);

}  // namespace selest

#endif  // SELEST_DENSITY_BOUNDARY_KERNEL_H_
