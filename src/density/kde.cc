#include "src/density/kde.h"

#include <algorithm>
#include <cmath>

#include "src/density/boundary_kernel.h"
#include "src/util/check.h"

namespace selest {

const char* BoundaryPolicyName(BoundaryPolicy policy) {
  switch (policy) {
    case BoundaryPolicy::kNone:
      return "none";
    case BoundaryPolicy::kReflection:
      return "reflection";
    case BoundaryPolicy::kBoundaryKernel:
      return "boundary-kernel";
  }
  return "unknown";
}

StatusOr<Kde> Kde::Create(std::span<const double> sample, double bandwidth,
                          const Domain& domain, Kernel kernel,
                          BoundaryPolicy boundary) {
  if (sample.empty()) {
    return InvalidArgumentError("kde needs a non-empty sample");
  }
  if (!(bandwidth > 0.0) || !std::isfinite(bandwidth)) {
    return InvalidArgumentError("kde bandwidth must be positive and finite");
  }
  if (boundary == BoundaryPolicy::kBoundaryKernel &&
      kernel.type() != KernelType::kEpanechnikov) {
    return InvalidArgumentError(
        "boundary kernels extend the Epanechnikov kernel only");
  }
  std::vector<double> samples(sample.begin(), sample.end());
  const size_t original_count = samples.size();
  if (boundary == BoundaryPolicy::kReflection) {
    // Mirror samples within one kernel radius of each boundary (§3.2.1);
    // those samples are counted twice.
    const double radius = kernel.support_radius() * bandwidth;
    for (size_t i = 0; i < original_count; ++i) {
      const double x = samples[i];
      if (x - domain.lo < radius) samples.push_back(2.0 * domain.lo - x);
      if (domain.hi - x < radius) samples.push_back(2.0 * domain.hi - x);
    }
  }
  std::sort(samples.begin(), samples.end());
  return Kde(std::move(samples), original_count, bandwidth, domain, kernel,
             boundary);
}

Kde::Kde(std::vector<double> samples, size_t original_count, double bandwidth,
         const Domain& domain, Kernel kernel, BoundaryPolicy boundary)
    : samples_(std::move(samples)),
      original_count_(original_count),
      bandwidth_(bandwidth),
      domain_(domain),
      kernel_(kernel),
      boundary_(boundary) {}

double Kde::Density(double x) const {
  if (boundary_ == BoundaryPolicy::kBoundaryKernel) {
    return BoundaryKernelDensity(x);
  }
  return PlainDensity(x);
}

double Kde::PlainDensity(double x) const {
  const double radius = kernel_.support_radius() * bandwidth_;
  const auto first =
      std::lower_bound(samples_.begin(), samples_.end(), x - radius);
  const auto last =
      std::upper_bound(samples_.begin(), samples_.end(), x + radius);
  double sum = 0.0;
  for (auto it = first; it != last; ++it) {
    sum += kernel_.Value((x - *it) / bandwidth_);
  }
  // Normalization uses the original n even when reflected copies exist:
  // reflection re-assigns each boundary sample's outside mass, it does not
  // add samples.
  return sum / (static_cast<double>(original_count_) * bandwidth_);
}

double Kde::BoundaryKernelDensity(double x) const {
  const double h = bandwidth_;
  const bool near_left = x - domain_.lo < h;
  const bool near_right = domain_.hi - x < h;
  if (!near_left && !near_right) return PlainDensity(x);

  double sum = 0.0;
  if (near_left) {
    const double q = std::clamp((x - domain_.lo) / h, 0.0, 1.0);
    // Support of K^(l)((x−X)/h, q) is X in [x − qh, x + h].
    const auto first =
        std::lower_bound(samples_.begin(), samples_.end(), x - q * h);
    const auto last =
        std::upper_bound(samples_.begin(), samples_.end(), x + h);
    for (auto it = first; it != last; ++it) {
      sum += LeftBoundaryKernel((x - *it) / h, q);
    }
  } else {
    const double q = std::clamp((domain_.hi - x) / h, 0.0, 1.0);
    // Support of K^(r)((x−X)/h, q) is X in [x − h, x + qh].
    const auto first =
        std::lower_bound(samples_.begin(), samples_.end(), x - h);
    const auto last =
        std::upper_bound(samples_.begin(), samples_.end(), x + q * h);
    for (auto it = first; it != last; ++it) {
      sum += RightBoundaryKernel((x - *it) / h, q);
    }
  }
  return sum / (static_cast<double>(original_count_) * h);
}

}  // namespace selest
