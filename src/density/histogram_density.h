// The shared core of all histogram estimators (§3.1).
//
// A histogram partitions the domain into bins (c_i, c_{i+1}] with counts
// n_i. The density estimate is f̂_H(x) = (1/n) Σ (n_i / h_i) 1[x in bin i]
// and the selectivity of Q(a, b) follows formula (4):
//
//   σ̂_H(a, b) = (1/n) Σ_i (n_i / h_i) ψ_i(a, b)
//
// with ψ_i the length of the overlap between the query and bin i. The bin
// *placement* policies (equi-width, equi-depth, max-diff, shifted) live in
// src/est; they all delegate the arithmetic to BinnedDensity.
#ifndef SELEST_DENSITY_HISTOGRAM_DENSITY_H_
#define SELEST_DENSITY_HISTOGRAM_DENSITY_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/util/simd.h"
#include "src/util/status.h"

namespace selest {

// An immutable histogram: k+1 edges and k counts. Zero-width bins are
// permitted (equi-depth histograms over heavily duplicated data collapse
// quantile edges) and are treated as atoms: their count contributes fully
// whenever the query covers the bin's position.
class BinnedDensity {
 public:
  // `edges` must be non-decreasing with at least two entries;
  // `counts` must have edges.size()−1 entries. `total_count` is the sample
  // size n used for normalization (usually the sum of counts, but the
  // average shifted histogram normalizes shifted copies differently).
  static StatusOr<BinnedDensity> Create(std::vector<double> edges,
                                        std::vector<double> counts,
                                        double total_count);

  // Convenience: buckets `sample` into the bins defined by `edges` (values
  // outside the edge range are clamped into the first/last bin) and
  // normalizes by the sample size.
  static StatusOr<BinnedDensity> FromSample(std::span<const double> sample,
                                            std::vector<double> edges);

  size_t num_bins() const { return counts_.size(); }
  // Edges and counts live in contiguous 64-byte-aligned strips (SoA hot
  // state for the vector batch kernels; DESIGN.md §12).
  const AlignedDoubles& edges() const { return edges_; }
  const AlignedDoubles& counts() const { return counts_; }
  double total_count() const { return total_count_; }

  // Density estimate f̂_H(x); atoms (zero-width bins) return +inf at their
  // position and are better handled through Selectivity.
  double Density(double x) const;

  // Selectivity of [a, b] per formula (4). Atoms contribute fully when
  // a <= c <= b. Returns a value in [0, 1] (up to rounding).
  double Selectivity(double a, double b) const;

  // Selectivity for one SIMD block: ops.width queries at a time, each
  // out[k] bit-identical to Selectivity(a[k], b[k]). Arrays must be
  // ops.width long and kSimdAlign-aligned.
  void SelectivityBlock(const SimdOps& ops, const double* a, const double* b,
                        double* out) const {
    ops.histogram_block(edges_.data(), counts_.data(),
                        static_cast<int64_t>(counts_.size()), total_count_, a,
                        b, out);
  }

  // Bytes of storage for the edges + counts: what a system catalog would
  // persist.
  size_t StorageBytes() const;

  // This histogram plus `other`, which must share the exact edge vector:
  // counts and totals add, so the result equals bucketing the union of the
  // two underlying samples (the live server's exact merge path).
  StatusOr<BinnedDensity> MergedWith(const BinnedDensity& other) const;

  // This histogram with `values` bucketed into the existing bins (the same
  // clamping rule as FromSample) and the total raised by values.size().
  // Exact: folding rows one batch at a time equals bucketing them all at
  // once. An empty span returns an unchanged copy.
  BinnedDensity FoldedWith(std::span<const double> values) const;

  // Cumulative mass strictly derived state: total mass at or below `x`
  // (atoms at `x` included). Used by the equi-depth quantile merge.
  double MassBelow(double x) const;

 private:
  BinnedDensity(AlignedDoubles edges, AlignedDoubles counts,
                double total_count)
      : edges_(std::move(edges)),
        counts_(std::move(counts)),
        total_count_(total_count) {}

  AlignedDoubles edges_;
  AlignedDoubles counts_;
  double total_count_;
};

}  // namespace selest

#endif  // SELEST_DENSITY_HISTOGRAM_DENSITY_H_
