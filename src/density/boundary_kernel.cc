#include "src/density/boundary_kernel.h"

#include "src/util/check.h"

namespace selest {

double LeftBoundaryKernel(double u, double q) {
  SELEST_CHECK_GE(q, 0.0);
  SELEST_CHECK_LE(q, 1.0);
  if (u < -1.0 || u > q) return 0.0;
  const double one_plus_q = 1.0 + q;
  return (3.0 + 3.0 * q * q - 6.0 * u * u) /
         (one_plus_q * one_plus_q * one_plus_q);
}

double RightBoundaryKernel(double u, double q) {
  return LeftBoundaryKernel(-u, q);
}

double LeftBoundaryKernelMoment0(double q) {
  // ∫_{−1}^{q} (3 + 3q² − 6u²) du = (1+q)³, so the normalized integral is 1
  // identically; evaluated explicitly here for test transparency.
  const double one_plus_q = 1.0 + q;
  const double raw = 3.0 * one_plus_q + 3.0 * q * q * one_plus_q -
                     2.0 * (q * q * q + 1.0);
  return raw / (one_plus_q * one_plus_q * one_plus_q);
}

double LeftBoundaryKernelMoment1(double q) {
  // ∫_{−1}^{q} u (3 + 3q² − 6u²) du = 0 identically (second-order kernel).
  const double q2 = q * q;
  const double raw = (3.0 + 3.0 * q2) * 0.5 * (q2 - 1.0) -
                     1.5 * (q2 * q2 - 1.0);
  const double one_plus_q = 1.0 + q;
  return raw / (one_plus_q * one_plus_q * one_plus_q);
}

}  // namespace selest
