#include "src/density/kernel.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace selest {
namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

Kernel::Kernel(KernelType type) : type_(type) {}

double Kernel::Value(double t) const {
  const double abs_t = std::fabs(t);
  switch (type_) {
    case KernelType::kEpanechnikov:
      return abs_t <= 1.0 ? 0.75 * (1.0 - t * t) : 0.0;
    case KernelType::kBiweight: {
      if (abs_t > 1.0) return 0.0;
      const double w = 1.0 - t * t;
      return (15.0 / 16.0) * w * w;
    }
    case KernelType::kTriangular:
      return abs_t <= 1.0 ? 1.0 - abs_t : 0.0;
    case KernelType::kUniform:
      return abs_t <= 1.0 ? 0.5 : 0.0;
    case KernelType::kGaussian:
      return std::exp(-0.5 * t * t) / std::sqrt(2.0 * std::numbers::pi);
  }
  return 0.0;
}

double Kernel::Cdf(double t) const {
  switch (type_) {
    case KernelType::kEpanechnikov: {
      if (t <= -1.0) return 0.0;
      if (t >= 1.0) return 1.0;
      // 0.5 + F_K(t) with the paper's primitive F_K(t) = (3t − t³)/4.
      return 0.5 + 0.25 * (3.0 * t - t * t * t);
    }
    case KernelType::kBiweight: {
      if (t <= -1.0) return 0.0;
      if (t >= 1.0) return 1.0;
      const double t3 = t * t * t;
      return 0.5 + (15.0 / 16.0) * (t - 2.0 * t3 / 3.0 + t3 * t * t / 5.0);
    }
    case KernelType::kTriangular: {
      if (t <= -1.0) return 0.0;
      if (t >= 1.0) return 1.0;
      if (t < 0.0) {
        const double u = 1.0 + t;
        return 0.5 * u * u;
      }
      const double u = 1.0 - t;
      return 1.0 - 0.5 * u * u;
    }
    case KernelType::kUniform:
      return Clamp01(0.5 * (t + 1.0));
    case KernelType::kGaussian:
      return 0.5 * std::erfc(-t / std::numbers::sqrt2);
  }
  return 0.0;
}

double Kernel::support_radius() const {
  // 6 sigma leaves < 1e-8 Gaussian mass outside; all others are compact.
  return type_ == KernelType::kGaussian ? 6.0 : 1.0;
}

double Kernel::squared_l2_norm() const {
  switch (type_) {
    case KernelType::kEpanechnikov:
      return 3.0 / 5.0;
    case KernelType::kBiweight:
      return 5.0 / 7.0;
    case KernelType::kTriangular:
      return 2.0 / 3.0;
    case KernelType::kUniform:
      return 0.5;
    case KernelType::kGaussian:
      return 1.0 / (2.0 * std::sqrt(std::numbers::pi));
  }
  return 0.0;
}

double Kernel::second_moment() const {
  switch (type_) {
    case KernelType::kEpanechnikov:
      return 1.0 / 5.0;
    case KernelType::kBiweight:
      return 1.0 / 7.0;
    case KernelType::kTriangular:
      return 1.0 / 6.0;
    case KernelType::kUniform:
      return 1.0 / 3.0;
    case KernelType::kGaussian:
      return 1.0;
  }
  return 0.0;
}

double Kernel::normal_scale_constant() const {
  const double r = squared_l2_norm();
  const double k2 = second_moment();
  return std::pow(8.0 * std::sqrt(std::numbers::pi) * r / (3.0 * k2 * k2),
                  0.2);
}

std::string Kernel::name() const {
  switch (type_) {
    case KernelType::kEpanechnikov:
      return "epanechnikov";
    case KernelType::kBiweight:
      return "biweight";
    case KernelType::kTriangular:
      return "triangular";
    case KernelType::kUniform:
      return "uniform";
    case KernelType::kGaussian:
      return "gaussian";
  }
  return "unknown";
}

}  // namespace selest
