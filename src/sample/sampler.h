// Random sampling of relations.
//
// Every nonparametric estimator in the paper is built from a small random
// sample of the relation — §5.1.1 draws 2,000 of 100,000+ records "in a
// random fashion without replacement". This module provides that, plus a
// single-pass reservoir variant for streams and Bernoulli sampling for
// completeness.
#ifndef SELEST_SAMPLE_SAMPLER_H_
#define SELEST_SAMPLE_SAMPLER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/util/random.h"
#include "src/util/status.h"

namespace selest {

// The Try* forms are Status-first: a sample size exceeding the population
// (reachable whenever the population is an externally supplied data file)
// or a rate outside [0, 1] is an error, never an abort. The plain forms
// keep the historical aborting contract for call sites that already hold
// the precondition.

// Draws `sample_size` elements uniformly without replacement. Uses Floyd's
// algorithm: O(sample_size) time and space regardless of population size.
// Requires sample_size <= population.size(). Order of the result is random.
StatusOr<std::vector<double>> TrySampleWithoutReplacement(
    std::span<const double> population, size_t sample_size, Rng& rng);
std::vector<double> SampleWithoutReplacement(std::span<const double> population,
                                             size_t sample_size, Rng& rng);

// Algorithm R reservoir sampling: one pass, O(population) time, suitable
// when the population is only available as a stream. Produces a uniform
// sample without replacement. Requires sample_size <= population.size().
StatusOr<std::vector<double>> TryReservoirSample(
    std::span<const double> population, size_t sample_size, Rng& rng);
std::vector<double> ReservoirSample(std::span<const double> population,
                                    size_t sample_size, Rng& rng);

// Keeps each element independently with probability `rate` (0 <= rate <= 1).
// The sample size is binomial, not fixed.
StatusOr<std::vector<double>> TryBernoulliSample(
    std::span<const double> population, double rate, Rng& rng);
std::vector<double> BernoulliSample(std::span<const double> population,
                                    double rate, Rng& rng);

// A fixed-capacity sample of an unbounded stream, the live-server ingest
// substrate feeding the sampling/kernel estimators across rebuilds.
//
// With decay == 0 this is exactly Algorithm R: after t items every item is
// resident with probability capacity/t (uniform over the whole stream).
// With decay in (0, 1], once the reservoir is full each arriving item
// replaces a uniformly random slot with probability `decay`, so residence
// probabilities fall geometrically with age — a recency-biased sample for
// workloads whose distribution drifts (Aggarwal's biased reservoir, with a
// fixed fill rate). Deterministic for a given (seed, stream) pair.
class DecayingReservoir {
 public:
  // `capacity` must be positive; `decay` in [0, 1].
  DecayingReservoir(size_t capacity, double decay = 0.0, uint64_t seed = 1);

  void Add(double value);
  void AddBatch(std::span<const double> values);

  // The resident sample, in slot order (not sorted, not insertion order).
  std::span<const double> values() const { return values_; }
  size_t size() const { return values_.size(); }
  size_t capacity() const { return capacity_; }
  double decay() const { return decay_; }
  // Stream length observed so far.
  uint64_t items_seen() const { return items_seen_; }

  // Folds `other` in as if its stream had been appended to this one: the
  // result holds each slot from this reservoir or a replacement drawn from
  // `other`, with replacement probability other.items_seen() / combined
  // items_seen (uniform case), so the merged reservoir approximates a
  // sample of the concatenated streams. Requires equal capacities.
  Status MergeFrom(const DecayingReservoir& other);

 private:
  size_t capacity_;
  double decay_;
  Rng rng_;
  uint64_t items_seen_ = 0;
  std::vector<double> values_;
};

}  // namespace selest

#endif  // SELEST_SAMPLE_SAMPLER_H_
