// Random sampling of relations.
//
// Every nonparametric estimator in the paper is built from a small random
// sample of the relation — §5.1.1 draws 2,000 of 100,000+ records "in a
// random fashion without replacement". This module provides that, plus a
// single-pass reservoir variant for streams and Bernoulli sampling for
// completeness.
#ifndef SELEST_SAMPLE_SAMPLER_H_
#define SELEST_SAMPLE_SAMPLER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/util/random.h"
#include "src/util/status.h"

namespace selest {

// The Try* forms are Status-first: a sample size exceeding the population
// (reachable whenever the population is an externally supplied data file)
// or a rate outside [0, 1] is an error, never an abort. The plain forms
// keep the historical aborting contract for call sites that already hold
// the precondition.

// Draws `sample_size` elements uniformly without replacement. Uses Floyd's
// algorithm: O(sample_size) time and space regardless of population size.
// Requires sample_size <= population.size(). Order of the result is random.
StatusOr<std::vector<double>> TrySampleWithoutReplacement(
    std::span<const double> population, size_t sample_size, Rng& rng);
std::vector<double> SampleWithoutReplacement(std::span<const double> population,
                                             size_t sample_size, Rng& rng);

// Algorithm R reservoir sampling: one pass, O(population) time, suitable
// when the population is only available as a stream. Produces a uniform
// sample without replacement. Requires sample_size <= population.size().
StatusOr<std::vector<double>> TryReservoirSample(
    std::span<const double> population, size_t sample_size, Rng& rng);
std::vector<double> ReservoirSample(std::span<const double> population,
                                    size_t sample_size, Rng& rng);

// Keeps each element independently with probability `rate` (0 <= rate <= 1).
// The sample size is binomial, not fixed.
StatusOr<std::vector<double>> TryBernoulliSample(
    std::span<const double> population, double rate, Rng& rng);
std::vector<double> BernoulliSample(std::span<const double> population,
                                    double rate, Rng& rng);

}  // namespace selest

#endif  // SELEST_SAMPLE_SAMPLER_H_
