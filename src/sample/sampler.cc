#include "src/sample/sampler.h"

#include <unordered_set>

#include "src/util/check.h"

namespace selest {

std::vector<double> SampleWithoutReplacement(std::span<const double> population,
                                             size_t sample_size, Rng& rng) {
  SELEST_CHECK_LE(sample_size, population.size());
  const size_t n = population.size();
  // Floyd's algorithm over indices: for j = n-k .. n-1 pick t in [0, j];
  // insert t, or j if t was already chosen.
  std::unordered_set<size_t> chosen;
  chosen.reserve(sample_size * 2);
  std::vector<double> sample;
  sample.reserve(sample_size);
  for (size_t j = n - sample_size; j < n; ++j) {
    const size_t t = static_cast<size_t>(rng.NextUint64(j + 1));
    const size_t pick = chosen.insert(t).second ? t : j;
    if (pick != t) chosen.insert(pick);
    sample.push_back(population[pick]);
  }
  return sample;
}

std::vector<double> ReservoirSample(std::span<const double> population,
                                    size_t sample_size, Rng& rng) {
  SELEST_CHECK_LE(sample_size, population.size());
  std::vector<double> reservoir(population.begin(),
                                population.begin() + sample_size);
  for (size_t i = sample_size; i < population.size(); ++i) {
    const size_t j = static_cast<size_t>(rng.NextUint64(i + 1));
    if (j < sample_size) reservoir[j] = population[i];
  }
  return reservoir;
}

std::vector<double> BernoulliSample(std::span<const double> population,
                                    double rate, Rng& rng) {
  SELEST_CHECK_GE(rate, 0.0);
  SELEST_CHECK_LE(rate, 1.0);
  std::vector<double> sample;
  for (double v : population) {
    if (rng.NextDouble() < rate) sample.push_back(v);
  }
  return sample;
}

}  // namespace selest
