#include "src/sample/sampler.h"

#include <unordered_set>

#include "src/util/check.h"

namespace selest {

StatusOr<std::vector<double>> TrySampleWithoutReplacement(
    std::span<const double> population, size_t sample_size, Rng& rng) {
  if (sample_size > population.size()) {
    return InvalidArgumentError(
        "cannot sample " + std::to_string(sample_size) +
        " values without replacement from a population of " +
        std::to_string(population.size()));
  }
  const size_t n = population.size();
  // Floyd's algorithm over indices: for j = n-k .. n-1 pick t in [0, j];
  // insert t, or j if t was already chosen.
  std::unordered_set<size_t> chosen;
  chosen.reserve(sample_size * 2);
  std::vector<double> sample;
  sample.reserve(sample_size);
  for (size_t j = n - sample_size; j < n; ++j) {
    const size_t t = static_cast<size_t>(rng.NextUint64(j + 1));
    const size_t pick = chosen.insert(t).second ? t : j;
    if (pick != t) chosen.insert(pick);
    sample.push_back(population[pick]);
  }
  return sample;
}

std::vector<double> SampleWithoutReplacement(std::span<const double> population,
                                             size_t sample_size, Rng& rng) {
  auto sample = TrySampleWithoutReplacement(population, sample_size, rng);
  SELEST_CHECK(sample.ok());
  return std::move(sample).value();
}

StatusOr<std::vector<double>> TryReservoirSample(
    std::span<const double> population, size_t sample_size, Rng& rng) {
  if (sample_size > population.size()) {
    return InvalidArgumentError(
        "reservoir of " + std::to_string(sample_size) +
        " exceeds the population of " + std::to_string(population.size()));
  }
  std::vector<double> reservoir(population.begin(),
                                population.begin() + sample_size);
  for (size_t i = sample_size; i < population.size(); ++i) {
    const size_t j = static_cast<size_t>(rng.NextUint64(i + 1));
    if (j < sample_size) reservoir[j] = population[i];
  }
  return reservoir;
}

std::vector<double> ReservoirSample(std::span<const double> population,
                                    size_t sample_size, Rng& rng) {
  auto sample = TryReservoirSample(population, sample_size, rng);
  SELEST_CHECK(sample.ok());
  return std::move(sample).value();
}

StatusOr<std::vector<double>> TryBernoulliSample(
    std::span<const double> population, double rate, Rng& rng) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    return InvalidArgumentError("Bernoulli rate must be in [0, 1]");
  }
  std::vector<double> sample;
  for (double v : population) {
    if (rng.NextDouble() < rate) sample.push_back(v);
  }
  return sample;
}

std::vector<double> BernoulliSample(std::span<const double> population,
                                    double rate, Rng& rng) {
  auto sample = TryBernoulliSample(population, rate, rng);
  SELEST_CHECK(sample.ok());
  return std::move(sample).value();
}

}  // namespace selest
