#include "src/sample/sampler.h"

#include <unordered_set>

#include "src/util/check.h"

namespace selest {

StatusOr<std::vector<double>> TrySampleWithoutReplacement(
    std::span<const double> population, size_t sample_size, Rng& rng) {
  if (sample_size > population.size()) {
    return InvalidArgumentError(
        "cannot sample " + std::to_string(sample_size) +
        " values without replacement from a population of " +
        std::to_string(population.size()));
  }
  const size_t n = population.size();
  // Floyd's algorithm over indices: for j = n-k .. n-1 pick t in [0, j];
  // insert t, or j if t was already chosen.
  std::unordered_set<size_t> chosen;
  chosen.reserve(sample_size * 2);
  std::vector<double> sample;
  sample.reserve(sample_size);
  for (size_t j = n - sample_size; j < n; ++j) {
    const size_t t = static_cast<size_t>(rng.NextUint64(j + 1));
    const size_t pick = chosen.insert(t).second ? t : j;
    if (pick != t) chosen.insert(pick);
    sample.push_back(population[pick]);
  }
  return sample;
}

std::vector<double> SampleWithoutReplacement(std::span<const double> population,
                                             size_t sample_size, Rng& rng) {
  auto sample = TrySampleWithoutReplacement(population, sample_size, rng);
  SELEST_CHECK(sample.ok());
  return std::move(sample).value();
}

StatusOr<std::vector<double>> TryReservoirSample(
    std::span<const double> population, size_t sample_size, Rng& rng) {
  if (sample_size > population.size()) {
    return InvalidArgumentError(
        "reservoir of " + std::to_string(sample_size) +
        " exceeds the population of " + std::to_string(population.size()));
  }
  std::vector<double> reservoir(population.begin(),
                                population.begin() + sample_size);
  for (size_t i = sample_size; i < population.size(); ++i) {
    const size_t j = static_cast<size_t>(rng.NextUint64(i + 1));
    if (j < sample_size) reservoir[j] = population[i];
  }
  return reservoir;
}

std::vector<double> ReservoirSample(std::span<const double> population,
                                    size_t sample_size, Rng& rng) {
  auto sample = TryReservoirSample(population, sample_size, rng);
  SELEST_CHECK(sample.ok());
  return std::move(sample).value();
}

StatusOr<std::vector<double>> TryBernoulliSample(
    std::span<const double> population, double rate, Rng& rng) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    return InvalidArgumentError("Bernoulli rate must be in [0, 1]");
  }
  std::vector<double> sample;
  for (double v : population) {
    if (rng.NextDouble() < rate) sample.push_back(v);
  }
  return sample;
}

std::vector<double> BernoulliSample(std::span<const double> population,
                                    double rate, Rng& rng) {
  auto sample = TryBernoulliSample(population, rate, rng);
  SELEST_CHECK(sample.ok());
  return std::move(sample).value();
}

DecayingReservoir::DecayingReservoir(size_t capacity, double decay,
                                     uint64_t seed)
    : capacity_(capacity), decay_(decay), rng_(seed) {
  SELEST_CHECK_GT(capacity, 0u);
  SELEST_CHECK(decay >= 0.0 && decay <= 1.0);
  values_.reserve(capacity);
}

void DecayingReservoir::Add(double value) {
  ++items_seen_;
  if (values_.size() < capacity_) {
    values_.push_back(value);
    return;
  }
  if (decay_ > 0.0) {
    // Recency bias: admit with fixed probability, landing on a uniform slot.
    if (rng_.NextDouble() < decay_) {
      values_[static_cast<size_t>(rng_.NextUint64(capacity_))] = value;
    }
    return;
  }
  // Algorithm R: admit the t-th item with probability capacity/t.
  const uint64_t j = rng_.NextUint64(items_seen_);
  if (j < capacity_) values_[static_cast<size_t>(j)] = value;
}

void DecayingReservoir::AddBatch(std::span<const double> values) {
  for (double v : values) Add(v);
}

Status DecayingReservoir::MergeFrom(const DecayingReservoir& other) {
  if (other.capacity_ != capacity_) {
    return InvalidArgumentError(
        "cannot merge reservoirs of different capacities");
  }
  if (other.items_seen_ == 0) return Status::Ok();
  if (items_seen_ == 0) {
    values_ = other.values_;
    items_seen_ = other.items_seen_;
    return Status::Ok();
  }
  // Underfull reservoirs hold their streams verbatim; concatenating and
  // replaying preserves exactness when the union still fits.
  if (values_.size() < capacity_ || other.values_.size() < other.capacity_) {
    const std::vector<double> peer(other.values_.begin(),
                                   other.values_.end());
    const uint64_t peer_seen = other.items_seen_;
    AddBatch(peer);
    items_seen_ += peer_seen - peer.size();  // count unseen evicted items
    return Status::Ok();
  }
  // Both full: keep each slot from `this` or take the peer's slot with
  // probability proportional to the peer's stream share.
  const double peer_share =
      static_cast<double>(other.items_seen_) /
      static_cast<double>(items_seen_ + other.items_seen_);
  for (size_t i = 0; i < values_.size(); ++i) {
    if (rng_.NextDouble() < peer_share) values_[i] = other.values_[i];
  }
  items_seen_ += other.items_seen_;
  return Status::Ok();
}

}  // namespace selest
