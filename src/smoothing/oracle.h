// Oracle smoothing-parameter search ("h-opt" in §5.2).
//
// The paper benchmarks its practical rules against the smoothing parameter
// with the lowest observed MRE — not a practical method (it needs the true
// result sizes) but the yardstick of Figs. 9 and 11. The search is generic
// over any objective(h): a coarse log-spaced grid scan followed by a
// golden-section refinement around the winner.
#ifndef SELEST_SMOOTHING_ORACLE_H_
#define SELEST_SMOOTHING_ORACLE_H_

#include <functional>

namespace selest {

struct OracleSearchOptions {
  // Grid points in the initial log-spaced scan.
  int grid_steps = 40;
  // Width (in grid steps) of the bracket refined by golden section.
  bool refine = true;
  // Relative tolerance of the refinement.
  double tolerance = 1e-3;
};

// Minimizes objective(h) over h in [lo, hi] (0 < lo < hi) and returns the
// winning h. The objective is typically the empirical MRE of an estimator
// rebuilt with smoothing parameter h.
double FindOptimalSmoothing(const std::function<double(double)>& objective,
                            double lo, double hi,
                            const OracleSearchOptions& options = {});

// Integer variant for bin counts: scans every k in [lo_bins, hi_bins]
// with geometric-ish stride (all values up to 64, then ~5% steps) and
// returns the k with the smallest objective.
int FindOptimalBinCount(const std::function<double(int)>& objective,
                        int lo_bins, int hi_bins);

}  // namespace selest

#endif  // SELEST_SMOOTHING_ORACLE_H_
