#include "src/smoothing/normal_scale.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace selest {

StatusOr<double> TryNormalScaleBinWidth(std::span<const double> sample,
                                        const Domain& domain) {
  if (sample.empty()) {
    return InvalidArgumentError("normal scale rule needs a non-empty sample");
  }
  const double s = NormalScaleSigma(sample);
  if (s <= 0.0) return domain.width() / 10.0;
  const double n = static_cast<double>(sample.size());
  const double constant =
      std::cbrt(24.0 * std::sqrt(std::numbers::pi));  // ≈ 3.49
  return constant * s * std::pow(n, -1.0 / 3.0);
}

double NormalScaleBinWidth(std::span<const double> sample,
                           const Domain& domain) {
  auto width = TryNormalScaleBinWidth(sample, domain);
  SELEST_CHECK(width.ok());
  return width.value();
}

StatusOr<int> TryNormalScaleNumBins(std::span<const double> sample,
                                    const Domain& domain) {
  SELEST_ASSIGN_OR_RETURN(const double width,
                          TryNormalScaleBinWidth(sample, domain));
  const double bins = domain.width() / width;
  return std::max(1, static_cast<int>(std::lround(bins)));
}

int NormalScaleNumBins(std::span<const double> sample, const Domain& domain) {
  auto bins = TryNormalScaleNumBins(sample, domain);
  SELEST_CHECK(bins.ok());
  return bins.value();
}

StatusOr<double> TryNormalScaleBandwidth(std::span<const double> sample,
                                         const Domain& domain,
                                         const Kernel& kernel) {
  if (sample.empty()) {
    return InvalidArgumentError("normal scale rule needs a non-empty sample");
  }
  const double s = NormalScaleSigma(sample);
  if (s <= 0.0) return domain.width() / 100.0;
  const double n = static_cast<double>(sample.size());
  return kernel.normal_scale_constant() * s * std::pow(n, -0.2);
}

double NormalScaleBandwidth(std::span<const double> sample,
                            const Domain& domain, const Kernel& kernel) {
  auto bandwidth = TryNormalScaleBandwidth(sample, domain, kernel);
  SELEST_CHECK(bandwidth.ok());
  return bandwidth.value();
}

}  // namespace selest
