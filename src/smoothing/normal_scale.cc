#include "src/smoothing/normal_scale.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace selest {

double NormalScaleBinWidth(std::span<const double> sample,
                           const Domain& domain) {
  SELEST_CHECK(!sample.empty());
  const double s = NormalScaleSigma(sample);
  if (s <= 0.0) return domain.width() / 10.0;
  const double n = static_cast<double>(sample.size());
  const double constant =
      std::cbrt(24.0 * std::sqrt(std::numbers::pi));  // ≈ 3.49
  return constant * s * std::pow(n, -1.0 / 3.0);
}

int NormalScaleNumBins(std::span<const double> sample, const Domain& domain) {
  const double width = NormalScaleBinWidth(sample, domain);
  const double bins = domain.width() / width;
  return std::max(1, static_cast<int>(std::lround(bins)));
}

double NormalScaleBandwidth(std::span<const double> sample,
                            const Domain& domain, const Kernel& kernel) {
  SELEST_CHECK(!sample.empty());
  const double s = NormalScaleSigma(sample);
  if (s <= 0.0) return domain.width() / 100.0;
  const double n = static_cast<double>(sample.size());
  return kernel.normal_scale_constant() * s * std::pow(n, -0.2);
}

}  // namespace selest
