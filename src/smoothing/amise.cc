#include "src/smoothing/amise.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace selest {

double DensityDerivativeRoughness(const Distribution& distribution, double lo,
                                  double hi) {
  SELEST_CHECK_LT(lo, hi);
  return AdaptiveSimpson(
      [&distribution](double x) {
        const double d = distribution.PdfDerivative(x);
        return d * d;
      },
      lo, hi, 1e-12);
}

double DensitySecondDerivativeRoughness(const Distribution& distribution,
                                        double lo, double hi) {
  SELEST_CHECK_LT(lo, hi);
  return AdaptiveSimpson(
      [&distribution](double x) {
        const double d = distribution.PdfSecondDerivative(x);
        return d * d;
      },
      lo, hi, 1e-12);
}

double HistogramAmise(double bin_width, size_t n, double r_f_prime) {
  SELEST_CHECK_GT(bin_width, 0.0);
  SELEST_CHECK_GT(n, 0u);
  return 1.0 / (static_cast<double>(n) * bin_width) +
         bin_width * bin_width / 12.0 * r_f_prime;
}

double OptimalBinWidth(size_t n, double r_f_prime) {
  SELEST_CHECK_GT(n, 0u);
  SELEST_CHECK_GT(r_f_prime, 0.0);
  return std::cbrt(6.0 / (static_cast<double>(n) * r_f_prime));
}

double KernelAmise(double bandwidth, size_t n, double r_f_second,
                   const Kernel& kernel) {
  SELEST_CHECK_GT(bandwidth, 0.0);
  SELEST_CHECK_GT(n, 0u);
  const double k2 = kernel.second_moment();
  const double h4 = bandwidth * bandwidth * bandwidth * bandwidth;
  return kernel.squared_l2_norm() / (static_cast<double>(n) * bandwidth) +
         0.25 * h4 * k2 * k2 * r_f_second;
}

double OptimalBandwidth(size_t n, double r_f_second, const Kernel& kernel) {
  SELEST_CHECK_GT(n, 0u);
  SELEST_CHECK_GT(r_f_second, 0.0);
  const double k2 = kernel.second_moment();
  return std::pow(kernel.squared_l2_norm() /
                      (static_cast<double>(n) * k2 * k2 * r_f_second),
                  0.2);
}

}  // namespace selest
