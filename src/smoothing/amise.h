// AMISE formulas for known densities (§4.1, §4.2).
//
// Used to validate the smoothing rules against the theoretical optimum when
// the generating density is known:
//
//   histogram:  AMISE(h) = 1/(nh) + h²/12 · R(f')
//               h_EW = (6 / (n R(f')))^(1/3),  AMISE(h_EW) = O(n^−2/3)
//   kernel:     AMISE(h) = R(K)/(nh) + h⁴ k2² R(f'') / 4
//               h_K = (R(K) / (n k2² R(f'')))^(1/5), AMISE(h_K) = O(n^−4/5)
//
// where R(g) = ∫ g(x)² dx.
#ifndef SELEST_SMOOTHING_AMISE_H_
#define SELEST_SMOOTHING_AMISE_H_

#include <cstddef>

#include "src/data/distribution.h"
#include "src/density/kernel.h"

namespace selest {

// R(f') = ∫ f'(x)² dx of `distribution`, integrated over [lo, hi] (choose
// the effective support) by adaptive quadrature.
double DensityDerivativeRoughness(const Distribution& distribution, double lo,
                                  double hi);

// R(f'') = ∫ f''(x)² dx over [lo, hi].
double DensitySecondDerivativeRoughness(const Distribution& distribution,
                                        double lo, double hi);

// AMISE of an equi-width histogram with bin width h (§4.1).
double HistogramAmise(double bin_width, size_t n, double r_f_prime);

// Asymptotically optimal equi-width bin width, equation (7).
double OptimalBinWidth(size_t n, double r_f_prime);

// AMISE of a kernel estimator with bandwidth h (§4.2, equation (9)).
double KernelAmise(double bandwidth, size_t n, double r_f_second,
                   const Kernel& kernel = Kernel());

// Asymptotically optimal kernel bandwidth (§4.2).
double OptimalBandwidth(size_t n, double r_f_second,
                        const Kernel& kernel = Kernel());

}  // namespace selest

#endif  // SELEST_SMOOTHING_AMISE_H_
