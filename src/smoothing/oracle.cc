#include "src/smoothing/oracle.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace selest {

double FindOptimalSmoothing(const std::function<double(double)>& objective,
                            double lo, double hi,
                            const OracleSearchOptions& options) {
  SELEST_CHECK_GT(lo, 0.0);
  SELEST_CHECK_LT(lo, hi);
  SELEST_CHECK_GE(options.grid_steps, 2);
  const double coarse = GridMinimize(objective, lo, hi, options.grid_steps);
  if (!options.refine) return coarse;
  // Refine within one grid stride on either side of the coarse winner.
  const double stride =
      std::pow(hi / lo, 1.0 / (options.grid_steps - 1.0));
  const double bracket_lo = std::max(lo, coarse / stride);
  const double bracket_hi = std::min(hi, coarse * stride);
  if (bracket_lo >= bracket_hi) return coarse;
  const double refined = GoldenSectionMinimize(objective, bracket_lo,
                                               bracket_hi, options.tolerance);
  return objective(refined) <= objective(coarse) ? refined : coarse;
}

int FindOptimalBinCount(const std::function<double(int)>& objective,
                        int lo_bins, int hi_bins) {
  SELEST_CHECK_GE(lo_bins, 1);
  SELEST_CHECK_LE(lo_bins, hi_bins);
  int best_k = lo_bins;
  double best_value = objective(lo_bins);
  int k = lo_bins;
  while (k < hi_bins) {
    // Dense at small counts where the error surface is steep, geometric
    // beyond 64 bins.
    k = k < 64 ? k + 1 : std::max(k + 1, static_cast<int>(k * 1.05));
    k = std::min(k, hi_bins);
    const double value = objective(k);
    if (value < best_value) {
      best_value = value;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace selest
