#include "src/smoothing/direct_plug_in.h"

#include <cmath>
#include <numbers>

#include "src/smoothing/normal_scale.h"
#include "src/util/check.h"
#include "src/util/stats.h"

namespace selest {
namespace {

constexpr double kSqrt2Pi = 2.506628274631000502;

// phi^(s)(z) = He_s(z) · phi(z) up to sign; for even s the Hermite
// polynomial form below already carries the correct sign of the derivative.
double GaussianDerivative(int s, double z) {
  const double phi = std::exp(-0.5 * z * z) / kSqrt2Pi;
  const double z2 = z * z;
  switch (s) {
    case 2:
      return (z2 - 1.0) * phi;
    case 4:
      return (z2 * z2 - 6.0 * z2 + 3.0) * phi;
    case 6:
      return (z2 * z2 * z2 - 15.0 * z2 * z2 + 45.0 * z2 - 15.0) * phi;
    case 8:
      return (z2 * z2 * z2 * z2 - 28.0 * z2 * z2 * z2 + 210.0 * z2 * z2 -
              420.0 * z2 + 105.0) *
             phi;
    default:
      SELEST_CHECK(false);
  }
  return 0.0;
}

double GaussianDerivativeAtZero(int s) { return GaussianDerivative(s, 0.0); }

double Factorial(int k) {
  double result = 1.0;
  for (int i = 2; i <= k; ++i) result *= i;
  return result;
}

// Pilot bandwidth for estimating psi_s, given psi_{s+2} (Wand & Jones):
//   g = ( −2 phi^(s)(0) / (psi_{s+2} · n) )^(1/(s+3))
double PilotBandwidth(int s, double psi_next, size_t n) {
  const double numerator = -2.0 * GaussianDerivativeAtZero(s);
  const double value = numerator / (psi_next * static_cast<double>(n));
  if (!(value > 0.0)) return 0.0;  // degenerate; caller falls back
  return std::pow(value, 1.0 / (s + 3.0));
}

}  // namespace

double EstimatePsiFunctional(std::span<const double> sample, int s, double g) {
  SELEST_CHECK(s == 2 || s == 4 || s == 6 || s == 8);
  SELEST_CHECK_GT(g, 0.0);
  SELEST_CHECK(!sample.empty());
  const size_t n = sample.size();
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // Diagonal term (i == j) once, off-diagonal pairs twice via symmetry.
    sum += GaussianDerivativeAtZero(s);
    for (size_t j = i + 1; j < n; ++j) {
      sum += 2.0 * GaussianDerivative(s, (sample[i] - sample[j]) / g);
    }
  }
  const double scale = std::pow(g, s + 1.0);
  return sum / (static_cast<double>(n) * static_cast<double>(n) * scale);
}

double NormalScalePsi(int s, double sigma) {
  SELEST_CHECK(s % 2 == 0);
  SELEST_CHECK_GT(sigma, 0.0);
  const int half = s / 2;
  const double sign = half % 2 == 0 ? 1.0 : -1.0;
  return sign * Factorial(s) /
         (std::pow(2.0 * sigma, s + 1.0) * Factorial(half) *
          std::sqrt(std::numbers::pi));
}

namespace {

// Shared validation for the Try* entry points.
Status ValidatePlugInInput(std::span<const double> sample, int stages) {
  if (sample.empty()) {
    return InvalidArgumentError("direct plug-in rule needs a non-empty sample");
  }
  if (stages < 1 || stages > 3) {
    return InvalidArgumentError("direct plug-in stages must be in [1, 3]");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<double> TryDirectPlugInBandwidth(std::span<const double> sample,
                                          const Domain& domain,
                                          const Kernel& kernel, int stages) {
  SELEST_RETURN_IF_ERROR(ValidatePlugInInput(sample, stages));
  return DirectPlugInBandwidth(sample, domain, kernel, stages);
}

double DirectPlugInBandwidth(std::span<const double> sample,
                             const Domain& domain, const Kernel& kernel,
                             int stages) {
  SELEST_CHECK_GE(stages, 1);
  SELEST_CHECK_LE(stages, 3);
  SELEST_CHECK(!sample.empty());
  const double fallback = NormalScaleBandwidth(sample, domain, kernel);
  const double sigma = NormalScaleSigma(sample);
  if (sigma <= 0.0) return fallback;
  const size_t n = sample.size();

  // Stage ladder: psi_{2·stages+4} from the normal scale, then estimate
  // psi_{2j+2} for j = stages..1, ending at psi_4 = R(f'').
  double psi_next = NormalScalePsi(2 * stages + 4, sigma);
  for (int j = stages; j >= 1; --j) {
    const int s = 2 * j + 2;
    const double g = PilotBandwidth(s, psi_next, n);
    if (g <= 0.0) return fallback;
    psi_next = EstimatePsiFunctional(sample, s, g);
  }
  const double psi4 = psi_next;  // R(f'')
  if (!(psi4 > 0.0)) return fallback;
  const double r_k = kernel.squared_l2_norm();
  const double k2 = kernel.second_moment();
  return std::pow(r_k / (k2 * k2 * psi4 * static_cast<double>(n)), 0.2);
}

StatusOr<double> TryDirectPlugInBinWidth(std::span<const double> sample,
                                         const Domain& domain, int stages) {
  SELEST_RETURN_IF_ERROR(ValidatePlugInInput(sample, stages));
  return DirectPlugInBinWidth(sample, domain, stages);
}

double DirectPlugInBinWidth(std::span<const double> sample,
                            const Domain& domain, int stages) {
  SELEST_CHECK_GE(stages, 1);
  SELEST_CHECK_LE(stages, 3);
  SELEST_CHECK(!sample.empty());
  const double fallback = NormalScaleBinWidth(sample, domain);
  const double sigma = NormalScaleSigma(sample);
  if (sigma <= 0.0) return fallback;
  const size_t n = sample.size();

  // Ladder down to psi_2 = −R(f').
  double psi_next = NormalScalePsi(2 * stages + 2, sigma);
  for (int j = stages; j >= 1; --j) {
    const int s = 2 * j;
    const double g = PilotBandwidth(s, psi_next, n);
    if (g <= 0.0) return fallback;
    psi_next = EstimatePsiFunctional(sample, s, g);
  }
  const double r_f_prime = -psi_next;
  if (!(r_f_prime > 0.0)) return fallback;
  return std::cbrt(6.0 / (static_cast<double>(n) * r_f_prime));
}

StatusOr<int> TryDirectPlugInNumBins(std::span<const double> sample,
                                     const Domain& domain, int stages) {
  SELEST_ASSIGN_OR_RETURN(const double width,
                          TryDirectPlugInBinWidth(sample, domain, stages));
  const double bins = domain.width() / width;
  return std::max(1, static_cast<int>(std::lround(bins)));
}

int DirectPlugInNumBins(std::span<const double> sample, const Domain& domain,
                        int stages) {
  const double width = DirectPlugInBinWidth(sample, domain, stages);
  const double bins = domain.width() / width;
  return std::max(1, static_cast<int>(std::lround(bins)));
}

}  // namespace selest
