// Direct plug-in rules for the smoothing parameter (§4.3).
//
// The normal scale rule replaces the unknown density functionals R(f') and
// R(f'') with their Gaussian values. The direct plug-in rule instead
// *estimates* them from the sample: the functional ψ_s = E[f^(s)(X)] is
// estimated by the double sum
//
//   ψ̂_s(g) = (1/n²) Σ_i Σ_j φ_g^(s)(X_i − X_j)
//
// with Gaussian derivative kernels, where the pilot bandwidth g for stage s
// is computed from the next-higher functional ψ_{s+2} — starting from a
// normal-scale value at the highest stage. More stages push the Gaussian
// assumption further away from the final answer; the paper finds two or
// three stages sufficient (§4.3) and uses h-DPI2 in Fig. 11.
#ifndef SELEST_SMOOTHING_DIRECT_PLUG_IN_H_
#define SELEST_SMOOTHING_DIRECT_PLUG_IN_H_

#include <span>

#include "src/data/domain.h"
#include "src/density/kernel.h"
#include "src/util/status.h"

namespace selest {

// Estimates ψ_s = ∫ f^(s)(x) f(x) dx with a Gaussian kernel of bandwidth g.
// `s` must be even and in {2, 4, 6, 8}. Exposed for tests. O(n²).
double EstimatePsiFunctional(std::span<const double> sample, int s, double g);

// The Gaussian (normal-scale) reference value of ψ_s for scale sigma.
double NormalScalePsi(int s, double sigma);

// The Try* forms are Status-first: an empty sample or a stage count
// outside [1, 3] is an error, never an abort (both are reachable from
// externally supplied configs and data). The plain forms keep the
// historical aborting contract.

// Kernel bandwidth by the `stages`-stage direct plug-in rule (stages in
// [1, 3]; the paper's h-DPI2 is stages = 2). Falls back to the normal
// scale rule if a functional estimate degenerates.
StatusOr<double> TryDirectPlugInBandwidth(std::span<const double> sample,
                                          const Domain& domain,
                                          const Kernel& kernel = Kernel(),
                                          int stages = 2);
double DirectPlugInBandwidth(std::span<const double> sample,
                             const Domain& domain,
                             const Kernel& kernel = Kernel(), int stages = 2);

// Equi-width bin width by the direct plug-in rule:
// h_EW = (6 / (n · R(f̂')))^(1/3) with R(f') estimated as −ψ̂_2.
StatusOr<double> TryDirectPlugInBinWidth(std::span<const double> sample,
                                         const Domain& domain, int stages = 2);
double DirectPlugInBinWidth(std::span<const double> sample,
                            const Domain& domain, int stages = 2);

// Bin count implied by DirectPlugInBinWidth (at least 1).
StatusOr<int> TryDirectPlugInNumBins(std::span<const double> sample,
                                     const Domain& domain, int stages = 2);
int DirectPlugInNumBins(std::span<const double> sample, const Domain& domain,
                        int stages = 2);

}  // namespace selest

#endif  // SELEST_SMOOTHING_DIRECT_PLUG_IN_H_
