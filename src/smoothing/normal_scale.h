// Normal scale rules for the smoothing parameter (§4.1, §4.2).
//
// The asymptotically optimal bin width / bandwidth depends on derivative
// functionals of the unknown density. The normal scale rule evaluates those
// functionals as if the data were Gaussian, with the scale s estimated
// robustly as min(stddev, IQR/1.348):
//
//   bin width   h_EW ≈ (24 √π)^(1/3) · s · n^(−1/3)         (equation (8))
//   bandwidth   h_K  ≈ C(K) · s · n^(−1/5),  C(Epan.) ≈ 2.345
#ifndef SELEST_SMOOTHING_NORMAL_SCALE_H_
#define SELEST_SMOOTHING_NORMAL_SCALE_H_

#include <span>

#include "src/data/domain.h"
#include "src/density/kernel.h"
#include "src/util/status.h"

namespace selest {

// The Try* forms are Status-first: an empty sample (reachable from any
// externally supplied data file) is an error, never an abort. The plain
// forms keep the historical aborting contract for call sites that already
// hold a non-empty sample. All rules fall back to a fixed fraction of the
// domain width when the sample scale collapses to zero (constant data).

// Equi-width bin width by the normal scale rule. Falls back to
// domain.width()/10 when the sample scale collapses to zero.
StatusOr<double> TryNormalScaleBinWidth(std::span<const double> sample,
                                        const Domain& domain);
double NormalScaleBinWidth(std::span<const double> sample,
                           const Domain& domain);

// Number of equi-width bins for `domain` implied by NormalScaleBinWidth
// (at least 1).
StatusOr<int> TryNormalScaleNumBins(std::span<const double> sample,
                                    const Domain& domain);
int NormalScaleNumBins(std::span<const double> sample, const Domain& domain);

// Kernel bandwidth by the normal scale rule for the given kernel
// (Epanechnikov by default, constant ≈ 2.345·s·n^(−1/5)). Falls back to
// domain.width()/100 when the sample scale collapses to zero.
StatusOr<double> TryNormalScaleBandwidth(std::span<const double> sample,
                                         const Domain& domain,
                                         const Kernel& kernel = Kernel());
double NormalScaleBandwidth(std::span<const double> sample,
                            const Domain& domain,
                            const Kernel& kernel = Kernel());

}  // namespace selest

#endif  // SELEST_SMOOTHING_NORMAL_SCALE_H_
