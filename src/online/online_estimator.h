// Online (progressive) selectivity estimation with confidence intervals.
//
// §6 lists applying kernel estimators to online aggregation [6] as future
// work: a user watches an estimate converge while the system keeps
// sampling. OnlineSelectivityEstimator ingests a stream of sampled records
// and, at any point, answers a range query with the current estimate and a
// CLT confidence interval:
//
//   * sampling mode — the in-range fraction, variance p(1−p)/n;
//   * kernel mode — the mean of the per-sample kernel contributions
//     w_i = F((b−X_i)/h) − F((a−X_i)/h) (the summands of Alg. 1), with the
//     bandwidth re-fit to the samples seen so far and the interval from the
//     empirical variance of the w_i.
//
// The kernel contributions have smaller variance than the 0/1 indicators
// whenever the query edges cut through populated regions, which is the
// "faster convergence than pure sampling" advantage the paper cites.
#ifndef SELEST_ONLINE_ONLINE_ESTIMATOR_H_
#define SELEST_ONLINE_ONLINE_ESTIMATOR_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "src/data/column_source.h"
#include "src/data/domain.h"
#include "src/density/kernel.h"
#include "src/est/selectivity_estimator.h"
#include "src/query/range_query.h"
#include "src/util/status.h"

namespace selest {

// A progressive estimate with a symmetric confidence interval, clipped to
// [0, 1].
struct IntervalEstimate {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 1.0;
  size_t samples = 0;

  double half_width() const { return 0.5 * (hi - lo); }
};

class OnlineSelectivityEstimator {
 public:
  explicit OnlineSelectivityEstimator(const Domain& domain,
                                      Kernel kernel = Kernel());

  // Ingests one streamed sample. Amortized O(1); ordering is re-established
  // lazily when an estimate is requested.
  void AddSample(double value);

  // Batch ingest (the live-server Ingest path delivers rows in batches).
  void AddSamples(std::span<const double> values);

  // Streams every chunk of `source` (from a Reset) into AddSamples — the
  // out-of-core ingest path. Equivalent to AddSamples over the
  // materialized column; one chunk resident at a time. Returns the number
  // of rows ingested.
  uint64_t AddFromSource(ColumnSource& source);

  size_t samples_seen() const { return values_.size(); }

  // An immutable snapshot of the current state behind the common
  // SelectivityEstimator interface: the frozen instance answers
  // EstimateSelectivity with exactly Estimate(query).estimate as of the
  // freeze point, is safe for concurrent const callers (the progressive
  // estimator itself is not, its lazy sort mutates under const), and is
  // what the live server publishes as a served generation. Requires at
  // least two samples (the bandwidth fit needs them).
  StatusOr<std::unique_ptr<SelectivityEstimator>> Freeze() const;

  // Kernel-based progressive estimate. `confidence` in (0, 1). Requires at
  // least two samples; with fewer, returns the trivial [0, 1] interval.
  IntervalEstimate Estimate(const RangeQuery& query,
                            double confidence = 0.95) const;

  // Pure-sampling progressive estimate (the baseline the kernel mode is
  // compared against).
  IntervalEstimate SamplingEstimate(const RangeQuery& query,
                                    double confidence = 0.95) const;

  // Current normal-scale bandwidth for the samples seen so far.
  double CurrentBandwidth() const;

 private:
  void EnsureSorted() const;

  Domain domain_;
  Kernel kernel_;
  mutable std::vector<double> values_;  // sorted up to sorted_prefix_
  mutable size_t sorted_prefix_ = 0;
};

}  // namespace selest

#endif  // SELEST_ONLINE_ONLINE_ESTIMATOR_H_
