#include "src/online/online_learning.h"

#include <algorithm>
#include <cmath>

#include "src/est/estimator_snapshot.h"

namespace selest {
namespace {

Status ValidateOptions(const OnlineLearningOptions& options) {
  if (options.num_bins < 1) {
    return InvalidArgumentError("online learning needs >= 1 bin");
  }
  if (!(options.learning_rate > 0.0) || options.learning_rate > 1000.0) {
    return InvalidArgumentError("learning_rate must be in (0, 1000]");
  }
  if (!(options.weight_floor >= 0.0) || options.weight_floor > 1e-3) {
    return InvalidArgumentError("weight_floor must be in [0, 1e-3]");
  }
  if (options.history_capacity < 1 ||
      options.history_capacity > (1u << 20)) {
    return InvalidArgumentError("history_capacity must be in [1, 2^20]");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<OnlineLearningEstimator> OnlineLearningEstimator::Create(
    const Domain& domain, const OnlineLearningOptions& options) {
  SELEST_RETURN_IF_ERROR(ValidateOptions(options));
  std::vector<double> weights(static_cast<size_t>(options.num_bins),
                              1.0 / options.num_bins);
  return OnlineLearningEstimator(domain, options, std::move(weights));
}

StatusOr<OnlineLearningEstimator> OnlineLearningEstimator::CreateFromSample(
    std::span<const double> sample, const Domain& domain,
    const OnlineLearningOptions& options) {
  auto estimator = Create(domain, options);
  if (!estimator.ok()) return estimator.status();
  if (sample.empty()) {
    return InvalidArgumentError("CreateFromSample needs a non-empty sample");
  }
  // Laplace-smoothed frequencies: every weight stays strictly positive, so
  // the multiplicative update can still move any bin.
  std::vector<double>& weights = estimator->weights_;
  std::vector<double> counts(weights.size(), 0.0);
  const double bin_width = domain.width() / options.num_bins;
  for (double v : sample) {
    auto bin = static_cast<long>((domain.Clamp(v) - domain.lo) / bin_width);
    bin = std::clamp<long>(bin, 0, options.num_bins - 1);
    counts[static_cast<size_t>(bin)] += 1.0;
  }
  const double denom =
      static_cast<double>(sample.size()) + static_cast<double>(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = (counts[i] + 1.0) / denom;
  }
  return estimator;
}

double OnlineLearningEstimator::Overlap(size_t i, double a, double b) const {
  const double bin_width = domain_.width() / weights_.size();
  const double lo = domain_.lo + i * bin_width;
  const double hi = lo + bin_width;
  const double overlap = std::min(b, hi) - std::max(a, lo);
  return overlap <= 0.0 ? 0.0 : overlap / bin_width;
}

double OnlineLearningEstimator::EstimateSelectivity(double a, double b) const {
  a = domain_.Clamp(a);
  b = domain_.Clamp(b);
  // Clamp passes NaN through; one guard rejects NaN, inverted, and
  // degenerate ranges (±inf clamps to the domain edges).
  if (!(a < b)) return 0.0;
  const double bin_width = domain_.width() / weights_.size();
  const auto first = static_cast<size_t>((a - domain_.lo) / bin_width);
  double mass = 0.0;
  for (size_t i = std::min(first, weights_.size() - 1); i < weights_.size();
       ++i) {
    const double fraction = Overlap(i, a, b);
    if (fraction <= 0.0 && domain_.lo + i * bin_width > b) break;
    mass += fraction * weights_[i];
  }
  return std::clamp(mass, 0.0, 1.0);
}

void OnlineLearningEstimator::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  BatchWith(queries, out, [this](const RangeQuery& q) {
    return OnlineLearningEstimator::EstimateSelectivity(q.a, q.b);
  });
}

Status OnlineLearningEstimator::ObserveTrueSelectivity(
    const RangeQuery& query, double true_selectivity) {
  if (std::isnan(true_selectivity) || true_selectivity < 0.0 ||
      true_selectivity > 1.0) {
    return InvalidArgumentError("true selectivity must be in [0, 1]");
  }
  const double a = domain_.Clamp(query.a);
  const double b = domain_.Clamp(query.b);
  if (!(a < b)) {
    return InvalidArgumentError("feedback query is not a non-empty range");
  }
  const double estimate = EstimateSelectivity(a, b);
  const double error = estimate - true_selectivity;
  const double loss = error * error;
  ++observations_;
  cumulative_loss_ += loss;
  history_.push_back({a, b, true_selectivity, loss});
  if (history_.size() > options_.history_capacity) {
    history_.erase(history_.begin());
  }
  // Zero error ⇒ zero gradient ⇒ the round is exactly a no-op on the
  // weights: idempotence at the fixed point.
  if (error == 0.0) return Status::Ok();
  // Scale-normalized gradient: dividing by max(ŝ, s) makes the step size
  // track *relative* error, so bins serving tiny selectivities (where the
  // paper's MRE metric lives) adapt as fast as dense ones. The normalized
  // error stays in [-1, 1], bounding the exponent by 2η.
  const double scale = std::max({estimate, true_selectivity, 1e-9});
  const double relative_error = error / scale;
  double total = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) {
    const double fraction = Overlap(i, a, b);
    if (fraction > 0.0) {
      const double gradient = 2.0 * relative_error * fraction;
      const double exponent =
          std::clamp(-options_.learning_rate * gradient, -50.0, 50.0);
      weights_[i] *= std::exp(exponent);
    }
    total += weights_[i];
  }
  if (total > 0.0) {
    for (double& w : weights_) w /= total;
  }
  // Re-floor only when violated so fixed-point rounds stay exact no-ops.
  bool floored = false;
  for (double& w : weights_) {
    if (w < options_.weight_floor) {
      w = options_.weight_floor;
      floored = true;
    }
  }
  if (floored) {
    total = 0.0;
    for (double w : weights_) total += w;
    for (double& w : weights_) w /= total;
  }
  return Status::Ok();
}

double OnlineLearningEstimator::window_loss() const {
  double loss = 0.0;
  for (const Round& round : history_) loss += round.online_loss;
  return loss;
}

double OnlineLearningEstimator::BestFixedHindsightLoss() const {
  if (history_.empty()) return 0.0;
  // Deterministic budgeted least-squares fit of a fixed simplex histogram
  // to the retained rounds: cyclic Kaczmarz with non-negativity clipping
  // and renormalization, from the uniform start.
  constexpr int kFitSweeps = 32;
  std::vector<double> fit(weights_.size(), 1.0 / weights_.size());
  const double bin_width = domain_.width() / fit.size();
  const auto overlap = [&](size_t i, double a, double b) {
    const double lo = domain_.lo + i * bin_width;
    const double hi = lo + bin_width;
    const double width = std::min(b, hi) - std::max(a, lo);
    return width <= 0.0 ? 0.0 : width / bin_width;
  };
  for (int sweep = 0; sweep < kFitSweeps; ++sweep) {
    for (const Round& round : history_) {
      double estimate = 0.0;
      double sum_sq = 0.0;
      for (size_t i = 0; i < fit.size(); ++i) {
        const double fraction = overlap(i, round.a, round.b);
        estimate += fraction * fit[i];
        sum_sq += fraction * fraction;
      }
      if (sum_sq <= 0.0) continue;
      const double step = (round.true_selectivity - estimate) / sum_sq;
      for (size_t i = 0; i < fit.size(); ++i) {
        const double fraction = overlap(i, round.a, round.b);
        if (fraction > 0.0) fit[i] = std::max(0.0, fit[i] + step * fraction);
      }
    }
    double total = 0.0;
    for (double m : fit) total += m;
    if (total > 0.0) {
      for (double& m : fit) m /= total;
    }
  }
  double loss = 0.0;
  for (const Round& round : history_) {
    double estimate = 0.0;
    for (size_t i = 0; i < fit.size(); ++i) {
      estimate += overlap(i, round.a, round.b) * fit[i];
    }
    estimate = std::clamp(estimate, 0.0, 1.0);
    const double error = estimate - round.true_selectivity;
    loss += error * error;
  }
  return loss;
}

double OnlineLearningEstimator::RegretVsBestFixed() const {
  return window_loss() - BestFixedHindsightLoss();
}

size_t OnlineLearningEstimator::StorageBytes() const {
  return weights_.size() * sizeof(double) + history_.size() * sizeof(Round);
}

std::string OnlineLearningEstimator::name() const {
  return "online-learning(" + std::to_string(weights_.size()) + ")";
}

Status OnlineLearningEstimator::SerializeState(ByteWriter& writer) const {
  WriteDomain(writer, domain_);
  writer.WriteDouble(options_.learning_rate);
  writer.WriteDouble(options_.weight_floor);
  writer.WriteU64(options_.history_capacity);
  writer.WriteDoubleVector(weights_);
  writer.WriteU32(static_cast<uint32_t>(history_.size()));
  for (const Round& round : history_) {
    writer.WriteDouble(round.a);
    writer.WriteDouble(round.b);
    writer.WriteDouble(round.true_selectivity);
    writer.WriteDouble(round.online_loss);
  }
  writer.WriteU64(observations_);
  writer.WriteDouble(cumulative_loss_);
  return Status::Ok();
}

StatusOr<OnlineLearningEstimator> OnlineLearningEstimator::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(const Domain domain, ReadDomain(reader));
  OnlineLearningOptions options;
  SELEST_ASSIGN_OR_RETURN(options.learning_rate, reader.ReadDouble());
  SELEST_ASSIGN_OR_RETURN(options.weight_floor, reader.ReadDouble());
  SELEST_ASSIGN_OR_RETURN(const uint64_t capacity, reader.ReadU64());
  options.history_capacity = static_cast<size_t>(capacity);
  SELEST_ASSIGN_OR_RETURN(std::vector<double> weights,
                          reader.ReadDoubleVector());
  if (weights.empty() || weights.size() > (1u << 24)) {
    return InvalidArgumentError(
        "online-learning snapshot bin count is invalid");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return InvalidArgumentError(
          "online-learning snapshot weights are invalid");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    return InvalidArgumentError("online-learning snapshot weights are empty");
  }
  options.num_bins = static_cast<int>(weights.size());
  SELEST_RETURN_IF_ERROR(ValidateOptions(options));
  SELEST_ASSIGN_OR_RETURN(const uint32_t num_rounds, reader.ReadU32());
  if (num_rounds > options.history_capacity) {
    return InvalidArgumentError(
        "online-learning snapshot history exceeds capacity");
  }
  std::vector<Round> history;
  history.reserve(num_rounds);
  for (uint32_t i = 0; i < num_rounds; ++i) {
    Round round;
    SELEST_ASSIGN_OR_RETURN(round.a, reader.ReadDouble());
    SELEST_ASSIGN_OR_RETURN(round.b, reader.ReadDouble());
    SELEST_ASSIGN_OR_RETURN(round.true_selectivity, reader.ReadDouble());
    SELEST_ASSIGN_OR_RETURN(round.online_loss, reader.ReadDouble());
    if (!std::isfinite(round.a) || !std::isfinite(round.b) ||
        !(round.a < round.b) || !(round.true_selectivity >= 0.0) ||
        round.true_selectivity > 1.0 || !std::isfinite(round.online_loss) ||
        round.online_loss < 0.0) {
      return InvalidArgumentError(
          "online-learning snapshot round is invalid");
    }
    history.push_back(round);
  }
  SELEST_ASSIGN_OR_RETURN(const uint64_t observations, reader.ReadU64());
  SELEST_ASSIGN_OR_RETURN(const double cumulative_loss, reader.ReadDouble());
  if (!std::isfinite(cumulative_loss) || cumulative_loss < 0.0) {
    return InvalidArgumentError("online-learning snapshot loss is invalid");
  }
  OnlineLearningEstimator estimator(domain, options, std::move(weights));
  estimator.history_ = std::move(history);
  estimator.observations_ = observations;
  estimator.cumulative_loss_ = cumulative_loss;
  return estimator;
}

}  // namespace selest
