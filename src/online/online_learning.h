// Online learning of selectivities with regret tracking.
//
// Following *Selectivity Estimation for Linear Queries via Online
// Learning* (arXiv 2607.02895), the estimator maintains a probability
// vector p over a fixed equi-width grid and treats each feedback
// observation as one round of online convex optimization: predict
// ŝ = Σ f_i p_i (f_i = fraction of bin i the query covers), suffer the
// squared loss (ŝ − s)², and update multiplicatively by exponentiated
// gradient, with the gradient normalized by the selectivity scale
// max(ŝ, s) so the step tracks relative rather than absolute error
// (range selectivities span orders of magnitude, and the paper scores
// relative error):
//
//     w_i = p_i · exp(−η · 2 f_i (ŝ − s)/max(ŝ, s)),   p ← w / Σ w.
//
// Because p stays on the simplex and 0 ≤ f_i ≤ 1, every estimate is in
// [0, 1] by construction. A zero-error round has zero gradient, so
// repeated identical feedback is exactly idempotent at the fixed point.
//
// Regret accounting: cumulative_loss() sums the online squared losses and
// is monotone non-decreasing. RegretVsBestFixed() compares the online
// loss over the retained observation window against the loss of the best
// *fixed* histogram in hindsight, computed by a deterministic budgeted
// least-squares fit over the same window — the comparator the EG regret
// bound is stated against.
#ifndef SELEST_ONLINE_ONLINE_LEARNING_H_
#define SELEST_ONLINE_ONLINE_LEARNING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/data/domain.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

struct OnlineLearningOptions {
  int num_bins = 64;
  // EG step size η. Gradients are bounded by 2·|ŝ−s|·f ≤ 2, so moderate
  // values (1–4) adapt within tens of observations without oscillating.
  double learning_rate = 2.0;
  // Weights are floored at this value after each update so a bin whose
  // mass was driven to ~0 can still be re-learned (EG cannot lift an
  // exact zero). Applied only when violated, preserving idempotence.
  double weight_floor = 1e-10;
  // Observations retained for hindsight-regret evaluation; beyond this the
  // oldest rounds leave the regret window (cumulative_loss still counts
  // them).
  size_t history_capacity = 4096;
};

class OnlineLearningEstimator : public SelectivityEstimator {
 public:
  // Starts from the uniform prior, or (with Laplace smoothing, so every
  // weight stays positive for EG) from a sample.
  static StatusOr<OnlineLearningEstimator> Create(
      const Domain& domain, const OnlineLearningOptions& options);
  static StatusOr<OnlineLearningEstimator> CreateFromSample(
      std::span<const double> sample, const Domain& domain,
      const OnlineLearningOptions& options);

  double EstimateSelectivity(double a, double b) const override;
  void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                std::span<double> out) const override;
  size_t StorageBytes() const override;
  std::string name() const override;

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kOnlineLearning;
  }
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<OnlineLearningEstimator> DeserializeState(
      ByteReader& reader);

  bool SupportsFeedback() const override { return true; }
  Status ObserveTrueSelectivity(const RangeQuery& query,
                                double true_selectivity) override;
  uint64_t feedback_observations() const override { return observations_; }

  // Σ (ŝ_t − s_t)² over every observed round; monotone non-decreasing.
  double cumulative_loss() const { return cumulative_loss_; }
  // Online loss restricted to the retained window (≤ cumulative_loss()).
  double window_loss() const;
  // Squared loss the best fixed histogram in hindsight would have suffered
  // over the retained window (deterministic budgeted least-squares fit).
  double BestFixedHindsightLoss() const;
  // window_loss() − BestFixedHindsightLoss(). Near-zero or negative when
  // the learner has matched the hindsight-optimal fixed histogram.
  double RegretVsBestFixed() const;

  const std::vector<double>& weights() const { return weights_; }

 private:
  struct Round {
    double a = 0.0;
    double b = 0.0;
    double true_selectivity = 0.0;
    double online_loss = 0.0;
  };

  OnlineLearningEstimator(const Domain& domain,
                          const OnlineLearningOptions& options,
                          std::vector<double> weights)
      : domain_(domain), options_(options), weights_(std::move(weights)) {}

  // Fraction of bin i covered by [a, b].
  double Overlap(size_t i, double a, double b) const;

  Domain domain_;
  OnlineLearningOptions options_;
  std::vector<double> weights_;  // simplex: Σ = 1, each > 0
  std::vector<Round> history_;   // ring of the last history_capacity rounds
  uint64_t observations_ = 0;
  double cumulative_loss_ = 0.0;
};

}  // namespace selest

#endif  // SELEST_ONLINE_ONLINE_LEARNING_H_
