#include "src/online/online_estimator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/smoothing/normal_scale.h"
#include "src/util/check.h"
#include "src/util/numeric.h"

namespace selest {
namespace {

IntervalEstimate MakeInterval(double mean, double variance, size_t n,
                              double confidence) {
  SELEST_CHECK_GT(confidence, 0.0);
  SELEST_CHECK_LT(confidence, 1.0);
  IntervalEstimate result;
  result.estimate = std::clamp(mean, 0.0, 1.0);
  result.samples = n;
  if (n < 2) return result;  // trivial [0, 1] interval
  const double z = InverseNormalCdf(0.5 + 0.5 * confidence);
  const double half =
      z * std::sqrt(std::max(variance, 0.0) / static_cast<double>(n));
  result.lo = std::max(0.0, result.estimate - half);
  result.hi = std::min(1.0, result.estimate + half);
  return result;
}

// Sum (and, when `sum_sq` is non-null, sum of squares) of the per-sample
// kernel contributions w_i over [a, b]; `sorted` must be ascending and a < b.
// Shared by the progressive Estimate and the frozen snapshot so both
// accumulate in the same order and agree bit for bit.
double ContributionSum(const std::vector<double>& sorted, const Kernel& kernel,
                       double h, double a, double b, double* sum_sq) {
  const double radius = kernel.support_radius() * h;
  double sum = 0.0;
  const auto add = [&](double w) {
    sum += w;
    if (sum_sq != nullptr) *sum_sq += w * w;
  };
  const auto contribution = [&](double x) {
    return kernel.Cdf((b - x) / h) - kernel.Cdf((a - x) / h);
  };
  // Contributions are exactly 1 in the core, exactly 0 outside the fringe;
  // only fringe samples need explicit evaluation.
  if (a + radius <= b - radius) {
    const auto full_lo =
        std::lower_bound(sorted.begin(), sorted.end(), a + radius);
    const auto full_hi =
        std::upper_bound(sorted.begin(), sorted.end(), b - radius);
    const double full = static_cast<double>(full_hi - full_lo);
    sum += full;                          // w = 1 each
    if (sum_sq != nullptr) *sum_sq += full;  // w² = 1 each
    const auto left_lo =
        std::lower_bound(sorted.begin(), sorted.end(), a - radius);
    for (auto it = left_lo; it != full_lo; ++it) add(contribution(*it));
    const auto right_hi =
        std::upper_bound(sorted.begin(), sorted.end(), b + radius);
    for (auto it = full_hi; it != right_hi; ++it) add(contribution(*it));
  } else {
    const auto lo = std::lower_bound(sorted.begin(), sorted.end(), a - radius);
    const auto hi = std::upper_bound(sorted.begin(), sorted.end(), b + radius);
    for (auto it = lo; it != hi; ++it) add(contribution(*it));
  }
  return sum;
}

// The immutable snapshot Freeze() publishes: sorted samples and the
// bandwidth are fixed at freeze time, so const calls are genuinely
// read-only (thread-safe per the SelectivityEstimator contract).
class FrozenOnlineEstimator : public SelectivityEstimator {
 public:
  FrozenOnlineEstimator(const Domain& domain, const Kernel& kernel,
                        double bandwidth, std::vector<double> sorted)
      : domain_(domain),
        kernel_(kernel),
        bandwidth_(bandwidth),
        sorted_(std::move(sorted)) {}

  double EstimateSelectivity(double a, double b) const override {
    const double lo = domain_.Clamp(a);
    const double hi = domain_.Clamp(b);
    if (lo >= hi) return 0.0;
    const double sum =
        ContributionSum(sorted_, kernel_, bandwidth_, lo, hi, nullptr);
    return std::clamp(sum / static_cast<double>(sorted_.size()), 0.0, 1.0);
  }

  size_t StorageBytes() const override {
    return sizeof(double) * sorted_.size();
  }

  std::string name() const override {
    return "online(" + std::to_string(sorted_.size()) + ")";
  }

 private:
  Domain domain_;
  Kernel kernel_;
  double bandwidth_;
  std::vector<double> sorted_;
};

}  // namespace

OnlineSelectivityEstimator::OnlineSelectivityEstimator(const Domain& domain,
                                                       Kernel kernel)
    : domain_(domain), kernel_(kernel) {}

void OnlineSelectivityEstimator::AddSample(double value) {
  values_.push_back(value);
}

void OnlineSelectivityEstimator::AddSamples(std::span<const double> values) {
  values_.insert(values_.end(), values.begin(), values.end());
}

uint64_t OnlineSelectivityEstimator::AddFromSource(ColumnSource& source) {
  source.Reset();
  uint64_t rows = 0;
  for (std::span<const double> chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    AddSamples(chunk);
    rows += chunk.size();
  }
  return rows;
}

void OnlineSelectivityEstimator::EnsureSorted() const {
  if (sorted_prefix_ == values_.size()) return;
  // Merge the unsorted tail into the sorted prefix.
  std::sort(values_.begin() + static_cast<long>(sorted_prefix_),
            values_.end());
  std::inplace_merge(values_.begin(),
                     values_.begin() + static_cast<long>(sorted_prefix_),
                     values_.end());
  sorted_prefix_ = values_.size();
}

double OnlineSelectivityEstimator::CurrentBandwidth() const {
  if (values_.size() < 2) return domain_.width() / 100.0;
  EnsureSorted();
  return NormalScaleBandwidth(values_, domain_, kernel_);
}

IntervalEstimate OnlineSelectivityEstimator::Estimate(
    const RangeQuery& query, double confidence) const {
  const size_t n = values_.size();
  if (n < 2) {
    IntervalEstimate trivial;
    trivial.samples = n;
    return trivial;
  }
  EnsureSorted();
  const double a = domain_.Clamp(query.a);
  const double b = domain_.Clamp(query.b);
  if (a >= b) return MakeInterval(0.0, 0.0, n, confidence);

  const double h = NormalScaleBandwidth(values_, domain_, kernel_);
  // Sum and sum of squares give mean and variance of the w_i.
  double sum_sq = 0.0;
  const double sum = ContributionSum(values_, kernel_, h, a, b, &sum_sq);
  const double mean = sum / static_cast<double>(n);
  const double variance = sum_sq / static_cast<double>(n) - mean * mean;
  return MakeInterval(mean, variance, n, confidence);
}

StatusOr<std::unique_ptr<SelectivityEstimator>>
OnlineSelectivityEstimator::Freeze() const {
  if (values_.size() < 2) {
    return FailedPreconditionError(
        "freezing an online estimator needs at least two samples");
  }
  EnsureSorted();
  const double h = NormalScaleBandwidth(values_, domain_, kernel_);
  return std::unique_ptr<SelectivityEstimator>(
      new FrozenOnlineEstimator(domain_, kernel_, h, values_));
}

IntervalEstimate OnlineSelectivityEstimator::SamplingEstimate(
    const RangeQuery& query, double confidence) const {
  const size_t n = values_.size();
  if (n < 2) {
    IntervalEstimate trivial;
    trivial.samples = n;
    return trivial;
  }
  EnsureSorted();
  const auto lo = std::lower_bound(values_.begin(), values_.end(), query.a);
  const auto hi = std::upper_bound(values_.begin(), values_.end(), query.b);
  const double p =
      static_cast<double>(hi - lo) / static_cast<double>(n);
  return MakeInterval(p, p * (1.0 - p), n, confidence);
}

}  // namespace selest
