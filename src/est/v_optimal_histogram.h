// V-optimal histogram (Jagadish et al., the paper's reference [7]).
//
// The paper compares equi-width, equi-depth and max-diff; V-optimal is the
// strongest classical bucketing scheme and a natural beyond-the-paper
// baseline. Buckets are chosen by dynamic programming to minimize the
// sum of squared deviations of the (pre-binned) frequencies from their
// bucket means — the optimal piecewise-constant approximation of the
// frequency distribution.
//
// The continuous sample is first accumulated onto `base_bins` fine
// equi-width cells; the DP then merges cells into `num_buckets` buckets in
// O(base_bins² · num_buckets).
#ifndef SELEST_EST_V_OPTIMAL_HISTOGRAM_H_
#define SELEST_EST_V_OPTIMAL_HISTOGRAM_H_

#include <span>

#include "src/data/domain.h"
#include "src/density/histogram_density.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

class VOptimalHistogram : public SelectivityEstimator {
 public:
  // Requires 1 <= num_buckets <= base_bins; base_bins bounds both the DP
  // cost and the bucket-boundary resolution.
  static StatusOr<VOptimalHistogram> Create(std::span<const double> sample,
                                            const Domain& domain,
                                            int num_buckets,
                                            int base_bins = 512);

  double EstimateSelectivity(double a, double b) const override;
  void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                std::span<double> out) const override;
  size_t StorageBytes() const override { return bins_.StorageBytes(); }
  std::string name() const override;

  int num_buckets() const { return static_cast<int>(bins_.num_bins()); }
  const BinnedDensity& bins() const { return bins_; }
  // The SSE achieved by the chosen partition (for tests: optimality).
  double sse() const { return sse_; }

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kVOptimal;
  }
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<VOptimalHistogram> DeserializeState(ByteReader& reader);

 private:
  VOptimalHistogram(BinnedDensity bins, double sse)
      : bins_(std::move(bins)), sse_(sse) {}

  BinnedDensity bins_;
  double sse_;
};

}  // namespace selest

#endif  // SELEST_EST_V_OPTIMAL_HISTOGRAM_H_
