#include "src/est/uniform_estimator.h"

#include <algorithm>

namespace selest {

double UniformEstimator::EstimateSelectivity(double a, double b) const {
  if (a > b) return 0.0;
  const double lo = std::max(a, domain_.lo);
  const double hi = std::min(b, domain_.hi);
  if (lo >= hi) return 0.0;
  return (hi - lo) / domain_.width();
}

}  // namespace selest
