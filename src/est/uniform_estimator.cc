#include "src/est/uniform_estimator.h"

#include <algorithm>

#include "src/est/estimator_snapshot.h"

namespace selest {

double UniformEstimator::EstimateSelectivity(double a, double b) const {
  if (a > b) return 0.0;
  const double lo = std::max(a, domain_.lo);
  const double hi = std::min(b, domain_.hi);
  if (lo >= hi) return 0.0;
  return (hi - lo) / domain_.width();
}

Status UniformEstimator::SerializeState(ByteWriter& writer) const {
  WriteDomain(writer, domain_);
  return Status::Ok();
}

StatusOr<UniformEstimator> UniformEstimator::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(const Domain domain, ReadDomain(reader));
  return UniformEstimator(domain);
}

}  // namespace selest
