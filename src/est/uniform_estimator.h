// Uniform estimator: a histogram with a single bin covering the domain.
//
// This is the System R assumption [12] and the "uniform" baseline of
// Fig. 8 — the overall loser of the paper's comparison except on uniform
// data.
#ifndef SELEST_EST_UNIFORM_ESTIMATOR_H_
#define SELEST_EST_UNIFORM_ESTIMATOR_H_

#include "src/data/domain.h"
#include "src/est/selectivity_estimator.h"

namespace selest {

class UniformEstimator : public SelectivityEstimator {
 public:
  explicit UniformEstimator(const Domain& domain) : domain_(domain) {}

  double EstimateSelectivity(double a, double b) const override;
  // Two doubles: the domain endpoints, as a catalog would store them.
  size_t StorageBytes() const override { return 2 * sizeof(double); }
  std::string name() const override { return "uniform"; }

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kUniform;
  }
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<UniformEstimator> DeserializeState(ByteReader& reader);

 private:
  Domain domain_;
};

}  // namespace selest

#endif  // SELEST_EST_UNIFORM_ESTIMATOR_H_
