#include "src/est/streaming_build.h"

#include <cmath>
#include <string>
#include <utility>

#include "src/est/equi_width_histogram.h"
#include "src/est/uniform_estimator.h"
#include "src/exec/fault_injection.h"
#include "src/sample/sampler.h"

namespace selest {
namespace {

Status ValidateStreamDomain(const Domain& domain) {
  if (!std::isfinite(domain.lo) || !std::isfinite(domain.hi) ||
      !(domain.lo < domain.hi)) {
    return InvalidArgumentError("estimator domain must be a finite non-empty "
                                "range, got " +
                                domain.ToString());
  }
  return Status::Ok();
}

Status ValidateChunk(std::span<const double> chunk, uint64_t stream_offset) {
  for (size_t i = 0; i < chunk.size(); ++i) {
    if (!std::isfinite(chunk[i])) {
      return InvalidArgumentError(
          "row " + std::to_string(stream_offset + i) + " is not finite");
    }
  }
  return Status::Ok();
}

// One sequential pass: every row through the reservoir. Returns rows seen.
StatusOr<uint64_t> FillReservoir(ColumnSource& source,
                                 DecayingReservoir& reservoir) {
  source.Reset();
  uint64_t rows = 0;
  for (std::span<const double> chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    SELEST_RETURN_IF_ERROR(ValidateChunk(chunk, rows));
    reservoir.AddBatch(chunk);
    rows += chunk.size();
  }
  return rows;
}

// The fold pass: the first chunk seeds Create (the bins need at least one
// row), every later chunk folds in. FoldRows is exact (+1.0 integer adds),
// so the result equals Create over the concatenated rows regardless of
// where the chunk boundaries fall.
StatusOr<StreamingBuild> FoldEquiWidth(ColumnSource& source, int num_bins) {
  source.Reset();
  StreamingBuild build;
  build.path = StreamingBuildPath::kOnePassFold;
  std::unique_ptr<EquiWidthHistogram> histogram;
  for (std::span<const double> chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    SELEST_RETURN_IF_ERROR(ValidateChunk(chunk, build.rows_seen));
    if (histogram == nullptr) {
      auto first =
          EquiWidthHistogram::Create(chunk, source.domain(), num_bins);
      if (!first.ok()) return first.status();
      histogram =
          std::make_unique<EquiWidthHistogram>(std::move(first).value());
    } else {
      SELEST_RETURN_IF_ERROR(histogram->FoldRows(chunk));
    }
    build.rows_seen += chunk.size();
  }
  if (histogram == nullptr) {
    return InvalidArgumentError("equi-width histogram needs a sample");
  }
  build.estimator = std::move(histogram);
  return build;
}

}  // namespace

const char* StreamingBuildPathName(StreamingBuildPath path) {
  switch (path) {
    case StreamingBuildPath::kDomainOnly:
      return "domain-only";
    case StreamingBuildPath::kOnePassFold:
      return "one-pass-fold";
    case StreamingBuildPath::kReservoirSample:
      return "reservoir-sample";
  }
  return "unknown";
}

StreamingBuildPath StreamingPathFor(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kUniform:
      return StreamingBuildPath::kDomainOnly;
    case EstimatorKind::kEquiWidth:
      return StreamingBuildPath::kOnePassFold;
    default:
      return StreamingBuildPath::kReservoirSample;
  }
}

StatusOr<StreamingBuild> BuildEstimatorStreaming(
    ColumnSource& source, const EstimatorConfig& config,
    const StreamingBuildOptions& options) {
  SELEST_RETURN_IF_ERROR(ValidateStreamDomain(source.domain()));
  if (options.sample_size == 0) {
    return InvalidArgumentError("streaming build needs sample_size >= 1");
  }

  const StreamingBuildPath path = StreamingPathFor(config.kind);
  // The reservoir path delegates to BuildEstimator, which checks the
  // "est/build" fault point itself; the other two paths check it here so
  // every path trips the point exactly once per build.
  if (path != StreamingBuildPath::kReservoirSample) {
    SELEST_RETURN_IF_ERROR(FaultInjector::Check(kFaultPointEstimatorBuild));
  }

  if (path == StreamingBuildPath::kDomainOnly) {
    StreamingBuild build;
    build.path = path;
    build.rows_seen = source.rows();
    build.estimator = std::make_unique<UniformEstimator>(source.domain());
    return build;
  }

  if (path == StreamingBuildPath::kOnePassFold &&
      config.smoothing == SmoothingRule::kFixed) {
    // The bin count needs no sample, so the sampling pass is skipped
    // entirely — this is the single-pass build; build.sample stays empty.
    SELEST_ASSIGN_OR_RETURN(const int num_bins,
                            ResolveConfigNumBins({}, source.domain(), config));
    return FoldEquiWidth(source, num_bins);
  }

  DecayingReservoir reservoir(options.sample_size, options.reservoir_decay,
                              options.seed);
  SELEST_ASSIGN_OR_RETURN(const uint64_t rows,
                          FillReservoir(source, reservoir));
  if (rows == 0) {
    return InvalidArgumentError("estimator needs a non-empty source");
  }
  std::vector<double> sample(reservoir.values().begin(),
                             reservoir.values().end());

  if (path == StreamingBuildPath::kOnePassFold) {
    // Resolve the bin count exactly as BuildEstimator would — from the
    // sample under the configured smoothing rule — then fold all rows.
    SELEST_ASSIGN_OR_RETURN(
        const int num_bins,
        ResolveConfigNumBins(sample, source.domain(), config));
    SELEST_ASSIGN_OR_RETURN(StreamingBuild build,
                            FoldEquiWidth(source, num_bins));
    build.sample = std::move(sample);
    return build;
  }

  StreamingBuild build;
  build.path = path;
  build.rows_seen = rows;
  auto estimator = BuildEstimator(sample, source.domain(), config);
  if (!estimator.ok()) return estimator.status();
  build.estimator = std::move(estimator).value();
  build.sample = std::move(sample);
  return build;
}

}  // namespace selest
