#include "src/est/change_point.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace selest {

std::vector<double> DetectChangePoints(const Kde& pilot, const Domain& domain,
                                       const ChangePointConfig& config) {
  SELEST_CHECK_GE(config.grid_size, 8);
  SELEST_CHECK_GE(config.max_change_points, 0);
  const int grid = config.grid_size;
  const double step = domain.width() / grid;

  // Pilot density on the grid, then |f''| by central second differences.
  std::vector<double> density(grid + 1);
  for (int i = 0; i <= grid; ++i) {
    density[i] = pilot.Density(domain.lo + i * step);
  }
  std::vector<double> curvature(grid + 1, 0.0);
  double mean_curvature = 0.0;
  for (int i = 1; i < grid; ++i) {
    curvature[i] =
        std::fabs(density[i + 1] - 2.0 * density[i] + density[i - 1]) /
        (step * step);
    mean_curvature += curvature[i];
  }
  mean_curvature /= std::max(grid - 1, 1);
  if (mean_curvature <= 0.0) return {};

  const double threshold = config.significance * mean_curvature;
  const double min_separation =
      config.min_separation_fraction * domain.width();

  // Greedy recursive selection: repeatedly take the strongest remaining
  // curvature maximum that is far enough from the boundaries and from all
  // previously accepted change points.
  std::vector<double> change_points;
  while (static_cast<int>(change_points.size()) < config.max_change_points) {
    int best_index = -1;
    double best_value = threshold;
    for (int i = 1; i < grid; ++i) {
      if (curvature[i] <= best_value) continue;
      const double x = domain.lo + i * step;
      if (x - domain.lo < min_separation || domain.hi - x < min_separation) {
        continue;
      }
      bool separated = true;
      for (double cp : change_points) {
        if (std::fabs(cp - x) < min_separation) {
          separated = false;
          break;
        }
      }
      if (!separated) continue;
      best_index = i;
      best_value = curvature[i];
    }
    if (best_index < 0) break;
    change_points.push_back(domain.lo + best_index * step);
  }
  std::sort(change_points.begin(), change_points.end());
  return change_points;
}

}  // namespace selest
