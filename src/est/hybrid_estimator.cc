#include "src/est/hybrid_estimator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/est/estimator_snapshot.h"
#include "src/smoothing/normal_scale.h"
#include "src/util/check.h"

namespace selest {

StatusOr<HybridEstimator> HybridEstimator::Create(
    std::span<const double> sample, const Domain& domain,
    const HybridEstimatorOptions& options) {
  if (sample.empty()) {
    return InvalidArgumentError("hybrid estimator needs a non-empty sample");
  }
  if (options.min_bin_fraction < 0.0 || options.min_bin_fraction >= 1.0) {
    return InvalidArgumentError("min_bin_fraction must be in [0, 1)");
  }

  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());

  // 1. Pilot estimate and change-point detection.
  double pilot_bandwidth = options.pilot_bandwidth;
  if (pilot_bandwidth <= 0.0) {
    pilot_bandwidth = NormalScaleBandwidth(sorted, domain, options.kernel);
  }
  auto pilot = Kde::Create(sorted, pilot_bandwidth, domain, options.kernel,
                           BoundaryPolicy::kReflection);
  if (!pilot.ok()) return pilot.status();
  std::vector<double> change_points =
      DetectChangePoints(pilot.value(), domain, options.change_points);

  // 2. Partition at the change points, then merge under-populated bins.
  std::vector<double> partition;
  partition.push_back(domain.lo);
  for (double cp : change_points) partition.push_back(cp);
  partition.push_back(domain.hi);

  // Every merge decision needs the sample count between two partition
  // edges. Searching the sample from scratch for each candidate made every
  // merge round O(bins · log n); instead, hoist the searches: compute each
  // edge's lower/upper-bound ranks once, keep the rank arrays in sync with
  // the partition as edges are erased, and a bin count becomes one
  // subtraction. The partitions produced are bit-identical.
  const size_t n_samples = sorted.size();
  std::vector<size_t> edge_lb(partition.size());
  std::vector<size_t> edge_ub(partition.size());
  for (size_t i = 0; i < partition.size(); ++i) {
    edge_lb[i] = BranchFreeLowerBound(sorted.data(), n_samples, partition[i]);
    edge_ub[i] = BranchFreeUpperBound(sorted.data(), n_samples, partition[i]);
  }
  // Samples in [partition[i], partition[j]].
  const auto count_between = [&edge_lb, &edge_ub](size_t i, size_t j) {
    return edge_ub[j] - edge_lb[i];
  };
  const auto erase_edge = [&partition, &edge_lb, &edge_ub](size_t i) {
    partition.erase(partition.begin() + static_cast<long>(i));
    edge_lb.erase(edge_lb.begin() + static_cast<long>(i));
    edge_ub.erase(edge_ub.begin() + static_cast<long>(i));
  };
  const size_t min_count = static_cast<size_t>(
      std::ceil(options.min_bin_fraction * static_cast<double>(sorted.size())));
  // Repeatedly drop the interior boundary of the lightest under-populated
  // bin (merging it with its smaller neighbor).
  bool merged = true;
  while (merged && partition.size() > 2) {
    merged = false;
    for (size_t i = 0; i + 1 < partition.size(); ++i) {
      const size_t bin_count = count_between(i, i + 1);
      if (bin_count >= std::max<size_t>(min_count, 2)) continue;
      // Merge with the lighter adjacent bin by erasing the shared edge.
      if (i == 0) {
        erase_edge(1);
      } else if (i + 2 == partition.size()) {
        erase_edge(partition.size() - 2);
      } else {
        const size_t left = count_between(i - 1, i);
        const size_t right = count_between(i + 1, i + 2);
        erase_edge(left <= right ? i : i + 1);
      }
      merged = true;
      break;
    }
  }

  // 3. One kernel estimator per bin, with a per-bin bandwidth.
  std::vector<Cell> cells;
  cells.reserve(partition.size() - 1);
  const double n = static_cast<double>(sorted.size());
  for (size_t i = 0; i + 1 < partition.size(); ++i) {
    const double lo = partition[i];
    const double hi = partition[i + 1];
    if (hi <= lo) continue;
    const size_t first = edge_lb[i];
    // Bin i covers [lo, hi); the last bin also takes the right endpoint.
    const size_t last =
        i + 2 == partition.size() ? edge_ub[i + 1] : edge_lb[i + 1];
    if (first == last) continue;
    const std::span<const double> bin_sample(sorted.data() + first,
                                             last - first);

    Domain bin_domain = domain;
    bin_domain.lo = lo;
    bin_domain.hi = hi;
    KernelEstimatorOptions kernel_options;
    kernel_options.kernel = options.kernel;
    kernel_options.boundary = options.boundary;
    kernel_options.bandwidth =
        NormalScaleBandwidth(bin_sample, bin_domain, options.kernel);
    // Keep the bandwidth inside the bin so the boundary machinery applies.
    kernel_options.bandwidth =
        std::min(kernel_options.bandwidth, 0.5 * bin_domain.width());
    if (kernel_options.bandwidth <= 0.0) {
      kernel_options.bandwidth = 0.5 * bin_domain.width();
    }
    auto estimator =
        KernelEstimator::Create(bin_sample, bin_domain, kernel_options);
    if (!estimator.ok()) return estimator.status();
    cells.push_back(Cell{bin_domain,
                         static_cast<double>(bin_sample.size()) / n,
                         std::move(estimator).value()});
  }
  if (cells.empty()) {
    return InternalError("hybrid estimator produced no populated bins");
  }
  return HybridEstimator(std::move(partition), std::move(cells));
}

double HybridEstimator::EstimateSelectivity(double a, double b) const {
  if (a > b) return 0.0;
  double total = 0.0;
  for (const Cell& cell : cells_) {
    const double lo = std::max(a, cell.bin_domain.lo);
    const double hi = std::min(b, cell.bin_domain.hi);
    if (lo >= hi) continue;
    // The per-bin estimator integrates to ~1 over its bin; scale by the
    // bin's share of the sample.
    total += cell.weight * cell.estimator.EstimateSelectivity(lo, hi);
  }
  return std::clamp(total, 0.0, 1.0);
}

void HybridEstimator::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  SELEST_CHECK_EQ(queries.size(), out.size());
  const auto per_query = [this](const RangeQuery& q) {
    return HybridEstimator::EstimateSelectivity(q.a, q.b);
  };
  const SimdOps* ops = ActiveSimdOps();
  bool vectorizable = ops != nullptr;
  for (const Cell& cell : cells_) {
    vectorizable = vectorizable && cell.estimator.options().kernel.type() ==
                                       KernelType::kEpanechnikov;
  }
  if (!vectorizable) {
    BatchWith(queries, out, per_query);
    return;
  }
  // Per-cell kernel args built once per batch (raw views into each cell's
  // SoA state); the block lambda only reads them, so sharing across pool
  // threads is safe.
  std::vector<KernelBlockArgs> cell_args;
  cell_args.reserve(cells_.size());
  for (const Cell& cell : cells_) {
    cell_args.push_back(cell.estimator.MakeSimdArgs());
  }
  BatchWithBlocks(
      queries, out, ops->width,
      [this, ops, &cell_args](const double* a, const double* b, double* r) {
        alignas(kSimdAlign) double lo[kMaxSimdWidth];
        alignas(kSimdAlign) double hi[kMaxSimdWidth];
        alignas(kSimdAlign) double cell_r[kMaxSimdWidth];
        const int w = ops->width;
        for (int k = 0; k < w; ++k) r[k] = 0.0;
        for (size_t c = 0; c < cells_.size(); ++c) {
          const Cell& cell = cells_[c];
          for (int k = 0; k < w; ++k) {
            lo[k] = std::max(a[k], cell.bin_domain.lo);
            hi[k] = std::min(b[k], cell.bin_domain.hi);
          }
          // Lanes the scalar path skips (lo >= hi) still go through the
          // block call — their value is discarded below — so one call
          // serves the whole block.
          if (ops->kernel_block(cell_args[c], lo, hi, cell_r) == 0) {
            return false;  // mixed case split inside this cell
          }
          for (int k = 0; k < w; ++k) {
            if (lo[k] < hi[k]) r[k] += cell.weight * cell_r[k];
          }
        }
        for (int k = 0; k < w; ++k) {
          r[k] = std::clamp(r[k], 0.0, 1.0);
          if (a[k] > b[k]) r[k] = 0.0;
        }
        return true;
      },
      per_query);
}

size_t HybridEstimator::StorageBytes() const {
  size_t total = sizeof(double) * partition_.size();
  for (const Cell& cell : cells_) total += cell.estimator.StorageBytes();
  return total;
}

std::string HybridEstimator::name() const {
  return "hybrid(" + std::to_string(num_bins()) + " bins)";
}

Status HybridEstimator::SerializeState(ByteWriter& writer) const {
  writer.WriteDoubleVector(partition_);
  writer.WriteU32(static_cast<uint32_t>(cells_.size()));
  for (const Cell& cell : cells_) {
    WriteDomain(writer, cell.bin_domain);
    writer.WriteDouble(cell.weight);
    SELEST_RETURN_IF_ERROR(cell.estimator.SerializeState(writer));
  }
  return Status::Ok();
}

StatusOr<HybridEstimator> HybridEstimator::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(std::vector<double> partition,
                          reader.ReadDoubleVector());
  SELEST_ASSIGN_OR_RETURN(const uint32_t num_cells, reader.ReadU32());
  if (partition.size() < 2 ||
      !std::is_sorted(partition.begin(), partition.end())) {
    return InvalidArgumentError(
        "hybrid snapshot partition must be a sorted edge list");
  }
  // Zero-width or empty bins are skipped at build time, so there can be
  // fewer cells than partition intervals — never more.
  if (num_cells < 1 || num_cells >= partition.size()) {
    return InvalidArgumentError("hybrid snapshot cell count out of range");
  }
  std::vector<Cell> cells;
  cells.reserve(num_cells);
  for (uint32_t i = 0; i < num_cells; ++i) {
    SELEST_ASSIGN_OR_RETURN(const Domain bin_domain, ReadDomain(reader));
    SELEST_ASSIGN_OR_RETURN(const double weight, reader.ReadDouble());
    if (!std::isfinite(weight) || weight < 0.0 || weight > 1.0) {
      return InvalidArgumentError(
          "hybrid snapshot cell weight must be in [0, 1]");
    }
    SELEST_ASSIGN_OR_RETURN(KernelEstimator estimator,
                            KernelEstimator::DeserializeState(reader));
    cells.push_back(Cell{bin_domain, weight, std::move(estimator)});
  }
  return HybridEstimator(std::move(partition), std::move(cells));
}

}  // namespace selest
