// Change-point detection for the hybrid estimator (§3.3).
//
// The paper detects change points of the underlying PDF at the maxima of
// the (estimated) second derivative: the asymptotic kernel error is driven
// by f'' (equation (9a)), so splitting the domain where |f''| peaks removes
// the worst error contributions. Detection runs on a pilot KDE evaluated on
// a grid; further change points are found recursively inside the resulting
// partitions.
#ifndef SELEST_EST_CHANGE_POINT_H_
#define SELEST_EST_CHANGE_POINT_H_

#include <span>
#include <vector>

#include "src/data/domain.h"
#include "src/density/kde.h"
#include "src/util/status.h"

namespace selest {

struct ChangePointConfig {
  // Maximum number of change points to report.
  int max_change_points = 8;
  // Grid resolution for the pilot density scan.
  int grid_size = 512;
  // A candidate is accepted only if |f̂''| there exceeds this multiple of
  // the mean |f̂''| over the scanned segment — guards against splitting on
  // noise in already-smooth regions.
  double significance = 2.0;
  // Candidates closer than this fraction of the domain width to an existing
  // change point or domain boundary are discarded.
  double min_separation_fraction = 0.02;
};

// Returns change-point locations (ascending) detected from the pilot
// density `pilot` over `domain`. May return fewer than
// config.max_change_points (possibly none) when no significant curvature
// maxima exist.
std::vector<double> DetectChangePoints(const Kde& pilot, const Domain& domain,
                                       const ChangePointConfig& config);

}  // namespace selest

#endif  // SELEST_EST_CHANGE_POINT_H_
