// Max-diff histogram estimator ([8], §3.1).
//
// With k bins, the k−1 adjacent sample pairs with the largest value gaps
// are found and a bin boundary is placed inside each gap. On the paper's
// large metric domains this policy trails the equi-width histogram —
// the opposite of the small-domain result of [8] (see §5.2.4).
#ifndef SELEST_EST_MAX_DIFF_HISTOGRAM_H_
#define SELEST_EST_MAX_DIFF_HISTOGRAM_H_

#include <span>

#include "src/data/domain.h"
#include "src/density/histogram_density.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

class MaxDiffHistogram : public SelectivityEstimator {
 public:
  static StatusOr<MaxDiffHistogram> Create(std::span<const double> sample,
                                           const Domain& domain, int num_bins);

  double EstimateSelectivity(double a, double b) const override;
  void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                std::span<double> out) const override;
  size_t StorageBytes() const override { return bins_.StorageBytes(); }
  std::string name() const override;

  int num_bins() const { return static_cast<int>(bins_.num_bins()); }
  const BinnedDensity& bins() const { return bins_; }

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kMaxDiff;
  }
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<MaxDiffHistogram> DeserializeState(ByteReader& reader);

 private:
  explicit MaxDiffHistogram(BinnedDensity bins) : bins_(std::move(bins)) {}

  BinnedDensity bins_;
};

}  // namespace selest

#endif  // SELEST_EST_MAX_DIFF_HISTOGRAM_H_
