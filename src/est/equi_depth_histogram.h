// Equi-depth histogram estimator ([3], §3.1).
//
// Bin edges are placed at sample quantiles so every bin holds the same
// number of samples. Heavy duplication can collapse edges; the resulting
// zero-width bins are treated as atoms by BinnedDensity.
#ifndef SELEST_EST_EQUI_DEPTH_HISTOGRAM_H_
#define SELEST_EST_EQUI_DEPTH_HISTOGRAM_H_

#include <span>

#include "src/data/domain.h"
#include "src/density/histogram_density.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

class EquiDepthHistogram : public SelectivityEstimator {
 public:
  static StatusOr<EquiDepthHistogram> Create(std::span<const double> sample,
                                             const Domain& domain,
                                             int num_bins);

  double EstimateSelectivity(double a, double b) const override;
  void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                std::span<double> out) const override;
  size_t StorageBytes() const override { return bins_.StorageBytes(); }
  std::string name() const override;

  int num_bins() const { return static_cast<int>(bins_.num_bins()); }
  const BinnedDensity& bins() const { return bins_; }

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kEquiDepth;
  }
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<EquiDepthHistogram> DeserializeState(ByteReader& reader);

  // Approximate incremental maintenance. Equi-depth edges are sample
  // quantiles, so two histograms cannot merge exactly; MergeFrom combines
  // the two piecewise-linear CDFs over the union of their edges and
  // re-places this histogram's bin count at the combined quantiles. The
  // drift against Build(A ∪ B) is bounded by the quantile interpolation
  // error within one union segment (property-tested as bounded MRE drift).
  // Both operands must cover the same domain (identical outer edges).
  bool SupportsMerge() const override { return true; }
  Status MergeFrom(const SelectivityEstimator& other) override;
  // Folds rows by building an equi-depth histogram over them (same domain
  // and bin count) and merging it in. Empty spans are the identity.
  Status FoldRows(std::span<const double> rows) override;

 private:
  explicit EquiDepthHistogram(BinnedDensity bins) : bins_(std::move(bins)) {}

  BinnedDensity bins_;
};

}  // namespace selest

#endif  // SELEST_EST_EQUI_DEPTH_HISTOGRAM_H_
