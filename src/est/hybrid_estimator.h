// Hybrid histogram/kernel estimator (§3.3) — the paper's new method.
//
// Kernel estimators assume a smooth density; real data (street maps,
// survey weights) have change points where the density jumps and the kernel
// error concentrates. The hybrid estimator:
//
//   1. builds a pilot KDE and detects change points at the maxima of the
//      estimated second derivative (est/change_point.h);
//   2. partitions the domain into histogram bins at the change points and
//      merges bins holding too few samples;
//   3. runs an independent kernel estimator inside each bin — with its own
//      normal-scale bandwidth and boundary treatment at the bin edges —
//      weighted by the bin's sample fraction.
//
// On the paper's TIGER-derived files this beats both the pure kernel
// estimator and every histogram (Fig. 12).
#ifndef SELEST_EST_HYBRID_ESTIMATOR_H_
#define SELEST_EST_HYBRID_ESTIMATOR_H_

#include <span>
#include <vector>

#include "src/data/domain.h"
#include "src/density/kde.h"
#include "src/density/kernel.h"
#include "src/est/change_point.h"
#include "src/est/kernel_estimator.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

struct HybridEstimatorOptions {
  ChangePointConfig change_points;
  // Pilot KDE bandwidth; 0 means "normal scale rule".
  double pilot_bandwidth = 0.0;
  // Bins holding fewer than this fraction of the samples are merged into a
  // neighbor (the paper merges bins whose record count is too small).
  double min_bin_fraction = 0.02;
  // Kernel and boundary treatment used inside each bin. The paper's Fig. 12
  // hybrid uses boundary kernel functions.
  Kernel kernel = Kernel(KernelType::kEpanechnikov);
  BoundaryPolicy boundary = BoundaryPolicy::kBoundaryKernel;
};

class HybridEstimator : public SelectivityEstimator {
 public:
  static StatusOr<HybridEstimator> Create(std::span<const double> sample,
                                          const Domain& domain,
                                          const HybridEstimatorOptions& options);

  double EstimateSelectivity(double a, double b) const override;
  void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                std::span<double> out) const override;
  size_t StorageBytes() const override;
  std::string name() const override;

  // Bin boundaries actually used (after merging), including both domain
  // endpoints; size() is number of bins + 1.
  const std::vector<double>& partition() const { return partition_; }
  size_t num_bins() const { return cells_.size(); }

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kHybrid;
  }
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<HybridEstimator> DeserializeState(ByteReader& reader);

 private:
  struct Cell {
    Domain bin_domain;
    double weight;  // fraction of samples in this bin
    KernelEstimator estimator;
  };

  HybridEstimator(std::vector<double> partition, std::vector<Cell> cells)
      : partition_(std::move(partition)), cells_(std::move(cells)) {}

  std::vector<double> partition_;
  std::vector<Cell> cells_;
};

}  // namespace selest

#endif  // SELEST_EST_HYBRID_ESTIMATOR_H_
