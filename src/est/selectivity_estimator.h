// The estimator interface (§2).
//
// A selectivity estimator approximates the distribution selectivity
// σ(a, b) = P(a <= A <= b) of a range query from a sample of the relation.
// The instance result size is estimated as N · σ̂(a, b).
//
// Thread-safety contract: after construction, every const member — in
// particular EstimateSelectivity and EstimateSelectivityBatch — must be
// safe to call concurrently from multiple threads. Implementations must
// not hide mutable caches or lazy initialization behind const methods;
// the parallel experiment runner (eval/parallel_experiment.h) calls into
// one estimator instance from many threads at once, and the tsan CMake
// preset exists to enforce this.
#ifndef SELEST_EST_SELECTIVITY_ESTIMATOR_H_
#define SELEST_EST_SELECTIVITY_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "src/exec/parallel_for.h"
#include "src/query/range_query.h"
#include "src/util/serialize.h"
#include "src/util/simd.h"
#include "src/util/status.h"

namespace selest {

// Stable on-disk type tags for estimator snapshots (est/estimator_snapshot.h).
// Append-only: a tag, once released, names that payload layout forever.
// 0 is reserved for "does not snapshot".
enum class EstimatorTag : uint32_t {
  kNone = 0,
  kUniform = 1,
  kSampling = 2,
  kEquiWidth = 3,
  kEquiDepth = 4,
  kMaxDiff = 5,
  kVOptimal = 6,
  kWavelet = 7,
  kAverageShifted = 8,
  kKernel = 9,
  kAdaptiveKernel = 10,
  kHybrid = 11,
  kGuarded = 12,
  kFeedback = 13,
  kReconstructed = 14,
  kOnlineLearning = 15,
};

class SelectivityEstimator {
 public:
  virtual ~SelectivityEstimator() = default;

  // Estimated selectivity σ̂(a, b) in [0, 1]. Requires a <= b.
  virtual double EstimateSelectivity(double a, double b) const = 0;

  double EstimateSelectivity(const RangeQuery& q) const {
    return EstimateSelectivity(q.a, q.b);
  }

  // Estimates every query into `out` (same size as `queries`). Each out[i]
  // is exactly the value EstimateSelectivity(queries[i]) returns — batching
  // changes the evaluation cost, never the result. The default fans query
  // chunks across the shared thread pool (serially when already on a pool
  // worker); hot estimators override it with a devirtualized inner loop.
  virtual void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                        std::span<double> out) const;

  // Estimated result size for a relation of `num_records` records.
  double EstimateResultSize(const RangeQuery& q, size_t num_records) const {
    return EstimateSelectivity(q) * static_cast<double>(num_records);
  }

  // Bytes a system catalog would persist for this estimator (bin edges and
  // counts for histograms, the sample for sampling/kernel estimators).
  virtual size_t StorageBytes() const = 0;

  // Short human-readable name, e.g. "equi-width(20)".
  virtual std::string name() const = 0;

  // The on-disk type tag of this estimator's snapshot payload, or
  // EstimatorTag::kNone when the estimator does not support snapshots.
  // Each paired DeserializeState factory lives on the concrete class;
  // est/estimator_snapshot.h dispatches on the tag.
  virtual EstimatorTag SnapshotTypeTag() const { return EstimatorTag::kNone; }

  // Appends the derived query-time state (not the raw build inputs) to
  // `writer`, so a deserialized instance answers bit-identically without
  // re-running construction. Default: kFailedPrecondition (no snapshot
  // support).
  virtual Status SerializeState(ByteWriter& writer) const;

  // --- Incremental maintenance (the live-server ingest contract) ---
  //
  // A *mergeable* estimator can absorb new rows without a full rebuild:
  // MergeFrom folds another built instance of the same type into this one,
  // FoldRows folds raw attribute values directly. The union law bounds the
  // drift: Build(A ∪ B) and Merge(Build(A), Build(B)) agree exactly for
  // count-based sketches (equi-width bins, sorted samples) and within a
  // bounded quantile-interpolation error for equi-depth histograms (see
  // DESIGN.md §10 and the est_merge_property_test suite).
  //
  // Mutators are NOT part of the const thread-safety contract above: the
  // live server only ever mutates its private ingest-side accumulator and
  // publishes immutable clones to readers. Defaults: not mergeable /
  // kFailedPrecondition.
  virtual bool SupportsMerge() const { return false; }
  virtual Status MergeFrom(const SelectivityEstimator& other);
  virtual Status FoldRows(std::span<const double> rows);

  // --- Query feedback (the query-driven estimation contract, DESIGN.md §14) -
  //
  // A *query-driven* estimator can refine itself from execution feedback:
  // ObserveTrueSelectivity folds one (range, true-selectivity) observation
  // into the estimator's state. Like the merge contract above, observation
  // is a mutator and NOT part of the const thread-safety contract — the
  // catalog's write-back path (catalog/statistics_catalog) observes on a
  // private clone and publishes it atomically, so concurrent readers keep
  // serving the previous immutable state.
  //
  // Observation ordering matters: feedback estimators are online learners,
  // so permuting the observation sequence may change the state. The family
  // contract (enforced by feedback_property_test) bounds that divergence:
  // after repeated passes over the same observation multiset, estimates
  // under any two orderings agree within a documented tolerance, and an
  // observation whose true selectivity the estimator already predicts
  // exactly is a no-op (idempotence at the fixed point).
  //
  // feedback_observations() counts accepted observations (monotone).
  // Defaults: not query-driven / kFailedPrecondition / 0.
  virtual bool SupportsFeedback() const { return false; }
  virtual Status ObserveTrueSelectivity(const RangeQuery& query,
                                        double true_selectivity);
  virtual uint64_t feedback_observations() const { return 0; }

 protected:
  // Shared body for EstimateSelectivityBatch overrides: fans chunks across
  // the shared pool and runs `per_query(query) -> double` over each chunk.
  // Overrides pass a lambda that calls their concrete EstimateSelectivity
  // qualified, so the inner loop is a direct (inlinable) call instead of a
  // per-query virtual dispatch.
  template <typename PerQuery>
  static void BatchWith(std::span<const RangeQuery> queries,
                        std::span<double> out, PerQuery&& per_query) {
    ThreadPool& pool = ThreadPool::Default();
    ParallelFor(&pool, queries.size(), 4 * pool.num_threads(),
                [&queries, &out, &per_query](size_t begin, size_t end,
                                             size_t /*chunk*/) {
                  for (size_t i = begin; i < end; ++i) {
                    out[i] = per_query(queries[i]);
                  }
                });
  }

  // Vector-tier body: fans chunks across the pool like BatchWith, but each
  // chunk is processed `width` queries at a time through `block(a, b, r)`
  // (width-long kSimdAlign-aligned arrays; returns false to decline). A
  // declined block — and any queries a partial tail cannot pad — falls back
  // to `per_query`, so every out[i] is the scalar value regardless of which
  // path computed it. Partial tails are padded by replicating their last
  // query: block lanes are independent, so padding never perturbs a real
  // lane.
  template <typename BlockFn, typename PerQuery>
  static void BatchWithBlocks(std::span<const RangeQuery> queries,
                              std::span<double> out, int width, BlockFn&& block,
                              PerQuery&& per_query) {
    ThreadPool& pool = ThreadPool::Default();
    ParallelFor(&pool, queries.size(), 4 * pool.num_threads(),
                [&queries, &out, &block, &per_query, width](
                    size_t begin, size_t end, size_t /*chunk*/) {
                  alignas(kSimdAlign) double a[kMaxSimdWidth];
                  alignas(kSimdAlign) double b[kMaxSimdWidth];
                  alignas(kSimdAlign) double r[kMaxSimdWidth];
                  const size_t w = static_cast<size_t>(width);
                  for (size_t i = begin; i < end; i += w) {
                    const size_t m = end - i < w ? end - i : w;
                    for (size_t k = 0; k < m; ++k) {
                      a[k] = queries[i + k].a;
                      b[k] = queries[i + k].b;
                    }
                    for (size_t k = m; k < w; ++k) {
                      a[k] = a[m - 1];
                      b[k] = b[m - 1];
                    }
                    if (block(a, b, r)) {
                      for (size_t k = 0; k < m; ++k) out[i + k] = r[k];
                    } else {
                      for (size_t k = 0; k < m; ++k) {
                        out[i + k] = per_query(queries[i + k]);
                      }
                    }
                  }
                });
  }

  // Batch body for every BinnedDensity-backed histogram estimator: routes
  // blocks through bins.SelectivityBlock on the active vector tier and
  // falls back to the per-query scalar path on the scalar tier.
  // (Templated so this header needs no histogram dependency.)
  template <typename Bins>
  static void BatchWithBinned(const Bins& bins,
                              std::span<const RangeQuery> queries,
                              std::span<double> out) {
    const auto per_query = [&bins](const RangeQuery& q) {
      return bins.Selectivity(q.a, q.b);
    };
    const SimdOps* ops = ActiveSimdOps();
    if (ops == nullptr) {
      BatchWith(queries, out, per_query);
      return;
    }
    BatchWithBlocks(
        queries, out, ops->width,
        [&bins, ops](const double* a, const double* b, double* r) {
          bins.SelectivityBlock(*ops, a, b, r);
          return true;
        },
        per_query);
  }
};

}  // namespace selest

#endif  // SELEST_EST_SELECTIVITY_ESTIMATOR_H_
