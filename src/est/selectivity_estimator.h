// The estimator interface (§2).
//
// A selectivity estimator approximates the distribution selectivity
// σ(a, b) = P(a <= A <= b) of a range query from a sample of the relation.
// The instance result size is estimated as N · σ̂(a, b).
#ifndef SELEST_EST_SELECTIVITY_ESTIMATOR_H_
#define SELEST_EST_SELECTIVITY_ESTIMATOR_H_

#include <cstddef>
#include <string>

#include "src/query/range_query.h"

namespace selest {

class SelectivityEstimator {
 public:
  virtual ~SelectivityEstimator() = default;

  // Estimated selectivity σ̂(a, b) in [0, 1]. Requires a <= b.
  virtual double EstimateSelectivity(double a, double b) const = 0;

  double EstimateSelectivity(const RangeQuery& q) const {
    return EstimateSelectivity(q.a, q.b);
  }

  // Estimated result size for a relation of `num_records` records.
  double EstimateResultSize(const RangeQuery& q, size_t num_records) const {
    return EstimateSelectivity(q) * static_cast<double>(num_records);
  }

  // Bytes a system catalog would persist for this estimator (bin edges and
  // counts for histograms, the sample for sampling/kernel estimators).
  virtual size_t StorageBytes() const = 0;

  // Short human-readable name, e.g. "equi-width(20)".
  virtual std::string name() const = 0;
};

}  // namespace selest

#endif  // SELEST_EST_SELECTIVITY_ESTIMATOR_H_
