// Graceful degradation for selectivity estimation.
//
// A selectivity estimator embedded in a query optimizer must never crash
// the host or hand it a poisoned number: a malformed query (NaN/Inf
// bounds, inverted range) or a misbehaving estimator (non-finite or
// out-of-[0, 1] estimate) should degrade to a bounded, cheaper answer —
// ultimately the paper's §3.1 uniform/System-R baseline, which is
// computable from the domain alone — and be counted, not fatal.
//
// GuardedEstimator decorates a chain of estimators (primary first,
// fallbacks after). Per query it
//   1. repairs the query: NaN bounds widen to the domain edge, inverted
//      ranges are swapped, everything is clamped into the domain;
//   2. walks the chain until a link returns a finite estimate, clamping
//      out-of-[0, 1] drift;
//   3. falls back to the uniform estimate (b − a) / |domain| when every
//      link returns garbage.
// A healthy chain head answers every query unchanged — the guard is
// observationally transparent then (bit-identical estimates), which is
// what lets the guarded sweep keep the parallel runner's determinism
// contract. Degradations are counted in thread-safe counters for the
// experiment report.
//
// Thread-safety: EstimateSelectivity/EstimateSelectivityBatch follow the
// SelectivityEstimator contract (safe for concurrent const calls); the
// counters are relaxed atomics.
//
// BuildGuardedEstimator in est/estimator_factory.h assembles the chain
// from declarative configs and records why the primary was skipped.
#ifndef SELEST_EST_GUARDED_ESTIMATOR_H_
#define SELEST_EST_GUARDED_ESTIMATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/data/domain.h"
#include "src/est/selectivity_estimator.h"

namespace selest {

// Snapshot of a GuardedEstimator's degradation counters.
struct GuardedStats {
  uint64_t queries = 0;             // total estimate calls
  uint64_t repaired_queries = 0;    // NaN bound widened or inverted range swapped
  uint64_t clamped_estimates = 0;   // finite estimate outside [0, 1], clamped
  uint64_t fallback_estimates = 0;  // answered by a non-primary chain link
  uint64_t uniform_rescues = 0;     // whole chain non-finite; uniform answered

  // Any event that changed an answer relative to the unguarded primary.
  bool degraded() const {
    return repaired_queries + clamped_estimates + fallback_estimates +
               uniform_rescues >
           0;
  }
};

class GuardedEstimator : public SelectivityEstimator {
 public:
  // `chain` is primary-first; entries must be non-null. An empty chain is
  // allowed (every query degrades straight to the uniform answer).
  GuardedEstimator(std::vector<std::unique_ptr<SelectivityEstimator>> chain,
                   const Domain& domain);

  // Never NaN/Inf, always in [0, 1], for any double inputs including
  // NaN/Inf bounds and inverted ranges.
  using SelectivityEstimator::EstimateSelectivity;
  double EstimateSelectivity(double a, double b) const override;
  void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                std::span<double> out) const override;

  // Sum over the chain (the fallbacks are part of the persisted state).
  size_t StorageBytes() const override;

  // "guarded(<link> | <link> | ...)", or "guarded(uniform)" for an empty
  // chain.
  std::string name() const override;

  GuardedStats stats() const;

  size_t chain_length() const { return chain_.size(); }
  // The chain head, or nullptr for an empty chain.
  const SelectivityEstimator* head() const {
    return chain_.empty() ? nullptr : chain_.front().get();
  }

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kGuarded;
  }
  // Serializes the domain and every chain link recursively. Degradation
  // counters are serving-lifetime state and restart at zero on load; the
  // atomics also make this class non-movable, so deserialization lives in
  // est/estimator_snapshot.cc on the public constructor.
  Status SerializeState(ByteWriter& writer) const override;

  // The guard is a self-correcting tier when any link is query-driven:
  // feedback is repaired like a query (NaN→domain edge, inverted→swap) and
  // forwarded to every supporting link, so a fallback keeps learning even
  // while a poisoned primary is being skipped. Mutator — not part of the
  // const thread-safety contract (the catalog write-back observes a clone).
  bool SupportsFeedback() const override;
  Status ObserveTrueSelectivity(const RangeQuery& query,
                                double true_selectivity) override;
  // Observations accepted by at least one link.
  uint64_t feedback_observations() const override {
    return feedback_observations_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<SelectivityEstimator>> chain_;
  Domain domain_;

  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> repaired_queries_{0};
  mutable std::atomic<uint64_t> clamped_estimates_{0};
  mutable std::atomic<uint64_t> fallback_estimates_{0};
  mutable std::atomic<uint64_t> uniform_rescues_{0};
  std::atomic<uint64_t> feedback_observations_{0};
};

}  // namespace selest

#endif  // SELEST_EST_GUARDED_ESTIMATOR_H_
