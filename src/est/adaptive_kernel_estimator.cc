#include "src/est/adaptive_kernel_estimator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/density/kde.h"
#include "src/est/estimator_snapshot.h"
#include "src/smoothing/normal_scale.h"

namespace selest {

StatusOr<AdaptiveKernelEstimator> AdaptiveKernelEstimator::Create(
    std::span<const double> sample, const Domain& domain,
    const AdaptiveKernelOptions& options) {
  if (sample.empty()) {
    return InvalidArgumentError("adaptive kernel estimator needs a sample");
  }
  if (options.sensitivity < 0.0 || options.sensitivity > 1.0) {
    return InvalidArgumentError("sensitivity must be in [0, 1]");
  }
  if (options.max_widening < 1.0) {
    return InvalidArgumentError("max_widening must be >= 1");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());

  double h0 = options.base_bandwidth;
  if (h0 <= 0.0) {
    h0 = NormalScaleBandwidth(sorted, domain, options.kernel);
  }
  if (!(h0 > 0.0) || !std::isfinite(h0)) {
    return InvalidArgumentError("adaptive base bandwidth must be positive");
  }

  // Pilot density at the samples (reflection keeps boundary pilots sane).
  auto pilot = Kde::Create(sorted, h0, domain, options.kernel,
                           BoundaryPolicy::kReflection);
  if (!pilot.ok()) return pilot.status();
  std::vector<double> pilot_density(sorted.size());
  double log_sum = 0.0;
  constexpr double kFloor = 1e-300;
  for (size_t i = 0; i < sorted.size(); ++i) {
    pilot_density[i] = std::max(pilot->Density(sorted[i]), kFloor);
    log_sum += std::log(pilot_density[i]);
  }
  const double geometric_mean =
      std::exp(log_sum / static_cast<double>(sorted.size()));

  std::vector<double> bandwidths(sorted.size());
  double max_bandwidth = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    const double factor = std::min(
        std::pow(pilot_density[i] / geometric_mean, -options.sensitivity),
        options.max_widening);
    bandwidths[i] = h0 * factor;
    max_bandwidth = std::max(max_bandwidth, bandwidths[i]);
  }
  return AdaptiveKernelEstimator(std::move(sorted), std::move(bandwidths),
                                 max_bandwidth, h0, domain, options.kernel);
}

double AdaptiveKernelEstimator::EstimateSelectivity(double a, double b) const {
  if (a > b) return 0.0;
  a = domain_.Clamp(a);
  b = domain_.Clamp(b);
  if (a >= b) return 0.0;
  const double radius = kernel_.support_radius() * max_bandwidth_;
  const auto first =
      std::lower_bound(sorted_.begin(), sorted_.end(), a - radius);
  const auto last =
      std::upper_bound(sorted_.begin(), sorted_.end(), b + radius);
  double sum = 0.0;
  for (auto it = first; it != last; ++it) {
    const auto i = static_cast<size_t>(it - sorted_.begin());
    const double h = bandwidths_[i];
    sum += kernel_.Cdf((b - *it) / h) - kernel_.Cdf((a - *it) / h);
  }
  return std::clamp(sum / static_cast<double>(sorted_.size()), 0.0, 1.0);
}

size_t AdaptiveKernelEstimator::StorageBytes() const {
  // Sample plus per-sample bandwidths.
  return sizeof(double) * (2 * sorted_.size() + 1);
}

std::string AdaptiveKernelEstimator::name() const {
  return "adaptive-kernel(" + kernel_.name() + ")";
}

Status AdaptiveKernelEstimator::SerializeState(ByteWriter& writer) const {
  writer.WriteDoubleVector(sorted_);
  writer.WriteDoubleVector(bandwidths_);
  writer.WriteDouble(base_bandwidth_);
  WriteDomain(writer, domain_);
  WriteKernel(writer, kernel_);
  return Status::Ok();
}

StatusOr<AdaptiveKernelEstimator> AdaptiveKernelEstimator::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(std::vector<double> sorted,
                          reader.ReadDoubleVector());
  SELEST_ASSIGN_OR_RETURN(std::vector<double> bandwidths,
                          reader.ReadDoubleVector());
  SELEST_ASSIGN_OR_RETURN(const double base_bandwidth, reader.ReadDouble());
  SELEST_ASSIGN_OR_RETURN(const Domain domain, ReadDomain(reader));
  SELEST_ASSIGN_OR_RETURN(const Kernel kernel, ReadKernel(reader));
  if (sorted.empty() || !std::is_sorted(sorted.begin(), sorted.end())) {
    return InvalidArgumentError(
        "adaptive kernel snapshot samples must be non-empty and sorted");
  }
  if (bandwidths.size() != sorted.size()) {
    return InvalidArgumentError(
        "adaptive kernel snapshot bandwidths do not parallel the samples");
  }
  if (!(base_bandwidth > 0.0) || !std::isfinite(base_bandwidth)) {
    return InvalidArgumentError(
        "adaptive kernel snapshot base bandwidth must be positive");
  }
  // max_bandwidth_ is derived state; recomputing it keeps the snapshot free
  // of a redundant field that could drift out of sync.
  double max_bandwidth = 0.0;
  for (double h : bandwidths) {
    if (!(h > 0.0) || !std::isfinite(h)) {
      return InvalidArgumentError(
          "adaptive kernel snapshot bandwidths must be positive");
    }
    max_bandwidth = std::max(max_bandwidth, h);
  }
  return AdaptiveKernelEstimator(std::move(sorted), std::move(bandwidths),
                                 max_bandwidth, base_bandwidth, domain,
                                 kernel);
}

}  // namespace selest
