// Average shifted histogram (ASH) estimator (§3.1).
//
// A sequence of equi-width histograms with identical bin width but shifted
// origins; the selectivity estimate is the average over the shifts. This
// smooths the discontinuities at bin boundaries of a single histogram
// (though jump points remain, in diminished form). The paper uses ten
// shifts in its final comparison (Fig. 12).
#ifndef SELEST_EST_AVERAGE_SHIFTED_HISTOGRAM_H_
#define SELEST_EST_AVERAGE_SHIFTED_HISTOGRAM_H_

#include <span>
#include <vector>

#include "src/data/domain.h"
#include "src/est/equi_width_histogram.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

class AverageShiftedHistogram : public SelectivityEstimator {
 public:
  // `num_shifts` equi-width histograms with `num_bins` bins each, origins
  // offset by (i/num_shifts)·bin width.
  static StatusOr<AverageShiftedHistogram> Create(
      std::span<const double> sample, const Domain& domain, int num_bins,
      int num_shifts = 10);

  double EstimateSelectivity(double a, double b) const override;
  void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                std::span<double> out) const override;
  size_t StorageBytes() const override;
  std::string name() const override;

  int num_shifts() const { return static_cast<int>(histograms_.size()); }
  int num_bins() const { return num_bins_; }

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kAverageShifted;
  }
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<AverageShiftedHistogram> DeserializeState(
      ByteReader& reader);

 private:
  AverageShiftedHistogram(std::vector<EquiWidthHistogram> histograms,
                          int num_bins)
      : histograms_(std::move(histograms)), num_bins_(num_bins) {}

  std::vector<EquiWidthHistogram> histograms_;
  int num_bins_;
};

}  // namespace selest

#endif  // SELEST_EST_AVERAGE_SHIFTED_HISTOGRAM_H_
