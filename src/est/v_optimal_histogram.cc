#include "src/est/v_optimal_histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "src/est/estimator_snapshot.h"
#include "src/util/check.h"

namespace selest {

StatusOr<VOptimalHistogram> VOptimalHistogram::Create(
    std::span<const double> sample, const Domain& domain, int num_buckets,
    int base_bins) {
  if (sample.empty()) {
    return InvalidArgumentError("v-optimal histogram needs a sample");
  }
  if (num_buckets < 1) {
    return InvalidArgumentError("v-optimal histogram needs >= 1 bucket");
  }
  if (base_bins < num_buckets) {
    return InvalidArgumentError("base_bins must be >= num_buckets");
  }

  // 1. Pre-bin the sample onto fine equi-width cells.
  const auto cells = static_cast<size_t>(base_bins);
  std::vector<double> frequency(cells, 0.0);
  const double cell_width = domain.width() / base_bins;
  for (double v : sample) {
    auto cell = static_cast<long>((domain.Clamp(v) - domain.lo) / cell_width);
    cell = std::clamp<long>(cell, 0, base_bins - 1);
    frequency[static_cast<size_t>(cell)] += 1.0;
  }

  // 2. Prefix sums for O(1) bucket SSE:
  //    sse(i, j) = Σ f² − (Σ f)² / (j − i) over cells [i, j).
  std::vector<double> prefix(cells + 1, 0.0);
  std::vector<double> prefix_sq(cells + 1, 0.0);
  for (size_t c = 0; c < cells; ++c) {
    prefix[c + 1] = prefix[c] + frequency[c];
    prefix_sq[c + 1] = prefix_sq[c] + frequency[c] * frequency[c];
  }
  const auto bucket_sse = [&](size_t i, size_t j) {
    const double sum = prefix[j] - prefix[i];
    const double sum_sq = prefix_sq[j] - prefix_sq[i];
    return sum_sq - sum * sum / static_cast<double>(j - i);
  };

  // 3. DP over (cells, buckets). best[j] after round k = minimal SSE of
  // covering cells [0, j) with k buckets.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto buckets = static_cast<size_t>(num_buckets);
  std::vector<double> best(cells + 1, kInf);
  std::vector<std::vector<uint32_t>> split(
      buckets + 1, std::vector<uint32_t>(cells + 1, 0));
  best[0] = 0.0;
  for (size_t j = 1; j <= cells; ++j) best[j] = bucket_sse(0, j);
  for (size_t k = 2; k <= buckets; ++k) {
    std::vector<double> next(cells + 1, kInf);
    for (size_t j = k; j <= cells; ++j) {
      for (size_t i = k - 1; i < j; ++i) {
        if (best[i] == kInf) continue;
        const double candidate = best[i] + bucket_sse(i, j);
        if (candidate < next[j]) {
          next[j] = candidate;
          split[k][j] = static_cast<uint32_t>(i);
        }
      }
    }
    best = std::move(next);
  }

  // 4. Recover the partition (cell boundaries → bucket edges).
  std::vector<size_t> boundaries;  // cell indices, descending
  size_t j = cells;
  for (size_t k = buckets; k >= 2; --k) {
    const size_t i = split[k][j];
    boundaries.push_back(i);
    j = i;
  }
  std::reverse(boundaries.begin(), boundaries.end());

  std::vector<double> edges;
  std::vector<double> counts;
  edges.reserve(buckets + 1);
  counts.reserve(buckets);
  edges.push_back(domain.lo);
  size_t previous = 0;
  for (size_t boundary : boundaries) {
    edges.push_back(domain.lo + static_cast<double>(boundary) * cell_width);
    counts.push_back(prefix[boundary] - prefix[previous]);
    previous = boundary;
  }
  edges.push_back(domain.hi);
  counts.push_back(prefix[cells] - prefix[previous]);

  auto bins = BinnedDensity::Create(std::move(edges), std::move(counts),
                                    static_cast<double>(sample.size()));
  if (!bins.ok()) return bins.status();
  return VOptimalHistogram(std::move(bins).value(), best[cells]);
}

double VOptimalHistogram::EstimateSelectivity(double a, double b) const {
  return bins_.Selectivity(a, b);
}

void VOptimalHistogram::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  SELEST_CHECK_EQ(queries.size(), out.size());
  BatchWithBinned(bins_, queries, out);
}

std::string VOptimalHistogram::name() const {
  return "v-optimal(" + std::to_string(num_buckets()) + ")";
}

Status VOptimalHistogram::SerializeState(ByteWriter& writer) const {
  WriteBinnedDensity(writer, bins_);
  writer.WriteDouble(sse_);
  return Status::Ok();
}

StatusOr<VOptimalHistogram> VOptimalHistogram::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(BinnedDensity bins, ReadBinnedDensity(reader));
  SELEST_ASSIGN_OR_RETURN(const double sse, reader.ReadDouble());
  if (!std::isfinite(sse) || sse < 0.0) {
    return InvalidArgumentError("v-optimal snapshot SSE must be >= 0");
  }
  return VOptimalHistogram(std::move(bins), sse);
}

}  // namespace selest
