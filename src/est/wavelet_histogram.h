// Wavelet-based histogram (Matias, Vitter & Wang — the paper's
// reference [4]).
//
// The sample's frequency vector over 2^k fine cells is Haar-transformed;
// only the `num_coefficients` largest-magnitude coefficients are kept (the
// synopsis a system would store) and the density is reconstructed from
// them. Thresholding in the wavelet domain adapts resolution locally:
// smooth regions compress into few coefficients while sharp features keep
// theirs — a different trade-off from any fixed-bucket histogram.
#ifndef SELEST_EST_WAVELET_HISTOGRAM_H_
#define SELEST_EST_WAVELET_HISTOGRAM_H_

#include <span>

#include "src/data/domain.h"
#include "src/density/histogram_density.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

class WaveletHistogram : public SelectivityEstimator {
 public:
  // Keeps `num_coefficients` Haar coefficients (>= 1; the overall-average
  // coefficient is always among them). `base_bins` must be a power of two.
  static StatusOr<WaveletHistogram> Create(std::span<const double> sample,
                                           const Domain& domain,
                                           int num_coefficients,
                                           int base_bins = 512);

  double EstimateSelectivity(double a, double b) const override;
  void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                std::span<double> out) const override;
  // The synopsis: (index, value) per retained coefficient.
  size_t StorageBytes() const override;
  std::string name() const override;

  int num_coefficients() const { return num_coefficients_; }
  const BinnedDensity& reconstruction() const { return bins_; }

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kWavelet;
  }
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<WaveletHistogram> DeserializeState(ByteReader& reader);

 private:
  WaveletHistogram(BinnedDensity bins, int num_coefficients)
      : bins_(std::move(bins)), num_coefficients_(num_coefficients) {}

  BinnedDensity bins_;  // density reconstructed from the kept coefficients
  int num_coefficients_;
};

// In-place orthonormal Haar transform of a power-of-two-length vector and
// its inverse. Exposed for tests.
void HaarTransform(std::span<double> values);
void InverseHaarTransform(std::span<double> values);

}  // namespace selest

#endif  // SELEST_EST_WAVELET_HISTOGRAM_H_
