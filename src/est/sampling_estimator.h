// Pure sampling estimator (§2).
//
// The sample fraction falling inside the query range estimates the
// selectivity directly. Consistent, but converges only at rate O(n^−1/2) —
// the baseline every other estimator is measured against.
#ifndef SELEST_EST_SAMPLING_ESTIMATOR_H_
#define SELEST_EST_SAMPLING_ESTIMATOR_H_

#include <span>
#include <vector>

#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

class SamplingEstimator : public SelectivityEstimator {
 public:
  // Fails on an empty sample.
  static StatusOr<SamplingEstimator> Create(std::span<const double> sample);

  double EstimateSelectivity(double a, double b) const override;
  void EstimateSelectivityBatch(std::span<const RangeQuery> queries,
                                std::span<double> out) const override;
  size_t StorageBytes() const override;
  std::string name() const override { return "sampling"; }

  size_t sample_size() const { return sorted_.size(); }

  EstimatorTag SnapshotTypeTag() const override {
    return EstimatorTag::kSampling;
  }
  Status SerializeState(ByteWriter& writer) const override;
  static StatusOr<SamplingEstimator> DeserializeState(ByteReader& reader);

  // Exact incremental maintenance: the state is the sorted sample itself,
  // so merging another instance (or folding raw rows) in sorted order
  // reproduces Build(A ∪ B) bit for bit.
  bool SupportsMerge() const override { return true; }
  Status MergeFrom(const SelectivityEstimator& other) override;
  Status FoldRows(std::span<const double> rows) override;

 private:
  explicit SamplingEstimator(AlignedDoubles sorted)
      : sorted_(std::move(sorted)) {}

  // Contiguous 64-byte-aligned sorted sample (SoA hot state for the
  // vector batch kernels; DESIGN.md §12).
  AlignedDoubles sorted_;
};

}  // namespace selest

#endif  // SELEST_EST_SAMPLING_ESTIMATOR_H_
