#include "src/est/estimator_factory.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "src/est/average_shifted_histogram.h"
#include "src/exec/fault_injection.h"
#include "src/est/equi_depth_histogram.h"
#include "src/est/equi_width_histogram.h"
#include "src/est/hybrid_estimator.h"
#include "src/est/kernel_estimator.h"
#include "src/est/adaptive_kernel_estimator.h"
#include "src/est/max_diff_histogram.h"
#include "src/est/sampling_estimator.h"
#include "src/est/uniform_estimator.h"
#include "src/est/v_optimal_histogram.h"
#include "src/est/wavelet_histogram.h"
#include "src/feedback/feedback_histogram.h"
#include "src/feedback/reconstructed_distribution.h"
#include "src/online/online_learning.h"
#include "src/smoothing/direct_plug_in.h"
#include "src/smoothing/normal_scale.h"

namespace selest {
namespace {

// Wraps a concrete estimator (value type) for the polymorphic interface.
template <typename T>
std::unique_ptr<SelectivityEstimator> Wrap(T estimator) {
  return std::make_unique<T>(std::move(estimator));
}

// A sample or domain read from an external file can carry NaN/Inf; catch
// it here once so no estimator sees a poisoned value.
Status ValidateBuildInputs(std::span<const double> sample,
                           const Domain& domain) {
  if (!std::isfinite(domain.lo) || !std::isfinite(domain.hi) ||
      !(domain.lo < domain.hi)) {
    return InvalidArgumentError("estimator domain must be a finite non-empty "
                                "range, got " +
                                domain.ToString());
  }
  for (size_t i = 0; i < sample.size(); ++i) {
    if (!std::isfinite(sample[i])) {
      return InvalidArgumentError("sample value at index " + std::to_string(i) +
                                  " is not finite");
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<int> ResolveConfigNumBins(std::span<const double> sample,
                                   const Domain& domain,
                                   const EstimatorConfig& config) {
  int num_bins = 1;
  switch (config.smoothing) {
    case SmoothingRule::kNormalScale: {
      SELEST_ASSIGN_OR_RETURN(num_bins, TryNormalScaleNumBins(sample, domain));
      break;
    }
    case SmoothingRule::kDirectPlugIn: {
      SELEST_ASSIGN_OR_RETURN(
          num_bins, TryDirectPlugInNumBins(sample, domain, config.dpi_stages));
      break;
    }
    case SmoothingRule::kFixed: {
      if (!std::isfinite(config.fixed_smoothing)) {
        return InvalidArgumentError("fixed bin count must be finite");
      }
      if (config.fixed_smoothing > static_cast<double>(kMaxNumBins)) {
        return InvalidArgumentError(
            "fixed bin count " + std::to_string(config.fixed_smoothing) +
            " exceeds the factory limit " + std::to_string(kMaxNumBins));
      }
      num_bins =
          std::max(1, static_cast<int>(std::lround(config.fixed_smoothing)));
      break;
    }
  }
  // More bins than a discrete domain has representable values buys no
  // resolution; clamp instead of allocating empty bins.
  if (domain.discrete && domain.cardinality() > 0) {
    const uint64_t cardinality = domain.cardinality();
    if (static_cast<uint64_t>(num_bins) > cardinality) {
      num_bins = static_cast<int>(
          std::min<uint64_t>(cardinality, static_cast<uint64_t>(kMaxNumBins)));
    }
  }
  if (num_bins > kMaxNumBins) {
    return InvalidArgumentError("resolved bin count " +
                                std::to_string(num_bins) +
                                " exceeds the factory limit " +
                                std::to_string(kMaxNumBins));
  }
  return num_bins;
}

namespace {

StatusOr<double> ResolveBandwidth(std::span<const double> sample,
                                  const Domain& domain,
                                  const EstimatorConfig& config,
                                  const Kernel& kernel) {
  switch (config.smoothing) {
    case SmoothingRule::kNormalScale:
      return TryNormalScaleBandwidth(sample, domain, kernel);
    case SmoothingRule::kDirectPlugIn:
      return TryDirectPlugInBandwidth(sample, domain, kernel,
                                      config.dpi_stages);
    case SmoothingRule::kFixed: {
      if (!std::isfinite(config.fixed_smoothing) ||
          config.fixed_smoothing <= 0.0) {
        return InvalidArgumentError(
            "fixed bandwidth must be finite and positive, got " +
            std::to_string(config.fixed_smoothing));
      }
      return config.fixed_smoothing;
    }
  }
  return InvalidArgumentError("unknown smoothing rule");
}

}  // namespace

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kSampling:
      return "sampling";
    case EstimatorKind::kUniform:
      return "uniform";
    case EstimatorKind::kEquiWidth:
      return "equi-width";
    case EstimatorKind::kEquiDepth:
      return "equi-depth";
    case EstimatorKind::kMaxDiff:
      return "max-diff";
    case EstimatorKind::kAverageShifted:
      return "ash";
    case EstimatorKind::kKernel:
      return "kernel";
    case EstimatorKind::kHybrid:
      return "hybrid";
    case EstimatorKind::kVOptimal:
      return "v-optimal";
    case EstimatorKind::kAdaptiveKernel:
      return "adaptive-kernel";
    case EstimatorKind::kWavelet:
      return "wavelet";
    case EstimatorKind::kFeedback:
      return "feedback";
    case EstimatorKind::kReconstructed:
      return "reconstructed";
    case EstimatorKind::kOnlineLearning:
      return "online-learning";
  }
  return "unknown";
}

const char* SmoothingRuleName(SmoothingRule rule) {
  switch (rule) {
    case SmoothingRule::kNormalScale:
      return "h-NS";
    case SmoothingRule::kDirectPlugIn:
      return "h-DPI";
    case SmoothingRule::kFixed:
      return "h-fixed";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<SelectivityEstimator>> BuildEstimator(
    std::span<const double> sample, const Domain& domain,
    const EstimatorConfig& config) {
  SELEST_RETURN_IF_ERROR(FaultInjector::Check(kFaultPointEstimatorBuild));
  SELEST_RETURN_IF_ERROR(ValidateBuildInputs(sample, domain));
  if (sample.empty() && config.kind != EstimatorKind::kUniform) {
    return InvalidArgumentError("estimator needs a non-empty sample");
  }
  const Kernel kernel(config.kernel);
  switch (config.kind) {
    case EstimatorKind::kSampling: {
      auto estimator = SamplingEstimator::Create(sample);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kUniform:
      return std::unique_ptr<SelectivityEstimator>(
          std::make_unique<UniformEstimator>(domain));
    case EstimatorKind::kEquiWidth: {
      SELEST_ASSIGN_OR_RETURN(const int num_bins,
                              ResolveConfigNumBins(sample, domain, config));
      auto estimator = EquiWidthHistogram::Create(sample, domain, num_bins);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kEquiDepth: {
      SELEST_ASSIGN_OR_RETURN(const int num_bins,
                              ResolveConfigNumBins(sample, domain, config));
      auto estimator = EquiDepthHistogram::Create(sample, domain, num_bins);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kMaxDiff: {
      SELEST_ASSIGN_OR_RETURN(const int num_bins,
                              ResolveConfigNumBins(sample, domain, config));
      auto estimator = MaxDiffHistogram::Create(sample, domain, num_bins);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kAverageShifted: {
      SELEST_ASSIGN_OR_RETURN(const int num_bins,
                              ResolveConfigNumBins(sample, domain, config));
      auto estimator = AverageShiftedHistogram::Create(sample, domain, num_bins,
                                                       config.ash_shifts);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kKernel: {
      KernelEstimatorOptions options;
      options.kernel = kernel;
      options.boundary = config.boundary;
      SELEST_ASSIGN_OR_RETURN(options.bandwidth,
                              ResolveBandwidth(sample, domain, config, kernel));
      auto estimator = KernelEstimator::Create(sample, domain, options);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kHybrid: {
      HybridEstimatorOptions options;
      options.kernel = kernel;
      options.boundary = config.boundary;
      auto estimator = HybridEstimator::Create(sample, domain, options);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kVOptimal: {
      SELEST_ASSIGN_OR_RETURN(const int num_bins,
                              ResolveConfigNumBins(sample, domain, config));
      auto estimator = VOptimalHistogram::Create(sample, domain, num_bins);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kAdaptiveKernel: {
      AdaptiveKernelOptions options;
      options.kernel = kernel;
      SELEST_ASSIGN_OR_RETURN(options.base_bandwidth,
                              ResolveBandwidth(sample, domain, config, kernel));
      auto estimator =
          AdaptiveKernelEstimator::Create(sample, domain, options);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kWavelet: {
      // The bin-count rules double as the coefficient budget: a histogram
      // with k buckets and a synopsis of k coefficients store comparable
      // state.
      SELEST_ASSIGN_OR_RETURN(const int num_bins,
                              ResolveConfigNumBins(sample, domain, config));
      auto estimator = WaveletHistogram::Create(sample, domain, num_bins);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kFeedback: {
      SELEST_ASSIGN_OR_RETURN(const int num_bins,
                              ResolveConfigNumBins(sample, domain, config));
      FeedbackHistogramOptions options;
      options.num_bins = num_bins;
      auto estimator =
          FeedbackHistogram::CreateFromSample(sample, domain, options);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kReconstructed: {
      SELEST_ASSIGN_OR_RETURN(const int num_bins,
                              ResolveConfigNumBins(sample, domain, config));
      ReconstructedDistributionOptions options;
      options.num_bins = num_bins;
      auto estimator = ReconstructedDistributionEstimator::CreateFromSample(
          sample, domain, options);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kOnlineLearning: {
      SELEST_ASSIGN_OR_RETURN(const int num_bins,
                              ResolveConfigNumBins(sample, domain, config));
      OnlineLearningOptions options;
      options.num_bins = num_bins;
      auto estimator =
          OnlineLearningEstimator::CreateFromSample(sample, domain, options);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
  }
  return InvalidArgumentError("unknown estimator kind");
}

std::vector<EstimatorConfig> DefaultFallbackConfigs() {
  EstimatorConfig equi_width;
  equi_width.kind = EstimatorKind::kEquiWidth;
  equi_width.smoothing = SmoothingRule::kNormalScale;
  return {equi_width};
}

StatusOr<GuardedBuild> BuildGuardedEstimator(
    std::span<const double> sample, const Domain& domain,
    const EstimatorConfig& config,
    std::span<const EstimatorConfig> fallbacks) {
  // The uniform safety net needs a usable domain; nothing can degrade past
  // a range that does not describe an attribute.
  if (!std::isfinite(domain.lo) || !std::isfinite(domain.hi) ||
      !(domain.lo < domain.hi)) {
    return InvalidArgumentError("guarded build needs a finite non-empty "
                                "domain, got " +
                                domain.ToString());
  }
  GuardedBuild build;
  std::vector<std::unique_ptr<SelectivityEstimator>> chain;
  auto primary = BuildEstimator(sample, domain, config);
  build.primary_status = primary.status();
  if (primary.ok()) chain.push_back(std::move(primary).value());
  for (const EstimatorConfig& fallback : fallbacks) {
    auto link = BuildEstimator(sample, domain, fallback);
    if (link.ok()) chain.push_back(std::move(link).value());
  }
  // The uniform baseline is constructed directly (not via BuildEstimator)
  // so that build-time fault injection cannot strip the last rung.
  chain.push_back(std::make_unique<UniformEstimator>(domain));
  build.estimator =
      std::make_unique<GuardedEstimator>(std::move(chain), domain);
  return build;
}

StatusOr<GuardedBuild> BuildGuardedEstimator(std::span<const double> sample,
                                             const Domain& domain,
                                             const EstimatorConfig& config) {
  const std::vector<EstimatorConfig> fallbacks = DefaultFallbackConfigs();
  return BuildGuardedEstimator(sample, domain, config, fallbacks);
}

namespace {

// FNV-1a over the config's fields, each mixed as a fixed-width token so
// adjacent fields cannot alias (e.g. kind=1,dpi=2 vs kind=12,dpi=...).
uint64_t Fnv1a(uint64_t hash, uint64_t token) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (token >> shift) & 0xFFull;
    hash *= kPrime;
  }
  return hash;
}

uint64_t DoubleToken(double value) {
  // +0.0 and -0.0 compare equal but differ bitwise; normalize so equal
  // configs fingerprint equal.
  if (value == 0.0) value = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t FingerprintConfig(const EstimatorConfig& config) {
  constexpr uint64_t kOffsetBasis = 14695981039346656037ull;
  uint64_t hash = kOffsetBasis;
  hash = Fnv1a(hash, static_cast<uint64_t>(config.kind));
  hash = Fnv1a(hash, static_cast<uint64_t>(config.smoothing));
  hash = Fnv1a(hash, DoubleToken(config.fixed_smoothing));
  hash = Fnv1a(hash, static_cast<uint64_t>(config.dpi_stages));
  hash = Fnv1a(hash, static_cast<uint64_t>(config.ash_shifts));
  hash = Fnv1a(hash, static_cast<uint64_t>(config.kernel));
  hash = Fnv1a(hash, static_cast<uint64_t>(config.boundary));
  return hash;
}

}  // namespace selest

