#include "src/est/estimator_factory.h"

#include <algorithm>
#include <cmath>

#include "src/est/average_shifted_histogram.h"
#include "src/est/equi_depth_histogram.h"
#include "src/est/equi_width_histogram.h"
#include "src/est/hybrid_estimator.h"
#include "src/est/kernel_estimator.h"
#include "src/est/adaptive_kernel_estimator.h"
#include "src/est/max_diff_histogram.h"
#include "src/est/sampling_estimator.h"
#include "src/est/uniform_estimator.h"
#include "src/est/v_optimal_histogram.h"
#include "src/est/wavelet_histogram.h"
#include "src/smoothing/direct_plug_in.h"
#include "src/smoothing/normal_scale.h"

namespace selest {
namespace {

// Wraps a concrete estimator (value type) for the polymorphic interface.
template <typename T>
std::unique_ptr<SelectivityEstimator> Wrap(T estimator) {
  return std::make_unique<T>(std::move(estimator));
}

int ResolveNumBins(std::span<const double> sample, const Domain& domain,
                   const EstimatorConfig& config) {
  switch (config.smoothing) {
    case SmoothingRule::kNormalScale:
      return NormalScaleNumBins(sample, domain);
    case SmoothingRule::kDirectPlugIn:
      return DirectPlugInNumBins(sample, domain, config.dpi_stages);
    case SmoothingRule::kFixed:
      return std::max(1, static_cast<int>(std::lround(config.fixed_smoothing)));
  }
  return 1;
}

double ResolveBandwidth(std::span<const double> sample, const Domain& domain,
                        const EstimatorConfig& config, const Kernel& kernel) {
  switch (config.smoothing) {
    case SmoothingRule::kNormalScale:
      return NormalScaleBandwidth(sample, domain, kernel);
    case SmoothingRule::kDirectPlugIn:
      return DirectPlugInBandwidth(sample, domain, kernel, config.dpi_stages);
    case SmoothingRule::kFixed:
      return config.fixed_smoothing;
  }
  return 0.0;
}

}  // namespace

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kSampling:
      return "sampling";
    case EstimatorKind::kUniform:
      return "uniform";
    case EstimatorKind::kEquiWidth:
      return "equi-width";
    case EstimatorKind::kEquiDepth:
      return "equi-depth";
    case EstimatorKind::kMaxDiff:
      return "max-diff";
    case EstimatorKind::kAverageShifted:
      return "ash";
    case EstimatorKind::kKernel:
      return "kernel";
    case EstimatorKind::kHybrid:
      return "hybrid";
    case EstimatorKind::kVOptimal:
      return "v-optimal";
    case EstimatorKind::kAdaptiveKernel:
      return "adaptive-kernel";
    case EstimatorKind::kWavelet:
      return "wavelet";
  }
  return "unknown";
}

const char* SmoothingRuleName(SmoothingRule rule) {
  switch (rule) {
    case SmoothingRule::kNormalScale:
      return "h-NS";
    case SmoothingRule::kDirectPlugIn:
      return "h-DPI";
    case SmoothingRule::kFixed:
      return "h-fixed";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<SelectivityEstimator>> BuildEstimator(
    std::span<const double> sample, const Domain& domain,
    const EstimatorConfig& config) {
  if (sample.empty() && config.kind != EstimatorKind::kUniform) {
    return InvalidArgumentError("estimator needs a non-empty sample");
  }
  const Kernel kernel(config.kernel);
  switch (config.kind) {
    case EstimatorKind::kSampling: {
      auto estimator = SamplingEstimator::Create(sample);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kUniform:
      return std::unique_ptr<SelectivityEstimator>(
          std::make_unique<UniformEstimator>(domain));
    case EstimatorKind::kEquiWidth: {
      auto estimator = EquiWidthHistogram::Create(
          sample, domain, ResolveNumBins(sample, domain, config));
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kEquiDepth: {
      auto estimator = EquiDepthHistogram::Create(
          sample, domain, ResolveNumBins(sample, domain, config));
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kMaxDiff: {
      auto estimator = MaxDiffHistogram::Create(
          sample, domain, ResolveNumBins(sample, domain, config));
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kAverageShifted: {
      auto estimator = AverageShiftedHistogram::Create(
          sample, domain, ResolveNumBins(sample, domain, config),
          config.ash_shifts);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kKernel: {
      KernelEstimatorOptions options;
      options.kernel = kernel;
      options.boundary = config.boundary;
      options.bandwidth = ResolveBandwidth(sample, domain, config, kernel);
      auto estimator = KernelEstimator::Create(sample, domain, options);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kHybrid: {
      HybridEstimatorOptions options;
      options.kernel = kernel;
      options.boundary = config.boundary;
      auto estimator = HybridEstimator::Create(sample, domain, options);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kVOptimal: {
      auto estimator = VOptimalHistogram::Create(
          sample, domain, ResolveNumBins(sample, domain, config));
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kAdaptiveKernel: {
      AdaptiveKernelOptions options;
      options.kernel = kernel;
      options.base_bandwidth = ResolveBandwidth(sample, domain, config, kernel);
      auto estimator =
          AdaptiveKernelEstimator::Create(sample, domain, options);
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
    case EstimatorKind::kWavelet: {
      // The bin-count rules double as the coefficient budget: a histogram
      // with k buckets and a synopsis of k coefficients store comparable
      // state.
      auto estimator = WaveletHistogram::Create(
          sample, domain, ResolveNumBins(sample, domain, config));
      if (!estimator.ok()) return estimator.status();
      return Wrap(std::move(estimator).value());
    }
  }
  return InvalidArgumentError("unknown estimator kind");
}

}  // namespace selest
