#include "src/est/sampling_estimator.h"

#include <algorithm>

#include "src/est/estimator_snapshot.h"

namespace selest {

StatusOr<SamplingEstimator> SamplingEstimator::Create(
    std::span<const double> sample) {
  if (sample.empty()) {
    return InvalidArgumentError("sampling estimator needs a non-empty sample");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return SamplingEstimator(std::move(sorted));
}

double SamplingEstimator::EstimateSelectivity(double a, double b) const {
  if (a > b) return 0.0;
  const auto lo = std::lower_bound(sorted_.begin(), sorted_.end(), a);
  const auto hi = std::upper_bound(sorted_.begin(), sorted_.end(), b);
  return static_cast<double>(hi - lo) / static_cast<double>(sorted_.size());
}

size_t SamplingEstimator::StorageBytes() const {
  return sizeof(double) * sorted_.size();
}

Status SamplingEstimator::SerializeState(ByteWriter& writer) const {
  writer.WriteDoubleVector(sorted_);
  return Status::Ok();
}

StatusOr<SamplingEstimator> SamplingEstimator::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(std::vector<double> sorted,
                          reader.ReadDoubleVector());
  if (sorted.empty()) {
    return InvalidArgumentError("sampling snapshot has an empty sample");
  }
  if (!std::is_sorted(sorted.begin(), sorted.end())) {
    return InvalidArgumentError("sampling snapshot sample is not sorted");
  }
  return SamplingEstimator(std::move(sorted));
}

}  // namespace selest
