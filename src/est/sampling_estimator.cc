#include "src/est/sampling_estimator.h"

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <utility>

#include "src/est/estimator_snapshot.h"
#include "src/util/check.h"

namespace selest {

StatusOr<SamplingEstimator> SamplingEstimator::Create(
    std::span<const double> sample) {
  if (sample.empty()) {
    return InvalidArgumentError("sampling estimator needs a non-empty sample");
  }
  AlignedDoubles sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return SamplingEstimator(std::move(sorted));
}

double SamplingEstimator::EstimateSelectivity(double a, double b) const {
  if (a > b) return 0.0;
  // Branch-free searches: same indices as std::lower_bound/std::upper_bound
  // and the structure the vector block kernel replays.
  const size_t lo = BranchFreeLowerBound(sorted_.data(), sorted_.size(), a);
  const size_t hi = BranchFreeUpperBound(sorted_.data(), sorted_.size(), b);
  return static_cast<double>(hi - lo) / static_cast<double>(sorted_.size());
}

void SamplingEstimator::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  SELEST_CHECK_EQ(queries.size(), out.size());
  const auto per_query = [this](const RangeQuery& q) {
    return EstimateSelectivity(q.a, q.b);
  };
  const SimdOps* ops = ActiveSimdOps();
  if (ops == nullptr) {
    BatchWith(queries, out, per_query);
    return;
  }
  BatchWithBlocks(
      queries, out, ops->width,
      [this, ops](const double* a, const double* b, double* r) {
        ops->sorted_count_block(sorted_.data(),
                                static_cast<int64_t>(sorted_.size()), a, b, r);
        return true;
      },
      per_query);
}

size_t SamplingEstimator::StorageBytes() const {
  return sizeof(double) * sorted_.size();
}

Status SamplingEstimator::MergeFrom(const SelectivityEstimator& other) {
  const auto* peer = dynamic_cast<const SamplingEstimator*>(&other);
  if (peer == nullptr) {
    return FailedPreconditionError("cannot merge " + other.name() +
                                   " into a sampling estimator");
  }
  AlignedDoubles merged;
  merged.reserve(sorted_.size() + peer->sorted_.size());
  std::merge(sorted_.begin(), sorted_.end(), peer->sorted_.begin(),
             peer->sorted_.end(), std::back_inserter(merged));
  sorted_ = std::move(merged);
  return Status::Ok();
}

Status SamplingEstimator::FoldRows(std::span<const double> rows) {
  if (rows.empty()) return Status::Ok();
  const size_t old_size = sorted_.size();
  sorted_.insert(sorted_.end(), rows.begin(), rows.end());
  std::sort(sorted_.begin() + static_cast<ptrdiff_t>(old_size),
            sorted_.end());
  std::inplace_merge(sorted_.begin(),
                     sorted_.begin() + static_cast<ptrdiff_t>(old_size),
                     sorted_.end());
  return Status::Ok();
}

Status SamplingEstimator::SerializeState(ByteWriter& writer) const {
  writer.WriteDoubleVector(sorted_);
  return Status::Ok();
}

StatusOr<SamplingEstimator> SamplingEstimator::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(std::vector<double> sorted,
                          reader.ReadDoubleVector());
  if (sorted.empty()) {
    return InvalidArgumentError("sampling snapshot has an empty sample");
  }
  if (!std::is_sorted(sorted.begin(), sorted.end())) {
    return InvalidArgumentError("sampling snapshot sample is not sorted");
  }
  return SamplingEstimator(AlignedDoubles(sorted.begin(), sorted.end()));
}

}  // namespace selest
