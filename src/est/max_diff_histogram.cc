#include "src/est/max_diff_histogram.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/est/estimator_snapshot.h"
#include "src/util/check.h"

namespace selest {

StatusOr<MaxDiffHistogram> MaxDiffHistogram::Create(
    std::span<const double> sample, const Domain& domain, int num_bins) {
  if (sample.empty()) {
    return InvalidArgumentError("max-diff histogram needs a sample");
  }
  if (num_bins < 1) {
    return InvalidArgumentError("max-diff histogram needs >= 1 bin");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());

  // Gaps between adjacent samples, ranked by size.
  struct Gap {
    double size;
    double midpoint;
  };
  std::vector<Gap> gaps;
  gaps.reserve(sorted.size());
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    const double gap = sorted[i + 1] - sorted[i];
    if (gap > 0.0) {
      gaps.push_back({gap, 0.5 * (sorted[i] + sorted[i + 1])});
    }
  }
  const size_t num_boundaries =
      std::min(static_cast<size_t>(num_bins - 1), gaps.size());
  std::partial_sort(gaps.begin(), gaps.begin() + num_boundaries, gaps.end(),
                    [](const Gap& a, const Gap& b) { return a.size > b.size; });

  std::vector<double> edges;
  edges.reserve(num_boundaries + 2);
  edges.push_back(domain.lo);
  for (size_t i = 0; i < num_boundaries; ++i) {
    edges.push_back(gaps[i].midpoint);
  }
  edges.push_back(domain.hi);
  std::sort(edges.begin(), edges.end());

  auto bins = BinnedDensity::FromSample(sorted, std::move(edges));
  if (!bins.ok()) return bins.status();
  return MaxDiffHistogram(std::move(bins).value());
}

double MaxDiffHistogram::EstimateSelectivity(double a, double b) const {
  return bins_.Selectivity(a, b);
}

void MaxDiffHistogram::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  SELEST_CHECK_EQ(queries.size(), out.size());
  BatchWithBinned(bins_, queries, out);
}

std::string MaxDiffHistogram::name() const {
  return "max-diff(" + std::to_string(num_bins()) + ")";
}

Status MaxDiffHistogram::SerializeState(ByteWriter& writer) const {
  WriteBinnedDensity(writer, bins_);
  return Status::Ok();
}

StatusOr<MaxDiffHistogram> MaxDiffHistogram::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(BinnedDensity bins, ReadBinnedDensity(reader));
  return MaxDiffHistogram(std::move(bins));
}

}  // namespace selest
