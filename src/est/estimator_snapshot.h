// Estimator snapshots: the build-once/serve-many persistence layer.
//
// A snapshot captures an estimator's *derived* query-time state (sorted
// samples, bin edges, precomputed strip tables), so loading one skips the
// expensive parts of construction — sorting, quadrature, change-point
// detection — yet answers every query bit-identically to the original
// instance. The catalog (catalog/statistics_catalog.h) persists snapshots
// to disk and serves deserialized estimators from a cache.
//
// Layering: each concrete estimator owns its payload layout
// (SerializeState / DeserializeState); this header owns the dispatch —
// a type tag prefix for nesting (the guarded chain serializes links
// recursively) and the checksummed file envelope from util/serialize.h.
// Corruption never crashes: every reader returns Status following the
// DESIGN.md §8 contract (kDataLoss for provably corrupt bytes,
// kFailedPrecondition for a future format version, kOutOfRange for
// truncation).
#ifndef SELEST_EST_ESTIMATOR_SNAPSHOT_H_
#define SELEST_EST_ESTIMATOR_SNAPSHOT_H_

#include <memory>
#include <span>
#include <vector>

#include "src/data/domain.h"
#include "src/density/histogram_density.h"
#include "src/density/kde.h"
#include "src/density/kernel.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace selest {

// Shared field codecs used by the per-estimator payloads. The readers
// validate what the writers cannot produce (unknown enum values, decreasing
// edges) and return kInvalidArgument — corruption that slips past the CRC
// must still never construct an invalid object.
void WriteDomain(ByteWriter& writer, const Domain& domain);
StatusOr<Domain> ReadDomain(ByteReader& reader);

void WriteBinnedDensity(ByteWriter& writer, const BinnedDensity& bins);
StatusOr<BinnedDensity> ReadBinnedDensity(ByteReader& reader);

void WriteKernel(ByteWriter& writer, const Kernel& kernel);
StatusOr<Kernel> ReadKernel(ByteReader& reader);

void WriteBoundaryPolicy(ByteWriter& writer, BoundaryPolicy policy);
StatusOr<BoundaryPolicy> ReadBoundaryPolicy(ByteReader& reader);

// Appends `estimator` as a tagged record (type tag u32, then the payload)
// to `writer`. kFailedPrecondition when the estimator does not snapshot.
Status SerializeEstimator(const SelectivityEstimator& estimator,
                          ByteWriter& writer);

// Reads one tagged estimator record. `depth` guards recursion: a guarded
// chain deserializes its links at depth+1, and snapshots nested deeper
// than kMaxSnapshotDepth are rejected (kInvalidArgument) rather than
// overflowing the stack on adversarial input.
inline constexpr int kMaxSnapshotDepth = 16;
StatusOr<std::unique_ptr<SelectivityEstimator>> DeserializeEstimator(
    ByteReader& reader, int depth = 0);

// Full snapshot: the tagged record wrapped in the checksummed envelope
// (magic | version | tag | size | payload | CRC32). The envelope tag
// duplicates the record's tag so a store can route without parsing the
// payload; LoadEstimatorSnapshot cross-checks the two and reports a
// mismatch as kDataLoss (a header flip the payload CRC cannot see).
StatusOr<std::vector<uint8_t>> SnapshotEstimator(
    const SelectivityEstimator& estimator);
StatusOr<std::unique_ptr<SelectivityEstimator>> LoadEstimatorSnapshot(
    std::span<const uint8_t> bytes);

}  // namespace selest

#endif  // SELEST_EST_ESTIMATOR_SNAPSHOT_H_
