#include "src/est/equi_width_histogram.h"

#include <cmath>
#include <vector>

#include "src/est/estimator_snapshot.h"
#include "src/util/check.h"

namespace selest {

StatusOr<EquiWidthHistogram> EquiWidthHistogram::Create(
    std::span<const double> sample, const Domain& domain, int num_bins,
    double shift) {
  if (sample.empty()) {
    return InvalidArgumentError("equi-width histogram needs a sample");
  }
  if (num_bins < 1) {
    return InvalidArgumentError("equi-width histogram needs >= 1 bin");
  }
  const double width = domain.width() / num_bins;
  if (shift < 0.0 || shift >= width) {
    return InvalidArgumentError("shift must be in [0, bin width)");
  }
  std::vector<double> edges;
  edges.reserve(static_cast<size_t>(num_bins) + 2);
  // A nonzero shift adds a leading partial bin so the domain stays covered.
  if (shift > 0.0) edges.push_back(domain.lo);
  for (int i = 0; i <= num_bins; ++i) {
    edges.push_back(std::min(domain.lo + shift + i * width, domain.hi));
  }
  // The trailing edge may have been clamped; ensure strict domain coverage.
  if (edges.back() < domain.hi) edges.push_back(domain.hi);
  auto bins = BinnedDensity::FromSample(sample, std::move(edges));
  if (!bins.ok()) return bins.status();
  return EquiWidthHistogram(std::move(bins).value(), width);
}

double EquiWidthHistogram::EstimateSelectivity(double a, double b) const {
  return bins_.Selectivity(a, b);
}

void EquiWidthHistogram::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  SELEST_CHECK_EQ(queries.size(), out.size());
  BatchWithBinned(bins_, queries, out);
}

std::string EquiWidthHistogram::name() const {
  return "equi-width(" + std::to_string(num_bins()) + ")";
}

Status EquiWidthHistogram::MergeFrom(const SelectivityEstimator& other) {
  const auto* peer = dynamic_cast<const EquiWidthHistogram*>(&other);
  if (peer == nullptr) {
    return FailedPreconditionError("cannot merge " + other.name() +
                                   " into an equi-width histogram");
  }
  auto merged = bins_.MergedWith(peer->bins_);
  if (!merged.ok()) return merged.status();
  bins_ = std::move(merged).value();
  return Status::Ok();
}

Status EquiWidthHistogram::FoldRows(std::span<const double> rows) {
  bins_ = bins_.FoldedWith(rows);
  return Status::Ok();
}

Status EquiWidthHistogram::SerializeState(ByteWriter& writer) const {
  WriteBinnedDensity(writer, bins_);
  writer.WriteDouble(bin_width_);
  return Status::Ok();
}

StatusOr<EquiWidthHistogram> EquiWidthHistogram::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(BinnedDensity bins, ReadBinnedDensity(reader));
  SELEST_ASSIGN_OR_RETURN(const double bin_width, reader.ReadDouble());
  if (!(bin_width > 0.0) || !std::isfinite(bin_width)) {
    return InvalidArgumentError(
        "equi-width snapshot bin width must be positive");
  }
  return EquiWidthHistogram(std::move(bins), bin_width);
}

}  // namespace selest
