#include "src/est/guarded_estimator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/est/estimator_snapshot.h"
#include "src/util/check.h"

namespace selest {

GuardedEstimator::GuardedEstimator(
    std::vector<std::unique_ptr<SelectivityEstimator>> chain,
    const Domain& domain)
    : chain_(std::move(chain)), domain_(domain) {
  for (const auto& link : chain_) SELEST_CHECK(link != nullptr);
}

double GuardedEstimator::EstimateSelectivity(double a, double b) const {
  queries_.fetch_add(1, std::memory_order_relaxed);

  // Repair the query. A NaN bound carries no information; widening it to
  // the domain edge yields the safe over-estimate. ±Inf bounds are handled
  // by the domain clamp below.
  bool repaired = false;
  if (std::isnan(a)) {
    a = domain_.lo;
    repaired = true;
  }
  if (std::isnan(b)) {
    b = domain_.hi;
    repaired = true;
  }
  if (a > b) {
    std::swap(a, b);
    repaired = true;
  }
  a = domain_.Clamp(a);
  b = domain_.Clamp(b);
  if (repaired) repaired_queries_.fetch_add(1, std::memory_order_relaxed);

  for (size_t i = 0; i < chain_.size(); ++i) {
    const double value = chain_[i]->EstimateSelectivity(a, b);
    if (!std::isfinite(value)) continue;  // poisoned link; try the next
    if (i > 0) fallback_estimates_.fetch_add(1, std::memory_order_relaxed);
    if (value < 0.0 || value > 1.0) {
      clamped_estimates_.fetch_add(1, std::memory_order_relaxed);
      return std::clamp(value, 0.0, 1.0);
    }
    return value;
  }

  // Every link returned garbage: the §3.1 uniform baseline needs only the
  // (already validated) domain.
  uniform_rescues_.fetch_add(1, std::memory_order_relaxed);
  const double width = domain_.width();
  if (!(width > 0.0)) return 0.0;
  return std::clamp((b - a) / width, 0.0, 1.0);
}

void GuardedEstimator::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  SELEST_CHECK_EQ(queries.size(), out.size());
  BatchWith(queries, out, [this](const RangeQuery& q) {
    return GuardedEstimator::EstimateSelectivity(q.a, q.b);
  });
}

size_t GuardedEstimator::StorageBytes() const {
  size_t total = 2 * sizeof(double);  // the domain endpoints
  for (const auto& link : chain_) total += link->StorageBytes();
  return total;
}

std::string GuardedEstimator::name() const {
  // An empty chain still answers uniformly via the inline rescue.
  if (chain_.empty()) return "guarded(uniform)";
  std::string name = "guarded(";
  for (size_t i = 0; i < chain_.size(); ++i) {
    if (i > 0) name += " | ";
    name += chain_[i]->name();
  }
  name += ")";
  return name;
}

GuardedStats GuardedEstimator::stats() const {
  GuardedStats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.repaired_queries = repaired_queries_.load(std::memory_order_relaxed);
  stats.clamped_estimates = clamped_estimates_.load(std::memory_order_relaxed);
  stats.fallback_estimates =
      fallback_estimates_.load(std::memory_order_relaxed);
  stats.uniform_rescues = uniform_rescues_.load(std::memory_order_relaxed);
  return stats;
}

bool GuardedEstimator::SupportsFeedback() const {
  for (const auto& link : chain_) {
    if (link->SupportsFeedback()) return true;
  }
  return false;
}

Status GuardedEstimator::ObserveTrueSelectivity(const RangeQuery& query,
                                                double true_selectivity) {
  // Repair like EstimateSelectivity so the links see the same normalized
  // range the guard would have served an estimate for.
  double a = query.a;
  double b = query.b;
  if (std::isnan(a)) a = domain_.lo;
  if (std::isnan(b)) b = domain_.hi;
  if (a > b) std::swap(a, b);
  const RangeQuery repaired{domain_.Clamp(a), domain_.Clamp(b)};
  Status last = FailedPreconditionError(
      "no link of \"" + name() + "\" accepts query feedback");
  bool accepted = false;
  for (const auto& link : chain_) {
    if (!link->SupportsFeedback()) continue;
    last = link->ObserveTrueSelectivity(repaired, true_selectivity);
    if (last.ok()) accepted = true;
  }
  if (accepted) {
    feedback_observations_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  return last;
}

Status GuardedEstimator::SerializeState(ByteWriter& writer) const {
  WriteDomain(writer, domain_);
  writer.WriteU32(static_cast<uint32_t>(chain_.size()));
  for (const std::unique_ptr<SelectivityEstimator>& link : chain_) {
    SELEST_RETURN_IF_ERROR(SerializeEstimator(*link, writer));
  }
  return Status::Ok();
}

}  // namespace selest
