#include "src/est/kernel_estimator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/est/estimator_snapshot.h"
#include "src/util/check.h"
#include "src/util/numeric.h"

namespace selest {

StatusOr<KernelEstimator> KernelEstimator::Create(
    std::span<const double> sample, const Domain& domain,
    const KernelEstimatorOptions& options) {
  if (sample.empty()) {
    return InvalidArgumentError("kernel estimator needs a non-empty sample");
  }
  if (!(options.bandwidth > 0.0) || !std::isfinite(options.bandwidth)) {
    return InvalidArgumentError("kernel bandwidth must be positive");
  }
  if (options.quadrature_intervals < 2) {
    return InvalidArgumentError("quadrature_intervals must be >= 2");
  }
  if (options.boundary == BoundaryPolicy::kBoundaryKernel &&
      options.kernel.type() != KernelType::kEpanechnikov) {
    return InvalidArgumentError(
        "boundary kernels extend the Epanechnikov kernel only");
  }

  std::vector<double> sorted(sample.begin(), sample.end());
  const size_t original_count = sorted.size();
  if (options.boundary == BoundaryPolicy::kReflection) {
    const double radius =
        options.kernel.support_radius() * options.bandwidth;
    for (size_t i = 0; i < original_count; ++i) {
      const double x = sorted[i];
      if (x - domain.lo < radius) sorted.push_back(2.0 * domain.lo - x);
      if (domain.hi - x < radius) sorted.push_back(2.0 * domain.hi - x);
    }
  }
  std::sort(sorted.begin(), sorted.end());

  std::optional<Kde> boundary_kde;
  if (options.boundary == BoundaryPolicy::kBoundaryKernel) {
    auto kde = Kde::Create(sample, options.bandwidth, domain, options.kernel,
                           BoundaryPolicy::kBoundaryKernel);
    if (!kde.ok()) return kde.status();
    boundary_kde = std::move(kde).value();
  }
  return KernelEstimator(AlignedDoubles(sorted.begin(), sorted.end()),
                         original_count, domain, options,
                         std::move(boundary_kde));
}

KernelEstimator::KernelEstimator(AlignedDoubles sorted,
                                 size_t original_count, const Domain& domain,
                                 const KernelEstimatorOptions& options,
                                 std::optional<Kde> boundary_kde)
    : sorted_(std::move(sorted)),
      original_count_(original_count),
      domain_(domain),
      options_(options),
      boundary_kde_(std::move(boundary_kde)) {
  if (boundary_kde_.has_value()) {
    const double h = options_.bandwidth;
    const int nodes = options_.quadrature_intervals * 16;
    const double left_end = std::min(domain_.lo + h, domain_.hi);
    left_strip_ = BuildStripTable(*boundary_kde_, domain_.lo, left_end, nodes);
    const double right_begin = std::max(domain_.hi - h, left_end);
    right_strip_ =
        BuildStripTable(*boundary_kde_, right_begin, domain_.hi, nodes);
  }
}

KernelEstimator::StripTable KernelEstimator::BuildStripTable(const Kde& kde,
                                                             double lo,
                                                             double hi,
                                                             int nodes) {
  StripTable table;
  table.lo = lo;
  table.hi = hi;
  table.cumulative.assign(static_cast<size_t>(nodes) + 1, 0.0);
  if (hi <= lo) return table;
  const double step = (hi - lo) / nodes;
  // Boundary kernels are second-order kernels with a negative lobe; the
  // density is truncated at zero so the cumulative table is non-decreasing
  // and the resulting selectivities are monotone in the query bounds.
  double previous = std::max(kde.Density(lo), 0.0);
  for (int i = 1; i <= nodes; ++i) {
    const double current = std::max(kde.Density(lo + i * step), 0.0);
    table.cumulative[i] =
        table.cumulative[i - 1] + 0.5 * step * (previous + current);
    previous = current;
  }
  return table;
}

double KernelEstimator::StripTable::CumulativeAt(double x) const {
  if (cumulative.size() < 2 || x <= lo) return 0.0;
  if (x >= hi) return cumulative.back();
  const double position =
      (x - lo) / (hi - lo) * static_cast<double>(cumulative.size() - 1);
  const auto index = static_cast<size_t>(position);
  const double fraction = position - static_cast<double>(index);
  if (index + 1 >= cumulative.size()) return cumulative.back();
  return cumulative[index] +
         fraction * (cumulative[index + 1] - cumulative[index]);
}

double KernelEstimator::StripTable::Mass(double x1, double x2) const {
  if (x2 <= x1) return 0.0;
  return CumulativeAt(x2) - CumulativeAt(x1);
}

double KernelEstimator::CdfSum(double a, double b) const {
  const double h = options_.bandwidth;
  const double radius = options_.kernel.support_radius() * h;
  const Kernel& kernel = options_.kernel;
  const double* data = sorted_.data();
  const size_t n = sorted_.size();
  double sum = 0.0;
  // Branch-free searches: same indices as std::lower_bound/std::upper_bound
  // and the structure the vector block kernel replays.
  if (a + radius <= b - radius) {
    // Samples in [a+radius, b−radius] contribute exactly 1 (the first case
    // of Alg. 1); count them with two binary searches.
    const size_t full_lo = BranchFreeLowerBound(data, n, a + radius);
    const size_t full_hi = BranchFreeUpperBound(data, n, b - radius);
    sum += static_cast<double>(full_hi - full_lo);
    // Left fringe: samples in [a−radius, a+radius).
    const size_t left_lo = BranchFreeLowerBound(data, n, a - radius);
    for (size_t i = left_lo; i != full_lo; ++i) {
      sum += kernel.Cdf((b - data[i]) / h) - kernel.Cdf((a - data[i]) / h);
    }
    // Right fringe: samples in (b−radius, b+radius].
    const size_t right_hi = BranchFreeUpperBound(data, n, b + radius);
    for (size_t i = full_hi; i != right_hi; ++i) {
      sum += kernel.Cdf((b - data[i]) / h) - kernel.Cdf((a - data[i]) / h);
    }
  } else {
    // Narrow query: the fringes overlap; scan every contributing sample.
    const size_t lo = BranchFreeLowerBound(data, n, a - radius);
    const size_t hi = BranchFreeUpperBound(data, n, b + radius);
    for (size_t i = lo; i != hi; ++i) {
      sum += kernel.Cdf((b - data[i]) / h) - kernel.Cdf((a - data[i]) / h);
    }
  }
  return sum / static_cast<double>(original_count_);
}

double KernelEstimator::EstimateSelectivity(double a, double b) const {
  if (a > b) return 0.0;
  a = domain_.Clamp(a);
  b = domain_.Clamp(b);
  if (a >= b) {
    // A degenerate (point) query still intersects atoms under histogram
    // estimators, but a kernel density assigns it zero mass.
    return 0.0;
  }

  if (options_.boundary != BoundaryPolicy::kBoundaryKernel) {
    return std::clamp(CdfSum(a, b), 0.0, 1.0);
  }

  // Boundary-kernel policy: the strips [l, l+h) and (r−h, r] use the
  // precomputed cumulative-mass tables of the corrected density; the
  // interior is analytic via the kernel CDF.
  double total = left_strip_.Mass(a, b);
  const double interior_lo = std::max(a, left_strip_.hi);
  const double interior_hi = std::min(b, right_strip_.lo);
  if (interior_lo < interior_hi) {
    total += CdfSum(interior_lo, interior_hi);
  }
  total += right_strip_.Mass(a, b);
  return std::clamp(total, 0.0, 1.0);
}

KernelBlockArgs KernelEstimator::MakeSimdArgs() const {
  KernelBlockArgs args;
  args.sorted = sorted_.data();
  args.sorted_size = static_cast<int64_t>(sorted_.size());
  args.original_count = static_cast<double>(original_count_);
  args.h = options_.bandwidth;
  args.radius = options_.kernel.support_radius() * options_.bandwidth;
  args.domain_lo = domain_.lo;
  args.domain_hi = domain_.hi;
  args.boundary_kernel = options_.boundary == BoundaryPolicy::kBoundaryKernel;
  args.left_cum = left_strip_.cumulative.data();
  args.left_size = static_cast<int64_t>(left_strip_.cumulative.size());
  args.left_lo = left_strip_.lo;
  args.left_hi = left_strip_.hi;
  args.right_cum = right_strip_.cumulative.data();
  args.right_size = static_cast<int64_t>(right_strip_.cumulative.size());
  args.right_lo = right_strip_.lo;
  args.right_hi = right_strip_.hi;
  return args;
}

void KernelEstimator::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  SELEST_CHECK_EQ(queries.size(), out.size());
  const auto per_query = [this](const RangeQuery& q) {
    return KernelEstimator::EstimateSelectivity(q.a, q.b);
  };
  const SimdOps* ops = ActiveSimdOps();
  // The vector kernel replays the Epanechnikov CDF only; other kernel
  // shapes keep the scalar path.
  if (ops == nullptr || options_.kernel.type() != KernelType::kEpanechnikov) {
    BatchWith(queries, out, per_query);
    return;
  }
  const KernelBlockArgs args = MakeSimdArgs();
  BatchWithBlocks(
      queries, out, ops->width,
      [&args, ops](const double* a, const double* b, double* r) {
        return ops->kernel_block(args, a, b, r) != 0;
      },
      per_query);
}

double KernelEstimator::EstimateSelectivityAlgorithm1(double a,
                                                      double b) const {
  SELEST_CHECK(options_.boundary == BoundaryPolicy::kNone);
  const double h = options_.bandwidth;
  SELEST_CHECK_GE(b - a, 2.0 * h);
  const Kernel& kernel = options_.kernel;
  // F(t) in the paper is the primitive with F(0) = 0; Cdf(t) = 0.5 + F(t).
  const auto primitive = [&kernel](double t) { return kernel.Cdf(t) - 0.5; };
  double s = 0.0;
  for (double x : sorted_) {
    const bool in_core = x >= a + h && x <= b - h;
    const bool in_left = x >= a - h && x <= a + h;
    const bool in_right = x >= b - h && x <= b + h;
    if (in_core) {
      s += 1.0;
    } else if (in_left && !in_right) {
      s += 0.5 - primitive((a - x) / h);
    } else if (in_right && !in_left) {
      // The paper prints "F((b−X)/h) − 0.5" here, but the contribution is
      // ∫_{(a−X)/h}^{(b−X)/h} K = Cdf((b−X)/h) − 0 = F((b−X)/h) + 0.5
      // (the lower limit is below −1 whenever b − a >= 2h). The printed
      // sign is a typo: it would yield negative contributions.
      s += primitive((b - x) / h) + 0.5;
    } else if (in_left || in_right) {
      s += primitive((b - x) / h) - primitive((a - x) / h);
    }
  }
  return s / static_cast<double>(original_count_);
}

size_t KernelEstimator::StorageBytes() const {
  // The catalog stores the original sample and the bandwidth; reflected
  // copies are derivable.
  return sizeof(double) * (original_count_ + 1);
}

std::string KernelEstimator::name() const {
  return "kernel(" + options_.kernel.name() + ", " +
         BoundaryPolicyName(options_.boundary) + ")";
}

Status KernelEstimator::SerializeState(ByteWriter& writer) const {
  writer.WriteDoubleVector(sorted_);
  writer.WriteU64(original_count_);
  WriteDomain(writer, domain_);
  writer.WriteDouble(options_.bandwidth);
  WriteKernel(writer, options_.kernel);
  WriteBoundaryPolicy(writer, options_.boundary);
  writer.WriteU32(static_cast<uint32_t>(options_.quadrature_intervals));
  for (const StripTable* strip : {&left_strip_, &right_strip_}) {
    writer.WriteDouble(strip->lo);
    writer.WriteDouble(strip->hi);
    writer.WriteDoubleVector(strip->cumulative);
  }
  return Status::Ok();
}

StatusOr<KernelEstimator> KernelEstimator::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(std::vector<double> sorted,
                          reader.ReadDoubleVector());
  SELEST_ASSIGN_OR_RETURN(const uint64_t original_count, reader.ReadU64());
  SELEST_ASSIGN_OR_RETURN(const Domain domain, ReadDomain(reader));
  KernelEstimatorOptions options;
  SELEST_ASSIGN_OR_RETURN(options.bandwidth, reader.ReadDouble());
  SELEST_ASSIGN_OR_RETURN(options.kernel, ReadKernel(reader));
  SELEST_ASSIGN_OR_RETURN(options.boundary, ReadBoundaryPolicy(reader));
  SELEST_ASSIGN_OR_RETURN(const uint32_t quadrature, reader.ReadU32());
  if (sorted.empty() || !std::is_sorted(sorted.begin(), sorted.end())) {
    return InvalidArgumentError(
        "kernel snapshot samples must be non-empty and sorted");
  }
  // Reflection adds at most two mirrored copies per original sample.
  if (original_count < 1 || original_count > sorted.size()) {
    return InvalidArgumentError("kernel snapshot sample count out of range");
  }
  if (!(options.bandwidth > 0.0) || !std::isfinite(options.bandwidth)) {
    return InvalidArgumentError("kernel snapshot bandwidth must be positive");
  }
  if (quadrature < 2 || quadrature > (1u << 20)) {
    return InvalidArgumentError(
        "kernel snapshot quadrature resolution out of range");
  }
  options.quadrature_intervals = static_cast<int>(quadrature);
  // The boundary KDE exists only to build the strip tables at construction;
  // the tables are restored verbatim below, so the KDE is not rebuilt.
  KernelEstimator estimator(AlignedDoubles(sorted.begin(), sorted.end()),
                            original_count, domain, options, std::nullopt);
  for (StripTable* strip : {&estimator.left_strip_, &estimator.right_strip_}) {
    SELEST_ASSIGN_OR_RETURN(strip->lo, reader.ReadDouble());
    SELEST_ASSIGN_OR_RETURN(strip->hi, reader.ReadDouble());
    SELEST_ASSIGN_OR_RETURN(std::vector<double> cumulative,
                            reader.ReadDoubleVector());
    strip->cumulative.assign(cumulative.begin(), cumulative.end());
    if (!std::isfinite(strip->lo) || !std::isfinite(strip->hi) ||
        strip->lo > strip->hi ||
        !std::is_sorted(strip->cumulative.begin(), strip->cumulative.end())) {
      return InvalidArgumentError(
          "kernel snapshot strip table is not a cumulative mass table");
    }
  }
  return estimator;
}

}  // namespace selest
