// Uniform construction of any estimator in the paper's comparison.
//
// The experiment harness and the figure benches sweep over estimator kinds
// and smoothing rules; this factory turns a declarative config into a
// ready-to-query estimator.
#ifndef SELEST_EST_ESTIMATOR_FACTORY_H_
#define SELEST_EST_ESTIMATOR_FACTORY_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/data/domain.h"
#include "src/density/kde.h"
#include "src/density/kernel.h"
#include "src/est/guarded_estimator.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

enum class EstimatorKind {
  kSampling,
  kUniform,
  kEquiWidth,
  kEquiDepth,
  kMaxDiff,
  kAverageShifted,
  kKernel,
  kHybrid,
  // Beyond-the-paper baselines (see DESIGN.md extensions).
  kVOptimal,
  kAdaptiveKernel,
  // Wavelet histogram ([4]); the smoothing parameter is the coefficient
  // budget.
  kWavelet,
  // The query-driven family (DESIGN.md §14): built from a sample prior (or
  // the uniform assumption) and refined per ObserveTrueSelectivity. The
  // smoothing rules resolve their grid resolution like any histogram.
  kFeedback,
  kReconstructed,
  kOnlineLearning,
};

const char* EstimatorKindName(EstimatorKind kind);

enum class SmoothingRule {
  // §4.1/§4.2 normal scale rule (h-NS in the figures).
  kNormalScale,
  // §4.3 direct plug-in rule (h-DPI2 with the default 2 stages).
  kDirectPlugIn,
  // Caller supplies the smoothing parameter explicitly (used by the oracle
  // search and the bin-count sweeps).
  kFixed,
};

const char* SmoothingRuleName(SmoothingRule rule);

struct EstimatorConfig {
  EstimatorKind kind = EstimatorKind::kEquiWidth;
  SmoothingRule smoothing = SmoothingRule::kNormalScale;
  // With kFixed: the bin count for histogram estimators (rounded) or the
  // bandwidth for kernel estimators.
  double fixed_smoothing = 0.0;
  // Direct plug-in stages (h-DPI2 = 2).
  int dpi_stages = 2;
  // Shift count of the average shifted histogram (the paper uses 10).
  int ash_shifts = 10;
  // Kernel options (kernel and hybrid estimators).
  KernelType kernel = KernelType::kEpanechnikov;
  BoundaryPolicy boundary = BoundaryPolicy::kBoundaryKernel;
};

// A 64-bit digest of every config field (FNV-1a). Two configs fingerprint
// equal iff they build the same estimator from the same sample, so the
// catalog can key snapshots and cache entries by
// (relation, attribute, fingerprint).
uint64_t FingerprintConfig(const EstimatorConfig& config);

// Builds the configured estimator from a sample over `domain`.
//
// Status-first for every failure reachable from external input: a
// non-finite domain or sample value, an empty sample (except kUniform), a
// smoothing rule that cannot produce a parameter (zero-spread or too-small
// samples, non-finite or absurd fixed parameters), and bin counts beyond
// kMaxNumBins are all kInvalidArgument. Bin counts above a discrete
// domain's cardinality are clamped to it (extra bins cannot hold distinct
// values). Honors the "est/build" fault point (exec/fault_injection.h).
StatusOr<std::unique_ptr<SelectivityEstimator>> BuildEstimator(
    std::span<const double> sample, const Domain& domain,
    const EstimatorConfig& config);

// Upper bound on histogram bin counts / wavelet coefficient budgets the
// factory will construct; larger requests are kInvalidArgument rather than
// an allocation of attacker-controlled size.
inline constexpr int kMaxNumBins = 1 << 22;

// The bin-count resolution BuildEstimator applies for histogram kinds
// (smoothing rule dispatch, discrete-cardinality clamp, kMaxNumBins
// limit), exposed so the streaming build path (est/streaming_build.h) can
// resolve the count from its reservoir sample before the one-pass fold.
StatusOr<int> ResolveConfigNumBins(std::span<const double> sample,
                                   const Domain& domain,
                                   const EstimatorConfig& config);

// The default degradation ladder appended after the primary estimator in a
// guarded build: an equi-width histogram under the normal scale rule (the
// paper's most robust cheap estimator). The uniform baseline is always the
// implicit last rung — it is built from the domain alone and cannot fail.
std::vector<EstimatorConfig> DefaultFallbackConfigs();

// Result of BuildGuardedEstimator: a never-null guarded chain, plus why
// the requested primary is missing from it (OK when it built).
struct GuardedBuild {
  std::unique_ptr<GuardedEstimator> estimator;
  Status primary_status;

  bool degraded() const { return !primary_status.ok(); }
};

// Builds `config` and the fallback ladder into one GuardedEstimator.
// Fallbacks that fail to build are skipped; the uniform baseline always
// terminates the chain, so on OK the returned estimator answers every
// query. Only a malformed domain (non-finite or empty range) fails — that
// is the one input the uniform rung itself needs.
StatusOr<GuardedBuild> BuildGuardedEstimator(
    std::span<const double> sample, const Domain& domain,
    const EstimatorConfig& config,
    std::span<const EstimatorConfig> fallbacks);

// Overload with the DefaultFallbackConfigs ladder.
StatusOr<GuardedBuild> BuildGuardedEstimator(std::span<const double> sample,
                                             const Domain& domain,
                                             const EstimatorConfig& config);

}  // namespace selest

#endif  // SELEST_EST_ESTIMATOR_FACTORY_H_
