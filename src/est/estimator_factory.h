// Uniform construction of any estimator in the paper's comparison.
//
// The experiment harness and the figure benches sweep over estimator kinds
// and smoothing rules; this factory turns a declarative config into a
// ready-to-query estimator.
#ifndef SELEST_EST_ESTIMATOR_FACTORY_H_
#define SELEST_EST_ESTIMATOR_FACTORY_H_

#include <memory>
#include <span>
#include <string>

#include "src/data/domain.h"
#include "src/density/kde.h"
#include "src/density/kernel.h"
#include "src/est/selectivity_estimator.h"
#include "src/util/status.h"

namespace selest {

enum class EstimatorKind {
  kSampling,
  kUniform,
  kEquiWidth,
  kEquiDepth,
  kMaxDiff,
  kAverageShifted,
  kKernel,
  kHybrid,
  // Beyond-the-paper baselines (see DESIGN.md extensions).
  kVOptimal,
  kAdaptiveKernel,
  // Wavelet histogram ([4]); the smoothing parameter is the coefficient
  // budget.
  kWavelet,
};

const char* EstimatorKindName(EstimatorKind kind);

enum class SmoothingRule {
  // §4.1/§4.2 normal scale rule (h-NS in the figures).
  kNormalScale,
  // §4.3 direct plug-in rule (h-DPI2 with the default 2 stages).
  kDirectPlugIn,
  // Caller supplies the smoothing parameter explicitly (used by the oracle
  // search and the bin-count sweeps).
  kFixed,
};

const char* SmoothingRuleName(SmoothingRule rule);

struct EstimatorConfig {
  EstimatorKind kind = EstimatorKind::kEquiWidth;
  SmoothingRule smoothing = SmoothingRule::kNormalScale;
  // With kFixed: the bin count for histogram estimators (rounded) or the
  // bandwidth for kernel estimators.
  double fixed_smoothing = 0.0;
  // Direct plug-in stages (h-DPI2 = 2).
  int dpi_stages = 2;
  // Shift count of the average shifted histogram (the paper uses 10).
  int ash_shifts = 10;
  // Kernel options (kernel and hybrid estimators).
  KernelType kernel = KernelType::kEpanechnikov;
  BoundaryPolicy boundary = BoundaryPolicy::kBoundaryKernel;
};

// Builds the configured estimator from a sample over `domain`.
StatusOr<std::unique_ptr<SelectivityEstimator>> BuildEstimator(
    std::span<const double> sample, const Domain& domain,
    const EstimatorConfig& config);

}  // namespace selest

#endif  // SELEST_EST_ESTIMATOR_FACTORY_H_
