#include "src/est/equi_depth_histogram.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/est/estimator_snapshot.h"

namespace selest {

StatusOr<EquiDepthHistogram> EquiDepthHistogram::Create(
    std::span<const double> sample, const Domain& domain, int num_bins) {
  if (sample.empty()) {
    return InvalidArgumentError("equi-depth histogram needs a sample");
  }
  if (num_bins < 1) {
    return InvalidArgumentError("equi-depth histogram needs >= 1 bin");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();

  // Interior edges at the i/k sample quantiles; outer edges at the domain
  // boundaries so the estimator covers the whole attribute range. Counts
  // come from the rank partition — exactly n/k per bin — rather than from
  // re-bucketing: under heavy duplication several quantile edges coincide
  // and the duplicated value's mass must stay distributed over the
  // resulting zero-width (atom) bins, which re-bucketing into (c, c']
  // intervals would collapse into the leftmost bin.
  std::vector<double> edges;
  std::vector<double> counts;
  edges.reserve(static_cast<size_t>(num_bins) + 1);
  counts.reserve(static_cast<size_t>(num_bins));
  edges.push_back(domain.lo);
  size_t previous_rank = 0;
  for (int i = 1; i <= num_bins; ++i) {
    const size_t rank =
        i == num_bins
            ? n
            : static_cast<size_t>(i) * n / static_cast<size_t>(num_bins);
    edges.push_back(i == num_bins ? domain.hi : sorted[std::min(rank, n - 1)]);
    counts.push_back(static_cast<double>(rank - previous_rank));
    previous_rank = rank;
  }
  // Duplicated data can make a quantile edge exceed a later one only via
  // the domain clamp; enforce monotonicity for robustness.
  for (size_t i = 1; i < edges.size(); ++i) {
    edges[i] = std::max(edges[i], edges[i - 1]);
  }
  auto bins = BinnedDensity::Create(std::move(edges), std::move(counts),
                                    static_cast<double>(n));
  if (!bins.ok()) return bins.status();
  return EquiDepthHistogram(std::move(bins).value());
}

double EquiDepthHistogram::EstimateSelectivity(double a, double b) const {
  return bins_.Selectivity(a, b);
}

std::string EquiDepthHistogram::name() const {
  return "equi-depth(" + std::to_string(num_bins()) + ")";
}

Status EquiDepthHistogram::SerializeState(ByteWriter& writer) const {
  WriteBinnedDensity(writer, bins_);
  return Status::Ok();
}

StatusOr<EquiDepthHistogram> EquiDepthHistogram::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(BinnedDensity bins, ReadBinnedDensity(reader));
  return EquiDepthHistogram(std::move(bins));
}

}  // namespace selest
