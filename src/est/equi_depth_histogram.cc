#include "src/est/equi_depth_histogram.h"

#include <algorithm>
#include <iterator>
#include <utility>
#include <vector>

#include "src/est/estimator_snapshot.h"
#include "src/util/check.h"

namespace selest {

StatusOr<EquiDepthHistogram> EquiDepthHistogram::Create(
    std::span<const double> sample, const Domain& domain, int num_bins) {
  if (sample.empty()) {
    return InvalidArgumentError("equi-depth histogram needs a sample");
  }
  if (num_bins < 1) {
    return InvalidArgumentError("equi-depth histogram needs >= 1 bin");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();

  // Interior edges at the i/k sample quantiles; outer edges at the domain
  // boundaries so the estimator covers the whole attribute range. Counts
  // come from the rank partition — exactly n/k per bin — rather than from
  // re-bucketing: under heavy duplication several quantile edges coincide
  // and the duplicated value's mass must stay distributed over the
  // resulting zero-width (atom) bins, which re-bucketing into (c, c']
  // intervals would collapse into the leftmost bin.
  std::vector<double> edges;
  std::vector<double> counts;
  edges.reserve(static_cast<size_t>(num_bins) + 1);
  counts.reserve(static_cast<size_t>(num_bins));
  edges.push_back(domain.lo);
  size_t previous_rank = 0;
  for (int i = 1; i <= num_bins; ++i) {
    const size_t rank =
        i == num_bins
            ? n
            : static_cast<size_t>(i) * n / static_cast<size_t>(num_bins);
    edges.push_back(i == num_bins ? domain.hi : sorted[std::min(rank, n - 1)]);
    counts.push_back(static_cast<double>(rank - previous_rank));
    previous_rank = rank;
  }
  // Duplicated data can make a quantile edge exceed a later one only via
  // the domain clamp; enforce monotonicity for robustness.
  for (size_t i = 1; i < edges.size(); ++i) {
    edges[i] = std::max(edges[i], edges[i - 1]);
  }
  auto bins = BinnedDensity::Create(std::move(edges), std::move(counts),
                                    static_cast<double>(n));
  if (!bins.ok()) return bins.status();
  return EquiDepthHistogram(std::move(bins).value());
}

double EquiDepthHistogram::EstimateSelectivity(double a, double b) const {
  return bins_.Selectivity(a, b);
}

void EquiDepthHistogram::EstimateSelectivityBatch(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  SELEST_CHECK_EQ(queries.size(), out.size());
  BatchWithBinned(bins_, queries, out);
}

std::string EquiDepthHistogram::name() const {
  return "equi-depth(" + std::to_string(num_bins()) + ")";
}

Status EquiDepthHistogram::MergeFrom(const SelectivityEstimator& other) {
  const auto* peer = dynamic_cast<const EquiDepthHistogram*>(&other);
  if (peer == nullptr) {
    return FailedPreconditionError("cannot merge " + other.name() +
                                   " into an equi-depth histogram");
  }
  const AlignedDoubles& a_edges = bins_.edges();
  const AlignedDoubles& b_edges = peer->bins_.edges();
  if (a_edges.front() != b_edges.front() || a_edges.back() != b_edges.back()) {
    return FailedPreconditionError(
        "equi-depth merge requires histograms over the same domain");
  }

  // Union edge grid with the combined cumulative mass at each edge: the
  // merged CDF is exact at union edges and linearly interpolated between
  // them, which is where the bounded drift comes from.
  std::vector<double> grid;
  grid.reserve(a_edges.size() + b_edges.size());
  std::merge(a_edges.begin(), a_edges.end(), b_edges.begin(), b_edges.end(),
             std::back_inserter(grid));
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  std::vector<double> cumulative(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    cumulative[i] =
        bins_.MassBelow(grid[i]) + peer->bins_.MassBelow(grid[i]);
  }
  const double total = bins_.total_count() + peer->bins_.total_count();

  // Re-place this histogram's bin count at the combined quantiles.
  const size_t k = bins_.num_bins();
  std::vector<double> edges;
  std::vector<double> counts(k, total / static_cast<double>(k));
  edges.reserve(k + 1);
  edges.push_back(grid.front());
  size_t segment = 1;
  for (size_t j = 1; j < k; ++j) {
    const double target =
        static_cast<double>(j) * total / static_cast<double>(k);
    while (segment + 1 < grid.size() && cumulative[segment] < target) {
      ++segment;
    }
    const double mass_step = cumulative[segment] - cumulative[segment - 1];
    const double position =
        mass_step > 0.0
            ? grid[segment - 1] + (target - cumulative[segment - 1]) /
                                      mass_step *
                                      (grid[segment] - grid[segment - 1])
            : grid[segment];
    edges.push_back(std::max(position, edges.back()));
  }
  edges.push_back(std::max(grid.back(), edges.back()));

  auto merged = BinnedDensity::Create(std::move(edges), std::move(counts),
                                      total);
  if (!merged.ok()) return merged.status();
  bins_ = std::move(merged).value();
  return Status::Ok();
}

Status EquiDepthHistogram::FoldRows(std::span<const double> rows) {
  if (rows.empty()) return Status::Ok();
  Domain domain;
  domain.lo = bins_.edges().front();
  domain.hi = bins_.edges().back();
  auto delta = Create(rows, domain, num_bins());
  if (!delta.ok()) return delta.status();
  return MergeFrom(delta.value());
}

Status EquiDepthHistogram::SerializeState(ByteWriter& writer) const {
  WriteBinnedDensity(writer, bins_);
  return Status::Ok();
}

StatusOr<EquiDepthHistogram> EquiDepthHistogram::DeserializeState(
    ByteReader& reader) {
  SELEST_ASSIGN_OR_RETURN(BinnedDensity bins, ReadBinnedDensity(reader));
  return EquiDepthHistogram(std::move(bins));
}

}  // namespace selest
